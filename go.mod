module topk

go 1.24
