package topk

import (
	"fmt"

	"topk/internal/bestpos"
	"topk/internal/dht"
	"topk/internal/dist"
	"topk/internal/list"
)

// DHTResult is a completed top-k query over the simulated DHT overlay
// (the paper's Section 8 future-work scenario).
type DHTResult struct {
	// Protocol that executed the query.
	Protocol Protocol
	// Items are the top-k answers, best first.
	Items []ScoredItem
	// Messages is the protocol's point-to-point message count.
	Messages int64
	// Hops is the total overlay routing cost of that traffic, including
	// the initial lookups that locate the list owners.
	Hops int64
	// RingSize is the number of overlay nodes.
	RingSize int
	// LookupHops[i] is the routing distance from the query originator to
	// the owner of list i.
	LookupHops []int
}

// RunDHT executes the query with the database's lists stored in a
// simulated Chord-style DHT of ringSize nodes. When routed is false the
// originator caches a direct connection to each owner after one DHT
// lookup (how real overlay applications run iterative protocols); when
// true every message walks the overlay.
//
// The overlay is rebuilt deterministically from seed, so results are
// reproducible.
func (db *Database) RunDHT(q Query, protocol Protocol, ringSize int, seed int64, routed bool) (*DHTResult, error) {
	if q.K < 1 || q.K > db.N() {
		return nil, fmt.Errorf("topk: k=%d out of range [1,%d]", q.K, db.N())
	}
	scoring := q.Scoring
	if scoring == nil {
		scoring = Sum()
	}
	var run func(*list.Database, dist.Options) (*dist.Result, error)
	switch protocol {
	case DistBPA2:
		run = dist.BPA2
	case DistBPA:
		run = dist.BPA
	case DistTA:
		run = dist.TA
	case TPUT:
		run = dist.TPUT
	case TPUTA:
		run = dist.TPUTA
	default:
		return nil, fmt.Errorf("topk: unknown protocol %d", uint8(protocol))
	}
	ring, err := dht.NewRing(ringSize, seed)
	if err != nil {
		return nil, err
	}
	model := dht.Cached
	if routed {
		model = dht.Routed
	}
	res, err := dht.TopK(ring, db.db, dist.Options{
		K:       q.K,
		Scoring: adaptScoring(scoring),
		Tracker: bestpos.Kind(q.Tracker),
	}, run, model, seed)
	if err != nil {
		return nil, err
	}
	out := &DHTResult{
		Protocol:   protocol,
		Messages:   res.Dist.Net.Messages,
		Hops:       res.Hops,
		RingSize:   ringSize,
		LookupHops: res.Placement.LookupHops,
	}
	out.Items = make([]ScoredItem, len(res.Dist.Items))
	for i, it := range res.Dist.Items {
		out.Items[i] = ScoredItem{Item: Item(it.Item), Name: db.NameOf(Item(it.Item)), Score: it.Score}
	}
	return out, nil
}
