package topk

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/list"
	"topk/internal/parallel"
	"topk/internal/score"
)

// Algorithm selects a top-k algorithm.
type Algorithm uint8

const (
	// BPA2 is the paper's optimized Best Position Algorithm and the
	// default: it never accesses a list position twice.
	BPA2 Algorithm = iota
	// BPA is the Best Position Algorithm (Section 4).
	BPA
	// TA is the Threshold Algorithm.
	TA
	// FA is Fagin's Algorithm.
	FA
	// Naive scans all lists completely.
	Naive
	// NRA is the No-Random-Access algorithm of Fagin et al. — a
	// sorted-access-only baseline. It guarantees the top-k item set but
	// reports worst-case score bounds, not exact scores (Result.Inexact).
	NRA
	// CA is the Combined Algorithm of Fagin et al.: NRA plus a periodic
	// random-access resolution of the most promising candidate. Like NRA
	// it may report inexact scores.
	CA
)

// String returns the algorithm name.
func (a Algorithm) String() string {
	switch a {
	case BPA2:
		return "BPA2"
	case BPA:
		return "BPA"
	case TA:
		return "TA"
	case FA:
		return "FA"
	case Naive:
		return "Naive"
	case NRA:
		return "NRA"
	case CA:
		return "CA"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Algorithms lists every exact-score algorithm, fastest first.
func Algorithms() []Algorithm { return []Algorithm{BPA2, BPA, TA, FA, Naive} }

// ExtendedAlgorithms appends the set-only baselines NRA and CA, which
// guarantee the top-k items but may report score bounds instead of exact
// scores.
func ExtendedAlgorithms() []Algorithm { return append(Algorithms(), NRA, CA) }

func (a Algorithm) internal() (core.Algorithm, error) {
	switch a {
	case BPA2:
		return core.AlgBPA2, nil
	case BPA:
		return core.AlgBPA, nil
	case TA:
		return core.AlgTA, nil
	case FA:
		return core.AlgFA, nil
	case Naive:
		return core.AlgNaive, nil
	case NRA:
		return core.AlgNRA, nil
	case CA:
		return core.AlgCA, nil
	default:
		return 0, fmt.Errorf("topk: unknown algorithm %d", uint8(a))
	}
}

// Tracker selects the best-position bookkeeping structure used by BPA and
// BPA2 (paper Section 5.2).
type Tracker uint8

const (
	// BitArrayTracker is the Section 5.2.1 bit array (the paper's
	// evaluation default).
	BitArrayTracker Tracker = Tracker(bestpos.BitArrayKind)
	// BPlusTreeTracker is the Section 5.2.2 B+tree; preferable when the
	// lists are much longer than the number of accesses.
	BPlusTreeTracker Tracker = Tracker(bestpos.BPlusTreeKind)
	// IntervalTracker stores the seen positions as maximal runs in
	// endpoint hash maps: O(1) amortized per access, O(u) space. Not in
	// the paper; see DESIGN.md's tracker ablation.
	IntervalTracker Tracker = Tracker(bestpos.IntervalKind)
)

// Query configures a top-k execution.
type Query struct {
	// K is the number of answers to return; 1 <= K <= N.
	K int
	// Algorithm defaults to BPA2.
	Algorithm Algorithm
	// Scoring is the monotone overall-score function; defaults to Sum.
	Scoring Scoring
	// Tracker defaults to the bit array.
	Tracker Tracker
	// CheckMonotone samples the scoring function before running and
	// rejects detectable monotonicity violations; the algorithms are
	// only correct for monotone functions.
	CheckMonotone bool
	// Approximation, when >= 1, runs the θ-approximate variant of the
	// threshold algorithms: execution may stop once the answer set
	// reaches threshold/θ, and θ times every returned score is
	// guaranteed to be at least every skipped score (for non-negative
	// scores). Zero means exact.
	Approximation float64
	// Parallel executes the query with one goroutine per list owner
	// (the paper's "sorted access in parallel" taken literally).
	// Supported for TA, BPA and BPA2; answers and access counts are
	// identical to the sequential run, only wall-clock time changes.
	Parallel bool
	// Floors gives NRA and CA each list's minimum possible local score
	// for their worst-case bounds. Nil reads the list tails (list-owner
	// metadata). Ignored by the other algorithms.
	Floors []float64
	// CAPeriod is CA's random-access period h; zero means the balanced
	// default ⌊log2 n⌋. Ignored by the other algorithms.
	CAPeriod int
	// Sortable, when non-nil, marks which lists support sorted access —
	// the web-source setting where some lists answer lookups but cannot
	// be scanned. TA then runs as TAz and BPA as BPAz (random accesses
	// still advance a random-only list's best position); other
	// algorithms need sorted or positional access everywhere and are
	// refused. At least one list must be sortable.
	Sortable []bool
	// Ceilings gives each list's maximum possible local score for the
	// restricted-access thresholds. Nil reads the list heads (list-owner
	// metadata). Ignored unless Sortable is set.
	Ceilings []float64

	// onRoundObserver is set by WithOnRound and Database.Explain.
	onRoundObserver core.Observer
}

// ScoredItem is one answer.
type ScoredItem struct {
	// Item is the dense item ID.
	Item Item
	// Name is the dictionary name when the database has one.
	Name string
	// Score is the overall score.
	Score float64
}

// Stats reports the execution profile of a query in the paper's cost
// model.
type Stats struct {
	// SortedAccesses, RandomAccesses and DirectAccesses count the list
	// probes by mode.
	SortedAccesses, RandomAccesses, DirectAccesses int64
	// Cost is the execution cost: sorted accesses cost 1 each, random
	// and direct accesses cost log2(n) each (Section 6.1).
	Cost float64
	// StopPosition is the sorted-access depth at which the scan stopped
	// (FA/TA/BPA); 0 for BPA2, which does no sorted accesses.
	StopPosition int
	// Rounds is the number of parallel probe rounds.
	Rounds int
	// BestPositions holds the final best position per list (BPA/BPA2).
	BestPositions []int
	// Duration is the wall-clock execution time.
	Duration time.Duration
}

// TotalAccesses returns the number of accesses of any mode — the paper's
// distributed-cost metric.
func (s Stats) TotalAccesses() int64 {
	return s.SortedAccesses + s.RandomAccesses + s.DirectAccesses
}

// Result is a completed query.
type Result struct {
	// Algorithm that produced the result.
	Algorithm Algorithm
	// Items are the top-k answers, best first (score descending, ties by
	// ascending item ID).
	Items []ScoredItem
	// Stats is the execution profile.
	Stats Stats
	// Inexact reports that the item scores are lower bounds rather than
	// exact overall scores. Only NRA and CA can set it; the returned
	// item set is still a correct top-k set.
	Inexact bool
}

// Exec runs the query against the database and returns the top-k
// answers with the execution profile — the context-aware front door of
// the centralized algorithms. Cancellation and deadlines are honored at
// access granularity: the algorithms check ctx every sorted/probe round
// and return ctx.Err() as soon as it fires, whether the query runs
// sequentially, in parallel, or in a restricted-access variant.
func (db *Database) Exec(ctx context.Context, q Query) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if q.K < 1 || q.K > db.N() {
		return nil, fmt.Errorf("topk: k=%d out of range [1,%d]", q.K, db.N())
	}
	scoring := q.Scoring
	if scoring == nil {
		scoring = Sum()
	}
	f := adaptScoring(scoring)
	if q.CheckMonotone {
		rng := rand.New(rand.NewSource(1))
		if !score.CheckMonotone(f, db.M(), 512, rng) {
			return nil, fmt.Errorf("topk: scoring function %q is not monotone", scoring.Name())
		}
	}
	alg, err := q.Algorithm.internal()
	if err != nil {
		return nil, err
	}

	opts := core.Options{
		Ctx:           ctx,
		K:             q.K,
		Scoring:       f,
		Tracker:       bestpos.Kind(q.Tracker),
		Observer:      q.onRoundObserver,
		Approximation: q.Approximation,
		Floors:        q.Floors,
		CAPeriod:      q.CAPeriod,
	}
	start := time.Now()
	var res *core.Result
	switch {
	case q.Sortable != nil:
		if q.Parallel {
			return nil, fmt.Errorf("topk: restricted-access runs are sequential; drop Parallel")
		}
		restr := core.Restricted{Sortable: q.Sortable, Ceilings: q.Ceilings}
		switch alg {
		case core.AlgTA:
			res, err = core.TAz(access.NewProbe(db.db), opts, restr)
		case core.AlgBPA:
			res, err = core.BPAz(access.NewProbe(db.db), opts, restr)
		default:
			return nil, fmt.Errorf("topk: %v needs sorted or positional access to every list; use TA or BPA with Sortable", q.Algorithm)
		}
	case q.Parallel:
		res, err = parallel.Run(alg, db.db, opts)
	default:
		res, err = core.Run(alg, db.db, opts)
	}
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)

	out := &Result{Algorithm: q.Algorithm, Inexact: res.Inexact}
	out.Items = make([]ScoredItem, len(res.Items))
	for i, it := range res.Items {
		out.Items[i] = ScoredItem{
			Item:  Item(it.Item),
			Name:  db.NameOf(Item(it.Item)),
			Score: it.Score,
		}
	}
	out.Stats = Stats{
		SortedAccesses: res.Counts.Sorted,
		RandomAccesses: res.Counts.Random,
		DirectAccesses: res.Counts.Direct,
		Cost:           res.Cost(access.DefaultCostModel(db.N())),
		StopPosition:   res.StopPosition,
		Rounds:         res.Rounds,
		BestPositions:  res.BestPositions,
		Duration:       elapsed,
	}
	return out, nil
}

// TopK runs the query without a context.
//
// Deprecated: use Exec, which is TopK with a context.Context front door;
// TopK is equivalent to Exec(context.Background(), q) and is kept for
// callers written before the context-aware API.
func (db *Database) TopK(q Query) (*Result, error) {
	return db.Exec(context.Background(), q)
}

// Oracle returns the exact top-k by brute force, bypassing the access
// model; useful for validating custom scoring functions.
func (db *Database) Oracle(k int, scoring Scoring) ([]ScoredItem, error) {
	if scoring == nil {
		scoring = Sum()
	}
	items, err := core.Oracle(db.db, k, adaptScoring(scoring))
	if err != nil {
		return nil, err
	}
	out := make([]ScoredItem, len(items))
	for i, it := range items {
		out[i] = ScoredItem{Item: Item(it.Item), Name: db.NameOf(Item(it.Item)), Score: it.Score}
	}
	return out, nil
}

// ensure ItemID conversions stay in range (compile-time documentation).
var _ = list.ItemID(0)
