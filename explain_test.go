package topk

import (
	"bytes"
	"strings"
	"testing"
)

// paperFig1DB rebuilds the paper's Figure 1 database through the public
// API (items renumbered to dense IDs via columns: column d holds item
// d+1's local scores... here we simply transpose the known score matrix).
func paperFig1DB(t *testing.T) *Database {
	t.Helper()
	// localScores[i][d] = local score of item d (paper's d(d+1)) in list i.
	columns := [][]float64{
		{30, 11, 26, 28, 17, 14, 25, 23, 27, 9, 10, 8, 7, 6},
		{21, 28, 14, 13, 24, 27, 25, 20, 23, 11, 10, 9, 8, 12},
		{14, 24, 30, 25, 29, 19, 11, 28, 12, 10, 9, 8, 15, 7},
	}
	db, err := FromColumns(columns)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExplainTA(t *testing.T) {
	db := paperFig1DB(t)
	var buf bytes.Buffer
	res, err := db.Explain(Query{K: 3, Algorithm: TA}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopPosition != 6 {
		t.Errorf("stop position = %d, want 6", res.Stats.StopPosition)
	}
	out := buf.String()
	// One row per position 1..6, thresholds from Figure 1b, STOP at 63.
	for _, want := range []string{"88", "84", "80", "75", "72", "63", "STOP"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	lines := strings.Count(out, "\n")
	if lines != 2+6 { // title + header + 6 rounds
		t.Errorf("trace has %d lines, want 8:\n%s", lines, out)
	}
}

func TestExplainBPA(t *testing.T) {
	db := paperFig1DB(t)
	var buf bytes.Buffer
	res, err := db.Explain(Query{K: 3, Algorithm: BPA}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.StopPosition != 3 {
		t.Errorf("stop position = %d, want 3", res.Stats.StopPosition)
	}
	if !strings.Contains(buf.String(), "9,9,6") {
		t.Errorf("trace missing best positions 9,9,6:\n%s", buf.String())
	}
}

func TestExplainNaiveIsEmpty(t *testing.T) {
	db := paperFig1DB(t)
	var buf bytes.Buffer
	if _, err := db.Explain(Query{K: 3, Algorithm: Naive}, &buf); err != nil {
		t.Fatal(err)
	}
	// Title and header only; Naive reports no rounds.
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Errorf("naive trace has %d lines, want 2:\n%s", got, buf.String())
	}
}

func TestExplainPropagatesErrors(t *testing.T) {
	db := paperFig1DB(t)
	var buf bytes.Buffer
	if _, err := db.Explain(Query{K: 0}, &buf); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestWithOnRound(t *testing.T) {
	db := paperFig1DB(t)
	var rounds []Round
	q := Query{K: 3, Algorithm: BPA2}.WithOnRound(func(r Round) {
		rounds = append(rounds, r)
	})
	if _, err := db.TopK(q); err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("no rounds observed")
	}
	last := rounds[len(rounds)-1]
	if !last.Stopped || !last.YFull {
		t.Errorf("last round = %+v, want stopped and full", last)
	}
	if len(last.BestPositions) != db.M() {
		t.Errorf("best positions = %v", last.BestPositions)
	}
	for i, r := range rounds {
		if r.Round != i+1 {
			t.Errorf("round %d numbered %d", i+1, r.Round)
		}
	}
}

func TestWithOnRoundDoesNotMutateOriginal(t *testing.T) {
	db := paperFig1DB(t)
	q := Query{K: 3}
	_ = q.WithOnRound(func(Round) {})
	if q.onRoundObserver != nil {
		t.Error("WithOnRound mutated the receiver")
	}
	// The original query still runs without observation.
	if _, err := db.TopK(q); err != nil {
		t.Fatal(err)
	}
}
