package topk

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"topk/internal/transport"
)

// TestParseRestartPolicy: every policy's String round-trips, plus the
// accepted aliases; unknown names are rejected.
func TestParseRestartPolicy(t *testing.T) {
	for _, p := range RestartPolicies() {
		got, err := ParseRestartPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseRestartPolicy(%q) = %v, %v", p.String(), got, err)
		}
		got, err = ParseRestartPolicy("  " + strings.ToUpper(p.String()) + " ")
		if err != nil || got != p {
			t.Errorf("ParseRestartPolicy(noisy %q) = %v, %v", p.String(), got, err)
		}
	}
	for name, want := range map[string]RestartPolicy{
		"":                 RestartOff,
		"restart-failed":   RestartFailed,
		"failed-protocols": RestartFailed,
	} {
		if got, err := ParseRestartPolicy(name); err != nil || got != want {
			t.Errorf("ParseRestartPolicy(%q) = %v, %v, want %v", name, got, err, want)
		}
	}
	if _, err := ParseRestartPolicy("zzz"); err == nil {
		t.Error("unknown restart policy accepted")
	}
}

// TestParseTopologyErrors: malformed topologies are rejected with the
// offending list index and token named, so a fat-fingered -owners flag
// is debuggable from the message alone.
func TestParseTopologyErrors(t *testing.T) {
	cases := []struct {
		in   string
		want []string // substrings the error must carry
	}{
		{"", []string{"empty topology"}},
		{"  ", []string{"empty topology"}},
		{"a,", []string{"list 1", "empty"}},
		{",a", []string{"list 0", "empty"}},
		{"a, ,b", []string{"list 1", "empty"}},
		{"a||b", []string{"list 0", "token 1", `"a||b"`}},
		{"|a", []string{"list 0", "token 0", `"|a"`}},
		{"a|b,c|", []string{"list 1", "token 1", `"c|"`}},
		{"a, b | |c", []string{"list 1", "token 1"}},
	}
	for _, c := range cases {
		_, err := ParseTopology(c.in)
		if err == nil {
			t.Errorf("ParseTopology(%q) accepted", c.in)
			continue
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("ParseTopology(%q) error %q does not name %q", c.in, err, w)
			}
		}
	}
}

// hiccupGate fails exactly one /rpc call (the nth it sees, 1-based)
// with a 500 and serves everything else — the smallest disturbance that
// kills a query when transient retries are disabled.
type hiccupGate struct {
	inner http.Handler
	n     int64
	seen  atomic.Int64
}

func (g *hiccupGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/rpc/") && g.seen.Add(1) == g.n {
		http.Error(w, `{"error":"injected hiccup"}`, http.StatusInternalServerError)
		return
	}
	g.inner.ServeHTTP(w, r)
}

// deadAfterGate serves n /rpc calls and then aborts every connection
// for good, control plane included — a crashed process.
type deadAfterGate struct {
	inner     http.Handler
	remaining atomic.Int64
	dead      atomic.Bool
}

func (g *deadAfterGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if strings.HasPrefix(r.URL.Path, "/rpc/") && g.remaining.Add(-1) < 0 {
		g.dead.Store(true)
		panic(http.ErrAbortHandler)
	}
	g.inner.ServeHTTP(w, r)
}

// sickAfterGate serves n /rpc calls and then 500s every later one while
// keeping the control plane alive — a process whose data plane is
// wedged: restarted queries can still open sessions against it, and
// every attempt dies mid-query.
type sickAfterGate struct {
	inner     http.Handler
	remaining atomic.Int64
	sick      atomic.Bool
}

func (g *sickAfterGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/rpc/") && g.remaining.Add(-1) < 0 {
		g.sick.Store(true)
		http.Error(w, `{"error":"wedged data plane"}`, http.StatusInternalServerError)
		return
	}
	g.inner.ServeHTTP(w, r)
}

// dialFlatWithGates serves every list of db from one owner wrapped in
// gate(li) and dials the flat topology with the given config overrides.
func dialFlatWithGates(t *testing.T, db *Database, cfg ClusterConfig, gate func(li int, h http.Handler) http.Handler) *Cluster {
	t.Helper()
	topo := make([][]string, db.M())
	for li := 0; li < db.M(); li++ {
		srv, err := transport.NewServer(db.db, li)
		if err != nil {
			t.Fatal(err)
		}
		h := http.Handler(srv.Handler())
		if gate != nil {
			h = gate(li, h)
		}
		ts := httptest.NewServer(h)
		t.Cleanup(ts.Close)
		topo[li] = []string{ts.URL}
	}
	cfg.Topology = topo
	c, err := DialClusterConfig(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestRestartAccountingParity is the restart acceptance test: for EVERY
// protocol, a query whose first attempt is killed mid-flight and rerun
// by the restart policy must report primary accounting (Net, answers)
// bit-identical to an undisturbed run — the abandoned attempt's traffic
// never leaks into the completing run's books; only Recovery says it
// happened. The cluster is flat (one replica per list), so there is no
// failover or handoff to soften the kill: restart is the only recovery.
func TestRestartAccountingParity(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 200, M: 3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{K: 8}
	for _, p := range Protocols() {
		t.Run(p.String(), func(t *testing.T) {
			want, err := db.ExecDistributed(ctx, q, p)
			if err != nil {
				t.Fatal(err)
			}
			// Fail the 2nd data-plane call list 0's owner sees, once.
			// Retries are disabled, so the hiccup kills the attempt;
			// RestartAlways covers the stateless protocols too, whose flat
			// failures are plain transport errors.
			c := dialFlatWithGates(t, db,
				ClusterConfig{Retries: -1, Restart: RestartAlways},
				func(li int, h http.Handler) http.Handler {
					if li == 0 {
						return &hiccupGate{inner: h, n: 2}
					}
					return h
				})
			got, err := c.Exec(ctx, q, p)
			if err != nil {
				t.Fatalf("restarted query failed: %v", err)
			}
			if got.Stats.Recovery.Restarts != 1 {
				t.Fatalf("restarts = %d, want 1 — the hiccup never fired and the test proved nothing", got.Stats.Recovery.Restarts)
			}
			for i := range want.Items {
				if got.Items[i].Item != want.Items[i].Item || got.Items[i].Score != want.Items[i].Score {
					t.Errorf("answer %d: %+v vs undisturbed %+v", i, got.Items[i], want.Items[i])
				}
			}
			gn, wn := got.Stats.Net, want.Stats.Net
			gn.Elapsed, wn.Elapsed = 0, 0 // real time vs simulated zero
			if !reflect.DeepEqual(gn, wn) {
				t.Errorf("primary accounting diverged after restart:\n%+v\nvs undisturbed\n%+v", gn, wn)
			}
			// The deprecated flat mirrors track Net.
			if got.Stats.Messages != gn.Messages || got.Stats.TotalAccesses != gn.TotalAccesses {
				t.Errorf("flat stat mirrors diverged from Net: %+v", got.Stats)
			}
		})
	}
}

// TestRestartExhaustedError: a permanently dead owner exhausts the
// restart budget; the typed error reports the attempts spent and still
// exposes the owner failure naming list and replica.
func TestRestartExhaustedError(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 120, M: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	c := dialFlatWithGates(t, db,
		ClusterConfig{Retries: -1, Restart: RestartFailed, MaxRestarts: 1},
		func(li int, h http.Handler) http.Handler {
			if li != 1 {
				return h
			}
			g := &sickAfterGate{inner: h}
			g.remaining.Store(1)
			return g
		})
	// BPA2's probes are sessionful: the wedged owner surfaces as the
	// typed owner failure on every attempt, which RestartFailed keeps
	// retrying until the budget runs out.
	_, err = c.Exec(context.Background(), Query{K: 5}, DistBPA2)
	var ree *RestartExhaustedError
	if !errors.As(err, &ree) {
		t.Fatalf("exhausted budget surfaced as %v, want *RestartExhaustedError", err)
	}
	if ree.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (1 + MaxRestarts 1)", ree.Attempts)
	}
	var ofe *OwnerFailedError
	if !errors.As(err, &ofe) {
		t.Fatalf("RestartExhaustedError does not expose *OwnerFailedError: %v", err)
	}
	if ofe.List != 1 || ofe.Replica != 0 {
		t.Errorf("owner failure names list %d replica %d, want list 1 replica 0", ofe.List, ofe.Replica)
	}
	if !strings.Contains(err.Error(), "restart budget exhausted") {
		t.Errorf("error text = %q", err)
	}
}

// TestRestartWithHandoffDisabled: with session handoff off, a replicated
// cluster recovers a killed sessionful query only through the restart
// policy — the pre-handoff failure mode plus the new restart driver.
func TestRestartWithHandoffDisabled(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 200, M: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{K: 6}
	want, err := db.ExecDistributed(ctx, q, DistBPA2)
	if err != nil {
		t.Fatal(err)
	}
	// Two replicas for list 0; the primary dies after two data-plane
	// calls. With handoff disabled the session cannot move, so the first
	// attempt dies with the typed owner failure — and the restart reruns
	// the query, which pins to the surviving replica.
	topo := make([][]string, db.M())
	var gate *deadAfterGate
	for li := 0; li < db.M(); li++ {
		reps := 1
		if li == 0 {
			reps = 2
		}
		for ri := 0; ri < reps; ri++ {
			srv, err := transport.NewServer(db.db, li)
			if err != nil {
				t.Fatal(err)
			}
			h := http.Handler(srv.Handler())
			if li == 0 && ri == 0 {
				gate = &deadAfterGate{inner: h}
				gate.remaining.Store(2)
				h = gate
			}
			ts := httptest.NewServer(h)
			t.Cleanup(ts.Close)
			topo[li] = append(topo[li], ts.URL)
		}
	}
	c, err := DialClusterConfig(ctx, ClusterConfig{
		Topology:       topo,
		DisableHandoff: true,
		Restart:        RestartFailed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	got, err := c.Exec(ctx, q, DistBPA2)
	if err != nil {
		t.Fatalf("restart did not recover the killed query: %v", err)
	}
	if !gate.dead.Load() {
		t.Fatal("the kill never fired")
	}
	if got.Stats.Recovery.Restarts != 1 || got.Stats.Recovery.Handoffs != 0 {
		t.Errorf("recovery = %+v, want 1 restart, 0 handoffs", got.Stats.Recovery)
	}
	gn, wn := got.Stats.Net, want.Stats.Net
	gn.Elapsed, wn.Elapsed = 0, 0
	if !reflect.DeepEqual(gn, wn) {
		t.Errorf("primary accounting diverged: %+v vs %+v", gn, wn)
	}

	// Per-query overrides beat the cluster default: forcing the policy
	// off on the same (now one-legged) cluster still works — the dead
	// replica is out of the routing, so no restart is needed.
	if res, err := c.Exec(ctx, q, DistBPA2, WithRestart(RestartOff)); err != nil {
		t.Errorf("healthy rerun with WithRestart(off): %v", err)
	} else if res.Stats.Recovery.Restarts != 0 {
		t.Errorf("healthy rerun spent %d restarts", res.Stats.Recovery.Restarts)
	}
}

// TestExecOptionOverrides: WithRestart/WithMaxRestarts override the
// ClusterConfig defaults per query, and WithTimeout bounds the run.
func TestExecOptionOverrides(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 120, M: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Cluster default says restart; the per-query option turns it off,
	// so the hiccup surfaces instead of being absorbed.
	c := dialFlatWithGates(t, db,
		ClusterConfig{Retries: -1, Restart: RestartAlways},
		func(li int, h http.Handler) http.Handler {
			if li == 0 {
				return &hiccupGate{inner: h, n: 1}
			}
			return h
		})
	if _, err := c.Exec(ctx, Query{K: 4}, DistBPA2, WithRestart(RestartOff)); err == nil {
		t.Error("WithRestart(RestartOff) did not override the cluster default")
	}
	// A fresh hiccup on the next query is absorbed by the default again.
	if _, err := c.Exec(ctx, Query{K: 4}, DistBPA2); err != nil {
		t.Errorf("cluster-default restart did not absorb the hiccup: %v", err)
	}

	// WithMaxRestarts(-1) zeroes the budget: the first failure exhausts.
	c2 := dialFlatWithGates(t, db,
		ClusterConfig{Retries: -1, Restart: RestartAlways},
		func(li int, h http.Handler) http.Handler {
			if li == 0 {
				return &hiccupGate{inner: h, n: 1}
			}
			return h
		})
	_, err = c2.Exec(ctx, Query{K: 4}, DistBPA2, WithMaxRestarts(-1))
	var ree *RestartExhaustedError
	if !errors.As(err, &ree) || ree.Attempts != 1 {
		t.Errorf("WithMaxRestarts(-1) = %v, want *RestartExhaustedError after 1 attempt", err)
	}

	// WithTimeout bounds the whole query like a caller-side deadline.
	c3 := dialFlatWithGates(t, db, ClusterConfig{}, nil)
	if _, err := c3.Exec(ctx, Query{K: 4}, DistBPA2, WithTimeout(time.Nanosecond)); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WithTimeout(1ns) = %v, want context.DeadlineExceeded", err)
	}
	if _, err := c3.Exec(ctx, Query{K: 4}, DistBPA2, WithTimeout(30*time.Second)); err != nil {
		t.Errorf("generous WithTimeout failed the query: %v", err)
	}
	// ExecDistributed accepts the same options.
	if _, err := db.ExecDistributed(ctx, Query{K: 4}, DistBPA2, WithRestart(RestartAlways), WithTimeout(30*time.Second)); err != nil {
		t.Errorf("ExecDistributed with options: %v", err)
	}
}
