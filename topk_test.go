package topk

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func smallDB(t *testing.T) *Database {
	t.Helper()
	db, err := FromColumns([][]float64{
		{0.9, 0.3, 0.6, 0.1},
		{0.2, 0.8, 0.7, 0.1},
		{0.5, 0.5, 0.9, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestFromColumns(t *testing.T) {
	db := smallDB(t)
	if db.M() != 3 || db.N() != 4 {
		t.Fatalf("M=%d N=%d, want 3, 4", db.M(), db.N())
	}
	if got := db.LocalScore(1, 1); got != 0.8 {
		t.Errorf("LocalScore(1,1) = %v, want 0.8", got)
	}
	if got := db.PositionOf(0, 0); got != 1 {
		t.Errorf("PositionOf(0,0) = %v, want 1", got)
	}
	if db.NameOf(2) != "item2" {
		t.Errorf("NameOf(2) = %q, want synthesized name", db.NameOf(2))
	}
	if _, ok := db.IDOf("anything"); ok {
		t.Error("IDOf should miss without a dictionary")
	}
}

func TestFromColumnsErrors(t *testing.T) {
	if _, err := FromColumns(nil); err == nil {
		t.Error("nil columns accepted")
	}
	if _, err := FromColumns([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestTopKDefaultsToBPA2AndSum(t *testing.T) {
	db := smallDB(t)
	res, err := db.TopK(Query{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != BPA2 {
		t.Errorf("default algorithm = %v, want BPA2", res.Algorithm)
	}
	// Overall sums: item0=1.6, item1=1.6, item2=2.2, item3=0.3.
	if res.Items[0].Item != 2 || math.Abs(res.Items[0].Score-2.2) > 1e-12 {
		t.Errorf("top answer = %+v, want item 2 score 2.2", res.Items[0])
	}
	// Tie between items 0 and 1 at 1.6: ascending ID wins.
	if res.Items[1].Item != 0 {
		t.Errorf("second answer = %+v, want item 0 (tie-break)", res.Items[1])
	}
	if res.Stats.TotalAccesses() == 0 || res.Stats.Cost <= 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	if res.Stats.Duration <= 0 {
		t.Error("duration not measured")
	}
}

func TestTopKAllAlgorithmsAgree(t *testing.T) {
	db := smallDB(t)
	want, err := db.Oracle(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		res, err := db.TopK(Query{K: 3, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for i := range want {
			if res.Items[i].Score != want[i].Score {
				t.Errorf("%v answer %d = %+v, want score %v", alg, i, res.Items[i], want[i].Score)
			}
		}
	}
}

func TestTopKValidation(t *testing.T) {
	db := smallDB(t)
	for _, k := range []int{0, -1, 5} {
		if _, err := db.TopK(Query{K: k}); err == nil {
			t.Errorf("K=%d accepted", k)
		}
	}
	if _, err := db.TopK(Query{K: 1, Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

type badScoring struct{}

func (badScoring) Combine(xs []float64) float64 { return -xs[0] }
func (badScoring) Name() string                 { return "bad" }

func TestCheckMonotoneRejectsBadScoring(t *testing.T) {
	db := smallDB(t)
	if _, err := db.TopK(Query{K: 1, Scoring: badScoring{}, CheckMonotone: true}); err == nil {
		t.Error("non-monotone scoring accepted with CheckMonotone")
	}
	// Without the check it runs (and may return garbage) — documented.
	if _, err := db.TopK(Query{K: 1, Scoring: badScoring{}}); err != nil {
		t.Errorf("unexpected error without check: %v", err)
	}
	// A monotone function passes the check.
	if _, err := db.TopK(Query{K: 1, Scoring: Sum(), CheckMonotone: true}); err != nil {
		t.Errorf("Sum rejected by monotonicity check: %v", err)
	}
}

func TestScoringHelpers(t *testing.T) {
	db := smallDB(t)
	for _, s := range []Scoring{Sum(), Avg(), Min(), Max()} {
		if _, err := db.TopK(Query{K: 2, Scoring: s}); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
	w, err := WeightedSum([]float64{1, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.TopK(Query{K: 1, Scoring: w})
	if err != nil {
		t.Fatal(err)
	}
	// weighted: item0: .9+1.0=1.9, item1: .3+1.0=1.3, item2: .6+1.8=2.4.
	if res.Items[0].Item != 2 {
		t.Errorf("weighted top = %+v, want item 2", res.Items[0])
	}
	if _, err := WeightedSum([]float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestTrackers(t *testing.T) {
	db := smallDB(t)
	for _, tr := range []Tracker{BitArrayTracker, BPlusTreeTracker} {
		res, err := db.TopK(Query{K: 2, Algorithm: BPA, Tracker: tr})
		if err != nil {
			t.Fatalf("tracker %d: %v", tr, err)
		}
		if len(res.Stats.BestPositions) != db.M() {
			t.Errorf("tracker %d: best positions %v", tr, res.Stats.BestPositions)
		}
	}
}

func TestFromNamedScores(t *testing.T) {
	db, err := FromNamedScores([]map[string]float64{
		{"alpha": 3, "beta": 2, "gamma": 1},
		{"alpha": 1, "beta": 5}, // gamma missing -> 0
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 3 || db.M() != 2 {
		t.Fatalf("N=%d M=%d", db.N(), db.M())
	}
	id, ok := db.IDOf("beta")
	if !ok {
		t.Fatal("beta not in dictionary")
	}
	if db.NameOf(id) != "beta" {
		t.Errorf("NameOf(IDOf(beta)) = %q", db.NameOf(id))
	}
	res, err := db.TopK(Query{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Items[0].Name != "beta" { // beta: 2+5=7 beats alpha: 3+1=4
		t.Errorf("top answer = %+v, want beta", res.Items[0])
	}
	// gamma got the missing default in list 2.
	gid, _ := db.IDOf("gamma")
	if got := db.LocalScore(1, gid); got != 0 {
		t.Errorf("gamma in list 2 = %v, want 0", got)
	}
}

func TestFromNamedScoresErrors(t *testing.T) {
	if _, err := FromNamedScores(nil, 0); err == nil {
		t.Error("no lists accepted")
	}
	if _, err := FromNamedScores([]map[string]float64{{}}, 0); err == nil {
		t.Error("empty lists accepted")
	}
}

func TestGenerate(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 100, M: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if db.N() != 100 || db.M() != 4 {
		t.Fatalf("N=%d M=%d", db.N(), db.M())
	}
	if _, err := Generate(GenSpec{Kind: GenCorrelated, N: 100, M: 4, Alpha: 2, Seed: 3}); err == nil {
		t.Error("bad alpha accepted")
	}
	if _, err := Generate(GenSpec{Kind: GenCorrelated, N: 50, M: 2, Alpha: 0.1, Seed: 1}); err != nil {
		t.Errorf("correlated: %v", err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted by Load")
	}
	if _, err := LoadFile("/definitely/not/here"); err == nil {
		t.Error("missing file accepted by LoadFile")
	}
	if _, err := ReadCSV(strings.NewReader("a,b\nx,y\n")); err == nil {
		t.Error("non-numeric CSV accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := smallDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != db.N() || got.M() != db.M() {
		t.Error("dimensions changed")
	}
	path := filepath.Join(t.TempDir(), "db.topk")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := smallDB(t)
	var buf bytes.Buffer
	if err := db.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != db.N() || got.M() != db.M() {
		t.Error("dimensions changed")
	}
}

func TestRunDistributed(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 200, M: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Oracle(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Protocols() {
		res, err := db.RunDistributed(Query{K: 5}, p)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if res.Protocol != p {
			t.Errorf("protocol = %v, want %v", res.Protocol, p)
		}
		for i := range want {
			if res.Items[i].Score != want[i].Score {
				t.Errorf("%v answer %d score %v, want %v", p, i, res.Items[i].Score, want[i].Score)
			}
		}
		if res.Stats.Messages == 0 || res.Stats.TotalAccesses == 0 {
			t.Errorf("%v: stats empty: %+v", p, res.Stats)
		}
	}
}

func TestRunDistributedValidation(t *testing.T) {
	db := smallDB(t)
	if _, err := db.RunDistributed(Query{K: 0}, DistBPA2); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := db.RunDistributed(Query{K: 1}, Protocol(42)); err == nil {
		t.Error("unknown protocol accepted")
	}
	if _, err := db.RunDistributed(Query{K: 1, Scoring: Min()}, TPUT); err == nil {
		t.Error("TPUT with Min accepted")
	}
}

func TestApproximationThroughFacade(t *testing.T) {
	db, err := Generate(GenSpec{Kind: GenUniform, N: 2000, M: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := db.TopK(Query{K: 10, Algorithm: TA})
	if err != nil {
		t.Fatal(err)
	}
	approx, err := db.TopK(Query{K: 10, Algorithm: TA, Approximation: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if approx.Stats.TotalAccesses() > exact.Stats.TotalAccesses() {
		t.Errorf("θ=1.5 did more accesses: %d > %d",
			approx.Stats.TotalAccesses(), exact.Stats.TotalAccesses())
	}
	// θ guarantee relative to the exact answers: θ * every approximate
	// score >= the exact k-th score.
	kth := exact.Items[len(exact.Items)-1].Score
	for _, it := range approx.Items {
		if 1.5*it.Score < kth-1e-9 {
			t.Errorf("approximate item %v violates θ bound against exact k-th %v", it, kth)
		}
	}
	if _, err := db.TopK(Query{K: 10, Approximation: 0.9}); err == nil {
		t.Error("θ < 1 accepted")
	}
}

func TestStrings(t *testing.T) {
	if BPA2.String() != "BPA2" || Naive.String() != "Naive" || Algorithm(77).String() == "" {
		t.Error("algorithm strings")
	}
	if DistBPA2.String() != "dist-bpa2" || Protocol(77).String() == "" {
		t.Error("protocol strings")
	}
}

// TestPropertyFacadeMatchesOracle drives the public API end to end on
// random databases.
func TestPropertyFacadeMatchesOracle(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%40
		m := 1 + int(mRaw)%5
		k := 1 + int(kRaw)%n
		cols := make([][]float64, m)
		for i := range cols {
			col := make([]float64, n)
			for d := range col {
				col[d] = float64(rng.Intn(30))
			}
			cols[i] = col
		}
		db, err := FromColumns(cols)
		if err != nil {
			return false
		}
		want, err := db.Oracle(k, nil)
		if err != nil {
			return false
		}
		for _, alg := range Algorithms() {
			res, err := db.TopK(Query{K: k, Algorithm: alg})
			if err != nil {
				return false
			}
			for i := range want {
				if res.Items[i].Score != want[i].Score {
					t.Logf("%v: %v != %v (seed=%d)", alg, res.Items[i], want[i], seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
