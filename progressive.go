package topk

import (
	"context"
	"fmt"
	"math/rand"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/score"
)

// ProgressiveQuery configures a progressive enumeration: top-k retrieval
// without fixing k, one certified answer per Next call.
type ProgressiveQuery struct {
	// Scoring is the monotone overall-score function; defaults to Sum.
	Scoring Scoring
	// Tracker selects the best-position structure.
	Tracker Tracker
	// CheckMonotone samples the scoring function before starting and
	// rejects detectable monotonicity violations.
	CheckMonotone bool
}

// ProgressiveIterator enumerates a database in rank order using BPA2's
// probing: answer j+1 is certified (its score beats everything unseen)
// before it is returned, and no list position is ever read twice across
// the whole enumeration. Scores arrive in non-increasing order; among
// equal scores the order may differ from TopK's deterministic tie-break.
//
// Use it when k is not known upfront — "show results until the user stops
// scrolling" — instead of re-running TopK with growing k. Not safe for
// concurrent use.
type ProgressiveIterator struct {
	db    *Database
	inner *core.Progressive
}

// ProgressiveCtx starts a progressive enumeration bounded by ctx — the
// any-time query shape: answers stream out rank by rank until the caller
// stops asking or the context is canceled or reaches its deadline, at
// which point Next returns false and Err reports the context error. The
// context is checked before every probe round, so a deadline binds at
// access granularity.
func (db *Database) ProgressiveCtx(ctx context.Context, q ProgressiveQuery) (*ProgressiveIterator, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	scoring := q.Scoring
	if scoring == nil {
		scoring = Sum()
	}
	f := adaptScoring(scoring)
	if q.CheckMonotone {
		rng := rand.New(rand.NewSource(1))
		if !score.CheckMonotone(f, db.M(), 512, rng) {
			return nil, fmt.Errorf("topk: scoring function %q is not monotone", scoring.Name())
		}
	}
	inner, err := core.NewProgressive(access.NewProbe(db.db), core.ProgressiveOptions{
		Ctx:     ctx,
		Scoring: f,
		Tracker: bestpos.Kind(q.Tracker),
	})
	if err != nil {
		return nil, err
	}
	return &ProgressiveIterator{db: db, inner: inner}, nil
}

// Progressive starts a progressive enumeration without a context.
//
// Deprecated: use ProgressiveCtx, which adds cancellation and deadlines;
// Progressive is equivalent to ProgressiveCtx(context.Background(), q).
func (db *Database) Progressive(q ProgressiveQuery) (*ProgressiveIterator, error) {
	return db.ProgressiveCtx(context.Background(), q)
}

// Next returns the next answer in rank order; ok is false after all n
// items have been delivered, or once the enumeration's context fired —
// Err tells the two apart.
func (it *ProgressiveIterator) Next() (ScoredItem, bool) {
	item, ok := it.inner.Next()
	if !ok {
		return ScoredItem{}, false
	}
	return ScoredItem{
		Item:  Item(item.Item),
		Name:  it.db.NameOf(Item(item.Item)),
		Score: item.Score,
	}, true
}

// Err returns the context error that ended the enumeration early, or
// nil if it is still live (or ran to natural exhaustion).
func (it *ProgressiveIterator) Err() error { return it.inner.Err() }

// Delivered returns how many answers have been returned so far.
func (it *ProgressiveIterator) Delivered() int { return it.inner.Delivered() }

// Stats returns the access profile spent so far; Duration is zero (wall
// time of an interactive enumeration belongs to the caller).
func (it *ProgressiveIterator) Stats() Stats {
	counts := it.inner.Counts()
	return Stats{
		SortedAccesses: counts.Sorted,
		RandomAccesses: counts.Random,
		DirectAccesses: counts.Direct,
		Cost:           access.DefaultCostModel(it.db.N()).Cost(counts),
		Rounds:         it.inner.Rounds(),
	}
}
