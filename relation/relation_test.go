package relation

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"topk"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	// Apartments: size (bigger better), price (smaller better).
	if err := tbl.AddColumn("size", HigherIsBetter, []float64{50, 100, 75, 100}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("price", LowerIsBetter, []float64{500, 1500, 1000, 500}); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative rows accepted")
	}
}

func TestAddColumnValidation(t *testing.T) {
	tbl, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("", HigherIsBetter, []float64{1, 2}); err == nil {
		t.Error("empty name accepted")
	}
	if err := tbl.AddColumn("a", HigherIsBetter, []float64{1}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := tbl.AddColumn("a", Direction(9), []float64{1, 2}); err == nil {
		t.Error("unknown direction accepted")
	}
	if err := tbl.AddColumn("a", HigherIsBetter, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn("a", HigherIsBetter, []float64{1, 2}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestTableAccessors(t *testing.T) {
	tbl := sampleTable(t)
	if tbl.Rows() != 4 {
		t.Errorf("Rows = %d", tbl.Rows())
	}
	cols := tbl.Columns()
	if len(cols) != 2 || cols[0] != "size" || cols[1] != "price" {
		t.Errorf("Columns = %v", cols)
	}
	v, err := tbl.Value(1, "price")
	if err != nil || v != 1500 {
		t.Errorf("Value(1, price) = %v, %v", v, err)
	}
	if _, err := tbl.Value(1, "nope"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tbl.Value(9, "price"); err == nil {
		t.Error("row out of range accepted")
	}
}

func TestAddColumnCopiesValues(t *testing.T) {
	tbl, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	vals := []float64{1, 2}
	if err := tbl.AddColumn("a", HigherIsBetter, vals); err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	if v, _ := tbl.Value(0, "a"); v != 1 {
		t.Error("AddColumn shares caller memory")
	}
}

func TestNormalization(t *testing.T) {
	got := normalize([]float64{0, 5, 10}, HigherIsBetter)
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("normalize desc[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	got = normalize([]float64{0, 5, 10}, LowerIsBetter)
	want = []float64{1, 0.5, 0}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("normalize asc[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	for _, v := range normalize([]float64{7, 7, 7}, HigherIsBetter) {
		if v != 0.5 {
			t.Errorf("constant column normalized to %v, want 0.5", v)
		}
	}
}

func TestIndexAndTopK(t *testing.T) {
	tbl := sampleTable(t)
	ix, err := tbl.Index()
	if err != nil {
		t.Fatal(err)
	}
	if cols := ix.Columns(); len(cols) != 2 {
		t.Fatalf("Columns = %v", cols)
	}
	// Row 3 (size 100, price 500) dominates everything: both normalized
	// scores are 1.
	matches, res, err := ix.TopK(Query{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || res.Algorithm != topk.BPA2 {
		t.Errorf("result = %+v", res)
	}
	if matches[0].Row != 3 || matches[0].Score != 2 {
		t.Errorf("top match = %+v, want row 3 score 2", matches[0])
	}
	if matches[0].Attributes["size"] != 100 || matches[0].Attributes["price"] != 500 {
		t.Errorf("attributes = %v", matches[0].Attributes)
	}
}

func TestTopKWeights(t *testing.T) {
	tbl := sampleTable(t)
	ix, err := tbl.Index()
	if err != nil {
		t.Fatal(err)
	}
	// All weight on price: rows 0 and 3 (price 500) tie; smaller row
	// wins the deterministic tie-break... but row 3 also maxes size.
	// With zero weight on size the tie between rows 0 and 3 is broken by
	// row ID, so row 0 leads.
	matches, _, err := ix.TopK(Query{K: 2, Weights: map[string]float64{"size": 0, "price": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Row != 0 || matches[1].Row != 3 {
		t.Errorf("price-only ranking = %d, %d; want rows 0, 3", matches[0].Row, matches[1].Row)
	}
	// Unknown weight name errors.
	if _, _, err := ix.TopK(Query{K: 1, Weights: map[string]float64{"zzz": 1}}); err == nil {
		t.Error("unknown weight column accepted")
	}
	// Negative weights are rejected by the scoring constructor.
	if _, _, err := ix.TopK(Query{K: 1, Weights: map[string]float64{"price": -2}}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestIndexSubset(t *testing.T) {
	tbl := sampleTable(t)
	ix, err := tbl.Index("price")
	if err != nil {
		t.Fatal(err)
	}
	matches, _, err := ix.TopK(Query{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if matches[0].Row != 0 {
		t.Errorf("price-only index top = %+v, want row 0", matches[0])
	}
	if _, err := tbl.Index("nope"); err == nil {
		t.Error("unknown index column accepted")
	}
}

func TestIndexEmptyTable(t *testing.T) {
	tbl, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Index(); err == nil {
		t.Error("index over zero columns accepted")
	}
}

func TestOracleValidation(t *testing.T) {
	tbl := sampleTable(t)
	ix, err := tbl.Index()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Oracle(Query{K: 0}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := ix.Oracle(Query{K: 9}); err == nil {
		t.Error("k>rows accepted")
	}
}

// TestPropertyTopKMatchesOracle: for random tables, weights, and
// directions, every algorithm returns the oracle's scores.
func TestPropertyTopKMatchesOracle(t *testing.T) {
	prop := func(seed int64, rowsRaw, colsRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + int(rowsRaw)%40
		cols := 1 + int(colsRaw)%5
		k := 1 + int(kRaw)%rows
		tbl, err := New(rows)
		if err != nil {
			return false
		}
		weights := map[string]float64{}
		for c := 0; c < cols; c++ {
			name := string(rune('a' + c))
			dir := HigherIsBetter
			if rng.Intn(2) == 0 {
				dir = LowerIsBetter
			}
			vals := make([]float64, rows)
			for r := range vals {
				vals[r] = float64(rng.Intn(10))
			}
			if err := tbl.AddColumn(name, dir, vals); err != nil {
				return false
			}
			weights[name] = float64(rng.Intn(4))
		}
		ix, err := tbl.Index()
		if err != nil {
			return false
		}
		oracle, err := ix.Oracle(Query{K: k, Weights: weights})
		if err != nil {
			return false
		}
		for _, alg := range []topk.Algorithm{topk.TA, topk.BPA, topk.BPA2} {
			matches, _, err := ix.TopK(Query{K: k, Weights: weights, Algorithm: alg})
			if err != nil {
				t.Logf("%v: %v", alg, err)
				return false
			}
			for i := range oracle {
				if math.Abs(matches[i].Score-oracle[i].Score) > 1e-9 {
					t.Logf("%v: score %v != oracle %v (seed=%d)", alg, matches[i].Score, oracle[i].Score, seed)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDirectionString(t *testing.T) {
	if HigherIsBetter.String() != "desc" || LowerIsBetter.String() != "asc" || Direction(9).String() == "" {
		t.Error("direction strings")
	}
}
