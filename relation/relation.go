// Package relation answers top-k queries over relational tables, the
// first motivating example of the paper's introduction: "Suppose we want
// to find the top-k tuples in a relational table according to some
// scoring function over its attributes. To answer this query, it is
// sufficient to have a sorted (indexed) list of the values of each
// attribute involved in the scoring function."
//
// A Table holds named numeric columns, each with a direction (whether
// larger or smaller raw values are preferable). Index builds one sorted
// list per requested column with min-max normalized scores, so that
// per-column weights are comparable, and queries run through the topk
// engine (BPA2 by default).
package relation

import (
	"context"
	"fmt"
	"sort"

	"topk"
)

// Direction states how a column's raw values rank rows.
type Direction uint8

const (
	// HigherIsBetter ranks larger raw values first (e.g. rating).
	HigherIsBetter Direction = iota
	// LowerIsBetter ranks smaller raw values first (e.g. price).
	LowerIsBetter
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case HigherIsBetter:
		return "desc"
	case LowerIsBetter:
		return "asc"
	default:
		return fmt.Sprintf("Direction(%d)", uint8(d))
	}
}

type column struct {
	name   string
	dir    Direction
	values []float64
}

// Table is a read-only collection of equally sized numeric columns.
type Table struct {
	rows    int
	columns []column
	byName  map[string]int
}

// New returns a table with the given number of rows (> 0).
func New(rows int) (*Table, error) {
	if rows < 1 {
		return nil, fmt.Errorf("relation: table needs at least one row, got %d", rows)
	}
	return &Table{rows: rows, byName: map[string]int{}}, nil
}

// AddColumn attaches a column. The name must be unique and values must
// have exactly one entry per row. The slice is copied.
func (t *Table) AddColumn(name string, dir Direction, values []float64) error {
	if name == "" {
		return fmt.Errorf("relation: empty column name")
	}
	if _, dup := t.byName[name]; dup {
		return fmt.Errorf("relation: duplicate column %q", name)
	}
	if len(values) != t.rows {
		return fmt.Errorf("relation: column %q has %d values, table has %d rows", name, len(values), t.rows)
	}
	if dir != HigherIsBetter && dir != LowerIsBetter {
		return fmt.Errorf("relation: column %q has unknown direction %d", name, dir)
	}
	cp := make([]float64, len(values))
	copy(cp, values)
	t.byName[name] = len(t.columns)
	t.columns = append(t.columns, column{name: name, dir: dir, values: cp})
	return nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Columns returns the column names in insertion order.
func (t *Table) Columns() []string {
	out := make([]string, len(t.columns))
	for i, c := range t.columns {
		out[i] = c.name
	}
	return out
}

// Value returns the raw cell (row, column).
func (t *Table) Value(row int, name string) (float64, error) {
	i, ok := t.byName[name]
	if !ok {
		return 0, fmt.Errorf("relation: no column %q", name)
	}
	if row < 0 || row >= t.rows {
		return 0, fmt.Errorf("relation: row %d out of range [0,%d)", row, t.rows)
	}
	return t.columns[i].values[row], nil
}

// Index is a set of sorted attribute lists ready to answer weighted
// top-k queries — the paper's "sorted (indexed) list of the values of
// each attribute involved in the scoring function".
type Index struct {
	table *Table
	names []string
	db    *topk.Database
}

// Index builds sorted lists over the named columns (all columns when
// none are named). Scores are min-max normalized to [0, 1] per column —
// flipped for LowerIsBetter columns — so that query weights are
// dimension-free. Constant columns normalize to 0.5 everywhere.
func (t *Table) Index(names ...string) (*Index, error) {
	if len(t.columns) == 0 {
		return nil, fmt.Errorf("relation: table has no columns")
	}
	if len(names) == 0 {
		names = t.Columns()
	}
	cols := make([][]float64, len(names))
	for i, name := range names {
		ci, ok := t.byName[name]
		if !ok {
			return nil, fmt.Errorf("relation: no column %q", name)
		}
		cols[i] = normalize(t.columns[ci].values, t.columns[ci].dir)
	}
	db, err := topk.FromColumns(cols)
	if err != nil {
		return nil, err
	}
	cp := make([]string, len(names))
	copy(cp, names)
	return &Index{table: t, names: cp, db: db}, nil
}

// normalize maps raw values to preference scores in [0, 1].
func normalize(values []float64, dir Direction) []float64 {
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]float64, len(values))
	if lo == hi {
		for i := range out {
			out[i] = 0.5
		}
		return out
	}
	span := hi - lo
	for i, v := range values {
		s := (v - lo) / span
		if dir == LowerIsBetter {
			s = 1 - s
		}
		out[i] = s
	}
	return out
}

// Columns returns the indexed column names in list order.
func (ix *Index) Columns() []string {
	cp := make([]string, len(ix.names))
	copy(cp, ix.names)
	return cp
}

// Match is one answer row of a query.
type Match struct {
	// Row is the table row number.
	Row int
	// Score is the weighted overall preference score.
	Score float64
	// Attributes maps each indexed column to the row's RAW value, for
	// presentation.
	Attributes map[string]float64
}

// Query configures a relational top-k query.
type Query struct {
	// K is the number of rows wanted.
	K int
	// Weights maps column names to non-negative weights. Missing columns
	// weigh 1; unknown names are an error. Nil means all-ones.
	Weights map[string]float64
	// Algorithm defaults to BPA2.
	Algorithm topk.Algorithm
}

// TopK returns the k best rows under the weighted preference score.
func (ix *Index) TopK(q Query) ([]Match, *topk.Result, error) {
	weights := make([]float64, len(ix.names))
	for i := range weights {
		weights[i] = 1
	}
	for name, w := range q.Weights {
		found := false
		for i, n := range ix.names {
			if n == name {
				weights[i] = w
				found = true
				break
			}
		}
		if !found {
			return nil, nil, fmt.Errorf("relation: weight for unindexed column %q", name)
		}
	}
	scoring, err := topk.WeightedSum(weights)
	if err != nil {
		return nil, nil, err
	}
	// Relational queries are synchronous library calls with no caller
	// context yet; run uncancellable on the ctx-first entry point.
	res, err := ix.db.Exec(context.Background(), topk.Query{K: q.K, Algorithm: q.Algorithm, Scoring: scoring})
	if err != nil {
		return nil, nil, err
	}
	matches := make([]Match, len(res.Items))
	for i, it := range res.Items {
		attrs := make(map[string]float64, len(ix.names))
		for _, name := range ix.names {
			v, err := ix.table.Value(it.Item, name)
			if err != nil {
				return nil, nil, err
			}
			attrs[name] = v
		}
		matches[i] = Match{Row: it.Item, Score: it.Score, Attributes: attrs}
	}
	return matches, res, nil
}

// Oracle computes the exact answer by brute force over the normalized
// scores; a validation aid for tests and custom weightings.
func (ix *Index) Oracle(q Query) ([]Match, error) {
	matches, _, err := ix.topKByScan(q)
	return matches, err
}

func (ix *Index) topKByScan(q Query) ([]Match, *topk.Result, error) {
	if q.K < 1 || q.K > ix.table.rows {
		return nil, nil, fmt.Errorf("relation: k=%d out of range [1,%d]", q.K, ix.table.rows)
	}
	weights := make([]float64, len(ix.names))
	for i := range weights {
		weights[i] = 1
	}
	for name, w := range q.Weights {
		for i, n := range ix.names {
			if n == name {
				weights[i] = w
			}
		}
	}
	type scored struct {
		row   int
		score float64
	}
	all := make([]scored, ix.table.rows)
	for row := 0; row < ix.table.rows; row++ {
		var s float64
		for i := range ix.names {
			s += weights[i] * ix.db.LocalScore(i, row)
		}
		all[row] = scored{row: row, score: s}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].row < all[b].row
	})
	out := make([]Match, q.K)
	for i := 0; i < q.K; i++ {
		attrs := make(map[string]float64, len(ix.names))
		for _, name := range ix.names {
			v, _ := ix.table.Value(all[i].row, name)
			attrs[name] = v
		}
		out[i] = Match{Row: all[i].row, Score: all[i].score, Attributes: attrs}
	}
	return out, nil, nil
}
