package relation_test

import (
	"fmt"
	"log"

	"topk/relation"
)

// A table with mixed-direction attributes: row 2 dominates (largest
// size, lowest price).
func ExampleIndex_TopK() {
	tbl, err := relation.New(3)
	if err != nil {
		log.Fatal(err)
	}
	if err := tbl.AddColumn("size", relation.HigherIsBetter, []float64{50, 80, 100}); err != nil {
		log.Fatal(err)
	}
	if err := tbl.AddColumn("price", relation.LowerIsBetter, []float64{900, 700, 500}); err != nil {
		log.Fatal(err)
	}
	ix, err := tbl.Index()
	if err != nil {
		log.Fatal(err)
	}
	matches, _, err := ix.TopK(relation.Query{K: 1})
	if err != nil {
		log.Fatal(err)
	}
	m := matches[0]
	fmt.Printf("row %d: size=%.0f price=%.0f score=%.1f\n",
		m.Row, m.Attributes["size"], m.Attributes["price"], m.Score)
	// Output:
	// row 2: size=100 price=500 score=2.0
}
