package dist

import (
	"context"

	"topk/internal/list"
	"topk/internal/transport"
)

// TPUTA runs the adaptive-threshold TPUT variant over the deterministic
// in-process transport; see TPUTAOver.
func TPUTA(db *list.Database, opts Options) (*Result, error) {
	t, err := loopback(db)
	if err != nil {
		return nil, err
	}
	return TPUTAOver(context.Background(), t, opts)
}

// TPUTAOver runs TPUT with an adaptive phase-2 threshold split — the
// TPUT-A refinement direction of Cao & Wang's uniform bound. TPUT
// broadcasts the same threshold τ1/m to every list, which wastes scan
// budget: a list whose phase-1 boundary score (its k-th prefix score)
// is already below τ1/m contributes nothing to phase 2 however deep it
// scans, while a list with dense high scores is forced deep by a
// threshold lower than it needs.
//
// TPUTA reshapes the split using exactly the phase-1 information the
// originator already holds. For every "cold" list whose boundary score
// c[i] is below the uniform share, the threshold drops only to c[i] —
// the scan still stops at the first unseen position, since everything
// below the boundary scores below it — and the freed budget
// (τ1/m − c[i]) is handed to the "hot" lists, raising their thresholds
// so they stop sooner. The split still sums to exactly τ1, so the
// pruning argument is unchanged: an item reported nowhere in phase 2
// scores below Σ T[i] = τ1 ≤ τ2 and cannot reach the answer. Phase-3
// upper bounds use the per-list thresholds, so they only get tighter on
// hot lists. Aggregate phase-2 work never exceeds TPUT's on continuous
// score distributions (ties with a boundary score are the only way a
// cold list can return extra entries); the dist tests assert this on
// every seeded workload.
//
// Like TPUT, TPUTA requires Sum scoring over non-negative scores.
func TPUTAOver(ctx context.Context, t transport.Transport, opts Options) (*Result, error) {
	return tputRun(ctx, t, opts, adaptiveThresholds)
}

// adaptiveThresholds lowers cold lists' thresholds to their phase-1
// boundary scores and redistributes the freed budget equally over the
// hot lists. With no hot list the split stays uniform: lowering
// thresholds without raising any other would only deepen scans.
func adaptiveThresholds(tau1 float64, boundary []float64) []float64 {
	m := len(boundary)
	T := uniformThresholds(tau1, boundary)
	base := tau1 / float64(m)
	var slack float64
	var hot []int
	for i, c := range boundary {
		if c < base {
			T[i] = c
			slack += base - c
		} else {
			hot = append(hot, i)
		}
	}
	if len(hot) == 0 || slack <= 0 {
		return uniformThresholds(tau1, boundary)
	}
	share := slack / float64(len(hot))
	for _, i := range hot {
		T[i] += share
	}
	return T
}
