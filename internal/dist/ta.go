package dist

import (
	"context"

	"topk/internal/list"
	"topk/internal/transport"
)

// TA runs the Threshold Algorithm over the deterministic in-process
// transport; see TAOver.
func TA(db *list.Database, opts Options) (*Result, error) {
	t, err := loopback(db)
	if err != nil {
		return nil, err
	}
	return TAOver(context.Background(), t, opts)
}

// TAOver runs the Threshold Algorithm over the given transport: the
// originator walks the m lists position by position through
// sorted-access exchanges, and every item seen triggers (m-1) lookup
// exchanges for its missing local scores — the paper-faithful,
// non-memoized accounting of Section 3.2, so the traffic is two messages
// per access. The stopping threshold δ is computed at the originator
// from the last scores seen under sorted access; no extra messages are
// needed for it.
//
// Each round fans out in two waves a concurrent backend overlaps across
// owners: the m sorted accesses at the current depth, then the m·(m-1)
// lookups they trigger (the lookups depend on the sorted responses, so
// the waves themselves are ordered). The lookup wave is round-coalesced:
// each owner's m-1 lookups travel as one batched wire exchange, so a
// round costs two round-trips — not m — on a latency-bound backend,
// while Net keeps charging the logical messages.
func TAOver(ctx context.Context, t transport.Transport, opts Options) (*Result, error) {
	r, err := newRunner(ctx, t, opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	m, n := r.m, r.n

	last := make([]float64, m)
	locals := make([]float64, m)
	entries := make([]list.Entry, m)
	res := &Result{}
	for pos := 1; pos <= n; pos++ {
		r.nw.net.Rounds++
		// Wave 1: the sorted access of every list at this depth.
		sortedCalls := make([]transport.Call, m)
		for i := range sortedCalls {
			sortedCalls[i] = transport.Call{Owner: i, Req: transport.SortedReq{Pos: pos}}
		}
		sortedResps, err := r.doAll(sortedCalls)
		if err != nil {
			return nil, err
		}
		for i, resp := range sortedResps {
			sr, err := as[transport.SortedResp](resp)
			if err != nil {
				return nil, err
			}
			entries[i] = sr.Entry
			last[i] = sr.Entry.Score
		}
		// Wave 2: resolve every seen item at the other owners.
		lookupCalls := make([]transport.Call, 0, m*(m-1))
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				lookupCalls = append(lookupCalls, transport.Call{Owner: j, Req: transport.LookupReq{Item: entries[i].Item}})
			}
		}
		lookupResps, err := r.doAll(lookupCalls)
		if err != nil {
			return nil, err
		}
		idx := 0
		for i := 0; i < m; i++ {
			locals[i] = entries[i].Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				lr, err := as[transport.LookupResp](lookupResps[idx])
				if err != nil {
					return nil, err
				}
				idx++
				locals[j] = lr.Score
			}
			r.y.Add(entries[i].Item, r.f.Combine(locals))
		}
		delta := r.f.Combine(last)
		res.Threshold = delta
		res.StopPosition = pos
		if r.y.AtLeast(delta) {
			break
		}
		// At pos == n every kept score is >= δ by monotonicity, so the
		// loop cannot fall through with a partial answer while k <= n.
	}
	return r.finish(res)
}
