package dist

import "topk/internal/list"

// TA runs the Threshold Algorithm over the network: the originator walks
// the m lists position by position through sorted-access exchanges, and
// every item seen triggers (m-1) lookup exchanges for its missing local
// scores — the paper-faithful, non-memoized accounting of Section 3.2,
// so the traffic is two messages per access. The stopping threshold δ is
// computed at the originator from the last scores seen under sorted
// access; no extra messages are needed for it.
func TA(db *list.Database, opts Options) (*Result, error) {
	s, err := newSim(db, opts, false)
	if err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()

	last := make([]float64, m)
	locals := make([]float64, m)
	res := &Result{}
	for pos := 1; pos <= n; pos++ {
		s.nw.net.Rounds++
		for i := 0; i < m; i++ {
			sr := s.own[i].handleSorted(sortedReq{Pos: pos})
			last[i] = sr.Entry.Score
			locals[i] = sr.Entry.Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				lr := s.own[j].handleLookup(lookupReq{Item: sr.Entry.Item})
				locals[j] = lr.Score
			}
			s.y.Add(sr.Entry.Item, s.f.Combine(locals))
		}
		delta := s.f.Combine(last)
		res.Threshold = delta
		res.StopPosition = pos
		if s.y.AtLeast(delta) {
			break
		}
		// At pos == n every kept score is >= δ by monotonicity, so the
		// loop cannot fall through with a partial answer while k <= n.
	}
	return s.finish(res), nil
}
