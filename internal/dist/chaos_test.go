package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"topk/internal/chaos"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/score"
	"topk/internal/transport"
)

// chaosCluster dials a 2-replica-per-list topology through a seeded
// fault injector on the client side of the wire. DataPlaneOnly keeps
// the dial handshake and session control plane clean, so every run
// starts from a reachable cluster and the chaos lands exactly where
// the hardening machinery (retries, breakers, handoff, restart) is
// supposed to absorb it.
func chaosCluster(t *testing.T, db *list.Database, policy transport.RoutingPolicy, seed int64) (*transport.HTTPClient, *chaos.Injector) {
	t.Helper()
	const reps = 2
	topo := make(transport.Topology, db.M())
	for li := 0; li < db.M(); li++ {
		for ri := 0; ri < reps; ri++ {
			srv, err := transport.NewServer(db, li)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			topo[li] = append(topo[li], ts.URL)
		}
	}
	inj := chaos.New(chaos.Config{
		Seed:          seed,
		Delay:         0.04,
		Drop:          0.02,
		Stall:         0.005,
		Truncate:      0.01,
		Corrupt:       0.01,
		Err5xx:        0.02,
		Partition:     0.002,
		DelayDur:      2 * time.Millisecond,
		PartitionDur:  80 * time.Millisecond,
		DataPlaneOnly: true,
	})
	hc, err := transport.Dial(context.Background(), transport.DialConfig{
		Topology:         topo,
		Client:           &http.Client{Transport: &chaos.RoundTripper{In: inj}},
		Policy:           policy,
		HealthInterval:   50 * time.Millisecond,
		RequestTimeout:   250 * time.Millisecond,
		Retries:          2,
		BackoffBase:      time.Millisecond,
		BackoffCap:       20 * time.Millisecond,
		BreakerThreshold: 4,
		BreakerCooldown:  100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hc.Close() })
	return hc, inj
}

// typedChaosError reports whether err is one of the failure shapes a
// chaos run is allowed to surface: the restart driver's exhausted
// budget, a replica failure the transport could not absorb, or the
// caller's own deadline/cancellation. Anything else — and any silently
// wrong answer — is a hardening bug.
func typedChaosError(err error) bool {
	var ex *ExhaustedError
	var ofe *transport.OwnerFailedError
	return errors.As(err, &ex) || errors.As(err, &ofe) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// TestChaosParity is the chaos acceptance suite: every protocol, under
// every routing policy, driven through a seeded fault injector dealing
// delays, drops, stalls, torn frames, flipped bits, spurious 5xx and
// replica partitions. Every query must either complete bit-identically
// to the undisturbed loopback reference (answers, Net accounting,
// access counts) or fail with a typed error before its deadline —
// never a hang, never a silently wrong answer, never a leaked
// goroutine.
func TestChaosParity(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 3, Seed: 3})
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	type ref struct{ want *Result }
	refs := map[string]ref{}
	ks := []int{1, 10}
	for _, p := range overProtocols {
		for _, k := range ks {
			want, err := p.run(ctx, lb, Options{K: k, Scoring: score.Sum{}})
			if err != nil {
				t.Fatalf("loopback %s/k=%d: %v", p.name, k, err)
			}
			refs[fmt.Sprintf("%s/%d", p.name, k)] = ref{want}
		}
	}

	policies := []transport.RoutingPolicy{
		transport.RoutePrimary, transport.RouteRoundRobin, transport.RouteFastest,
	}
	completed, failed := 0, 0
	for pi, policy := range policies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			hc, inj := chaosCluster(t, db, policy, int64(1000+pi))
			base := runtime.NumGoroutine()
			for _, p := range overProtocols {
				for _, k := range ks {
					want := refs[fmt.Sprintf("%s/%d", p.name, k)].want
					qctx, cancel := context.WithTimeout(ctx, 20*time.Second)
					got, err := RunWithRestart(qctx, func() (*Result, error) {
						return p.run(qctx, hc, Options{K: k, Scoring: score.Sum{}})
					}, RestartConfig{Policy: RestartAlways, MaxRestarts: 12})
					cancel()
					if err != nil {
						if !typedChaosError(err) {
							t.Errorf("%s/k=%d: untyped failure under chaos: %v", p.name, k, err)
						} else {
							t.Logf("%s/k=%d: typed failure: %v", p.name, k, err)
						}
						failed++
						continue
					}
					completed++
					if !reflect.DeepEqual(got.Items, want.Items) {
						t.Errorf("%s/k=%d: answers differ under chaos:\n%v\nvs loopback\n%v",
							p.name, k, got.Items, want.Items)
					}
					if !reflect.DeepEqual(got.Net, want.Net) {
						t.Errorf("%s/k=%d: Net differs under chaos: %+v vs %+v",
							p.name, k, got.Net, want.Net)
					}
					if got.Accesses != want.Accesses {
						t.Errorf("%s/k=%d: accesses differ: %v vs %v",
							p.name, k, got.Accesses, want.Accesses)
					}
					if got.StopPosition != want.StopPosition {
						t.Errorf("%s/k=%d: stop position %d vs %d",
							p.name, k, got.StopPosition, want.StopPosition)
					}
				}
			}
			// No query may leave a goroutine behind, however it ended.
			waitGoroutines(t, base)
			t.Logf("policy %s: injected %s over %d draws", policy, inj.Summary(), inj.Draws())
		})
	}
	t.Logf("chaos matrix: %d completed bit-identical, %d typed failures", completed, failed)
	if completed == 0 {
		t.Fatal("no query completed under chaos — fault rates drown the hardening entirely")
	}
}

// TestChaosSoak is the opt-in endurance run (TOPK_CHAOS_SOAK=1; CI runs
// it with -race): a fixed wall-clock budget of randomized protocol/k
// queries against a fresh seeded injector, holding the same invariant
// as TestChaosParity. The fixed seeds make a failing soak replayable.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("TOPK_CHAOS_SOAK") == "" {
		t.Skip("soak disabled; set TOPK_CHAOS_SOAK=1")
	}
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 3, Seed: 3})
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	hc, inj := chaosCluster(t, db, transport.RouteRoundRobin, 777)
	base := runtime.NumGoroutine()

	rng := rand.New(rand.NewSource(99))
	deadline := time.Now().Add(30 * time.Second)
	runs, completed := 0, 0
	for time.Now().Before(deadline) {
		p := overProtocols[rng.Intn(len(overProtocols))]
		k := 1 + rng.Intn(10)
		opts := Options{K: k, Scoring: score.Sum{}}
		want, err := p.run(ctx, lb, opts)
		if err != nil {
			t.Fatalf("loopback %s/k=%d: %v", p.name, k, err)
		}
		qctx, cancel := context.WithTimeout(ctx, 20*time.Second)
		got, err := RunWithRestart(qctx, func() (*Result, error) {
			return p.run(qctx, hc, opts)
		}, RestartConfig{Policy: RestartAlways, MaxRestarts: 12})
		cancel()
		runs++
		if err != nil {
			if !typedChaosError(err) {
				t.Fatalf("%s/k=%d: untyped failure under chaos: %v", p.name, k, err)
			}
			continue
		}
		completed++
		if !reflect.DeepEqual(got.Items, want.Items) || !reflect.DeepEqual(got.Net, want.Net) ||
			got.Accesses != want.Accesses {
			t.Fatalf("%s/k=%d: run diverged from loopback under chaos", p.name, k)
		}
	}
	waitGoroutines(t, base)
	t.Logf("soak: %d/%d queries completed bit-identical; injected %s", completed, runs, inj.Summary())
	if completed == 0 {
		t.Fatal("soak completed nothing")
	}
}
