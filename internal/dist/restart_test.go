package dist

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"topk/internal/transport"
)

// ownerErr fabricates the typed replica failure the transport surfaces
// when a pinned replica dies with no synced mirror.
func ownerErr() error {
	return fmt.Errorf("wrapped: %w", &transport.OwnerFailedError{List: 1, Replica: 0, URL: "u", Err: errors.New("boom")})
}

// failNTimes returns a run that fails with err the first n calls, then
// succeeds.
func failNTimes(n int, err error) func() (*Result, error) {
	calls := 0
	return func() (*Result, error) {
		calls++
		if calls <= n {
			return nil, err
		}
		return &Result{Recovery: Recovery{Handoffs: 0, FailedReplicas: 0}}, nil
	}
}

func TestRunWithRestartOff(t *testing.T) {
	want := ownerErr()
	_, err := RunWithRestart(context.Background(), failNTimes(1, want), RestartConfig{Policy: RestartOff, MaxRestarts: 5})
	if !errors.Is(err, want) {
		t.Fatalf("RestartOff retried: %v", err)
	}
}

func TestRunWithRestartOnFailure(t *testing.T) {
	res, err := RunWithRestart(context.Background(), failNTimes(2, ownerErr()), RestartConfig{Policy: RestartOnFailure, MaxRestarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Restarts != 2 {
		t.Errorf("restarts = %d, want 2", res.Recovery.Restarts)
	}
	// Each abandoned attempt died pinned to a replica; the completing
	// run's tally covers them.
	if res.Recovery.FailedReplicas != 2 {
		t.Errorf("failed replicas = %d, want 2", res.Recovery.FailedReplicas)
	}
}

func TestRunWithRestartOnFailureIgnoresOtherErrors(t *testing.T) {
	want := errors.New("k out of range")
	_, err := RunWithRestart(context.Background(), failNTimes(1, want), RestartConfig{Policy: RestartOnFailure, MaxRestarts: 5})
	if !errors.Is(err, want) {
		t.Fatalf("non-replica failure was retried: %v", err)
	}
}

func TestRunWithRestartAlwaysRetriesPlainErrors(t *testing.T) {
	res, err := RunWithRestart(context.Background(), failNTimes(1, errors.New("transient")), RestartConfig{Policy: RestartAlways, MaxRestarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Recovery.Restarts)
	}
	// A plain error names no replica: nothing to add to the tally.
	if res.Recovery.FailedReplicas != 0 {
		t.Errorf("failed replicas = %d, want 0", res.Recovery.FailedReplicas)
	}
}

func TestRunWithRestartExhausted(t *testing.T) {
	_, err := RunWithRestart(context.Background(), failNTimes(100, ownerErr()), RestartConfig{Policy: RestartOnFailure, MaxRestarts: 2})
	var ee *ExhaustedError
	if !errors.As(err, &ee) {
		t.Fatalf("exhausted budget surfaced as %v, want *ExhaustedError", err)
	}
	if ee.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 restarts)", ee.Attempts)
	}
	// The typed replica failure stays reachable through the wrapper.
	var ofe *transport.OwnerFailedError
	if !errors.As(err, &ofe) || ofe.List != 1 {
		t.Errorf("ExhaustedError does not expose the owner failure: %v", err)
	}
}

func TestRunWithRestartZeroBudget(t *testing.T) {
	_, err := RunWithRestart(context.Background(), failNTimes(1, ownerErr()), RestartConfig{Policy: RestartAlways, MaxRestarts: 0})
	var ee *ExhaustedError
	if !errors.As(err, &ee) || ee.Attempts != 1 {
		t.Fatalf("zero budget = %v, want *ExhaustedError after 1 attempt", err)
	}
}

func TestRunWithRestartHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	run := func() (*Result, error) {
		calls++
		cancel() // the failure arrives with the context already dead
		return nil, ownerErr()
	}
	_, err := RunWithRestart(ctx, run, RestartConfig{Policy: RestartAlways, MaxRestarts: 5})
	if err == nil || calls != 1 {
		t.Fatalf("canceled run restarted (calls=%d, err=%v)", calls, err)
	}
	var ee *ExhaustedError
	if errors.As(err, &ee) {
		t.Fatalf("cancellation misreported as budget exhaustion: %v", err)
	}
}
