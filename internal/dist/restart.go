package dist

import (
	"context"
	"errors"
	"fmt"

	"topk/internal/obs"
	"topk/internal/transport"
)

// mDistRestarts counts query reruns spent by the restart driver — the
// coarse recovery path, next to the transport's finer-grained handoff
// and failover counters.
var mDistRestarts = obs.GetCounter("topk_dist_restarts_total", "Query reruns spent by the restart driver.", nil)

// RestartPolicy decides when the restart driver may rerun a failed
// query from scratch on the surviving replicas. It composes with the
// transport's mid-protocol session handoff: handoff repairs a run in
// place without losing protocol state; restart is the coarser fallback
// that throws the partial run away and starts over. A stateless
// protocol (TA, BPA — replayable exchanges only) rarely needs either;
// a sessionful protocol whose pinned replica died with no synced
// mirror needs restart to complete.
type RestartPolicy uint8

const (
	// RestartOff never reruns: the first failure surfaces to the
	// caller unchanged.
	RestartOff RestartPolicy = iota
	// RestartOnFailure reruns only when the failure is a replica
	// failure the transport could not absorb (an
	// *transport.OwnerFailedError) — the one error class where a rerun
	// on the surviving replicas can succeed.
	RestartOnFailure
	// RestartAlways reruns on any non-cancellation error. Useful when
	// failures reach the run as plain transport errors (e.g. a flat
	// unreplicated topology, where there is no failover machinery to
	// classify them).
	RestartAlways
)

// RestartConfig bounds the restart driver.
type RestartConfig struct {
	// Policy decides which failures are worth a rerun.
	Policy RestartPolicy
	// MaxRestarts is the rerun budget: a query is attempted at most
	// 1+MaxRestarts times. Zero means no reruns even when Policy would
	// allow one.
	MaxRestarts int
}

// ExhaustedError reports that the restart budget ran out: every
// attempt failed and the policy was not allowed another. Err is the
// last attempt's failure — when the runs died on a replica it wraps a
// *transport.OwnerFailedError naming the list and replica, so
// errors.As through an ExhaustedError still identifies the culprit.
type ExhaustedError struct {
	// Attempts is the total number of runs spent (1 + restarts).
	Attempts int
	// Err is the last attempt's error.
	Err error
}

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("dist: restart budget exhausted after %d attempts: %v", e.Attempts, e.Err)
}

func (e *ExhaustedError) Unwrap() error { return e.Err }

// RunWithRestart executes run, rerunning it per cfg when it fails.
// Each rerun starts the protocol from scratch: the transport opens a
// fresh session, so replicas that died during earlier attempts are
// rediscovered as failed and routed around, and the completing run's
// primary accounting (Items, Accesses, Net) is bit-identical to an
// undisturbed run — an abandoned attempt's traffic is never merged in.
// Only Result.Recovery records the disturbance: Restarts counts the
// reruns spent, and FailedReplicas includes replicas that failed
// abandoned attempts.
//
// Failures RunWithRestart never retries: context cancellation (the
// caller gave up — rerunning would outlive their deadline) and, under
// RestartOnFailure, anything that is not a replica failure.
func RunWithRestart(ctx context.Context, run func() (*Result, error), cfg RestartConfig) (*Result, error) {
	restarts := 0
	failed := 0
	for {
		res, err := run()
		if err == nil {
			res.Recovery.Restarts = restarts
			res.Recovery.FailedReplicas += failed
			return res, nil
		}
		if cfg.Policy == RestartOff || ctx.Err() != nil || !restartable(cfg.Policy, err) {
			return nil, err
		}
		if restarts >= cfg.MaxRestarts {
			return nil, &ExhaustedError{Attempts: restarts + 1, Err: err}
		}
		// The failed attempt pinned (at least) the replica named by the
		// owner-failure; count it so the completing run's FailedReplicas
		// covers the whole query, not just the final attempt.
		var ofe *transport.OwnerFailedError
		if errors.As(err, &ofe) {
			failed++
		}
		restarts++
		mDistRestarts.Inc()
	}
}

func restartable(p RestartPolicy, err error) bool {
	if p == RestartAlways {
		return true
	}
	var ofe *transport.OwnerFailedError
	return errors.As(err, &ofe)
}
