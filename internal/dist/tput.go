package dist

import (
	"fmt"

	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
)

// TPUT runs the Three Phase Uniform Threshold algorithm of Cao & Wang
// (PODC 2004), the fixed-round-trip baseline: where TA/BPA/BPA2 pay one
// exchange per access, TPUT pays at most three exchanges per owner,
// each carrying a batch (phase 3 skips owners with nothing to resolve).
//
//  1. The originator fetches every owner's top k entries and computes
//     τ1, the k-th highest partial sum (missing scores taken as 0).
//  2. It broadcasts the uniform threshold T = τ1/m; every owner answers
//     with all further entries scoring at least T. Any item not
//     reported anywhere now has overall score strictly below m·T = τ1,
//     so the refreshed k-th partial sum τ2 prunes to the candidates:
//     seen items whose upper bound (unknown scores bounded by T) still
//     reaches τ2.
//  3. The originator fetches the candidates' missing scores and ranks
//     them exactly.
//
// Both the missing-scores-are-0 lower bound and the uniform split of τ1
// across lists assume f = Σ si over non-negative scores, so TPUT rejects
// other scoring functions and databases with negative local scores.
func TPUT(db *list.Database, opts Options) (*Result, error) {
	s, err := newSim(db, opts, false)
	if err != nil {
		return nil, err
	}
	if _, ok := opts.Scoring.(score.Sum); !ok {
		return nil, fmt.Errorf("dist: TPUT requires Sum scoring, got %q", opts.Scoring.Name())
	}
	m, n, k := db.M(), db.N(), opts.K
	for i := 0; i < m; i++ {
		// The list minimum is owner metadata (cf. core.ListFloors), not a
		// charged access.
		if min := db.List(i).At(n).Score; min < 0 {
			return nil, fmt.Errorf("dist: TPUT requires non-negative scores, list %d has minimum %v", i, min)
		}
	}

	// Originator bookkeeping: the known local scores per (list, item).
	local := make([][]float64, m)
	known := make([][]bool, m)
	for i := range known {
		local[i] = make([]float64, n)
		known[i] = make([]bool, n)
	}
	knownCnt := make([]int, n)
	var items []list.ItemID // distinct seen items, first-seen order
	add := func(i int, e list.Entry) {
		if known[i][e.Item] {
			return
		}
		known[i][e.Item] = true
		local[i][e.Item] = e.Score
		if knownCnt[e.Item] == 0 {
			items = append(items, e.Item)
		}
		knownCnt[e.Item]++
	}
	// bound combines an item's known scores with fill substituted for the
	// unknown ones — fill 0 gives the partial-sum lower bound, fill T the
	// phase-two upper bound. Combining in list order keeps the float
	// arithmetic bit-identical to the centralized algorithms, so fully
	// resolved scores match the oracle exactly.
	locals := make([]float64, m)
	bound := func(d list.ItemID, fill float64) float64 {
		for i := 0; i < m; i++ {
			if known[i][d] {
				locals[i] = local[i][d]
			} else {
				locals[i] = fill
			}
		}
		return s.f.Combine(locals)
	}
	// kth returns the k-th highest partial sum. Phase 1 guarantees at
	// least k distinct items (each owner contributes k).
	kth := func() float64 {
		set := rank.NewSet(k)
		for _, d := range items {
			set.Add(d, bound(d, 0))
		}
		t, _ := set.Threshold()
		return t
	}

	// Phase 1: top-k fetch.
	s.nw.net.Rounds++
	for i := 0; i < m; i++ {
		resp := s.own[i].handleTopK(topkReq{K: k})
		for _, e := range resp.Entries {
			add(i, e)
		}
	}
	T := kth() / float64(m)

	// Phase 2: uniform-threshold scan.
	s.nw.net.Rounds++
	for i := 0; i < m; i++ {
		resp := s.own[i].handleAbove(aboveReq{T: T})
		for _, e := range resp.Entries {
			add(i, e)
		}
	}
	tau2 := kth()

	// Phase 3: resolve the candidates exactly. An unknown score is < T
	// after phase 2, so sum + unknown·T bounds an item from above.
	s.nw.net.Rounds++
	missing := make([][]list.ItemID, m)
	for _, d := range items {
		if knownCnt[d] == m || bound(d, T) < tau2 {
			continue
		}
		for i := 0; i < m; i++ {
			if !known[i][d] {
				missing[i] = append(missing[i], d)
			}
		}
	}
	for i := 0; i < m; i++ {
		if len(missing[i]) == 0 {
			continue
		}
		resp := s.own[i].handleFetch(fetchReq{Items: missing[i]})
		for j, d := range missing[i] {
			known[i][d] = true
			local[i][d] = resp.Scores[j]
			knownCnt[d]++
		}
	}

	// Every true top-k item is fully resolved: the unresolved ones are
	// bounded strictly below τ2 while k resolved items reach it.
	for _, d := range items {
		if knownCnt[d] == m {
			s.y.Add(d, bound(d, 0))
		}
	}
	res := &Result{Threshold: tau2}
	for _, o := range s.own {
		if o.depth > res.StopPosition {
			res.StopPosition = o.depth
		}
	}
	return s.finish(res), nil
}
