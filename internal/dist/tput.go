package dist

import (
	"context"
	"fmt"

	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
	"topk/internal/transport"
)

// TPUT runs the Three Phase Uniform Threshold algorithm over the
// deterministic in-process transport; see TPUTOver.
func TPUT(db *list.Database, opts Options) (*Result, error) {
	t, err := loopback(db)
	if err != nil {
		return nil, err
	}
	return TPUTOver(context.Background(), t, opts)
}

// TPUTOver runs the Three Phase Uniform Threshold algorithm of Cao &
// Wang (PODC 2004), the fixed-round-trip baseline: where TA/BPA/BPA2 pay
// one exchange per access, TPUT pays at most three exchanges per owner,
// each carrying a batch (phase 3 skips owners with nothing to resolve).
// Every phase is one fan-out a concurrent backend delivers to all owners
// at once — one message per owner per phase, so TPUT is already maximally
// round-coalesced — and TPUT's wall-clock is three round-trips, the
// design point the per-access protocols trade message volume against.
//
//  1. The originator fetches every owner's top k entries and computes
//     τ1, the k-th highest partial sum (missing scores taken as 0).
//  2. It broadcasts the uniform threshold T = τ1/m; every owner answers
//     with all further entries scoring at least T. Any item not
//     reported anywhere now has overall score strictly below m·T = τ1,
//     so the refreshed k-th partial sum τ2 prunes to the candidates:
//     seen items whose upper bound (unknown scores bounded by T) still
//     reaches τ2.
//  3. The originator fetches the candidates' missing scores and ranks
//     them exactly.
//
// Both the missing-scores-are-0 lower bound and the uniform split of τ1
// across lists assume f = Σ si over non-negative scores, so TPUT rejects
// other scoring functions and databases with negative local scores.
func TPUTOver(ctx context.Context, t transport.Transport, opts Options) (*Result, error) {
	return tputRun(ctx, t, opts, uniformThresholds)
}

// thresholdRule splits the phase-one bound tau1 into the per-list
// phase-2 thresholds T[i]. Correctness requires sum(T) <= tau1 (an item
// unreported by owner i scores below T[i] there, so an item unseen
// everywhere scores below sum(T) <= tau1 <= tau2 and cannot enter the
// answer); within that, a rule is free to shape the split using the
// phase-1 boundary scores c[i] (owner i's k-th prefix score).
type thresholdRule func(tau1 float64, boundary []float64) []float64

// uniformThresholds is TPUT's split: tau1/m everywhere.
func uniformThresholds(tau1 float64, boundary []float64) []float64 {
	T := make([]float64, len(boundary))
	for i := range T {
		T[i] = tau1 / float64(len(boundary))
	}
	return T
}

// tputRun is the three-phase skeleton shared by TPUT and TPUTA; only the
// phase-2 threshold split differs.
func tputRun(ctx context.Context, t transport.Transport, opts Options, rule thresholdRule) (*Result, error) {
	r, err := newRunner(ctx, t, opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	if _, ok := opts.Scoring.(score.Sum); !ok {
		return nil, fmt.Errorf("dist: TPUT requires Sum scoring, got %q", opts.Scoring.Name())
	}
	m, n, k := r.m, r.n, opts.K
	sts, err := r.stats()
	if err != nil {
		return nil, err
	}
	for i, st := range sts {
		// The list minimum is owner metadata (cf. core.ListFloors), not a
		// charged access.
		if st.MinScore < 0 {
			return nil, fmt.Errorf("dist: TPUT requires non-negative scores, list %d has minimum %v", i, st.MinScore)
		}
	}

	// Originator bookkeeping: the known local scores per (list, item).
	local := make([][]float64, m)
	known := make([][]bool, m)
	for i := range known {
		local[i] = make([]float64, n)
		known[i] = make([]bool, n)
	}
	knownCnt := make([]int, n)
	var items []list.ItemID // distinct seen items, first-seen order
	add := func(i int, e list.Entry) {
		if known[i][e.Item] {
			return
		}
		known[i][e.Item] = true
		local[i][e.Item] = e.Score
		if knownCnt[e.Item] == 0 {
			items = append(items, e.Item)
		}
		knownCnt[e.Item]++
	}
	// bound combines an item's known scores with fill[i] substituted for
	// the unknown ones — fill 0 gives the partial-sum lower bound, the
	// phase-2 threshold of list i its phase-two upper bound. Combining in
	// list order keeps the float arithmetic bit-identical to the
	// centralized algorithms, so fully resolved scores match the oracle
	// exactly.
	locals := make([]float64, m)
	bound := func(d list.ItemID, fill []float64) float64 {
		for i := 0; i < m; i++ {
			if known[i][d] {
				locals[i] = local[i][d]
			} else {
				locals[i] = fill[i]
			}
		}
		return r.f.Combine(locals)
	}
	zeros := make([]float64, m)
	// kth returns the k-th highest partial sum. Phase 1 guarantees at
	// least k distinct items (each owner contributes k).
	kth := func() float64 {
		set := rank.NewSet(k)
		for _, d := range items {
			set.Add(d, bound(d, zeros))
		}
		t, _ := set.Threshold()
		return t
	}

	// Phase 1: top-k fetch. boundary[i] is owner i's k-th prefix score,
	// the information the adaptive threshold split feeds on.
	r.nw.net.Rounds++
	boundary := make([]float64, m)
	topkCalls := make([]transport.Call, m)
	for i := range topkCalls {
		topkCalls[i] = transport.Call{Owner: i, Req: transport.TopKReq{K: k}}
	}
	topkResps, err := r.doAll(topkCalls)
	if err != nil {
		return nil, err
	}
	for i, resp := range topkResps {
		tr, err := as[transport.TopKResp](resp)
		if err != nil {
			return nil, err
		}
		if len(tr.Entries) != k {
			return nil, fmt.Errorf("dist: owner %d returned %d phase-1 entries, want %d", i, len(tr.Entries), k)
		}
		for _, e := range tr.Entries {
			add(i, e)
		}
		boundary[i] = tr.Entries[k-1].Score
	}
	tau1 := kth()
	T := rule(tau1, boundary)

	// Phase 2: threshold scan, one threshold per list.
	r.nw.net.Rounds++
	aboveCalls := make([]transport.Call, m)
	for i := range aboveCalls {
		aboveCalls[i] = transport.Call{Owner: i, Req: transport.AboveReq{T: T[i]}}
	}
	aboveResps, err := r.doAll(aboveCalls)
	if err != nil {
		return nil, err
	}
	for i, resp := range aboveResps {
		ar, err := as[transport.AboveResp](resp)
		if err != nil {
			return nil, err
		}
		for _, e := range ar.Entries {
			add(i, e)
		}
	}
	tau2 := kth()

	// Phase 3: resolve the candidates exactly. An unknown score in list i
	// is < T[i] after phase 2, so sum + per-list thresholds bounds an
	// item from above.
	r.nw.net.Rounds++
	missing := make([][]list.ItemID, m)
	for _, d := range items {
		if knownCnt[d] == m || bound(d, T) < tau2 {
			continue
		}
		for i := 0; i < m; i++ {
			if !known[i][d] {
				missing[i] = append(missing[i], d)
			}
		}
	}
	fetchCalls := make([]transport.Call, 0, m)
	for i := 0; i < m; i++ {
		if len(missing[i]) == 0 {
			continue
		}
		fetchCalls = append(fetchCalls, transport.Call{Owner: i, Req: transport.FetchReq{Items: missing[i]}})
	}
	fetchResps, err := r.doAll(fetchCalls)
	if err != nil {
		return nil, err
	}
	for c, resp := range fetchResps {
		i := fetchCalls[c].Owner
		fr, err := as[transport.FetchResp](resp)
		if err != nil {
			return nil, err
		}
		if len(fr.Scores) != len(missing[i]) {
			return nil, fmt.Errorf("dist: owner %d returned %d scores for %d items", i, len(fr.Scores), len(missing[i]))
		}
		for j, d := range missing[i] {
			known[i][d] = true
			local[i][d] = fr.Scores[j]
			knownCnt[d]++
		}
	}

	// Every true top-k item is fully resolved: the unresolved ones are
	// bounded strictly below τ2 while k resolved items reach it.
	for _, d := range items {
		if knownCnt[d] == m {
			r.y.Add(d, bound(d, zeros))
		}
	}
	res := &Result{Threshold: tau2}
	sts, err = r.stats()
	if err != nil {
		return nil, err
	}
	for _, st := range sts {
		if st.Depth > res.StopPosition {
			res.StopPosition = st.Depth
		}
	}
	return r.finish(res)
}
