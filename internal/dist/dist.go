// Package dist implements the distributed top-k protocols of the paper's
// Section 5 ("BPA in a distributed system") together with two baselines:
// the Threshold Algorithm run over the network (Fagin, Lotem, Naor,
// "Optimal Aggregation Algorithms for Middleware") and the Three Phase
// Uniform Threshold algorithm TPUT (Cao & Wang, PODC 2004).
//
// The setting is the paper's: each of the m sorted lists lives at its own
// owner node, and a query originator exchanges explicit request/response
// messages with the owners — it never touches a list directly. The
// simulation is deterministic and in-process: owners are message handlers
// over their local list, every list access goes through a shared
// access.Probe (so the paper's access metrics fall out by construction),
// and every message and every response scalar is tallied in Result.Net —
// what would travel over a real network.
//
// The four protocols:
//
//   - TA: every sorted and random access becomes one request/response
//     exchange, i.e. two messages per access.
//   - BPA: like TA, but lookup responses also ship the position of the
//     item in the owner's list, and the originator maintains the best
//     position of every list — the design Section 5 improves on, with
//     the position payload as its distributed overhead.
//   - BPA2: the paper's Section 5 protocol. Each owner manages its own
//     seen positions and, on request, probes its first unseen position
//     directly; the originator keeps only the answer set Y and the m
//     best-position scores, which every response piggybacks. Seen
//     positions never travel.
//   - TPUT: three fixed phases (top-k fetch, uniform-threshold scan,
//     candidate resolution). Requires Sum scoring over non-negative
//     scores; the other protocols take any monotone scoring function.
//
// All four return the exact top-k answers; they differ in message count,
// payload and access profile.
package dist

import (
	"fmt"
	"math"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
)

// inf is the neutral "no information" best-position score: an upper
// bound under any monotone scoring function.
var inf = math.Inf(1)

// Options configures a distributed top-k execution.
type Options struct {
	// K is the number of answers requested; 1 <= K <= n.
	K int
	// Scoring is the monotone overall-score function f. TPUT requires
	// score.Sum.
	Scoring score.Func
	// Tracker selects the best-position structure used by BPA (at the
	// originator) and BPA2 (at the list owners). The zero value is the
	// bit array, matching the paper's evaluation.
	Tracker bestpos.Kind
}

// validate mirrors core.Options.Validate for the distributed setting.
func (o Options) validate(db *list.Database) error {
	if db == nil {
		return fmt.Errorf("dist: nil database")
	}
	if o.Scoring == nil {
		return fmt.Errorf("dist: nil scoring function")
	}
	if o.K < 1 || o.K > db.N() {
		return fmt.Errorf("dist: k=%d out of range [1,%d]", o.K, db.N())
	}
	return nil
}

// Net tallies the simulated network traffic of a run.
type Net struct {
	// Messages counts point-to-point messages; a request/response
	// exchange is two. Every message travels between the originator and
	// one owner, so Messages is always the sum of PerOwner.
	Messages int64
	// Payload counts the scalar values (items, scores, positions)
	// carried in responses, plus variable-length request batches (TPUT's
	// phase-3 item lists). Fixed-size request fields — a position, an
	// item ID, a threshold — are priced as message headers, not payload.
	Payload int64
	// Rounds counts protocol rounds: sorted-access depths for TA/BPA,
	// probe rounds for BPA2, and the three phases for TPUT.
	Rounds int
	// PerOwner[i] counts the messages exchanged with the owner of list
	// i, in both directions. internal/dht prices each owner's traffic by
	// its overlay routing distance.
	PerOwner []int64
}

// Result reports the answers and the execution profile of one
// distributed run.
type Result struct {
	// Items are the top-k answers ordered best-first (score desc, then
	// item ID asc) with exact overall scores.
	Items []rank.ScoredItem
	// StopPosition is the sorted-access depth at which the protocol
	// stopped (TA, BPA) or the deepest position scanned by any owner
	// (TPUT). For BPA2 it is 0: BPA2 performs no sorted accesses.
	StopPosition int
	// BestPositions holds the final best position of every list for
	// BPA/BPA2, nil for the other protocols.
	BestPositions []int
	// Threshold is the final stopping threshold: δ for TA, λ for
	// BPA/BPA2, the phase-two bound τ2 for TPUT.
	Threshold float64
	// Accesses tallies the list accesses the owners performed, exactly
	// as the centralized algorithms count them.
	Accesses access.Counts
	// Net is the simulated network profile.
	Net Net
}

// network is the simulated transport between the originator and the
// owners. It only counts: delivery is a direct method call.
type network struct {
	net Net
}

func newNetwork(m int) *network {
	return &network{net: Net{PerOwner: make([]int64, m)}}
}

// request charges one originator-to-owner message carrying the given
// number of scalar values beyond its fixed-size fields. Only batched
// requests (TPUT's phase-3 item lists) carry any; single positions,
// item IDs and thresholds are header-sized and pass 0.
func (nw *network) request(owner int, scalars int) {
	nw.net.Messages++
	nw.net.PerOwner[owner]++
	nw.net.Payload += int64(scalars)
}

// respond charges one owner-to-originator message carrying the given
// number of scalar values.
func (nw *network) respond(owner int, scalars int) {
	nw.net.Messages++
	nw.net.PerOwner[owner]++
	nw.net.Payload += int64(scalars)
}

// The message vocabulary. Each request type has exactly one response
// type; an owner handler receives the request, performs its local list
// accesses, and returns the response, with the exchange charged to the
// network.

// sortedReq asks an owner for the entry at sorted position Pos (TA, BPA).
type sortedReq struct{ Pos int }

// sortedResp returns the entry; the position is implied by the request.
type sortedResp struct{ Entry list.Entry }

// lookupReq asks an owner for a random-access lookup of Item. WantPos
// requests the item's position too (BPA ships positions, TA does not).
type lookupReq struct {
	Item    list.ItemID
	WantPos bool
}

// lookupResp returns the local score, plus the position iff requested.
type lookupResp struct {
	Score float64
	Pos   int
}

// probeReq asks a BPA2 owner to read its first unseen position.
type probeReq struct{}

// probeResp returns the probed entry plus the owner's piggybacked
// best-position state.
type probeResp struct {
	Entry list.Entry
	// BestScore is the score at the owner's current best position
	// (+Inf before the owner has seen position 1).
	BestScore float64
	// Exhausted reports that every position of the list has been seen;
	// the originator stops probing this owner.
	Exhausted bool
}

// markReq asks a BPA2 owner to resolve Item and record its position in
// the owner-side tracker.
type markReq struct{ Item list.ItemID }

// markResp returns the local score plus the piggybacked best-position
// state. The item's position stays at the owner.
type markResp struct {
	Score     float64
	BestScore float64
	Exhausted bool
}

// topkReq asks an owner for its K highest entries (TPUT phase 1).
type topkReq struct{ K int }

// topkResp returns the owner's top-K entries in list order.
type topkResp struct{ Entries []list.Entry }

// aboveReq asks an owner for every entry below its already-sent prefix
// with score at least T (TPUT phase 2).
type aboveReq struct{ T float64 }

// aboveResp returns the matching entries in list order.
type aboveResp struct{ Entries []list.Entry }

// fetchReq asks an owner for the exact local scores of Items (TPUT
// phase 3).
type fetchReq struct{ Items []list.ItemID }

// fetchResp returns the scores in request order.
type fetchResp struct{ Scores []float64 }

// ownerNode is one list owner. It accesses only its own list, through
// the shared probe so access accounting matches the centralized
// algorithms, and for BPA2/TPUT keeps owner-side protocol state.
type ownerNode struct {
	i  int // list index
	n  int // list length
	pr *access.Probe
	nw *network

	// tr is the owner-managed seen-position tracker (BPA2 only).
	tr bestpos.Tracker
	// depth is the deepest sorted position read so far (TPUT only).
	depth int
}

// handleSorted serves a sorted access: two messages, two response
// scalars (item, score).
func (o *ownerNode) handleSorted(req sortedReq) sortedResp {
	o.nw.request(o.i, 0)
	e := o.pr.Sorted(o.i, req.Pos)
	o.nw.respond(o.i, 2)
	return sortedResp{Entry: e}
}

// handleLookup serves a random access: two messages, and one response
// scalar (score) — or two when the position is shipped as well (BPA).
func (o *ownerNode) handleLookup(req lookupReq) lookupResp {
	o.nw.request(o.i, 0)
	s, p := o.pr.Random(o.i, req.Item)
	if req.WantPos {
		o.nw.respond(o.i, 2)
		return lookupResp{Score: s, Pos: p}
	}
	o.nw.respond(o.i, 1)
	return lookupResp{Score: s}
}

// bestState reports the owner's current best-position score and whether
// the list is fully seen (BPA2 piggyback).
func (o *ownerNode) bestState() (bestScore float64, exhausted bool) {
	bp := o.tr.Best()
	if bp == 0 {
		// Position 1 unseen: no information yet. +Inf is the neutral
		// upper bound under any monotone scoring function.
		return inf, false
	}
	// The score at the best position was seen by this owner; reading it
	// locally is not a new access (paper Section 4.1).
	return o.pr.DB().List(o.i).At(bp).Score, bp >= o.n
}

// handleProbe serves BPA2's direct access to the first unseen position:
// two messages, three response scalars (item, score, best-position
// score).
func (o *ownerNode) handleProbe(probeReq) probeResp {
	o.nw.request(o.i, 0)
	p := o.tr.Best() + 1
	if p > o.n {
		// Defensive: the originator tracks exhaustion and stops probing;
		// answer with the piggyback only.
		best, _ := o.bestState()
		o.nw.respond(o.i, 1)
		return probeResp{BestScore: best, Exhausted: true}
	}
	e := o.pr.Direct(o.i, p)
	o.tr.MarkSeen(p)
	best, exhausted := o.bestState()
	o.nw.respond(o.i, 3)
	return probeResp{Entry: e, BestScore: best, Exhausted: exhausted}
}

// handleMark serves BPA2's random access: the owner resolves the item,
// records its position locally, and returns score plus piggyback — two
// messages, two response scalars.
func (o *ownerNode) handleMark(req markReq) markResp {
	o.nw.request(o.i, 0)
	s, p := o.pr.Random(o.i, req.Item)
	o.tr.MarkSeen(p)
	best, exhausted := o.bestState()
	o.nw.respond(o.i, 2)
	return markResp{Score: s, BestScore: best, Exhausted: exhausted}
}

// handleTopK serves TPUT phase 1: the owner reads its K best entries.
func (o *ownerNode) handleTopK(req topkReq) topkResp {
	o.nw.request(o.i, 0)
	out := make([]list.Entry, req.K)
	for p := 1; p <= req.K; p++ {
		out[p-1] = o.pr.Sorted(o.i, p)
	}
	o.depth = req.K
	o.nw.respond(o.i, 2*len(out))
	return topkResp{Entries: out}
}

// handleAbove serves TPUT phase 2: the owner continues its scan past the
// phase-1 prefix and returns every entry with score >= T. The read that
// discovers the first score below T is charged — it was performed.
func (o *ownerNode) handleAbove(req aboveReq) aboveResp {
	o.nw.request(o.i, 0)
	var out []list.Entry
	for p := o.depth + 1; p <= o.n; p++ {
		e := o.pr.Sorted(o.i, p)
		o.depth = p
		if e.Score < req.T {
			break
		}
		out = append(out, e)
	}
	o.nw.respond(o.i, 2*len(out))
	return aboveResp{Entries: out}
}

// handleFetch serves TPUT phase 3: exact scores for the listed items.
// The request ships the item batch, so it is charged as payload too.
func (o *ownerNode) handleFetch(req fetchReq) fetchResp {
	o.nw.request(o.i, len(req.Items))
	out := make([]float64, len(req.Items))
	for j, d := range req.Items {
		out[j], _ = o.pr.Random(o.i, d)
	}
	o.nw.respond(o.i, len(out))
	return fetchResp{Scores: out}
}

// sim is the originator's view of a run: the owners, the network, the
// shared probe and the answer set.
type sim struct {
	db  *list.Database
	pr  *access.Probe
	nw  *network
	own []*ownerNode
	f   score.Func
	y   *rank.Set
}

// newSim validates the options and builds the owner nodes. withTrackers
// equips each owner with a seen-position tracker (BPA2).
func newSim(db *list.Database, opts Options, withTrackers bool) (*sim, error) {
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	s := &sim{
		db: db,
		pr: access.NewProbe(db),
		nw: newNetwork(db.M()),
		f:  opts.Scoring,
		y:  rank.NewSet(opts.K),
	}
	s.own = make([]*ownerNode, db.M())
	for i := range s.own {
		o := &ownerNode{i: i, n: db.N(), pr: s.pr, nw: s.nw}
		if withTrackers {
			o.tr = bestpos.New(opts.Tracker, db.N())
		}
		s.own[i] = o
	}
	return s, nil
}

// finish assembles the common Result fields.
func (s *sim) finish(res *Result) *Result {
	res.Items = s.y.Slice()
	res.Accesses = s.pr.Counts()
	res.Net = s.nw.net
	return res
}
