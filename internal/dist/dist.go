// Package dist implements the distributed top-k protocols of the paper's
// Section 5 ("BPA in a distributed system") together with baselines from
// the literature: the Threshold Algorithm run over the network (Fagin,
// Lotem, Naor, "Optimal Aggregation Algorithms for Middleware") and the
// Three Phase Uniform Threshold algorithm TPUT (Cao & Wang, PODC 2004),
// plus TPUT's adaptive-threshold refinement TPUTA.
//
// The setting is the paper's: each of the m sorted lists lives at its own
// owner node, and a query originator exchanges explicit request/response
// messages with the owners — it never touches a list directly. The
// message vocabulary and the owner nodes live in internal/transport; the
// protocols here drive any transport.Transport, so the same originator
// code runs over the deterministic in-process backend (Loopback), the
// parallel latency-modeled backend (Concurrent) and real HTTP owners.
// Every list access goes through an access.Probe at the owner (so the
// paper's access metrics fall out by construction), and every message
// and every response scalar is tallied in Result.Net — what travels, or
// would travel, over the network. Answers, Net and access accounting are
// identical across backends; only Result.Elapsed (the wall-clock measure)
// is backend-specific.
//
// Every run executes inside its own transport session, so any number of
// originators can drive queries over one shared Transport concurrently
// without their owner-side state interleaving. The *Over drivers take a
// context.Context, checked before every exchange: a canceled or expired
// ctx aborts the run with ctx.Err() at per-access granularity and
// releases the owner-side session.
//
// The protocols:
//
//   - TA: every sorted and random access becomes one request/response
//     exchange, i.e. two messages per access.
//   - BPA: like TA, but lookup responses also ship the position of the
//     item in the owner's list, and the originator maintains the best
//     position of every list — the design Section 5 improves on, with
//     the position payload as its distributed overhead.
//   - BPA2: the paper's Section 5 protocol. Each owner manages its own
//     seen positions and, on request, probes its first unseen position
//     directly; the originator keeps only the answer set Y and the m
//     best-position scores, which every response piggybacks. Seen
//     positions never travel.
//   - TPUT: three fixed phases (top-k fetch, uniform-threshold scan,
//     candidate resolution). Requires Sum scoring over non-negative
//     scores; the other protocols take any monotone scoring function.
//   - TPUTA: TPUT with the phase-2 threshold split adaptively across
//     the lists using the phase-1 boundary scores instead of uniformly.
//
// All protocols return the exact top-k answers; they differ in message
// count, payload, access profile and round count.
package dist

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
	"topk/internal/transport"
)

// inf is the neutral "no information" best-position score: an upper
// bound under any monotone scoring function.
var inf = math.Inf(1)

// Options configures a distributed top-k execution.
type Options struct {
	// K is the number of answers requested; 1 <= K <= n.
	K int
	// Scoring is the monotone overall-score function f. TPUT and TPUTA
	// require score.Sum.
	Scoring score.Func
	// Tracker selects the best-position structure used by BPA (at the
	// originator) and BPA2 (at the list owners). The zero value is the
	// bit array, matching the paper's evaluation.
	Tracker bestpos.Kind
	// Trace records one transport.Span per wire exchange into
	// Result.Trace: round, owner, replica, kind, logical messages,
	// bytes, duration and the recovery annotations. Off by default —
	// tracing allocates per exchange, and the paper's accounting (Net,
	// Accesses) is identical either way.
	Trace bool
}

// validate mirrors core.Options.Validate for the distributed setting;
// n is the shared list length reported by the transport.
func (o Options) validate(n int) error {
	if o.Scoring == nil {
		return fmt.Errorf("dist: nil scoring function")
	}
	if o.K < 1 || o.K > n {
		return fmt.Errorf("dist: k=%d out of range [1,%d]", o.K, n)
	}
	return nil
}

// Net tallies the network traffic of a run.
type Net struct {
	// Messages counts point-to-point logical messages; a request/response
	// exchange is two. Every message travels between the originator and
	// one owner, so Messages is always the sum of PerOwner. Coalescing
	// several logical messages into one wire exchange (see Exchanges)
	// never changes this tally — it is the paper's cost metric.
	Messages int64
	// Payload counts the scalar values (items, scores, positions)
	// carried in responses, plus variable-length request batches (TPUT's
	// phase-3 item lists). Fixed-size request fields — a position, an
	// item ID, a threshold — are priced as message headers, not payload.
	Payload int64
	// Rounds counts protocol rounds: sorted-access depths for TA/BPA,
	// probe rounds for BPA2, and the three phases for TPUT/TPUTA.
	Rounds int
	// Exchanges counts wire request/response round-trips after per-round
	// coalescing: a protocol round's fan-out to one owner travels as one
	// batched exchange however many logical messages it carries, so
	// Exchanges is what a latency-bound deployment actually pays.
	// Identical across backends: the coalescing happens at the
	// originator, before any backend sees the calls.
	Exchanges int64
	// PerOwner[i] counts the logical messages exchanged with the owner of
	// list i, in both directions. internal/dht prices each owner's
	// traffic by its overlay routing distance.
	PerOwner []int64
}

// Result reports the answers and the execution profile of one
// distributed run.
type Result struct {
	// Items are the top-k answers ordered best-first (score desc, then
	// item ID asc) with exact overall scores.
	Items []rank.ScoredItem
	// StopPosition is the sorted-access depth at which the protocol
	// stopped (TA, BPA) or the deepest position scanned by any owner
	// (TPUT, TPUTA). For BPA2 it is 0: BPA2 performs no sorted accesses.
	StopPosition int
	// BestPositions holds the final best position of every list for
	// BPA/BPA2, nil for the other protocols.
	BestPositions []int
	// Threshold is the final stopping threshold: δ for TA, λ for
	// BPA/BPA2, the phase-two bound τ2 for TPUT/TPUTA.
	Threshold float64
	// Accesses tallies the list accesses the owners performed, exactly
	// as the centralized algorithms count them.
	Accesses access.Counts
	// Net is the network profile. It is identical whichever transport
	// backend carried the run.
	Net Net
	// Recovery reports the failures this run absorbed. All-zero on an
	// undisturbed run — and, by design, the ONLY Result field recovery
	// touches: a query that survived replica deaths via handoff or
	// restart reports Items, Accesses and Net bit-identical to an
	// undisturbed run, with the disturbance accounted here.
	Recovery Recovery
	// Elapsed is the transport's wall-clock measure of the run: zero
	// over Loopback, simulated time under Concurrent's latency model,
	// real time over HTTP. The one backend-specific Result field.
	Elapsed time.Duration
	// Trace holds one span per wire exchange when the run was traced
	// (Options.Trace); nil otherwise. Like Elapsed it is descriptive,
	// not normative: replica choice, byte counts and durations are
	// backend- and schedule-dependent, while span count and logical
	// message totals reconcile with Net.Exchanges and Net.Messages.
	Trace []transport.Span
}

// Recovery tallies the failures a distributed run absorbed without
// failing the query: whole-protocol reruns spent by the restart driver
// (RunWithRestart), pinned-replica handoffs the transport performed
// mid-protocol, and how many distinct replicas failed underneath the
// run. Separate from the primary accounting on purpose — the paper's
// cost metrics (Accesses, Net) describe the protocol, not the outages
// it outlived.
type Recovery struct {
	// Restarts counts full protocol reruns the restart policy spent
	// before the run completed.
	Restarts int
	// Handoffs counts pin-to-mirror session promotions inside the
	// completing run.
	Handoffs int
	// FailedReplicas counts distinct replicas that failed mid-run,
	// including ones failed attempts of a restarted query pinned to.
	FailedReplicas int
	// Backpressure counts exchanges the owners shed with a typed
	// retry-after answer that the client absorbed by waiting and
	// re-sending — admission-control friction, not failure.
	Backpressure int
}

// network tallies the traffic the runner's exchanges generate.
type network struct {
	net Net
}

func newNetwork(m int) *network {
	return &network{net: Net{PerOwner: make([]int64, m)}}
}

// request charges one originator-to-owner message carrying the given
// number of scalar values beyond its fixed-size fields.
func (nw *network) request(owner int, scalars int) {
	nw.net.Messages++
	nw.net.PerOwner[owner]++
	nw.net.Payload += int64(scalars)
}

// respond charges one owner-to-originator message carrying the given
// number of scalar values.
func (nw *network) respond(owner int, scalars int) {
	nw.net.Messages++
	nw.net.PerOwner[owner]++
	nw.net.Payload += int64(scalars)
}

// runner is the originator's execution state: the query's private
// transport session, the traffic accounting, the scoring function and
// the answer set. Every exchange goes through do/doAll so that a request
// and its response are charged exactly once, with payload derived from
// the messages themselves — the accounting cannot drift between
// backends. The context is checked before (and, backend permitting,
// during) every exchange.
//
// doAll is also where round coalescing happens: the logical calls of one
// fan-out are grouped per owner, and every owner addressed more than
// once receives a single transport.BatchReq carrying its share of the
// round — one wire exchange per owner per round, whatever the protocol's
// chattiness. Accounting stays per logical message, so coalescing is
// invisible to Net.Messages/Payload/PerOwner by construction.
type runner struct {
	ctx  context.Context
	sess transport.Session
	nw   *network
	f    score.Func
	y    *rank.Set
	m, n int

	// Per-round coalescing scratch, reused across rounds so the hot path
	// does not reallocate its grouping state per fan-out.
	ownerIdx  [][]int          // call indices per owner this round
	wireCalls []transport.Call // coalesced calls actually dispatched

	// rec collects per-exchange trace spans when Options.Trace armed a
	// SpanRecording-capable session; nil otherwise. The runner stamps
	// the protocol round before every dispatch — the drivers increment
	// Rounds, the transport fills in everything else.
	rec *transport.SpanRecorder
}

// newRunner validates the options against the transport's dimensions and
// opens a fresh owner-side session for this query. Callers must pair it
// with a deferred close.
func newRunner(ctx context.Context, t transport.Transport, opts Options) (*runner, error) {
	if t == nil {
		return nil, fmt.Errorf("dist: nil transport")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := opts.validate(t.N()); err != nil {
		return nil, err
	}
	sess, err := t.Open(ctx, opts.Tracker)
	if err != nil {
		return nil, fmt.Errorf("dist: open session: %w", err)
	}
	var rec *transport.SpanRecorder
	if opts.Trace {
		if sr, ok := sess.(transport.SpanRecording); ok {
			rec = transport.NewSpanRecorder()
			sr.SetSpanRecorder(rec)
		}
	}
	return &runner{
		ctx:      ctx,
		sess:     sess,
		nw:       newNetwork(t.M()),
		f:        opts.Scoring,
		y:        rank.NewSet(opts.K),
		m:        t.M(),
		n:        t.N(),
		ownerIdx: make([][]int, t.M()),
		rec:      rec,
	}, nil
}

// close releases the owner-side session, best-effort: it runs on every
// exit path, including cancellation, so owners never accumulate state
// from abandoned queries.
func (r *runner) close() { _ = r.sess.Close() }

// do performs one exchange and charges both directions.
func (r *runner) do(owner int, req transport.Request) (transport.Response, error) {
	if r.rec != nil {
		r.rec.SetRound(r.nw.net.Rounds)
	}
	r.nw.request(owner, req.RequestScalars())
	r.nw.net.Exchanges++
	resp, err := r.sess.Do(r.ctx, owner, req)
	if err != nil {
		return nil, fmt.Errorf("dist: %s exchange with owner %d: %w", req.Kind(), owner, err)
	}
	r.nw.respond(owner, resp.ResponseScalars())
	return resp, nil
}

// doAll performs one round's fan-out — in parallel where the backend
// supports it — and charges every logical request and response. Calls
// addressed to the same owner are coalesced into a single batched wire
// exchange for that owner (executed atomically, in submission order), so
// a k-message round costs one round-trip per owner instead of k; calls
// to distinct owners overlap as before. The returned responses are the
// logical ones, in call order — drivers never see the batch envelope.
func (r *runner) doAll(calls []transport.Call) ([]transport.Response, error) {
	if r.rec != nil {
		r.rec.SetRound(r.nw.net.Rounds)
	}
	for _, c := range calls {
		r.nw.request(c.Owner, c.Req.RequestScalars())
	}
	wire, grouped := r.coalesce(calls)
	r.nw.net.Exchanges += int64(len(wire))
	resps, err := r.sess.DoAll(r.ctx, wire)
	if err != nil {
		return nil, fmt.Errorf("dist: batched exchange: %w", err)
	}
	if grouped {
		if resps, err = r.uncoalesce(calls, wire, resps); err != nil {
			return nil, err
		}
	}
	for i, resp := range resps {
		r.nw.respond(calls[i].Owner, resp.ResponseScalars())
	}
	return resps, nil
}

// coalesce groups a round's calls per owner: owners addressed once keep
// their bare message, owners addressed k>1 times get one BatchReq of
// their k requests. Returns the wire calls (aliasing the runner's
// scratch, valid until the next round) and whether any batching
// happened.
func (r *runner) coalesce(calls []transport.Call) ([]transport.Call, bool) {
	for i := range r.ownerIdx {
		r.ownerIdx[i] = r.ownerIdx[i][:0]
	}
	multi := false
	for idx, c := range calls {
		r.ownerIdx[c.Owner] = append(r.ownerIdx[c.Owner], idx)
		multi = multi || len(r.ownerIdx[c.Owner]) > 1
	}
	if !multi {
		return calls, false
	}
	r.wireCalls = r.wireCalls[:0]
	for owner, idxs := range r.ownerIdx {
		switch len(idxs) {
		case 0:
		case 1:
			r.wireCalls = append(r.wireCalls, calls[idxs[0]])
		default:
			reqs := make([]transport.Request, len(idxs))
			for j, idx := range idxs {
				reqs[j] = calls[idx].Req
			}
			r.wireCalls = append(r.wireCalls, transport.Call{Owner: owner, Req: transport.BatchReq{Reqs: reqs}})
		}
	}
	return r.wireCalls, true
}

// uncoalesce maps the wire responses back onto the logical call order,
// unwrapping each owner's BatchResp into its per-request responses.
func (r *runner) uncoalesce(calls, wire []transport.Call, resps []transport.Response) ([]transport.Response, error) {
	out := make([]transport.Response, len(calls))
	for w, c := range wire {
		idxs := r.ownerIdx[c.Owner]
		if len(idxs) == 1 {
			out[idxs[0]] = resps[w]
			continue
		}
		br, err := as[transport.BatchResp](resps[w])
		if err != nil {
			return nil, err
		}
		if len(br.Resps) != len(idxs) {
			return nil, fmt.Errorf("dist: owner %d answered %d of %d batched requests", c.Owner, len(br.Resps), len(idxs))
		}
		for j, idx := range idxs {
			out[idx] = br.Resps[j]
		}
	}
	return out, nil
}

// as narrows a transport response to its concrete type, turning a
// misbehaving backend into an error instead of a panic.
func as[T transport.Response](resp transport.Response) (T, error) {
	v, ok := resp.(T)
	if !ok {
		return v, fmt.Errorf("dist: backend returned %T, want %T", resp, v)
	}
	return v, nil
}

// stats gathers the owners' control-plane bookkeeping for this session,
// fanned out in parallel — uncharged, but over HTTP a serial loop would
// still cost m real round-trips per query.
func (r *runner) stats() ([]transport.OwnerStats, error) {
	out := make([]transport.OwnerStats, r.m)
	errs := make([]error, r.m)
	var wg sync.WaitGroup
	for i := 0; i < r.m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i], errs[i] = r.sess.Stats(r.ctx, i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dist: stats of owner %d: %w", i, err)
		}
	}
	return out, nil
}

// finish assembles the common Result fields.
func (r *runner) finish(res *Result) (*Result, error) {
	res.Items = r.y.Slice()
	sts, err := r.stats()
	if err != nil {
		return nil, err
	}
	for _, st := range sts {
		res.Accesses = res.Accesses.Add(st.Accesses)
	}
	res.Net = r.nw.net
	// Harvest the transport session's recovery tallies (handoffs, failed
	// replicas) when the backend keeps them — the HTTP session does; the
	// in-process backends have nothing to fail and report nothing.
	if rr, ok := r.sess.(interface {
		Recovery() transport.SessionRecovery
	}); ok {
		rec := rr.Recovery()
		res.Recovery.Handoffs = rec.Handoffs
		res.Recovery.FailedReplicas = rec.FailedReplicas
		res.Recovery.Backpressure = rec.Backpressure
	}
	res.Elapsed = r.sess.Elapsed()
	if r.rec != nil {
		res.Trace = r.rec.Spans()
	}
	return res, nil
}

// loopback builds the deterministic in-process transport the db-level
// entry points (TA, BPA, BPA2, TPUT, TPUTA) run over.
func loopback(db *list.Database) (transport.Transport, error) {
	if db == nil {
		return nil, fmt.Errorf("dist: nil database")
	}
	return transport.NewLoopback(db)
}
