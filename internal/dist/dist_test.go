package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/score"
)

// protocols is the full lineup under test.
var protocols = []struct {
	name string
	run  func(*list.Database, Options) (*Result, error)
}{
	{"dist-ta", TA},
	{"dist-bpa", BPA},
	{"dist-bpa2", BPA2},
	{"tput", TPUT},
	{"tput-a", TPUTA},
}

// testDBs builds a spread of seeded random databases: independent and
// correlated, small and mid-size, few and many lists.
func testDBs(t *testing.T) map[string]*list.Database {
	t.Helper()
	specs := map[string]gen.Spec{
		"uniform-small":   {Kind: gen.Uniform, N: 120, M: 3, Seed: 1},
		"uniform-mid":     {Kind: gen.Uniform, N: 900, M: 6, Seed: 2},
		"uniform-wide":    {Kind: gen.Uniform, N: 400, M: 10, Seed: 3},
		"correlated-mid":  {Kind: gen.Correlated, N: 600, M: 5, Alpha: 0.05, Seed: 4},
		"correlated-weak": {Kind: gen.Correlated, N: 500, M: 4, Alpha: 0.5, Seed: 5},
	}
	dbs := make(map[string]*list.Database, len(specs))
	for name, spec := range specs {
		db, err := gen.Generate(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		dbs[name] = db
	}
	return dbs
}

// TestProtocolsMatchCentralizedBPA: every distributed protocol must
// return exactly the answers of centralized BPA (which are the exact
// top-k) — same items, bit-identical scores — on every workload.
func TestProtocolsMatchCentralizedBPA(t *testing.T) {
	for dbName, db := range testDBs(t) {
		for _, k := range []int{1, 10, 25} {
			want, err := core.Run(core.AlgBPA, db, core.Options{K: k, Scoring: score.Sum{}})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range protocols {
				t.Run(fmt.Sprintf("%s/k=%d/%s", dbName, k, p.name), func(t *testing.T) {
					res, err := p.run(db, Options{K: k, Scoring: score.Sum{}})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Items) != len(want.Items) {
						t.Fatalf("got %d answers, want %d", len(res.Items), len(want.Items))
					}
					for i := range want.Items {
						if res.Items[i] != want.Items[i] {
							t.Errorf("answer %d = %+v, want %+v", i, res.Items[i], want.Items[i])
						}
					}
				})
			}
		}
	}
}

// TestBPA2NeverMoreMessagesThanBPA: owner-managed best positions must
// pay off — on every workload BPA2's traffic stays at or below BPA's,
// in messages and in payload (BPA additionally ships positions).
func TestBPA2NeverMoreMessagesThanBPA(t *testing.T) {
	for dbName, db := range testDBs(t) {
		for _, k := range []int{5, 20} {
			bpa, err := BPA(db, Options{K: k, Scoring: score.Sum{}})
			if err != nil {
				t.Fatal(err)
			}
			bpa2, err := BPA2(db, Options{K: k, Scoring: score.Sum{}})
			if err != nil {
				t.Fatal(err)
			}
			if bpa2.Net.Messages > bpa.Net.Messages {
				t.Errorf("%s k=%d: BPA2 sent %d messages, BPA only %d",
					dbName, k, bpa2.Net.Messages, bpa.Net.Messages)
			}
			if bpa2.Net.Payload > bpa.Net.Payload {
				t.Errorf("%s k=%d: BPA2 shipped %d scalars, BPA only %d",
					dbName, k, bpa2.Net.Payload, bpa.Net.Payload)
			}
		}
	}
}

// TestAccessParityWithCentralized: the protocols only move the paper's
// algorithms onto the network — the owners must perform exactly the list
// accesses the centralized (non-memoized) algorithms perform, and for
// the iterative protocols every access is one request/response exchange.
func TestAccessParityWithCentralized(t *testing.T) {
	pairs := []struct {
		name string
		dist func(*list.Database, Options) (*Result, error)
		alg  core.Algorithm
	}{
		{"ta", TA, core.AlgTA},
		{"bpa", BPA, core.AlgBPA},
		{"bpa2", BPA2, core.AlgBPA2},
	}
	for dbName, db := range testDBs(t) {
		for _, pair := range pairs {
			t.Run(dbName+"/"+pair.name, func(t *testing.T) {
				want, err := core.Run(pair.alg, db, core.Options{K: 10, Scoring: score.Sum{}})
				if err != nil {
					t.Fatal(err)
				}
				res, err := pair.dist(db, Options{K: 10, Scoring: score.Sum{}})
				if err != nil {
					t.Fatal(err)
				}
				if res.Accesses != want.Counts {
					t.Errorf("accesses (%v) differ from centralized (%v)", res.Accesses, want.Counts)
				}
				if res.StopPosition != want.StopPosition {
					t.Errorf("stop position %d, centralized %d", res.StopPosition, want.StopPosition)
				}
				if got, accesses := res.Net.Messages, res.Accesses.Total(); got != 2*accesses {
					t.Errorf("%d messages for %d accesses, want two per access", got, accesses)
				}
			})
		}
	}
}

// TestNetInvariants: the accounting the DHT layer depends on. Every
// message is an exchange with one owner (PerOwner sums to Messages),
// request/response pairing keeps the count even, and no protocol runs
// without traffic.
func TestNetInvariants(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 9})
	for _, p := range protocols {
		t.Run(p.name, func(t *testing.T) {
			res, err := p.run(db, Options{K: 8, Scoring: score.Sum{}})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Net.PerOwner) != db.M() {
				t.Fatalf("PerOwner has %d entries, want %d", len(res.Net.PerOwner), db.M())
			}
			var sum int64
			for i, c := range res.Net.PerOwner {
				if c <= 0 {
					t.Errorf("owner %d exchanged no messages", i)
				}
				sum += c
			}
			if sum != res.Net.Messages {
				t.Errorf("PerOwner sums to %d, Messages is %d", sum, res.Net.Messages)
			}
			if res.Net.Messages%2 != 0 {
				t.Errorf("odd message count %d: some request went unanswered", res.Net.Messages)
			}
			if res.Net.Messages == 0 || res.Net.Payload == 0 || res.Net.Rounds == 0 {
				t.Errorf("empty traffic profile: %+v", res.Net)
			}
			if res.Accesses.Total() == 0 {
				t.Error("no list accesses recorded")
			}
		})
	}
}

// TestBPA2OwnerState: BPA2's defining property — the originator never
// learns positions (payload is items, scores and best-position scores
// only), while the owner-side trackers end at the centralized best
// positions.
func TestBPA2OwnerState(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 400, M: 5, Seed: 11})
	want, err := core.Run(core.AlgBPA2, db, core.Options{K: 10, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := BPA2(db, Options{K: 10, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BestPositions) != db.M() {
		t.Fatalf("best positions: %v", res.BestPositions)
	}
	for i, bp := range res.BestPositions {
		if bp != want.BestPositions[i] {
			t.Errorf("list %d best position %d, centralized %d", i, bp, want.BestPositions[i])
		}
	}
	if res.StopPosition != 0 {
		t.Errorf("BPA2 reported sorted stop position %d", res.StopPosition)
	}
	if res.Threshold != want.Threshold {
		t.Errorf("threshold %v, centralized %v", res.Threshold, want.Threshold)
	}
}

// TestTPUTValidation: TPUT's threshold split assumes summation over
// non-negative scores; anything else must be rejected, not mis-answered.
func TestTPUTValidation(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 50, M: 3, Seed: 1})
	if _, err := TPUT(db, Options{K: 5, Scoring: score.Min{}}); err == nil {
		t.Error("TPUT accepted Min scoring")
	}
	if _, err := TPUT(db, Options{K: 5, Scoring: score.Max{}}); err == nil {
		t.Error("TPUT accepted Max scoring")
	}
	neg, err := list.FromColumns([][]float64{{1, -2, 3}, {0.5, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TPUT(neg, Options{K: 2, Scoring: score.Sum{}}); err == nil {
		t.Error("TPUT accepted negative scores")
	}
}

// TestOptionsValidation: every protocol shares the option checks.
func TestOptionsValidation(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 50, M: 2, Seed: 1})
	for _, p := range protocols {
		if _, err := p.run(nil, Options{K: 1, Scoring: score.Sum{}}); err == nil {
			t.Errorf("%s accepted nil database", p.name)
		}
		if _, err := p.run(db, Options{K: 1}); err == nil {
			t.Errorf("%s accepted nil scoring", p.name)
		}
		if _, err := p.run(db, Options{K: 0, Scoring: score.Sum{}}); err == nil {
			t.Errorf("%s accepted k=0", p.name)
		}
		if _, err := p.run(db, Options{K: 51, Scoring: score.Sum{}}); err == nil {
			t.Errorf("%s accepted k>n", p.name)
		}
	}
}

// TestTPUTPhases: TPUT is exactly three rounds, and its exchange count
// is bounded by three per owner (phase 3 skips owners with nothing to
// resolve).
func TestTPUTPhases(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 500, M: 5, Seed: 13})
	res, err := TPUT(db, Options{K: 10, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Net.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", res.Net.Rounds)
	}
	for i, c := range res.Net.PerOwner {
		if c < 4 || c > 6 {
			t.Errorf("owner %d exchanged %d messages, want 4..6", i, c)
		}
	}
	if res.StopPosition < 10 {
		t.Errorf("stop position %d below k", res.StopPosition)
	}
}

// TestTPUTAdaptiveNoMorePhase2Work: TPUTA's whole point — redistributing
// the threshold budget from cold lists to hot ones must never deepen the
// aggregate phase-2 scan. Phase 1 reads exactly m·k sorted entries for
// both variants, so the phase-2 work is the sorted-access tally beyond
// that; TPUTA must also stay within TPUT's deepest per-owner scan.
func TestTPUTAdaptiveNoMorePhase2Work(t *testing.T) {
	for dbName, db := range testDBs(t) {
		for _, k := range []int{1, 10, 25} {
			tput, err := TPUT(db, Options{K: k, Scoring: score.Sum{}})
			if err != nil {
				t.Fatal(err)
			}
			tputa, err := TPUTA(db, Options{K: k, Scoring: score.Sum{}})
			if err != nil {
				t.Fatal(err)
			}
			mk := int64(db.M() * k)
			phase2, phase2A := tput.Accesses.Sorted-mk, tputa.Accesses.Sorted-mk
			if phase2A > phase2 {
				t.Errorf("%s k=%d: TPUTA scanned %d phase-2 entries, TPUT only %d",
					dbName, k, phase2A, phase2)
			}
			if tputa.StopPosition > tput.StopPosition {
				t.Errorf("%s k=%d: TPUTA stop position %d beyond TPUT's %d",
					dbName, k, tputa.StopPosition, tput.StopPosition)
			}
			if tputa.Net.Rounds != 3 {
				t.Errorf("%s k=%d: TPUTA ran %d rounds, want 3", dbName, k, tputa.Net.Rounds)
			}
		}
	}
}

// TestTPUTAdaptiveWinsOnSkew: on heterogeneous lists — some whose
// phase-1 boundary score sits far below the uniform share τ1/m — the
// redistributed threshold budget must buy a strictly shallower phase-2
// scan, with the answers unchanged.
func TestTPUTAdaptiveWinsOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 800
	cols := make([][]float64, 4)
	for i := range cols {
		cols[i] = make([]float64, n)
		scale := 1.0
		if i >= 2 {
			scale = 0.02 // cold lists: boundary scores far below τ1/m
		}
		for d := range cols[i] {
			cols[i][d] = scale * rng.Float64()
		}
	}
	db, err := list.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{5, 25} {
		tput, err := TPUT(db, Options{K: k, Scoring: score.Sum{}})
		if err != nil {
			t.Fatal(err)
		}
		tputa, err := TPUTA(db, Options{K: k, Scoring: score.Sum{}})
		if err != nil {
			t.Fatal(err)
		}
		if tputa.Accesses.Sorted >= tput.Accesses.Sorted {
			t.Errorf("k=%d: TPUTA scanned %d sorted entries, no better than TPUT's %d",
				k, tputa.Accesses.Sorted, tput.Accesses.Sorted)
		}
		for i := range tput.Items {
			if tputa.Items[i] != tput.Items[i] {
				t.Errorf("k=%d: answer %d differs: %+v vs %+v", k, i, tputa.Items[i], tput.Items[i])
			}
		}
	}
}

// TestTrackerKindsAgree: the tracker structure is an implementation
// choice of the owners; it must not change answers or traffic.
func TestTrackerKindsAgree(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 17})
	var want *Result
	for _, kind := range bestpos.Kinds() {
		res, err := BPA2(db, Options{K: 10, Scoring: score.Sum{}, Tracker: kind})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		if res.Net.Messages != want.Net.Messages || res.Net.Payload != want.Net.Payload ||
			res.Net.Rounds != want.Net.Rounds || res.Accesses != want.Accesses {
			t.Errorf("tracker %v changed the execution: %+v vs %+v", kind, res.Net, want.Net)
		}
		for i := range want.Items {
			if res.Items[i] != want.Items[i] {
				t.Errorf("tracker %v changed answer %d", kind, i)
			}
		}
	}
}
