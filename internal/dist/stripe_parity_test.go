package dist

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"topk/internal/gen"
	"topk/internal/score"
	"topk/internal/store/stripe"
	"topk/internal/transport"
)

// TestStripeBackedParity holds disk-backed owners bit-identical to
// RAM-backed ones: every protocol over Loopback and HTTP, with every
// owner serving from a stripe file through a deliberately tight cache,
// must reproduce the in-memory run's answers, Net accounting and access
// counts exactly. This is the acceptance gate for the claim that storage
// is invisible to the paper's middleware model.
func TestStripeBackedParity(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 3})
	raw, err := stripe.WriteBytes(db, stripe.WriteOptions{StripeCap: 32, PosPageCap: 64})
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := stripe.OpenReader(bytes.NewReader(raw), int64(len(raw)), stripe.Options{
		// A few stripes' worth: evictions happen mid-protocol.
		CacheBytes: 4 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sdb.Close() })
	disk, err := sdb.Database()
	if err != nil {
		t.Fatal(err)
	}

	ramLoopback, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	diskLoopback, err := transport.NewLoopback(disk)
	if err != nil {
		t.Fatal(err)
	}
	diskHTTP := httpCluster(t, disk)

	ctx := context.Background()
	for _, p := range overProtocols {
		for _, k := range []int{1, 10} {
			opts := Options{K: k, Scoring: score.Sum{}}
			want, err := p.run(ctx, ramLoopback, opts)
			if err != nil {
				t.Fatalf("%s/ram: %v", p.name, err)
			}
			for name, tr := range map[string]transport.Transport{
				"loopback": diskLoopback, "http": diskHTTP,
			} {
				t.Run(fmt.Sprintf("%s/k=%d/%s", p.name, k, name), func(t *testing.T) {
					got, err := p.run(ctx, tr, opts)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Items, want.Items) {
						t.Errorf("answers differ:\n disk %v\n ram  %v", got.Items, want.Items)
					}
					if !reflect.DeepEqual(got.Net, want.Net) {
						t.Errorf("Net differs: disk %+v, ram %+v", got.Net, want.Net)
					}
					if got.Accesses != want.Accesses {
						t.Errorf("accesses differ: disk %v, ram %v", got.Accesses, want.Accesses)
					}
					if got.StopPosition != want.StopPosition {
						t.Errorf("stop position: disk %d, ram %d", got.StopPosition, want.StopPosition)
					}
				})
			}
		}
	}

	if st := sdb.CacheStats(); st.Evictions == 0 || st.MaxResident > st.Budget {
		t.Fatalf("cache was not exercised under pressure, or broke its ceiling: %+v", st)
	}
}
