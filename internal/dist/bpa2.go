package dist

import (
	"topk/internal/list"
)

// BPA2 runs the paper's Section 5 distributed protocol. Each list owner
// manages its own seen positions and best position; the query originator
// keeps only the answer set Y and the m best-position scores. Per round
// the originator asks every non-exhausted owner to probe its first
// unseen position (a direct access — no position is ever read twice,
// Theorem 5) and resolves each probed item at the other owners, who
// record the looked-up positions locally. Every response piggybacks the
// owner's current best-position score, so the stopping threshold
// λ = f(s1(bp1), ..., sm(bpm)) costs no extra messages and the
// seen-position sets never travel — the property that makes BPA2
// attractive in distributed settings.
func BPA2(db *list.Database, opts Options) (*Result, error) {
	s, err := newSim(db, opts, true)
	if err != nil {
		return nil, err
	}
	m := db.M()

	// The originator's complete state: the answer set (in s.y), the m
	// best-position scores, and which owners have nothing left to probe.
	bestScore := make([]float64, m)
	exhausted := make([]bool, m)
	for i := range bestScore {
		bestScore[i] = inf
	}
	locals := make([]float64, m)

	res := &Result{}
	for {
		s.nw.net.Rounds++
		progress := false
		for i := 0; i < m; i++ {
			if exhausted[i] {
				continue // nothing unseen at this owner
			}
			pr := s.own[i].handleProbe(probeReq{})
			bestScore[i], exhausted[i] = pr.BestScore, pr.Exhausted
			progress = true
			locals[i] = pr.Entry.Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				mr := s.own[j].handleMark(markReq{Item: pr.Entry.Item})
				bestScore[j], exhausted[j] = mr.BestScore, mr.Exhausted
				locals[j] = mr.Score
			}
			s.y.Add(pr.Entry.Item, s.f.Combine(locals))
		}
		if !progress {
			// Every position of every list has been seen; Y is exact.
			break
		}

		// After the first round every owner has probed position 1 at the
		// latest, so no bestScore is left at its +Inf initial value.
		lambda := s.f.Combine(bestScore)
		res.Threshold = lambda
		if s.y.AtLeast(lambda) {
			break
		}
	}

	res.BestPositions = make([]int, m)
	for i, o := range s.own {
		res.BestPositions[i] = o.tr.Best()
	}
	return s.finish(res), nil
}
