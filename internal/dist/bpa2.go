package dist

import (
	"context"

	"topk/internal/list"
	"topk/internal/transport"
)

// BPA2 runs the paper's Section 5 distributed protocol over the
// deterministic in-process transport; see BPA2Over.
func BPA2(db *list.Database, opts Options) (*Result, error) {
	t, err := loopback(db)
	if err != nil {
		return nil, err
	}
	return BPA2Over(context.Background(), t, opts)
}

// BPA2Over runs the paper's Section 5 distributed protocol over the
// given transport. Each list owner manages its own seen positions and
// best position; the query originator keeps only the answer set Y and
// the m best-position scores. Per round the originator asks every
// non-exhausted owner to probe its first unseen position (a direct
// access — no position is ever read twice, Theorem 5) and resolves each
// probed item at the other owners, who record the looked-up positions
// locally. Every response piggybacks the owner's current best-position
// score, so the stopping threshold λ = f(s1(bp1), ..., sm(bpm)) costs no
// extra messages and the seen-position sets never travel — the property
// that makes BPA2 attractive in distributed settings.
//
// Probes are inherently sequential — which position owner i probes next
// depends on the marks earlier probes of the same round planted there —
// but the (m-1) marks each probe triggers go to distinct owners and fan
// out in one wave, which a concurrent backend overlaps. Each owner of
// that wave receives exactly one mark, so the wave is already one wire
// exchange per owner; round coalescing cannot compress BPA2 further —
// nor may the marks be deferred across probes, because probe j must
// observe every mark planted at owner j earlier in the round for the
// access counts to match centralized BPA2.
func BPA2Over(ctx context.Context, t transport.Transport, opts Options) (*Result, error) {
	r, err := newRunner(ctx, t, opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	m := r.m

	// The originator's complete state: the answer set (in r.y), the m
	// best-position scores, and which owners have nothing left to probe.
	bestScore := make([]float64, m)
	exhausted := make([]bool, m)
	for i := range bestScore {
		bestScore[i] = inf
	}
	locals := make([]float64, m)

	res := &Result{}
	for {
		r.nw.net.Rounds++
		progress := false
		for i := 0; i < m; i++ {
			if exhausted[i] {
				continue // nothing unseen at this owner
			}
			resp, err := r.do(i, transport.ProbeReq{})
			if err != nil {
				return nil, err
			}
			pr, err := as[transport.ProbeResp](resp)
			if err != nil {
				return nil, err
			}
			bestScore[i], exhausted[i] = float64(pr.BestScore), pr.Exhausted
			if pr.Empty {
				continue // defensive: owner had nothing left to probe
			}
			progress = true
			locals[i] = pr.Entry.Score
			markCalls := make([]transport.Call, 0, m-1)
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				markCalls = append(markCalls, transport.Call{Owner: j, Req: transport.MarkReq{Item: pr.Entry.Item}})
			}
			markResps, err := r.doAll(markCalls)
			if err != nil {
				return nil, err
			}
			for c, resp := range markResps {
				j := markCalls[c].Owner
				mr, err := as[transport.MarkResp](resp)
				if err != nil {
					return nil, err
				}
				bestScore[j], exhausted[j] = float64(mr.BestScore), mr.Exhausted
				locals[j] = mr.Score
			}
			r.y.Add(pr.Entry.Item, r.f.Combine(locals))
		}
		if !progress {
			// Every position of every list has been seen; Y is exact.
			break
		}

		// After the first round every owner has probed position 1 at the
		// latest, so no bestScore is left at its +Inf initial value.
		lambda := r.f.Combine(bestScore)
		res.Threshold = lambda
		if r.y.AtLeast(lambda) {
			break
		}
	}

	sts, err := r.stats()
	if err != nil {
		return nil, err
	}
	res.BestPositions = make([]int, m)
	for i, st := range sts {
		res.BestPositions[i] = st.Best
	}
	return r.finish(res)
}
