package dist

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"topk/internal/gen"
	"topk/internal/obs"
	"topk/internal/score"
	"topk/internal/transport"
)

// withObsEnabled pins the process-wide registry on for the test (it is
// on by default, but a prior test may have flipped it) and restores the
// previous state afterwards.
func withObsEnabled(t *testing.T) {
	t.Helper()
	prev := obs.Default.Enabled()
	obs.Default.SetEnabled(true)
	t.Cleanup(func() { obs.Default.SetEnabled(prev) })
}

// checkTraceInvariants asserts the backend-independent span algebra:
// one span per wire exchange, and the logical request messages summed
// over spans are exactly half of Net.Messages (each logical exchange
// is one request plus one response).
func checkTraceInvariants(t *testing.T, res *Result) {
	t.Helper()
	if int64(len(res.Trace)) != res.Net.Exchanges {
		t.Errorf("trace has %d spans, want Net.Exchanges = %d", len(res.Trace), res.Net.Exchanges)
	}
	var msgs int64
	for i, sp := range res.Trace {
		if sp.Seq != i {
			t.Errorf("span %d: Seq = %d", i, sp.Seq)
		}
		if sp.Round < 0 || sp.Round > res.Net.Rounds {
			t.Errorf("span %d: round %d outside [0,%d]", i, sp.Round, res.Net.Rounds)
		}
		if sp.Owner < 0 || int64(sp.Owner) >= int64(len(res.Net.PerOwner)) {
			t.Errorf("span %d: owner %d out of range", i, sp.Owner)
		}
		if sp.Kind == "" {
			t.Errorf("span %d: empty kind", i)
		}
		if sp.Err != "" {
			t.Errorf("span %d: unexpected error %q", i, sp.Err)
		}
		msgs += int64(sp.Msgs)
	}
	if msgs*2 != res.Net.Messages {
		t.Errorf("spans carry %d logical requests, want Net.Messages/2 = %d", msgs, res.Net.Messages/2)
	}
}

// TestTraceSpanInvariants: tracing records one span per wire exchange
// on every backend and never perturbs the primary accounting — the
// traced run's Items, Net and Accesses are bit-identical to the
// untraced run's on the same backend.
func TestTraceSpanInvariants(t *testing.T) {
	withObsEnabled(t)
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 3})
	bks := backends(t, db)
	ctx := context.Background()
	for name, bk := range bks {
		for _, p := range overProtocols {
			t.Run(name+"/"+p.name, func(t *testing.T) {
				plain, err := p.run(ctx, bk, Options{K: 10, Scoring: score.Sum{}})
				if err != nil {
					t.Fatal(err)
				}
				if plain.Trace != nil {
					t.Fatalf("untraced run carries %d spans", len(plain.Trace))
				}
				traced, err := p.run(ctx, bk, Options{K: 10, Scoring: score.Sum{}, Trace: true})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(traced.Items, plain.Items) {
					t.Errorf("tracing changed the answers")
				}
				if !reflect.DeepEqual(traced.Net, plain.Net) {
					t.Errorf("tracing perturbed Net: %+v vs %+v", traced.Net, plain.Net)
				}
				if traced.Accesses != plain.Accesses {
					t.Errorf("tracing perturbed accesses: %v vs %v", traced.Accesses, plain.Accesses)
				}
				checkTraceInvariants(t, traced)
				for i, sp := range traced.Trace {
					switch name {
					case "loopback", "concurrent":
						if sp.Replica != -1 || sp.URL != name {
							t.Errorf("span %d: in-process span names replica %d url %q", i, sp.Replica, sp.URL)
						}
						if sp.ReqBytes != 0 || sp.RespBytes != 0 {
							t.Errorf("span %d: in-process span carries wire bytes %d/%d", i, sp.ReqBytes, sp.RespBytes)
						}
					default: // http, http-json
						if sp.Replica < 0 || sp.URL == "" {
							t.Errorf("span %d: HTTP span missing replica/url: %+v", i, sp)
						}
						if sp.ReqBytes <= 0 || sp.RespBytes <= 0 {
							t.Errorf("span %d: HTTP span missing wire bytes: %+v", i, sp)
						}
						if sp.Attempts < 1 {
							t.Errorf("span %d: attempts = %d", i, sp.Attempts)
						}
					}
				}
			})
		}
	}
}

// TestReplicatedTopologyParityObserved re-runs the replicated-cluster
// parity suite with metrics explicitly enabled AND per-exchange tracing
// armed: the observability layer must be invisible to the paper's
// accounting — answers, Net and access counts stay bit-identical to the
// plain loopback reference.
func TestReplicatedTopologyParityObserved(t *testing.T) {
	withObsEnabled(t)
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 3})
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, p := range overProtocols {
		t.Run(p.name, func(t *testing.T) {
			want, err := p.run(ctx, lb, Options{K: 10, Scoring: score.Sum{}})
			if err != nil {
				t.Fatal(err)
			}
			hc, _ := replicatedCluster(t, db, 2, transport.RoutePrimary, nil)
			got, err := p.run(ctx, hc, Options{K: 10, Scoring: score.Sum{}, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Items, want.Items) {
				t.Errorf("answers differ with observability on:\n%v\nvs loopback\n%v", got.Items, want.Items)
			}
			if !reflect.DeepEqual(got.Net, want.Net) {
				t.Errorf("Net differs with observability on: %+v vs loopback %+v", got.Net, want.Net)
			}
			if got.Accesses != want.Accesses {
				t.Errorf("accesses differ with observability on: %v vs loopback %v", got.Accesses, want.Accesses)
			}
			checkTraceInvariants(t, got)
		})
	}
}

// TestRestartCounterMoves: the restart driver's rerun counter moves by
// exactly the reruns spent.
func TestRestartCounterMoves(t *testing.T) {
	withObsEnabled(t)
	c := obs.GetCounter("topk_dist_restarts_total", "Query reruns spent by the restart driver.", nil)
	before := c.Value()
	calls := 0
	res, err := RunWithRestart(context.Background(), func() (*Result, error) {
		calls++
		if calls < 3 {
			return nil, errors.New("boom")
		}
		return &Result{}, nil
	}, RestartConfig{Policy: RestartAlways, MaxRestarts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Restarts != 2 {
		t.Fatalf("restarts = %d, want 2", res.Recovery.Restarts)
	}
	if got := c.Value() - before; got != 2 {
		t.Errorf("topk_dist_restarts_total moved by %d, want 2", got)
	}
}
