package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topk/internal/bestpos"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/score"
	"topk/internal/transport"
)

// overProtocols is the transport-driven lineup: every protocol as a
// function of a context and a Transport.
var overProtocols = []struct {
	name string
	run  func(context.Context, transport.Transport, Options) (*Result, error)
}{
	{"dist-ta", TAOver},
	{"dist-bpa", BPAOver},
	{"dist-bpa2", BPA2Over},
	{"tput", TPUTOver},
	{"tput-a", TPUTAOver},
}

// backends builds one instance of every transport backend over the same
// database: Loopback, Concurrent under a latency model, and HTTP against
// httptest owner servers — once under the negotiated binary wire codec
// and once forced to the JSON fallback, so parity pins both wires.
func backends(t *testing.T, db *list.Database) map[string]transport.Transport {
	t.Helper()
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := transport.NewConcurrent(db, transport.ConstantLatency(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	hc := httpCluster(t, db)
	hcJSON := httpCluster(t, db)
	hcJSON.SetWireFormat(transport.WireJSON)
	return map[string]transport.Transport{
		"loopback": lb, "concurrent": cc, "http": hc, "http-json": hcJSON,
	}
}

// httpCluster serves every list of db over httptest owners and dials
// them.
func httpCluster(t *testing.T, db *list.Database) *transport.HTTPClient {
	t.Helper()
	urls := make([]string, db.M())
	for i := range urls {
		srv, err := transport.NewServer(db, i)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	hc, err := transport.DialOwners(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hc.Close() })
	return hc
}

// TestBackendsBitIdentical is the cross-backend parity suite: every
// protocol must produce bit-identical answers, Net accounting (messages,
// payload, rounds, per-owner traffic) and access counts over Loopback,
// Concurrent and HTTP on the seeded uniform and correlated workloads.
// Only Elapsed — the wall-clock measure — may differ, which is why it
// lives outside Net.
func TestBackendsBitIdentical(t *testing.T) {
	specs := map[string]gen.Spec{
		"uniform":    {Kind: gen.Uniform, N: 300, M: 4, Seed: 3},
		"correlated": {Kind: gen.Correlated, N: 250, M: 5, Alpha: 0.05, Seed: 4},
	}
	ctx := context.Background()
	for dbName, spec := range specs {
		db := gen.MustGenerate(spec)
		bks := backends(t, db)
		for _, p := range overProtocols {
			for _, k := range []int{1, 10} {
				opts := Options{K: k, Scoring: score.Sum{}}
				want, err := p.run(ctx, bks["loopback"], opts)
				if err != nil {
					t.Fatalf("%s/%s/loopback: %v", dbName, p.name, err)
				}
				for _, backend := range []string{"concurrent", "http", "http-json"} {
					t.Run(fmt.Sprintf("%s/%s/k=%d/%s", dbName, p.name, k, backend), func(t *testing.T) {
						got, err := p.run(ctx, bks[backend], opts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Items, want.Items) {
							t.Errorf("answers differ:\n%v\nvs loopback\n%v", got.Items, want.Items)
						}
						if !reflect.DeepEqual(got.Net, want.Net) {
							t.Errorf("Net differs: %+v vs loopback %+v", got.Net, want.Net)
						}
						if got.Accesses != want.Accesses {
							t.Errorf("accesses differ: %v vs loopback %v", got.Accesses, want.Accesses)
						}
						if got.StopPosition != want.StopPosition {
							t.Errorf("stop position %d vs loopback %d", got.StopPosition, want.StopPosition)
						}
						if got.Threshold != want.Threshold {
							t.Errorf("threshold %v vs loopback %v", got.Threshold, want.Threshold)
						}
						if !reflect.DeepEqual(got.BestPositions, want.BestPositions) {
							t.Errorf("best positions %v vs loopback %v", got.BestPositions, want.BestPositions)
						}
					})
				}
			}
		}
	}
}

// TestConcurrentSessionsParity is the session redesign's acceptance
// test: N goroutines running different queries over ONE shared HTTP
// cluster must produce answers, Net accounting and access counts
// bit-identical to the same queries run serially — owner-side state is
// keyed by session, so concurrency cannot leak between queries.
func TestConcurrentSessionsParity(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 11})
	hc := httpCluster(t, db)
	ctx := context.Background()

	// The workload: every protocol at several k values — 15 distinct
	// queries, all over the same four owners.
	type queryCase struct {
		name string
		run  func(context.Context, transport.Transport, Options) (*Result, error)
		k    int
	}
	var cases []queryCase
	for _, p := range overProtocols {
		for _, k := range []int{1, 7, 20} {
			cases = append(cases, queryCase{fmt.Sprintf("%s/k=%d", p.name, k), p.run, k})
		}
	}

	// Serial baselines.
	want := make([]*Result, len(cases))
	for i, c := range cases {
		res, err := c.run(ctx, hc, Options{K: c.k, Scoring: score.Sum{}})
		if err != nil {
			t.Fatalf("serial %s: %v", c.name, err)
		}
		want[i] = res
	}

	// The same queries, all in flight at once.
	got := make([]*Result, len(cases))
	errs := make([]error, len(cases))
	var wg sync.WaitGroup
	for i, c := range cases {
		wg.Add(1)
		go func(i int, c queryCase) {
			defer wg.Done()
			got[i], errs[i] = c.run(ctx, hc, Options{K: c.k, Scoring: score.Sum{}})
		}(i, c)
	}
	wg.Wait()

	for i, c := range cases {
		if errs[i] != nil {
			t.Errorf("concurrent %s: %v", c.name, errs[i])
			continue
		}
		if !reflect.DeepEqual(got[i].Items, want[i].Items) {
			t.Errorf("%s: concurrent answers differ:\n%v\nvs serial\n%v", c.name, got[i].Items, want[i].Items)
		}
		if !reflect.DeepEqual(got[i].Net, want[i].Net) {
			t.Errorf("%s: concurrent Net differs: %+v vs serial %+v", c.name, got[i].Net, want[i].Net)
		}
		if got[i].Accesses != want[i].Accesses {
			t.Errorf("%s: concurrent accesses differ: %v vs serial %v", c.name, got[i].Accesses, want[i].Accesses)
		}
	}
}

// TestRoundCoalescing pins the wire-exchange accounting: TA and BPA
// coalesce each round's m-1 lookups per owner into one batched exchange
// (so a round costs exactly 2m wire round-trips), while BPA2 and the
// TPUT family address every owner at most once per fan-out and have
// nothing to coalesce (Exchanges == Messages/2). Logical message counts
// are untouched either way.
func TestRoundCoalescing(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 3})
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	m := int64(db.M())
	for _, p := range overProtocols {
		res, err := p.run(ctx, lb, Options{K: 10, Scoring: score.Sum{}})
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		logical := res.Net.Messages / 2
		switch p.name {
		case "dist-ta", "dist-bpa":
			if want := int64(res.Net.Rounds) * 2 * m; res.Net.Exchanges != want {
				t.Errorf("%s: exchanges = %d, want %d (2m per round)", p.name, res.Net.Exchanges, want)
			}
			if res.Net.Exchanges >= logical {
				t.Errorf("%s: coalescing did not reduce exchanges (%d wire vs %d logical)",
					p.name, res.Net.Exchanges, logical)
			}
		default:
			if res.Net.Exchanges != logical {
				t.Errorf("%s: exchanges = %d, want %d (one per logical exchange)",
					p.name, res.Net.Exchanges, logical)
			}
		}
	}
}

// cancelAfter wraps a Transport so that the paired cancel function fires
// after a fixed number of data-plane exchanges — a deterministic way to
// cancel any backend mid-query.
type cancelAfter struct {
	transport.Transport
	cancel context.CancelFunc
	left   atomic.Int32
}

func (c *cancelAfter) Open(ctx context.Context, tracker bestpos.Kind) (transport.Session, error) {
	s, err := c.Transport.Open(ctx, tracker)
	if err != nil {
		return nil, err
	}
	return &cancelSession{Session: s, p: c}, nil
}

type cancelSession struct {
	transport.Session
	p *cancelAfter
}

func (s *cancelSession) tick(n int32) {
	if s.p.left.Add(-n) <= 0 {
		s.p.cancel()
	}
}

func (s *cancelSession) Do(ctx context.Context, owner int, req transport.Request) (transport.Response, error) {
	s.tick(1)
	return s.Session.Do(ctx, owner, req)
}

func (s *cancelSession) DoAll(ctx context.Context, calls []transport.Call) ([]transport.Response, error) {
	s.tick(int32(len(calls)))
	return s.Session.DoAll(ctx, calls)
}

// TestCancellationAllBackends: a ctx canceled mid-query must surface
// ctx.Err() from every protocol driver on every backend, promptly and
// without leaking goroutines (asserted via before/after goroutine
// counts; run under -race in CI).
func TestCancellationAllBackends(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 3})
	makeBackends := map[string]func(t *testing.T) transport.Transport{
		"loopback": func(t *testing.T) transport.Transport {
			lb, err := transport.NewLoopback(db)
			if err != nil {
				t.Fatal(err)
			}
			return lb
		},
		"concurrent": func(t *testing.T) transport.Transport {
			cc, err := transport.NewConcurrent(db, transport.ConstantLatency(time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cc.Close() })
			return cc
		},
		"http": func(t *testing.T) transport.Transport {
			return httpCluster(t, db)
		},
	}
	for backend, mk := range makeBackends {
		for _, p := range overProtocols {
			t.Run(backend+"/"+p.name, func(t *testing.T) {
				tr := mk(t)
				base := runtime.NumGoroutine()
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				ca := &cancelAfter{Transport: tr, cancel: cancel}
				ca.left.Store(5) // cancel mid-protocol, after a handful of exchanges
				_, err := p.run(ctx, ca, Options{K: 10, Scoring: score.Sum{}})
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("want context.Canceled, got %v", err)
				}
				waitGoroutines(t, base)
			})
		}
	}
}

// waitGoroutines waits for the goroutine count to settle back to at most
// base, tolerating scheduler and net/http teardown lag.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d, want <= %d", runtime.NumGoroutine(), base)
}

// TestCancellationReleasesSessions: a canceled query must not leave its
// session behind at the owners — the leak that would starve MaxSessions
// under churn.
func TestCancellationReleasesSessions(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 200, M: 3, Seed: 7})
	srvs := make([]*transport.Server, db.M())
	urls := make([]string, db.M())
	for i := range urls {
		srv, err := transport.NewServer(db, i)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		srvs[i] = srv
		urls[i] = ts.URL
	}
	hc, err := transport.DialOwners(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ca := &cancelAfter{Transport: hc, cancel: cancel}
	ca.left.Store(4)
	if _, err := BPA2Over(ctx, ca, Options{K: 10, Scoring: score.Sum{}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	for i, srv := range srvs {
		if n := srv.Owner().Sessions(); n != 0 {
			t.Errorf("owner %d still holds %d sessions after cancellation", i, n)
		}
	}
}

// TestConcurrentLatencyRounds checks the latency model's round
// accounting: under a constant per-exchange round-trip, a protocol's
// simulated wall-clock is bounded below by its non-empty rounds (TPUT's
// phase 3 can resolve nothing and cost nothing) and strictly above-bound
// by the full serialization of all its exchanges — overlapping the
// owners is the backend's whole point. TPUT's three batched rounds must
// beat the per-access protocols by a wide margin; that fixed-round
// advantage is exactly what the uniform-threshold design buys.
func TestConcurrentLatencyRounds(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 9})
	ctx := context.Background()
	rtt := time.Millisecond
	elapsed := make(map[string]time.Duration)
	rounds := make(map[string]int)
	for _, p := range overProtocols {
		cc, err := transport.NewConcurrent(db, transport.ConstantLatency(rtt))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.run(ctx, cc, Options{K: 8, Scoring: score.Sum{}})
		if err != nil {
			t.Fatal(err)
		}
		elapsed[p.name], rounds[p.name] = res.Elapsed, res.Net.Rounds
		cc.Close()
		exchanges := res.Net.Messages / 2
		if min := time.Duration(res.Net.Rounds-1) * rtt; res.Elapsed < min {
			t.Errorf("%s: elapsed %v below one round-trip per non-empty round (%v)", p.name, res.Elapsed, min)
		}
		if res.Elapsed >= time.Duration(exchanges)*rtt {
			t.Errorf("%s: no overlap: %v for %d exchanges", p.name, res.Elapsed, exchanges)
		}
	}
	// TPUT pays three fan-outs however deep the scan; the per-access
	// protocols pay a data-dependent chain of rounds.
	for _, name := range []string{"dist-ta", "dist-bpa", "dist-bpa2"} {
		if elapsed["tput"] >= elapsed[name] {
			t.Errorf("TPUT (%v) not faster than %s (%v) under 1ms RTT",
				elapsed["tput"], name, elapsed[name])
		}
	}
	// BPA2 stops in fewer rounds than TA (better best positions), even
	// though each of its rounds chains m data-dependent probes.
	if rounds["dist-bpa2"] >= rounds["dist-ta"] {
		t.Errorf("BPA2 took %d rounds, TA only %d", rounds["dist-bpa2"], rounds["dist-ta"])
	}
}

// TestHTTPClusterMatchesCentralized is the acceptance scenario in
// miniature: HTTP owners (one per list), an originator driving BPA2 over
// them, and the answers matching the centralized run bit for bit —
// while the wall-clock is real, nonzero time.
func TestHTTPClusterMatchesCentralized(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 400, M: 3, Seed: 21})
	want, err := BPA2(db, Options{K: 10, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	hc := httpCluster(t, db)
	got, err := BPA2Over(context.Background(), hc, Options{K: 10, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatalf("cluster answers differ from centralized:\n%v\nvs\n%v", got.Items, want.Items)
	}
	if got.Elapsed <= 0 {
		t.Error("HTTP run reported zero elapsed time")
	}
	if want.Elapsed != 0 {
		t.Errorf("loopback run reported nonzero elapsed %v", want.Elapsed)
	}
}

// killGate wraps one replica's handler so the test can crash it
// mid-query: once armed (killAfterRPCs >= 0), the gate serves that many
// /rpc calls and then aborts every connection — data plane and control
// plane alike, as a crashed process would.
type killGate struct {
	inner     http.Handler
	armed     bool
	remaining atomic.Int64
	dead      atomic.Bool
}

func newKillGate(inner http.Handler, killAfterRPCs int) *killGate {
	g := &killGate{inner: inner, armed: killAfterRPCs >= 0}
	g.remaining.Store(int64(killAfterRPCs))
	return g
}

func (g *killGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	if g.armed && strings.HasPrefix(r.URL.Path, "/rpc/") && g.remaining.Add(-1) < 0 {
		g.dead.Store(true)
		panic(http.ErrAbortHandler)
	}
	g.inner.ServeHTTP(w, r)
}

// replicatedCluster dials a topology serving every list of db from
// `reps` independent owner processes. gates[li][ri] controls each
// replica's life.
func replicatedCluster(t *testing.T, db *list.Database, reps int, policy transport.RoutingPolicy, killAfter func(li, ri int) int) (*transport.HTTPClient, [][]*killGate) {
	t.Helper()
	topo := make(transport.Topology, db.M())
	gates := make([][]*killGate, db.M())
	for li := 0; li < db.M(); li++ {
		for ri := 0; ri < reps; ri++ {
			srv, err := transport.NewServer(db, li)
			if err != nil {
				t.Fatal(err)
			}
			after := -1
			if killAfter != nil {
				after = killAfter(li, ri)
			}
			g := newKillGate(srv.Handler(), after)
			ts := httptest.NewServer(g)
			t.Cleanup(ts.Close)
			topo[li] = append(topo[li], ts.URL)
			gates[li] = append(gates[li], g)
		}
	}
	hc, err := transport.Dial(context.Background(), transport.DialConfig{
		Topology:       topo,
		Policy:         policy,
		HealthInterval: -1, // deterministic: only the data plane updates health
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hc.Close() })
	return hc, gates
}

// TestReplicatedTopologyParity extends the parity suite to replicated
// clusters: every protocol over a 2-replica-per-list topology, under
// every routing policy, must produce answers, Net accounting and access
// counts bit-identical to the loopback reference — replicas serve the
// same list, so routing must be invisible to everything but wall-clock.
func TestReplicatedTopologyParity(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 3})
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	policies := []transport.RoutingPolicy{
		transport.RoutePrimary, transport.RouteRoundRobin, transport.RouteFastest,
	}
	for _, p := range overProtocols {
		opts := Options{K: 10, Scoring: score.Sum{}}
		want, err := p.run(ctx, lb, opts)
		if err != nil {
			t.Fatalf("%s/loopback: %v", p.name, err)
		}
		for _, policy := range policies {
			t.Run(fmt.Sprintf("%s/%s", p.name, policy), func(t *testing.T) {
				hc, _ := replicatedCluster(t, db, 2, policy, nil)
				got, err := p.run(ctx, hc, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Items, want.Items) {
					t.Errorf("answers differ:\n%v\nvs loopback\n%v", got.Items, want.Items)
				}
				if !reflect.DeepEqual(got.Net, want.Net) {
					t.Errorf("Net differs: %+v vs loopback %+v", got.Net, want.Net)
				}
				if got.Accesses != want.Accesses {
					t.Errorf("accesses differ: %v vs loopback %v", got.Accesses, want.Accesses)
				}
			})
		}
	}
}

// TestKillOwnerMidQuery is the zero-failed-queries acceptance scenario:
// one of the two replicas of list 0 is killed mid-query, on every
// protocol — and EVERY protocol must now complete, with answers,
// Messages, Payload, Rounds and access counts bit-identical to the
// healthy run. Stateless traffic (TA, BPA — sorted reads and lookups)
// fails over; cursor-bearing traffic (BPA2 probes, TPUT/TPUTA
// above-scans) hands the session off to the mirror replica the
// transport kept synced. Result.Recovery is the only place the kill
// shows up. Either way: no hangs, no goroutine leaks.
func TestKillOwnerMidQuery(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 3})
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := Options{K: 10, Scoring: score.Sum{}}

	cases := []struct {
		name      string
		run       func(context.Context, transport.Transport, Options) (*Result, error)
		killAfter int // /rpc calls list 0's replica 0 serves before dying
		handoffs  int // 0: stateless failover absorbs it; 1: session handoff
	}{
		// TA and BPA: every exchange is stateless — the killed replica's
		// in-flight exchange fails over and the query finishes untouched.
		{"dist-ta", TAOver, 3, 0},
		{"dist-bpa", BPAOver, 3, 0},
		// BPA2 pins its probe cursor to the replica that dies: the session
		// hands off to the synced mirror and resumes mid-protocol.
		{"dist-bpa2", BPA2Over, 2, 1},
		// TPUT family, killed during phase 2: the above-scan's depth
		// cursor moves to the mirror, which resumes at the synced depth.
		{"tput-above", TPUTOver, 1, 1},
		{"tput-a-above", TPUTAOver, 1, 1},
		// TPUT killed after phase 2: only the stateless phase-3 fetch is
		// left, which fails over — no handoff needed.
		{"tput-fetch", TPUTOver, 2, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := c.run(ctx, lb, opts)
			if err != nil {
				t.Fatal(err)
			}
			hc, gates := replicatedCluster(t, db, 2, transport.RoutePrimary, func(li, ri int) int {
				if li == 0 && ri == 0 {
					return c.killAfter
				}
				return -1
			})
			base := runtime.NumGoroutine()
			got, err := c.run(ctx, hc, opts)
			if !gates[0][0].dead.Load() {
				t.Fatal("the kill never fired: the test exercised a healthy cluster")
			}
			if err != nil {
				t.Fatalf("query did not survive the replica kill: %v", err)
			}
			if !reflect.DeepEqual(got.Items, want.Items) {
				t.Errorf("answers differ after recovery:\n%v\nvs healthy\n%v", got.Items, want.Items)
			}
			if !reflect.DeepEqual(got.Net, want.Net) {
				t.Errorf("Net differs after recovery: %+v vs healthy %+v", got.Net, want.Net)
			}
			if got.Accesses != want.Accesses {
				t.Errorf("accesses differ after recovery: %v vs healthy %v", got.Accesses, want.Accesses)
			}
			if got.Recovery.Handoffs != c.handoffs {
				t.Errorf("handoffs = %d, want %d", got.Recovery.Handoffs, c.handoffs)
			}
			if got.Recovery.FailedReplicas != 1 {
				t.Errorf("failed replicas = %d, want 1", got.Recovery.FailedReplicas)
			}
			if want.Recovery != (Recovery{}) {
				t.Errorf("healthy loopback run reported recovery %+v", want.Recovery)
			}
			waitGoroutines(t, base)
		})
	}
}

// TestKillScheduleZeroFailedQueries is the exhaustive kill-any-replica-
// at-any-instant sweep: for every protocol and every routing policy,
// list 0's primary replica is killed after each possible number of
// served data-plane calls. As long as one replica of the list survives,
// every query must complete with answers and primary accounting
// bit-identical to the undisturbed loopback run — the kill may show up
// only in Result.Recovery.
func TestKillScheduleZeroFailedQueries(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 120, M: 3, Seed: 7})
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := Options{K: 6, Scoring: score.Sum{}}
	policies := []transport.RoutingPolicy{
		transport.RoutePrimary, transport.RouteRoundRobin, transport.RouteFastest,
	}
	for _, p := range overProtocols {
		want, err := p.run(ctx, lb, opts)
		if err != nil {
			t.Fatalf("%s/loopback: %v", p.name, err)
		}
		for _, policy := range policies {
			t.Run(fmt.Sprintf("%s/%s", p.name, policy), func(t *testing.T) {
				// Walk the kill instant forward until a run finishes without
				// the gate firing — every later instant is the healthy run.
				const maxInstant = 80
				fired := 0
				for ka := 0; ka < maxInstant; ka++ {
					hc, gates := replicatedCluster(t, db, 2, policy, func(li, ri int) int {
						if li == 0 && ri == 0 {
							return ka
						}
						return -1
					})
					got, err := p.run(ctx, hc, opts)
					if err != nil {
						t.Fatalf("kill at instant %d failed the query: %v", ka, err)
					}
					if !reflect.DeepEqual(got.Items, want.Items) {
						t.Fatalf("kill at instant %d changed the answers:\n%v\nvs\n%v", ka, got.Items, want.Items)
					}
					if !reflect.DeepEqual(got.Net, want.Net) {
						t.Fatalf("kill at instant %d changed Net: %+v vs %+v", ka, got.Net, want.Net)
					}
					if got.Accesses != want.Accesses {
						t.Fatalf("kill at instant %d changed accesses: %v vs %v", ka, got.Accesses, want.Accesses)
					}
					if !gates[0][0].dead.Load() {
						if got.Recovery != (Recovery{}) {
							t.Fatalf("undisturbed run reported recovery %+v", got.Recovery)
						}
						return // schedule exhausted
					}
					fired++
				}
				t.Fatalf("kill schedule did not converge within %d instants (%d kills fired)", maxInstant, fired)
			})
		}
	}
}

// TestKillUnpinnedReplica: killing the replica a session is NOT pinned
// to must be invisible even to the cursor-bearing protocols — BPA2
// completes bit-identically when the standby dies.
func TestKillUnpinnedReplica(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 3})
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	opts := Options{K: 10, Scoring: score.Sum{}}
	want, err := BPA2Over(ctx, lb, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Primary policy pins everything to replica 0; replica 1 of every
	// list dies on its first data-plane call (it should never get one)
	// — and to make the kill actually fire mid-query, crash it outright
	// partway through via the gate's dead switch instead.
	hc, gates := replicatedCluster(t, db, 2, transport.RoutePrimary, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, g := range gates {
			g[1].dead.Store(true)
		}
	}()
	got, err := BPA2Over(ctx, hc, opts)
	<-done
	if err != nil {
		t.Fatalf("standby death failed the query: %v", err)
	}
	if !reflect.DeepEqual(got.Items, want.Items) || !reflect.DeepEqual(got.Net, want.Net) || got.Accesses != want.Accesses {
		t.Errorf("standby death perturbed the run: %+v vs %+v", got.Net, want.Net)
	}
}
