package dist

import (
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/score"
	"topk/internal/transport"
)

// overProtocols is the transport-driven lineup: every protocol as a
// function of a Transport.
var overProtocols = []struct {
	name string
	run  func(transport.Transport, Options) (*Result, error)
}{
	{"dist-ta", TAOver},
	{"dist-bpa", BPAOver},
	{"dist-bpa2", BPA2Over},
	{"tput", TPUTOver},
	{"tput-a", TPUTAOver},
}

// backends builds one instance of every transport backend over the same
// database: Loopback, Concurrent under a latency model, and HTTP against
// httptest owner servers.
func backends(t *testing.T, db *list.Database) map[string]transport.Transport {
	t.Helper()
	lb, err := transport.NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := transport.NewConcurrent(db, transport.ConstantLatency(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	urls := make([]string, db.M())
	for i := range urls {
		srv, err := transport.NewServer(db, i)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	hc, err := transport.Dial(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hc.Close() })
	return map[string]transport.Transport{"loopback": lb, "concurrent": cc, "http": hc}
}

// TestBackendsBitIdentical is the cross-backend parity suite: every
// protocol must produce bit-identical answers, Net accounting (messages,
// payload, rounds, per-owner traffic) and access counts over Loopback,
// Concurrent and HTTP on the seeded uniform and correlated workloads.
// Only Elapsed — the wall-clock measure — may differ, which is why it
// lives outside Net.
func TestBackendsBitIdentical(t *testing.T) {
	specs := map[string]gen.Spec{
		"uniform":    {Kind: gen.Uniform, N: 300, M: 4, Seed: 3},
		"correlated": {Kind: gen.Correlated, N: 250, M: 5, Alpha: 0.05, Seed: 4},
	}
	for dbName, spec := range specs {
		db := gen.MustGenerate(spec)
		bks := backends(t, db)
		for _, p := range overProtocols {
			for _, k := range []int{1, 10} {
				opts := Options{K: k, Scoring: score.Sum{}}
				want, err := p.run(bks["loopback"], opts)
				if err != nil {
					t.Fatalf("%s/%s/loopback: %v", dbName, p.name, err)
				}
				for _, backend := range []string{"concurrent", "http"} {
					t.Run(fmt.Sprintf("%s/%s/k=%d/%s", dbName, p.name, k, backend), func(t *testing.T) {
						got, err := p.run(bks[backend], opts)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Items, want.Items) {
							t.Errorf("answers differ:\n%v\nvs loopback\n%v", got.Items, want.Items)
						}
						if !reflect.DeepEqual(got.Net, want.Net) {
							t.Errorf("Net differs: %+v vs loopback %+v", got.Net, want.Net)
						}
						if got.Accesses != want.Accesses {
							t.Errorf("accesses differ: %v vs loopback %v", got.Accesses, want.Accesses)
						}
						if got.StopPosition != want.StopPosition {
							t.Errorf("stop position %d vs loopback %d", got.StopPosition, want.StopPosition)
						}
						if got.Threshold != want.Threshold {
							t.Errorf("threshold %v vs loopback %v", got.Threshold, want.Threshold)
						}
						if !reflect.DeepEqual(got.BestPositions, want.BestPositions) {
							t.Errorf("best positions %v vs loopback %v", got.BestPositions, want.BestPositions)
						}
					})
				}
			}
		}
	}
}

// TestConcurrentLatencyRounds checks the latency model's round
// accounting: under a constant per-exchange round-trip, a protocol's
// simulated wall-clock is bounded below by its non-empty rounds (TPUT's
// phase 3 can resolve nothing and cost nothing) and strictly above-bound
// by the full serialization of all its exchanges — overlapping the
// owners is the backend's whole point. TPUT's three batched rounds must
// beat the per-access protocols by a wide margin; that fixed-round
// advantage is exactly what the uniform-threshold design buys.
func TestConcurrentLatencyRounds(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 300, M: 4, Seed: 9})
	rtt := time.Millisecond
	elapsed := make(map[string]time.Duration)
	rounds := make(map[string]int)
	for _, p := range overProtocols {
		cc, err := transport.NewConcurrent(db, transport.ConstantLatency(rtt))
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.run(cc, Options{K: 8, Scoring: score.Sum{}})
		if err != nil {
			t.Fatal(err)
		}
		elapsed[p.name], rounds[p.name] = res.Elapsed, res.Net.Rounds
		if res.Elapsed != cc.Elapsed() {
			t.Errorf("%s: Result.Elapsed %v, transport clock %v", p.name, res.Elapsed, cc.Elapsed())
		}
		cc.Close()
		exchanges := res.Net.Messages / 2
		if min := time.Duration(res.Net.Rounds-1) * rtt; res.Elapsed < min {
			t.Errorf("%s: elapsed %v below one round-trip per non-empty round (%v)", p.name, res.Elapsed, min)
		}
		if res.Elapsed >= time.Duration(exchanges)*rtt {
			t.Errorf("%s: no overlap: %v for %d exchanges", p.name, res.Elapsed, exchanges)
		}
	}
	// TPUT pays three fan-outs however deep the scan; the per-access
	// protocols pay a data-dependent chain of rounds.
	for _, name := range []string{"dist-ta", "dist-bpa", "dist-bpa2"} {
		if elapsed["tput"] >= elapsed[name] {
			t.Errorf("TPUT (%v) not faster than %s (%v) under 1ms RTT",
				elapsed["tput"], name, elapsed[name])
		}
	}
	// BPA2 stops in fewer rounds than TA (better best positions), even
	// though each of its rounds chains m data-dependent probes.
	if rounds["dist-bpa2"] >= rounds["dist-ta"] {
		t.Errorf("BPA2 took %d rounds, TA only %d", rounds["dist-bpa2"], rounds["dist-ta"])
	}
}

// TestHTTPClusterMatchesCentralized is the acceptance scenario in
// miniature: HTTP owners (one per list), an originator driving BPA2 over
// them, and the answers matching the centralized run bit for bit —
// while the wall-clock is real, nonzero time.
func TestHTTPClusterMatchesCentralized(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 400, M: 3, Seed: 21})
	want, err := BPA2(db, Options{K: 10, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	urls := make([]string, db.M())
	for i := range urls {
		srv, err := transport.NewServer(db, i)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		urls[i] = ts.URL
	}
	hc, err := transport.Dial(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	got, err := BPA2Over(hc, Options{K: 10, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Items, want.Items) {
		t.Fatalf("cluster answers differ from centralized:\n%v\nvs\n%v", got.Items, want.Items)
	}
	if got.Elapsed <= 0 {
		t.Error("HTTP run reported zero elapsed time")
	}
	if want.Elapsed != 0 {
		t.Errorf("loopback run reported nonzero elapsed %v", want.Elapsed)
	}
}
