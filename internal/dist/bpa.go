package dist

import (
	"context"

	"topk/internal/bestpos"
	"topk/internal/list"
	"topk/internal/transport"
)

// BPA runs the Best Position Algorithm over the deterministic in-process
// transport; see BPAOver.
func BPA(db *list.Database, opts Options) (*Result, error) {
	t, err := loopback(db)
	if err != nil {
		return nil, err
	}
	return BPAOver(context.Background(), t, opts)
}

// BPAOver runs the Best Position Algorithm (Section 4) over the given
// transport with the bookkeeping at the query originator — the design
// the paper's Section 5 improves on. The exchange pattern is TA's (two
// messages per access, the same two fan-out waves per round), but every
// lookup response additionally ships the item's position in the owner's
// list, because the originator maintains the seen-position trackers and
// best positions of all m lists itself. That position traffic is BPA's
// distributed overhead: compare Net.Payload against TA's, and against
// BPA2's, where positions never travel.
//
// Like TA's, the lookup wave is round-coalesced: each owner's m-1
// position-carrying lookups ship as one batched wire exchange per round.
//
// The originator also caches every (position, score) pair it has been
// sent, so the best-position scores behind the stopping threshold
// λ = f(s1(bp1), ..., sm(bpm)) are read from originator memory, not from
// the lists: a score at a best position was necessarily carried by some
// earlier response.
func BPAOver(ctx context.Context, t transport.Transport, opts Options) (*Result, error) {
	r, err := newRunner(ctx, t, opts)
	if err != nil {
		return nil, err
	}
	defer r.close()
	m, n := r.m, r.n

	trackers := make([]bestpos.Tracker, m)
	cache := make([][]float64, m) // cache[i][pos-1] = score seen at pos of list i
	for i := range trackers {
		trackers[i] = bestpos.New(opts.Tracker, n)
		cache[i] = make([]float64, n)
	}
	locals := make([]float64, m)
	bpScores := make([]float64, m)
	entries := make([]list.Entry, m)

	res := &Result{}
	for pos := 1; pos <= n; pos++ {
		r.nw.net.Rounds++
		// Wave 1: the sorted access of every list at this depth.
		sortedCalls := make([]transport.Call, m)
		for i := range sortedCalls {
			sortedCalls[i] = transport.Call{Owner: i, Req: transport.SortedReq{Pos: pos}}
		}
		sortedResps, err := r.doAll(sortedCalls)
		if err != nil {
			return nil, err
		}
		for i, resp := range sortedResps {
			sr, err := as[transport.SortedResp](resp)
			if err != nil {
				return nil, err
			}
			entries[i] = sr.Entry
			trackers[i].MarkSeen(pos)
			cache[i][pos-1] = sr.Entry.Score
		}
		// Wave 2: position-carrying lookups at the other owners.
		lookupCalls := make([]transport.Call, 0, m*(m-1))
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				lookupCalls = append(lookupCalls,
					transport.Call{Owner: j, Req: transport.LookupReq{Item: entries[i].Item, WantPos: true}})
			}
		}
		lookupResps, err := r.doAll(lookupCalls)
		if err != nil {
			return nil, err
		}
		idx := 0
		for i := 0; i < m; i++ {
			locals[i] = entries[i].Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				lr, err := as[transport.LookupResp](lookupResps[idx])
				if err != nil {
					return nil, err
				}
				idx++
				trackers[j].MarkSeen(lr.Pos)
				cache[j][lr.Pos-1] = lr.Score
				locals[j] = lr.Score
			}
			r.y.Add(entries[i].Item, r.f.Combine(locals))
		}

		// λ from the best positions. Every tracker has Best() >= pos >= 1
		// because position pos of each list was just seen under sorted
		// access, and the cache holds a score for every seen position.
		for i := 0; i < m; i++ {
			bpScores[i] = cache[i][trackers[i].Best()-1]
		}
		lambda := r.f.Combine(bpScores)
		res.Threshold = lambda
		res.StopPosition = pos
		if r.y.AtLeast(lambda) {
			break
		}
	}

	res.BestPositions = make([]int, m)
	for i := range trackers {
		res.BestPositions[i] = trackers[i].Best()
	}
	return r.finish(res)
}
