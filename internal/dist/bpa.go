package dist

import (
	"topk/internal/bestpos"
	"topk/internal/list"
)

// BPA runs the Best Position Algorithm (Section 4) over the network with
// the bookkeeping at the query originator — the design the paper's
// Section 5 improves on. The exchange pattern is TA's (two messages per
// access), but every lookup response additionally ships the item's
// position in the owner's list, because the originator maintains the
// seen-position trackers and best positions of all m lists itself. That
// position traffic is BPA's distributed overhead: compare Net.Payload
// against TA's, and against BPA2's, where positions never travel.
//
// The originator also caches every (position, score) pair it has been
// sent, so the best-position scores behind the stopping threshold
// λ = f(s1(bp1), ..., sm(bpm)) are read from originator memory, not from
// the lists: a score at a best position was necessarily carried by some
// earlier response.
func BPA(db *list.Database, opts Options) (*Result, error) {
	s, err := newSim(db, opts, false)
	if err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()

	trackers := make([]bestpos.Tracker, m)
	cache := make([][]float64, m) // cache[i][pos-1] = score seen at pos of list i
	for i := range trackers {
		trackers[i] = bestpos.New(opts.Tracker, n)
		cache[i] = make([]float64, n)
	}
	locals := make([]float64, m)
	bpScores := make([]float64, m)

	res := &Result{}
	for pos := 1; pos <= n; pos++ {
		s.nw.net.Rounds++
		for i := 0; i < m; i++ {
			sr := s.own[i].handleSorted(sortedReq{Pos: pos})
			trackers[i].MarkSeen(pos)
			cache[i][pos-1] = sr.Entry.Score
			locals[i] = sr.Entry.Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				lr := s.own[j].handleLookup(lookupReq{Item: sr.Entry.Item, WantPos: true})
				trackers[j].MarkSeen(lr.Pos)
				cache[j][lr.Pos-1] = lr.Score
				locals[j] = lr.Score
			}
			s.y.Add(sr.Entry.Item, s.f.Combine(locals))
		}

		// λ from the best positions. Every tracker has Best() >= pos >= 1
		// because position pos of each list was just seen under sorted
		// access, and the cache holds a score for every seen position.
		for i := 0; i < m; i++ {
			bpScores[i] = cache[i][trackers[i].Best()-1]
		}
		lambda := s.f.Combine(bpScores)
		res.Threshold = lambda
		res.StopPosition = pos
		if s.y.AtLeast(lambda) {
			break
		}
	}

	res.BestPositions = make([]int, m)
	for i := range trackers {
		res.BestPositions[i] = trackers[i].Best()
	}
	return s.finish(res), nil
}
