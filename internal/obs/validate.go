package obs

import (
	"fmt"
	"strings"
)

// ValidateExposition checks that data parses as Prometheus text
// exposition format 0.0.4 and returns the first malformed line as an
// error. Beyond per-line syntax it enforces the structural rules a
// scraper relies on: a sample's metric must have been declared by a
// preceding # TYPE (allowing the _bucket/_sum/_count suffixes for
// histogram and summary families), no family may be declared twice,
// and histogram families must carry an le label on their buckets.
//
// Both the exposition-format test and the promcheck CI tool (which
// scrapes a real topk-owner) funnel through this one implementation,
// so what the tests accept and what CI accepts cannot drift apart.
func ValidateExposition(data []byte) error {
	types := make(map[string]string) // family -> declared type
	samples := 0
	for n, line := range strings.Split(string(data), "\n") {
		lineno := n + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types); err != nil {
				return fmt.Errorf("line %d: %w", lineno, err)
			}
			continue
		}
		if err := validateSample(line, types); err != nil {
			return fmt.Errorf("line %d: %w", lineno, err)
		}
		samples++
	}
	if samples == 0 {
		return fmt.Errorf("no samples in exposition")
	}
	return nil
}

func validateComment(line string, types map[string]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment: legal, ignored
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("HELP without metric name: %q", line)
		}
		if err := checkMetricName(fields[2]); err != nil {
			return err
		}
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("TYPE needs a metric name and a type: %q", line)
		}
		name, typ := fields[2], fields[3]
		if err := checkMetricName(name); err != nil {
			return err
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("family %s declared twice", name)
		}
		types[name] = typ
	}
	return nil
}

func validateSample(line string, types map[string]string) error {
	rest := line
	// Metric name.
	end := 0
	for end < len(rest) && isNameChar(rest[end], end) {
		end++
	}
	if end == 0 {
		return fmt.Errorf("sample does not start with a metric name: %q", line)
	}
	name := rest[:end]
	rest = rest[end:]

	// Optional label block.
	var labels map[string]string
	if strings.HasPrefix(rest, "{") {
		var err error
		labels, rest, err = parseLabelBlock(rest)
		if err != nil {
			return fmt.Errorf("%w in %q", err, line)
		}
	}

	// Mandatory value, optional timestamp.
	rest = strings.TrimPrefix(rest, " ")
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("expected value [timestamp] after metric, got %q", rest)
	}
	if !validFloat(fields[0]) {
		return fmt.Errorf("invalid sample value %q", fields[0])
	}
	if len(fields) == 2 && !validInt(fields[1]) {
		return fmt.Errorf("invalid timestamp %q", fields[1])
	}

	// The family must be declared, directly or via a histogram/summary
	// suffix of a declared family.
	family, suffix := name, ""
	if _, ok := types[name]; !ok {
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, s); base != name {
				if t, ok := types[base]; ok && (t == "histogram" || t == "summary") {
					family, suffix = base, s
					break
				}
			}
		}
	}
	typ, ok := types[family]
	if !ok {
		return fmt.Errorf("sample %s has no preceding # TYPE declaration", name)
	}
	if typ == "histogram" && suffix == "_bucket" {
		if _, ok := labels["le"]; !ok {
			return fmt.Errorf("histogram bucket %s missing le label", name)
		}
	}
	return nil
}

func parseLabelBlock(rest string) (map[string]string, string, error) {
	labels := make(map[string]string)
	rest = rest[1:] // consume '{'
	for {
		if strings.HasPrefix(rest, "}") {
			return labels, rest[1:], nil
		}
		// Label name.
		end := 0
		for end < len(rest) && isLabelChar(rest[end], end) {
			end++
		}
		if end == 0 {
			return nil, "", fmt.Errorf("expected label name at %q", rest)
		}
		name := rest[:end]
		rest = rest[end:]
		if !strings.HasPrefix(rest, `="`) {
			return nil, "", fmt.Errorf(`expected ="value" after label %s`, name)
		}
		rest = rest[2:]
		// Quoted, escaped value.
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("unterminated label value for %s", name)
			}
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("dangling escape in label %s", name)
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
					val.WriteByte(rest[i+1])
				default:
					return nil, "", fmt.Errorf("invalid escape \\%c in label %s", rest[i+1], name)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[name] = val.String()
		rest = rest[i:]
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		} else if !strings.HasPrefix(rest, "}") {
			return nil, "", fmt.Errorf("expected , or } after label %s", name)
		}
	}
}

func isNameChar(c byte, i int) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(i > 0 && c >= '0' && c <= '9')
}

func isLabelChar(c byte, i int) bool {
	return c == '_' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(i > 0 && c >= '0' && c <= '9')
}

func validFloat(s string) bool {
	switch s {
	case "+Inf", "-Inf", "Inf", "NaN":
		return true
	}
	seenDigit, seenDot, seenExp := false, false, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			seenDigit = true
		case (c == '+' || c == '-') && (i == 0 || (s[i-1] == 'e' || s[i-1] == 'E')):
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
		case (c == 'e' || c == 'E') && seenDigit && !seenExp:
			seenExp = true
		default:
			return false
		}
	}
	return seenDigit
}

func validInt(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c == '-' || c == '+') && i == 0 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}
