package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()

	c := r.Counter("test_ops_total", "ops", Labels{"kind": "read"})
	c.Inc()
	c.Add(4)
	c.Add(-3) // dropped: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("test_temp", "temperature", nil)
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}

	h := r.Histogram("test_latency_seconds", "latency", nil, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if h.Sum() != 5.605 {
		t.Fatalf("histogram sum = %v, want 5.605", h.Sum())
	}
}

func TestSameSeriesSharedHandle(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "", Labels{"a": "1", "b": "2"})
	b := r.Counter("test_total", "", Labels{"b": "2", "a": "1"}) // same set, other order
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles not shared")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_x", "", nil)
}

func TestSetEnabledDropsUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "", nil)
	g := r.Gauge("test_g", "", nil)
	h := r.Histogram("test_h", "", nil, []float64{1})
	r.SetEnabled(false)
	c.Inc()
	g.Set(9)
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled registry recorded updates: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}
	r.SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("re-enabled registry dropped update")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_requests_total", "requests served", Labels{"kind": "sorted"}).Add(7)
	r.Counter("demo_requests_total", "requests served", Labels{"kind": `we"ird\x`}).Inc()
	r.Gauge("demo_sessions_open", "open sessions", nil).Set(3)
	h := r.Histogram("demo_latency_seconds", "latency", Labels{"kind": "probe"}, []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	for _, want := range []string{
		"# HELP demo_requests_total requests served\n# TYPE demo_requests_total counter\n",
		`demo_requests_total{kind="sorted"} 7`,
		`demo_requests_total{kind="we\"ird\\x"} 1`,
		"# TYPE demo_sessions_open gauge",
		"demo_sessions_open 3",
		`demo_latency_seconds_bucket{kind="probe",le="0.01"} 1`,
		`demo_latency_seconds_bucket{kind="probe",le="0.1"} 2`,
		`demo_latency_seconds_bucket{kind="probe",le="+Inf"} 3`,
		`demo_latency_seconds_sum{kind="probe"} 2.055`,
		`demo_latency_seconds_count{kind="probe"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, text)
		}
	}
	if err := ValidateExposition([]byte(text)); err != nil {
		t.Fatalf("own exposition failed validation: %v\n%s", err, text)
	}
}

func TestHandlerServesTextAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("demo_total", "d", nil).Add(2)

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}

	resp2, err := srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var samples []Sample
	if err := json.NewDecoder(resp2.Body).Decode(&samples); err != nil {
		t.Fatalf("JSON snapshot did not decode: %v", err)
	}
	if len(samples) != 1 || samples[0].Name != "demo_total" || samples[0].Value != 2 {
		t.Fatalf("snapshot = %+v", samples)
	}
}

func TestSnapshotHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("demo_bytes", "", Labels{"dir": "rx"}, []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d samples", len(snaps))
	}
	s := snaps[0]
	if s.Type != "histogram" || s.Count != 3 || s.Sum != 555 {
		t.Fatalf("snapshot = %+v", s)
	}
	if len(s.Buckets) != 3 || s.Buckets[0] != 1 || s.Buckets[1] != 1 || s.Buckets[2] != 1 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.Labels["dir"] != "rx" {
		t.Fatalf("labels = %v", s.Labels)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	cases := map[string]string{
		"no TYPE":           "foo 1\n",
		"bad type":          "# TYPE foo widget\nfoo 1\n",
		"dup family":        "# TYPE foo counter\n# TYPE foo counter\nfoo 1\n",
		"bad value":         "# TYPE foo counter\nfoo abc\n",
		"bad label":         "# TYPE foo counter\nfoo{x=1} 1\n",
		"unterminated":      "# TYPE foo counter\nfoo{x=\"1} 1\n",
		"bucket without le": "# TYPE foo histogram\nfoo_bucket{x=\"1\"} 1\n",
		"empty":             "",
	}
	for name, in := range cases {
		if err := ValidateExposition([]byte(in)); err == nil {
			t.Errorf("%s: validator accepted %q", name, in)
		}
	}
	ok := "# HELP foo help text\n# TYPE foo histogram\n" +
		"foo_bucket{le=\"0.1\"} 1\nfoo_bucket{le=\"+Inf\"} 2\nfoo_sum 3.5\nfoo_count 2\n" +
		"# TYPE bar counter\nbar{k=\"v\",k2=\"a\\\"b\"} 12 1700000000\n"
	if err := ValidateExposition([]byte(ok)); err != nil {
		t.Errorf("validator rejected well-formed exposition: %v", err)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "", nil)
	h := r.Histogram("test_h", "", nil, LatencyBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}
