// Package obs is the tree's zero-dependency observability layer: a
// process-wide metrics registry of atomic counters, gauges and
// fixed-bucket histograms with Prometheus text exposition (format
// 0.0.4) and a JSON snapshot, plus a strict exposition validator used
// by both the test suite and the promcheck CI tool.
//
// The paper's whole argument is cost accounting, so the registry is
// built to never perturb it: every metric operation is a handful of
// atomic instructions with no allocation, metric handles are created
// once at wiring time (never on the hot path), and the entire layer
// can be switched off with SetEnabled(false) — the overhead benchmark
// (BenchmarkObservabilityOverhead) pins the on/off delta. Updates
// deliberately do not take the registry lock; the lock only guards
// family/handle creation and exposition.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric's label set. Registries canonicalise the set
// (sorted by key) so {"a":"1","b":"2"} names the same series however
// it is written.
type Labels map[string]string

// Registry holds metric families keyed by name. The zero value is not
// usable; call NewRegistry, or use the package-level Default registry
// through GetCounter / GetGauge / GetHistogram.
type Registry struct {
	enabled atomic.Bool

	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{families: make(map[string]*family)}
	r.enabled.Store(true)
	return r
}

// Default is the process-wide registry that the transport, dist and
// serve layers register into.
var Default = NewRegistry()

// SetEnabled turns metric updates on or off. Handles stay valid while
// disabled; their updates become no-ops (a single atomic load). The
// switch exists so the observability overhead can be measured, and so
// embedders who want the paper's accounting alone can shed even the
// atomic adds.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether metric updates are currently recorded.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one metric name: its HELP/TYPE header and every labelled
// series under it.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64 // histograms only; fixed for the whole family

	mu     sync.Mutex
	order  []string // insertion-ordered canonical label strings
	series map[string]any
}

func (r *Registry) family(name, help string, kind metricKind, buckets []float64) *family {
	if err := checkMetricName(name); err != nil {
		panic("obs: " + err.Error())
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, buckets: buckets, series: make(map[string]any)}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, f.kind))
	}
	return f
}

// series returns the handle for one label set, creating it on first
// use. make builds the concrete metric.
func (f *family) seriesFor(labels Labels, make func() any) any {
	key := canonicalLabels(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	m := make()
	f.series[key] = m
	f.order = append(f.order, key)
	return m
}

// Counter is a monotonically increasing integer. All methods are safe
// for concurrent use and never allocate.
type Counter struct {
	on *atomic.Bool
	v  atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (which must be non-negative; negative deltas are
// silently dropped to keep the counter monotone).
func (c *Counter) Add(n int64) {
	if n < 0 || !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns (creating if needed) the counter name{labels}.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	f := r.family(name, help, kindCounter, nil)
	return f.seriesFor(labels, func() any { return &Counter{on: &r.enabled} }).(*Counter)
}

// Gauge is a float64 that can go up and down.
type Gauge struct {
	on   *atomic.Bool
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if !g.on.Load() {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (negative to subtract).
func (g *Gauge) Add(delta float64) {
	if !g.on.Load() {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns (creating if needed) the gauge name{labels}.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	f := r.family(name, help, kindGauge, nil)
	return f.seriesFor(labels, func() any { return &Gauge{on: &r.enabled} }).(*Gauge)
}

// Histogram is a fixed-bucket cumulative histogram (the Prometheus
// shape: counts per upper bound, plus sum and count). Bucket bounds
// are fixed at registration; Observe is a binary search plus two
// atomic adds.
type Histogram struct {
	on      *atomic.Bool
	upper   []float64      // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64 // len(upper)+1; last is the +Inf bucket
	sumBits atomic.Uint64
	count   atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if !h.on.Load() {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Histogram returns (creating if needed) the histogram name{labels}
// with the given upper bucket bounds (ascending; +Inf is implicit).
// Every series of one family shares the family's bounds: the bounds
// passed on subsequent calls are ignored.
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic("obs: histogram " + name + " needs at least one bucket bound")
	}
	if !sort.Float64sAreSorted(buckets) {
		panic("obs: histogram " + name + " bucket bounds must ascend")
	}
	f := r.family(name, help, kindHistogram, buckets)
	return f.seriesFor(labels, func() any {
		return &Histogram{on: &r.enabled, upper: f.buckets, counts: make([]atomic.Int64, len(f.buckets)+1)}
	}).(*Histogram)
}

// LatencyBuckets are the default upper bounds, in seconds, for
// request/exchange latency histograms: 100µs to 10s, roughly
// geometric.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// SizeBuckets are the default upper bounds, in bytes, for payload size
// histograms: 64B to 4MiB in powers of four.
var SizeBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

// GetCounter, GetGauge and GetHistogram are shorthands on the Default
// registry.
func GetCounter(name, help string, labels Labels) *Counter {
	return Default.Counter(name, help, labels)
}

func GetGauge(name, help string, labels Labels) *Gauge {
	return Default.Gauge(name, help, labels)
}

func GetHistogram(name, help string, labels Labels, buckets []float64) *Histogram {
	return Default.Histogram(name, help, labels, buckets)
}

// ---------------------------------------------------------------------------
// Exposition.

// WritePrometheus writes every family in the Prometheus text format
// (version 0.0.4): families sorted by name, a # HELP and # TYPE header
// each, series in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.sortedFamilies() {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) writeText(b *strings.Builder) {
	f.mu.Lock()
	defer f.mu.Unlock()
	b.WriteString("# HELP ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(escapeHelp(f.help))
	b.WriteString("\n# TYPE ")
	b.WriteString(f.name)
	b.WriteByte(' ')
	b.WriteString(f.kind.String())
	b.WriteByte('\n')
	for _, key := range f.order {
		switch m := f.series[key].(type) {
		case *Counter:
			writeSample(b, f.name, key, "", formatInt(m.Value()))
		case *Gauge:
			writeSample(b, f.name, key, "", formatFloat(m.Value()))
		case *Histogram:
			cum := int64(0)
			for i, bound := range m.upper {
				cum += m.counts[i].Load()
				writeSample(b, f.name+"_bucket", key, `le="`+formatFloat(bound)+`"`, formatInt(cum))
			}
			cum += m.counts[len(m.upper)].Load()
			writeSample(b, f.name+"_bucket", key, `le="+Inf"`, formatInt(cum))
			writeSample(b, f.name+"_sum", key, "", formatFloat(m.Sum()))
			writeSample(b, f.name+"_count", key, "", formatInt(m.Count()))
		}
	}
}

// writeSample emits one line: name{labels,extra} value. extra (the
// histogram le pair) goes last, matching convention.
func writeSample(b *strings.Builder, name, labels, extra, value string) {
	b.WriteString(name)
	if labels != "" || extra != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extra != "" {
			b.WriteByte(',')
		}
		b.WriteString(extra)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry: Prometheus
// text by default, the JSON snapshot when the request asks for JSON
// (?format=json or an Accept: application/json header).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(r.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// ---------------------------------------------------------------------------
// JSON snapshot.

// Sample is one series in a Snapshot.
type Sample struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"` // counter, gauge
	// Histogram fields.
	Count   int64     `json:"count,omitempty"`
	Sum     float64   `json:"sum,omitempty"`
	Bounds  []float64 `json:"bounds,omitempty"`  // upper bounds, +Inf implicit
	Buckets []int64   `json:"buckets,omitempty"` // non-cumulative, len(Bounds)+1
}

// Snapshot returns every series as a flat, name-sorted sample list —
// the JSON face of the registry.
func (r *Registry) Snapshot() []Sample {
	var out []Sample
	for _, f := range r.sortedFamilies() {
		f.mu.Lock()
		for _, key := range f.order {
			s := Sample{Name: f.name, Type: f.kind.String(), Labels: parseCanonical(key)}
			switch m := f.series[key].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Count = m.Count()
				s.Sum = m.Sum()
				s.Bounds = f.buckets
				s.Buckets = make([]int64, len(m.counts))
				for i := range m.counts {
					s.Buckets[i] = m.counts[i].Load()
				}
			}
			out = append(out, s)
		}
		f.mu.Unlock()
	}
	return out
}

// ---------------------------------------------------------------------------
// Label plumbing.

// canonicalLabels renders a label set as the exact exposition text
// (k1="v1",k2="v2", keys sorted), which doubles as the series map key.
func canonicalLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if err := checkLabelName(k); err != nil {
			panic("obs: " + err.Error())
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// parseCanonical inverts canonicalLabels for the JSON snapshot.
func parseCanonical(key string) map[string]string {
	if key == "" {
		return nil
	}
	out := make(map[string]string)
	rest := key
	for rest != "" {
		eq := strings.Index(rest, `="`)
		name := rest[:eq]
		rest = rest[eq+2:]
		var val strings.Builder
		for i := 0; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				rest = rest[i+1:]
				break
			}
			val.WriteByte(c)
		}
		out[name] = val.String()
		rest = strings.TrimPrefix(rest, ",")
	}
	return out
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", name)
		}
	}
	return nil
}
