package parallel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/score"
)

func randomDB(t testing.TB, rng *rand.Rand, n, m int) *list.Database {
	cols := make([][]float64, m)
	for i := range cols {
		col := make([]float64, n)
		for d := range col {
			col[d] = float64(rng.Intn(25))
		}
		cols[i] = col
	}
	db, err := list.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// assertEqualResults demands full observable equality between a parallel
// and a sequential run: answers, counts, stop state and threshold.
func assertEqualResults(t *testing.T, alg core.Algorithm, par, seq *core.Result) bool {
	t.Helper()
	ok := true
	if par.Counts != seq.Counts {
		t.Errorf("%v: counts %v != sequential %v", alg, par.Counts, seq.Counts)
		ok = false
	}
	if par.StopPosition != seq.StopPosition || par.Rounds != seq.Rounds {
		t.Errorf("%v: stop %d/%d != sequential %d/%d", alg, par.StopPosition, par.Rounds, seq.StopPosition, seq.Rounds)
		ok = false
	}
	if par.Threshold != seq.Threshold {
		t.Errorf("%v: threshold %v != sequential %v", alg, par.Threshold, seq.Threshold)
		ok = false
	}
	if len(par.Items) != len(seq.Items) {
		t.Errorf("%v: %d items != sequential %d", alg, len(par.Items), len(seq.Items))
		return false
	}
	for i := range par.Items {
		if par.Items[i] != seq.Items[i] {
			t.Errorf("%v: item %d = %+v != sequential %+v", alg, i, par.Items[i], seq.Items[i])
			ok = false
		}
	}
	if len(par.BestPositions) != len(seq.BestPositions) {
		t.Errorf("%v: best positions %v != %v", alg, par.BestPositions, seq.BestPositions)
		return false
	}
	for i := range par.BestPositions {
		if par.BestPositions[i] != seq.BestPositions[i] {
			t.Errorf("%v: best position %d = %d != sequential %d", alg, i, par.BestPositions[i], seq.BestPositions[i])
			ok = false
		}
	}
	return ok
}

// TestPropertyParallelEqualsSequential is the engine's contract: for
// every supported algorithm, the parallel run is observably identical to
// the sequential run.
func TestPropertyParallelEqualsSequential(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(t, rng, n, m)
		opts := core.Options{K: k, Scoring: score.Sum{}}

		ok := true
		for _, alg := range Algorithms() {
			par, err := Run(alg, db, opts)
			if err != nil {
				t.Logf("parallel %v: %v", alg, err)
				return false
			}
			seq, err := core.Run(alg, db, opts)
			if err != nil {
				t.Logf("sequential %v: %v", alg, err)
				return false
			}
			ok = assertEqualResults(t, alg, par, seq) && ok
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestParallelBPA2SingleAccess re-checks Theorem 5 under the parallel
// schedule with an audited probe... the parallel engine uses per-worker
// probes, so the theorem is checked indirectly: the total access count
// must equal the number of distinct positions BPA2 saw sequentially,
// which assertEqualResults already enforces. Here we additionally run
// the sequential audited probe as the baseline for a larger instance.
func TestParallelBPA2SingleAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := randomDB(t, rng, 300, 5)
	opts := core.Options{K: 10, Scoring: score.Sum{}}

	pr := access.NewAuditedProbe(db)
	seq, err := core.BPA2(pr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.AssertSingleAccess(); err != nil {
		t.Fatalf("sequential BPA2 violated Theorem 5: %v", err)
	}
	par, err := Run(core.AlgBPA2, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualResults(t, core.AlgBPA2, par, seq)
}

// TestParallelLargerInstances drives the engine over generator databases
// big enough for real goroutine interleaving (run with -race in CI).
func TestParallelLargerInstances(t *testing.T) {
	for _, dist := range []gen.Kind{gen.Uniform, gen.Correlated} {
		db, err := gen.Generate(gen.Spec{Kind: dist, N: 2000, M: 6, Seed: 42, Alpha: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		opts := core.Options{K: 20, Scoring: score.Sum{}, Tracker: bestpos.IntervalKind}
		for _, alg := range Algorithms() {
			par, err := Run(alg, db, opts)
			if err != nil {
				t.Fatalf("%v over %v: %v", alg, dist, err)
			}
			seq, err := core.Run(alg, db, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertEqualResults(t, alg, par, seq)
		}
	}
}

func TestParallelRejectsMemoize(t *testing.T) {
	db := randomDB(t, rand.New(rand.NewSource(1)), 10, 3)
	_, err := Run(core.AlgTA, db, core.Options{K: 1, Scoring: score.Sum{}, Memoize: true})
	if err == nil || !strings.Contains(err.Error(), "sequential") {
		t.Errorf("memoized run not refused: %v", err)
	}
}

func TestParallelRejectsNonRoundBased(t *testing.T) {
	db := randomDB(t, rand.New(rand.NewSource(1)), 10, 3)
	for _, alg := range []core.Algorithm{core.AlgNaive, core.AlgFA, core.AlgNRA, core.AlgCA} {
		_, err := Run(alg, db, core.Options{K: 1, Scoring: score.Sum{}})
		if err == nil {
			t.Errorf("%v accepted by the parallel engine", alg)
		}
	}
}

func TestParallelValidatesOptions(t *testing.T) {
	db := randomDB(t, rand.New(rand.NewSource(1)), 10, 3)
	if _, err := Run(core.AlgTA, db, core.Options{K: 0, Scoring: score.Sum{}}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Run(core.AlgBPA2, db, core.Options{K: 1}); err == nil {
		t.Error("nil scoring accepted")
	}
}

// observerLog counts observer rounds, to compare parallel and sequential
// reporting.
type observerLog struct {
	rounds []core.RoundInfo
}

func (o *observerLog) Round(info core.RoundInfo) { o.rounds = append(o.rounds, info) }

func TestParallelObserverMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := randomDB(t, rng, 60, 4)
	for _, alg := range Algorithms() {
		var par, seq observerLog
		if _, err := Run(alg, db, core.Options{K: 5, Scoring: score.Sum{}, Observer: &par}); err != nil {
			t.Fatal(err)
		}
		if _, err := core.Run(alg, db, core.Options{K: 5, Scoring: score.Sum{}, Observer: &seq}); err != nil {
			t.Fatal(err)
		}
		if len(par.rounds) != len(seq.rounds) {
			t.Fatalf("%v: %d observer rounds != sequential %d", alg, len(par.rounds), len(seq.rounds))
		}
		for i := range par.rounds {
			p, s := par.rounds[i], seq.rounds[i]
			if p.Round != s.Round || p.Threshold != s.Threshold || p.KthScore != s.KthScore || p.Stopped != s.Stopped {
				t.Errorf("%v round %d: %+v != sequential %+v", alg, i, p, s)
			}
		}
	}
}

func BenchmarkParallelVsSequentialTA(b *testing.B) {
	db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: 2000, M: 8, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	opts := core.Options{K: 20, Scoring: score.Sum{}}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(core.AlgTA, db, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(core.AlgTA, db, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
