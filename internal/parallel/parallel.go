// Package parallel executes the paper's round-based algorithms with real
// goroutine concurrency — one worker per list owner — taking the paper's
// phrase "do sorted access in parallel to each of the m sorted lists"
// (Sections 3–5) literally.
//
// The engine is answer- and accounting-equivalent to the sequential
// executor in internal/core: it performs exactly the same multiset of
// list accesses per round, only their schedule changes. That holds
// because, without memoization, the work of one TA/BPA round (one sorted
// access per list plus its m−1 random accesses) does not depend on
// intra-round state, and BPA2's per-probe random accesses are mutually
// independent. The package exists to demonstrate that the algorithms
// parallelize cleanly — the motivation behind BPA2's owner-side
// best-position bookkeeping (Section 5.1) — and to measure wall-clock
// speedup; the paper's cost metrics are scheduling-independent.
//
// Memoized runs are refused: which accesses a memoized round performs
// depends on the order items were first seen inside earlier rounds, so
// memoization is inherently sequential bookkeeping (use core.Run).
package parallel

import (
	"fmt"
	"math"
	"sync"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/list"
	"topk/internal/rank"
)

// Run executes alg over db with one worker goroutine per list. Supported
// algorithms are the round-based TA, BPA and BPA2; for everything else
// (and for memoized runs) use core.Run. The scoring function is called
// concurrently and must be safe for concurrent use; every function in
// internal/score is.
func Run(alg core.Algorithm, db *list.Database, opts core.Options) (*core.Result, error) {
	if opts.Memoize {
		return nil, fmt.Errorf("parallel: memoized accounting is order-dependent and inherently sequential; use core.Run")
	}
	switch alg {
	case core.AlgTA:
		return runScan(db, opts, false)
	case core.AlgBPA:
		return runScan(db, opts, true)
	case core.AlgBPA2:
		return runBPA2(db, opts)
	default:
		return nil, fmt.Errorf("parallel: %v is not a round-based algorithm; use core.Run", alg)
	}
}

// Algorithms lists the algorithms the parallel engine supports.
func Algorithms() []core.Algorithm {
	return []core.Algorithm{core.AlgTA, core.AlgBPA, core.AlgBPA2}
}

// theta mirrors core.Options: zero means exact.
func theta(opts core.Options) float64 {
	if opts.Approximation == 0 {
		return 1
	}
	return opts.Approximation
}

// scanOut is what one list worker reports for one TA/BPA round.
type scanOut struct {
	item    list.ItemID
	overall float64
	lastSc  float64
	// touched[j] is the position of list j seen while processing this
	// worker's item (BPA only; the worker's own list at the sorted
	// position, every other at the random-access position).
	touched []int
}

// runScan is the shared TA/BPA engine: per round, every list worker does
// its sorted access plus the (m-1) random accesses for the item it saw;
// the coordinator merges in list order, exactly like the sequential
// loops in core.TA and core.BPA.
func runScan(db *list.Database, opts core.Options, best bool) (*core.Result, error) {
	if err := opts.Validate(db); err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()
	f := opts.Scoring
	th := theta(opts)

	probes := make([]*access.Probe, m)
	jobs := make([]chan int, m)
	outs := make([]scanOut, m)
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		probes[i] = access.NewProbe(db)
		jobs[i] = make(chan int, 1)
		go func(i int) {
			locals := make([]float64, m)
			var touched []int
			if best {
				touched = make([]int, m)
			}
			for pos := range jobs[i] {
				e := probes[i].Sorted(i, pos)
				locals[i] = e.Score
				if best {
					touched[i] = pos
				}
				for j := 0; j < m; j++ {
					if j == i {
						continue
					}
					s, q := probes[i].Random(j, e.Item)
					locals[j] = s
					if best {
						touched[j] = q
					}
				}
				outs[i] = scanOut{item: e.Item, overall: f.Combine(locals), lastSc: e.Score, touched: touched}
				wg.Done()
			}
		}(i)
	}
	defer func() {
		for _, ch := range jobs {
			close(ch)
		}
	}()

	alg := core.AlgTA
	if best {
		alg = core.AlgBPA
	}
	res := &core.Result{Algorithm: alg}
	y := rank.NewSet(opts.K)
	last := make([]float64, m)
	var trackers []bestpos.Tracker
	var bpScores []float64
	if best {
		trackers = make([]bestpos.Tracker, m)
		for i := range trackers {
			trackers[i] = bestpos.New(opts.Tracker, n)
		}
		bpScores = make([]float64, m)
	}

	for pos := 1; pos <= n; pos++ {
		// Round boundaries are the engine's cancellation points: the
		// workers park on their job channels, which the deferred closes
		// release, so an interrupted run leaks nothing.
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		wg.Add(m)
		for i := range jobs {
			jobs[i] <- pos
		}
		wg.Wait()

		for i := 0; i < m; i++ {
			o := outs[i]
			last[i] = o.lastSc
			if best {
				for j, q := range o.touched {
					trackers[j].MarkSeen(q)
				}
			}
			y.Add(o.item, o.overall)
		}

		var threshold float64
		if best {
			for i := 0; i < m; i++ {
				bpScores[i] = db.List(i).At(trackers[i].Best()).Score
			}
			threshold = f.Combine(bpScores)
		} else {
			threshold = f.Combine(last)
		}
		res.Threshold = threshold
		res.StopPosition = pos
		res.Rounds = pos
		stopped := y.AtLeast(threshold / th)
		notify(opts.Observer, pos, pos, threshold, y, trackers, stopped)
		if stopped {
			break
		}
	}

	if best {
		res.BestPositions = make([]int, m)
		for i := range trackers {
			res.BestPositions[i] = trackers[i].Best()
		}
	}
	res.Items = y.Slice()
	for _, pr := range probes {
		res.Counts = res.Counts.Add(pr.Counts())
	}
	return res, nil
}

// lookup is one random-access job of the BPA2 engine.
type lookup struct {
	item list.ItemID
}

// lookupOut is a worker's reply: the item's local score and position in
// the worker's list.
type lookupOut struct {
	score float64
	pos   int
}

// runBPA2 parallelizes BPA2's random accesses: the coordinator performs
// the direct probes in list order (they are state-dependent: each reads
// the probed list's current best position), and for every probed item the
// m-1 random lookups fan out to the other lists' workers. The access
// multiset — and therefore every count and Theorem 5's single-access
// guarantee — matches sequential core.BPA2 exactly.
func runBPA2(db *list.Database, opts core.Options) (*core.Result, error) {
	if err := opts.Validate(db); err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()
	f := opts.Scoring
	th := theta(opts)

	probes := make([]*access.Probe, m)
	jobs := make([]chan lookup, m)
	outs := make([]lookupOut, m)
	var wg sync.WaitGroup
	for j := 0; j < m; j++ {
		probes[j] = access.NewProbe(db)
		jobs[j] = make(chan lookup, 1)
		go func(j int) {
			for lk := range jobs[j] {
				s, q := probes[j].Random(j, lk.item)
				outs[j] = lookupOut{score: s, pos: q}
				wg.Done()
			}
		}(j)
	}
	defer func() {
		for _, ch := range jobs {
			close(ch)
		}
	}()

	y := rank.NewSet(opts.K)
	locals := make([]float64, m)
	bpScores := make([]float64, m)
	trackers := make([]bestpos.Tracker, m)
	for i := range trackers {
		trackers[i] = bestpos.New(opts.Tracker, n)
	}

	res := &core.Result{Algorithm: core.AlgBPA2}
	for {
		res.Rounds++
		progress := false
		for i := 0; i < m; i++ {
			if err := opts.Interrupted(); err != nil {
				return nil, err
			}
			p := trackers[i].Best() + 1
			if p > n {
				continue
			}
			e := probes[i].Direct(i, p)
			trackers[i].MarkSeen(p)
			progress = true
			locals[i] = e.Score

			wg.Add(m - 1)
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				jobs[j] <- lookup{item: e.Item}
			}
			wg.Wait()
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				locals[j] = outs[j].score
				trackers[j].MarkSeen(outs[j].pos)
			}
			y.Add(e.Item, f.Combine(locals))
		}
		if !progress {
			break
		}

		for i := 0; i < m; i++ {
			bpScores[i] = db.List(i).At(trackers[i].Best()).Score
		}
		lambda := f.Combine(bpScores)
		res.Threshold = lambda
		stopped := y.AtLeast(lambda / th)
		if opts.Observer != nil {
			minBP := n
			for i := range trackers {
				if trackers[i].Best() < minBP {
					minBP = trackers[i].Best()
				}
			}
			notify(opts.Observer, res.Rounds, minBP, lambda, y, trackers, stopped)
		}
		if stopped {
			break
		}
	}

	res.BestPositions = make([]int, m)
	for i := range trackers {
		res.BestPositions[i] = trackers[i].Best()
	}
	res.Items = y.Slice()
	for _, pr := range probes {
		res.Counts = res.Counts.Add(pr.Counts())
	}
	return res, nil
}

// notify delivers a core.RoundInfo to the observer, mirroring the
// sequential engine's reporting.
func notify(obs core.Observer, round, position int, threshold float64, y *rank.Set, trackers []bestpos.Tracker, stopped bool) {
	if obs == nil {
		return
	}
	kth, full := y.Threshold()
	if !full {
		kth = math.Inf(-1)
	}
	info := core.RoundInfo{
		Round:     round,
		Position:  position,
		Threshold: threshold,
		KthScore:  kth,
		YFull:     full,
		Stopped:   stopped,
	}
	if trackers != nil {
		info.BestPositions = make([]int, len(trackers))
		for i := range trackers {
			info.BestPositions[i] = trackers[i].Best()
		}
	}
	obs.Round(info)
}
