package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"topk"
	"topk/internal/live"
)

// EnableLive attaches a live coordinator, turning on the live plane:
// GET /v1/live (SSE subscriber push), POST /v1/update (feed ingestion)
// and GET /v1/live/stats (the coordinator's accounting). Requires a
// cluster-backed server — the standing queries run against the owners,
// not the in-process simulation. Call before the server starts serving;
// the field is not swapped under traffic.
func (s *Server) EnableLive(co *live.Coordinator) error {
	if co == nil {
		return fmt.Errorf("serve: nil live coordinator")
	}
	if s.cluster == nil {
		return fmt.Errorf("serve: live plane requires a cluster (-live without -owners)")
	}
	s.live = co
	return nil
}

// requireLive replies 404 unless the live plane is enabled.
func (s *Server) requireLive(w http.ResponseWriter) bool {
	if s.live == nil {
		writeError(w, http.StatusNotFound, "live plane not enabled (serve with -owners and -live)")
		return false
	}
	return true
}

// handleLive is the SSE subscriber endpoint. It takes the same query
// parameters as /v1/dist (k, protocol, scoring, weights, ...) plus an
// optional query= name; the first subscriber of a given standing query
// registers it with the coordinator, later ones attach to it, so the
// query stays standing — and its owner-side filters stay installed —
// across subscriber connects and disconnects. Each delta is one SSE
// event: `event: delta` with the JSON body on the data line. The stream
// starts with a full snapshot delta, so a reconnecting client resumes
// from the current ranking; it ends when the client disconnects, the
// query is unregistered, or the subscriber falls behind the feed (the
// client reconnects and resumes from a snapshot).
func (s *Server) handleLive(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) || !s.requireLive(w) {
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	protocol := topk.DistBPA2
	if p := r.URL.Query().Get("protocol"); p != "" {
		protocol, err = topk.ParseProtocol(p)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	name := r.URL.Query().Get("query")
	if name == "" {
		name = liveName(q, protocol, r.URL.Query().Get("weights"))
	}
	st, err := s.liveQuery(r.Context(), name, q, protocol)
	if err != nil {
		writeError(w, execStatus(err), "%v", err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	sub := st.Subscribe(64)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	enc, _ := json.Marshal(map[string]string{"query": name})
	fmt.Fprintf(w, "event: hello\ndata: %s\n\n", enc)
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case d, ok := <-sub.C:
			if !ok {
				// Unregistered or dropped for falling behind; tell the
				// client the stream ended on purpose, then close.
				fmt.Fprintf(w, "event: bye\ndata: {}\n\n")
				flusher.Flush()
				return
			}
			body, err := json.Marshal(d)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "event: delta\ndata: %s\n\n", body); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// liveQuery attaches to the named standing query, registering it on
// first use. Concurrent first subscribers race politely: the loser of
// the registration duel retries the lookup.
func (s *Server) liveQuery(ctx context.Context, name string, q topk.Query, protocol topk.Protocol) (*live.Standing, error) {
	if st, ok := s.live.Query(name); ok {
		return st, nil
	}
	st, err := s.live.Register(ctx, name, q, protocol)
	if err != nil {
		if st, ok := s.live.Query(name); ok {
			return st, nil
		}
		return nil, err
	}
	return st, nil
}

// liveName derives a stable standing-query name from the parameters
// when the client did not pick one, so identical subscriptions share
// one standing query (and one set of owner filters).
func liveName(q topk.Query, protocol topk.Protocol, weights string) string {
	scoring := "sum"
	if q.Scoring != nil {
		scoring = q.Scoring.Name()
	}
	name := fmt.Sprintf("k%d-%s-%s", q.K, strings.ToLower(protocol.String()), scoring)
	if weights != "" {
		name += "-w" + weights
	}
	return name
}

// updateItemBody is one (item, delta) pair of an update batch.
type updateItemBody struct {
	Item  int32   `json:"item"`
	Delta float64 `json:"delta"`
}

// ownerUpdatesBody addresses one owner's share of an update batch.
type ownerUpdatesBody struct {
	Owner   int              `json:"owner"`
	Updates []updateItemBody `json:"updates"`
}

// updateBody is the POST /v1/update request: one feed batch under the
// feed's monotone sequence number. Re-POSTing the same (feed, seq)
// after a failure is safe — owners that already applied it acknowledge
// without re-applying.
type updateBody struct {
	Feed    string             `json:"feed"`
	Seq     uint64             `json:"seq"`
	Updates []ownerUpdatesBody `json:"updates"`
}

// updateRespBody is the POST /v1/update response: what applied, which
// standing queries re-evaluated and which the filters kept silent.
type updateRespBody struct {
	Applied     bool                   `json:"applied"`
	Acks        map[int]topk.UpdateAck `json:"acks,omitempty"`
	Reevaluated []string               `json:"reevaluated,omitempty"`
	Suppressed  []string               `json:"suppressed,omitempty"`
}

// handleUpdate ingests one update batch through the live coordinator.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if !s.requireLive(w) {
		return
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return
	}
	var body updateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad update body: %v", err)
		return
	}
	if body.Feed == "" {
		writeError(w, http.StatusBadRequest, "update without a feed name")
		return
	}
	if len(body.Updates) == 0 {
		writeError(w, http.StatusBadRequest, "update batch without updates")
		return
	}
	batches := make(map[int][]topk.ScoreUpdate, len(body.Updates))
	for _, ou := range body.Updates {
		for _, u := range ou.Updates {
			batches[ou.Owner] = append(batches[ou.Owner], topk.ScoreUpdate{Item: u.Item, Delta: u.Delta})
		}
	}
	res, err := s.live.Apply(r.Context(), body.Feed, body.Seq, batches)
	if err != nil {
		writeError(w, execStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, updateRespBody{
		Applied:     res.Applied,
		Acks:        res.Acks,
		Reevaluated: res.Reevaluated,
		Suppressed:  res.Suppressed,
	})
}

// handleLiveStats exposes the coordinator's accounting: the suppression
// savings (reevaluations vs naiveReevals) and the live plane's own
// traffic, kept apart from query accounting.
func (s *Server) handleLiveStats(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) || !s.requireLive(w) {
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Queries    []string        `json:"queries"`
		Accounting live.Accounting `json:"accounting"`
	}{Queries: s.live.Names(), Accounting: s.live.Accounting()})
}
