package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"topk"
	"topk/internal/gen"
	"topk/internal/transport"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, err := topk.FromNamedScores([]map[string]float64{
		{"alpha": 30, "beta": 11, "gamma": 26, "delta": 28, "eps": 17},
		{"alpha": 21, "beta": 28, "gamma": 14, "delta": 13, "eps": 24},
		{"alpha": 14, "beta": 24, "gamma": 30, "delta": 25, "eps": 29},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, wantStatus int, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
}

func TestNewNilDatabase(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil database accepted")
	}
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	var body map[string]string
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestInfo(t *testing.T) {
	ts := testServer(t)
	var body struct {
		N          int  `json:"n"`
		M          int  `json:"m"`
		Dictionary bool `json:"dictionary"`
	}
	getJSON(t, ts.URL+"/v1/info", http.StatusOK, &body)
	if body.N != 5 || body.M != 3 || !body.Dictionary {
		t.Errorf("info = %+v", body)
	}
}

func TestAlgorithmsEndpoint(t *testing.T) {
	ts := testServer(t)
	var body map[string][]string
	getJSON(t, ts.URL+"/v1/algorithms", http.StatusOK, &body)
	algs := body["algorithms"]
	if len(algs) != 7 || algs[0] != "BPA2" || algs[5] != "NRA" {
		t.Errorf("algorithms = %v", algs)
	}
}

type topkResp struct {
	Algorithm string `json:"algorithm"`
	K         int    `json:"k"`
	Items     []struct {
		Item  int     `json:"item"`
		Name  string  `json:"name"`
		Score float64 `json:"score"`
	} `json:"items"`
	Stats struct {
		SortedAccesses int64   `json:"sortedAccesses"`
		TotalAccesses  int64   `json:"totalAccesses"`
		Cost           float64 `json:"cost"`
	} `json:"stats"`
	Inexact bool `json:"inexact"`
}

func TestTopKDefaults(t *testing.T) {
	ts := testServer(t)
	var body topkResp
	getJSON(t, ts.URL+"/v1/topk?k=2", http.StatusOK, &body)
	if body.Algorithm != "BPA2" || body.K != 2 || len(body.Items) != 2 {
		t.Fatalf("body = %+v", body)
	}
	// Overall (Sum): gamma=70, delta=66, alpha=65, eps=70, beta=63.
	// Top-2 are eps and gamma at 70 each; names tie-break by item ID
	// (FromNamedScores sorts names: alpha beta delta eps gamma).
	if body.Items[0].Score != 70 || body.Items[1].Score != 70 {
		t.Errorf("scores = %+v", body.Items)
	}
	if body.Stats.TotalAccesses == 0 || body.Stats.Cost == 0 {
		t.Errorf("stats = %+v", body.Stats)
	}
	if body.Inexact {
		t.Error("BPA2 marked inexact")
	}
}

func TestTopKAlgorithmsAndOptions(t *testing.T) {
	ts := testServer(t)
	for _, q := range []string{
		"k=3&alg=ta",
		"k=3&alg=bpa&tracker=interval",
		"k=3&alg=nra",
		"k=3&alg=ca",
		"k=3&alg=bpa2&parallel=true",
		"k=3&alg=ta&theta=1.5",
		"k=3&scoring=wsum&weights=2,1,0.5",
		"k=3&scoring=min",
		"k=3&alg=ta&sortable=1,0,1",
		"k=3&alg=bpa&sortable=true,false,true",
	} {
		var body topkResp
		getJSON(t, ts.URL+"/v1/topk?"+q, http.StatusOK, &body)
		if len(body.Items) != 3 {
			t.Errorf("query %q: %d items", q, len(body.Items))
		}
	}
}

func TestTopKErrors(t *testing.T) {
	ts := testServer(t)
	cases := []string{
		"",                              // missing k
		"k=abc",                         // bad k
		"k=0",                           // out of range
		"k=99",                          // k > n
		"k=2&alg=zzz",                   // unknown algorithm
		"k=2&scoring=zzz",               // unknown scoring
		"k=2&scoring=wsum",              // wsum without weights
		"k=2&weights=1,x",               // bad weight
		"k=2&theta=zzz",                 // bad theta
		"k=2&theta=0.5",                 // theta < 1
		"k=2&tracker=zzz",               // unknown tracker
		"k=2&parallel=maybe",            // bad bool
		"k=2&alg=nra&parallel=1",        // parallel unsupported for NRA
		"k=2&alg=ta&sortable=1,maybe,1", // bad sortable flag
		"k=2&alg=ta&sortable=0,0,0",     // no sortable list
		"k=2&alg=bpa2&sortable=1,0,1",   // restricted BPA2 unsupported
		"k=2&alg=ta&sortable=1,0",       // wrong arity
	}
	for _, q := range cases {
		var body struct {
			Error string `json:"error"`
		}
		getJSON(t, ts.URL+"/v1/topk?"+q, http.StatusBadRequest, &body)
		if body.Error == "" {
			t.Errorf("query %q: empty error body", q)
		}
	}
}

type distResp struct {
	Protocol string `json:"protocol"`
	K        int    `json:"k"`
	Items    []struct {
		Item  int     `json:"item"`
		Name  string  `json:"name"`
		Score float64 `json:"score"`
	} `json:"items"`
	Net struct {
		Messages      int64   `json:"messages"`
		Payload       int64   `json:"payload"`
		Rounds        int     `json:"rounds"`
		PerOwner      []int64 `json:"perOwner"`
		TotalAccesses int64   `json:"totalAccesses"`
	} `json:"net"`
	Recovery struct {
		Restarts       int `json:"restarts"`
		Handoffs       int `json:"handoffs"`
		FailedReplicas int `json:"failedReplicas"`
	} `json:"recovery"`
}

func TestDistDefaults(t *testing.T) {
	ts := testServer(t)
	var body distResp
	getJSON(t, ts.URL+"/v1/dist?k=2", http.StatusOK, &body)
	if body.Protocol != "dist-bpa2" || body.K != 2 || len(body.Items) != 2 {
		t.Fatalf("body = %+v", body)
	}
	// Same data as /v1/topk: the top-2 overall sums are 70 and 70.
	if body.Items[0].Score != 70 || body.Items[1].Score != 70 {
		t.Errorf("scores = %+v", body.Items)
	}
	if body.Items[0].Name == "" {
		t.Errorf("items lost their names: %+v", body.Items)
	}
	if body.Net.Messages == 0 || body.Net.Payload == 0 || body.Net.Rounds == 0 || body.Net.TotalAccesses == 0 {
		t.Errorf("net accounting empty: %+v", body.Net)
	}
	if len(body.Net.PerOwner) != 3 {
		t.Fatalf("perOwner = %v, want one entry per list", body.Net.PerOwner)
	}
	var sum int64
	for _, c := range body.Net.PerOwner {
		sum += c
	}
	if sum != body.Net.Messages {
		t.Errorf("perOwner sums to %d, messages is %d", sum, body.Net.Messages)
	}
}

// TestDistRecoveryBlock: /v1/dist always carries the recovery block —
// all-zero on an undisturbed run — and accepts the restart parameter.
func TestDistRecoveryBlock(t *testing.T) {
	ts := testServer(t)
	var body distResp
	getJSON(t, ts.URL+"/v1/dist?k=2&restart=failed", http.StatusOK, &body)
	if body.Recovery.Restarts != 0 || body.Recovery.Handoffs != 0 || body.Recovery.FailedReplicas != 0 {
		t.Errorf("undisturbed run reported recovery %+v", body.Recovery)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	getJSON(t, ts.URL+"/v1/dist?k=2&restart=zzz", http.StatusBadRequest, &errBody)
	if !strings.Contains(errBody.Error, "restart policy") {
		t.Errorf("bad restart error = %q", errBody.Error)
	}
}

func TestDistProtocolsAndOptions(t *testing.T) {
	ts := testServer(t)
	for _, q := range []string{
		"k=3&protocol=ta",
		"k=3&protocol=bpa",
		"k=3&protocol=bpa2&tracker=interval",
		"k=3&protocol=tput",
		"k=3&protocol=tput-a",
		"k=3&protocol=bpa&scoring=min",
		"k=3&scoring=wsum&weights=2,1,0.5",
		"k=3&restart=always",
	} {
		var body distResp
		getJSON(t, ts.URL+"/v1/dist?"+q, http.StatusOK, &body)
		if len(body.Items) != 3 {
			t.Errorf("query %q: %d items", q, len(body.Items))
		}
	}
}

// TestDistOverCluster: a server built with NewWithCluster answers
// /v1/dist from the remote owner cluster — same answers and accounting
// as the in-process simulation on the same data, concurrent requests
// included (each runs in its own owner-side session).
func TestDistOverCluster(t *testing.T) {
	db, err := topk.Generate(topk.GenSpec{Kind: topk.GenUniform, N: 200, M: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	// The owners hold the same generated data: Generate is deterministic
	// in the spec, and gen.Spec mirrors topk.GenSpec field for field.
	inner := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 200, M: 3, Seed: 17})
	urls := make([]string, db.M())
	for i := range urls {
		osrv, err := transport.NewServer(inner, i)
		if err != nil {
			t.Fatal(err)
		}
		ots := httptest.NewServer(osrv.Handler())
		t.Cleanup(ots.Close)
		urls[i] = ots.URL
	}
	cluster, err := topk.DialCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	srv, err := NewWithCluster(db, cluster)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// The simulation baseline from a plain server over the same data.
	plain, err := New(db)
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(plain.Handler())
	t.Cleanup(pts.Close)

	var want distResp
	getJSON(t, pts.URL+"/v1/dist?k=5&protocol=bpa2", http.StatusOK, &want)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/dist?k=5&protocol=bpa2")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var got distResp
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				t.Error(err)
				return
			}
			if len(got.Items) != len(want.Items) {
				t.Errorf("cluster answers: %d, want %d", len(got.Items), len(want.Items))
				return
			}
			for i := range want.Items {
				if got.Items[i].Item != want.Items[i].Item || got.Items[i].Score != want.Items[i].Score {
					t.Errorf("cluster item %d = %+v, simulation %+v", i, got.Items[i], want.Items[i])
				}
			}
			if got.Net.Messages != want.Net.Messages || got.Net.Payload != want.Net.Payload {
				t.Errorf("cluster accounting %+v, simulation %+v", got.Net, want.Net)
			}
		}()
	}
	wg.Wait()
}

// TestClusterMismatchRejected: NewWithCluster must refuse a cluster
// whose dimensions disagree with the local database — /v1/info would
// describe one dataset and /v1/dist answer about another.
func TestClusterMismatchRejected(t *testing.T) {
	db, err := topk.Generate(topk.GenSpec{Kind: topk.GenUniform, N: 100, M: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	other := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 50, M: 2, Seed: 1})
	urls := make([]string, other.M())
	for i := range urls {
		osrv, err := transport.NewServer(other, i)
		if err != nil {
			t.Fatal(err)
		}
		ots := httptest.NewServer(osrv.Handler())
		t.Cleanup(ots.Close)
		urls[i] = ots.URL
	}
	cluster, err := topk.DialCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	if _, err := NewWithCluster(db, cluster); err == nil {
		t.Error("mismatched cluster accepted")
	}
}

// TestDistClusterOutage: a dead owner behind a cluster-backed /v1/dist
// is an upstream failure and must answer 502, not blame the caller with
// a 400.
func TestDistClusterOutage(t *testing.T) {
	db, err := topk.Generate(topk.GenSpec{Kind: topk.GenUniform, N: 100, M: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	inner := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 100, M: 2, Seed: 9})
	urls := make([]string, inner.M())
	owners := make([]*httptest.Server, inner.M())
	for i := range urls {
		osrv, err := transport.NewServer(inner, i)
		if err != nil {
			t.Fatal(err)
		}
		owners[i] = httptest.NewServer(osrv.Handler())
		urls[i] = owners[i].URL
	}
	cluster, err := topk.DialCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	srv, err := NewWithCluster(db, cluster)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for _, o := range owners {
		o.Close()
	}
	var body struct {
		Error string `json:"error"`
	}
	getJSON(t, ts.URL+"/v1/dist?k=3", http.StatusBadGateway, &body)
	if body.Error == "" {
		t.Error("empty error body for owner outage")
	}
}

// TestExecStatus pins the error-to-status mapping: upstream owner
// failures (remote 5xx, unknown sessions, dead sockets) are 502,
// context expiry is 504, validation stays 400.
func TestExecStatus(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("dist: k=0 out of range"), http.StatusBadRequest},
		{fmt.Errorf("wrap: %w", context.Canceled), http.StatusGatewayTimeout},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{fmt.Errorf("dist: exchange with owner 1: %w", &transport.RemoteError{Status: 500, Msg: "boom"}), http.StatusBadGateway},
		{fmt.Errorf("dist: exchange with owner 0: %w", &transport.RemoteError{Status: 404, Msg: "unknown session"}), http.StatusBadGateway},
		{fmt.Errorf("owner 2: %w", &url.Error{Op: "Post", URL: "http://x", Err: fmt.Errorf("connection refused")}), http.StatusBadGateway},
		// A replica dying mid-query on pinned traffic is upstream too:
		// the client can simply retry the request.
		{fmt.Errorf("wrap: %w", &topk.OwnerFailedError{List: 1, Replica: 0, URL: "http://x", Err: fmt.Errorf("gone")}), http.StatusBadGateway},
	}
	for _, c := range cases {
		if got := execStatus(c.err); got != c.want {
			t.Errorf("execStatus(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestDistErrors(t *testing.T) {
	ts := testServer(t)
	cases := []string{
		"",                              // missing k
		"k=0",                           // out of range
		"k=99",                          // k > n
		"k=2&protocol=zzz",              // unknown protocol
		"k=2&protocol=tput&scoring=min", // TPUT needs Sum
		"k=2&scoring=zzz",               // unknown scoring
		"k=2&tracker=zzz",               // unknown tracker
	}
	for _, q := range cases {
		var body struct {
			Error string `json:"error"`
		}
		getJSON(t, ts.URL+"/v1/dist?"+q, http.StatusBadRequest, &body)
		if body.Error == "" {
			t.Errorf("query %q: empty error body", q)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/healthz", "/v1/info", "/v1/topk", "/v1/dist", "/v1/explain", "/v1/algorithms"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Errorf("POST %s: Allow = %q", path, allow)
		}
	}
}

func TestExplain(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/explain?k=2&alg=bpa")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)
	for _, want := range []string{"round", "top-2"} {
		if !strings.Contains(strings.ToLower(out), want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	// Parallel explain is refused.
	getJSON(t, ts.URL+"/v1/explain?k=2&parallel=true", http.StatusBadRequest, nil)
}

func TestUnknownPath(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

// TestConcurrentQueries hammers the handler from several goroutines; the
// database is immutable, so every response must be identical.
func TestConcurrentQueries(t *testing.T) {
	ts := testServer(t)
	const workers = 8
	done := make(chan topkResp, workers)
	for w := 0; w < workers; w++ {
		go func() {
			var body topkResp
			resp, err := http.Get(ts.URL + "/v1/topk?k=3")
			if err != nil {
				done <- topkResp{}
				return
			}
			defer resp.Body.Close()
			_ = json.NewDecoder(resp.Body).Decode(&body)
			done <- body
		}()
	}
	var first topkResp
	for w := 0; w < workers; w++ {
		body := <-done
		if w == 0 {
			first = body
			continue
		}
		if len(body.Items) != len(first.Items) {
			t.Fatalf("diverging responses: %+v vs %+v", body, first)
		}
		for i := range body.Items {
			if body.Items[i] != first.Items[i] {
				t.Errorf("item %d: %+v != %+v", i, body.Items[i], first.Items[i])
			}
		}
	}
}
