package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"topk"
	"topk/internal/gen"
	"topk/internal/obs"
	"topk/internal/transport"
)

// clusterBackedServer serves a generated database from httptest owners
// and returns an API server dialed against them.
func clusterBackedServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, err := topk.Generate(topk.GenSpec{Kind: topk.GenUniform, N: 200, M: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	inner := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 200, M: 3, Seed: 17})
	urls := make([]string, db.M())
	for i := range urls {
		osrv, err := transport.NewServer(inner, i)
		if err != nil {
			t.Fatal(err)
		}
		ots := httptest.NewServer(osrv.Handler())
		t.Cleanup(ots.Close)
		urls[i] = ots.URL
	}
	cluster, err := topk.DialCluster(urls)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	srv, err := NewWithCluster(db, cluster)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestDistTraceParam: /v1/dist?trace=1 returns the per-exchange span
// trace; without the parameter the trace block is absent; a malformed
// value is a 400.
func TestDistTraceParam(t *testing.T) {
	ts := testServer(t)

	var traced distBody
	getJSON(t, ts.URL+"/v1/dist?k=2&trace=1", http.StatusOK, &traced)
	if len(traced.Trace) == 0 {
		t.Fatal("trace=1 returned no spans")
	}
	if int64(len(traced.Trace)) != traced.Net.Exchanges {
		t.Errorf("trace has %d spans, want exchanges = %d", len(traced.Trace), traced.Net.Exchanges)
	}
	for _, sp := range traced.Trace {
		if sp.Kind == "" || sp.URL == "" {
			t.Errorf("malformed span %+v", sp)
		}
	}

	var plain distBody
	getJSON(t, ts.URL+"/v1/dist?k=2", http.StatusOK, &plain)
	if plain.Trace != nil {
		t.Errorf("untraced response carries %d spans", len(plain.Trace))
	}
	if !reflect.DeepEqual(plain.Net, traced.Net) {
		t.Errorf("tracing perturbed the accounting: %+v vs %+v", traced.Net, plain.Net)
	}

	resp, err := http.Get(ts.URL + "/v1/dist?k=2&trace=zzz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trace=zzz status = %d, want 400", resp.StatusCode)
	}
}

// TestDistTraceOverCluster: the traced cluster-backed /v1/dist names
// real replica URLs and wire bytes in its spans.
func TestDistTraceOverCluster(t *testing.T) {
	ts := clusterBackedServer(t)
	var body distBody
	getJSON(t, ts.URL+"/v1/dist?k=3&protocol=tput&trace=1", http.StatusOK, &body)
	if len(body.Trace) == 0 {
		t.Fatal("cluster trace is empty")
	}
	for _, sp := range body.Trace {
		if !strings.HasPrefix(sp.URL, "http") || sp.Replica < 0 {
			t.Errorf("cluster span missing replica/url: %+v", sp)
		}
		if sp.ReqBytes <= 0 || sp.RespBytes <= 0 {
			t.Errorf("cluster span missing wire bytes: %+v", sp)
		}
	}
}

// TestClusterHealthEndpoint: /v1/health reports every replica of a
// cluster-backed server and 404s on a simulation-only one.
func TestClusterHealthEndpoint(t *testing.T) {
	plain := testServer(t)
	resp, err := http.Get(plain.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/v1/health without a cluster = %d, want 404", resp.StatusCode)
	}

	ts := clusterBackedServer(t)
	var body struct {
		Replicas []healthBody `json:"replicas"`
	}
	getJSON(t, ts.URL+"/v1/health", http.StatusOK, &body)
	if len(body.Replicas) != 3 {
		t.Fatalf("health reports %d replicas, want 3", len(body.Replicas))
	}
	for _, h := range body.Replicas {
		if !h.Healthy || !strings.HasPrefix(h.URL, "http") {
			t.Errorf("replica %+v", h)
		}
	}
}

// TestServeMetricsEndpoint: the API server exposes the process-wide
// registry as valid Prometheus text exposition.
func TestServeMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	// Move at least one family so the scrape is non-empty even on a
	// fresh process.
	var ignored distBody
	getJSON(t, ts.URL+"/v1/dist?k=2", http.StatusOK, &ignored)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition is malformed: %v\n%s", err, body)
	}
}
