// Package serve exposes a topk.Database over an HTTP JSON API — the
// shape a monitoring console or web front-end would consume. It is the
// service layer of cmd/topk-serve.
//
// Endpoints (all GET):
//
//	/healthz           liveness probe
//	/v1/info           database dimensions
//	/v1/algorithms     available algorithm names
//	/v1/topk           run a query: k, alg, scoring, weights, theta,
//	                   tracker, parallel, sortable (per-list flags for
//	                   the restricted-access TAz/BPAz variants)
//	/v1/dist           run a query under a distributed protocol (k,
//	                   protocol, scoring, weights, tracker, restart —
//	                   off/failed/always, the per-query restart policy;
//	                   trace=1 adds a per-exchange span trace)
//	                   and return answers plus the network accounting
//	                   (messages, payload, rounds, per-owner traffic)
//	                   and a recovery block (restarts, handoffs, failed
//	                   replicas — all zero on an undisturbed run).
//	                   Served from the in-process simulation, or — when
//	                   the server was built with NewWithCluster — from a
//	                   remote HTTP owner cluster, one query session per
//	                   request
//	/v1/explain        the round-by-round threshold walkthrough as text
//	/v1/health         the cluster client's per-replica health snapshot
//	                   (404 without a cluster)
//	/v1/live           subscribe to a standing continuous top-k query
//	                   (same parameters as /v1/dist plus query= to name
//	                   it); an SSE stream of ranking deltas, starting
//	                   with a full snapshot. Requires EnableLive
//	/v1/live/stats     the live coordinator's accounting: standing
//	                   queries, re-evaluations vs the naive per-batch
//	                   count, suppressions, live-plane traffic
//	/v1/update         POST one update batch {feed, seq, updates} into
//	                   the live plane; re-POSTing the same (feed, seq)
//	                   after a failure is safe
//	/metrics           process-wide metrics, Prometheus text exposition
//	                   (JSON with ?format=json)
//
// Errors are JSON {"error": "..."} with a 4xx/5xx status. The handler is
// safe for concurrent use: the underlying database is immutable, every
// query runs on private state, and cluster-backed /v1/dist requests each
// open their own owner-side session. Query execution is bounded by the
// request context, so a client that disconnects aborts its query instead
// of burning the server.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"topk"
	"topk/internal/live"
	"topk/internal/obs"
	"topk/internal/transport"
)

// Server serves one immutable database, optionally backed by a remote
// owner cluster for /v1/dist, optionally with a live coordinator for
// the continuous top-k plane (EnableLive).
type Server struct {
	db      *topk.Database
	cluster *topk.Cluster
	live    *live.Coordinator
	mux     *http.ServeMux
}

// New returns a server over db; /v1/dist runs the in-process simulation.
func New(db *topk.Database) (*Server, error) {
	return NewWithCluster(db, nil)
}

// NewWithCluster returns a server over db whose /v1/dist executes
// against the given remote owner cluster instead of the in-process
// simulation. Each request runs in its own query session, so concurrent
// API clients drive concurrent cluster queries. A nil cluster falls back
// to the simulation. The cluster must hold the same shape of data as db
// (same n and m) — /v1/info describes db, and a mismatched cluster would
// let /v1/dist silently answer about a different dataset.
func NewWithCluster(db *topk.Database, cluster *topk.Cluster) (*Server, error) {
	if db == nil {
		return nil, fmt.Errorf("serve: nil database")
	}
	if cluster != nil && (cluster.N() != db.N() || cluster.M() != db.M()) {
		return nil, fmt.Errorf("serve: cluster serves n=%d m=%d, database has n=%d m=%d — same data required",
			cluster.N(), cluster.M(), db.N(), db.M())
	}
	s := &Server{db: db, cluster: cluster, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/info", s.handleInfo)
	s.mux.HandleFunc("/v1/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("/v1/topk", s.handleTopK)
	s.mux.HandleFunc("/v1/dist", s.handleDist)
	s.mux.HandleFunc("/v1/explain", s.handleExplain)
	s.mux.HandleFunc("/v1/health", s.handleClusterHealth)
	s.mux.HandleFunc("/v1/live", s.handleLive)
	s.mux.HandleFunc("/v1/live/stats", s.handleLiveStats)
	s.mux.HandleFunc("/v1/update", s.handleUpdate)
	s.mux.Handle("/metrics", obs.Default.Handler())
	return s, nil
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON encodes v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// execStatus maps a query-execution error to its HTTP status: a dead,
// unreachable or erroring owner behind a cluster-backed /v1/dist is an
// upstream failure (502), a deadline or client disconnect is a timeout
// (504), and everything else is the caller's own bad request (400).
// Owner-side rejections (transport.RemoteError) count as upstream too:
// the originator validated the query before any exchange, so a remote
// refusal means cluster state drifted, not caller fault. A replica
// failing mid-query on non-failover-able traffic (topk.OwnerFailedError)
// is likewise upstream: the client may simply retry the request — a
// fresh query session pins to a live replica.
func execStatus(err error) int {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	var ofe *topk.OwnerFailedError
	var re *transport.RemoteError
	var ue *url.Error
	var ne net.Error
	if errors.As(err, &ofe) || errors.As(err, &re) || errors.As(err, &ue) || errors.As(err, &ne) {
		return http.StatusBadGateway
	}
	return http.StatusBadRequest
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// requireGet returns false (and replies 405) unless the request is a GET.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
		return false
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// infoBody describes the database.
type infoBody struct {
	N          int  `json:"n"`
	M          int  `json:"m"`
	Dictionary bool `json:"dictionary"`
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	_, named := s.db.IDOf(s.db.NameOf(0))
	writeJSON(w, http.StatusOK, infoBody{N: s.db.N(), M: s.db.M(), Dictionary: named})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	var names []string
	for _, a := range topk.ExtendedAlgorithms() {
		names = append(names, a.String())
	}
	writeJSON(w, http.StatusOK, map[string][]string{"algorithms": names})
}

// itemBody is one answer of a query response.
type itemBody struct {
	Item  int     `json:"item"`
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// statsBody mirrors topk.Stats in JSON form.
type statsBody struct {
	SortedAccesses int64   `json:"sortedAccesses"`
	RandomAccesses int64   `json:"randomAccesses"`
	DirectAccesses int64   `json:"directAccesses"`
	TotalAccesses  int64   `json:"totalAccesses"`
	Cost           float64 `json:"cost"`
	StopPosition   int     `json:"stopPosition"`
	Rounds         int     `json:"rounds"`
	DurationMicros int64   `json:"durationMicros"`
}

// topkBody is the /v1/topk response.
type topkBody struct {
	Algorithm string     `json:"algorithm"`
	K         int        `json:"k"`
	Items     []itemBody `json:"items"`
	Stats     statsBody  `json:"stats"`
	Inexact   bool       `json:"inexact"`
}

// parseQuery builds a topk.Query from URL parameters.
func (s *Server) parseQuery(r *http.Request) (topk.Query, error) {
	var q topk.Query
	params := r.URL.Query()

	kStr := params.Get("k")
	if kStr == "" {
		return q, fmt.Errorf("missing parameter k")
	}
	k, err := strconv.Atoi(kStr)
	if err != nil {
		return q, fmt.Errorf("bad k %q: %v", kStr, err)
	}
	q.K = k

	if alg := params.Get("alg"); alg != "" {
		q.Algorithm, err = topk.ParseAlgorithm(alg)
		if err != nil {
			return q, err
		}
	}
	var weights []float64
	if ws := params.Get("weights"); ws != "" {
		for _, p := range strings.Split(ws, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return q, fmt.Errorf("bad weight %q: %v", p, err)
			}
			weights = append(weights, v)
		}
	}
	if sc := params.Get("scoring"); sc != "" || len(weights) > 0 {
		if sc == "" {
			sc = "wsum"
		}
		q.Scoring, err = topk.ParseScoring(sc, weights)
		if err != nil {
			return q, err
		}
	}
	if th := params.Get("theta"); th != "" {
		q.Approximation, err = strconv.ParseFloat(th, 64)
		if err != nil {
			return q, fmt.Errorf("bad theta %q: %v", th, err)
		}
	}
	if tr := params.Get("tracker"); tr != "" {
		q.Tracker, err = topk.ParseTracker(tr)
		if err != nil {
			return q, err
		}
	}
	if p := params.Get("parallel"); p != "" {
		q.Parallel, err = strconv.ParseBool(p)
		if err != nil {
			return q, fmt.Errorf("bad parallel %q: %v", p, err)
		}
	}
	if so := params.Get("sortable"); so != "" {
		for _, p := range strings.Split(so, ",") {
			v, err := strconv.ParseBool(strings.TrimSpace(p))
			if err != nil {
				return q, fmt.Errorf("bad sortable flag %q: %v", p, err)
			}
			q.Sortable = append(q.Sortable, v)
		}
	}
	return q, nil
}

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	res, err := s.db.Exec(r.Context(), q)
	if err != nil {
		// Validation failures surface as 400s; the database itself is
		// immutable and cannot fail mid-query, so the only other error
		// is the request context firing (client disconnect), a 504.
		writeError(w, execStatus(err), "%v", err)
		return
	}
	body := topkBody{
		Algorithm: res.Algorithm.String(),
		K:         q.K,
		Inexact:   res.Inexact,
		Stats: statsBody{
			SortedAccesses: res.Stats.SortedAccesses,
			RandomAccesses: res.Stats.RandomAccesses,
			DirectAccesses: res.Stats.DirectAccesses,
			TotalAccesses:  res.Stats.TotalAccesses(),
			Cost:           res.Stats.Cost,
			StopPosition:   res.Stats.StopPosition,
			Rounds:         res.Stats.Rounds,
			DurationMicros: res.Stats.Duration.Microseconds(),
		},
	}
	body.Items = make([]itemBody, len(res.Items))
	for i, it := range res.Items {
		body.Items[i] = itemBody{Item: it.Item, Name: it.Name, Score: it.Score}
	}
	writeJSON(w, http.StatusOK, body)
}

// distNetBody mirrors topk.NetStats in JSON form.
type distNetBody struct {
	Messages      int64   `json:"messages"`
	Payload       int64   `json:"payload"`
	Rounds        int     `json:"rounds"`
	Exchanges     int64   `json:"exchanges"`
	PerOwner      []int64 `json:"perOwner"`
	TotalAccesses int64   `json:"totalAccesses"`
	ElapsedMicros int64   `json:"elapsedMicros"`
}

// distRecoveryBody mirrors topk.RecoveryStats in JSON form — all-zero
// (but always present) on an undisturbed run.
type distRecoveryBody struct {
	Restarts       int `json:"restarts"`
	Handoffs       int `json:"handoffs"`
	FailedReplicas int `json:"failedReplicas"`
}

// distSpanBody mirrors topk.TraceSpan in JSON form, durations in
// microseconds like the rest of the API.
type distSpanBody struct {
	Seq            int    `json:"seq"`
	Round          int    `json:"round"`
	Owner          int    `json:"owner"`
	Replica        int    `json:"replica"`
	URL            string `json:"url"`
	Kind           string `json:"kind"`
	Msgs           int    `json:"msgs"`
	ReqBytes       int    `json:"reqBytes"`
	RespBytes      int    `json:"respBytes"`
	DurationMicros int64  `json:"durationMicros"`
	Attempts       int    `json:"attempts"`
	FailedOver     bool   `json:"failedOver,omitempty"`
	Handoff        bool   `json:"handoff,omitempty"`
	Err            string `json:"err,omitempty"`
}

// distBody is the /v1/dist response.
type distBody struct {
	Protocol string           `json:"protocol"`
	K        int              `json:"k"`
	Items    []itemBody       `json:"items"`
	Net      distNetBody      `json:"net"`
	Recovery distRecoveryBody `json:"recovery"`
	Trace    []distSpanBody   `json:"trace,omitempty"`
}

func (s *Server) handleDist(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	protocol := topk.DistBPA2
	if p := r.URL.Query().Get("protocol"); p != "" {
		protocol, err = topk.ParseProtocol(p)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	var opts []topk.ExecOption
	if rp := r.URL.Query().Get("restart"); rp != "" {
		policy, err := topk.ParseRestartPolicy(rp)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		opts = append(opts, topk.WithRestart(policy))
	}
	if tr := r.URL.Query().Get("trace"); tr != "" {
		traced, err := strconv.ParseBool(tr)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad trace %q: %v", tr, err)
			return
		}
		if traced {
			opts = append(opts, topk.WithTrace())
		}
	}
	var res *topk.DistResult
	if s.cluster != nil {
		res, err = s.cluster.Exec(r.Context(), q, protocol, opts...)
	} else {
		res, err = s.db.ExecDistributed(r.Context(), q, protocol, opts...)
	}
	if err != nil {
		writeError(w, execStatus(err), "%v", err)
		return
	}
	body := distBody{
		Protocol: res.Protocol.String(),
		K:        q.K,
		Net: distNetBody{
			Messages:      res.Stats.Net.Messages,
			Payload:       res.Stats.Net.Payload,
			Rounds:        res.Stats.Net.Rounds,
			Exchanges:     res.Stats.Net.Exchanges,
			PerOwner:      res.Stats.Net.PerOwner,
			TotalAccesses: res.Stats.Net.TotalAccesses,
			ElapsedMicros: res.Stats.Net.Elapsed.Microseconds(),
		},
		Recovery: distRecoveryBody{
			Restarts:       res.Stats.Recovery.Restarts,
			Handoffs:       res.Stats.Recovery.Handoffs,
			FailedReplicas: res.Stats.Recovery.FailedReplicas,
		},
	}
	body.Items = make([]itemBody, len(res.Items))
	for i, it := range res.Items {
		body.Items[i] = itemBody{Item: int(it.Item), Name: it.Name, Score: it.Score}
	}
	if res.Stats.Trace != nil {
		body.Trace = make([]distSpanBody, len(res.Stats.Trace))
		for i, sp := range res.Stats.Trace {
			body.Trace[i] = distSpanBody{
				Seq: sp.Seq, Round: sp.Round, Owner: sp.Owner, Replica: sp.Replica,
				URL: sp.URL, Kind: sp.Kind, Msgs: sp.Msgs,
				ReqBytes: sp.ReqBytes, RespBytes: sp.RespBytes,
				DurationMicros: sp.Duration.Microseconds(), Attempts: sp.Attempts,
				FailedOver: sp.FailedOver, Handoff: sp.Handoff, Err: sp.Err,
			}
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// healthBody is one replica's entry in the /v1/health response.
type healthBody struct {
	List          int    `json:"list"`
	Replica       int    `json:"replica"`
	URL           string `json:"url"`
	Healthy       bool   `json:"healthy"`
	Breaker       string `json:"breaker"`
	LatencyMicros int64  `json:"latencyMicros"`
	Failures      int64  `json:"failures"`
	Failovers     int64  `json:"failovers"`
}

// handleClusterHealth reports the cluster client's per-replica view:
// health verdicts, EWMA latencies and failover tallies. Without a
// cluster there is nothing to report — 404, distinct from the liveness
// probe /healthz which always answers.
func (s *Server) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	if s.cluster == nil {
		writeError(w, http.StatusNotFound, "no cluster behind this server (in-process simulation)")
		return
	}
	hs := s.cluster.Health()
	out := make([]healthBody, len(hs))
	for i, h := range hs {
		out[i] = healthBody{
			List: h.List, Replica: h.Replica, URL: h.URL, Healthy: h.Healthy,
			Breaker:       h.Breaker,
			LatencyMicros: h.Latency.Microseconds(), Failures: h.Failures, Failovers: h.Failovers,
		}
	}
	writeJSON(w, http.StatusOK, map[string][]healthBody{"replicas": out})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	q, err := s.parseQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if q.Parallel {
		writeError(w, http.StatusBadRequest, "explain is a sequential walkthrough; drop parallel")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var buf strings.Builder
	start := time.Now()
	res, err := s.db.Explain(q, &buf)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fmt.Fprintf(w, "%s", buf.String())
	fmt.Fprintf(w, "\ntop-%d (%s, %s):\n", q.K, res.Algorithm, time.Since(start).Round(time.Microsecond))
	for i, it := range res.Items {
		fmt.Fprintf(w, "%3d. %-16s score=%.6g\n", i+1, it.Name, it.Score)
	}
}
