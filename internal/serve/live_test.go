package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"topk"
	"topk/internal/list"
	"topk/internal/live"
	"topk/internal/transport"
)

// liveTestCols builds m columns where item d scores (n-d)*colGap in
// every column: the aggregate ranking is 0, 1, 2, ... with a constant
// aggregate gap of m*colGap between consecutive ranks, so the tests
// can place updates precisely under or over the filter slack.
func liveTestCols(n, m int, colGap float64) [][]float64 {
	cols := make([][]float64, m)
	for i := range cols {
		col := make([]float64, n)
		for d := range col {
			col[d] = float64(n-d) * colGap
		}
		cols[i] = col
	}
	return cols
}

// liveServer stands up the full stack: mutable HTTP owners over each of
// cols' lists, a dialed cluster, a live coordinator, and a topk-serve
// handler with the live plane enabled.
func liveServer(t *testing.T, cols [][]float64) (*httptest.Server, *live.Coordinator) {
	t.Helper()
	idb, err := list.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	topo := make([][]string, idb.M())
	for i := range topo {
		osrv, err := transport.NewServer(idb, i)
		if err != nil {
			t.Fatal(err)
		}
		if err := osrv.Owner().EnableUpdates(); err != nil {
			t.Fatal(err)
		}
		ots := httptest.NewServer(osrv.Handler())
		t.Cleanup(ots.Close)
		topo[i] = []string{ots.URL}
	}
	cluster, err := topk.DialClusterConfig(context.Background(), topk.ClusterConfig{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	db, err := topk.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewWithCluster(db, cluster)
	if err != nil {
		t.Fatal(err)
	}
	co, err := live.New(cluster)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableLive(co); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, co
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	event string
	data  []byte
}

// sseSubscribe opens an SSE stream and pumps its events into a channel;
// the returned cancel closes the client side of the connection. The
// channel closes when the stream ends (either side).
func sseSubscribe(t *testing.T, url string) (<-chan sseEvent, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body := new(strings.Builder)
		bufio.NewReader(resp.Body).WriteTo(body)
		resp.Body.Close()
		cancel()
		t.Fatalf("SSE subscribe: status %d: %s", resp.StatusCode, body)
	}
	ch := make(chan sseEvent, 64)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		event := ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				ch <- sseEvent{event: event, data: []byte(strings.TrimPrefix(line, "data: "))}
			}
		}
	}()
	return ch, cancel
}

// nextDelta reads SSE events until a delta arrives (skipping hello).
func nextDelta(t *testing.T, ch <-chan sseEvent, timeout time.Duration) live.Delta {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatal("SSE stream closed while waiting for a delta")
			}
			if ev.event != "delta" {
				continue
			}
			var d live.Delta
			if err := json.Unmarshal(ev.data, &d); err != nil {
				t.Fatalf("bad delta %s: %v", ev.data, err)
			}
			return d
		case <-deadline:
			t.Fatal("no delta within the deadline")
		}
	}
}

// postUpdate POSTs one update batch through /v1/update.
func postUpdate(t *testing.T, base, feed string, seq uint64, batches map[int][]topk.ScoreUpdate) updateRespBody {
	t.Helper()
	var body updateBody
	body.Feed, body.Seq = feed, seq
	for owner, ups := range batches {
		ob := ownerUpdatesBody{Owner: owner}
		for _, u := range ups {
			ob.Updates = append(ob.Updates, updateItemBody{Item: u.Item, Delta: u.Delta})
		}
		body.Updates = append(body.Updates, ob)
	}
	js, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/update", "application/json", bytes.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		t.Fatalf("POST /v1/update seq %d: status %d: %s", seq, resp.StatusCode, eb.Error)
	}
	var out updateRespBody
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// oracleRanking recomputes the expected ranking from a clean replay of
// the update log over the original columns.
func oracleRanking(t *testing.T, cols [][]float64, k int) []topk.ScoredItem {
	t.Helper()
	db, err := topk.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecDistributed(context.Background(), topk.Query{K: k}, topk.DistBPA2)
	if err != nil {
		t.Fatal(err)
	}
	return res.Items
}

func sameItems(got, want []topk.ScoredItem) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Item != want[i].Item || got[i].Score != want[i].Score {
			return false
		}
	}
	return true
}

// TestLiveEndToEnd is the live demo, pinned: owner processes behind a
// topk-serve with the live plane on, a standing BPA2 k=10 query
// subscribed over SSE, and a scripted update feed POSTed through the
// API. Every SSE delta must match an oracle recomputation over a clean
// replay of the update log at that point, filter suppression must keep
// strictly fewer re-evaluations (and wire messages) than re-running the
// query per batch, and the subscriber teardown must leak nothing.
func TestLiveEndToEnd(t *testing.T) {
	// Aggregate gap 0.02 between consecutive ranks; slack 0.01 per owner.
	cols := liveTestCols(60, 2, 0.01)
	ts, _ := liveServer(t, cols)
	// Leak baseline after the stack is up: the assertion is about the
	// subscriber path, not the servers t.Cleanup tears down later.
	base := runtime.NumGoroutine()

	ch, cancel := sseSubscribe(t, ts.URL+"/v1/live?k=10&protocol=bpa2&query=demo")
	defer cancel()

	snap := nextDelta(t, ch, 5*time.Second)
	if !snap.Snapshot || snap.Revision != 1 {
		t.Fatalf("stream did not start with the initial snapshot: %+v", snap)
	}
	if want := oracleRanking(t, cols, 10); !sameItems(snap.Items, want) {
		t.Fatalf("initial snapshot:\n got %v\nwant %v", snap.Items, want)
	}

	// The scripted feed. Per-owner slack is 0.01: 0.001 drifts stay
	// silent, the bigger ones cross.
	tiny := func(item int32) map[int][]topk.ScoreUpdate {
		return map[int][]topk.ScoreUpdate{
			0: {{Item: item, Delta: 0.001}},
			1: {{Item: item, Delta: 0.001}},
		}
	}
	script := []struct {
		batch      map[int][]topk.ScoreUpdate
		wantReeval bool
	}{
		{tiny(40), false}, {tiny(40), false}, {tiny(40), false}, {tiny(40), false},
		{tiny(41), false}, {tiny(41), false}, {tiny(42), false}, {tiny(42), false},
		// Promote item 40 far past the members: crossing, new entry.
		{map[int][]topk.ScoreUpdate{0: {{Item: 40, Delta: 0.5}}, 1: {{Item: 40, Delta: 0.5}}}, true},
		// Touch the rank-1 member: watched items always notify.
		{map[int][]topk.ScoreUpdate{0: {{Item: 0, Delta: 0.3}}}, true},
		{tiny(45), false}, {tiny(45), false}, {tiny(46), false}, {tiny(46), false},
		// Demote item 40 (a member since batch 9) far below the
		// contenders: watched items always notify, and it must Leave.
		{map[int][]topk.ScoreUpdate{0: {{Item: 40, Delta: -0.6}}, 1: {{Item: 40, Delta: -0.6}}}, true},
	}
	lastPushed := snap.Items
	for i, step := range script {
		seq := uint64(i + 1)
		res := postUpdate(t, ts.URL, "demo-feed", seq, step.batch)
		if !res.Applied {
			t.Fatalf("batch %d not applied", seq)
		}
		for owner, ups := range step.batch {
			for _, u := range ups {
				cols[owner][u.Item] += u.Delta
			}
		}
		gotReeval := len(res.Reevaluated) > 0
		if gotReeval != step.wantReeval {
			t.Fatalf("batch %d: reevaluated=%v suppressed=%v, want reeval %v",
				seq, res.Reevaluated, res.Suppressed, step.wantReeval)
		}
		if !step.wantReeval {
			continue
		}
		want := oracleRanking(t, cols, 10)
		if sameItems(want, lastPushed) {
			continue // re-evaluated, ranking stood: nothing pushed
		}
		d := nextDelta(t, ch, 5*time.Second)
		if !sameItems(d.Items, want) {
			t.Fatalf("batch %d: SSE delta diverges from the oracle replay:\n got %v\nwant %v",
				seq, d.Items, want)
		}
		if d.Snapshot {
			t.Fatalf("batch %d: change delta flagged as snapshot", seq)
		}
		// The changes must transform the previous pushed ranking into
		// this one: every membership difference accounted for.
		prevSet := map[int]bool{}
		for _, it := range lastPushed {
			prevSet[it.Item] = true
		}
		for _, it := range d.Items {
			if !prevSet[it.Item] {
				found := false
				for _, c := range d.Changes {
					if c.Kind == topk.ChangeEntered && c.Key == fmt.Sprint(it.Item) {
						found = true
					}
				}
				if !found {
					t.Fatalf("batch %d: item %d entered without an entered change: %+v", seq, it.Item, d.Changes)
				}
			}
		}
		lastPushed = d.Items
	}

	// No stray pushes beyond the scripted crossings.
	select {
	case ev, ok := <-ch:
		if ok && ev.event == "delta" {
			t.Fatalf("unexpected extra delta: %s", ev.data)
		}
	case <-time.After(150 * time.Millisecond):
	}

	// The savings, asserted and logged: strictly fewer re-evaluations
	// and control-plane messages than naive re-run-per-batch.
	var stats struct {
		Queries    []string        `json:"queries"`
		Accounting live.Accounting `json:"accounting"`
	}
	getJSON(t, ts.URL+"/v1/live/stats", http.StatusOK, &stats)
	a := stats.Accounting
	if len(stats.Queries) != 1 || stats.Queries[0] != "demo" {
		t.Errorf("standing queries: %v", stats.Queries)
	}
	if a.Reevaluations >= a.NaiveReevals {
		t.Errorf("no suppression savings: %d re-evaluations vs %d naive", a.Reevaluations, a.NaiveReevals)
	}
	perReeval := float64(a.ReevalMessages) / float64(a.Reevaluations)
	naiveMsgs := perReeval * float64(a.NaiveReevals)
	liveMsgs := float64(a.ReevalMessages + a.FilterMessages)
	if liveMsgs >= naiveMsgs {
		t.Errorf("no wire savings: %v live control messages vs %v naive", liveMsgs, naiveMsgs)
	}
	t.Logf("suppression: %d/%d re-evaluations; %.0f/%.0f control messages (%.1f%%)",
		a.Reevaluations, a.NaiveReevals, liveMsgs, naiveMsgs, 100*liveMsgs/naiveMsgs)

	// Teardown must leak nothing: close the subscriber and wait for the
	// handler goroutines to drain.
	cancel()
	waitGoroutines(t, base)
}

// TestLiveSSEDisconnectReconnect pins the resume contract: dropping a
// subscriber releases its server-side goroutines and registration, the
// standing query keeps running meanwhile, and a fresh subscriber starts
// from the then-current snapshot rather than a replay.
func TestLiveSSEDisconnectReconnect(t *testing.T) {
	cols := liveTestCols(40, 2, 0.01)
	ts, co := liveServer(t, cols)
	base := runtime.NumGoroutine()

	ch, cancel := sseSubscribe(t, ts.URL+"/v1/live?k=5&protocol=bpa2&query=q")
	first := nextDelta(t, ch, 5*time.Second)
	if !first.Snapshot || first.Revision != 1 {
		t.Fatalf("first connect: %+v", first)
	}
	cancel()
	st, ok := co.Query("q")
	if !ok {
		t.Fatal("standing query missing")
	}
	waitFor(t, "subscriber detach", func() bool { return st.Subscribers() == 0 })

	// The query stands while nobody listens: a crossing batch advances
	// the ranking.
	batch := map[int][]topk.ScoreUpdate{0: {{Item: 30, Delta: 0.5}}, 1: {{Item: 30, Delta: 0.5}}}
	res := postUpdate(t, ts.URL, "f", 1, batch)
	if len(res.Reevaluated) != 1 {
		t.Fatalf("crossing batch with no subscribers not re-evaluated: %+v", res)
	}
	for owner, ups := range batch {
		for _, u := range ups {
			cols[owner][u.Item] += u.Delta
		}
	}

	// Reconnect: the stream must open with the CURRENT ranking at the
	// advanced revision — resume from snapshot, not a replay from 1.
	ch2, cancel2 := sseSubscribe(t, ts.URL+"/v1/live?k=5&protocol=bpa2&query=q")
	second := nextDelta(t, ch2, 5*time.Second)
	if !second.Snapshot {
		t.Fatalf("reconnect did not start with a snapshot: %+v", second)
	}
	if second.Revision <= first.Revision {
		t.Errorf("reconnect revision %d did not advance past %d", second.Revision, first.Revision)
	}
	if want := oracleRanking(t, cols, 5); !sameItems(second.Items, want) {
		t.Errorf("reconnect snapshot stale:\n got %v\nwant %v", second.Items, want)
	}
	cancel2()
	waitGoroutines(t, base)
}

// TestLiveEndpointsWithoutLivePlane: the endpoints must answer 404 with
// a pointed message when the live plane is off, not panic or hang.
func TestLiveEndpointsWithoutLivePlane(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/v1/live?k=3", "/v1/live/stats"} {
		var eb errorBody
		getJSON(t, ts.URL+path, http.StatusNotFound, &eb)
		if !strings.Contains(eb.Error, "live plane not enabled") {
			t.Errorf("GET %s: error %q", path, eb.Error)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/update", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("POST /v1/update without live plane: status %d, want 404", resp.StatusCode)
	}
}

// waitFor polls a condition with a deadline.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// waitGoroutines waits for the goroutine count to fall back to the
// baseline — the zero-leak assertion of the live plane. Idle keep-alive
// client connections hold goroutine pairs by design; they are flushed
// each poll so only real leaks remain.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d now, %d at baseline", runtime.NumGoroutine(), base)
}
