package exp

import (
	"bytes"
	"testing"
)

// TestRenderGolden pins the exact text format of the table renderer so
// accidental format drift is caught (EXPERIMENTS.md quotes these tables).
func TestRenderGolden(t *testing.T) {
	tbl := &Table{
		ID: "figX", Figure: "Figure X", Title: "golden", Metric: "execution cost",
		XLabel:  "m",
		Columns: []string{"TA", "BPA", "BPA2"},
		Rows: []Row{
			{Label: "2", Values: map[string]float64{"TA": 100, "BPA": 50, "BPA2": 25}},
			{Label: "4", Values: map[string]float64{"TA": 1000, "BPA": 250, "BPA2": 125.5}},
		},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Note the value-formatting rules: integers print bare, values >= 100
	// round to whole numbers (125.5 -> 126), small values keep three
	// decimals. Gains always use the raw values.
	want := `# figX [Figure X] — golden (execution cost)
m  TA    BPA  BPA2
-  ----  ---  ----
2  100   50   25
4  1000  250  126
mean gain TA/BPA     = 3.00x
mean gain TA/BPA2    = 5.98x
`
	if got := buf.String(); got != want {
		t.Errorf("render drifted.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRenderCSVGolden pins the CSV form.
func TestRenderCSVGolden(t *testing.T) {
	tbl := &Table{
		ID: "figX", XLabel: "k",
		Columns: []string{"A", "B"},
		Rows: []Row{
			{Label: "10", Values: map[string]float64{"A": 1.5}}, // B missing
			{Label: "20", Values: map[string]float64{"A": 2, "B": 3}},
		},
	}
	var buf bytes.Buffer
	if err := tbl.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "k,A,B\n10,1.5,\n20,2,3\n"
	if got := buf.String(); got != want {
		t.Errorf("csv drifted.\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestRenderMissingValuesDash: absent cells render as "-".
func TestRenderMissingValuesDash(t *testing.T) {
	tbl := &Table{
		ID: "x", XLabel: "m",
		Columns: []string{"A", "B"},
		Rows:    []Row{{Label: "1", Values: map[string]float64{"A": 7}}},
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("-")) {
		t.Errorf("missing cell not rendered as dash:\n%s", buf.String())
	}
}

// TestSortedColumnsPicksUpExtras: values present in rows but not declared
// in Columns still render (sorted, after the declared ones).
func TestSortedColumnsPicksUpExtras(t *testing.T) {
	tbl := &Table{
		Columns: []string{"B", "B"},
		Rows: []Row{
			{Label: "1", Values: map[string]float64{"B": 1, "Z": 2, "A": 3}},
		},
	}
	cols := tbl.sortedColumns()
	if len(cols) != 3 || cols[0] != "B" || cols[1] != "A" || cols[2] != "Z" {
		t.Errorf("sortedColumns = %v", cols)
	}
}

func TestGainOverEdgeCases(t *testing.T) {
	tbl := &Table{Rows: []Row{
		{Label: "1", Values: map[string]float64{"TA": 10}},            // no BPA
		{Label: "2", Values: map[string]float64{"TA": 10, "BPA": 0}},  // zero divisor skipped
		{Label: "3", Values: map[string]float64{"TA": 30, "BPA": 10}}, // counts
	}}
	if g := tbl.gainOver("BPA"); g != 3 {
		t.Errorf("gainOver = %v, want 3", g)
	}
	if g := tbl.gainOver("missing"); g != 0 {
		t.Errorf("gainOver(missing) = %v, want 0", g)
	}
}
