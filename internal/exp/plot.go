package exp

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderChart draws the table's series as an ASCII chart — the textual
// equivalent of the paper's figures. Rows map to the x axis in order;
// values are scaled linearly into the given height. Each series plots
// with its own glyph; collisions show the glyph of the later column.
//
// width is the number of character cells available per series point
// interval; the chart is sized width*(len(rows)-1)+1 columns, capped to
// something readable for degenerate inputs.
func (t *Table) RenderChart(w io.Writer, height int) error {
	if height < 4 {
		height = 12
	}
	cols := t.sortedColumns()
	if len(t.Rows) == 0 || len(cols) == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}

	// Collect extremes over every plotted value.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range t.Rows {
		for _, c := range cols {
			if v, ok := r.Values[c]; ok {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
		}
	}
	if math.IsInf(lo, 1) {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if lo == hi {
		lo, hi = lo-1, hi+1 // flat series: center it
	}

	const cell = 6 // columns per x step
	chartW := cell*(len(t.Rows)-1) + 1
	if chartW < 1 {
		chartW = 1
	}
	grid := make([][]byte, height)
	for y := range grid {
		grid[y] = []byte(strings.Repeat(" ", chartW))
	}
	glyphs := seriesGlyphs(cols)
	for ci, c := range cols {
		for ri, r := range t.Rows {
			v, ok := r.Values[c]
			if !ok {
				continue
			}
			x := ri * cell
			yFrac := (v - lo) / (hi - lo)
			y := int(math.Round(float64(height-1) * (1 - yFrac)))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[y][x] = glyphs[ci]
		}
	}

	if _, err := fmt.Fprintf(w, "# %s [%s] — %s (%s)\n", t.ID, t.Figure, t.Title, t.Metric); err != nil {
		return err
	}
	for y, row := range grid {
		label := "          "
		switch y {
		case 0:
			label = leftPad(formatValue(hi), 10)
		case height - 1:
			label = leftPad(formatValue(lo), 10)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, strings.TrimRight(string(row), " ")); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", chartW)); err != nil {
		return err
	}
	// X tick labels under every point.
	ticks := make([]byte, 0, chartW+cell)
	for ri, r := range t.Rows {
		x := ri * cell
		for len(ticks) < x {
			ticks = append(ticks, ' ')
		}
		ticks = append(ticks, r.Label...)
	}
	if _, err := fmt.Fprintf(w, "%s  %s  (%s)\n", strings.Repeat(" ", 10), string(ticks), t.XLabel); err != nil {
		return err
	}
	// Legend.
	var legend []string
	for ci, c := range cols {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[ci], c))
	}
	_, err := fmt.Fprintf(w, "%s  legend: %s\n", strings.Repeat(" ", 10), strings.Join(legend, "  "))
	return err
}

// seriesGlyphs assigns one plotting character per column, preferring the
// column's first letter and falling back to a fixed alphabet on clashes.
func seriesGlyphs(cols []string) []byte {
	fallback := []byte("*o+x#@%&")
	used := map[byte]bool{}
	out := make([]byte, len(cols))
	fi := 0
	for i, c := range cols {
		g := byte('?')
		if len(c) > 0 {
			g = c[0]
		}
		if used[g] {
			for fi < len(fallback) && used[fallback[fi]] {
				fi++
			}
			if fi < len(fallback) {
				g = fallback[fi]
			}
		}
		used[g] = true
		out[i] = g
	}
	return out
}

func leftPad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return strings.Repeat(" ", w-len(s)) + s
}
