// Package exp defines and runs the experiments of the paper's performance
// evaluation (Section 6). Every figure of the paper has a registered
// experiment that regenerates its data series; additional experiments
// cover the paper's worked examples and the ablations called out in
// DESIGN.md.
//
// Experiments are sized by a Config whose zero value reproduces the
// paper's defaults (Table 1: n=100,000, k=20, m=8, Sum scoring, three
// trials averaged). Config.Scale shrinks the database sizes uniformly for
// quick runs and CI.
package exp

import (
	"fmt"
	"sort"
	"time"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/score"
)

// Config sizes an experiment run. Zero fields take the paper's defaults.
type Config struct {
	// N is the number of items per list (Table 1 default: 100,000).
	N int
	// K is the number of answers (default 20).
	K int
	// M is the number of lists where it is not the sweep variable
	// (default 8).
	M int
	// Trials is the number of random databases averaged per point
	// (default 3).
	Trials int
	// Seed is the base RNG seed (default 1).
	Seed int64
	// Scale multiplies every database size, allowing quick runs
	// (default 1.0; e.g. 0.01 runs the n=100,000 experiments at n=1,000).
	Scale float64
	// Tracker selects the best-position structure (default: bit array,
	// as in the paper's evaluation).
	Tracker bestpos.Kind
}

func (c Config) withDefaults() Config {
	if c.N <= 0 {
		c.N = 100_000
	}
	if c.K <= 0 {
		c.K = 20
	}
	if c.M <= 0 {
		c.M = 8
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// scaled applies the scale factor to a database size, keeping at least
// enough items for the largest k sweep (k=100) plus headroom.
func (c Config) scaled(n int) int {
	v := int(float64(n) * c.Scale)
	if v < 200 {
		v = 200
	}
	return v
}

// Row is one line of an experiment table: a label (the sweep value) and
// one value per column.
type Row struct {
	Label  string
	Values map[string]float64
}

// Table is the output of one experiment: column order plus rows. It
// mirrors one figure of the paper.
type Table struct {
	// ID is the registry key (e.g. "fig3").
	ID string
	// Title describes the experiment, e.g. the paper caption.
	Title string
	// Figure names the paper artifact being reproduced ("Figure 3").
	Figure string
	// XLabel names the sweep variable ("m", "k", "n", ...).
	XLabel string
	// Metric names the measured quantity ("execution cost", ...).
	Metric string
	// Columns is the column order for rendering.
	Columns []string
	// Rows holds the measured series.
	Rows []Row
}

// Get returns the value at (label, column); ok is false when absent.
func (t *Table) Get(label, column string) (float64, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			v, ok := r.Values[column]
			return v, ok
		}
	}
	return 0, false
}

// Experiment is a registered, runnable reproduction unit.
type Experiment struct {
	// ID is the stable registry key used by cmd/topk-bench -exp.
	ID string
	// Title is a one-line description.
	Title string
	// Figure names the paper table/figure it regenerates, if any.
	Figure string
	// Run executes the experiment.
	Run func(cfg Config) (*Table, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// Registry returns all experiments in registration (paper) order.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID finds an experiment by its registry key.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all registry keys in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// --- measurement helpers ----------------------------------------------

// metric selects what a sweep measures.
type metric uint8

const (
	metricCost metric = iota // execution cost: as*cs + (ar+ad)*cr
	metricAccesses
	metricTimeMS
)

func (mt metric) String() string {
	switch mt {
	case metricCost:
		return "execution cost"
	case metricAccesses:
		return "number of accesses"
	case metricTimeMS:
		return "response time (ms)"
	default:
		return fmt.Sprintf("metric(%d)", uint8(mt))
	}
}

// series is one measured line of a figure: an algorithm plus options.
type series struct {
	name    string
	alg     core.Algorithm
	memoize bool
}

// comparedSeries is the evaluation lineup. The paper's figures plot TA,
// BPA and BPA2; we additionally plot the memoized BPA ("BPA-mem"),
// because the paper's measured uniform-database gains are only
// reproducible with memoization while its formal accounting (Lemma 2) is
// non-memoized — EXPERIMENTS.md discusses the discrepancy.
func comparedSeries() []series {
	return []series{
		{name: "TA", alg: core.AlgTA},
		{name: "BPA", alg: core.AlgBPA},
		{name: "BPA-mem", alg: core.AlgBPA, memoize: true},
		{name: "BPA2", alg: core.AlgBPA2},
	}
}

// measure runs one series over db and extracts the metric.
func measure(s series, db *list.Database, opts core.Options, mt metric) (float64, error) {
	opts.Memoize = s.memoize
	start := time.Now()
	res, err := core.Run(s.alg, db, opts)
	if err != nil {
		return 0, err
	}
	elapsed := time.Since(start)
	switch mt {
	case metricCost:
		return res.Cost(access.DefaultCostModel(db.N())), nil
	case metricAccesses:
		return float64(res.Counts.Total()), nil
	case metricTimeMS:
		return float64(elapsed.Microseconds()) / 1000.0, nil
	default:
		return 0, fmt.Errorf("exp: unknown metric %d", mt)
	}
}

// sweepSpec drives a generic parameter sweep producing one table.
type sweepSpec struct {
	id, title, figure string
	xLabel            string
	metric            metric
	// points lists the sweep values in order.
	points []int
	// makeSpec builds the generator spec for a sweep value and trial seed.
	makeSpec func(cfg Config, x int, seed int64) gen.Spec
	// k returns the query size for a sweep value.
	k func(cfg Config, x int) int
}

// runSweep generates Trials databases per point and averages the metric
// per series.
func runSweep(s sweepSpec, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	lineup := comparedSeries()
	tbl := &Table{
		ID:     s.id,
		Title:  s.title,
		Figure: s.figure,
		XLabel: s.xLabel,
		Metric: s.metric.String(),
	}
	for _, sr := range lineup {
		tbl.Columns = append(tbl.Columns, sr.name)
	}
	for pi, x := range s.points {
		row := Row{Label: fmt.Sprintf("%d", x), Values: map[string]float64{}}
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + int64(pi)*1009 + int64(trial)*9176
			db, err := gen.Generate(s.makeSpec(cfg, x, seed))
			if err != nil {
				return nil, fmt.Errorf("exp %s: generate x=%d: %w", s.id, x, err)
			}
			k := s.k(cfg, x)
			if k > db.N() {
				k = db.N()
			}
			for _, sr := range lineup {
				v, err := measure(sr, db, core.Options{K: k, Scoring: score.Sum{}, Tracker: cfg.Tracker}, s.metric)
				if err != nil {
					return nil, fmt.Errorf("exp %s: %s at x=%d: %w", s.id, sr.name, x, err)
				}
				row.Values[sr.name] += v
			}
		}
		for _, sr := range lineup {
			row.Values[sr.name] /= float64(cfg.Trials)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// gainOver returns mean(TA metric / alg metric) across rows — the paper's
// "outperforms TA by a factor of" summaries.
func (t *Table) gainOver(alg string) float64 {
	var sum float64
	var n int
	for _, r := range t.Rows {
		ta, ok1 := r.Values["TA"]
		v, ok2 := r.Values[alg]
		if ok1 && ok2 && v > 0 {
			sum += ta / v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// sortedColumns returns the table's columns; used by renderers when the
// declared order is missing entries found in rows.
func (t *Table) sortedColumns() []string {
	seen := map[string]bool{}
	var cols []string
	for _, c := range t.Columns {
		if !seen[c] {
			cols = append(cols, c)
			seen[c] = true
		}
	}
	var extra []string
	for _, r := range t.Rows {
		for c := range r.Values {
			if !seen[c] {
				extra = append(extra, c)
				seen[c] = true
			}
		}
	}
	sort.Strings(extra)
	return append(cols, extra...)
}
