package exp

import "topk/internal/gen"

// The paper's sweeps: m = 2..18 step 2 (Figures 3-11), k = 10..100 step
// 10 (Figures 12-14), n = 25,000..200,000 step 25,000 (Figures 15-17).

func mPoints() []int { return []int{2, 4, 6, 8, 10, 12, 14, 16, 18} }

func kPoints() []int { return []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} }

func nPoints() []int {
	return []int{25_000, 50_000, 75_000, 100_000, 125_000, 150_000, 175_000, 200_000}
}

// registerMSweep registers one of the m-sweep figures.
func registerMSweep(id, figure, caption string, mt metric, kind gen.Kind, alpha float64) {
	register(Experiment{
		ID:     id,
		Title:  caption,
		Figure: figure,
		Run: func(cfg Config) (*Table, error) {
			return runSweep(sweepSpec{
				id: id, title: caption, figure: figure,
				xLabel: "m", metric: mt,
				points: mPoints(),
				makeSpec: func(cfg Config, m int, seed int64) gen.Spec {
					return gen.Spec{Kind: kind, N: cfg.scaled(cfg.N), M: m, Alpha: alpha, Seed: seed}
				},
				k: func(cfg Config, _ int) int { return cfg.K },
			}, cfg)
		},
	})
}

// registerKSweep registers one of the k-sweep figures.
func registerKSweep(id, figure, caption string, kind gen.Kind, alpha float64) {
	register(Experiment{
		ID:     id,
		Title:  caption,
		Figure: figure,
		Run: func(cfg Config) (*Table, error) {
			return runSweep(sweepSpec{
				id: id, title: caption, figure: figure,
				xLabel: "k", metric: metricCost,
				points: kPoints(),
				makeSpec: func(cfg Config, _ int, seed int64) gen.Spec {
					return gen.Spec{Kind: kind, N: cfg.scaled(cfg.N), M: cfg.M, Alpha: alpha, Seed: seed}
				},
				k: func(_ Config, k int) int { return k },
			}, cfg)
		},
	})
}

// registerNSweep registers one of the n-sweep figures.
func registerNSweep(id, figure, caption string, kind gen.Kind, alpha float64) {
	register(Experiment{
		ID:     id,
		Title:  caption,
		Figure: figure,
		Run: func(cfg Config) (*Table, error) {
			return runSweep(sweepSpec{
				id: id, title: caption, figure: figure,
				xLabel: "n", metric: metricCost,
				points: nPoints(),
				makeSpec: func(cfg Config, n int, seed int64) gen.Spec {
					return gen.Spec{Kind: kind, N: cfg.scaled(n), M: cfg.M, Alpha: alpha, Seed: seed}
				},
				k: func(cfg Config, _ int) int { return cfg.K },
			}, cfg)
		},
	})
}

func init() {
	// Section 6.2.1: effect of the number of lists.
	registerMSweep("fig3", "Figure 3", "Execution cost vs. number of lists over uniform database", metricCost, gen.Uniform, 0)
	registerMSweep("fig4", "Figure 4", "Number of accesses vs. number of lists over uniform database", metricAccesses, gen.Uniform, 0)
	registerMSweep("fig5", "Figure 5", "Response time vs. number of lists over uniform database", metricTimeMS, gen.Uniform, 0)
	registerMSweep("fig6", "Figure 6", "Execution cost vs. number of lists over Gaussian database", metricCost, gen.Gaussian, 0)
	registerMSweep("fig7", "Figure 7", "Number of accesses vs. number of lists over Gaussian database", metricAccesses, gen.Gaussian, 0)
	registerMSweep("fig8", "Figure 8", "Response time vs. number of lists over Gaussian database", metricTimeMS, gen.Gaussian, 0)
	registerMSweep("fig9", "Figure 9", "Execution cost vs. number of lists over correlated database with alpha=0.001", metricCost, gen.Correlated, 0.001)
	registerMSweep("fig10", "Figure 10", "Execution cost vs. number of lists over correlated database with alpha=0.01", metricCost, gen.Correlated, 0.01)
	registerMSweep("fig11", "Figure 11", "Execution cost vs. number of lists over correlated database with alpha=0.1", metricCost, gen.Correlated, 0.1)

	// Section 6.2.2: effect of k.
	registerKSweep("fig12", "Figure 12", "Execution cost vs. k over uniform database (m=8)", gen.Uniform, 0)
	registerKSweep("fig13", "Figure 13", "Execution cost vs. k over correlated database with alpha=0.01 (m=8)", gen.Correlated, 0.01)
	registerKSweep("fig14", "Figure 14", "Execution cost vs. k over correlated database with alpha=0.001 (m=8)", gen.Correlated, 0.001)

	// Section 6.2.3: effect of the number of data items.
	registerNSweep("fig15", "Figure 15", "Execution cost vs. n over uniform database (m=8)", gen.Uniform, 0)
	registerNSweep("fig16", "Figure 16", "Execution cost vs. n over correlated database with alpha=0.01 (m=8)", gen.Correlated, 0.01)
	registerNSweep("fig17", "Figure 17", "Execution cost vs. n over correlated database with alpha=0.0001 (m=8)", gen.Correlated, 0.0001)
}
