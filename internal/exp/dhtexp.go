package exp

import (
	"fmt"

	"topk/internal/dht"
	"topk/internal/dist"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/score"
)

func init() {
	register(Experiment{
		ID:    "dht",
		Title: "Extension (paper §8 future work): top-k over a Chord-style DHT — overlay hops vs network size",
		Run:   runDHT,
	})
}

// runDHT sweeps the ring size and reports total overlay hops for the
// distributed protocols under the cached-connection cost model, plus
// dist-bpa2 under full routing. The database is fixed (uniform,
// n = cfg.N/10 like the dist experiment), so hop growth isolates the
// overlay's O(log N) lookup cost on top of each protocol's message count.
func runDHT(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(cfg.N / 10)
	tbl := &Table{
		ID:      "dht",
		Title:   "Overlay hops vs ring size (uniform database, cached connections)",
		XLabel:  "ring nodes",
		Metric:  "total overlay hops",
		Columns: []string{"dist-ta", "dist-bpa2", "tput", "dist-bpa2 routed", "mean lookup hops"},
	}
	protocols := []struct {
		name string
		run  func(*list.Database, dist.Options) (*dist.Result, error)
	}{
		{"dist-ta", dist.TA},
		{"dist-bpa2", dist.BPA2},
		{"tput", dist.TPUT},
	}
	for _, ringSize := range []int{64, 256, 1024, 4096, 16384} {
		row := Row{Label: fmt.Sprintf("%d", ringSize), Values: map[string]float64{}}
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := cfg.Seed + int64(trial)
			ring, err := dht.NewRing(ringSize, seed)
			if err != nil {
				return nil, err
			}
			db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: n, M: cfg.M, Seed: seed})
			if err != nil {
				return nil, err
			}
			opts := dist.Options{K: cfg.K, Scoring: score.Sum{}, Tracker: cfg.Tracker}
			for _, p := range protocols {
				res, err := dht.TopK(ring, db, opts, p.run, dht.Cached, seed)
				if err != nil {
					return nil, err
				}
				row.Values[p.name] += float64(res.Hops)
			}
			routed, err := dht.TopK(ring, db, opts, dist.BPA2, dht.Routed, seed)
			if err != nil {
				return nil, err
			}
			row.Values["dist-bpa2 routed"] += float64(routed.Hops)
			var hops, cnt float64
			for _, h := range routed.Placement.LookupHops {
				hops += float64(h)
				cnt++
			}
			row.Values["mean lookup hops"] += hops / cnt
		}
		for c := range row.Values {
			row.Values[c] /= float64(cfg.Trials)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
