package exp

import (
	"fmt"
	"time"

	"topk/internal/access"
	"topk/internal/core"
	"topk/internal/gen"
	"topk/internal/parallel"
	"topk/internal/score"
)

// This file registers the extension experiments that place the paper's
// algorithms inside the wider Fagin framework (NRA, CA) and measure the
// parallel executor. Neither appears in the paper; DESIGN.md lists both
// as ablations.

func init() {
	register(Experiment{
		ID:    "fagin",
		Title: "Fagin-framework baselines: execution cost of TA/NRA/CA vs BPA/BPA2 (uniform database)",
		Run:   runFagin,
	})
	register(Experiment{
		ID:    "parallel",
		Title: "Parallel executor: wall-clock time of sequential vs per-list-goroutine runs",
		Run:   runParallel,
	})
}

// runFagin sweeps m over uniform databases and reports the execution cost
// of the whole algorithm family: the sorted-access-only NRA, the
// balanced CA, the random-access-heavy TA, and the paper's BPA/BPA2.
// NRA's cost is all sorted accesses (cheap ones); TA's is dominated by
// random accesses; the best-position algorithms beat both ends.
func runFagin(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(cfg.N)
	model := access.DefaultCostModel(n)
	tbl := &Table{
		ID:      "fagin",
		Title:   "Execution cost of the Fagin-framework algorithms (uniform database, k=20)",
		XLabel:  "m",
		Metric:  "execution cost",
		Columns: []string{"TA", "NRA", "CA", "BPA-mem", "BPA2"},
	}
	lineup := []struct {
		name string
		alg  core.Algorithm
		memo bool
	}{
		{"TA", core.AlgTA, false},
		{"NRA", core.AlgNRA, false},
		{"CA", core.AlgCA, false},
		{"BPA-mem", core.AlgBPA, true},
		{"BPA2", core.AlgBPA2, false},
	}
	for _, m := range mPoints() {
		row := Row{Label: fmt.Sprintf("%d", m), Values: map[string]float64{}}
		for trial := 0; trial < cfg.Trials; trial++ {
			db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: n, M: m, Seed: cfg.Seed + int64(trial)})
			if err != nil {
				return nil, err
			}
			for _, s := range lineup {
				res, err := core.Run(s.alg, db, core.Options{K: cfg.K, Scoring: score.Sum{}, Memoize: s.memo, Tracker: cfg.Tracker})
				if err != nil {
					return nil, fmt.Errorf("exp fagin: %s at m=%d: %w", s.name, m, err)
				}
				row.Values[s.name] += res.Cost(model)
			}
		}
		for c := range row.Values {
			row.Values[c] /= float64(cfg.Trials)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// runParallel compares wall-clock response time of the sequential and the
// per-list-goroutine executor for TA and BPA2. Answers and access counts
// are identical by construction (asserted in internal/parallel's tests);
// only the schedule differs, so this table isolates the scheduling gain.
func runParallel(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(cfg.N)
	tbl := &Table{
		ID:      "parallel",
		Title:   "Sequential vs parallel executor response time (uniform database, k=20)",
		XLabel:  "m",
		Metric:  "response time (ms)",
		Columns: []string{"TA seq", "TA par", "BPA2 seq", "BPA2 par"},
	}
	for _, m := range []int{2, 4, 8, 12, 16} {
		row := Row{Label: fmt.Sprintf("%d", m), Values: map[string]float64{}}
		for trial := 0; trial < cfg.Trials; trial++ {
			db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: n, M: m, Seed: cfg.Seed + int64(trial)})
			if err != nil {
				return nil, err
			}
			for _, alg := range []core.Algorithm{core.AlgTA, core.AlgBPA2} {
				opts := core.Options{K: cfg.K, Scoring: score.Sum{}, Tracker: cfg.Tracker}
				start := time.Now()
				if _, err := core.Run(alg, db, opts); err != nil {
					return nil, err
				}
				row.Values[alg.String()+" seq"] += ms(time.Since(start))
				start = time.Now()
				if _, err := parallel.Run(alg, db, opts); err != nil {
					return nil, err
				}
				row.Values[alg.String()+" par"] += ms(time.Since(start))
			}
		}
		for c := range row.Values {
			row.Values[c] /= float64(cfg.Trials)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
