package exp

import (
	"bytes"
	"strings"
	"testing"
)

func chartTable() *Table {
	return &Table{
		ID: "fig0", Figure: "Figure 0", Title: "test chart", Metric: "cost",
		XLabel:  "m",
		Columns: []string{"TA", "BPA2"},
		Rows: []Row{
			{Label: "2", Values: map[string]float64{"TA": 10, "BPA2": 8}},
			{Label: "4", Values: map[string]float64{"TA": 40, "BPA2": 20}},
			{Label: "8", Values: map[string]float64{"TA": 100, "BPA2": 30}},
		},
	}
}

func TestRenderChart(t *testing.T) {
	var buf bytes.Buffer
	if err := chartTable().RenderChart(&buf, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test chart", "legend:", "T=TA", "B=BPA2", "(m)", "100", "+---"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The max value (TA at m=8) must sit on the top row.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "T") {
		t.Errorf("top row missing the max glyph:\n%s", out)
	}
}

func TestRenderChartDegenerate(t *testing.T) {
	empty := &Table{ID: "x", XLabel: "m"}
	var buf bytes.Buffer
	if err := empty.RenderChart(&buf, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Errorf("empty chart output: %q", buf.String())
	}

	flat := &Table{
		ID: "flat", XLabel: "m", Columns: []string{"A"},
		Rows: []Row{{Label: "1", Values: map[string]float64{"A": 5}}},
	}
	buf.Reset()
	if err := flat.RenderChart(&buf, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "A=A") {
		t.Errorf("flat chart missing legend:\n%s", buf.String())
	}
}

func TestRenderChartTinyHeightDefaults(t *testing.T) {
	var buf bytes.Buffer
	if err := chartTable().RenderChart(&buf, 1); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines < 12 {
		t.Errorf("height fallback not applied: %d lines", lines)
	}
}

func TestSeriesGlyphs(t *testing.T) {
	gs := seriesGlyphs([]string{"TA", "BPA", "BPA2", ""})
	if gs[0] != 'T' || gs[1] != 'B' {
		t.Errorf("glyphs = %q", gs)
	}
	if gs[2] == gs[1] {
		t.Errorf("clash not resolved: %q", gs)
	}
	if gs[3] == gs[0] || gs[3] == gs[1] || gs[3] == gs[2] {
		t.Errorf("empty-name glyph clashes: %q", gs)
	}
}

// TestRenderChartOnRealExperiment smoke-tests the chart over an actual
// tiny experiment run.
func TestRenderChartOnRealExperiment(t *testing.T) {
	e, ok := ByID("fig3")
	if !ok {
		t.Fatal("fig3 missing")
	}
	tbl, err := e.Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.RenderChart(&buf, 14); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "legend:") {
		t.Error("chart incomplete")
	}
}
