package exp

import (
	"fmt"
	"time"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/dist"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/paperdb"
	"topk/internal/score"
)

// This file registers the non-sweep experiments: the paper's Table 1 and
// worked examples, and the ablations listed in DESIGN.md.

func init() {
	register(Experiment{
		ID:     "table1",
		Title:  "Default setting of experimental parameters",
		Figure: "Table 1",
		Run:    runTable1,
	})
	register(Experiment{
		ID:     "example1",
		Title:  "Stop positions and access counts of FA/TA/BPA/BPA2 over the Figure 1 database (Examples 1-3)",
		Figure: "Figure 1",
		Run:    func(cfg Config) (*Table, error) { return runExample("example1", "Figure 1", paperdb.Figure1) },
	})
	register(Experiment{
		ID:     "example2",
		Title:  "BPA vs BPA2 accesses over the Figure 2 database (Section 5.1)",
		Figure: "Figure 2",
		Run:    func(cfg Config) (*Table, error) { return runExample("example2", "Figure 2", paperdb.Figure2) },
	})
	register(Experiment{
		ID:    "trackers",
		Title: "Ablation: best-position tracker implementations (Section 5.2), BPA response time",
		Run:   runTrackers,
	})
	register(Experiment{
		ID:    "tamemo",
		Title: "Ablation: TA vs memoized TA (redundant random accesses)",
		Run:   runTAMemo,
	})
	register(Experiment{
		ID:    "dist",
		Title: "Distributed protocols: messages and payload vs number of lists (uniform database)",
		Run:   runDist,
	})
}

func runTable1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	tbl := &Table{
		ID:      "table1",
		Title:   "Default setting of experimental parameters",
		Figure:  "Table 1",
		XLabel:  "parameter",
		Metric:  "default value",
		Columns: []string{"value"},
	}
	tbl.Rows = []Row{
		{Label: "n (items per list)", Values: map[string]float64{"value": float64(cfg.scaled(cfg.N))}},
		{Label: "k", Values: map[string]float64{"value": float64(cfg.K)}},
		{Label: "m (number of lists)", Values: map[string]float64{"value": float64(cfg.M)}},
		{Label: "trials", Values: map[string]float64{"value": float64(cfg.Trials)}},
	}
	return tbl, nil
}

// runExample reports, for each algorithm over a paper fixture database,
// the stop position and the access breakdown — the numbers the paper
// walks through in Examples 1-3 and Section 5.1.
func runExample(id, figure string, build func() (*list.Database, error)) (*Table, error) {
	db, err := build()
	if err != nil {
		return nil, err
	}
	tbl := &Table{
		ID:      id,
		Title:   "k=3, f=sum over the " + figure + " database",
		Figure:  figure,
		XLabel:  "algorithm",
		Metric:  "counts",
		Columns: []string{"stop position", "sorted", "random", "direct", "total accesses"},
	}
	for _, alg := range core.Algorithms() {
		res, err := core.Run(alg, db, core.Options{K: 3, Scoring: score.Sum{}})
		if err != nil {
			return nil, err
		}
		tbl.Rows = append(tbl.Rows, Row{
			Label: alg.String(),
			Values: map[string]float64{
				"stop position":  float64(res.StopPosition),
				"sorted":         float64(res.Counts.Sorted),
				"random":         float64(res.Counts.Random),
				"direct":         float64(res.Counts.Direct),
				"total accesses": float64(res.Counts.Total()),
			},
		})
	}
	return tbl, nil
}

// runTrackers times BPA with each best-position tracker over the default
// uniform database, reporting response time and verifying identical
// access counts (the tracker must not change the algorithm's behaviour).
func runTrackers(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(cfg.N)
	tbl := &Table{
		ID:      "trackers",
		Title:   "BPA response time by best-position tracker (uniform database)",
		XLabel:  "tracker",
		Metric:  "ms / accesses",
		Columns: []string{"time (ms)", "total accesses"},
	}
	var wantAccesses int64 = -1
	for _, kind := range bestpos.Kinds() {
		var totalMS float64
		var accesses int64
		for trial := 0; trial < cfg.Trials; trial++ {
			db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: n, M: cfg.M, Seed: cfg.Seed + int64(trial)})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			res, err := core.Run(core.AlgBPA, db, core.Options{K: cfg.K, Scoring: score.Sum{}, Tracker: kind})
			if err != nil {
				return nil, err
			}
			totalMS += float64(time.Since(start).Microseconds()) / 1000
			accesses = res.Counts.Total()
		}
		if wantAccesses == -1 {
			wantAccesses = accesses
		} else if accesses != wantAccesses {
			return nil, fmt.Errorf("exp trackers: %v changed access count: %d != %d", kind, accesses, wantAccesses)
		}
		tbl.Rows = append(tbl.Rows, Row{
			Label: kind.String(),
			Values: map[string]float64{
				"time (ms)":      totalMS / float64(cfg.Trials),
				"total accesses": float64(accesses),
			},
		})
	}
	return tbl, nil
}

// runTAMemo compares plain TA with the memoized ablation across m,
// reporting random accesses (the redundancy) and execution cost.
func runTAMemo(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(cfg.N)
	tbl := &Table{
		ID:      "tamemo",
		Title:   "TA vs memoized TA over uniform database",
		XLabel:  "m",
		Metric:  "random accesses / execution cost",
		Columns: []string{"TA random", "TA-memo random", "TA cost", "TA-memo cost"},
	}
	model := access.DefaultCostModel(n)
	for _, m := range mPoints() {
		row := Row{Label: fmt.Sprintf("%d", m), Values: map[string]float64{}}
		for trial := 0; trial < cfg.Trials; trial++ {
			db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: n, M: m, Seed: cfg.Seed + int64(trial)})
			if err != nil {
				return nil, err
			}
			plain, err := core.Run(core.AlgTA, db, core.Options{K: cfg.K, Scoring: score.Sum{}})
			if err != nil {
				return nil, err
			}
			memo, err := core.Run(core.AlgTA, db, core.Options{K: cfg.K, Scoring: score.Sum{}, Memoize: true})
			if err != nil {
				return nil, err
			}
			row.Values["TA random"] += float64(plain.Counts.Random)
			row.Values["TA-memo random"] += float64(memo.Counts.Random)
			row.Values["TA cost"] += plain.Cost(model)
			row.Values["TA-memo cost"] += memo.Cost(model)
		}
		for c := range row.Values {
			row.Values[c] /= float64(cfg.Trials)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}

// runDist sweeps m over uniform databases and reports the simulated
// message counts of the four distributed protocols, plus BPA's payload
// overhead from shipping seen positions.
func runDist(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	// The distributed sweep uses a tenth of the configured database size:
	// dist-TA exchanges two messages per access, so full-size runs are
	// dominated by simulation bookkeeping without changing the shape.
	n := cfg.scaled(cfg.N / 10)
	tbl := &Table{
		ID:      "dist",
		Title:   "Distributed protocol traffic vs number of lists (uniform database)",
		XLabel:  "m",
		Metric:  "messages / payload",
		Columns: []string{"dist-ta msgs", "dist-bpa msgs", "dist-bpa2 msgs", "tput msgs", "dist-bpa payload", "dist-bpa2 payload"},
	}
	protocols := []struct {
		name string
		run  func(*list.Database, dist.Options) (*dist.Result, error)
	}{
		{"dist-ta", dist.TA},
		{"dist-bpa", dist.BPA},
		{"dist-bpa2", dist.BPA2},
		{"tput", dist.TPUT},
	}
	for _, m := range []int{2, 4, 6, 8, 10} {
		row := Row{Label: fmt.Sprintf("%d", m), Values: map[string]float64{}}
		for trial := 0; trial < cfg.Trials; trial++ {
			db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: n, M: m, Seed: cfg.Seed + int64(trial)})
			if err != nil {
				return nil, err
			}
			for _, p := range protocols {
				res, err := p.run(db, dist.Options{K: cfg.K, Scoring: score.Sum{}, Tracker: cfg.Tracker})
				if err != nil {
					return nil, err
				}
				row.Values[p.name+" msgs"] += float64(res.Net.Messages)
				if p.name == "dist-bpa" || p.name == "dist-bpa2" {
					row.Values[p.name+" payload"] += float64(res.Net.Payload)
				}
			}
		}
		for c := range row.Values {
			row.Values[c] /= float64(cfg.Trials)
		}
		tbl.Rows = append(tbl.Rows, row)
	}
	return tbl, nil
}
