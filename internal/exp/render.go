package exp

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Render writes the table as aligned text, one row per sweep value, with
// a header naming the figure and metric. When the table contains the TA /
// BPA / BPA2 series it appends the paper's summary factors
// (TA cost / BPA cost and TA cost / BPA2 cost averaged across rows, cf.
// Section 6.2.4: "(m+6)/8 and (m+1)/2 respectively").
func (t *Table) Render(w io.Writer) error {
	cols := t.sortedColumns()
	header := append([]string{t.XLabel}, cols...)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	cells := make([][]string, len(t.Rows))
	for ri, r := range t.Rows {
		row := make([]string, len(header))
		row[0] = r.Label
		for ci, c := range cols {
			if v, ok := r.Values[c]; ok {
				row[ci+1] = formatValue(v)
			} else {
				row[ci+1] = "-"
			}
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
		cells[ri] = row
	}

	if _, err := fmt.Fprintf(w, "# %s [%s] — %s (%s)\n", t.ID, t.Figure, t.Title, t.Metric); err != nil {
		return err
	}
	writeRow := func(row []string) error {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := writeRow(header); err != nil {
		return err
	}
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range cells {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, alg := range []string{"BPA", "BPA-mem", "BPA2"} {
		if g := t.gainOver(alg); g > 0 {
			if _, err := fmt.Fprintf(w, "mean gain TA/%-7s = %.2fx\n", alg, g); err != nil {
				return err
			}
		}
	}
	return nil
}

// RenderCSV writes the table in CSV form (header row, then one row per
// sweep value).
func (t *Table) RenderCSV(w io.Writer) error {
	cols := t.sortedColumns()
	header := append([]string{t.XLabel}, cols...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row := make([]string, 0, len(header))
		row = append(row, r.Label)
		for _, c := range cols {
			if v, ok := r.Values[c]; ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// formatValue renders large counters without decimals and small
// measurements with three significant decimals.
func formatValue(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == float64(int64(v)) && av < 1e15:
		return strconv.FormatInt(int64(v), 10)
	case av >= 100:
		return strconv.FormatFloat(v, 'f', 0, 64)
	default:
		return strconv.FormatFloat(v, 'f', 3, 64)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
