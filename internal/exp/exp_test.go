package exp

import (
	"bytes"
	"strings"
	"testing"
)

// quickCfg shrinks every experiment enough for CI while keeping the
// qualitative shape (BPA and BPA2 beating TA on independent databases).
func quickCfg() Config {
	return Config{Scale: 0.01, Trials: 1, Seed: 42}
}

func TestRegistryComplete(t *testing.T) {
	// Every figure of the paper's evaluation must be registered, plus the
	// worked examples, Table 1, and the three ablations.
	want := []string{
		"table1", "example1", "example2",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"fig15", "fig16", "fig17",
		"trackers", "tamemo", "dist", "dht",
		"fagin", "parallel",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(ids), len(want), ids)
	}
}

func TestByID(t *testing.T) {
	e, ok := ByID("fig3")
	if !ok || e.ID != "fig3" || e.Figure != "Figure 3" {
		t.Fatalf("ByID(fig3) = %+v, %v", e, ok)
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) found something")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.N != 100_000 || c.K != 20 || c.M != 8 || c.Trials != 3 || c.Scale != 1 || c.Seed != 1 {
		t.Errorf("defaults = %+v", c)
	}
	if got := (Config{Scale: 0.001}).withDefaults().scaled(100_000); got != 200 {
		t.Errorf("scaled floor = %d, want 200", got)
	}
}

// TestAllExperimentsRun executes every registered experiment at tiny
// scale and sanity-checks the resulting tables.
func TestAllExperimentsRun(t *testing.T) {
	cfg := quickCfg()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tbl, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if tbl.ID != e.ID {
				t.Errorf("table ID %q, want %q", tbl.ID, e.ID)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, r := range tbl.Rows {
				if len(r.Values) == 0 {
					t.Errorf("row %q has no values", r.Label)
				}
				for c, v := range r.Values {
					if v < 0 {
						t.Errorf("row %q column %q negative: %v", r.Label, c, v)
					}
				}
			}
			var buf bytes.Buffer
			if err := tbl.Render(&buf); err != nil {
				t.Fatalf("render: %v", err)
			}
			if !strings.Contains(buf.String(), tbl.XLabel) {
				t.Error("rendered table missing x label")
			}
			buf.Reset()
			if err := tbl.RenderCSV(&buf); err != nil {
				t.Fatalf("render csv: %v", err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if len(lines) != len(tbl.Rows)+1 {
				t.Errorf("csv has %d lines, want %d", len(lines), len(tbl.Rows)+1)
			}
		})
	}
}

// TestUniformGains runs the Figure 3 experiment at reduced scale and
// checks the paper's qualitative claim: BPA and BPA2 beat TA on execution
// cost over uniform databases, and the gains grow with m.
func TestUniformGains(t *testing.T) {
	cfg := Config{Scale: 0.02, Trials: 2, Seed: 7}
	e, ok := ByID("fig3")
	if !ok {
		t.Fatal("fig3 missing")
	}
	tbl, err := e.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkRow := func(label string) (ta, bpa, bpa2 float64) {
		taV, ok1 := tbl.Get(label, "TA")
		bpaV, ok2 := tbl.Get(label, "BPA")
		bpa2V, ok3 := tbl.Get(label, "BPA2")
		if !ok1 || !ok2 || !ok3 {
			t.Fatalf("row %s incomplete", label)
		}
		return taV, bpaV, bpa2V
	}
	// m=8 (the default and the paper's featured point).
	ta, bpa, bpa2 := checkRow("8")
	if !(bpa < ta) {
		t.Errorf("m=8: BPA cost %v not below TA %v", bpa, ta)
	}
	if !(bpa2 < bpa) {
		t.Errorf("m=8: BPA2 cost %v not below BPA %v", bpa2, bpa)
	}
	// Gains at m=18 exceed gains at m=4 (Section 6.2.4: "as m increases,
	// the performance gains ... increase significantly").
	ta4, _, bpa2at4 := checkRow("4")
	ta18, _, bpa2at18 := checkRow("18")
	if ta18/bpa2at18 <= ta4/bpa2at4 {
		t.Errorf("BPA2 gain does not grow with m: m=4 %.2fx, m=18 %.2fx",
			ta4/bpa2at4, ta18/bpa2at18)
	}
}

// TestExample1Table cross-checks the example1 experiment against the
// paper's walked-through numbers.
func TestExample1Table(t *testing.T) {
	e, _ := ByID("example1")
	tbl, err := e.Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		alg    string
		column string
		want   float64
	}{
		{"TA", "stop position", 6},
		{"TA", "sorted", 18},
		{"TA", "random", 36},
		{"BPA", "stop position", 3},
		{"BPA", "sorted", 9},
		{"BPA", "random", 18},
		{"FA", "stop position", 8},
	}
	for _, c := range cases {
		got, ok := tbl.Get(c.alg, c.column)
		if !ok || got != c.want {
			t.Errorf("%s %s = %v (ok=%v), want %v", c.alg, c.column, got, ok, c.want)
		}
	}
}

// TestExample2Table cross-checks the example2 experiment (Figure 2):
// BPA does 63 accesses, BPA2 does 36.
func TestExample2Table(t *testing.T) {
	e, _ := ByID("example2")
	tbl, err := e.Run(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := tbl.Get("BPA", "total accesses"); got != 63 {
		t.Errorf("BPA total = %v, want 63", got)
	}
	if got, _ := tbl.Get("BPA2", "total accesses"); got != 36 {
		t.Errorf("BPA2 total = %v, want 36", got)
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		42:      "42",
		1234567: "1234567",
		3.14159: "3.142",
		123.456: "123",
		0.5:     "0.500",
	}
	for in, want := range cases {
		if got := formatValue(in); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableGet(t *testing.T) {
	tbl := &Table{Rows: []Row{{Label: "a", Values: map[string]float64{"x": 1}}}}
	if v, ok := tbl.Get("a", "x"); !ok || v != 1 {
		t.Error("Get(a,x)")
	}
	if _, ok := tbl.Get("a", "y"); ok {
		t.Error("Get(a,y) should miss")
	}
	if _, ok := tbl.Get("b", "x"); ok {
		t.Error("Get(b,x) should miss")
	}
}
