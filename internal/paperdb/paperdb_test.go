package paperdb

import (
	"testing"

	"topk/internal/list"
)

func TestFigure1Valid(t *testing.T) {
	db, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if db.M() != 3 || db.N() != 14 {
		t.Fatalf("M=%d N=%d, want 3, 14", db.M(), db.N())
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// Spot-check cells against the printed table.
	if got := db.List(0).At(1); got.Item != Item(1) || got.Score != 30 {
		t.Errorf("L1 position 1 = %+v, want d1/30", got)
	}
	if got := db.List(1).At(7); got.Item != Item(8) || got.Score != 20 {
		t.Errorf("L2 position 7 = %+v, want d8/20", got)
	}
	if got := db.List(2).At(10); got.Item != Item(7) || got.Score != 11 {
		t.Errorf("L3 position 10 = %+v, want d7/11", got)
	}
}

func TestFigure1OverallScores(t *testing.T) {
	db, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1c prints the overall (sum) scores of d1..d9.
	want := map[int]float64{1: 65, 2: 63, 3: 70, 4: 66, 5: 70, 6: 60, 7: 61, 8: 71, 9: 62}
	for name, overall := range want {
		var sum float64
		for i := 0; i < db.M(); i++ {
			sum += db.List(i).ScoreOf(Item(name))
		}
		if sum != overall {
			t.Errorf("overall(d%d) = %v, want %v", name, sum, overall)
		}
	}
}

func TestFigure2OverallScores(t *testing.T) {
	db, err := Figure2()
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{1: 65, 2: 65, 3: 70, 4: 68, 5: 63, 6: 66, 7: 61, 8: 64, 9: 62}
	for name, overall := range want {
		var sum float64
		for i := 0; i < db.M(); i++ {
			sum += db.List(i).ScoreOf(Item(name))
		}
		if sum != overall {
			t.Errorf("overall(d%d) = %v, want %v", name, sum, overall)
		}
	}
}

func TestFigure1TAThresholds(t *testing.T) {
	db, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 1b prints TA's threshold at positions 1..10.
	want := []float64{88, 84, 80, 75, 72, 63, 52, 42, 36, 33}
	for p := 1; p <= 10; p++ {
		var delta float64
		for i := 0; i < db.M(); i++ {
			delta += db.List(i).At(p).Score
		}
		if delta != want[p-1] {
			t.Errorf("threshold at position %d = %v, want %v", p, delta, want[p-1])
		}
	}
}

func TestNames(t *testing.T) {
	if Name(Item(7)) != "d7" {
		t.Errorf("Name(Item(7)) = %q, want d7", Name(Item(7)))
	}
	if Item(1) != list.ItemID(0) {
		t.Error("Item(1) != 0")
	}
}
