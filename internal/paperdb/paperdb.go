// Package paperdb builds the example databases printed in the paper
// (Figure 1, used by Examples 1-3, and Figure 2, used by the Section 5.1
// BPA-vs-BPA2 comparison).
//
// The paper shows only the first 10 positions of each list over items
// d1..d14. The databases here are completed to n=14 by placing the items
// missing from each shown prefix at positions 11-14 with scores strictly
// below the position-10 score; the completion cannot affect any behaviour
// the paper asserts because no algorithm reaches past position 10 on
// these queries (verified by the tests in internal/core).
package paperdb

import (
	"fmt"

	"topk/internal/list"
)

// Item returns the ItemID of the paper's item name dN (1-based).
func Item(n int) list.ItemID { return list.ItemID(n - 1) }

// Name returns the paper's name for an ItemID ("d1".."d14").
func Name(d list.ItemID) string { return fmt.Sprintf("d%d", d+1) }

type row struct {
	item  int
	score float64
}

func build(rows ...[]row) (*list.Database, error) {
	lists := make([]*list.List, len(rows))
	for i, lr := range rows {
		entries := make([]list.Entry, len(lr))
		for p, r := range lr {
			entries[p] = list.Entry{Item: Item(r.item), Score: r.score}
		}
		l, err := list.New(entries)
		if err != nil {
			return nil, fmt.Errorf("paperdb: list %d: %w", i+1, err)
		}
		lists[i] = l
	}
	return list.NewDatabase(lists...)
}

// Figure1 returns the database of Figure 1. Over it, with k=3 and the Sum
// scoring function, FA stops at position 8, TA at position 6, and BPA at
// position 3; the top-3 answers are d8 (71), d3 (70) and d5 (70).
func Figure1() (*list.Database, error) {
	return build(
		[]row{
			{1, 30}, {4, 28}, {9, 27}, {3, 26}, {7, 25},
			{8, 23}, {5, 17}, {6, 14}, {2, 11}, {11, 10},
			{10, 9}, {12, 8}, {13, 7}, {14, 6}, // completion
		},
		[]row{
			{2, 28}, {6, 27}, {7, 25}, {5, 24}, {9, 23},
			{1, 21}, {8, 20}, {3, 14}, {4, 13}, {14, 12},
			{10, 11}, {11, 10}, {12, 9}, {13, 8}, // completion
		},
		[]row{
			{3, 30}, {5, 29}, {8, 28}, {4, 25}, {2, 24},
			{6, 19}, {13, 15}, {1, 14}, {9, 12}, {7, 11},
			{10, 10}, {11, 9}, {12, 8}, {14, 7}, // completion
		},
	)
}

// Figure2 returns the database of Figure 2. Over it, with k=3 and the Sum
// scoring function, BPA stops at position 7 (63 accesses) while BPA2
// performs direct accesses only at positions 1, 2, 3 and 7 (36 accesses);
// the top-3 answers are d3 (70), d4 (68) and d6 (66).
func Figure2() (*list.Database, error) {
	return build(
		[]row{
			{1, 30}, {4, 28}, {9, 27}, {3, 26}, {7, 25},
			{8, 24}, {11, 17}, {6, 14}, {2, 11}, {5, 10},
			{10, 9}, {12, 8}, {13, 7}, {14, 6}, // completion
		},
		[]row{
			{2, 28}, {6, 27}, {7, 25}, {5, 24}, {9, 23},
			{1, 22}, {14, 20}, {3, 14}, {4, 13}, {8, 12},
			{10, 11}, {11, 10}, {12, 9}, {13, 8}, // completion
		},
		[]row{
			{3, 30}, {5, 29}, {8, 28}, {4, 27}, {2, 26},
			{6, 25}, {13, 15}, {1, 13}, {9, 12}, {7, 11},
			{10, 10}, {11, 9}, {12, 8}, {14, 7}, // completion
		},
	)
}
