package dht

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"topk/internal/core"
	"topk/internal/dist"
	"topk/internal/gen"
	"topk/internal/score"
)

func mustRing(t *testing.T, n int, seed int64) *Ring {
	t.Helper()
	r, err := NewRing(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0, 1); err == nil {
		t.Error("empty ring accepted")
	}
	r := mustRing(t, 1, 1)
	if r.Size() != 1 {
		t.Errorf("Size = %d", r.Size())
	}
}

func TestSuccessorMatchesLinearScan(t *testing.T) {
	r := mustRing(t, 64, 7)
	nodes := r.Nodes()
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 2000; trial++ {
		key := NodeID(rng.Uint64())
		// Linear-scan reference: smallest node >= key, else wrap to min.
		want := nodes[0]
		found := false
		for _, id := range nodes {
			if id >= key {
				want = id
				found = true
				break
			}
		}
		if !found {
			want = nodes[0]
		}
		if got := r.Successor(key); got != want {
			t.Fatalf("Successor(%d) = %d, want %d", key, got, want)
		}
	}
}

func TestRouteReachesOwner(t *testing.T) {
	r := mustRing(t, 128, 11)
	rng := rand.New(rand.NewSource(5))
	nodes := r.Nodes()
	for trial := 0; trial < 500; trial++ {
		from := nodes[rng.Intn(len(nodes))]
		key := NodeID(rng.Uint64())
		owner, hops := r.Route(from, key)
		if owner != r.Successor(key) {
			t.Fatalf("Route delivered to %d, owner is %d", owner, r.Successor(key))
		}
		if from == owner && hops != 0 {
			t.Fatalf("self-route took %d hops", hops)
		}
		// Chord bound: O(log N) with high probability; allow slack.
		if hops > 4*bitsFor(len(nodes)) {
			t.Fatalf("route took %d hops in a %d-node ring", hops, len(nodes))
		}
	}
}

func bitsFor(n int) int {
	b := 0
	for v := 1; v < n; v <<= 1 {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

func TestRouteHopsGrowLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	avg := func(n int) float64 {
		r := mustRing(t, n, 13)
		nodes := r.Nodes()
		total := 0
		const trials = 400
		for i := 0; i < trials; i++ {
			from := nodes[rng.Intn(len(nodes))]
			_, hops := r.Route(from, NodeID(rng.Uint64()))
			total += hops
		}
		return float64(total) / trials
	}
	small, large := avg(64), avg(4096)
	if large <= small {
		t.Errorf("hops do not grow with ring size: %v vs %v", small, large)
	}
	// 4096/64 = 64x more nodes should cost roughly log(64)=6 extra hops,
	// nowhere near 64x.
	if large > small*4 {
		t.Errorf("hops grew superlogarithmically: %v -> %v", small, large)
	}
	if large > 2*math.Log2(4096) {
		t.Errorf("average hops %v exceed 2*log2(N)", large)
	}
}

func TestBetween(t *testing.T) {
	cases := []struct {
		a, b, x NodeID
		want    bool
	}{
		{10, 20, 15, true},
		{10, 20, 20, true},
		{10, 20, 10, false},
		{10, 20, 25, false},
		{20, 10, 25, true},  // wrapping interval
		{20, 10, 5, true},   // wrapping interval
		{20, 10, 15, false}, // outside wrap
	}
	for _, c := range cases {
		if got := between(c.a, c.b, c.x); got != c.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestPlaceIsDeterministic(t *testing.T) {
	r := mustRing(t, 256, 21)
	p1 := r.Place(8, 5)
	p2 := r.Place(8, 5)
	for i := range p1.Owners {
		if p1.Owners[i] != p2.Owners[i] || p1.LookupHops[i] != p2.LookupHops[i] {
			t.Fatal("placement not deterministic")
		}
	}
	p3 := r.Place(8, 6)
	if p3.Originator == p1.Originator {
		t.Log("same originator for different seeds (possible, not an error)")
	}
}

func TestTopKOverDHT(t *testing.T) {
	ring := mustRing(t, 512, 3)
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 500, M: 4, Seed: 8})
	oracle, err := core.Oracle(db, 10, score.Sum{})
	if err != nil {
		t.Fatal(err)
	}
	opts := dist.Options{K: 10, Scoring: score.Sum{}}
	for _, model := range []CostModel{Cached, Routed} {
		res, err := TopK(ring, db, opts, dist.BPA2, model, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range oracle {
			if res.Dist.Items[i].Score != oracle[i].Score {
				t.Fatalf("%v: answer %d = %v, want %v", model, i, res.Dist.Items[i], oracle[i])
			}
		}
		if res.Hops <= 0 {
			t.Errorf("%v: no hops recorded", model)
		}
		if len(res.Placement.Owners) != db.M() {
			t.Errorf("%v: placement has %d owners", model, len(res.Placement.Owners))
		}
	}
}

func TestTopKCachedCheaperThanRouted(t *testing.T) {
	ring := mustRing(t, 4096, 3)
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 1000, M: 4, Seed: 8})
	opts := dist.Options{K: 10, Scoring: score.Sum{}}
	cached, err := TopK(ring, db, opts, dist.TA, Cached, 1)
	if err != nil {
		t.Fatal(err)
	}
	routed, err := TopK(ring, db, opts, dist.TA, Routed, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Hops >= routed.Hops {
		t.Errorf("cached (%d hops) not cheaper than routed (%d hops)", cached.Hops, routed.Hops)
	}
	// Cached total is messages + one lookup per owner: barely above the
	// message count.
	if cached.Hops < cached.Dist.Net.Messages {
		t.Errorf("cached hops %d below message count %d", cached.Hops, cached.Dist.Net.Messages)
	}
}

func TestTopKValidation(t *testing.T) {
	ring := mustRing(t, 16, 3)
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 50, M: 2, Seed: 8})
	opts := dist.Options{K: 5, Scoring: score.Sum{}}
	if _, err := TopK(nil, db, opts, dist.TA, Cached, 1); err == nil {
		t.Error("nil ring accepted")
	}
	if _, err := TopK(ring, nil, opts, dist.TA, Cached, 1); err == nil {
		t.Error("nil database accepted")
	}
	if _, err := TopK(ring, db, opts, dist.TA, CostModel(9), 1); err == nil {
		t.Error("unknown cost model accepted")
	}
	if _, err := TopK(ring, db, dist.Options{K: 0, Scoring: score.Sum{}}, dist.TA, Cached, 1); err == nil {
		t.Error("invalid protocol options accepted")
	}
}

func TestCostModelString(t *testing.T) {
	if Cached.String() != "cached" || Routed.String() != "routed" || CostModel(7).String() == "" {
		t.Error("cost model strings")
	}
}

// TestPropertyRouting: routing from any node for any key reaches the
// owner within a sane hop bound, on rings of arbitrary size.
func TestPropertyRouting(t *testing.T) {
	prop := func(seed int64, sizeRaw uint16, keyRaw uint64, fromRaw uint16) bool {
		n := 1 + int(sizeRaw)%600
		r, err := NewRing(n, seed)
		if err != nil {
			return false
		}
		nodes := r.Nodes()
		from := nodes[int(fromRaw)%len(nodes)]
		owner, hops := r.Route(from, NodeID(keyRaw))
		if owner != r.Successor(NodeID(keyRaw)) {
			t.Logf("wrong owner (n=%d seed=%d)", n, seed)
			return false
		}
		if hops > n {
			t.Logf("%d hops in a %d-node ring", hops, n)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
