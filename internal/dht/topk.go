package dht

import (
	"fmt"

	"topk/internal/dist"
	"topk/internal/list"
)

// Placement records where a query's participants live on the ring.
type Placement struct {
	// Originator is the node issuing the query.
	Originator NodeID
	// Owners[i] is the node storing sorted list i, the successor of
	// hash("list/<i>").
	Owners []NodeID
	// LookupHops[i] is the routing distance from the originator to
	// owner i (the cost of the initial DHT lookup that locates the
	// list).
	LookupHops []int
}

// Place computes the owner node of every list of an m-list database and
// the originator's routing distance to each. The originator is the node
// owning hash("originator/<seed>").
func (r *Ring) Place(m int, seed int64) Placement {
	p := Placement{
		Originator: r.Successor(hashKey(fmt.Sprintf("originator/%d", seed))),
		Owners:     make([]NodeID, m),
		LookupHops: make([]int, m),
	}
	for i := 0; i < m; i++ {
		owner, hops := r.Route(p.Originator, hashKey(fmt.Sprintf("list/%d", i)))
		p.Owners[i] = owner
		p.LookupHops[i] = hops
	}
	return p
}

// CostModel prices protocol messages on the overlay.
type CostModel uint8

const (
	// Cached: the originator resolves each list owner once through the
	// DHT (LookupHops), then keeps a direct connection, so every
	// subsequent message costs one hop. This is how real DHT
	// applications (and the paper's reference [3]) run iterative
	// protocols.
	Cached CostModel = iota
	// Routed: every message is routed through the overlay — the
	// pessimistic model where nodes keep no connections.
	Routed
)

// String returns the model name.
func (c CostModel) String() string {
	switch c {
	case Cached:
		return "cached"
	case Routed:
		return "routed"
	default:
		return fmt.Sprintf("CostModel(%d)", uint8(c))
	}
}

// Result reports a top-k execution over the DHT.
type Result struct {
	// Dist is the underlying protocol execution (answers, messages,
	// accesses).
	Dist *dist.Result
	// Placement records owners and lookup distances.
	Placement Placement
	// Hops is the total number of overlay hops all protocol traffic
	// traversed under the chosen cost model, including the initial
	// lookups.
	Hops int64
	// Model is the cost model used.
	Model CostModel
}

// TopK runs a distributed top-k protocol with the database's lists
// stored in the DHT. run is one of the internal/dist protocols
// (dist.TA, dist.BPA, dist.BPA2, dist.TPUT).
func TopK(
	r *Ring,
	db *list.Database,
	opts dist.Options,
	run func(*list.Database, dist.Options) (*dist.Result, error),
	model CostModel,
	placementSeed int64,
) (*Result, error) {
	if r == nil || db == nil {
		return nil, fmt.Errorf("dht: nil ring or database")
	}
	dres, err := run(db, opts)
	if err != nil {
		return nil, err
	}
	p := r.Place(db.M(), placementSeed)
	res := &Result{Dist: dres, Placement: p, Model: model}

	for i, msgs := range dres.Net.PerOwner {
		if i >= len(p.Owners) {
			return nil, fmt.Errorf("dht: protocol used owner %d beyond placement of %d lists", i, len(p.Owners))
		}
		switch model {
		case Cached:
			if msgs > 0 {
				// One DHT lookup to find the owner, then direct messages.
				res.Hops += int64(p.LookupHops[i]) + msgs
			}
		case Routed:
			// Every message walks the overlay. Replies traverse the same
			// distance in reverse.
			res.Hops += msgs * int64(maxInt(p.LookupHops[i], 1))
		default:
			return nil, fmt.Errorf("dht: unknown cost model %d", model)
		}
	}
	return res, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
