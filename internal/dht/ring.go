// Package dht implements the paper's stated future work (Section 8):
// running BPA-style top-k algorithms over a distributed hash table, "the
// popular DHTs where top-k query support is challenging".
//
// The substrate is a Chord-style ring: N nodes with uniformly random
// 64-bit identifiers, each key owned by its successor node, and greedy
// finger-table routing that reaches any key in O(log N) hops. On top of
// it, TopK places each sorted list at the node owning the hash of its
// index and executes one of the internal/dist protocols between the
// query originator and those list owners, pricing every protocol message
// by its overlay routing cost.
package dht

import (
	"fmt"
	"math/rand"
	"sort"
)

// NodeID identifies a node on the 2^64 identifier circle.
type NodeID uint64

// Ring is a static Chord-style overlay. Nodes are fixed at construction
// (no churn); routing state is the classic finger table: node x's j-th
// finger is the successor of x + 2^j.
type Ring struct {
	nodes   []NodeID   // sorted
	fingers [][]NodeID // fingers[i][j] = successor(nodes[i] + 2^j)
}

// NewRing builds a ring of n nodes with pseudorandom identifiers drawn
// from the given seed. n must be at least 1.
func NewRing(n int, seed int64) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("dht: ring needs at least one node, got %d", n)
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[NodeID]bool, n)
	nodes := make([]NodeID, 0, n)
	for len(nodes) < n {
		id := NodeID(rng.Uint64())
		if !seen[id] {
			seen[id] = true
			nodes = append(nodes, id)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	r := &Ring{nodes: nodes}
	r.fingers = make([][]NodeID, n)
	for i, id := range nodes {
		f := make([]NodeID, 64)
		for j := 0; j < 64; j++ {
			f[j] = r.Successor(id + 1<<uint(j))
		}
		r.fingers[i] = f
	}
	return r, nil
}

// Size returns the number of nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Nodes returns the node identifiers in ring order.
func (r *Ring) Nodes() []NodeID {
	cp := make([]NodeID, len(r.nodes))
	copy(cp, r.nodes)
	return cp
}

// Successor returns the node that owns key: the first node clockwise
// from key (wrapping around the circle).
func (r *Ring) Successor(key NodeID) NodeID {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i] >= key })
	if i == len(r.nodes) {
		return r.nodes[0]
	}
	return r.nodes[i]
}

// nodeIndex returns the position of an existing node identifier.
func (r *Ring) nodeIndex(id NodeID) int {
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i] >= id })
	if i == len(r.nodes) || r.nodes[i] != id {
		panic(fmt.Sprintf("dht: %d is not a ring node", id))
	}
	return i
}

// between reports whether x lies in the circular interval (a, b].
func between(a, b, x NodeID) bool {
	if a < b {
		return x > a && x <= b
	}
	return x > a || x <= b // interval wraps zero
}

// succOf returns the next node clockwise after node id (its ring
// successor).
func (r *Ring) succOf(id NodeID) NodeID {
	return r.Successor(id + 1)
}

// Route performs Chord lookup from node `from` towards the owner of key,
// returning the owner and the number of overlay hops taken. A node that
// already owns the key routes in zero hops. Each step either delivers to
// the successor (when the key lies between the current node and it) or
// forwards to the closest preceding finger, giving the classic O(log N)
// expected path length.
func (r *Ring) Route(from NodeID, key NodeID) (owner NodeID, hops int) {
	owner = r.Successor(key)
	cur := from
	for cur != owner {
		succ := r.succOf(cur)
		if between(cur, succ, key) {
			// key ∈ (cur, succ]: succ owns it; deliver.
			cur = succ
		} else {
			next := r.closestPrecedingFinger(cur, key)
			if next == cur {
				next = succ // degenerate ring: fall back to the successor
			}
			cur = next
		}
		hops++
	}
	return owner, hops
}

// closestPrecedingFinger returns cur's finger that most closely precedes
// key without passing it.
func (r *Ring) closestPrecedingFinger(cur NodeID, key NodeID) NodeID {
	fingers := r.fingers[r.nodeIndex(cur)]
	for j := len(fingers) - 1; j >= 0; j-- {
		f := fingers[j]
		if f != cur && between(cur, key-1, f) {
			return f
		}
	}
	return cur
}

// hashKey maps an arbitrary byte string onto the identifier circle
// (FNV-1a, sufficient for placement in a simulation).
func hashKey(s string) NodeID {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	var h uint64 = offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return NodeID(h)
}
