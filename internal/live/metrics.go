package live

import "topk/internal/obs"

// Metric handles of the live plane, created once at package init (the
// registry pattern of internal/transport). The catalogue — also in the
// root doc.go:
//
//	topk_live_updates_applied_total   counter    individual score updates applied
//	topk_live_update_batches_total    counter    applied (non-duplicate) update batches
//	topk_live_notifications_total     counter    owner crossing flags acted on
//	topk_live_reevaluations_total     counter    standing-query re-evaluations run
//	topk_live_suppressed_total        counter    (query, batch) pairs the filters kept silent
//	topk_live_subscribers             gauge      attached subscribers
//	topk_live_subscribers_dropped_total counter  subscribers dropped for falling behind
//	topk_live_push_seconds            histogram  update-arrival-to-push latency
var (
	mUpdatesApplied = obs.GetCounter("topk_live_updates_applied_total", "Individual score updates applied through the live coordinator.", nil)
	mUpdateBatches  = obs.GetCounter("topk_live_update_batches_total", "Applied (non-duplicate) update batches.", nil)
	mNotifications  = obs.GetCounter("topk_live_notifications_total", "Owner filter crossings the coordinator acted on.", nil)
	mReevals        = obs.GetCounter("topk_live_reevaluations_total", "Standing-query re-evaluations actually run.", nil)
	mSuppressed     = obs.GetCounter("topk_live_suppressed_total", "Standing-query re-evaluations the owner filters suppressed.", nil)
	mSubscribers    = obs.GetGauge("topk_live_subscribers", "Subscribers currently attached to standing queries.", nil)
	mSubDropped     = obs.GetCounter("topk_live_subscribers_dropped_total", "Subscribers dropped for falling behind the delta feed.", nil)
	mPushSec        = obs.GetHistogram("topk_live_push_seconds", "Latency from update arrival to subscriber push in seconds.", nil, obs.LatencyBuckets)
)
