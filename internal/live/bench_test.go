package live

import (
	"context"
	"testing"

	"topk"
)

// BenchmarkLive measures the live plane end to end over real HTTP
// owners: update-ingestion throughput on the suppressed path (the
// owner-side filters hold, no re-evaluation) and on the crossing path
// (a watched member moved, full distributed re-evaluation plus filter
// re-arm), and the subscriber push latency from Apply to the delta
// landing on the subscription channel. The suppressed-vs-crossing gap
// is the saving the notification filters buy over naively re-running
// the standing query on every update; ctlmsg/op reports the wire
// control messages (re-evaluation + filter traffic) each update cost.
func BenchmarkLive(b *testing.B) {
	ctx := context.Background()
	setup := func(b *testing.B) (*Coordinator, *Standing) {
		b.Helper()
		cluster := liveCluster(b, rankedCols(500, 2, 0.01), 1, false, nil)
		co, err := New(cluster)
		if err != nil {
			b.Fatal(err)
		}
		s, err := co.Register(ctx, "bench", topk.Query{K: 10}, topk.DistBPA2)
		if err != nil {
			b.Fatal(err)
		}
		return co, s
	}

	// ingest applies b.N single-item batches with alternating-sign
	// deltas (drift stays bounded, so the suppressed case never
	// accidentally crosses) and reports control messages per update.
	ingest := func(b *testing.B, co *Coordinator, item int) {
		b.Helper()
		before := co.Accounting()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			delta := 1e-6
			if i%2 == 1 {
				delta = -1e-6
			}
			batches := map[int][]topk.ScoreUpdate{
				0: {{Item: int32(item), Delta: delta}},
				1: {{Item: int32(item), Delta: delta}},
			}
			if _, err := co.Apply(ctx, "bench-feed", uint64(i+1), batches); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		after := co.Accounting()
		ctl := (after.ReevalMessages + after.FilterMessages) -
			(before.ReevalMessages + before.FilterMessages)
		b.ReportMetric(float64(ctl)/float64(b.N), "ctlmsg/op")
		b.ReportMetric(float64(after.Reevaluations-before.Reevaluations)/float64(b.N), "reevals/op")
	}

	b.Run("ingest/suppressed", func(b *testing.B) {
		co, _ := setup(b)
		// Item 400 sits far below the top-10 frontier; its bounded
		// drift never reaches the slack, so every update is absorbed
		// by the owner-side filter.
		ingest(b, co, 400)
		if acct := co.Accounting(); acct.Reevaluations > 1 {
			b.Fatalf("suppressed path re-evaluated %d times", acct.Reevaluations)
		}
	})
	b.Run("ingest/crossing", func(b *testing.B) {
		co, _ := setup(b)
		// Item 0 is the rank-1 member and always watched: every update
		// notifies and forces a full distributed re-evaluation — the
		// naive per-update cost the filters avoid.
		ingest(b, co, 0)
	})
	b.Run("push", func(b *testing.B) {
		co, s := setup(b)
		sub := s.Subscribe(16)
		defer sub.Close()
		<-sub.C // drain the snapshot
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			delta := 1e-6
			if i%2 == 1 {
				delta = -1e-6
			}
			batches := map[int][]topk.ScoreUpdate{
				0: {{Item: 0, Delta: delta}},
				1: {{Item: 0, Delta: delta}},
			}
			if _, err := co.Apply(ctx, "bench-feed", uint64(i+1), batches); err != nil {
				b.Fatal(err)
			}
			d := <-sub.C
			if d.Revision == 0 {
				b.Fatal("empty delta")
			}
		}
	})
}
