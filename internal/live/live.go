// Package live is the distributed continuous top-k subsystem: standing
// queries over a cluster of mutable list owners, re-evaluated only when
// an owner-side filter says the ranking may actually have changed, with
// the resulting deltas pushed to subscribers.
//
// The moving parts, bottom up:
//
//   - Owners serve updatable lists (list.Mutable behind the transport's
//     update wire kind). An update batch carries a per-feed monotone
//     sequence number, so retries and replica fan-out re-sends are
//     idempotent.
//   - The Coordinator registers standing queries (k, scoring, protocol)
//     against a topk.Cluster. After every evaluation it installs a
//     notification filter at each owner: the query's current members
//     are watched (any touch notifies), and every other item may drift
//     by up to the owner's slack — an equal share of the gap between
//     the k-th and (k+1)-th aggregate score — before the owner flags a
//     crossing. While every owner's positive drift stays under its
//     share, no outside item can have gained the full gap, so the
//     ranking provably stands and the coordinator re-evaluates nothing
//     (Fagin-style instance optimality of the underlying algorithms,
//     owner-side monitoring thresholds in the spirit of Mäcker et al.).
//   - Crossings ride back piggybacked on update acks; the coordinator
//     re-evaluates exactly the flagged queries with the paper's
//     algorithms, diffs the ranking, pushes entered/left/moved deltas
//     to subscribers, and reinstalls the filters.
//
// Accounting keeps the planes apart: update traffic, filter installs
// and re-evaluation Net/accesses are tallied separately (Accounting),
// so the savings against naively re-running every standing query per
// update batch are measurable rather than asserted.
package live

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"topk"
	"topk/internal/score"
)

// Delta is one push to a standing query's subscribers: the full current
// ranking plus how it changed since the previous revision, shaped like
// the monitor API's snapshots (topk.MonitorChange, entered/left/moved).
// Keys are the decimal item IDs — the cluster originator holds no name
// dictionary.
type Delta struct {
	// Query is the standing query's name.
	Query string `json:"query"`
	// Revision numbers the pushed rankings of this query from 1; a
	// subscriber that reconnects compares revisions to tell a replayed
	// snapshot from progress.
	Revision uint64 `json:"revision"`
	// Snapshot marks a full-state delta: the first push of a ranking a
	// subscriber has not been following (initial registration, or the
	// resume push a fresh subscription starts with). Changes are empty.
	Snapshot bool `json:"snapshot,omitempty"`
	// Items is the current ranking, best first.
	Items []topk.ScoredItem `json:"items"`
	// Changes lists the differences against the previous revision.
	Changes []topk.MonitorChange `json:"changes,omitempty"`
}

// Accounting tallies the live plane's traffic, kept strictly apart from
// query accounting (each re-evaluation's own NetStats lives in its
// Exec result; these are the sums). The suppression savings claim is
// Reevaluations vs NaiveReevals.
type Accounting struct {
	// UpdateBatches counts applied (non-duplicate) update batches;
	// UpdatesApplied the individual score updates they carried.
	UpdateBatches  int64 `json:"updateBatches"`
	UpdatesApplied int64 `json:"updatesApplied"`
	// Notifications counts owner crossing flags acted on; Suppressed the
	// (query, batch) pairs the filters kept silent.
	Notifications int64 `json:"notifications"`
	Suppressed    int64 `json:"suppressed"`
	// Reevaluations counts standing-query re-runs actually spent;
	// NaiveReevals what re-running every standing query on every applied
	// batch would have spent.
	Reevaluations int64 `json:"reevaluations"`
	NaiveReevals  int64 `json:"naiveReevals"`
	// ReevalMessages/Payload/Accesses aggregate the re-evaluations'
	// network cost in the paper's metrics.
	ReevalMessages int64 `json:"reevalMessages"`
	ReevalPayload  int64 `json:"reevalPayload"`
	ReevalAccesses int64 `json:"reevalAccesses"`
	// FilterMessages counts filter (re)install and clear fan-outs, one
	// per owner addressed — the notification plane's own overhead.
	FilterMessages int64 `json:"filterMessages"`
}

// Coordinator runs standing queries against one cluster. All mutating
// entry points (Register, Apply, Unregister) serialize on an internal
// mutex: the live plane is a single logical feed consumer, and
// serializing it is what makes revision numbers and filter state
// coherent. Subscribers attach and detach concurrently.
type Coordinator struct {
	cluster *topk.Cluster

	mu      sync.Mutex
	queries map[string]*Standing
	acct    Accounting
}

// New returns a coordinator over the cluster. The cluster's owners must
// serve mutable lists (topk-owner -mutable) for updates to apply;
// filters and updates against read-only owners fail with the owner's
// typed read-only error.
func New(cluster *topk.Cluster) (*Coordinator, error) {
	if cluster == nil {
		return nil, fmt.Errorf("live: nil cluster")
	}
	return &Coordinator{cluster: cluster, queries: make(map[string]*Standing)}, nil
}

// Standing is one registered standing query: its configuration, current
// ranking, and subscribers. Obtain one from Coordinator.Register.
type Standing struct {
	co       *Coordinator
	name     string
	query    topk.Query
	protocol topk.Protocol
	// sumLike marks scoring functions whose aggregate movement is
	// bounded by the sum of local drifts (Sum — the paper's default).
	// Only then is a non-zero slack sound; other monotone scorings run
	// with zero slack: any positive non-member drift notifies, watched
	// members always do. Correct for every monotone scoring, just
	// without suppression for the exotic ones.
	sumLike bool

	mu       sync.Mutex
	revision uint64
	items    []topk.ScoredItem
	subs     map[int]chan Delta
	nextSub  int
}

// Register installs a standing query: it evaluates the ranking once
// with the chosen protocol, installs the notification filters at every
// owner, and returns the handle subscribers attach to. The query's K
// must be at least 1; scoring defaults to Sum. Names are unique per
// coordinator — they key the owner-side filters.
func (co *Coordinator) Register(ctx context.Context, name string, q topk.Query, protocol topk.Protocol) (*Standing, error) {
	if name == "" {
		return nil, fmt.Errorf("live: empty standing-query name")
	}
	if q.K < 1 {
		return nil, fmt.Errorf("live: standing query %q: k=%d", name, q.K)
	}
	co.mu.Lock()
	defer co.mu.Unlock()
	if _, ok := co.queries[name]; ok {
		return nil, fmt.Errorf("live: standing query %q already registered", name)
	}
	_, isSum := q.Scoring.(score.Sum)
	s := &Standing{
		co:       co,
		name:     name,
		query:    q,
		protocol: protocol,
		sumLike:  isSum || q.Scoring == nil,
		subs:     make(map[int]chan Delta),
	}
	if err := co.reevaluate(ctx, s, time.Now()); err != nil {
		return nil, err
	}
	co.queries[name] = s
	return s, nil
}

// Query returns a registered standing query by name.
func (co *Coordinator) Query(name string) (*Standing, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	s, ok := co.queries[name]
	return s, ok
}

// Names lists the registered standing queries, sorted.
func (co *Coordinator) Names() []string {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]string, 0, len(co.queries))
	for name := range co.queries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Accounting snapshots the live plane's tallies.
func (co *Coordinator) Accounting() Accounting {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.acct
}

// Unregister removes a standing query: its subscribers' channels are
// closed and its filters cleared at every owner (best-effort — the
// first clear failure is returned, but the query is gone either way;
// orphaned owner-side filters only cost spurious crossings until the
// owner restarts).
func (co *Coordinator) Unregister(ctx context.Context, name string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	s, ok := co.queries[name]
	if !ok {
		return nil
	}
	delete(co.queries, name)
	s.mu.Lock()
	for id, ch := range s.subs {
		delete(s.subs, id)
		close(ch)
		mSubscribers.Add(-1)
	}
	s.mu.Unlock()
	var firstErr error
	for owner := 0; owner < co.cluster.M(); owner++ {
		co.acct.FilterMessages++
		if err := co.cluster.ClearLiveFilter(ctx, owner, name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Close unregisters every standing query.
func (co *Coordinator) Close(ctx context.Context) error {
	var firstErr error
	for _, name := range co.Names() {
		if err := co.Unregister(ctx, name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// ApplyResult reports what one update batch did.
type ApplyResult struct {
	// Applied reports at least one owner applied its share fresh; false
	// means the whole batch was a duplicate (re-sent seq) and changed
	// nothing.
	Applied bool `json:"applied"`
	// Acks holds each addressed owner's merged replica acknowledgement.
	Acks map[int]topk.UpdateAck `json:"acks,omitempty"`
	// Reevaluated and Suppressed partition the registered standing
	// queries: flagged by some owner's filter and re-run, or provably
	// unaffected and skipped. Sorted.
	Reevaluated []string `json:"reevaluated,omitempty"`
	Suppressed  []string `json:"suppressed,omitempty"`
}

// Apply sends one update batch — per-owner slices of (item, delta) —
// into the cluster under the feed's sequence number, then re-evaluates
// exactly the standing queries whose owner-side filters flagged a
// possible crossing, pushing ranking deltas to their subscribers.
//
// Sequence numbers are the caller's idempotency handle: batches of one
// feed must carry strictly increasing numbers, and re-sending a batch
// with its original number after a partial failure is safe — owners
// that already applied it acknowledge without re-applying. On error the
// batch may be applied at some owners and not others; re-Apply the same
// (feed, seq, updates) until it succeeds to converge. Updates to
// read-only owners fail with the owner's typed error.
func (co *Coordinator) Apply(ctx context.Context, feed string, seq uint64, batches map[int][]topk.ScoreUpdate) (*ApplyResult, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	start := time.Now()
	owners := make([]int, 0, len(batches))
	for owner := range batches {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	res := &ApplyResult{Acks: make(map[int]topk.UpdateAck, len(owners))}
	crossed := make(map[string]bool)
	for _, owner := range owners {
		ups := batches[owner]
		if len(ups) == 0 {
			continue
		}
		ack, err := co.cluster.SendUpdate(ctx, owner, feed, seq, ups)
		if err != nil {
			return nil, fmt.Errorf("live: apply feed %q seq %d at owner %d: %w", feed, seq, owner, err)
		}
		res.Acks[owner] = ack
		if ack.Applied {
			res.Applied = true
			co.acct.UpdatesApplied += int64(len(ups))
			mUpdatesApplied.Add(int64(len(ups)))
		}
		for _, q := range ack.Crossings {
			crossed[q] = true
		}
	}
	if !res.Applied {
		return res, nil
	}
	co.acct.UpdateBatches++
	mUpdateBatches.Inc()
	co.acct.NaiveReevals += int64(len(co.queries))
	names := make([]string, 0, len(co.queries))
	for name := range co.queries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := co.queries[name]
		if !crossed[name] {
			res.Suppressed = append(res.Suppressed, name)
			co.acct.Suppressed++
			mSuppressed.Inc()
			continue
		}
		co.acct.Notifications++
		mNotifications.Inc()
		if err := co.reevaluate(ctx, s, start); err != nil {
			return res, err
		}
		res.Reevaluated = append(res.Reevaluated, name)
	}
	return res, nil
}

// Refresh force-re-evaluates one standing query, filters and drift
// state included, pushing a delta if the ranking moved. The filters
// make re-evaluation unnecessary while updates flow and acks arrive;
// Refresh is the reconciliation path for what they cannot see — an
// update whose acknowledgement (crossings included) was lost after the
// owners applied it. An owner's retained drift re-fires such a missed
// crossing on the item's next touch anyway; Refresh closes the window
// on demand instead of waiting for that touch.
func (co *Coordinator) Refresh(ctx context.Context, name string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	s, ok := co.queries[name]
	if !ok {
		return fmt.Errorf("live: no standing query %q", name)
	}
	return co.reevaluate(ctx, s, time.Now())
}

// reevaluate runs the standing query (with k+1 internally, for the
// member gap), reinstalls the owner filters from the fresh ranking, and
// pushes a delta to subscribers when the ranking changed. Called with
// co.mu held; start stamps the update-to-push latency. Errors are
// typed and leave the previous ranking in place — the subscriber
// contract is "correct or failed", never silently stale-as-fresh.
func (co *Coordinator) reevaluate(ctx context.Context, s *Standing, start time.Time) error {
	k := s.query.K
	kq := s.query
	kq.K = k + 1
	if n := co.cluster.N(); kq.K > n {
		kq.K = n
	}
	res, err := co.cluster.Exec(ctx, kq, s.protocol)
	if err != nil {
		return fmt.Errorf("live: %s: re-evaluate: %w", s.name, err)
	}
	co.acct.Reevaluations++
	co.acct.ReevalMessages += res.Stats.Net.Messages
	co.acct.ReevalPayload += res.Stats.Net.Payload
	co.acct.ReevalAccesses += res.Stats.Net.TotalAccesses
	mReevals.Inc()

	items := res.Items
	gap := 0.0
	if len(items) > k {
		gap = items[k-1].Score - items[k].Score
		items = items[:k:k]
	}
	if !s.sumLike || gap < 0 {
		gap = 0
	}
	slack := 0.0
	if m := co.cluster.M(); m > 0 {
		slack = gap / float64(m)
	}
	watch := make([]int32, len(items))
	for i, it := range items {
		watch[i] = int32(it.Item)
	}
	for owner := 0; owner < co.cluster.M(); owner++ {
		co.acct.FilterMessages++
		if err := co.cluster.SetLiveFilter(ctx, owner, s.name, slack, watch); err != nil {
			return fmt.Errorf("live: %s: install filter at owner %d: %w", s.name, owner, err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	changes := diffItems(s.items, items)
	first := s.revision == 0
	if !first && len(changes) == 0 && equalItems(s.items, items) {
		// Crossing flagged, ranking stood, scores included: the filter
		// was conservative (it must be), nothing to push.
		return nil
	}
	s.revision++
	s.items = items
	d := Delta{
		Query:    s.name,
		Revision: s.revision,
		Snapshot: first,
		Items:    append([]topk.ScoredItem(nil), items...),
		Changes:  changes,
	}
	if first {
		d.Changes = nil
	}
	s.pushLocked(d, start)
	return nil
}

// pushLocked delivers a delta to every subscriber, called with s.mu
// held. A subscriber whose buffer is full is dropped and its channel
// closed — a consumer too slow for the feed reconnects and resumes from
// the snapshot its fresh subscription starts with, instead of forcing
// the whole live plane to its pace.
func (s *Standing) pushLocked(d Delta, start time.Time) {
	for id, ch := range s.subs {
		select {
		case ch <- d:
		default:
			delete(s.subs, id)
			close(ch)
			mSubscribers.Add(-1)
			mSubDropped.Inc()
		}
	}
	mPushSec.Observe(time.Since(start).Seconds())
}

// Name returns the standing query's name.
func (s *Standing) Name() string { return s.name }

// K returns the standing query's k.
func (s *Standing) K() int { return s.query.K }

// Ranking returns the current ranking (a copy) and its revision.
func (s *Standing) Ranking() ([]topk.ScoredItem, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]topk.ScoredItem(nil), s.items...), s.revision
}

// Subscription is one subscriber's attachment to a standing query: read
// deltas from C until it closes (Close called, query unregistered, or
// the subscriber fell too far behind), then resubscribe if needed — the
// fresh subscription starts with a full snapshot delta.
type Subscription struct {
	C  <-chan Delta
	s  *Standing
	id int
}

// Subscribe attaches a subscriber with the given delta buffer (minimum
// 16 when smaller). The channel immediately carries a snapshot delta of
// the current ranking, so a subscriber is never blind between attaching
// and the first change.
func (s *Standing) Subscribe(buf int) *Subscription {
	if buf < 16 {
		buf = 16
	}
	ch := make(chan Delta, buf)
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- Delta{
		Query:    s.name,
		Revision: s.revision,
		Snapshot: true,
		Items:    append([]topk.ScoredItem(nil), s.items...),
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	mSubscribers.Add(1)
	return &Subscription{C: ch, s: s, id: id}
}

// Close detaches the subscriber and closes its channel. Idempotent, and
// safe to call after the push side already dropped the subscription.
func (sub *Subscription) Close() {
	sub.s.mu.Lock()
	defer sub.s.mu.Unlock()
	ch, ok := sub.s.subs[sub.id]
	if !ok {
		return
	}
	delete(sub.s.subs, sub.id)
	close(ch)
	mSubscribers.Add(-1)
}

// Subscribers reports how many subscribers are attached.
func (s *Standing) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// equalItems reports whether two rankings agree exactly — items, order
// and scores. A member's score can move without any rank changing;
// subscribers still get a delta (with empty Changes) so their view of
// the scores never goes stale.
func equalItems(a, b []topk.ScoredItem) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Item != b[i].Item || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}

// diffItems compares two rankings, keyed by item ID, in the monitor
// API's change vocabulary: entered and moved by new rank, then left by
// previous rank.
func diffItems(prev, next []topk.ScoredItem) []topk.MonitorChange {
	prevRank := make(map[int]int, len(prev))
	for i, it := range prev {
		prevRank[it.Item] = i + 1
	}
	var changes []topk.MonitorChange
	seen := make(map[int]bool, len(next))
	for i, it := range next {
		seen[it.Item] = true
		rank := i + 1
		pr, ok := prevRank[it.Item]
		switch {
		case !ok:
			changes = append(changes, topk.MonitorChange{Key: strconv.Itoa(it.Item), Kind: topk.ChangeEntered, Rank: rank})
		case pr != rank:
			changes = append(changes, topk.MonitorChange{Key: strconv.Itoa(it.Item), Kind: topk.ChangeMoved, Rank: rank, PrevRank: pr})
		}
	}
	for i, it := range prev {
		if !seen[it.Item] {
			changes = append(changes, topk.MonitorChange{Key: strconv.Itoa(it.Item), Kind: topk.ChangeLeft, PrevRank: i + 1})
		}
	}
	return changes
}
