package live

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"topk"
	"topk/internal/chaos"
	"topk/internal/list"
	"topk/internal/transport"
)

// liveCluster serves each of cols' lists from `replicas` HTTP owner
// servers (mutable unless readOnly), optionally wrapped with a chaos
// injector, and dials the whole topology.
func liveCluster(t testing.TB, cols [][]float64, replicas int, readOnly bool, wrap func(http.Handler) http.Handler) *topk.Cluster {
	t.Helper()
	db, err := list.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	topo := make([][]string, db.M())
	for i := range topo {
		for r := 0; r < replicas; r++ {
			srv, err := transport.NewServer(db, i)
			if err != nil {
				t.Fatal(err)
			}
			if !readOnly {
				if err := srv.Owner().EnableUpdates(); err != nil {
					t.Fatal(err)
				}
			}
			h := http.Handler(srv.Handler())
			if wrap != nil {
				h = wrap(h)
			}
			ts := httptest.NewServer(h)
			t.Cleanup(ts.Close)
			topo[i] = append(topo[i], ts.URL)
		}
	}
	cluster, err := topk.DialClusterConfig(context.Background(), topk.ClusterConfig{Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cluster.Close() })
	return cluster
}

// rankedCols builds m columns with a deliberately wide, known gap
// structure: item d scores (n-d)*colGap in every column, so the
// aggregate ranking is 0, 1, 2, ... with a constant aggregate gap of
// m*colGap between consecutive ranks.
func rankedCols(n, m int, colGap float64) [][]float64 {
	cols := make([][]float64, m)
	for i := range cols {
		col := make([]float64, n)
		for d := range col {
			col[d] = float64(n-d) * colGap
		}
		cols[i] = col
	}
	return cols
}

// applyOracle mirrors an update batch onto the oracle's columns.
func applyOracle(cols [][]float64, batches map[int][]topk.ScoreUpdate) {
	for owner, ups := range batches {
		for _, u := range ups {
			cols[owner][u.Item] += u.Delta
		}
	}
}

// oracleTopK recomputes the ranking from scratch over the oracle's
// columns with the same protocol the coordinator uses.
func oracleTopK(t *testing.T, cols [][]float64, k int, protocol topk.Protocol) []topk.ScoredItem {
	t.Helper()
	db, err := topk.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.ExecDistributed(context.Background(), topk.Query{K: k}, protocol)
	if err != nil {
		t.Fatal(err)
	}
	return res.Items
}

// sameRanking compares (item, score) pairs, ignoring names (the cluster
// originator holds no dictionary).
func sameRanking(got, want []topk.ScoredItem) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Item != want[i].Item || got[i].Score != want[i].Score {
			return false
		}
	}
	return true
}

func TestRegisterSnapshotMatchesOracle(t *testing.T) {
	cols := rankedCols(40, 2, 0.01)
	cluster := liveCluster(t, cols, 1, false, nil)
	co, err := New(cluster)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st, err := co.Register(ctx, "q", topk.Query{K: 5}, topk.DistBPA2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close(context.Background()) })

	want := oracleTopK(t, cols, 5, topk.DistBPA2)
	items, rev := st.Ranking()
	if rev != 1 {
		t.Errorf("initial revision %d, want 1", rev)
	}
	if !sameRanking(items, want) {
		t.Errorf("initial ranking:\n got %v\nwant %v", items, want)
	}

	sub := st.Subscribe(16)
	defer sub.Close()
	select {
	case d := <-sub.C:
		if !d.Snapshot || d.Revision != 1 || !sameRanking(d.Items, want) {
			t.Errorf("subscribe snapshot wrong: %+v", d)
		}
	default:
		t.Fatal("subscription did not start with a snapshot delta")
	}

	if _, err := co.Register(ctx, "q", topk.Query{K: 5}, topk.DistBPA2); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestApplySuppressionAndCrossings(t *testing.T) {
	// Aggregate gap between consecutive ranks is 2*0.01 = 0.02; with two
	// owners each owner's slack is 0.01.
	cols := rankedCols(40, 2, 0.01)
	cluster := liveCluster(t, cols, 1, false, nil)
	co, err := New(cluster)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	st, err := co.Register(ctx, "q", topk.Query{K: 5}, topk.DistBPA2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close(context.Background()) })
	sub := st.Subscribe(16)
	defer sub.Close()
	<-sub.C // snapshot

	// Phase 1: a run of tiny updates to a deep non-member. Per-batch
	// drift 0.001 per owner, total 0.008 < 0.01 slack: every batch must
	// be suppressed, no re-evaluation, no push.
	seq := uint64(0)
	for i := 0; i < 8; i++ {
		seq++
		batch := map[int][]topk.ScoreUpdate{
			0: {{Item: 30, Delta: 0.001}},
			1: {{Item: 30, Delta: 0.001}},
		}
		res, err := co.Apply(ctx, "feed", seq, batch)
		if err != nil {
			t.Fatalf("batch %d: %v", seq, err)
		}
		applyOracle(cols, batch)
		if !res.Applied {
			t.Fatalf("batch %d not applied", seq)
		}
		if len(res.Reevaluated) != 0 || len(res.Suppressed) != 1 {
			t.Fatalf("batch %d: reevaluated %v suppressed %v, want all suppressed", seq, res.Reevaluated, res.Suppressed)
		}
	}
	select {
	case d := <-sub.C:
		t.Fatalf("suppressed batches pushed a delta: %+v", d)
	default:
	}
	acct := co.Accounting()
	if acct.Reevaluations != 1 || acct.Suppressed != 8 {
		t.Errorf("accounting after suppressed run: %+v", acct)
	}

	// Phase 2: promote item 20 past the members — must cross, re-run,
	// and push a delta whose ranking matches the oracle.
	seq++
	batch := map[int][]topk.ScoreUpdate{
		0: {{Item: 20, Delta: 0.5}},
		1: {{Item: 20, Delta: 0.5}},
	}
	res, err := co.Apply(ctx, "feed", seq, batch)
	if err != nil {
		t.Fatal(err)
	}
	applyOracle(cols, batch)
	if len(res.Reevaluated) != 1 {
		t.Fatalf("crossing batch not re-evaluated: %+v", res)
	}
	want := oracleTopK(t, cols, 5, topk.DistBPA2)
	items, _ := st.Ranking()
	if !sameRanking(items, want) {
		t.Errorf("post-crossing ranking:\n got %v\nwant %v", items, want)
	}
	select {
	case d := <-sub.C:
		if d.Snapshot || len(d.Changes) == 0 || !sameRanking(d.Items, want) {
			t.Errorf("crossing delta wrong: %+v", d)
		}
		entered := false
		for _, c := range d.Changes {
			if c.Kind == topk.ChangeEntered && c.Key == "20" {
				entered = true
			}
		}
		if !entered {
			t.Errorf("delta misses the entry of item 20: %+v", d.Changes)
		}
	case <-time.After(time.Second):
		t.Fatal("crossing pushed no delta")
	}

	// Phase 3: touching a watched member must always notify, however
	// small the delta.
	seq++
	memberBatch := map[int][]topk.ScoreUpdate{0: {{Item: 0, Delta: 0.0001}}}
	res, err = co.Apply(ctx, "feed", seq, memberBatch)
	if err != nil {
		t.Fatal(err)
	}
	applyOracle(cols, memberBatch)
	if len(res.Reevaluated) != 1 {
		t.Fatalf("member touch suppressed: %+v", res)
	}

	// The savings claim, asserted: strictly fewer re-evaluations (and
	// re-evaluation wire messages) than re-running the standing query on
	// every applied batch.
	acct = co.Accounting()
	if acct.Reevaluations >= acct.NaiveReevals {
		t.Errorf("no savings: %d re-evaluations vs %d naive", acct.Reevaluations, acct.NaiveReevals)
	}
	perReeval := float64(acct.ReevalMessages) / float64(acct.Reevaluations)
	naiveMsgs := perReeval * float64(acct.NaiveReevals)
	liveMsgs := float64(acct.ReevalMessages + acct.FilterMessages)
	if liveMsgs >= naiveMsgs {
		t.Errorf("no wire savings: live %v messages (reeval+filter) vs naive %v", liveMsgs, naiveMsgs)
	}
	t.Logf("suppression savings: %d/%d re-evaluations, %.0f/%.0f control messages (%.1f%%)",
		acct.Reevaluations, acct.NaiveReevals, liveMsgs, naiveMsgs, 100*liveMsgs/naiveMsgs)
}

func TestApplyIdempotentBySequence(t *testing.T) {
	cols := rankedCols(20, 2, 0.01)
	cluster := liveCluster(t, cols, 2, false, nil)
	co, err := New(cluster)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := co.Register(ctx, "q", topk.Query{K: 3}, topk.DistBPA2); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close(context.Background()) })

	batch := map[int][]topk.ScoreUpdate{0: {{Item: 10, Delta: 1}}, 1: {{Item: 10, Delta: 1}}}
	first, err := co.Apply(ctx, "feed", 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Applied {
		t.Fatal("fresh batch not applied")
	}
	again, err := co.Apply(ctx, "feed", 1, batch)
	if err != nil {
		t.Fatal(err)
	}
	if again.Applied {
		t.Error("duplicate (feed, seq) re-applied")
	}
	if len(again.Reevaluated)+len(again.Suppressed) != 0 {
		t.Errorf("duplicate batch reached the standing queries: %+v", again)
	}
	for owner, ack := range again.Acks {
		if ack.Version != first.Acks[owner].Version {
			t.Errorf("owner %d version moved on duplicate: %d -> %d", owner, first.Acks[owner].Version, ack.Version)
		}
	}
	// A stale sequence number must stay refused too.
	stale, err := co.Apply(ctx, "feed", 0, batch)
	if err != nil {
		t.Fatal(err)
	}
	if stale.Applied {
		t.Error("stale sequence number applied")
	}
}

func TestUpdateReadOnlyOwnerFailsTyped(t *testing.T) {
	cols := rankedCols(20, 2, 0.01)
	cluster := liveCluster(t, cols, 1, true, nil)
	co, err := New(cluster)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := co.Apply(ctx, "feed", 1, map[int][]topk.ScoreUpdate{0: {{Item: 1, Delta: 1}}}); err == nil {
		t.Fatal("update against a read-only owner succeeded")
	} else if !strings.Contains(err.Error(), "read-only") {
		t.Errorf("untyped read-only failure: %v", err)
	}
	// Filters against read-only owners are refused the same way, so a
	// Register against a read-only cluster fails loudly instead of
	// installing nothing.
	if _, err := co.Register(ctx, "q", topk.Query{K: 3}, topk.DistBPA2); err == nil {
		t.Fatal("standing query registered against read-only owners")
	}
}

// TestLiveChaosConvergence drives the whole update -> notify ->
// re-evaluate path through seeded fault injection over 2-replica
// owners: every Apply either succeeds or fails with a typed error and
// is retried with the same sequence number, and the final ranking must
// be bit-identical to a from-scratch recomputation over a clean replay
// of the same update log — correct or failed, never silently wrong.
func TestLiveChaosConvergence(t *testing.T) {
	inj := chaos.New(chaos.Config{
		Seed: 42, Drop: 0.04, Err5xx: 0.04, Truncate: 0.03, Corrupt: 0.03,
		Delay: 0.05, DelayDur: time.Millisecond,
	})
	cols := rankedCols(50, 2, 0.01)
	cluster := liveCluster(t, cols, 2, false, func(h http.Handler) http.Handler {
		return chaos.Handler(h, inj)
	})
	co, err := New(cluster)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	register := func() error {
		_, err := co.Register(ctx, "q", topk.Query{K: 5}, topk.DistBPA2)
		return err
	}
	if err := retryChaos(t, "register", register); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close(context.Background()) })

	rng := rand.New(rand.NewSource(7))
	for seq := uint64(1); seq <= 30; seq++ {
		batch := map[int][]topk.ScoreUpdate{}
		for i := 0; i < 1+rng.Intn(3); i++ {
			owner := rng.Intn(2)
			item := int32(rng.Intn(50))
			delta := rng.Float64()*0.2 - 0.05
			batch[owner] = append(batch[owner], topk.ScoreUpdate{Item: item, Delta: delta})
		}
		apply := func() error {
			_, err := co.Apply(ctx, "feed", seq, batch)
			return err
		}
		if err := retryChaos(t, fmt.Sprintf("apply seq %d", seq), apply); err != nil {
			t.Fatal(err)
		}
		// The oracle replays the same log, in the same order, once.
		applyOracle(cols, batch)
	}

	// A batch whose acks (crossings included) were lost can leave the
	// published ranking one notification behind; Refresh is the
	// reconciliation step that closes exactly that window.
	if err := retryChaos(t, "refresh", func() error { return co.Refresh(ctx, "q") }); err != nil {
		t.Fatal(err)
	}

	st, ok := co.Query("q")
	if !ok {
		t.Fatal("standing query lost")
	}
	got, _ := st.Ranking()
	want := oracleTopK(t, cols, 5, topk.DistBPA2)
	if !sameRanking(got, want) {
		t.Errorf("chaos run did not converge:\n got %v\nwant %v", got, want)
	}
}

// retryChaos retries an operation that may fail under fault injection;
// every failure must be a real error (typed, non-nil), and the
// operation must eventually succeed.
func retryChaos(t *testing.T, what string, op func() error) error {
	t.Helper()
	var err error
	for attempt := 0; attempt < 60; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("%s: no success in 60 attempts, last error: %w", what, err)
}

// TestSlowSubscriberDropped pins the back-pressure rule: a subscriber
// that stops draining is detached and its channel closed rather than
// stalling the push path, and closing an already-dropped subscription
// stays safe.
func TestSlowSubscriberDropped(t *testing.T) {
	s := &Standing{name: "q", subs: make(map[int]chan Delta)}
	s.items = []topk.ScoredItem{{Item: 1, Score: 1}}
	sub := s.Subscribe(16)
	s.mu.Lock()
	for i := 0; i < 20; i++ { // buffer is 16 (+1 snapshot already queued)
		s.pushLocked(Delta{Query: "q", Revision: uint64(i + 2)}, time.Now())
	}
	s.mu.Unlock()
	if got := s.Subscribers(); got != 0 {
		t.Fatalf("slow subscriber still attached: %d", got)
	}
	// Drain to the close; the channel must be closed, not leaked.
	closed := false
	for i := 0; i < 64; i++ {
		if _, ok := <-sub.C; !ok {
			closed = true
			break
		}
	}
	if !closed {
		t.Fatal("dropped subscriber's channel not closed")
	}
	sub.Close() // double-close safety
}
