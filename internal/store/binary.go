// Package store persists databases: a compact CRC-checked binary format
// for generated workloads (cmd/topk-gen writes it, cmd/topk-query reads
// it) and CSV import/export for interoperating with external tools.
package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"topk/internal/list"
)

// magic identifies version 1 of the binary database format.
var magic = [8]byte{'T', 'O', 'P', 'K', 'D', 'B', '1', '\n'}

// maxDimension bounds m and n on load so a corrupted header cannot drive
// allocation. 2^28 items is far beyond the paper's workloads.
const maxDimension = 1 << 28

// Write serializes db:
//
//	magic | uint32 m | uint32 n | m lists of n entries (int32 item,
//	float64 score) | uint32 CRC-32 (IEEE) of everything before it
//
// All integers are little-endian.
func Write(w io.Writer, db *list.Database) error {
	if db == nil {
		return fmt.Errorf("store: nil database")
	}
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))

	if _, err := bw.Write(magic[:]); err != nil {
		return fmt.Errorf("store: write magic: %w", err)
	}
	var u32 [4]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(u32[:], v)
		_, err := bw.Write(u32[:])
		return err
	}
	if err := writeU32(uint32(db.M())); err != nil {
		return fmt.Errorf("store: write m: %w", err)
	}
	if err := writeU32(uint32(db.N())); err != nil {
		return fmt.Errorf("store: write n: %w", err)
	}
	var rec [12]byte
	for i := 0; i < db.M(); i++ {
		l := db.List(i)
		for p := 1; p <= l.Len(); p++ {
			e := l.At(p)
			binary.LittleEndian.PutUint32(rec[0:4], uint32(e.Item))
			binary.LittleEndian.PutUint64(rec[4:12], math.Float64bits(e.Score))
			if _, err := bw.Write(rec[:]); err != nil {
				return fmt.Errorf("store: write entry: %w", err)
			}
		}
	}
	// The checksum covers everything written so far; flush the data
	// through the CRC first, then append the sum (not itself checksummed).
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: flush: %w", err)
	}
	binary.LittleEndian.PutUint32(u32[:], crc.Sum32())
	if _, err := w.Write(u32[:]); err != nil {
		return fmt.Errorf("store: write checksum: %w", err)
	}
	return nil
}

// Read parses a database written by Write, verifying the checksum and all
// model invariants.
func Read(r io.Reader) (*list.Database, error) {
	// The CRC must cover exactly the bytes consumed as payload, so it is
	// fed manually after each read (a TeeReader under a buffered reader
	// would also hash read-ahead bytes, including the trailing sum).
	crc := crc32.NewIEEE()
	br := bufio.NewReader(r)
	readPayload := func(b []byte) error {
		if _, err := io.ReadFull(br, b); err != nil {
			return err
		}
		crc.Write(b)
		return nil
	}

	var hdr [8]byte
	if err := readPayload(hdr[:]); err != nil {
		return nil, fmt.Errorf("store: read magic: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("store: bad magic %q", hdr[:])
	}
	var u32 [4]byte
	readU32 := func() (uint32, error) {
		if err := readPayload(u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	m, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("store: read m: %w", err)
	}
	n, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("store: read n: %w", err)
	}
	if m == 0 || n == 0 || m > maxDimension || n > maxDimension {
		return nil, fmt.Errorf("store: implausible dimensions m=%d n=%d", m, n)
	}

	// Each list streams section-by-section through a fixed scratch window
	// straight into its final storage, which the list then adopts without
	// copying: peak memory is the database itself plus ~48 KiB, with no
	// list-sized transient.
	lists := make([]*list.List, m)
	const recsPerChunk = 4096
	scratch := make([]byte, 12*recsPerChunk)
	for i := range lists {
		entries := make([]list.Entry, n)
		for p := 0; p < len(entries); {
			c := len(entries) - p
			if c > recsPerChunk {
				c = recsPerChunk
			}
			if err := readPayload(scratch[:12*c]); err != nil {
				return nil, fmt.Errorf("store: read entries: %w", err)
			}
			for j := 0; j < c; j++ {
				entries[p+j] = list.Entry{
					Item:  list.ItemID(int32(binary.LittleEndian.Uint32(scratch[12*j:]))),
					Score: math.Float64frombits(binary.LittleEndian.Uint64(scratch[12*j+4:])),
				}
			}
			p += c
		}
		l, err := list.Adopt(entries)
		if err != nil {
			return nil, fmt.Errorf("store: list %d invalid: %w", i, err)
		}
		lists[i] = l
	}

	// The trailing checksum is not part of the checksummed payload.
	want := crc.Sum32()
	var sum [4]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return nil, fmt.Errorf("store: read checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != want {
		return nil, fmt.Errorf("store: checksum mismatch: file %08x, computed %08x", got, want)
	}
	return list.NewDatabase(lists...)
}

// SaveFile writes db to path atomically (temp file + rename).
func SaveFile(path string, db *list.Database) error {
	tmp, err := os.CreateTemp(dirOf(path), ".topkdb-*")
	if err != nil {
		return fmt.Errorf("store: create temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := Write(tmp, db); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: rename: %w", err)
	}
	return nil
}

// LoadFile reads a database from path.
func LoadFile(path string) (*list.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	defer f.Close()
	return Read(f)
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}
