package store

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"topk/internal/list"
)

// WriteColumnsCSV exports db in column form: row d holds the local score
// of item d in every list, so the file reads like the relational table of
// the paper's introduction (one attribute column per list). A header row
// names the columns list1..listM.
func WriteColumnsCSV(w io.Writer, db *list.Database) error {
	if db == nil {
		return fmt.Errorf("store: nil database")
	}
	cw := csv.NewWriter(w)
	header := make([]string, db.M())
	for i := range header {
		header[i] = fmt.Sprintf("list%d", i+1)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("store: csv header: %w", err)
	}
	row := make([]string, db.M())
	for d := 0; d < db.N(); d++ {
		for i := 0; i < db.M(); i++ {
			row[i] = strconv.FormatFloat(db.List(i).ScoreOf(list.ItemID(d)), 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("store: csv row %d: %w", d, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadColumnsCSV imports a database from the column form written by
// WriteColumnsCSV. The first row is treated as a header when none of its
// fields parse as a float; every other row must be all-numeric with a
// constant column count.
func ReadColumnsCSV(r io.Reader) (*list.Database, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("store: csv parse: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("store: csv is empty")
	}
	start := 0
	if isHeader(records[0]) {
		start = 1
	}
	if start >= len(records) {
		return nil, fmt.Errorf("store: csv has a header but no data rows")
	}
	mCols := len(records[start])
	if mCols == 0 {
		return nil, fmt.Errorf("store: csv row %d has no fields", start+1)
	}
	cols := make([][]float64, mCols)
	for i := range cols {
		cols[i] = make([]float64, 0, len(records)-start)
	}
	for rowIdx, rec := range records[start:] {
		if len(rec) != mCols {
			return nil, fmt.Errorf("store: csv row %d has %d fields, want %d", start+rowIdx+1, len(rec), mCols)
		}
		for i, field := range rec {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("store: csv row %d column %d: %w", start+rowIdx+1, i+1, err)
			}
			cols[i] = append(cols[i], v)
		}
	}
	return list.FromColumns(cols)
}

// isHeader reports whether no field of the row parses as a float.
func isHeader(row []string) bool {
	for _, f := range row {
		if _, err := strconv.ParseFloat(f, 64); err == nil {
			return false
		}
	}
	return len(row) > 0
}
