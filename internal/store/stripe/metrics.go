package stripe

import "topk/internal/obs"

// Metric handles of the stripe store, resolved once at package init like
// the transport catalogue (internal/transport/metrics.go): a cache hit
// costs one atomic add, and obs.Default.SetEnabled(false) reduces even
// that to an atomic load. The families, also listed in doc.go:
//
//	topk_stripe_cache_hits_total       counter  block reads served from cache
//	topk_stripe_cache_misses_total     counter  block reads that went to disk
//	topk_stripe_cache_evictions_total  counter  blocks dropped for the budget
//	topk_stripe_cache_resident_bytes   gauge    decoded bytes resident, summed
//	                                            over every open stripe DB —
//	                                            never exceeds the sum of the
//	                                            configured budgets
var (
	mCacheHits      = obs.GetCounter("topk_stripe_cache_hits_total", "Stripe-cache block reads served from the cache.", nil)
	mCacheMisses    = obs.GetCounter("topk_stripe_cache_misses_total", "Stripe-cache block reads that went to disk.", nil)
	mCacheEvictions = obs.GetCounter("topk_stripe_cache_evictions_total", "Stripe-cache blocks evicted to respect the byte budget.", nil)
	mCacheResident  = obs.GetGauge("topk_stripe_cache_resident_bytes", "Decoded bytes resident in stripe caches, summed over open stripe databases.", nil)
)
