package stripe

import (
	"container/list"
	"sync"
)

// blockKind distinguishes the two cached block families of one list.
type blockKind uint8

const (
	kindEntries blockKind = iota
	kindPositions
)

// ckey addresses one cached block: an entry stripe or a position page of
// one list of one DB (each DB owns its cache, so the DB is implicit).
type ckey struct {
	kind blockKind
	list int32
	idx  int32
}

// centry is one resident block: the decoded payload and its accounted
// size in bytes.
type centry struct {
	key  ckey
	val  any
	size int64
	elem *list.Element
}

// cache is the LRU block cache of one open DB: decoded payloads under a
// byte budget. The budget is a hard ceiling on the accounted resident
// bytes — insertion evicts first, and a block larger than the whole
// budget is returned to the caller without being admitted — which is
// what lets a deployment cap an owner's memory regardless of list size.
//
// CacheStats (and the process-wide obs gauge) report the accounted
// decoded payload bytes; the map and LRU bookkeeping add a small
// per-block overhead on top.
type cache struct {
	mu          sync.Mutex
	budget      int64
	resident    int64
	maxResident int64 // high-water mark of resident
	entries     map[ckey]*centry
	lru         *list.List // front = most recently used; values are *centry
	hits        int64
	misses      int64
	evictions   int64
}

func newCache(budget int64) *cache {
	if budget <= 0 {
		budget = DefaultCacheBytes
	}
	return &cache{budget: budget, entries: make(map[ckey]*centry), lru: list.New()}
}

// CacheStats is a point-in-time snapshot of one DB's stripe cache.
type CacheStats struct {
	Hits      int64 // block reads served from the cache
	Misses    int64 // block reads that went to disk
	Evictions int64 // blocks dropped to respect the budget
	// Resident is the accounted decoded bytes currently cached;
	// MaxResident is its high-water mark over the DB's lifetime. Both
	// are always <= Budget.
	Resident    int64
	MaxResident int64
	Budget      int64
}

// get returns the cached block for k, loading it via load on a miss.
// load runs outside the cache lock, so concurrent misses on distinct
// blocks overlap their disk reads; concurrent misses on the same block
// may both load, and the loser adopts the winner's copy.
func (c *cache) get(k ckey, load func() (val any, size int64, err error)) (any, error) {
	c.mu.Lock()
	if e, ok := c.entries[k]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		mCacheHits.Inc()
		return e.val, nil
	}
	c.mu.Unlock()

	val, size, err := load()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.misses++
	mCacheMisses.Inc()
	if e, ok := c.entries[k]; ok { // lost a load race; adopt the resident copy
		c.lru.MoveToFront(e.elem)
		return e.val, nil
	}
	if size <= c.budget {
		for c.resident+size > c.budget {
			c.evictOldestLocked()
		}
		e := &centry{key: k, val: val, size: size}
		e.elem = c.lru.PushFront(e)
		c.entries[k] = e
		c.resident += size
		if c.resident > c.maxResident {
			c.maxResident = c.resident
		}
		mCacheResident.Add(float64(size))
	}
	return val, nil
}

// evictOldestLocked drops the least recently used block. Called with the
// lock held and at least one resident block.
func (c *cache) evictOldestLocked() {
	back := c.lru.Back()
	if back == nil {
		return
	}
	e := back.Value.(*centry)
	c.lru.Remove(back)
	delete(c.entries, e.key)
	c.resident -= e.size
	c.evictions++
	mCacheEvictions.Inc()
	mCacheResident.Add(float64(-e.size))
}

// stats snapshots the tallies.
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Resident: c.resident, MaxResident: c.maxResident, Budget: c.budget,
	}
}

// drop releases every resident block (DB.Close), returning the obs
// gauge's share.
func (c *cache) drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	freed := c.resident
	c.entries = make(map[ckey]*centry)
	c.lru.Init()
	c.resident = 0
	mCacheResident.Add(float64(-freed))
}
