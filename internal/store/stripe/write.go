package stripe

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"topk/internal/list"
)

// WriteOptions configures the stripe layout. Zero values mean the
// package defaults.
type WriteOptions struct {
	// StripeCap is the number of entries per columnar stripe.
	StripeCap int
	// PosPageCap is the number of items per id→position page.
	PosPageCap int
}

func (o WriteOptions) withDefaults() (WriteOptions, error) {
	if o.StripeCap == 0 {
		o.StripeCap = DefaultStripeCap
	}
	if o.PosPageCap == 0 {
		o.PosPageCap = DefaultPosPageCap
	}
	if o.StripeCap < 1 || o.StripeCap > maxDimension {
		return o, fmt.Errorf("stripe: stripe capacity %d out of range [1,%d]", o.StripeCap, maxDimension)
	}
	if o.PosPageCap < 1 || o.PosPageCap > maxDimension {
		return o, fmt.Errorf("stripe: position-page capacity %d out of range [1,%d]", o.PosPageCap, maxDimension)
	}
	return o, nil
}

// Write serializes db in the stripe format. The source may itself be any
// reader-backed database (including a stripe-backed one), so a file can
// be re-striped with different capacities by opening and rewriting it.
func Write(w io.Writer, db *list.Database, opts WriteOptions) error {
	if db == nil {
		return fmt.Errorf("stripe: nil database")
	}
	opts, err := opts.withDefaults()
	if err != nil {
		return err
	}
	m, n := db.M(), db.N()

	if _, err := w.Write(magic[:]); err != nil {
		return fmt.Errorf("stripe: write magic: %w", err)
	}
	off := int64(len(magic))

	ft := footer{m: m, n: n, stripeCap: opts.StripeCap, posPageCap: opts.PosPageCap,
		lists: make([]listIndex, m)}
	// block is reused for every data block: the largest is an entry
	// stripe of StripeCap entries.
	block := make([]byte, 0, entryStripeLen(opts.StripeCap))
	writeBlock := func() (int64, int, error) {
		sum := crc32.ChecksumIEEE(block)
		block = binary.LittleEndian.AppendUint32(block, sum)
		if _, err := w.Write(block); err != nil {
			return 0, 0, err
		}
		at, length := off, len(block)
		off += int64(length)
		return at, length, nil
	}

	for i := 0; i < m; i++ {
		l := db.List(i)
		idx := &ft.lists[i]

		prev := math.Inf(1)
		for s := 0; s < numBlocks(n, opts.StripeCap); s++ {
			count := blockCounts(n, opts.StripeCap, s)
			firstPos := s*opts.StripeCap + 1
			block = binary.LittleEndian.AppendUint32(block[:0], uint32(count))
			var maxScore, minScore float64
			// Columnar: the item column, then the score column.
			for p := firstPos; p < firstPos+count; p++ {
				e := l.At(p)
				if e.Item < 0 || int(e.Item) >= n {
					return fmt.Errorf("stripe: list %d position %d: item %d out of range [0,%d)", i, p, e.Item, n)
				}
				block = binary.LittleEndian.AppendUint32(block, uint32(e.Item))
			}
			for p := firstPos; p < firstPos+count; p++ {
				sc := l.At(p).Score
				if math.IsNaN(sc) {
					return fmt.Errorf("stripe: list %d position %d: NaN score", i, p)
				}
				if sc > prev {
					return fmt.Errorf("stripe: list %d position %d: score %v > %v at the previous position", i, p, sc, prev)
				}
				prev = sc
				if p == firstPos {
					maxScore = sc
				}
				minScore = sc
				block = binary.LittleEndian.AppendUint64(block, math.Float64bits(sc))
			}
			at, length, err := writeBlock()
			if err != nil {
				return fmt.Errorf("stripe: write list %d stripe %d: %w", i, s, err)
			}
			idx.stripes = append(idx.stripes, stripeInfo{
				off: at, length: length, firstPos: firstPos, count: count,
				maxScore: maxScore, minScore: minScore,
			})
		}

		for pg := 0; pg < numBlocks(n, opts.PosPageCap); pg++ {
			count := blockCounts(n, opts.PosPageCap, pg)
			firstItem := pg * opts.PosPageCap
			block = binary.LittleEndian.AppendUint32(block[:0], uint32(count))
			for d := firstItem; d < firstItem+count; d++ {
				p := l.PositionOf(list.ItemID(d))
				if p < 1 || p > n {
					return fmt.Errorf("stripe: list %d item %d: position %d out of range [1,%d]", i, d, p, n)
				}
				block = binary.LittleEndian.AppendUint32(block, uint32(p))
			}
			at, length, err := writeBlock()
			if err != nil {
				return fmt.Errorf("stripe: write list %d position page %d: %w", i, pg, err)
			}
			idx.pages = append(idx.pages, pageInfo{off: at, length: length, firstItem: firstItem, count: count})
		}
	}

	fb := ft.encode()
	if _, err := w.Write(fb); err != nil {
		return fmt.Errorf("stripe: write footer: %w", err)
	}
	var tr [trailerLen]byte
	binary.LittleEndian.PutUint64(tr[0:8], uint64(off))
	binary.LittleEndian.PutUint32(tr[8:12], uint32(len(fb)))
	binary.LittleEndian.PutUint32(tr[12:16], crc32.ChecksumIEEE(fb))
	copy(tr[16:24], endMagic[:])
	if _, err := w.Write(tr[:]); err != nil {
		return fmt.Errorf("stripe: write trailer: %w", err)
	}
	return nil
}

// encode renders the footer in its on-disk form.
func (ft *footer) encode() []byte {
	size := 4 + 4 + 8 + 4 + 4
	for _, li := range ft.lists {
		size += 4 + len(li.stripes)*40 + 4 + len(li.pages)*20
	}
	b := make([]byte, 0, size)
	b = binary.LittleEndian.AppendUint32(b, 1) // version
	b = binary.LittleEndian.AppendUint32(b, uint32(ft.m))
	b = binary.LittleEndian.AppendUint64(b, uint64(ft.n))
	b = binary.LittleEndian.AppendUint32(b, uint32(ft.stripeCap))
	b = binary.LittleEndian.AppendUint32(b, uint32(ft.posPageCap))
	for _, li := range ft.lists {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(li.stripes)))
		for _, st := range li.stripes {
			b = binary.LittleEndian.AppendUint64(b, uint64(st.off))
			b = binary.LittleEndian.AppendUint32(b, uint32(st.length))
			b = binary.LittleEndian.AppendUint64(b, uint64(st.firstPos))
			b = binary.LittleEndian.AppendUint32(b, uint32(st.count))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(st.maxScore))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(st.minScore))
		}
		b = binary.LittleEndian.AppendUint32(b, uint32(len(li.pages)))
		for _, pg := range li.pages {
			b = binary.LittleEndian.AppendUint64(b, uint64(pg.off))
			b = binary.LittleEndian.AppendUint32(b, uint32(pg.length))
			b = binary.LittleEndian.AppendUint32(b, uint32(pg.firstItem))
			b = binary.LittleEndian.AppendUint32(b, uint32(pg.count))
		}
	}
	return b
}

// Create writes db to path atomically (temp file + rename), like the
// binary store's SaveFile.
func Create(path string, db *list.Database, opts WriteOptions) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".topkstripe-*")
	if err != nil {
		return fmt.Errorf("stripe: create temp: %w", err)
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriterSize(tmp, 1<<16)
	if err := Write(bw, db, opts); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("stripe: flush: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stripe: close temp: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("stripe: rename: %w", err)
	}
	return nil
}

// WriteBytes renders db as an in-memory stripe file — the OpenReader
// counterpart, used by tests and tools.
func WriteBytes(db *list.Database, opts WriteOptions) ([]byte, error) {
	var buf bytes.Buffer
	if err := Write(&buf, db, opts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
