package stripe

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"topk/internal/list"
)

// Options configures an open stripe database.
type Options struct {
	// CacheBytes is the stripe-cache budget over decoded block payloads;
	// 0 means DefaultCacheBytes. The accounted resident bytes never
	// exceed it.
	CacheBytes int64
}

// DB is an open stripe file: the resident footer index plus the LRU
// block cache. All methods are safe for concurrent use; the lists it
// hands out serve reads with pread, so N sessions of one owner share one
// descriptor without seeking over each other.
type DB struct {
	r      io.ReaderAt
	closer io.Closer // nil when opened over a caller-owned ReaderAt
	ft     footer
	cache  *cache
	lists  []*List
}

// Open opens the stripe file at path, reading only its trailer and
// footer — this is what makes an owner restart warm: no data block is
// touched until a query asks for it.
func Open(path string, opts Options) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("stripe: open: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("stripe: stat: %w", err)
	}
	db, err := OpenReader(f, st.Size(), opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	db.closer = f
	return db, nil
}

// OpenReader opens a stripe database over any io.ReaderAt of the given
// size (Open wraps it over an *os.File). The reader must stay valid for
// the life of the DB; Close does not close it.
func OpenReader(r io.ReaderAt, size int64, opts Options) (*DB, error) {
	ft, err := readFooter(r, size)
	if err != nil {
		return nil, err
	}
	db := &DB{r: r, ft: *ft, cache: newCache(opts.CacheBytes)}
	db.lists = make([]*List, ft.m)
	for i := range db.lists {
		db.lists[i] = &List{db: db, idx: i}
	}
	return db, nil
}

// readFooter reads and validates the trailer and footer.
func readFooter(r io.ReaderAt, size int64) (*footer, error) {
	minSize := int64(len(magic)) + trailerLen
	if size < minSize {
		return nil, fmt.Errorf("stripe: file of %d bytes is too small", size)
	}
	var hdr [8]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("stripe: read magic: %w", err)
	}
	if hdr != magic {
		return nil, fmt.Errorf("stripe: bad magic %q", hdr[:])
	}
	var tr [trailerLen]byte
	if _, err := r.ReadAt(tr[:], size-trailerLen); err != nil {
		return nil, fmt.Errorf("stripe: read trailer: %w", err)
	}
	if !equalBytes(tr[16:24], endMagic[:]) {
		return nil, fmt.Errorf("stripe: bad end magic %q (truncated or not a stripe file)", tr[16:24])
	}
	footerOff := int64(binary.LittleEndian.Uint64(tr[0:8]))
	footerLen := int64(binary.LittleEndian.Uint32(tr[8:12]))
	wantCRC := binary.LittleEndian.Uint32(tr[12:16])
	if footerOff < int64(len(magic)) || footerOff+footerLen != size-trailerLen {
		return nil, fmt.Errorf("stripe: footer extent [%d,%d) does not meet the trailer at %d (truncated footer)",
			footerOff, footerOff+footerLen, size-trailerLen)
	}
	fb := make([]byte, footerLen)
	if _, err := r.ReadAt(fb, footerOff); err != nil {
		return nil, fmt.Errorf("stripe: read footer: %w", err)
	}
	if got := crc32.ChecksumIEEE(fb); got != wantCRC {
		return nil, fmt.Errorf("stripe: footer checksum mismatch: trailer %08x, computed %08x", wantCRC, got)
	}
	ft, err := decodeFooter(fb)
	if err != nil {
		return nil, err
	}
	if err := ft.validate(footerOff); err != nil {
		return nil, err
	}
	return ft, nil
}

// decodeFooter parses the footer bytes. Every count is checked against
// the expectation the dimensions imply before anything is allocated, so
// a corrupt footer cannot drive allocation beyond the file's own size.
func decodeFooter(b []byte) (*footer, error) {
	d := &decoder{b: b}
	if v := d.u32(); v != 1 {
		return nil, fmt.Errorf("stripe: unsupported format version %d", v)
	}
	ft := &footer{}
	ft.m = int(d.u32())
	ft.n = int(d.u64())
	ft.stripeCap = int(d.u32())
	ft.posPageCap = int(d.u32())
	if d.err != nil {
		return nil, fmt.Errorf("stripe: truncated footer header: %w", d.err)
	}
	if ft.m < 1 || ft.n < 1 || ft.m > maxDimension || ft.n > maxDimension ||
		ft.stripeCap < 1 || ft.stripeCap > maxDimension ||
		ft.posPageCap < 1 || ft.posPageCap > maxDimension {
		return nil, fmt.Errorf("stripe: implausible footer header m=%d n=%d stripeCap=%d posPageCap=%d",
			ft.m, ft.n, ft.stripeCap, ft.posPageCap)
	}
	wantStripes := numBlocks(ft.n, ft.stripeCap)
	wantPages := numBlocks(ft.n, ft.posPageCap)
	// Reject before allocating: the remaining footer bytes must hold
	// every index record the header promises.
	need := ft.m * (4 + wantStripes*40 + 4 + wantPages*20)
	if d.remaining() != need {
		return nil, fmt.Errorf("stripe: footer holds %d index bytes, want %d", d.remaining(), need)
	}
	ft.lists = make([]listIndex, ft.m)
	for i := range ft.lists {
		ns := int(d.u32())
		if ns != wantStripes {
			return nil, fmt.Errorf("stripe: list %d indexes %d stripes, want %d", i, ns, wantStripes)
		}
		stripes := make([]stripeInfo, ns)
		for s := range stripes {
			stripes[s] = stripeInfo{
				off:      int64(d.u64()),
				length:   int(d.u32()),
				firstPos: int(d.u64()),
				count:    int(d.u32()),
				maxScore: d.f64(),
				minScore: d.f64(),
			}
		}
		np := int(d.u32())
		if np != wantPages {
			return nil, fmt.Errorf("stripe: list %d indexes %d position pages, want %d", i, np, wantPages)
		}
		pages := make([]pageInfo, np)
		for p := range pages {
			pages[p] = pageInfo{
				off:       int64(d.u64()),
				length:    int(d.u32()),
				firstItem: int(d.u32()),
				count:     int(d.u32()),
			}
		}
		ft.lists[i] = listIndex{stripes: stripes, pages: pages}
	}
	if d.err != nil {
		return nil, fmt.Errorf("stripe: truncated footer: %w", d.err)
	}
	return ft, nil
}

// decoder is a bounds-checked little-endian reader over the footer.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) {
		d.err = io.ErrUnexpectedEOF
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

func (d *decoder) remaining() int { return len(d.b) - d.off }

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// M returns the number of lists.
func (db *DB) M() int { return db.ft.m }

// N returns the number of items per list.
func (db *DB) N() int { return db.ft.n }

// StripeCap returns the entries-per-stripe capacity of the file.
func (db *DB) StripeCap() int { return db.ft.stripeCap }

// List returns the i-th disk-backed list (0-based).
func (db *DB) List(i int) *List { return db.lists[i] }

// Database assembles every list of the file into a *list.Database, the
// drop-in replacement for a memory-resident database: probes, owners and
// all algorithms run over it unchanged.
func (db *DB) Database() (*list.Database, error) {
	rs := make([]list.Reader, len(db.lists))
	for i, l := range db.lists {
		rs[i] = l
	}
	return list.NewReaderDatabase(rs...)
}

// CacheStats snapshots the stripe cache's tallies.
func (db *DB) CacheStats() CacheStats { return db.cache.stats() }

// Close releases the cache and, when the DB was opened from a path, the
// file descriptor. Lists handed out must not be used afterwards.
func (db *DB) Close() error {
	db.cache.drop()
	if db.closer != nil {
		return db.closer.Close()
	}
	return nil
}

// readBlock reads and CRC-checks one data block's payload (the bytes
// before the trailing CRC).
func (db *DB) readBlock(off int64, length int, what string) ([]byte, error) {
	buf := make([]byte, length)
	if _, err := db.r.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("stripe: read %s: %w", what, err)
	}
	payload := buf[:length-4]
	want := binary.LittleEndian.Uint32(buf[length-4:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("stripe: %s checksum mismatch: file %08x, computed %08x", what, want, got)
	}
	return payload, nil
}

// loadEntryStripe reads, checks and decodes one entry stripe, without
// touching the cache.
func (db *DB) loadEntryStripe(li, si int) ([]list.Entry, error) {
	st := db.ft.lists[li].stripes[si]
	what := fmt.Sprintf("list %d stripe %d", li, si)
	payload, err := db.readBlock(st.off, st.length, what)
	if err != nil {
		return nil, err
	}
	if got := int(binary.LittleEndian.Uint32(payload[:4])); got != st.count {
		return nil, fmt.Errorf("stripe: %s holds %d entries, footer says %d", what, got, st.count)
	}
	items := payload[4 : 4+4*st.count]
	scores := payload[4+4*st.count:]
	out := make([]list.Entry, st.count)
	prev := math.Inf(1)
	for j := range out {
		item := int32(binary.LittleEndian.Uint32(items[4*j:]))
		sc := math.Float64frombits(binary.LittleEndian.Uint64(scores[8*j:]))
		if item < 0 || int(item) >= db.ft.n {
			return nil, fmt.Errorf("stripe: %s position %d: item %d out of range [0,%d)", what, st.firstPos+j, item, db.ft.n)
		}
		if math.IsNaN(sc) {
			return nil, fmt.Errorf("stripe: %s position %d: NaN score", what, st.firstPos+j)
		}
		if sc > prev {
			return nil, fmt.Errorf("stripe: %s position %d: scores out of order (%v > %v)", what, st.firstPos+j, sc, prev)
		}
		prev = sc
		out[j] = list.Entry{Item: list.ItemID(item), Score: sc}
	}
	// The fences are the index every fence-guided read trusts; a stripe
	// that disagrees with its own footer record is corrupt.
	if out[0].Score != st.maxScore || out[st.count-1].Score != st.minScore {
		return nil, fmt.Errorf("stripe: %s scores [%v,%v] disagree with its fences [%v,%v]",
			what, out[st.count-1].Score, out[0].Score, st.minScore, st.maxScore)
	}
	return out, nil
}

// loadPosPage reads, checks and decodes one id→position page, without
// touching the cache.
func (db *DB) loadPosPage(li, pi int) ([]int32, error) {
	pg := db.ft.lists[li].pages[pi]
	what := fmt.Sprintf("list %d position page %d", li, pi)
	payload, err := db.readBlock(pg.off, pg.length, what)
	if err != nil {
		return nil, err
	}
	if got := int(binary.LittleEndian.Uint32(payload[:4])); got != pg.count {
		return nil, fmt.Errorf("stripe: %s holds %d items, footer says %d", what, got, pg.count)
	}
	out := make([]int32, pg.count)
	for j := range out {
		p := int32(binary.LittleEndian.Uint32(payload[4+4*j:]))
		if p < 1 || int(p) > db.ft.n {
			return nil, fmt.Errorf("stripe: %s item %d: position %d out of range [1,%d]", what, pg.firstItem+j, p, db.ft.n)
		}
		out[j] = p
	}
	return out, nil
}

// entryStripe returns one entry stripe through the cache, panicking on
// IO errors or corruption (see the package comment: reads after a
// successful Open are fail-stop).
func (db *DB) entryStripe(li, si int) []list.Entry {
	v, err := db.cache.get(ckey{kind: kindEntries, list: int32(li), idx: int32(si)},
		func() (any, int64, error) {
			ents, err := db.loadEntryStripe(li, si)
			return ents, int64(len(ents)) * 16, err
		})
	if err != nil {
		panic(err)
	}
	return v.([]list.Entry)
}

// posPage returns one id→position page through the cache; fail-stop like
// entryStripe.
func (db *DB) posPage(li, pi int) []int32 {
	v, err := db.cache.get(ckey{kind: kindPositions, list: int32(li), idx: int32(pi)},
		func() (any, int64, error) {
			ps, err := db.loadPosPage(li, pi)
			return ps, int64(len(ps)) * 4, err
		})
	if err != nil {
		panic(err)
	}
	return v.([]int32)
}

// Verify streams every block of the file — bypassing the cache — and
// checks full structural integrity: block checksums, in-stripe order and
// fence agreement (as on every load), plus the whole-list invariants a
// lazy read cannot see: each item appears exactly once across the
// stripes, and every position page agrees with where the stripes
// actually placed each item. It allocates 4 bytes per item transiently.
func (db *DB) Verify() error {
	posOf := make([]int32, db.ft.n)
	for li := range db.ft.lists {
		for d := range posOf {
			posOf[d] = 0
		}
		for si := range db.ft.lists[li].stripes {
			ents, err := db.loadEntryStripe(li, si)
			if err != nil {
				return err
			}
			firstPos := db.ft.lists[li].stripes[si].firstPos
			for j, e := range ents {
				if posOf[e.Item] != 0 {
					return fmt.Errorf("stripe: list %d: item %d appears at positions %d and %d",
						li, e.Item, posOf[e.Item], firstPos+j)
				}
				posOf[e.Item] = int32(firstPos + j)
			}
		}
		for pi := range db.ft.lists[li].pages {
			ps, err := db.loadPosPage(li, pi)
			if err != nil {
				return err
			}
			firstItem := db.ft.lists[li].pages[pi].firstItem
			for j, p := range ps {
				if posOf[firstItem+j] != p {
					return fmt.Errorf("stripe: list %d: position page says item %d is at %d, stripes place it at %d",
						li, firstItem+j, p, posOf[firstItem+j])
				}
			}
		}
	}
	return nil
}

// List is one disk-backed sorted list: the stripe store's list.Reader.
// All methods are safe for concurrent use and panic on out-of-range
// arguments, exactly like *list.List.
type List struct {
	db  *DB
	idx int
}

var _ list.Reader = (*List)(nil)

// Len returns n, the number of entries.
func (l *List) Len() int { return l.db.ft.n }

// At returns the entry at 1-based position p, loading (at most) the one
// stripe covering p.
func (l *List) At(p int) list.Entry {
	if p < 1 || p > l.db.ft.n {
		panic(fmt.Sprintf("stripe: position %d out of range [1,%d]", p, l.db.ft.n))
	}
	si := (p - 1) / l.db.ft.stripeCap
	ents := l.db.entryStripe(l.idx, si)
	return ents[(p-1)-si*l.db.ft.stripeCap]
}

// PositionOf returns the 1-based position of item d, loading (at most)
// the one id→position page covering d.
func (l *List) PositionOf(d list.ItemID) int {
	if d < 0 || int(d) >= l.db.ft.n {
		panic(fmt.Sprintf("stripe: item %d out of range [0,%d)", d, l.db.ft.n))
	}
	pi := int(d) / l.db.ft.posPageCap
	ps := l.db.posPage(l.idx, pi)
	return int(ps[int(d)-pi*l.db.ft.posPageCap])
}

// ScoreOf returns the local score of item d: a position-page read plus a
// stripe read, the disk shape of one random access.
func (l *List) ScoreOf(d list.ItemID) float64 {
	return l.At(l.PositionOf(d)).Score
}

// SeekScore returns the first 1-based position whose score is strictly
// below t, or Len()+1 when every score is >= t. It binary-searches the
// footer's score fences to pick the single stripe that can hold the
// boundary, so a threshold seek over an arbitrarily long list costs at
// most one stripe load — this is what the fences buy sorted scans.
func (l *List) SeekScore(t float64) int {
	stripes := l.db.ft.lists[l.idx].stripes
	// First stripe whose minimum fence drops below t; earlier stripes
	// are entirely >= t.
	si := sort.Search(len(stripes), func(i int) bool { return stripes[i].minScore < t })
	if si == len(stripes) {
		return l.db.ft.n + 1
	}
	st := stripes[si]
	if st.maxScore < t {
		// The whole stripe is below t: the boundary is its first
		// position. No data block touched.
		return st.firstPos
	}
	ents := l.db.entryStripe(l.idx, si)
	j := sort.Search(len(ents), func(i int) bool { return ents[i].Score < t })
	return st.firstPos + j
}
