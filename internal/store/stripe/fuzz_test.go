package stripe

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"topk/internal/gen"
	"topk/internal/list"
)

// fuzzSeed renders a small valid stripe file for corpus construction.
func fuzzSeed(f *testing.F) []byte {
	f.Helper()
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 30, M: 2, Seed: 1})
	raw, err := WriteBytes(db, WriteOptions{StripeCap: 8, PosPageCap: 8})
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// resealFooter re-encodes a mutated footer into raw and rebuilds the
// trailer CRC, so footer-level corruptions reach the structural
// validators instead of dying at the checksum.
func resealFooter(raw []byte, mutate func(ft *footer)) []byte {
	tr := raw[len(raw)-trailerLen:]
	footOff := binary.LittleEndian.Uint64(tr[0:8])
	ft, err := decodeFooter(raw[footOff : len(raw)-trailerLen])
	if err != nil {
		panic(err)
	}
	mutate(ft)
	fb := ft.encode()
	out := append(append([]byte{}, raw[:footOff]...), fb...)
	var ntr [trailerLen]byte
	binary.LittleEndian.PutUint64(ntr[0:8], footOff)
	binary.LittleEndian.PutUint32(ntr[8:12], uint32(len(fb)))
	binary.LittleEndian.PutUint32(ntr[12:16], crc32.ChecksumIEEE(fb))
	copy(ntr[16:24], endMagic[:])
	return append(out, ntr[:]...)
}

// FuzzReadStripe throws arbitrary bytes at the stripe opener. Open must
// never panic; when it accepts a file, Verify must either certify it or
// reject it, and a certified file must serve panic-free reads with
// answers consistent with itself.
func FuzzReadStripe(f *testing.F) {
	valid := fuzzSeed(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:16])
	f.Add(valid[:len(valid)/2])          // mid-data truncation
	f.Add(valid[:len(valid)-1])          // clipped trailer
	f.Add(valid[:len(valid)-trailerLen]) // truncated footer: trailer gone entirely

	// Trailer intact but the footer bytes clipped out from under it.
	clipped := append([]byte{}, valid[:len(valid)-trailerLen-8]...)
	clipped = append(clipped, valid[len(valid)-trailerLen:]...)
	f.Add(clipped)

	// Overlapping score fences: raise a later stripe's max above the
	// previous stripe's min.
	f.Add(resealFooter(valid, func(ft *footer) {
		ft.lists[0].stripes[1].maxScore = ft.lists[0].stripes[0].minScore + 1
	}))
	// Fences inverted within one stripe.
	f.Add(resealFooter(valid, func(ft *footer) {
		st := &ft.lists[0].stripes[0]
		st.minScore, st.maxScore = st.maxScore, st.minScore+2
	}))
	// Out-of-order positions: stripes whose position ranges do not tile
	// the list contiguously.
	f.Add(resealFooter(valid, func(ft *footer) {
		ft.lists[0].stripes[0].firstPos = 9
		ft.lists[0].stripes[1].firstPos = 1
	}))
	// A block extent pointing past the data region.
	f.Add(resealFooter(valid, func(ft *footer) {
		ft.lists[1].pages[0].off = 1 << 40
	}))
	// Corrupted data block under a pristine footer (CRC catches it on
	// load; Verify reports it).
	blockFlip := append([]byte{}, valid...)
	blockFlip[12] ^= 0xff
	f.Add(blockFlip)

	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := OpenReader(bytes.NewReader(data), int64(len(data)), Options{CacheBytes: 1 << 20})
		if err != nil {
			return
		}
		defer db.Close()
		if db.Verify() != nil {
			return
		}
		// Verified file: every read must be panic-free and self-consistent.
		for i := 0; i < db.M(); i++ {
			l := db.List(i)
			prev := l.At(1).Score
			for p := 2; p <= min(db.N(), 64); p++ {
				s := l.At(p).Score
				if s > prev {
					t.Fatalf("list %d: verified file serves unsorted scores at %d", i, p)
				}
				prev = s
			}
			for d := 0; d < min(db.N(), 64); d++ {
				id := list.ItemID(d)
				if got := l.At(l.PositionOf(id)).Item; got != id {
					t.Fatalf("list %d: PositionOf(%d) leads to item %d", i, d, got)
				}
			}
			if p := l.SeekScore(prev); p < 1 || p > db.N()+1 {
				t.Fatalf("list %d: SeekScore out of range: %d", i, p)
			}
		}
	})
}
