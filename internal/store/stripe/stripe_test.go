package stripe

import (
	"bytes"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"topk/internal/core"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/score"
)

// genDB builds a deterministic uniform database.
func genDB(t testing.TB, n, m int) *list.Database {
	t.Helper()
	db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: n, M: m, Seed: 42})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return db
}

// openBytes writes db in stripe form and reopens it in memory.
func openBytes(t testing.TB, db *list.Database, wopts WriteOptions, opts Options) *DB {
	t.Helper()
	raw, err := WriteBytes(db, wopts)
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	sdb, err := OpenReader(bytes.NewReader(raw), int64(len(raw)), opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { sdb.Close() })
	return sdb
}

// TestRoundTrip checks the full Reader surface of every list against the
// in-memory source, with capacities small enough to force many blocks
// (including a ragged final stripe), plus Verify.
func TestRoundTrip(t *testing.T) {
	db := genDB(t, 1000, 3)
	sdb := openBytes(t, db, WriteOptions{StripeCap: 64, PosPageCap: 100}, Options{})
	if sdb.M() != db.M() || sdb.N() != db.N() {
		t.Fatalf("dims (%d,%d), want (%d,%d)", sdb.M(), sdb.N(), db.M(), db.N())
	}
	if err := sdb.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	for i := 0; i < db.M(); i++ {
		mem, dsk := db.List(i), sdb.List(i)
		if dsk.Len() != mem.Len() {
			t.Fatalf("list %d: Len %d, want %d", i, dsk.Len(), mem.Len())
		}
		for p := 1; p <= mem.Len(); p++ {
			if got, want := dsk.At(p), mem.At(p); got != want {
				t.Fatalf("list %d At(%d) = %+v, want %+v", i, p, got, want)
			}
		}
		for d := 0; d < db.N(); d++ {
			id := list.ItemID(d)
			if got, want := dsk.PositionOf(id), mem.PositionOf(id); got != want {
				t.Fatalf("list %d PositionOf(%d) = %d, want %d", i, d, got, want)
			}
			if got, want := dsk.ScoreOf(id), mem.ScoreOf(id); got != want {
				t.Fatalf("list %d ScoreOf(%d) = %v, want %v", i, d, got, want)
			}
		}
	}
}

// TestFileRoundTrip exercises the Create/Open path over a real file.
func TestFileRoundTrip(t *testing.T) {
	db := genDB(t, 500, 2)
	path := filepath.Join(t.TempDir(), "lists.stripe")
	if err := Create(path, db, WriteOptions{StripeCap: 128}); err != nil {
		t.Fatalf("create: %v", err)
	}
	sdb, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer sdb.Close()
	if err := sdb.Verify(); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if got, want := sdb.List(1).At(500), db.List(1).At(500); got != want {
		t.Fatalf("At(500) = %+v, want %+v", got, want)
	}
}

// TestBoundedMemory is the issue's acceptance scenario: a database about
// ten times the cache budget must serve TA and BPA2 with bit-identical
// results while the accounted resident bytes never exceed the budget —
// asserted both through CacheStats' high-water mark and through the
// process-wide obs gauge.
func TestBoundedMemory(t *testing.T) {
	const n, m = 20000, 4
	db := genDB(t, n, m)
	// Decoded entry payload: m lists x n entries x 16 bytes plus
	// position pages (4 bytes each) — about 1.6 MB. Budget a tenth.
	total := int64(m*n*16 + m*n*4)
	budget := total / 10
	sdb := openBytes(t, db, WriteOptions{StripeCap: 512, PosPageCap: 1024}, Options{CacheBytes: budget})

	gaugeBefore := mCacheResident.Value()
	for _, alg := range []core.Algorithm{core.AlgTA, core.AlgBPA2} {
		opts := core.Options{K: 20, Scoring: score.Sum{}}
		want, err := core.Run(alg, db, opts)
		if err != nil {
			t.Fatalf("%v in-memory: %v", alg, err)
		}
		disk, err := sdb.Database()
		if err != nil {
			t.Fatalf("database: %v", err)
		}
		got, err := core.Run(alg, disk, opts)
		if err != nil {
			t.Fatalf("%v stripe-backed: %v", alg, err)
		}
		if !reflect.DeepEqual(got.Items, want.Items) {
			t.Fatalf("%v items diverge:\n disk %v\n ram  %v", alg, got.Items, want.Items)
		}
		if got.Counts != want.Counts {
			t.Fatalf("%v access counts diverge: disk %+v, ram %+v", alg, got.Counts, want.Counts)
		}
		if got.StopPosition != want.StopPosition {
			t.Fatalf("%v stop position %d, want %d", alg, got.StopPosition, want.StopPosition)
		}
	}

	st := sdb.CacheStats()
	if st.Budget != budget {
		t.Fatalf("budget %d, want %d", st.Budget, budget)
	}
	if st.MaxResident > st.Budget {
		t.Fatalf("resident high-water %d exceeded the budget %d", st.MaxResident, st.Budget)
	}
	if st.MaxResident == 0 || st.Misses == 0 {
		t.Fatalf("cache never used: %+v", st)
	}
	if g := mCacheResident.Value() - gaugeBefore; g > float64(budget) {
		t.Fatalf("obs resident gauge grew by %v, over the budget %d", g, budget)
	}
	before := sdb.CacheStats().Resident
	sdb.Close()
	if got := mCacheResident.Value() - gaugeBefore; got > float64(0) && before > 0 {
		// Close must hand back this DB's whole share.
		if math.Abs(got) > 1e-9 {
			t.Fatalf("obs resident gauge still holds %v after Close", got)
		}
	}
}

// TestEviction forces the LRU to cycle and checks the hard ceiling under
// pressure, including a block larger than the whole budget being served
// uncached.
func TestEviction(t *testing.T) {
	db := genDB(t, 4096, 2)
	// Stripes decode to 256*16 = 4 KiB; budget holds about two.
	sdb := openBytes(t, db, WriteOptions{StripeCap: 256, PosPageCap: 256}, Options{CacheBytes: 9 << 10})
	for p := 1; p <= 4096; p += 16 {
		sdb.List(0).At(p)
		sdb.List(1).At(p)
	}
	st := sdb.CacheStats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under pressure: %+v", st)
	}
	if st.MaxResident > st.Budget {
		t.Fatalf("high-water %d over budget %d", st.MaxResident, st.Budget)
	}

	// A budget smaller than one decoded stripe: every read is served,
	// nothing is admitted.
	tiny := openBytes(t, db, WriteOptions{StripeCap: 256, PosPageCap: 256}, Options{CacheBytes: 100})
	if got, want := tiny.List(0).At(1), db.List(0).At(1); got != want {
		t.Fatalf("uncached read = %+v, want %+v", got, want)
	}
	if st := tiny.CacheStats(); st.Resident != 0 || st.MaxResident != 0 {
		t.Fatalf("oversized block was admitted: %+v", st)
	}
}

// TestSeekScore checks the fence-guided threshold seek against a linear
// scan, and that a seek resolved by fences alone touches no data block.
func TestSeekScore(t *testing.T) {
	db := genDB(t, 2000, 1)
	mem := db.List(0)
	seek := func(t0 float64) int {
		for p := 1; p <= mem.Len(); p++ {
			if mem.At(p).Score < t0 {
				return p
			}
		}
		return mem.Len() + 1
	}
	sdb := openBytes(t, db, WriteOptions{StripeCap: 100, PosPageCap: 100}, Options{})
	l := sdb.List(0)
	for _, t0 := range []float64{2, 1, 0.9, 0.5, 0.1, 0.0001, 0, -1} {
		if got, want := l.SeekScore(t0), seek(t0); got != want {
			t.Fatalf("SeekScore(%v) = %d, want %d", t0, got, want)
		}
	}
	// Per seek at most one stripe load: with 20 stripes and 8 seeks,
	// strictly fewer loads than a scan would need.
	if st := sdb.CacheStats(); st.Misses > 8 {
		t.Fatalf("%d block loads for 8 seeks", st.Misses)
	}

	// -inf threshold: below every fence, resolved with zero loads.
	fresh := openBytes(t, db, WriteOptions{StripeCap: 100, PosPageCap: 100}, Options{})
	if got := fresh.List(0).SeekScore(math.Inf(-1)); got != mem.Len()+1 {
		t.Fatalf("SeekScore(-inf) = %d, want %d", got, mem.Len()+1)
	}
	if st := fresh.CacheStats(); st.Misses != 0 {
		t.Fatalf("SeekScore(-inf) loaded %d blocks, want 0", st.Misses)
	}
}

// TestWarmReopen is the warm-restart property: reopening a stripe file
// reads only the trailer and footer — zero data-block loads until a
// query arrives — and then serves correct answers.
func TestWarmReopen(t *testing.T) {
	db := genDB(t, 3000, 3)
	path := filepath.Join(t.TempDir(), "warm.stripe")
	if err := Create(path, db, WriteOptions{}); err != nil {
		t.Fatalf("create: %v", err)
	}

	first, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	first.List(0).At(1) // touch a block, then "crash"
	first.Close()

	second, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer second.Close()
	if st := second.CacheStats(); st.Misses != 0 || st.Resident != 0 {
		t.Fatalf("reopen touched data blocks: %+v", st)
	}
	disk, err := second.Database()
	if err != nil {
		t.Fatalf("database: %v", err)
	}
	opts := core.Options{K: 5, Scoring: score.Sum{}}
	want, err := core.Run(core.AlgTA, db, opts)
	if err != nil {
		t.Fatalf("ram run: %v", err)
	}
	got, err := core.Run(core.AlgTA, disk, opts)
	if err != nil {
		t.Fatalf("disk run: %v", err)
	}
	if !reflect.DeepEqual(got.Items, want.Items) || got.Counts != want.Counts {
		t.Fatalf("after reopen: %+v, want %+v", got, want)
	}
}

// TestOpenRejectsCorruption covers the open-time error paths the fuzz
// target hammers: truncation, bad magics, and a corrupted footer.
func TestOpenRejectsCorruption(t *testing.T) {
	db := genDB(t, 300, 2)
	raw, err := WriteBytes(db, WriteOptions{StripeCap: 64, PosPageCap: 64})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	open := func(b []byte) error {
		sdb, err := OpenReader(bytes.NewReader(b), int64(len(b)), Options{})
		if err == nil {
			sdb.Close()
		}
		return err
	}
	if err := open(raw); err != nil {
		t.Fatalf("pristine file rejected: %v", err)
	}

	cases := map[string][]byte{
		"empty":            {},
		"tiny":             raw[:16],
		"truncated tail":   raw[:len(raw)-1],
		"truncated footer": append(append([]byte{}, raw[:len(raw)-trailerLen-40]...), raw[len(raw)-trailerLen:]...),
	}
	badMagic := append([]byte{}, raw...)
	badMagic[0] = 'X'
	cases["bad magic"] = badMagic
	badEnd := append([]byte{}, raw...)
	badEnd[len(badEnd)-1] = 'X'
	cases["bad end magic"] = badEnd
	// Flip one byte inside the footer (the CRC in the trailer catches it).
	footOff := binary.LittleEndian.Uint64(raw[len(raw)-trailerLen:])
	badFoot := append([]byte{}, raw...)
	badFoot[footOff+4] ^= 0xff
	cases["footer bit flip"] = badFoot

	for name, b := range cases {
		if err := open(b); err == nil {
			t.Errorf("%s: opened without error", name)
		}
	}
}

// TestVerifyCatchesDataCorruption flips a byte inside a data block: Open
// succeeds (it reads only trailer+footer), Verify reports it, and a read
// touching the block panics — the documented fail-stop contract.
func TestVerifyCatchesDataCorruption(t *testing.T) {
	db := genDB(t, 300, 1)
	raw, err := WriteBytes(db, WriteOptions{StripeCap: 64, PosPageCap: 64})
	if err != nil {
		t.Fatalf("write: %v", err)
	}
	raw[12] ^= 0xff // inside the first entry stripe
	sdb, err := OpenReader(bytes.NewReader(raw), int64(len(raw)), Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer sdb.Close()
	if err := sdb.Verify(); err == nil {
		t.Fatal("Verify accepted a corrupted stripe")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("read of a corrupted stripe did not panic")
		}
	}()
	sdb.List(0).At(1)
}

// TestCreateAtomic ensures a failed Create leaves no partial file behind.
func TestCreateAtomic(t *testing.T) {
	sub := filepath.Join(t.TempDir(), "gone")
	db := genDB(t, 10, 1)
	if err := Create(filepath.Join(sub, "x.stripe"), db, WriteOptions{}); err == nil {
		t.Fatal("Create into a missing directory succeeded")
	}
	if _, err := os.Stat(sub); !os.IsNotExist(err) {
		t.Fatalf("unexpected state: %v", err)
	}
}
