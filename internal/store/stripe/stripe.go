// Package stripe is the disk-backed list store: it persists a sorted-list
// database as fixed-capacity columnar stripes and serves the list.Reader
// surface straight from the file through a bounded LRU cache, so every
// centralized algorithm and every distributed protocol runs unchanged —
// with bit-identical answers and access accounting — over lists far
// bigger than RAM, and an owner process restarts warm by reopening the
// file instead of reloading it.
//
// # File format (version 1)
//
// All integers are little-endian; scores travel as raw IEEE-754 bits so
// they round-trip bit-identically.
//
//	magic "TOPKSTP1"                                    8 bytes
//	data blocks, back to back, per list:
//	  entry stripes   u32 count | count×u32 item |
//	                  count×u64 score bits | u32 CRC-32 (IEEE)
//	  position pages  u32 count | count×u32 position (1-based) |
//	                  u32 CRC-32 (IEEE)
//	footer (indexed by the trailer):
//	  u32 version=1 | u32 m | u64 n | u32 stripeCap | u32 posPageCap
//	  per list:
//	    u32 numStripes, then per stripe:
//	      u64 offset | u32 length | u64 firstPos | u32 count |
//	      f64 maxScore | f64 minScore        (the score fences)
//	    u32 numPosPages, then per page:
//	      u64 offset | u32 length | u32 firstItem | u32 count
//	trailer (fixed, last 24 bytes of the file):
//	  u64 footerOffset | u32 footerLength | u32 CRC-32 of the footer |
//	  end magic "TOPKSTPF"
//
// Each list is cut into stripes of exactly stripeCap entries (the last
// stripe holds the remainder), sorted by position — the columnar layout
// of smda's stripe model. The footer carries, per stripe, its position
// range and its score fences: the first (maximum) and last (minimum)
// score inside the stripe. Because the list is sorted, fences are
// non-overlapping and non-increasing across stripes, which is validated
// at open time; a sorted scan or a threshold seek (List.SeekScore)
// binary-searches the fences and touches exactly one stripe on disk
// instead of deserializing the list. Random access goes through the
// id→position pages — pos[item] in fixed-capacity pages — then lands in
// the one stripe covering that position: the position/id dual-keying of
// herald's column families, flattened into one file.
//
// # Reading and the cache
//
// Open reads only the trailer and footer (O(stripes) bytes, resident for
// the life of the DB); every data block is fetched on demand with pread
// (io.ReaderAt) into an LRU cache with a configurable byte budget over
// the decoded payloads. The resident total never exceeds the budget — a
// block larger than the whole budget is served uncached — and cache
// traffic is exported through internal/obs (hits, misses, evictions,
// resident bytes) next to the transport catalogue.
//
// Every block is CRC-checked and structurally validated as it is loaded
// (in-stripe score order, fence agreement, item and position ranges), so
// corruption surfaces at the first read that touches it. The Reader
// surface has no error channel — like *list.List, out-of-range accesses
// are programming errors — so a block that fails to load or validate
// after a successful Open panics with a descriptive error: storage
// corruption under a serving owner is fail-stop by design. Verify streams
// the whole file (uncached) and reports corruption as an error instead;
// fuzzing and operators use it before trusting reads.
//
// # Accounting
//
// Nothing in this package touches access accounting: the paper's
// middleware model is agnostic to where the lists live, so owners and
// probes charge sorted/random/direct accesses exactly as over the
// memory-resident store, and the parity suites hold disk-backed runs
// bit-identical to in-memory ones on answers, Net and access counts.
package stripe

import (
	"fmt"
	"math"
)

// Format constants.
const (
	// DefaultStripeCap is the default number of entries per stripe:
	// 4096 entries decode to 64 KiB, small enough that a point read
	// wastes little and large enough that a scan amortizes the pread.
	DefaultStripeCap = 4096
	// DefaultPosPageCap is the default number of items per id→position
	// page (32 KiB decoded).
	DefaultPosPageCap = 8192
	// DefaultCacheBytes is the default stripe-cache budget: 64 MiB.
	DefaultCacheBytes = 64 << 20

	// maxDimension bounds m, n and the per-block capacities on load so a
	// corrupted footer cannot drive allocation (same bound as the binary
	// store).
	maxDimension = 1 << 28

	trailerLen = 24
)

var (
	magic    = [8]byte{'T', 'O', 'P', 'K', 'S', 'T', 'P', '1'}
	endMagic = [8]byte{'T', 'O', 'P', 'K', 'S', 'T', 'P', 'F'}
)

// stripeInfo is one entry stripe's footer record: where it lives, which
// positions it covers, and its score fences.
type stripeInfo struct {
	off      int64
	length   int
	firstPos int // 1-based
	count    int
	maxScore float64 // score at firstPos (fence high)
	minScore float64 // score at firstPos+count-1 (fence low)
}

// pageInfo is one id→position page's footer record.
type pageInfo struct {
	off       int64
	length    int
	firstItem int
	count     int
}

// listIndex is the footer's per-list index.
type listIndex struct {
	stripes []stripeInfo
	pages   []pageInfo
}

// footer is the parsed footer: dimensions, capacities and the per-list
// block indexes. It is the only part of the file resident for the life
// of a DB.
type footer struct {
	m, n       int
	stripeCap  int
	posPageCap int
	lists      []listIndex
}

// entryStripeLen returns the on-disk length of an entry stripe of count
// entries: u32 count + count×(u32 item + u64 score) + u32 CRC.
func entryStripeLen(count int) int { return 4 + 12*count + 4 }

// posPageLen returns the on-disk length of a position page of count
// items: u32 count + count×u32 position + u32 CRC.
func posPageLen(count int) int { return 4 + 4*count + 4 }

// blockCounts returns how many fixed-capacity blocks cover n items and
// the count of block i.
func blockCounts(n, capacity, i int) int {
	if c := n - i*capacity; c < capacity {
		return c
	}
	return capacity
}

func numBlocks(n, capacity int) int { return (n + capacity - 1) / capacity }

// validate checks the footer's internal consistency: plausible
// dimensions, complete and contiguous position coverage, in-bounds block
// extents, and ordered, non-overlapping score fences. dataEnd is the
// first byte past the data region (the footer offset).
func (ft *footer) validate(dataEnd int64) error {
	if ft.m < 1 || ft.n < 1 || ft.m > maxDimension || ft.n > maxDimension {
		return fmt.Errorf("stripe: implausible dimensions m=%d n=%d", ft.m, ft.n)
	}
	if ft.stripeCap < 1 || ft.stripeCap > maxDimension {
		return fmt.Errorf("stripe: implausible stripe capacity %d", ft.stripeCap)
	}
	if ft.posPageCap < 1 || ft.posPageCap > maxDimension {
		return fmt.Errorf("stripe: implausible position-page capacity %d", ft.posPageCap)
	}
	if len(ft.lists) != ft.m {
		return fmt.Errorf("stripe: footer indexes %d lists, want %d", len(ft.lists), ft.m)
	}
	checkExtent := func(off int64, length int) error {
		if off < int64(len(magic)) || length < 0 || off+int64(length) > dataEnd {
			return fmt.Errorf("block extent [%d,%d) outside data region [%d,%d)",
				off, off+int64(length), len(magic), dataEnd)
		}
		return nil
	}
	for i, li := range ft.lists {
		if got, want := len(li.stripes), numBlocks(ft.n, ft.stripeCap); got != want {
			return fmt.Errorf("stripe: list %d has %d stripes, want %d", i, got, want)
		}
		for s, st := range li.stripes {
			if st.count != blockCounts(ft.n, ft.stripeCap, s) {
				return fmt.Errorf("stripe: list %d stripe %d holds %d entries, want %d",
					i, s, st.count, blockCounts(ft.n, ft.stripeCap, s))
			}
			if st.firstPos != s*ft.stripeCap+1 {
				return fmt.Errorf("stripe: list %d stripe %d starts at position %d, want %d (positions out of order)",
					i, s, st.firstPos, s*ft.stripeCap+1)
			}
			if st.length != entryStripeLen(st.count) {
				return fmt.Errorf("stripe: list %d stripe %d is %d bytes, want %d",
					i, s, st.length, entryStripeLen(st.count))
			}
			if err := checkExtent(st.off, st.length); err != nil {
				return fmt.Errorf("stripe: list %d stripe %d: %w", i, s, err)
			}
			if math.IsNaN(st.maxScore) || math.IsNaN(st.minScore) || st.maxScore < st.minScore {
				return fmt.Errorf("stripe: list %d stripe %d has invalid fences [%v,%v]",
					i, s, st.minScore, st.maxScore)
			}
			if s > 0 && li.stripes[s-1].minScore < st.maxScore {
				return fmt.Errorf("stripe: list %d stripes %d and %d have overlapping score fences (%v < %v)",
					i, s-1, s, li.stripes[s-1].minScore, st.maxScore)
			}
		}
		if got, want := len(li.pages), numBlocks(ft.n, ft.posPageCap); got != want {
			return fmt.Errorf("stripe: list %d has %d position pages, want %d", i, got, want)
		}
		for p, pg := range li.pages {
			if pg.count != blockCounts(ft.n, ft.posPageCap, p) {
				return fmt.Errorf("stripe: list %d page %d holds %d items, want %d",
					i, p, pg.count, blockCounts(ft.n, ft.posPageCap, p))
			}
			if pg.firstItem != p*ft.posPageCap {
				return fmt.Errorf("stripe: list %d page %d starts at item %d, want %d",
					i, p, pg.firstItem, p*ft.posPageCap)
			}
			if pg.length != posPageLen(pg.count) {
				return fmt.Errorf("stripe: list %d page %d is %d bytes, want %d",
					i, p, pg.length, posPageLen(pg.count))
			}
			if err := checkExtent(pg.off, pg.length); err != nil {
				return fmt.Errorf("stripe: list %d page %d: %w", i, p, err)
			}
		}
	}
	return nil
}
