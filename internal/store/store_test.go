package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"topk/internal/gen"
	"topk/internal/list"
)

func sampleDB(t *testing.T) *list.Database {
	t.Helper()
	db, err := gen.Generate(gen.Spec{Kind: gen.Uniform, N: 50, M: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func equalDB(a, b *list.Database) bool {
	if a.M() != b.M() || a.N() != b.N() {
		return false
	}
	for i := 0; i < a.M(); i++ {
		for p := 1; p <= a.N(); p++ {
			if a.List(i).At(p) != b.List(i).At(p) {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDB(db, got) {
		t.Error("round trip changed the database")
	}
}

func TestBinaryRejectsNil(t *testing.T) {
	if err := Write(&bytes.Buffer{}, nil); err == nil {
		t.Error("Write(nil) should fail")
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTADB!\nxxxxxxxx")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 12, 20, len(full) / 2, len(full) - 2} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryDetectsCorruption(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit in the middle of the payload: either an invariant
	// breaks or the checksum catches it.
	data[len(data)/2] ^= 0x10
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("corrupted payload accepted")
	}
}

func TestBinaryRejectsImplausibleDimensions(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte("TOPKDB1\n"))
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f}) // m
	buf.Write([]byte{0x01, 0x00, 0x00, 0x00}) // n
	if _, err := Read(&buf); err == nil {
		t.Error("implausible m accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := sampleDB(t)
	path := filepath.Join(t.TempDir(), "db.topk")
	if err := SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDB(db, got) {
		t.Error("file round trip changed the database")
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".topkdb-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestSaveFileBadDirectory(t *testing.T) {
	db := sampleDB(t)
	if err := SaveFile(filepath.Join(t.TempDir(), "nope", "db.topk"), db); err == nil {
		t.Error("save into missing directory accepted")
	}
}

func TestSaveFileRelativePath(t *testing.T) {
	db := sampleDB(t)
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	// A bare filename exercises the "." temp-dir branch of dirOf.
	if err := SaveFile("db.topk", db); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile("db.topk"); err != nil {
		t.Fatal(err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := sampleDB(t)
	var buf bytes.Buffer
	if err := WriteColumnsCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadColumnsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDB(db, got) {
		t.Error("CSV round trip changed the database")
	}
}

func TestCSVWithoutHeader(t *testing.T) {
	in := "1.5,10\n2.5,20\n0.5,30\n"
	db, err := ReadColumnsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.M() != 2 || db.N() != 3 {
		t.Fatalf("M=%d N=%d, want 2, 3", db.M(), db.N())
	}
	if got := db.List(0).At(1).Item; got != 1 {
		t.Errorf("top item of list 0 = %d, want 1 (score 2.5)", got)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"header only":    "a,b\n",
		"ragged":         "1,2\n3\n",
		"non-numeric":    "1,2\n3,x\n",
		"empty data row": "\n",
	}
	for name, in := range cases {
		if _, err := ReadColumnsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
}

func TestCSVNilDatabase(t *testing.T) {
	if err := WriteColumnsCSV(&bytes.Buffer{}, nil); err == nil {
		t.Error("nil database accepted")
	}
}

// TestPropertyBinaryRoundTrip round-trips random databases, including
// Gaussian ones with negative and sub-normal-ish scores.
func TestPropertyBinaryRoundTrip(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kindRaw uint8) bool {
		n := 1 + int(nRaw)%60
		m := 1 + int(mRaw)%5
		kinds := []gen.Kind{gen.Uniform, gen.Gaussian}
		db, err := gen.Generate(gen.Spec{Kind: kinds[int(kindRaw)%2], N: n, M: m, Seed: seed})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, db); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("Read: %v", err)
			return false
		}
		return equalDB(db, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestBinaryPreservesExactFloats checks bit-exact score preservation for
// awkward values.
func TestBinaryPreservesExactFloats(t *testing.T) {
	scores := []float64{math.Pi, math.SmallestNonzeroFloat64, -math.MaxFloat64, 0, 1e-300}
	// Build a single-list database with those scores (sorted descending).
	db, err := list.FromColumns([][]float64{scores})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for d, want := range scores {
		if g := got.List(0).ScoreOf(list.ItemID(d)); g != want {
			t.Errorf("item %d score = %v, want %v", d, g, want)
		}
	}
}
