package store

import (
	"bytes"
	"strings"
	"testing"

	"topk/internal/gen"
)

// FuzzReadBinary throws arbitrary bytes at the binary parser. The parser
// must never panic and must either return a structurally valid database
// or an error — never a malformed one.
func FuzzReadBinary(f *testing.F) {
	// Seed with a valid file and a few truncations/mutations of it.
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 12, M: 2, Seed: 1})
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("TOPKDB1\n"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[20] ^= 0xff
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil database with nil error")
		}
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("parser accepted an invalid database: %v", vErr)
		}
	})
}

// FuzzReadColumnsCSV does the same for the CSV importer.
func FuzzReadColumnsCSV(f *testing.F) {
	f.Add("list1,list2\n1,2\n3,4\n")
	f.Add("1,2\n")
	f.Add("")
	f.Add("a,b\nx,y\n")
	f.Add("1,2\n3\n")
	f.Add("1e308,-1e308\n0,0\n")

	f.Fuzz(func(t *testing.T, data string) {
		// The CSV reader is line-oriented; avoid pathological quoting
		// blowups dominating the corpus by capping size.
		if len(data) > 1<<16 {
			return
		}
		got, err := ReadColumnsCSV(strings.NewReader(data))
		if err != nil {
			return
		}
		if got == nil {
			t.Fatal("nil database with nil error")
		}
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("CSV importer accepted an invalid database: %v", vErr)
		}
	})
}
