package cli

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"topk"
)

// TestRenderRecovery covers both branches of the one recovery-line
// renderer: the verbose path always prints it, the default path prints
// it only when a failure was absorbed.
func TestRenderRecovery(t *testing.T) {
	var buf bytes.Buffer
	if renderRecovery(&buf, topk.RecoveryStats{}, false) {
		t.Error("quiet run printed a recovery line")
	}
	if buf.Len() != 0 {
		t.Errorf("quiet run wrote %q", buf.String())
	}

	buf.Reset()
	if !renderRecovery(&buf, topk.RecoveryStats{}, true) {
		t.Error("verbose run skipped the recovery line")
	}
	if got := buf.String(); got != "recovery: restarts=0 handoffs=0 failed-replicas=0 backpressure=0\n" {
		t.Errorf("verbose zero line = %q", got)
	}

	buf.Reset()
	if !renderRecovery(&buf, topk.RecoveryStats{Restarts: 1, Handoffs: 2, FailedReplicas: 3, Backpressure: 4}, false) {
		t.Error("absorbed failure was silent without -verbose")
	}
	if got := buf.String(); got != "recovery: restarts=1 handoffs=2 failed-replicas=3 backpressure=4\n" {
		t.Errorf("nonzero line = %q", got)
	}
}

// TestRenderTrace: the span table carries one row per exchange with
// the recovery annotations in the notes column.
func TestRenderTrace(t *testing.T) {
	var buf bytes.Buffer
	renderTrace(&buf, []topk.TraceSpan{
		{Seq: 0, Round: 1, Owner: 0, Replica: 0, URL: "http://a", Kind: "sorted",
			Msgs: 1, ReqBytes: 40, RespBytes: 40, Duration: 1500 * time.Microsecond, Attempts: 1},
		{Seq: 1, Round: 2, Owner: 1, Replica: 1, URL: "http://b", Kind: "batch",
			Msgs: 3, ReqBytes: 90, RespBytes: 120, Duration: 2 * time.Millisecond,
			Attempts: 2, FailedOver: true, Handoff: true},
	})
	out := buf.String()
	for _, want := range []string{
		"trace (2 exchanges):",
		"round", "owner", "replica", "kind", "msgs", "req-B", "resp-B",
		"sorted", "batch",
		"attempts=2 failover handoff",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace table missing %q:\n%s", want, out)
		}
	}
}

// TestTraceFlagClusterOnly: -trace without -owners is rejected like
// the other cluster-only flags.
func TestTraceFlagClusterOnly(t *testing.T) {
	code, _, errOut := capture(t, queryEntry, "-trace")
	if code == 0 {
		t.Fatal("-trace without -owners accepted")
	}
	if !strings.Contains(errOut, "-trace applies to cluster mode") {
		t.Errorf("stderr = %q", errOut)
	}
}

// TestClusterQueryTrace is the acceptance scenario: -trace against a
// real owner cluster prints the per-exchange span table for every
// protocol.
func TestClusterQueryTrace(t *testing.T) {
	owners := startOwnerCluster(t, 2)
	for _, proto := range []string{"ta", "bpa", "bpa2", "tput", "tput-a"} {
		code, out, errOut := capture(t, queryEntry,
			"-owners", owners, "-k", "3", "-protocol", proto, "-trace")
		if code != 0 {
			t.Errorf("-protocol %s -trace: exit %d: %s", proto, code, errOut)
			continue
		}
		if !strings.Contains(out, "trace (") || !strings.Contains(out, "exchanges):") {
			t.Errorf("-protocol %s: output missing the span table:\n%s", proto, out)
			continue
		}
		// Every protocol's trace names at least one concrete span row
		// with the serving replica (index 0: flat topology).
		if !strings.Contains(out, "kind") || !strings.Contains(out, "round") {
			t.Errorf("-protocol %s: span table missing headers:\n%s", proto, out)
		}
	}
}

// TestDaemonLoggerLevels: the -log-level values parse, "off" discards,
// and unknown levels are rejected by both daemons' flag paths.
func TestDaemonLoggerLevels(t *testing.T) {
	var buf bytes.Buffer
	for _, lvl := range []string{"debug", "info", "warn", "warning", "error", "off", "none", ""} {
		if _, err := newDaemonLogger(lvl, &buf); err != nil {
			t.Errorf("level %q rejected: %v", lvl, err)
		}
	}
	if _, err := newDaemonLogger("zzz", &buf); err == nil {
		t.Error("unknown log level accepted")
	}
	log, _ := newDaemonLogger("off", &buf)
	log.Error("must be discarded")
	if buf.Len() != 0 {
		t.Errorf("off level still wrote %q", buf.String())
	}
	log, _ = newDaemonLogger("warn", &buf)
	log.Info("hidden")
	if buf.Len() != 0 {
		t.Errorf("warn level leaked info: %q", buf.String())
	}
	log.Warn("session evicted", "sid", "s1")
	if out := buf.String(); !strings.Contains(out, "session evicted") || !strings.Contains(out, "sid=s1") {
		t.Errorf("warn output = %q", out)
	}

	if _, err := buildOwner([]string{"-gen", "uniform", "-n", "50", "-m", "2", "-log-level", "zzz"}, io.Discard); err == nil {
		t.Error("owner accepted unknown log level")
	}
	if _, err := buildServe([]string{"-gen", "uniform", "-n", "50", "-m", "2", "-log-level", "zzz"}, &buf); err == nil {
		t.Error("serve accepted unknown log level")
	}
}

// TestPprofMux: the opt-in debug mux serves the pprof index and the
// daemons thread the -pprof flag through.
func TestPprofMux(t *testing.T) {
	ts := httptest.NewServer(pprofMux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index: status %d body %q", resp.StatusCode, body)
	}

	var errBuf bytes.Buffer
	d, err := buildOwner([]string{"-gen", "uniform", "-n", "50", "-m", "2", "-pprof", "localhost:6161", "-log-level", "off"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if d.pprofAddr != "localhost:6161" {
		t.Errorf("owner pprof addr = %q", d.pprofAddr)
	}
	sd, err := buildServe([]string{"-gen", "uniform", "-n", "50", "-m", "2", "-pprof", "localhost:6161", "-log-level", "off"}, &errBuf)
	if err != nil {
		t.Fatal(err)
	}
	if sd.pprofAddr != "localhost:6161" {
		t.Errorf("serve pprof addr = %q", sd.pprofAddr)
	}
}
