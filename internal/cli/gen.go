package cli

import (
	"flag"
	"fmt"
	"io"
	"os"

	"topk"
	"topk/internal/gen"
)

// parseGenKind maps a -kind/-gen flag value to the generator family
// shared by topk-gen, topk-serve and topk-owner.
func parseGenKind(name string) (gen.Kind, error) {
	switch name {
	case "uniform":
		return gen.Uniform, nil
	case "gaussian":
		return gen.Gaussian, nil
	case "correlated":
		return gen.Correlated, nil
	default:
		return 0, fmt.Errorf("unknown database kind %q (uniform, gaussian, correlated)", name)
	}
}

// Gen is the topk-gen entry point: it generates a synthetic database
// (paper Section 6.1 families) and writes it to a file.
func Gen(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topk-gen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kindFlag = fs.String("kind", "uniform", "database family: uniform, gaussian, correlated")
		n        = fs.Int("n", 100_000, "items per list")
		m        = fs.Int("m", 8, "number of lists")
		alpha    = fs.Float64("alpha", 0.01, "correlation strength for -kind correlated (0 < alpha <= 1)")
		theta    = fs.Float64("theta", 0, "Zipf exponent for correlated scores (0 = paper default 0.7)")
		seed     = fs.Int64("seed", 1, "RNG seed")
		out      = fs.String("o", "", "output path (required)")
		asCSV    = fs.Bool("csv", false, "write CSV column form instead of binary")
		asStripe = fs.Bool("stripe", false, "write the disk-backed stripe format instead of binary (for topk-owner -stripe)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *out == "" {
		fmt.Fprintln(stderr, "topk-gen: missing -o output path")
		return 1
	}
	if *asCSV && *asStripe {
		fmt.Fprintln(stderr, "topk-gen: use only one of -csv and -stripe")
		return 1
	}
	kind, err := parseGenKind(*kindFlag)
	if err != nil {
		fmt.Fprintf(stderr, "topk-gen: %v\n", err)
		return 1
	}

	db, err := topk.Generate(topk.GenSpec{
		Kind: topk.GenKind(kind), N: *n, M: *m, Alpha: *alpha, Theta: *theta, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(stderr, "topk-gen: generate: %v\n", err)
		return 1
	}

	if *asStripe {
		if err := db.SaveStripeFile(*out); err != nil {
			fmt.Fprintf(stderr, "topk-gen: save stripe: %v\n", err)
			return 1
		}
	} else if *asCSV {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "topk-gen: create: %v\n", err)
			return 1
		}
		if err := db.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(stderr, "topk-gen: write csv: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "topk-gen: close: %v\n", err)
			return 1
		}
	} else {
		if err := db.SaveFile(*out); err != nil {
			fmt.Fprintf(stderr, "topk-gen: save: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "wrote %s database: n=%d m=%d -> %s\n", *kindFlag, db.N(), db.M(), *out)
	return 0
}
