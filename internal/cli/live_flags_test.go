package cli

import (
	"os"
	"strings"
	"testing"
)

// TestLiveFlagValidation pins the live plane's CLI contract: every
// nonsensical flag combination fails loudly, naming the offending
// flags, instead of being silently ignored or half-applied.
func TestLiveFlagValidation(t *testing.T) {
	t.Run("query", func(t *testing.T) {
		cases := []struct {
			name    string
			args    []string
			wantErr string // substring the stderr message must contain
		}{
			{"follow without serve", []string{"-follow"},
				"-follow needs -serve"},
			{"serve without follow", []string{"-serve", "http://localhost:8080"},
				"needs -follow"},
			{"query without follow", []string{"-query", "hot"},
				"needs -follow"},
			{"follow with db", []string{"-follow", "-serve", "http://x", "-db", "a.topk"},
				"-db does not apply with -follow"},
			{"follow with csv", []string{"-follow", "-serve", "http://x", "-csv", "a.csv"},
				"-csv does not apply with -follow"},
			{"follow with owners", []string{"-follow", "-serve", "http://x", "-owners", "http://y"},
				"-owners does not apply with -follow"},
			{"follow with alg", []string{"-follow", "-serve", "http://x", "-alg", "ta"},
				"-alg does not apply with -follow"},
			{"follow with compare", []string{"-follow", "-serve", "http://x", "-compare"},
				"-compare does not apply with -follow"},
			{"follow with dist", []string{"-follow", "-serve", "http://x", "-dist"},
				"-dist does not apply with -follow"},
			{"follow with explain", []string{"-follow", "-serve", "http://x", "-explain"},
				"-explain does not apply with -follow"},
			{"follow with wire", []string{"-follow", "-serve", "http://x", "-wire", "binary"},
				"-wire does not apply with -follow"},
			{"follow with policy", []string{"-follow", "-serve", "http://x", "-policy", "fastest"},
				"-policy does not apply with -follow"},
			{"follow with restart", []string{"-follow", "-serve", "http://x", "-restart", "failed"},
				"-restart does not apply with -follow"},
			{"follow with bad protocol", []string{"-follow", "-serve", "http://x", "-protocol", "zzz"},
				"protocol"},
			{"follow with bad url", []string{"-follow", "-serve", "not-a-url"},
				"URL"},
		}
		for _, tc := range cases {
			t.Run(tc.name, func(t *testing.T) {
				code, _, errOut := capture(t, queryEntry, tc.args...)
				if code == 0 {
					t.Fatalf("args %v accepted", tc.args)
				}
				if !strings.Contains(errOut, tc.wantErr) {
					t.Fatalf("stderr %q does not mention %q", errOut, tc.wantErr)
				}
			})
		}
	})

	t.Run("owner mutable with stripe", func(t *testing.T) {
		_, _, err := BuildOwnerHandler([]string{"-stripe", "a.stripe", "-mutable"}, os.Stderr)
		if err == nil {
			t.Fatal("-mutable with -stripe accepted")
		}
		for _, want := range []string{"-mutable", "-stripe", "read-only"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	})

	t.Run("serve live without owners", func(t *testing.T) {
		var stderr strings.Builder
		_, _, err := BuildServeHandler([]string{"-gen", "uniform", "-n", "20", "-m", "2", "-live"}, &stderr)
		if err == nil {
			t.Fatal("-live without -owners accepted")
		}
		for _, want := range []string{"-live", "-owners"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("error %q does not mention %q", err, want)
			}
		}
	})
}
