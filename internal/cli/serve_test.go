package cli

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topk"
)

func TestBuildServeHandlerGen(t *testing.T) {
	var stderr strings.Builder
	h, addr, err := BuildServeHandler([]string{"-gen", "uniform", "-n", "50", "-m", "3", "-addr", "127.0.0.1:0"}, &stderr)
	if err != nil {
		t.Fatalf("err = %v (stderr: %s)", err, stderr.String())
	}
	if addr != "127.0.0.1:0" {
		t.Errorf("addr = %q", addr)
	}

	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/topk?k=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Items []struct {
			Score float64 `json:"score"`
		} `json:"items"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Items) != 5 {
		t.Errorf("items = %+v", body.Items)
	}
}

func TestBuildServeHandlerFromFile(t *testing.T) {
	db, err := topk.Generate(topk.GenSpec{Kind: topk.GenUniform, N: 30, M: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "db.topk")
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	var stderr strings.Builder
	h, _, err := BuildServeHandler([]string{"-db", path}, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestBuildServeHandlerErrors(t *testing.T) {
	var stderr strings.Builder
	cases := [][]string{
		{},                              // no source
		{"-gen", "zzz"},                 // bad kind
		{"-gen", "uniform", "-db", "x"}, // conflicting sources
		{"-db", filepath.Join(os.TempDir(), "does-not-exist.topk")},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, _, err := BuildServeHandler(args, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestBuildServeHandlerClusterTopology: topk-serve's -owners accepts the
// replica syntax and /v1/dist runs against the replicated cluster.
func TestBuildServeHandlerClusterTopology(t *testing.T) {
	topo := startReplicatedOwners(t)
	var stderr strings.Builder
	h, _, err := BuildServeHandler([]string{
		"-gen", "uniform", "-n", "400", "-m", "2", "-seed", "11",
		"-owners", topo, "-policy", "round-robin",
	}, &stderr)
	if err != nil {
		t.Fatalf("err = %v (stderr: %s)", err, stderr.String())
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/v1/dist?k=4&protocol=tput")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body struct {
		Items []struct {
			Item int `json:"item"`
		} `json:"items"`
		Net struct {
			Messages int64 `json:"messages"`
		} `json:"net"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Items) != 4 || body.Net.Messages == 0 {
		t.Errorf("dist over replicated cluster = %+v", body)
	}

	// Malformed topology and unknown policy fail the build.
	for _, args := range [][]string{
		{"-gen", "uniform", "-n", "400", "-m", "2", "-seed", "11", "-owners", "a||b"},
		{"-gen", "uniform", "-n", "400", "-m", "2", "-seed", "11", "-owners", topo, "-policy", "zzz"},
	} {
		if _, _, err := BuildServeHandler(args, &stderr); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
