package cli

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// capture invokes a CLI entry point and returns exit code, stdout and
// stderr contents.
func capture(t *testing.T, fn func(args []string, stdout, stderr *bytes.Buffer) int, args ...string) (int, string, string) {
	t.Helper()
	var out, errBuf bytes.Buffer
	code := fn(args, &out, &errBuf)
	return code, out.String(), errBuf.String()
}

func benchEntry(args []string, stdout, stderr *bytes.Buffer) int { return Bench(args, stdout, stderr) }
func genEntry(args []string, stdout, stderr *bytes.Buffer) int   { return Gen(args, stdout, stderr) }
func queryEntry(args []string, stdout, stderr *bytes.Buffer) int { return Query(args, stdout, stderr) }

func TestBenchList(t *testing.T) {
	code, out, _ := capture(t, benchEntry, "-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"fig3", "fig17", "example1", "trackers", "dht"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestBenchExample1(t *testing.T) {
	code, out, errOut := capture(t, benchEntry, "-exp", "example1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	// The table reproduces the paper's Example 2/3 counts.
	for _, want := range []string{"TA", "BPA2", "54", "27"} {
		if !strings.Contains(out, want) {
			t.Errorf("example1 output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchUnknownExperiment(t *testing.T) {
	code, _, errOut := capture(t, benchEntry, "-exp", "nope")
	if code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(errOut, "unknown experiment") {
		t.Errorf("stderr = %q", errOut)
	}
}

func TestBenchBadFlag(t *testing.T) {
	code, _, _ := capture(t, benchEntry, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestBenchOutDirAndPlot(t *testing.T) {
	dir := t.TempDir()
	code, out, errOut := capture(t, benchEntry,
		"-exp", "example2", "-out", dir, "-plot")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "legend:") {
		t.Error("plot not rendered")
	}
	for _, f := range []string{"example2.txt", "example2.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
}

func TestBenchCSVMode(t *testing.T) {
	code, out, errOut := capture(t, benchEntry, "-exp", "table1", "-csv")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	if !strings.HasPrefix(out, "parameter,") {
		t.Errorf("csv output = %q", out)
	}
}

func TestGenAndQueryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.topk")
	code, out, errOut := capture(t, genEntry,
		"-kind", "uniform", "-n", "300", "-m", "3", "-o", dbPath)
	if code != 0 {
		t.Fatalf("gen exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "n=300 m=3") {
		t.Errorf("gen output = %q", out)
	}

	code, out, errOut = capture(t, queryEntry, "-db", dbPath, "-k", "5")
	if code != 0 {
		t.Fatalf("query exit %d: %s", code, errOut)
	}
	for _, want := range []string{"top-5 by sum using BPA2", "accesses:", "execution cost="} {
		if !strings.Contains(out, want) {
			t.Errorf("query output missing %q:\n%s", want, out)
		}
	}

	// Compare mode lists all five algorithms.
	code, out, _ = capture(t, queryEntry, "-db", dbPath, "-k", "5", "-compare")
	if code != 0 {
		t.Fatalf("compare exit %d", code)
	}
	for _, alg := range []string{"BPA2", "BPA", "TA", "FA", "Naive"} {
		if !strings.Contains(out, alg) {
			t.Errorf("compare missing %s", alg)
		}
	}

	// Distributed mode lists protocols.
	code, out, _ = capture(t, queryEntry, "-db", dbPath, "-k", "5", "-dist")
	if code != 0 {
		t.Fatalf("dist exit %d", code)
	}
	for _, p := range []string{"dist-bpa2", "tput"} {
		if !strings.Contains(out, p) {
			t.Errorf("dist missing %s", p)
		}
	}

	// Explain mode prints a trace.
	code, out, _ = capture(t, queryEntry, "-db", dbPath, "-k", "3", "-alg", "ta", "-explain")
	if code != 0 {
		t.Fatalf("explain exit %d", code)
	}
	if !strings.Contains(out, "execution trace") || !strings.Contains(out, "STOP") {
		t.Errorf("explain output missing trace:\n%s", out)
	}

	// Weighted scoring.
	code, out, _ = capture(t, queryEntry, "-db", dbPath, "-k", "2", "-scoring", "wsum", "-weights", "1,2,0")
	if code != 0 {
		t.Fatalf("wsum exit %d", code)
	}
	if !strings.Contains(out, "wsum(3)") {
		t.Errorf("wsum output:\n%s", out)
	}

	// Approximation flag.
	code, _, _ = capture(t, queryEntry, "-db", dbPath, "-k", "5", "-approx", "1.5")
	if code != 0 {
		t.Fatalf("approx exit %d", code)
	}
}

func TestQueryAllAlgorithmFlags(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.topk")
	if code, _, _ := capture(t, genEntry, "-n", "100", "-m", "3", "-o", dbPath); code != 0 {
		t.Fatal("gen failed")
	}
	for _, alg := range []string{"bpa2", "bpa", "ta", "fa", "naive", "BPA"} {
		code, out, errOut := capture(t, queryEntry, "-db", dbPath, "-k", "3", "-alg", alg)
		if code != 0 {
			t.Errorf("-alg %s: exit %d: %s", alg, code, errOut)
		}
		if !strings.Contains(out, "top-3") {
			t.Errorf("-alg %s: output missing answers", alg)
		}
	}
	for _, sc := range []string{"avg", "min", "max"} {
		code, _, errOut := capture(t, queryEntry, "-db", dbPath, "-k", "3", "-scoring", sc)
		if code != 0 {
			t.Errorf("-scoring %s: exit %d: %s", sc, code, errOut)
		}
	}
}

func TestGenCSVOutput(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "db.csv")
	code, _, errOut := capture(t, genEntry,
		"-kind", "gaussian", "-n", "50", "-m", "2", "-csv", "-o", csvPath)
	if code != 0 {
		t.Fatalf("gen exit %d: %s", code, errOut)
	}
	code, out, errOut := capture(t, queryEntry, "-csv", csvPath, "-k", "3")
	if code != 0 {
		t.Fatalf("query exit %d: %s", code, errOut)
	}
	if !strings.Contains(out, "n=50, m=2") {
		t.Errorf("query output = %q", out)
	}
}

func TestGenErrors(t *testing.T) {
	if code, _, _ := capture(t, genEntry); code == 0 {
		t.Error("missing -o accepted")
	}
	if code, _, _ := capture(t, genEntry, "-kind", "zzz", "-o", "x"); code == 0 {
		t.Error("unknown kind accepted")
	}
	if code, _, _ := capture(t, genEntry, "-kind", "correlated", "-alpha", "7", "-o", filepath.Join(t.TempDir(), "x")); code == 0 {
		t.Error("bad alpha accepted")
	}
}

// startOwnerCluster builds owner handlers for every list of a shared
// generated database and serves them with httptest, returning the
// -owners flag value.
func startOwnerCluster(t *testing.T, m int) string {
	t.Helper()
	urls := make([]string, m)
	for i := 0; i < m; i++ {
		handler, addr, err := BuildOwnerHandler([]string{
			"-gen", "uniform", "-n", "400", "-m", fmt.Sprint(m), "-seed", "11",
			"-list", fmt.Sprint(i), "-addr", "localhost:7777",
		}, os.Stderr)
		if err != nil {
			t.Fatal(err)
		}
		if addr != "localhost:7777" {
			t.Fatalf("addr = %q", addr)
		}
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return strings.Join(urls, ",")
}

func TestOwnerHandlerAndClusterQuery(t *testing.T) {
	owners := startOwnerCluster(t, 3)

	code, out, errOut := capture(t, queryEntry, "-owners", owners, "-k", "5")
	if code != 0 {
		t.Fatalf("cluster query exit %d: %s", code, errOut)
	}
	for _, want := range []string{"top-5 by sum using dist-bpa2 over 3 owners", "messages=", "per-owner messages:"} {
		if !strings.Contains(out, want) {
			t.Errorf("cluster output missing %q:\n%s", want, out)
		}
	}

	// Every protocol runs over the same cluster (owner state resets
	// between queries).
	for _, proto := range []string{"ta", "bpa", "bpa2", "tput", "tput-a"} {
		code, out, errOut := capture(t, queryEntry, "-owners", owners, "-k", "3", "-protocol", proto)
		if code != 0 {
			t.Errorf("-protocol %s: exit %d: %s", proto, code, errOut)
			continue
		}
		if !strings.Contains(out, "top-3") {
			t.Errorf("-protocol %s: output missing answers:\n%s", proto, out)
		}
	}
}

func TestOwnerErrors(t *testing.T) {
	// The input flags -db, -csv, -gen and -stripe are mutually
	// exclusive; the conflict error must name all four so the operator
	// does not have to rediscover the set by trial.
	const exclusive = "use exactly one of -db, -csv, -gen and -stripe"
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of the error; empty means any error
	}{
		{name: "no input", args: []string{}, wantErr: "-db, -csv, -gen or -stripe"},
		{name: "db plus csv", args: []string{"-db", "a", "-csv", "b"}, wantErr: exclusive},
		{name: "gen plus db", args: []string{"-gen", "uniform", "-db", "x"}, wantErr: exclusive},
		{name: "stripe plus db", args: []string{"-stripe", "a", "-db", "b"}, wantErr: exclusive},
		{name: "stripe plus csv", args: []string{"-stripe", "a", "-csv", "b"}, wantErr: exclusive},
		{name: "stripe plus gen", args: []string{"-stripe", "a", "-gen", "uniform"}, wantErr: exclusive},
		{name: "all four", args: []string{"-db", "a", "-csv", "b", "-gen", "uniform", "-stripe", "c"}, wantErr: exclusive},
		{name: "stripe-cache without stripe", args: []string{"-gen", "uniform", "-stripe-cache", "1024"}, wantErr: "-stripe-cache"},
		{name: "negative stripe-cache", args: []string{"-stripe", "a", "-stripe-cache", "-1"}, wantErr: "non-negative"},
		{name: "unknown gen kind", args: []string{"-gen", "zzz"}},
		{name: "list out of range", args: []string{"-gen", "uniform", "-n", "50", "-m", "2", "-list", "5"}},
		{name: "missing db file", args: []string{"-db", "definitely-absent.topk"}},
		{name: "missing stripe file", args: []string{"-stripe", "definitely-absent.stripe"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := BuildOwnerHandler(tc.args, os.Stderr)
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestGenStripeExclusive(t *testing.T) {
	code, _, errOut := capture(t, genEntry,
		"-n", "10", "-m", "2", "-o", filepath.Join(t.TempDir(), "x"), "-csv", "-stripe")
	if code == 0 {
		t.Fatal("-csv with -stripe accepted")
	}
	if !strings.Contains(errOut, "-csv") || !strings.Contains(errOut, "-stripe") {
		t.Fatalf("stderr %q does not name both flags", errOut)
	}
}

// TestOwnerStripeWarmRestart is the end-to-end warm-restart scenario:
// topk-gen -stripe emits the file, a cluster of topk-owner -stripe
// processes serves a distributed query over it, the owners are killed,
// and restarted owners reopen the same file — no reload — and pass the
// dial handshake and a fresh query with the same answers.
func TestOwnerStripeWarmRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "db.stripe")
	if code, _, errOut := capture(t, genEntry,
		"-n", "300", "-m", "2", "-seed", "7", "-stripe", "-o", path); code != 0 {
		t.Fatalf("gen -stripe: %s", errOut)
	}

	serve := func() (string, func()) {
		urls := make([]string, 2)
		var servers []*httptest.Server
		for i := range urls {
			handler, _, err := BuildOwnerHandler([]string{
				"-stripe", path, "-stripe-cache", "1048576", "-list", fmt.Sprint(i),
			}, os.Stderr)
			if err != nil {
				t.Fatalf("owner %d over stripe: %v", i, err)
			}
			srv := httptest.NewServer(handler)
			servers = append(servers, srv)
			urls[i] = srv.URL
		}
		stop := func() {
			for _, s := range servers {
				s.Close()
			}
		}
		return strings.Join(urls, ","), stop
	}

	owners, stop := serve()
	code, firstOut, errOut := capture(t, queryEntry, "-owners", owners, "-k", "4")
	if code != 0 {
		t.Fatalf("query over stripe owners: %s", errOut)
	}
	stop() // kill the owners

	owners, stop = serve() // restart: reopens the same file
	defer stop()
	code, secondOut, errOut := capture(t, queryEntry, "-owners", owners, "-k", "4")
	if code != 0 {
		t.Fatalf("query after restart: %s", errOut)
	}
	// Everything but the wall-clock elapsed field must be identical —
	// answers, network message counts, per-owner traffic.
	strip := regexp.MustCompile(`elapsed=\S+`)
	if a, b := strip.ReplaceAllString(firstOut, ""), strip.ReplaceAllString(secondOut, ""); a != b {
		t.Fatalf("answers changed across restart:\nbefore: %s\nafter:  %s", firstOut, secondOut)
	}
}

func TestClusterQueryErrors(t *testing.T) {
	owners := startOwnerCluster(t, 2)
	cases := [][]string{
		{"-owners", owners, "-db", "also.topk"},          // remote plus local input
		{"-owners", owners, "-protocol", "zzz"},          // unknown protocol
		{"-owners", owners, "-k", "0"},                   // bad k
		{"-owners", "localhost:1", "-k", "3"},            // unreachable owner
		{"-owners", owners, "-k", "3", "-scoring", "zz"}, // unknown scoring
		{"-owners", owners, "-k", "3", "-explain"},       // local-mode flag
		{"-owners", owners, "-k", "3", "-compare"},       // local-mode flag
		{"-owners", owners, "-k", "3", "-alg", "ta"},     // local-mode flag
		{"-owners", owners, "-k", "3", "-parallel"},      // local-mode flag
		{"-owners", owners, "-k", "3", "-approx", "1.5"}, // local-mode flag
		{"-owners", owners, "-k", "3", "-dist"},          // local-mode flag
	}
	for _, args := range cases {
		if code, _, _ := capture(t, queryEntry, args...); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.topk")
	if code, _, _ := capture(t, genEntry, "-n", "20", "-m", "2", "-o", dbPath); code != 0 {
		t.Fatal("gen failed")
	}
	cases := [][]string{
		{},                                                     // no input
		{"-db", dbPath, "-csv", "also.csv"},                    // both inputs
		{"-db", filepath.Join(dir, "absent")},                  // missing file
		{"-db", dbPath, "-alg", "zzz"},                         // unknown algorithm
		{"-db", dbPath, "-scoring", "zzz"},                     // unknown scoring
		{"-db", dbPath, "-scoring", "wsum"},                    // wsum without weights
		{"-db", dbPath, "-k", "0"},                             // bad k
		{"-db", dbPath, "-scoring", "wsum", "-weights", "1,x"}, // bad weight
	}
	for _, args := range cases {
		if code, _, _ := capture(t, queryEntry, args...); code == 0 {
			t.Errorf("args %v accepted", args)
		}
	}
}

// startReplicatedOwners serves list 0 of a shared generated database
// from two owner processes (labelled a and b) and list 1 from one,
// returning the -owners topology string.
func startReplicatedOwners(t *testing.T) string {
	t.Helper()
	serve := func(list int, replica string) string {
		handler, _, err := BuildOwnerHandler([]string{
			"-gen", "uniform", "-n", "400", "-m", "2", "-seed", "11",
			"-list", fmt.Sprint(list), "-replica", replica,
		}, os.Stderr)
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(handler)
		t.Cleanup(srv.Close)
		return srv.URL
	}
	return serve(0, "a") + "|" + serve(0, "b") + "," + serve(1, "a")
}

// TestClusterQueryReplicated: the |-separated replica syntax, routing
// policies and the -verbose health table all work end to end, and the
// answers match the flat single-owner cluster.
func TestClusterQueryReplicated(t *testing.T) {
	topo := startReplicatedOwners(t)
	for _, policy := range []string{"primary", "round-robin", "fastest"} {
		code, out, errOut := capture(t, queryEntry,
			"-owners", topo, "-k", "5", "-policy", policy, "-verbose")
		if code != 0 {
			t.Fatalf("policy %s: exit %d: %s", policy, code, errOut)
		}
		for _, want := range []string{
			"top-5 by sum using dist-bpa2 over 2 owners",
			"recovery: restarts=0 handoffs=0 failed-replicas=0 backpressure=0",
			"replica health (policy " + policy + ")",
			"list 0 replica 1",
			"healthy",
		} {
			if !strings.Contains(out, want) {
				t.Errorf("policy %s: output missing %q:\n%s", policy, want, out)
			}
		}
	}
	// -restart parses and a healthy run stays quiet about recovery
	// unless -verbose asked for it.
	code, out, errOut := capture(t, queryEntry, "-owners", topo, "-k", "5", "-restart", "failed")
	if code != 0 {
		t.Fatalf("-restart failed: exit %d: %s", code, errOut)
	}
	if strings.Contains(out, "recovery:") {
		t.Errorf("healthy non-verbose run printed recovery line:\n%s", out)
	}
	// Unknown policy fails loudly.
	if code, _, _ := capture(t, queryEntry, "-owners", topo, "-k", "3", "-policy", "zzz"); code == 0 {
		t.Error("unknown policy accepted")
	}
	// Unknown restart policy fails loudly.
	if code, _, _ := capture(t, queryEntry, "-owners", topo, "-k", "3", "-restart", "zzz"); code == 0 {
		t.Error("unknown restart policy accepted")
	}
	// Cluster-only flags without -owners fail loudly instead of being
	// silently ignored.
	if code, _, _ := capture(t, queryEntry, "-db", "x", "-restart", "failed"); code == 0 {
		t.Error("-restart without -owners accepted")
	}
	// Malformed topology fails loudly, naming the offending list/token.
	code, _, errOut = capture(t, queryEntry, "-owners", "a||b", "-k", "3")
	if code == 0 {
		t.Error("malformed topology accepted")
	}
	for _, want := range []string{"list 0", "token 1"} {
		if !strings.Contains(errOut, want) {
			t.Errorf("topology error missing %q: %s", want, errOut)
		}
	}
}
