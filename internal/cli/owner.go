package cli

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"

	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/store"
	"topk/internal/store/stripe"
	"topk/internal/transport"
)

// ownerDaemon is a built topk-owner ready to listen.
type ownerDaemon struct {
	handler   http.Handler
	addr      string
	pprofAddr string
	log       *slog.Logger
}

// BuildOwnerHandler parses topk-owner's flags and returns the owner's
// HTTP handler plus the listen address. Split from Owner so tests can
// exercise flag handling and the handler without binding a socket.
func BuildOwnerHandler(args []string, stderr io.Writer) (http.Handler, string, error) {
	d, err := buildOwner(args, stderr)
	if err != nil {
		return nil, "", err
	}
	return d.handler, d.addr, nil
}

// buildOwner is BuildOwnerHandler plus the daemon trimmings: the
// structured logger (wired into the owner's session lifecycle events)
// and the opt-in pprof listener address.
func buildOwner(args []string, stderr io.Writer) (*ownerDaemon, error) {
	fs := flag.NewFlagSet("topk-owner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dbPath   = fs.String("db", "", "binary database file (from topk-gen)")
		csvPath  = fs.String("csv", "", "CSV database file (column form)")
		stripeP  = fs.String("stripe", "", "stripe database file (from topk-gen -stripe); served from disk through a bounded cache, reopened warm on restart")
		stripeC  = fs.Int64("stripe-cache", 0, "stripe-cache budget in bytes for -stripe (0 means the 64 MiB default)")
		genKind  = fs.String("gen", "", "own a list of a generated database instead: uniform, gaussian, correlated")
		n        = fs.Int("n", 10_000, "items per list for -gen")
		m        = fs.Int("m", 2, "lists for -gen")
		alpha    = fs.Float64("alpha", 0.01, "correlation strength for -gen correlated")
		seed     = fs.Int64("seed", 1, "RNG seed for -gen (every owner of a cluster must use the same)")
		index    = fs.Int("list", 0, "index of the list this owner serves")
		replica  = fs.String("replica", "", "replica label within this list's replica set (informational; advertised in /stats)")
		addr     = fs.String("addr", "localhost:9000", "listen address")
		ttl      = fs.Duration("session-ttl", transport.DefaultSessionTTL, "evict sessions idle for this long (0 disables); reclaims sessions abandoned by crashed originators")
		logLevel = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, off")
		pprofA   = fs.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	logger, err := newDaemonLogger(*logLevel, stderr)
	if err != nil {
		return nil, err
	}

	inputs := 0
	for _, v := range []string{*dbPath, *csvPath, *genKind, *stripeP} {
		if v != "" {
			inputs++
		}
	}
	if inputs > 1 {
		return nil, fmt.Errorf("use exactly one of -db, -csv, -gen and -stripe")
	}
	if *stripeC != 0 && *stripeP == "" {
		return nil, fmt.Errorf("-stripe-cache only applies with -stripe")
	}
	if *stripeC < 0 {
		return nil, fmt.Errorf("-stripe-cache %d must be non-negative", *stripeC)
	}

	var db *list.Database
	switch {
	case *genKind != "":
		var kind gen.Kind
		kind, err = parseGenKind(*genKind)
		if err != nil {
			return nil, err
		}
		db, err = gen.Generate(gen.Spec{Kind: kind, N: *n, M: *m, Alpha: *alpha, Seed: *seed})
	case *dbPath != "":
		db, err = store.LoadFile(*dbPath)
	case *csvPath != "":
		var f *os.File
		f, err = os.Open(*csvPath)
		if err == nil {
			db, err = store.ReadColumnsCSV(f)
			f.Close()
		}
	case *stripeP != "":
		// The stripe DB (and its descriptor) lives for the daemon's
		// lifetime: only the footer is resident now; data blocks are
		// paged in per query, which is what makes restarts warm.
		var sdb *stripe.DB
		sdb, err = stripe.Open(*stripeP, stripe.Options{CacheBytes: *stripeC})
		if err == nil {
			db, err = sdb.Database()
		}
	default:
		return nil, fmt.Errorf("missing input: use one of -db, -csv, -gen or -stripe")
	}
	if err != nil {
		return nil, err
	}

	srv, err := transport.NewServer(db, *index)
	if err != nil {
		return nil, err
	}
	srv.Owner().SetSessionTTL(*ttl)
	srv.Owner().SetReplicaID(*replica)
	srv.Owner().SetLogger(logger)
	return &ownerDaemon{handler: srv.Handler(), addr: *addr, pprofAddr: *pprofA, log: logger}, nil
}

// Owner is the topk-owner entry point: it loads (or generates) a
// database, takes ownership of one of its lists, and serves the
// distributed protocols' owner side over HTTP until terminated.
func Owner(args []string, stdout, stderr io.Writer) int {
	d, err := buildOwner(args, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "topk-owner: %v\n", err)
		return 1
	}
	startPprof(d.pprofAddr, d.log)
	fmt.Fprintf(stdout, "topk-owner: listening on http://%s (endpoints: /rpc/{kind}?sid= /session/open /session/close /session/sync /session/state /stats /healthz /metrics)\n", d.addr)
	if err := http.ListenAndServe(d.addr, d.handler); err != nil {
		fmt.Fprintf(stderr, "topk-owner: %v\n", err)
		return 1
	}
	return 0
}
