package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"topk/internal/chaos"
	"topk/internal/gen"
	"topk/internal/list"
	"topk/internal/store"
	"topk/internal/store/stripe"
	"topk/internal/transport"
)

// ownerDaemon is a built topk-owner ready to listen.
type ownerDaemon struct {
	handler   http.Handler
	addr      string
	pprofAddr string
	log       *slog.Logger
	// owner is the served owner; its sessions are torn down on a
	// graceful drain.
	owner *transport.Owner
	// drain bounds how long in-flight requests may run after SIGTERM.
	drain time.Duration
	// verified marks a -verify run: the integrity check already passed
	// and the daemon should report success instead of serving.
	verified bool
}

// BuildOwnerHandler parses topk-owner's flags and returns the owner's
// HTTP handler plus the listen address. Split from Owner so tests can
// exercise flag handling and the handler without binding a socket.
func BuildOwnerHandler(args []string, stderr io.Writer) (http.Handler, string, error) {
	d, err := buildOwner(args, stderr)
	if err != nil {
		return nil, "", err
	}
	return d.handler, d.addr, nil
}

// buildOwner is BuildOwnerHandler plus the daemon trimmings: the
// structured logger (wired into the owner's session lifecycle events)
// and the opt-in pprof listener address.
func buildOwner(args []string, stderr io.Writer) (*ownerDaemon, error) {
	fs := flag.NewFlagSet("topk-owner", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dbPath   = fs.String("db", "", "binary database file (from topk-gen)")
		csvPath  = fs.String("csv", "", "CSV database file (column form)")
		stripeP  = fs.String("stripe", "", "stripe database file (from topk-gen -stripe); served from disk through a bounded cache, reopened warm on restart")
		stripeC  = fs.Int64("stripe-cache", 0, "stripe-cache budget in bytes for -stripe (0 means the 64 MiB default)")
		genKind  = fs.String("gen", "", "own a list of a generated database instead: uniform, gaussian, correlated")
		n        = fs.Int("n", 10_000, "items per list for -gen")
		m        = fs.Int("m", 2, "lists for -gen")
		alpha    = fs.Float64("alpha", 0.01, "correlation strength for -gen correlated")
		seed     = fs.Int64("seed", 1, "RNG seed for -gen (every owner of a cluster must use the same)")
		index    = fs.Int("list", 0, "index of the list this owner serves")
		replica  = fs.String("replica", "", "replica label within this list's replica set (informational; advertised in /stats)")
		addr     = fs.String("addr", "localhost:9000", "listen address")
		ttl      = fs.Duration("session-ttl", transport.DefaultSessionTTL, "evict sessions idle for this long (0 disables); reclaims sessions abandoned by crashed originators")
		maxInfl  = fs.Int("max-inflight", 0, "admission control: bound on concurrently served exchanges; excess is shed with a typed retry-after answer (0 means the default, negative disables)")
		maxSess  = fs.Int("max-sessions", 0, "bound on concurrently open query sessions; opens beyond it are shed with retry-after (0 means the default, negative disables)")
		mutable  = fs.Bool("mutable", false, "serve the list as updatable: accept the live plane's feed-sequenced update batches and notification filters")
		verify   = fs.Bool("verify", false, "with -stripe: verify every block checksum against the file, report, and exit without serving")
		drain    = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget: on SIGTERM stop admitting, let in-flight requests finish for this long, then close")
		chaosS   = fs.String("chaos", "", "inject server-side faults from a seeded schedule, e.g. seed=42,all=0.02,delay=0.1 (keys: seed, delay, drop, stall, truncate, corrupt, err5xx, partition, all, delay-dur, partition-dur, stall-cap, data-plane-only); testing only")
		logLevel = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, off")
		pprofA   = fs.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	logger, err := newDaemonLogger(*logLevel, stderr)
	if err != nil {
		return nil, err
	}

	inputs := 0
	for _, v := range []string{*dbPath, *csvPath, *genKind, *stripeP} {
		if v != "" {
			inputs++
		}
	}
	if inputs > 1 {
		return nil, fmt.Errorf("use exactly one of -db, -csv, -gen and -stripe")
	}
	if *stripeC != 0 && *stripeP == "" {
		return nil, fmt.Errorf("-stripe-cache only applies with -stripe")
	}
	if *stripeC < 0 {
		return nil, fmt.Errorf("-stripe-cache %d must be non-negative", *stripeC)
	}
	if *verify && *stripeP == "" {
		return nil, fmt.Errorf("-verify only applies with -stripe")
	}
	if *mutable && *stripeP != "" {
		return nil, fmt.Errorf("-mutable does not apply with -stripe: stripe-backed owners are read-only")
	}

	var db *list.Database
	switch {
	case *genKind != "":
		var kind gen.Kind
		kind, err = parseGenKind(*genKind)
		if err != nil {
			return nil, err
		}
		db, err = gen.Generate(gen.Spec{Kind: kind, N: *n, M: *m, Alpha: *alpha, Seed: *seed})
	case *dbPath != "":
		db, err = store.LoadFile(*dbPath)
	case *csvPath != "":
		var f *os.File
		f, err = os.Open(*csvPath)
		if err == nil {
			db, err = store.ReadColumnsCSV(f)
			f.Close()
		}
	case *stripeP != "":
		// The stripe DB (and its descriptor) lives for the daemon's
		// lifetime: only the footer is resident now; data blocks are
		// paged in per query, which is what makes restarts warm.
		var sdb *stripe.DB
		sdb, err = stripe.Open(*stripeP, stripe.Options{CacheBytes: *stripeC})
		if err == nil && *verify {
			// Integrity check mode: walk every block against its stored
			// checksum and exit without serving.
			verr := sdb.Verify()
			sdb.Close()
			if verr != nil {
				return nil, fmt.Errorf("stripe verify %s: %w", *stripeP, verr)
			}
			return &ownerDaemon{log: logger, verified: true}, nil
		}
		if err == nil {
			db, err = sdb.Database()
		}
	default:
		return nil, fmt.Errorf("missing input: use one of -db, -csv, -gen or -stripe")
	}
	if err != nil {
		return nil, err
	}

	srv, err := transport.NewServer(db, *index)
	if err != nil {
		return nil, err
	}
	srv.Owner().SetSessionTTL(*ttl)
	srv.Owner().SetReplicaID(*replica)
	srv.Owner().SetLogger(logger)
	if *maxInfl != 0 {
		srv.Owner().SetMaxInflight(*maxInfl)
	}
	if *maxSess != 0 {
		srv.Owner().SetMaxSessions(*maxSess)
	}
	if *mutable {
		if err := srv.Owner().EnableUpdates(); err != nil {
			return nil, err
		}
	}
	handler := http.Handler(srv.Handler())
	if *chaosS != "" {
		ccfg, cerr := chaos.ParseSpec(*chaosS)
		if cerr != nil {
			return nil, cerr
		}
		logger.Warn("chaos fault injection armed", "spec", *chaosS)
		handler = chaos.Handler(handler, chaos.New(ccfg))
	}
	return &ownerDaemon{handler: handler, addr: *addr, pprofAddr: *pprofA, log: logger,
		owner: srv.Owner(), drain: *drain}, nil
}

// Owner is the topk-owner entry point: it loads (or generates) a
// database, takes ownership of one of its lists, and serves the
// distributed protocols' owner side over HTTP until terminated.
func Owner(args []string, stdout, stderr io.Writer) int {
	d, err := buildOwner(args, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "topk-owner: %v\n", err)
		return 1
	}
	if d.verified {
		fmt.Fprintln(stdout, "topk-owner: stripe verify: ok")
		return 0
	}
	startPprof(d.pprofAddr, d.log)
	onStarted := func(addr string) {
		fmt.Fprintf(stdout, "topk-owner: listening on http://%s (endpoints: /rpc/{kind}?sid= /session/open /session/close /session/sync /session/state /stats /healthz /metrics)\n", addr)
	}
	// SIGTERM drains gracefully: stop admitting, let in-flight requests
	// finish within the drain budget, then discard leftover sessions.
	onDrained := func() { d.owner.CloseAllSessions() }
	if err := serveUntilShutdown(context.Background(), d.addr, d.handler, d.drain, d.log, onStarted, onDrained); err != nil {
		fmt.Fprintf(stderr, "topk-owner: %v\n", err)
		return 1
	}
	return 0
}
