package cli

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"topk"
	"topk/internal/live"
)

// followQuery is topk-query's -follow mode: it subscribes to a standing
// continuous top-k query on a topk-serve -live instance over SSE and
// renders the ranking as it changes. The stream starts with a full
// snapshot, so following is immediately useful; if the server drops the
// subscription (query unregistered, or this consumer fell behind),
// re-running -follow resumes from the then-current snapshot.
func followQuery(base, name, proto, scoring, weights string, k int, stdout, stderr io.Writer) int {
	// Validate locally before dialing, so typos fail fast with the same
	// messages the other modes give.
	if _, err := topk.ParseProtocol(proto); err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	if _, err := buildScoring(scoring, weights); err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	u, err := url.Parse(base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		fmt.Fprintf(stderr, "topk-query: bad -serve URL %q (want e.g. http://localhost:8080)\n", base)
		return 1
	}
	u.Path = strings.TrimSuffix(u.Path, "/") + "/v1/live"
	params := u.Query()
	params.Set("k", strconv.Itoa(k))
	params.Set("protocol", proto)
	params.Set("scoring", scoring)
	if weights != "" {
		params.Set("weights", weights)
	}
	if name != "" {
		params.Set("query", name)
	}
	u.RawQuery = params.Encode()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0
		}
		fmt.Fprintf(stderr, "topk-query: follow %s: %v\n", base, err)
		return 1
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			fmt.Fprintf(stderr, "topk-query: follow: %s (%s)\n", eb.Error, resp.Status)
		} else {
			fmt.Fprintf(stderr, "topk-query: follow: %s\n", resp.Status)
		}
		return 1
	}

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "hello":
				var h struct {
					Query string `json:"query"`
				}
				if json.Unmarshal([]byte(data), &h) == nil {
					fmt.Fprintf(stdout, "following standing query %q on %s (Ctrl-C stops)\n", h.Query, base)
				}
			case "delta":
				var d live.Delta
				if err := json.Unmarshal([]byte(data), &d); err != nil {
					fmt.Fprintf(stderr, "topk-query: follow: bad delta: %v\n", err)
					return 1
				}
				renderDelta(stdout, d)
			case "bye":
				fmt.Fprintln(stdout, "stream closed by server (query unregistered, or this consumer fell behind); re-run -follow to resume from a snapshot")
				return 0
			}
		}
	}
	if ctx.Err() != nil {
		return 0
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(stderr, "topk-query: follow: %v\n", err)
		return 1
	}
	return 0
}

// renderDelta prints one live ranking revision: the full current
// ranking, then what changed since the previous revision in the monitor
// vocabulary (entered / left / moved).
func renderDelta(w io.Writer, d live.Delta) {
	if d.Snapshot {
		fmt.Fprintf(w, "\n== %s revision %d (snapshot) ==\n", d.Query, d.Revision)
	} else {
		fmt.Fprintf(w, "\n== %s revision %d (%d changes) ==\n", d.Query, d.Revision, len(d.Changes))
	}
	for i, it := range d.Items {
		fmt.Fprintf(w, "%3d. item-%-12d score=%.6g\n", i+1, int(it.Item), it.Score)
	}
	for _, c := range d.Changes {
		switch c.Kind {
		case topk.ChangeEntered:
			fmt.Fprintf(w, "  entered item-%s at rank %d\n", c.Key, c.Rank)
		case topk.ChangeLeft:
			fmt.Fprintf(w, "  left    item-%s (was rank %d)\n", c.Key, c.PrevRank)
		case topk.ChangeMoved:
			fmt.Fprintf(w, "  moved   item-%s rank %d -> %d\n", c.Key, c.PrevRank, c.Rank)
		}
	}
}
