package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"time"

	"topk"
	"topk/internal/gen"
	"topk/internal/live"
	"topk/internal/serve"
)

// serveDaemon is a built topk-serve ready to listen.
type serveDaemon struct {
	handler   http.Handler
	addr      string
	pprofAddr string
	log       *slog.Logger
	// cluster is the dialed owner cluster when -owners is set; closed
	// after a graceful drain. nil for the in-process simulation.
	cluster *topk.Cluster
	// drain bounds how long in-flight requests may run after SIGTERM.
	drain time.Duration
}

// BuildServeHandler parses topk-serve's flags and returns the HTTP
// handler plus the listen address. Split from Serve so tests can exercise
// flag handling and the handler without binding a socket.
func BuildServeHandler(args []string, stderr io.Writer) (http.Handler, string, error) {
	d, err := buildServe(args, stderr)
	if err != nil {
		return nil, "", err
	}
	return d.handler, d.addr, nil
}

// buildServe is BuildServeHandler plus the daemon trimmings: the
// structured logger (handed to the cluster client for recovery events)
// and the opt-in pprof listener address.
func buildServe(args []string, stderr io.Writer) (*serveDaemon, error) {
	fs := flag.NewFlagSet("topk-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dbPath   = fs.String("db", "", "binary database file (from topk-gen)")
		csvPath  = fs.String("csv", "", "CSV database file (column form)")
		genKind  = fs.String("gen", "", "serve a generated database instead: uniform, gaussian, correlated")
		n        = fs.Int("n", 10_000, "items per list for -gen")
		m        = fs.Int("m", 8, "lists for -gen")
		alpha    = fs.Float64("alpha", 0.01, "correlation strength for -gen correlated")
		seed     = fs.Int64("seed", 1, "RNG seed for -gen")
		addr     = fs.String("addr", "localhost:8080", "listen address")
		owners   = fs.String("owners", "", "cluster topology (lists comma-separated, replicas |-separated); /v1/dist then queries this remote cluster (one session per request) instead of the in-process simulation")
		policy   = fs.String("policy", "primary", "replica routing policy for -owners: primary, round-robin, fastest")
		restart  = fs.String("restart", "off", "default restart policy for -owners queries: off, failed, always (per-request restart= overrides)")
		liveOn   = fs.Bool("live", false, "enable the live plane (/v1/live SSE subscriptions, /v1/update feed ingestion); requires -owners with mutable owners")
		drain    = fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget: on SIGTERM stop admitting, let in-flight requests finish for this long, then close")
		logLevel = fs.String("log-level", "info", "structured log level on stderr: debug, info, warn, error, off")
		pprofA   = fs.String("pprof", "", "serve net/http/pprof on this extra address (e.g. localhost:6060); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	logger, err := newDaemonLogger(*logLevel, stderr)
	if err != nil {
		return nil, err
	}

	var db *topk.Database
	switch {
	case *genKind != "":
		if *dbPath != "" || *csvPath != "" {
			return nil, fmt.Errorf("use only one of -gen, -db and -csv")
		}
		var kind gen.Kind
		kind, err = parseGenKind(*genKind)
		if err != nil {
			return nil, err
		}
		db, err = topk.Generate(topk.GenSpec{Kind: topk.GenKind(kind), N: *n, M: *m, Alpha: *alpha, Seed: *seed})
	default:
		db, err = loadDB(*dbPath, *csvPath)
	}
	if err != nil {
		return nil, err
	}

	var cluster *topk.Cluster
	if *owners != "" {
		topo, terr := topk.ParseTopology(*owners)
		if terr != nil {
			return nil, terr
		}
		pol, perr := topk.ParseRoutingPolicy(*policy)
		if perr != nil {
			return nil, perr
		}
		rp, rerr := topk.ParseRestartPolicy(*restart)
		if rerr != nil {
			return nil, rerr
		}
		cluster, err = topk.DialClusterConfig(context.Background(), topk.ClusterConfig{
			Topology: topo, Policy: pol, Restart: rp, Logger: logger,
		})
		if err != nil {
			return nil, fmt.Errorf("dial owner cluster: %w", err)
		}
	}
	if *liveOn && cluster == nil {
		return nil, fmt.Errorf("-live requires -owners: standing queries run against a cluster of mutable owners")
	}
	srv, err := serve.NewWithCluster(db, cluster)
	if err != nil {
		return nil, err
	}
	if *liveOn {
		co, lerr := live.New(cluster)
		if lerr != nil {
			return nil, lerr
		}
		if lerr := srv.EnableLive(co); lerr != nil {
			return nil, lerr
		}
	}
	return &serveDaemon{handler: srv.Handler(), addr: *addr, pprofAddr: *pprofA, log: logger,
		cluster: cluster, drain: *drain}, nil
}

// Serve is the topk-serve entry point: it loads (or generates) a database
// and serves the JSON API until the process is terminated.
func Serve(args []string, stdout, stderr io.Writer) int {
	d, err := buildServe(args, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "topk-serve: %v\n", err)
		return 1
	}
	startPprof(d.pprofAddr, d.log)
	onStarted := func(addr string) {
		fmt.Fprintf(stdout, "topk-serve: listening on http://%s (endpoints: /healthz /v1/info /v1/topk /v1/dist /v1/explain /v1/health /v1/live /v1/update /metrics)\n", addr)
	}
	// SIGTERM drains gracefully: in-flight API requests finish within
	// the drain budget, then the owner-cluster connection (prober,
	// pooled sockets) is released.
	onDrained := func() {
		if d.cluster != nil {
			d.cluster.Close()
		}
	}
	if err := serveUntilShutdown(context.Background(), d.addr, d.handler, d.drain, d.log, onStarted, onDrained); err != nil {
		fmt.Fprintf(stderr, "topk-serve: %v\n", err)
		return 1
	}
	return 0
}
