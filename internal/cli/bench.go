// Package cli implements the command-line tools as testable functions.
// Each command takes its argument vector and output writers and returns
// a process exit code; the mains under cmd/ are one-line wrappers.
package cli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"topk/internal/exp"
)

// Bench is the topk-bench entry point: it regenerates the paper's tables
// and figures (see internal/exp for the registry).
func Bench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topk-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		expFlag  = fs.String("exp", "all", "comma-separated experiment ids, or 'all'")
		listFlag = fs.Bool("list", false, "list available experiments and exit")
		scale    = fs.Float64("scale", 1.0, "scale factor applied to database sizes")
		n        = fs.Int("n", 0, "items per list (default: paper's 100,000)")
		k        = fs.Int("k", 0, "answers per query (default: paper's 20)")
		m        = fs.Int("m", 0, "number of lists where fixed (default: paper's 8)")
		trials   = fs.Int("trials", 0, "random databases averaged per point (default 3)")
		seed     = fs.Int64("seed", 0, "base RNG seed (default 1)")
		outDir   = fs.String("out", "", "also write each table as <out>/<id>.txt and <id>.csv")
		csvOnly  = fs.Bool("csv", false, "print CSV instead of aligned text")
		plot     = fs.Bool("plot", false, "also draw each table as an ASCII chart")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, e := range exp.Registry() {
			fig := e.Figure
			if fig == "" {
				fig = "ablation"
			}
			fmt.Fprintf(stdout, "%-10s %-10s %s\n", e.ID, fig, e.Title)
		}
		return 0
	}

	cfg := exp.Config{
		N: *n, K: *k, M: *m,
		Trials: *trials, Seed: *seed, Scale: *scale,
	}

	var ids []string
	if *expFlag == "all" {
		ids = exp.IDs()
	} else {
		ids = strings.Split(*expFlag, ",")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "topk-bench: create output directory: %v\n", err)
			return 1
		}
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		e, ok := exp.ByID(id)
		if !ok {
			fmt.Fprintf(stderr, "topk-bench: unknown experiment %q (use -list)\n", id)
			return 1
		}
		start := time.Now()
		tbl, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "topk-bench: %s: %v\n", id, err)
			return 1
		}
		if *csvOnly {
			if err := tbl.RenderCSV(stdout); err != nil {
				fmt.Fprintf(stderr, "topk-bench: %s: render: %v\n", id, err)
				return 1
			}
		} else {
			if err := tbl.Render(stdout); err != nil {
				fmt.Fprintf(stderr, "topk-bench: %s: render: %v\n", id, err)
				return 1
			}
			if *plot {
				if err := tbl.RenderChart(stdout, 16); err != nil {
					fmt.Fprintf(stderr, "topk-bench: %s: chart: %v\n", id, err)
					return 1
				}
			}
			fmt.Fprintf(stdout, "(%s in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *outDir != "" {
			if err := writeFile(filepath.Join(*outDir, id+".txt"), tbl.Render); err != nil {
				fmt.Fprintf(stderr, "topk-bench: %s: %v\n", id, err)
				return 1
			}
			if err := writeFile(filepath.Join(*outDir, id+".csv"), tbl.RenderCSV); err != nil {
				fmt.Fprintf(stderr, "topk-bench: %s: %v\n", id, err)
				return 1
			}
		}
	}
	return 0
}

func writeFile(path string, render func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
