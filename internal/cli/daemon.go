package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"
)

// newDaemonLogger builds the daemons' structured logger from the
// -log-level flag: a text handler writing to w at the given level, or
// a discard logger for "off". The daemons log recovery-relevant events
// — session open/close/evict, replica health transitions, mirror
// promotions and handoffs — with session/list/replica attributes.
func newDaemonLogger(level string, w io.Writer) (*slog.Logger, error) {
	var l slog.Level
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "off", "none":
		return slog.New(slog.DiscardHandler), nil
	case "debug":
		l = slog.LevelDebug
	case "", "info":
		l = slog.LevelInfo
	case "warn", "warning":
		l = slog.LevelWarn
	case "error":
		l = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, error or off)", level)
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: l})), nil
}

// pprofMux is the opt-in debug mux served on the -pprof address:
// net/http/pprof's handlers on a dedicated mux, so profiling never
// rides on the data-plane listener and stays off unless asked for.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveUntilShutdown runs handler on addr until SIGTERM/SIGINT (or ctx
// cancellation), then drains gracefully: the listener closes at once so
// no new exchange is admitted, in-flight requests get up to drain to
// finish, and only then does onDrained run (session teardown, cluster
// close). A drain that overruns its budget is cut off hard. Returns nil
// on a clean signal-driven shutdown; onStarted (if non-nil) runs once
// the listener is bound, with the bound address.
func serveUntilShutdown(ctx context.Context, addr string, handler http.Handler, drain time.Duration, log *slog.Logger, onStarted func(string), onDrained func()) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	// The signal handler is installed before onStarted announces the
	// bound address: from the moment a caller can reach the daemon, a
	// SIGTERM drains instead of killing.
	sctx, stop := signal.NotifyContext(ctx, syscall.SIGTERM, os.Interrupt)
	defer stop()
	if onStarted != nil {
		onStarted(ln.Addr().String())
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		// The listener died on its own; nothing to drain.
		return err
	case <-sctx.Done():
	}
	stop() // restore default signal disposition: a second signal kills
	log.Info("shutdown signal received; draining", "drain", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		log.Warn("drain budget exhausted; closing connections", "err", err)
		srv.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if onDrained != nil {
		onDrained()
	}
	log.Info("shutdown complete")
	return nil
}

// startPprof serves the debug mux on addr in the background when the
// -pprof flag was set; empty means off. A failed debug listener is
// logged, not fatal — the data plane is unaffected either way.
func startPprof(addr string, log *slog.Logger) {
	if addr == "" {
		return
	}
	log.Info("pprof debug listener", "addr", addr)
	go func() {
		if err := http.ListenAndServe(addr, pprofMux()); err != nil {
			log.Error("pprof listener failed", "addr", addr, "err", err)
		}
	}()
}
