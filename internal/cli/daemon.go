package cli

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
)

// newDaemonLogger builds the daemons' structured logger from the
// -log-level flag: a text handler writing to w at the given level, or
// a discard logger for "off". The daemons log recovery-relevant events
// — session open/close/evict, replica health transitions, mirror
// promotions and handoffs — with session/list/replica attributes.
func newDaemonLogger(level string, w io.Writer) (*slog.Logger, error) {
	var l slog.Level
	switch strings.ToLower(strings.TrimSpace(level)) {
	case "off", "none":
		return slog.New(slog.DiscardHandler), nil
	case "debug":
		l = slog.LevelDebug
	case "", "info":
		l = slog.LevelInfo
	case "warn", "warning":
		l = slog.LevelWarn
	case "error":
		l = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn, error or off)", level)
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: l})), nil
}

// pprofMux is the opt-in debug mux served on the -pprof address:
// net/http/pprof's handlers on a dedicated mux, so profiling never
// rides on the data-plane listener and stays off unless asked for.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// startPprof serves the debug mux on addr in the background when the
// -pprof flag was set; empty means off. A failed debug listener is
// logged, not fatal — the data plane is unaffected either way.
func startPprof(addr string, log *slog.Logger) {
	if addr == "" {
		return
	}
	log.Info("pprof debug listener", "addr", addr)
	go func() {
		if err := http.ListenAndServe(addr, pprofMux()); err != nil {
			log.Error("pprof listener failed", "addr", addr, "err", err)
		}
	}()
}
