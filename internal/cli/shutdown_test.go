package cli

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeUntilShutdownMidRequest pins the graceful-shutdown contract:
// a SIGTERM arriving while a request is in flight lets that request
// finish (within the drain budget) and runs the drained hook, instead
// of cutting the connection. The daemons' SIGTERM path IS this helper.
func TestServeUntilShutdownMidRequest(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "done")
	})

	addrCh := make(chan string, 1)
	drained := make(chan struct{})
	served := make(chan error, 1)
	log := slog.New(slog.DiscardHandler)
	go func() {
		served <- serveUntilShutdown(context.Background(), "127.0.0.1:0", handler,
			5*time.Second, log,
			func(addr string) { addrCh <- addr },
			func() { close(drained) })
	}()
	addr := <-addrCh

	result := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + addr + "/")
		if err != nil {
			result <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		result <- fmt.Sprintf("%d %s", resp.StatusCode, body)
	}()

	// SIGTERM lands while the request is blocked inside the handler.
	<-entered
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	// Give the drain a moment to begin, then let the handler finish.
	time.Sleep(50 * time.Millisecond)
	close(release)

	select {
	case got := <-result:
		if got != "200 done" {
			t.Fatalf("in-flight request got %q, want \"200 done\"", got)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveUntilShutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilShutdown never returned")
	}
	select {
	case <-drained:
	default:
		t.Fatal("onDrained never ran")
	}
	// The listener is gone: new work is refused, not accepted.
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Fatal("post-shutdown request was accepted")
	}
}

// TestServeUntilShutdownCtxCancel covers the non-signal path tests and
// embedders use: canceling the parent context drains the same way.
func TestServeUntilShutdownCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	served := make(chan error, 1)
	go func() {
		served <- serveUntilShutdown(ctx, "127.0.0.1:0", http.NotFoundHandler(),
			time.Second, slog.New(slog.DiscardHandler),
			func(addr string) { addrCh <- addr }, nil)
	}()
	addr := <-addrCh
	if resp, err := http.Get("http://" + addr + "/"); err != nil {
		t.Fatalf("probe request: %v", err)
	} else {
		resp.Body.Close()
	}
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serveUntilShutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serveUntilShutdown never returned after cancel")
	}
}

// genStripe writes a small stripe database file via the topk-gen CLI.
func genStripe(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "db.stripe")
	if code, _, errOut := capture(t, genEntry,
		"-n", "300", "-m", "2", "-seed", "7", "-stripe", "-o", path); code != 0 {
		t.Fatalf("gen -stripe: %s", errOut)
	}
	return path
}

// TestOwnerVerifyStripe runs the end-to-end integrity check: a clean
// stripe file verifies ok and the daemon exits without serving; the
// same file with one flipped data byte is refused with a checksum
// error.
func TestOwnerVerifyStripe(t *testing.T) {
	path := genStripe(t)

	var out, errBuf bytes.Buffer
	if code := Owner([]string{"-stripe", path, "-verify"}, &out, &errBuf); code != 0 {
		t.Fatalf("verify of clean file: exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "stripe verify: ok") {
		t.Fatalf("stdout = %q, want the ok report", out.String())
	}

	// Flip one byte inside the first entry stripe (the header is
	// smaller than 12 bytes, the footer lives at the end).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[12] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.stripe")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errBuf.Reset()
	if code := Owner([]string{"-stripe", bad, "-verify"}, &out, &errBuf); code == 0 {
		t.Fatal("verify accepted a corrupted stripe file")
	}
	if !strings.Contains(errBuf.String(), "verify") {
		t.Fatalf("stderr = %q, want a verify error", errBuf.String())
	}
}

// TestOwnerVerifyNeedsStripe pins the flag contract.
func TestOwnerVerifyNeedsStripe(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := Owner([]string{"-gen", "uniform", "-verify"}, &out, &errBuf); code == 0 {
		t.Fatal("-verify without -stripe accepted")
	}
	if !strings.Contains(errBuf.String(), "-verify") {
		t.Fatalf("stderr = %q", errBuf.String())
	}
}

// TestOwnerChaosFlag checks the -chaos spec is parsed at build time: a
// bad spec is refused before the daemon would listen, a good one
// builds.
func TestOwnerChaosFlag(t *testing.T) {
	var errBuf bytes.Buffer
	if _, err := buildOwner([]string{"-gen", "uniform", "-n", "50",
		"-chaos", "seed=1,drop=7"}, &errBuf); err == nil {
		t.Fatal("bad chaos spec accepted")
	}
	d, err := buildOwner([]string{"-gen", "uniform", "-n", "50",
		"-chaos", "seed=1,all=0.01", "-max-inflight", "4", "-max-sessions", "8"}, &errBuf)
	if err != nil {
		t.Fatalf("good chaos spec refused: %v", err)
	}
	if d.handler == nil {
		t.Fatal("no handler built")
	}
}
