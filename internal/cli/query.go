package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"topk"
)

// Query is the topk-query entry point: it runs a top-k query against a
// database file and prints answers plus access statistics.
func Query(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("topk-query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dbPath   = fs.String("db", "", "binary database file (from topk-gen)")
		csvPath  = fs.String("csv", "", "CSV database file (column form)")
		k        = fs.Int("k", 10, "number of answers")
		algFlag  = fs.String("alg", "bpa2", "algorithm: bpa2, bpa, ta, fa, naive, nra, ca")
		scoring  = fs.String("scoring", "sum", "scoring function: sum, avg, min, max, wsum")
		weights  = fs.String("weights", "", "comma-separated weights for -scoring wsum")
		theta    = fs.Float64("approx", 0, "approximation factor θ >= 1 (0 = exact)")
		par      = fs.Bool("parallel", false, "one goroutine per list owner (ta, bpa, bpa2)")
		compare  = fs.Bool("compare", false, "run every algorithm and print a comparison")
		distFlag = fs.Bool("dist", false, "run the distributed protocols and print message counts")
		owners   = fs.String("owners", "", "cluster topology for cluster mode: lists comma-separated, replicas of a list |-separated (host:a|host:b,host:c); list i's addresses must serve list i")
		proto    = fs.String("protocol", "bpa2", "distributed protocol for -owners: bpa2, bpa, ta, tput, tput-a")
		wire     = fs.String("wire", "auto", "wire codec for -owners: auto (binary when every owner supports it), json, binary")
		policy   = fs.String("policy", "primary", "replica routing policy for -owners: primary, round-robin, fastest")
		restart  = fs.String("restart", "off", "restart policy for -owners: off, failed (rerun queries that died on a failing replica), always")
		verbose  = fs.Bool("verbose", false, "with -owners, also print the per-replica health table (state, EWMA latency, failures, failovers)")
		trace    = fs.Bool("trace", false, "with -owners, trace the query and print the per-exchange span table (round, owner, replica, kind, bytes, time)")
		explain  = fs.Bool("explain", false, "print the round-by-round threshold walkthrough")
		follow   = fs.Bool("follow", false, "follow a standing live query on a topk-serve -live instance and render the ranking as it changes; needs -serve")
		serveURL = fs.String("serve", "", "base URL of the topk-serve -live instance for -follow, e.g. http://localhost:8080")
		liveName = fs.String("query", "", "standing-query name for -follow (empty derives one from k/protocol/scoring)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *follow || *serveURL != "" || *liveName != "" {
		// Live-follow mode subscribes to a server-side standing query;
		// flags of the other modes must fail loudly, not be silently
		// dropped — and the follow flags themselves only work together.
		if !*follow {
			set := "-serve"
			if *liveName != "" {
				set = "-query"
			}
			fmt.Fprintf(stderr, "topk-query: %s follows a live server; it needs -follow\n", set)
			return 1
		}
		if *serveURL == "" {
			fmt.Fprintln(stderr, "topk-query: -follow needs -serve, the URL of a topk-serve -live instance")
			return 1
		}
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "db", "csv", "owners", "alg", "approx", "parallel", "compare",
				"dist", "explain", "trace", "verbose", "wire", "policy", "restart":
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(stderr, "topk-query: -%s does not apply with -follow; the standing query runs on the -serve server\n", conflict)
			return 1
		}
		return followQuery(*serveURL, *liveName, *proto, *scoring, *weights, *k, stdout, stderr)
	}

	if *owners != "" {
		if *dbPath != "" || *csvPath != "" {
			fmt.Fprintln(stderr, "topk-query: -owners queries remote lists; drop -db/-csv")
			return 1
		}
		// Cluster mode runs exactly one distributed protocol; flags of
		// the local modes must fail loudly, not be silently dropped.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "alg", "approx", "parallel", "compare", "dist", "explain":
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(stderr, "topk-query: -%s applies to local databases; with -owners use -protocol\n", conflict)
			return 1
		}
		sc, err := buildScoring(*scoring, *weights)
		if err != nil {
			fmt.Fprintf(stderr, "topk-query: %v\n", err)
			return 1
		}
		return clusterQuery(*owners, *proto, *wire, *policy, *restart, *k, *verbose, *trace, sc, stdout, stderr)
	}

	// -restart only means something against a cluster: it is a recovery
	// policy for replica failures, which local databases cannot have.
	// -trace is cluster-only too: the local walkthrough is -explain.
	var clusterOnly string
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "restart", "policy", "wire", "trace":
			clusterOnly = f.Name
		}
	})
	if clusterOnly != "" {
		fmt.Fprintf(stderr, "topk-query: -%s applies to cluster mode; it needs -owners\n", clusterOnly)
		return 1
	}

	db, err := loadDB(*dbPath, *csvPath)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	sc, err := buildScoring(*scoring, *weights)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	// Local queries are ctx-bound too: Ctrl-C / SIGTERM cancels the run
	// at access granularity instead of killing the process mid-scan.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *compare {
		fmt.Fprintf(stdout, "%-6s  %12s  %12s  %12s  %12s  %14s  %10s\n",
			"alg", "sorted", "random", "direct", "total", "cost", "time")
		for _, alg := range topk.Algorithms() {
			res, err := db.Exec(ctx, topk.Query{K: *k, Algorithm: alg, Scoring: sc, Approximation: *theta})
			if err != nil {
				fmt.Fprintf(stderr, "topk-query: %v: %v\n", alg, err)
				return 1
			}
			s := res.Stats
			fmt.Fprintf(stdout, "%-6s  %12d  %12d  %12d  %12d  %14.0f  %10s\n",
				alg, s.SortedAccesses, s.RandomAccesses, s.DirectAccesses,
				s.TotalAccesses(), s.Cost, s.Duration.Round(1000))
		}
		return 0
	}

	if *distFlag {
		fmt.Fprintf(stdout, "%-10s  %12s  %12s  %8s\n", "protocol", "messages", "payload", "rounds")
		for _, p := range topk.Protocols() {
			res, err := db.ExecDistributed(ctx, topk.Query{K: *k, Scoring: sc}, p)
			if err != nil {
				fmt.Fprintf(stdout, "%-10s  skipped: %v\n", p, err)
				continue
			}
			fmt.Fprintf(stdout, "%-10s  %12d  %12d  %8d\n", p, res.Stats.Messages, res.Stats.Payload, res.Stats.Rounds)
		}
		return 0
	}

	alg, err := parseAlg(*algFlag)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	q := topk.Query{K: *k, Algorithm: alg, Scoring: sc, Approximation: *theta, Parallel: *par}
	var res *topk.Result
	if *explain {
		res, err = db.Explain(q, stdout)
		if err != nil {
			fmt.Fprintf(stderr, "topk-query: query: %v\n", err)
			return 1
		}
		fmt.Fprintln(stdout)
	} else {
		res, err = db.Exec(ctx, q)
		if err != nil {
			fmt.Fprintf(stderr, "topk-query: query: %v\n", err)
			return 1
		}
	}
	fmt.Fprintf(stdout, "top-%d by %s using %s (n=%d, m=%d):\n", *k, sc.Name(), alg, db.N(), db.M())
	for i, it := range res.Items {
		fmt.Fprintf(stdout, "%3d. %-16s score=%.6g\n", i+1, it.Name, it.Score)
	}
	s := res.Stats
	fmt.Fprintf(stdout, "\naccesses: sorted=%d random=%d direct=%d total=%d\n",
		s.SortedAccesses, s.RandomAccesses, s.DirectAccesses, s.TotalAccesses())
	fmt.Fprintf(stdout, "execution cost=%.0f  stop position=%d  rounds=%d  time=%s\n",
		s.Cost, s.StopPosition, s.Rounds, s.Duration.Round(1000))
	return 0
}

// clusterQuery runs one distributed protocol against real HTTP owner
// nodes (cmd/topk-owner) and prints answers plus the network profile.
// The owners string is a replica topology (lists comma-separated,
// replicas |-separated); exchanges are routed across each list's
// replicas by the chosen policy and fail over when a replica dies
// mid-query. Ctrl-C / SIGTERM cancels the in-flight query (releasing
// its owner-side session) instead of killing the process mid-exchange.
func clusterQuery(owners, proto, wire, policy, restart string, k int, verbose, trace bool, sc topk.Scoring, stdout, stderr io.Writer) int {
	p, err := topk.ParseProtocol(proto)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	topo, err := topk.ParseTopology(owners)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	pol, err := topk.ParseRoutingPolicy(policy)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	rp, err := topk.ParseRestartPolicy(restart)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cluster, err := topk.DialClusterConfig(ctx, topk.ClusterConfig{
		Topology: topo,
		Policy:   pol,
		Wire:     wire,
		Restart:  rp,
	})
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: %v\n", err)
		return 1
	}
	defer cluster.Close()
	var opts []topk.ExecOption
	if trace {
		opts = append(opts, topk.WithTrace())
	}
	res, err := cluster.Exec(ctx, topk.Query{K: k, Scoring: sc}, p, opts...)
	if err != nil {
		fmt.Fprintf(stderr, "topk-query: query: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "top-%d by %s using %s over %d owners (n=%d):\n",
		k, sc.Name(), p, cluster.M(), cluster.N())
	for i, it := range res.Items {
		fmt.Fprintf(stdout, "%3d. item-%-12d score=%.6g\n", i+1, int(it.Item), it.Score)
	}
	s := res.Stats
	fmt.Fprintf(stdout, "\nnetwork: messages=%d payload=%d rounds=%d exchanges=%d accesses=%d elapsed=%s\n",
		s.Net.Messages, s.Net.Payload, s.Net.Rounds, s.Net.Exchanges, s.Net.TotalAccesses, s.Net.Elapsed.Round(100))
	fmt.Fprintf(stdout, "per-owner messages: %v\n", s.Net.PerOwner)
	renderRecovery(stdout, s.Recovery, verbose)
	if trace {
		renderTrace(stdout, res.Stats.Trace)
	}
	if verbose {
		fmt.Fprintf(stdout, "\nreplica health (policy %s):\n", pol)
		for _, h := range cluster.Health() {
			state := "healthy"
			if !h.Healthy {
				state = "DOWN"
			}
			fmt.Fprintf(stdout, "  list %d replica %d %-28s %-7s breaker=%-9s ewma=%-10s failures=%d failovers=%d\n",
				h.List, h.Replica, h.URL, state, h.Breaker, h.Latency.Round(time.Microsecond), h.Failures, h.Failovers)
		}
	}
	return 0
}

// renderRecovery is the one renderer of the recovery line, shared by
// the verbose path (always print it) and the default path (print it
// only when a failure was absorbed: the answer was correct, but the
// operator should learn a replica is dying). It reports whether the
// line was printed.
func renderRecovery(w io.Writer, rec topk.RecoveryStats, verbose bool) bool {
	if !verbose && rec == (topk.RecoveryStats{}) {
		return false
	}
	fmt.Fprintf(w, "recovery: restarts=%d handoffs=%d failed-replicas=%d backpressure=%d\n",
		rec.Restarts, rec.Handoffs, rec.FailedReplicas, rec.Backpressure)
	return true
}

// renderTrace prints the traced run's per-exchange span table in
// session order — the explain-style view of where the query's bytes
// and time went, one row per wire exchange.
func renderTrace(w io.Writer, spans []topk.TraceSpan) {
	fmt.Fprintf(w, "\ntrace (%d exchanges):\n", len(spans))
	fmt.Fprintf(w, "%4s  %5s  %5s  %7s  %-7s  %4s  %8s  %8s  %10s  %s\n",
		"seq", "round", "owner", "replica", "kind", "msgs", "req-B", "resp-B", "time", "notes")
	for _, sp := range spans {
		var notes []string
		if sp.Attempts > 1 {
			notes = append(notes, fmt.Sprintf("attempts=%d", sp.Attempts))
		}
		if sp.FailedOver {
			notes = append(notes, "failover")
		}
		if sp.Handoff {
			notes = append(notes, "handoff")
		}
		if sp.Err != "" {
			notes = append(notes, "err="+sp.Err)
		}
		fmt.Fprintf(w, "%4d  %5d  %5d  %7d  %-7s  %4d  %8d  %8d  %10s  %s\n",
			sp.Seq, sp.Round, sp.Owner, sp.Replica, sp.Kind, sp.Msgs,
			sp.ReqBytes, sp.RespBytes, sp.Duration.Round(time.Microsecond), strings.Join(notes, " "))
	}
}

func loadDB(dbPath, csvPath string) (*topk.Database, error) {
	switch {
	case dbPath != "" && csvPath != "":
		return nil, fmt.Errorf("use only one of -db and -csv")
	case dbPath != "":
		db, err := topk.LoadFile(dbPath)
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", dbPath, err)
		}
		return db, nil
	case csvPath != "":
		f, err := os.Open(csvPath)
		if err != nil {
			return nil, fmt.Errorf("open %s: %w", csvPath, err)
		}
		defer f.Close()
		db, err := topk.ReadCSV(f)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", csvPath, err)
		}
		return db, nil
	default:
		return nil, fmt.Errorf("missing -db or -csv input")
	}
}

func parseAlg(s string) (topk.Algorithm, error) { return topk.ParseAlgorithm(s) }

func buildScoring(name, weightsCSV string) (topk.Scoring, error) {
	ws, err := parseWeights(weightsCSV)
	if err != nil {
		return nil, err
	}
	return topk.ParseScoring(name, ws)
}

func parseWeights(weightsCSV string) ([]float64, error) {
	if weightsCSV == "" {
		return nil, nil
	}
	parts := strings.Split(weightsCSV, ",")
	ws := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight %q: %w", p, err)
		}
		ws[i] = v
	}
	return ws, nil
}
