package bestpos

import "topk/internal/btree"

// BPlusTree is the Section 5.2.2 tracker: seen positions live in a B+tree
// whose leaves are chained, and a cursor advances along the chain to track
// the best position. Space is O(u) for u seen positions; storing a
// position and updating the best position costs O(log u) amortized.
//
// Preferable to the bit array when the list is much larger than the number
// of accesses (paper: when n >= c * u * log u).
type BPlusTree struct {
	tree *btree.Tree
	n    int
	bp   int
}

// NewBPlusTree returns a B+tree tracker for a list of n positions.
func NewBPlusTree(n int) *BPlusTree {
	if n < 0 {
		n = 0
	}
	return &BPlusTree{tree: btree.New(0), n: n}
}

// MarkSeen implements Tracker.
func (b *BPlusTree) MarkSeen(p int) {
	checkPos(p, b.n)
	if !b.tree.Insert(p) {
		return
	}
	if p != b.bp+1 {
		return
	}
	// Walk the leaf chain from the new position while the next stored
	// position is consecutive — the paper's bp := bp.next loop.
	it := b.tree.SeekGE(p)
	for it.Valid() && it.Key() == b.bp+1 {
		b.bp++
		it.Next()
	}
}

// Best implements Tracker.
func (b *BPlusTree) Best() int { return b.bp }

// Seen implements Tracker.
func (b *BPlusTree) Seen(p int) bool {
	checkPos(p, b.n)
	return b.tree.Contains(p)
}

// Count implements Tracker.
func (b *BPlusTree) Count() int { return b.tree.Len() }
