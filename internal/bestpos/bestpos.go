// Package bestpos manages the "best position" of a sorted list, the core
// bookkeeping of BPA and BPA2 (paper Sections 4, 5.2).
//
// During query execution some set P of positions of a list has been seen
// (under sorted, random, or direct access). The best position bp is the
// greatest position such that every position in [1, bp] is in P — best
// because the algorithm is certain nothing above it is unseen. The paper
// proposes two implementations, a bit array (Section 5.2.1) and a B+tree
// with a linked-leaf cursor (Section 5.2.2); both are implemented here,
// together with a deliberately naive sorted-set baseline used as an
// ablation and as a test oracle.
package bestpos

import "fmt"

// Tracker records seen positions of one list and maintains the best
// position. Positions are 1-based. Implementations are not safe for
// concurrent use; each list owner has exactly one tracker per query.
type Tracker interface {
	// MarkSeen records that position p was accessed. Idempotent.
	MarkSeen(p int)
	// Best returns the current best position (0 if position 1 is unseen).
	Best() int
	// Seen reports whether position p has been recorded.
	Seen(p int) bool
	// Count returns the number of distinct positions recorded.
	Count() int
}

// Kind selects a Tracker implementation.
type Kind uint8

const (
	// BitArrayKind is the bit-array approach of Section 5.2.1:
	// O(n) bits, O(n/u) amortized time per access over u accesses.
	BitArrayKind Kind = iota
	// BPlusTreeKind is the B+tree approach of Section 5.2.2:
	// O(u) space, O(log u) amortized time per access.
	BPlusTreeKind
	// SortedSetKind is the naive approach dismissed in Section 5.2:
	// a scan of the seen set, O(u^2) total. Oracle/ablation only.
	SortedSetKind
	// IntervalKind is a run-length tracker (not in the paper): maximal
	// seen runs in endpoint hash maps, O(1) amortized per access, O(u)
	// space. Ablation point for the Section 5.2 trade-off.
	IntervalKind
)

// String returns the tracker-kind name used in experiment tables.
func (k Kind) String() string {
	switch k {
	case BitArrayKind:
		return "bitarray"
	case BPlusTreeKind:
		return "b+tree"
	case SortedSetKind:
		return "sortedset"
	case IntervalKind:
		return "interval"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// New returns a tracker of the given kind for a list of n positions.
func New(kind Kind, n int) Tracker {
	switch kind {
	case BitArrayKind:
		return NewBitArray(n)
	case BPlusTreeKind:
		return NewBPlusTree(n)
	case SortedSetKind:
		return NewSortedSet(n)
	case IntervalKind:
		return NewInterval(n)
	default:
		panic(fmt.Sprintf("bestpos: unknown tracker kind %d", kind))
	}
}

// Kinds lists all implementations, for tests and ablation benchmarks.
func Kinds() []Kind {
	return []Kind{BitArrayKind, BPlusTreeKind, SortedSetKind, IntervalKind}
}

func checkPos(p, n int) {
	if p < 1 || p > n {
		panic(fmt.Sprintf("bestpos: position %d out of range [1,%d]", p, n))
	}
}
