package bestpos

import "sort"

// SortedSet is the naive method the paper dismisses in Section 5.2:
// maintain the seen positions in a sorted slice and rescan to find the
// best position. Total cost O(u^2) over u accesses. It is kept as a test
// oracle and as the baseline of the tracker ablation benchmark.
type SortedSet struct {
	seen []int
	n    int
}

// NewSortedSet returns a naive tracker for a list of n positions.
func NewSortedSet(n int) *SortedSet {
	if n < 0 {
		n = 0
	}
	return &SortedSet{n: n}
}

// MarkSeen implements Tracker.
func (s *SortedSet) MarkSeen(p int) {
	checkPos(p, s.n)
	i := sort.SearchInts(s.seen, p)
	if i < len(s.seen) && s.seen[i] == p {
		return
	}
	s.seen = append(s.seen, 0)
	copy(s.seen[i+1:], s.seen[i:])
	s.seen[i] = p
}

// Best implements Tracker. It rescans the set: the best position is the
// length of the longest prefix 1,2,3,... present in the sorted slice.
func (s *SortedSet) Best() int {
	bp := 0
	for i, p := range s.seen {
		if p != i+1 {
			break
		}
		bp = p
	}
	return bp
}

// Seen implements Tracker.
func (s *SortedSet) Seen(p int) bool {
	checkPos(p, s.n)
	i := sort.SearchInts(s.seen, p)
	return i < len(s.seen) && s.seen[i] == p
}

// Count implements Tracker.
func (s *SortedSet) Count() int { return len(s.seen) }
