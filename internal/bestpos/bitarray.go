package bestpos

// BitArray is the Section 5.2.1 tracker: one bit per list position plus a
// best-position variable that is only ever advanced. Determining the best
// positions over a whole query costs O(n) total, i.e. O(n/u) amortized per
// access; space is n bits.
type BitArray struct {
	bits  []uint64
	n     int
	bp    int
	count int
}

// NewBitArray returns a bit-array tracker for a list of n positions.
func NewBitArray(n int) *BitArray {
	if n < 0 {
		n = 0
	}
	return &BitArray{bits: make([]uint64, (n+63)/64), n: n}
}

// MarkSeen implements Tracker.
func (b *BitArray) MarkSeen(p int) {
	checkPos(p, b.n)
	w, m := uint(p-1)/64, uint64(1)<<(uint(p-1)%64)
	if b.bits[w]&m != 0 {
		return
	}
	b.bits[w] |= m
	b.count++
	// Advance bp over the newly contiguous prefix (paper's while loop).
	for b.bp < b.n && b.seen(b.bp+1) {
		b.bp++
	}
}

func (b *BitArray) seen(p int) bool {
	w, m := uint(p-1)/64, uint64(1)<<(uint(p-1)%64)
	return b.bits[w]&m != 0
}

// Best implements Tracker.
func (b *BitArray) Best() int { return b.bp }

// Seen implements Tracker.
func (b *BitArray) Seen(p int) bool {
	checkPos(p, b.n)
	return b.seen(p)
}

// Count implements Tracker.
func (b *BitArray) Count() int { return b.count }
