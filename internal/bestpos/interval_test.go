package bestpos

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestIntervalRunMerging exercises every merge case of MarkSeen: new
// singleton, right-extend, left-extend, and bridging two runs.
func TestIntervalRunMerging(t *testing.T) {
	iv := NewInterval(10)

	iv.MarkSeen(3) // singleton {3}
	if got := iv.Runs(); got != 1 {
		t.Fatalf("after {3}: Runs = %d, want 1", got)
	}
	iv.MarkSeen(5) // {3}, {5}
	if got := iv.Runs(); got != 2 {
		t.Fatalf("after {3,5}: Runs = %d, want 2", got)
	}
	iv.MarkSeen(4) // bridge -> {3..5}
	if got := iv.Runs(); got != 1 {
		t.Fatalf("after bridge: Runs = %d, want 1", got)
	}
	iv.MarkSeen(2) // left-extend -> {2..5}
	iv.MarkSeen(6) // right-extend -> {2..6}
	if got := iv.Runs(); got != 1 {
		t.Fatalf("after extends: Runs = %d, want 1", got)
	}
	if iv.Best() != 0 {
		t.Fatalf("Best = %d with position 1 unseen, want 0", iv.Best())
	}
	iv.MarkSeen(1) // attaches the prefix -> Best jumps to 6
	if iv.Best() != 6 {
		t.Fatalf("Best = %d, want 6", iv.Best())
	}
	if iv.Count() != 6 {
		t.Fatalf("Count = %d, want 6", iv.Count())
	}
}

// TestIntervalRunsInvariant: the number of runs always equals the number
// of maximal consecutive blocks of the seen set.
func TestIntervalRunsInvariant(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%120
		iv := NewInterval(n)
		marked := make([]bool, n+2)
		for i := 0; i < 2*n; i++ {
			p := 1 + rng.Intn(n)
			iv.MarkSeen(p)
			marked[p] = true
			runs := 0
			for q := 1; q <= n; q++ {
				if marked[q] && !marked[q-1] {
					runs++
				}
			}
			if iv.Runs() != runs {
				t.Logf("Runs = %d, want %d", iv.Runs(), runs)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestIntervalDescendingMarks marks n..1; every mark extends the single
// suffix run until position 1 completes the prefix.
func TestIntervalDescendingMarks(t *testing.T) {
	const n = 40
	iv := NewInterval(n)
	for p := n; p >= 2; p-- {
		iv.MarkSeen(p)
		if iv.Runs() != 1 {
			t.Fatalf("marking %d: Runs = %d, want 1", p, iv.Runs())
		}
		if iv.Best() != 0 {
			t.Fatalf("marking %d: Best = %d, want 0", p, iv.Best())
		}
	}
	iv.MarkSeen(1)
	if iv.Best() != n {
		t.Fatalf("Best = %d, want %d", iv.Best(), n)
	}
}
