package bestpos

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		BitArrayKind:  "bitarray",
		BPlusTreeKind: "b+tree",
		SortedSetKind: "sortedset",
		IntervalKind:  "interval",
		Kind(9):       "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestNewUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with unknown kind did not panic")
		}
	}()
	New(Kind(99), 10)
}

// paperSequence replays the Figure 1 / Example 3 seen-position sequence
// for list L1 and checks the best-position evolution the paper walks
// through: {1,4,9} -> bp 1, +{2,7,8} -> bp 2, +{3,5,6} -> bp 9.
func TestPaperSequence(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr := New(kind, 14)
			steps := []struct {
				marks []int
				want  int
			}{
				{[]int{1, 4, 9}, 1},
				{[]int{2, 7, 8}, 2},
				{[]int{3, 5, 6}, 9},
			}
			for _, s := range steps {
				for _, p := range s.marks {
					tr.MarkSeen(p)
				}
				if got := tr.Best(); got != s.want {
					t.Fatalf("after %v: Best = %d, want %d", s.marks, got, s.want)
				}
			}
			if tr.Count() != 9 {
				t.Errorf("Count = %d, want 9", tr.Count())
			}
		})
	}
}

func TestIdempotentMarks(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr := New(kind, 5)
			tr.MarkSeen(1)
			tr.MarkSeen(1)
			tr.MarkSeen(1)
			if tr.Count() != 1 {
				t.Errorf("Count = %d, want 1", tr.Count())
			}
			if tr.Best() != 1 {
				t.Errorf("Best = %d, want 1", tr.Best())
			}
			if !tr.Seen(1) || tr.Seen(2) {
				t.Error("Seen wrong")
			}
		})
	}
}

func TestFreshTracker(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr := New(kind, 10)
			if tr.Best() != 0 {
				t.Errorf("fresh Best = %d, want 0", tr.Best())
			}
			if tr.Count() != 0 {
				t.Errorf("fresh Count = %d, want 0", tr.Count())
			}
			// Position 1 unseen: marking only deeper positions keeps bp 0.
			tr.MarkSeen(5)
			tr.MarkSeen(2)
			if tr.Best() != 0 {
				t.Errorf("Best = %d with position 1 unseen, want 0", tr.Best())
			}
		})
	}
}

func TestFullPrefix(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			n := 64 + 7 // crosses a word boundary in the bit array
			tr := New(kind, n)
			for p := n; p >= 1; p-- {
				tr.MarkSeen(p)
			}
			if got := tr.Best(); got != n {
				t.Errorf("Best = %d, want %d", got, n)
			}
		})
	}
}

func TestNegativeSizeClamped(t *testing.T) {
	for _, kind := range Kinds() {
		tr := New(kind, -5)
		if tr.Best() != 0 || tr.Count() != 0 {
			t.Errorf("%v: negative-size tracker not empty", kind)
		}
		// Any mark must panic: there are no valid positions.
		func() {
			defer func() { recover() }()
			tr.MarkSeen(1)
			t.Errorf("%v: MarkSeen(1) on empty tracker did not panic", kind)
		}()
	}
}

func TestOutOfRangePanics(t *testing.T) {
	for _, kind := range Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			tr := New(kind, 4)
			for _, p := range []int{0, -1, 5} {
				func() {
					defer func() {
						if recover() == nil {
							t.Errorf("MarkSeen(%d) did not panic", p)
						}
					}()
					tr.MarkSeen(p)
				}()
			}
		})
	}
}

// TestPropertyImplementationsAgree drives the three tracker
// implementations with identical random mark sequences and demands
// identical observable state after every step. The naive sorted set is
// the specification; bit array and B+tree must match it exactly.
func TestPropertyImplementationsAgree(t *testing.T) {
	prop := func(seed int64, nRaw uint8, opsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%150
		ops := 1 + int(opsRaw)%400
		trackers := make([]Tracker, 0, len(Kinds()))
		var spec Tracker
		for _, kind := range Kinds() {
			tr := New(kind, n)
			trackers = append(trackers, tr)
			if kind == SortedSetKind {
				spec = tr // the naive sorted set is the specification
			}
		}
		for i := 0; i < ops; i++ {
			p := 1 + rng.Intn(n)
			for _, tr := range trackers {
				tr.MarkSeen(p)
			}
			for _, tr := range trackers {
				if tr.Best() != spec.Best() {
					t.Logf("Best mismatch after marking %d: %T=%d spec=%d", p, tr, tr.Best(), spec.Best())
					return false
				}
				if tr.Count() != spec.Count() {
					t.Logf("Count mismatch: %T=%d spec=%d", tr, tr.Count(), spec.Count())
					return false
				}
				if tr.Seen(p) != spec.Seen(p) {
					return false
				}
			}
		}
		// Spot-check Seen across the whole range at the end.
		for p := 1; p <= n; p++ {
			for _, tr := range trackers {
				if tr.Seen(p) != spec.Seen(p) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBestIsContiguousPrefix: for any mark sequence, Best() is
// exactly the length of the contiguous seen prefix.
func TestPropertyBestIsContiguousPrefix(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%100
		marked := make([]bool, n+1)
		for _, kind := range Kinds() {
			tr := New(kind, n)
			for i := 0; i < n*2; i++ {
				p := 1 + rng.Intn(n)
				tr.MarkSeen(p)
				marked[p] = true
				want := 0
				for q := 1; q <= n && marked[q]; q++ {
					want = q
				}
				if tr.Best() != want {
					t.Logf("%v: Best = %d, want %d", kind, tr.Best(), want)
					return false
				}
			}
			for i := range marked {
				marked[i] = false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
