package bestpos

// Interval is a run-length tracker that is not in the paper: it stores the
// seen positions as maximal runs of consecutive positions, keyed by their
// endpoints in two hash maps. Marking a position looks up the runs ending
// at p-1 and starting at p+1 and merges with them, so every operation is
// O(1) amortized — asymptotically better than both of the paper's
// structures (bit array: O(n/u) amortized; B+tree: O(log u)) — at the cost
// of hash-map constants and O(u) space. It exists as an ablation point for
// the Section 5.2 trade-off discussion.
type Interval struct {
	n     int
	count int
	// endOf[s] = e and startOf[e] = s for every maximal seen run [s, e].
	// Singleton runs have endOf[p] = p and startOf[p] = p.
	endOf   map[int]int
	startOf map[int]int
	// member[p] is present for every seen position; needed because interior
	// positions of a run appear in neither endpoint map.
	member map[int]struct{}
}

// NewInterval returns a run-length tracker for a list of n positions.
func NewInterval(n int) *Interval {
	if n < 0 {
		n = 0
	}
	return &Interval{
		n:       n,
		endOf:   make(map[int]int),
		startOf: make(map[int]int),
		member:  make(map[int]struct{}),
	}
}

// MarkSeen implements Tracker.
func (iv *Interval) MarkSeen(p int) {
	checkPos(p, iv.n)
	if _, ok := iv.member[p]; ok {
		return
	}
	iv.member[p] = struct{}{}
	iv.count++

	start, end := p, p
	// A run ending at p-1 absorbs p on its right.
	if s, ok := iv.startOf[p-1]; ok {
		start = s
		delete(iv.startOf, p-1)
		delete(iv.endOf, s)
	}
	// A run starting at p+1 absorbs p on its left.
	if e, ok := iv.endOf[p+1]; ok {
		end = e
		delete(iv.endOf, p+1)
		delete(iv.startOf, e)
	}
	iv.endOf[start] = end
	iv.startOf[end] = start
}

// Best implements Tracker. The best position is the end of the run that
// starts at position 1, or 0 when position 1 is unseen.
func (iv *Interval) Best() int {
	if e, ok := iv.endOf[1]; ok {
		return e
	}
	return 0
}

// Seen implements Tracker.
func (iv *Interval) Seen(p int) bool {
	checkPos(p, iv.n)
	_, ok := iv.member[p]
	return ok
}

// Count implements Tracker.
func (iv *Interval) Count() int { return iv.count }

// Runs returns the number of maximal seen runs; exported for tests and for
// the tracker ablation, which reports how fragmented the seen set is.
func (iv *Interval) Runs() int { return len(iv.endOf) }
