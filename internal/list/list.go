// Package list implements the sorted-list database model of
// "Best Position Algorithms for Top-k Queries" (Akbarinia, Pacitti,
// Valduriez; VLDB 2007), Section 2.
//
// A database is a set of m lists over the same universe of n data items.
// Every item appears exactly once in every list with a local score, and
// each list is sorted in descending order of local score. Positions are
// 1-based: the position of an item is one plus the number of items that
// precede it in the list.
package list

import (
	"fmt"
	"math"
	"sort"
)

// ItemID identifies a data item. Items of an n-item database are the dense
// range [0, n). Callers with arbitrary keys (URLs, document names, ...)
// should map them to dense IDs; the public topk package provides a
// dictionary for that.
type ItemID int32

// Entry is one (data item, local score) pair of a sorted list.
type Entry struct {
	Item  ItemID
	Score float64
}

// Reader is the read surface a sorted list must offer the algorithms:
// sequential access by 1-based position, and random access by item. It is
// the storage seam of the tree — *List is the memory-resident
// implementation, and internal/store/stripe serves the same four methods
// from disk-backed columnar stripes — so every algorithm, probe and owner
// runs unchanged whatever medium holds the list. Implementations must be
// safe for concurrent readers and must panic on out-of-range positions
// and items, exactly like *List: algorithms control their accesses, so a
// bad position is a programming error, not an input error.
type Reader interface {
	// Len returns n, the number of entries.
	Len() int
	// At returns the entry at 1-based position p.
	At(p int) Entry
	// PositionOf returns the 1-based position of item d.
	PositionOf(d ItemID) int
	// ScoreOf returns the local score of item d.
	ScoreOf(d ItemID) float64
}

// List is a single sorted list: n entries in non-increasing score order,
// plus a positional index so that random access (lookup of a given item's
// score and position) is O(1).
//
// The zero value is not usable; construct lists with New or FromScores.
type List struct {
	entries []Entry
	pos     []int32 // pos[item] = 1-based position of item in entries
}

// Adopt builds a list taking ownership of entries — no defensive copy.
// The caller must not touch the slice afterwards. This exists for bulk
// loaders (internal/store) where the copy New makes would transiently
// double the memory of a large list mid-load.
func Adopt(entries []Entry) (*List, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("list: empty list")
	}
	l := &List{entries: entries}
	if err := l.buildIndex(); err != nil {
		return nil, err
	}
	return l, nil
}

// New builds a list from entries that must already satisfy the model
// invariants: scores non-increasing, and items forming a permutation of
// [0, len(entries)). The slice is copied.
func New(entries []Entry) (*List, error) {
	n := len(entries)
	if n == 0 {
		return nil, fmt.Errorf("list: empty list")
	}
	cp := make([]Entry, n)
	copy(cp, entries)
	l := &List{entries: cp}
	if err := l.buildIndex(); err != nil {
		return nil, err
	}
	return l, nil
}

// FromScores builds a list for items 0..len(scores)-1 where item i has
// local score scores[i]. The list is sorted by descending score; ties are
// broken by ascending item ID so construction is deterministic.
func FromScores(scores []float64) (*List, error) {
	n := len(scores)
	if n == 0 {
		return nil, fmt.Errorf("list: no scores")
	}
	entries := make([]Entry, n)
	for i, s := range scores {
		if math.IsNaN(s) {
			return nil, fmt.Errorf("list: score of item %d is NaN", i)
		}
		entries[i] = Entry{Item: ItemID(i), Score: s}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].Score != entries[b].Score {
			return entries[a].Score > entries[b].Score
		}
		return entries[a].Item < entries[b].Item
	})
	l := &List{entries: entries}
	if err := l.buildIndex(); err != nil {
		return nil, err
	}
	return l, nil
}

// buildIndex validates the invariants and fills the positional index.
func (l *List) buildIndex() error {
	n := len(l.entries)
	l.pos = make([]int32, n)
	for i := range l.pos {
		l.pos[i] = -1
	}
	var prev float64
	for i, e := range l.entries {
		if math.IsNaN(e.Score) {
			return fmt.Errorf("list: NaN score at position %d", i+1)
		}
		if i > 0 && e.Score > prev {
			return fmt.Errorf("list: scores not sorted: position %d has %v > %v at position %d",
				i+1, e.Score, prev, i)
		}
		prev = e.Score
		if e.Item < 0 || int(e.Item) >= n {
			return fmt.Errorf("list: item %d out of range [0,%d)", e.Item, n)
		}
		if l.pos[e.Item] != -1 {
			return fmt.Errorf("list: item %d appears more than once", e.Item)
		}
		l.pos[e.Item] = int32(i + 1)
	}
	return nil
}

var _ Reader = (*List)(nil)

// Len returns n, the number of entries.
func (l *List) Len() int { return len(l.entries) }

// At returns the entry at 1-based position p. It panics if p is out of
// range; algorithms control their probe positions, so an out-of-range
// access is a programming error, not an input error.
func (l *List) At(p int) Entry {
	if p < 1 || p > len(l.entries) {
		panic(fmt.Sprintf("list: position %d out of range [1,%d]", p, len(l.entries)))
	}
	return l.entries[p-1]
}

// PositionOf returns the 1-based position of item d.
func (l *List) PositionOf(d ItemID) int {
	if d < 0 || int(d) >= len(l.pos) {
		panic(fmt.Sprintf("list: item %d out of range [0,%d)", d, len(l.pos)))
	}
	return int(l.pos[d])
}

// ScoreOf returns the local score of item d.
func (l *List) ScoreOf(d ItemID) float64 {
	return l.entries[l.PositionOf(d)-1].Score
}

// Entries returns a copy of the list contents in position order.
func (l *List) Entries() []Entry {
	cp := make([]Entry, len(l.entries))
	copy(cp, l.entries)
	return cp
}

// Validate re-checks all invariants. Lists built through New/FromScores
// always validate; this is exported for fuzz/property tests and for data
// loaded from disk.
func (l *List) Validate() error {
	tmp := &List{entries: l.entries}
	return tmp.buildIndex()
}
