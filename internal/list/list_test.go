package list

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mustList(t *testing.T, entries []Entry) *List {
	t.Helper()
	l, err := New(entries)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return l
}

func TestNewValidList(t *testing.T) {
	l := mustList(t, []Entry{{Item: 2, Score: 9}, {Item: 0, Score: 5}, {Item: 1, Score: 1}})
	if l.Len() != 3 {
		t.Fatalf("Len = %d, want 3", l.Len())
	}
	if got := l.At(1); got.Item != 2 || got.Score != 9 {
		t.Errorf("At(1) = %+v, want item 2 score 9", got)
	}
	if got := l.PositionOf(1); got != 3 {
		t.Errorf("PositionOf(1) = %d, want 3", got)
	}
	if got := l.ScoreOf(0); got != 5 {
		t.Errorf("ScoreOf(0) = %v, want 5", got)
	}
}

func TestNewAllowsTiedScores(t *testing.T) {
	if _, err := New([]Entry{{Item: 0, Score: 4}, {Item: 1, Score: 4}, {Item: 2, Score: 4}}); err != nil {
		t.Fatalf("ties must be legal: %v", err)
	}
}

func TestNewRejectsEmpty(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("want error for empty list")
	}
}

func TestNewRejectsUnsorted(t *testing.T) {
	_, err := New([]Entry{{Item: 0, Score: 1}, {Item: 1, Score: 2}})
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("want not-sorted error, got %v", err)
	}
}

func TestNewRejectsDuplicateItem(t *testing.T) {
	_, err := New([]Entry{{Item: 0, Score: 2}, {Item: 0, Score: 1}})
	if err == nil || !strings.Contains(err.Error(), "more than once") {
		t.Fatalf("want duplicate error, got %v", err)
	}
}

func TestNewRejectsOutOfRangeItem(t *testing.T) {
	_, err := New([]Entry{{Item: 5, Score: 2}, {Item: 0, Score: 1}})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
	_, err = New([]Entry{{Item: -1, Score: 2}, {Item: 0, Score: 1}})
	if err == nil {
		t.Fatal("want error for negative item")
	}
}

func TestNewRejectsNaN(t *testing.T) {
	if _, err := New([]Entry{{Item: 0, Score: math.NaN()}}); err == nil {
		t.Fatal("want error for NaN score")
	}
	if _, err := FromScores([]float64{1, math.NaN()}); err == nil {
		t.Fatal("want error for NaN score via FromScores")
	}
}

func TestNewCopiesInput(t *testing.T) {
	in := []Entry{{Item: 1, Score: 2}, {Item: 0, Score: 1}}
	l := mustList(t, in)
	in[0] = Entry{Item: 0, Score: -1}
	if got := l.At(1); got.Item != 1 || got.Score != 2 {
		t.Errorf("list shares memory with caller input: %+v", got)
	}
}

func TestFromScoresSortsDescending(t *testing.T) {
	l, err := FromScores([]float64{0.5, 2.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Item: 1, Score: 2.5}, {Item: 2, Score: 1.5}, {Item: 0, Score: 0.5}}
	for i, w := range want {
		if got := l.At(i + 1); got != w {
			t.Errorf("At(%d) = %+v, want %+v", i+1, got, w)
		}
	}
}

func TestFromScoresTieBreaksByItem(t *testing.T) {
	l, err := FromScores([]float64{7, 7, 7})
	if err != nil {
		t.Fatal(err)
	}
	for p := 1; p <= 3; p++ {
		if got := l.At(p).Item; got != ItemID(p-1) {
			t.Errorf("At(%d).Item = %d, want %d (ascending-ID tie-break)", p, got, p-1)
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	l := mustList(t, []Entry{{Item: 0, Score: 1}})
	for _, p := range []int{0, 2, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d) did not panic", p)
				}
			}()
			l.At(p)
		}()
	}
}

func TestPositionOfPanicsOutOfRange(t *testing.T) {
	l := mustList(t, []Entry{{Item: 0, Score: 1}})
	defer func() {
		if recover() == nil {
			t.Error("PositionOf(9) did not panic")
		}
	}()
	l.PositionOf(9)
}

func TestEntriesReturnsCopy(t *testing.T) {
	l := mustList(t, []Entry{{Item: 1, Score: 2}, {Item: 0, Score: 1}})
	es := l.Entries()
	es[0].Score = 99
	if l.At(1).Score != 2 {
		t.Error("Entries leaked internal storage")
	}
}

func TestValidate(t *testing.T) {
	l := mustList(t, []Entry{{Item: 1, Score: 2}, {Item: 0, Score: 1}})
	if err := l.Validate(); err != nil {
		t.Errorf("valid list failed validation: %v", err)
	}
}

// TestPropertyFromScoresRoundTrip: for any score vector, FromScores
// produces a valid list where every item's score is preserved and
// positions are consistent both ways.
func TestPropertyFromScoresRoundTrip(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%64
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(10)) // force ties
		}
		l, err := FromScores(scores)
		if err != nil {
			return false
		}
		if l.Validate() != nil {
			return false
		}
		for d := 0; d < n; d++ {
			if l.ScoreOf(ItemID(d)) != scores[d] {
				return false
			}
			p := l.PositionOf(ItemID(d))
			if l.At(p).Item != ItemID(d) {
				return false
			}
		}
		// Positions are a bijection onto [1, n].
		seen := make([]bool, n+1)
		for d := 0; d < n; d++ {
			p := l.PositionOf(ItemID(d))
			if p < 1 || p > n || seen[p] {
				return false
			}
			seen[p] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewDatabase(t *testing.T) {
	l1 := mustList(t, []Entry{{Item: 0, Score: 2}, {Item: 1, Score: 1}})
	l2 := mustList(t, []Entry{{Item: 1, Score: 5}, {Item: 0, Score: 3}})
	db, err := NewDatabase(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	if db.M() != 2 || db.N() != 2 {
		t.Errorf("M=%d N=%d, want 2, 2", db.M(), db.N())
	}
	if db.List(1) != l2 {
		t.Error("List(1) is not the second list")
	}
	if err := db.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewDatabaseRejectsEmpty(t *testing.T) {
	if _, err := NewDatabase(); err == nil {
		t.Fatal("want error for zero lists")
	}
}

func TestNewDatabaseRejectsNilList(t *testing.T) {
	l1 := mustList(t, []Entry{{Item: 0, Score: 1}})
	if _, err := NewDatabase(l1, nil); err == nil {
		t.Fatal("want error for nil list")
	}
}

func TestNewDatabaseRejectsLengthMismatch(t *testing.T) {
	l1 := mustList(t, []Entry{{Item: 0, Score: 1}})
	l2 := mustList(t, []Entry{{Item: 0, Score: 2}, {Item: 1, Score: 1}})
	if _, err := NewDatabase(l1, l2); err == nil {
		t.Fatal("want error for mismatched lengths")
	}
}

func TestFromColumns(t *testing.T) {
	db, err := FromColumns([][]float64{{1, 2, 3}, {30, 20, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if db.M() != 2 || db.N() != 3 {
		t.Fatalf("M=%d N=%d, want 2, 3", db.M(), db.N())
	}
	// Column 0 ascending scores: item 2 must lead list 0.
	if got := db.List(0).At(1).Item; got != 2 {
		t.Errorf("list 0 top item = %d, want 2", got)
	}
	// Column 1 descending: item 0 leads list 1.
	if got := db.List(1).At(1).Item; got != 0 {
		t.Errorf("list 1 top item = %d, want 0", got)
	}
}

func TestFromColumnsRejectsEmpty(t *testing.T) {
	if _, err := FromColumns(nil); err == nil {
		t.Fatal("want error for no columns")
	}
	if _, err := FromColumns([][]float64{{}}); err == nil {
		t.Fatal("want error for empty column")
	}
}

func TestFromColumnsRejectsRagged(t *testing.T) {
	if _, err := FromColumns([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("want error for ragged columns")
	}
}

func TestLists(t *testing.T) {
	l1 := mustList(t, []Entry{{Item: 0, Score: 1}})
	l2 := mustList(t, []Entry{{Item: 0, Score: 2}})
	db, err := NewDatabase(l1, l2)
	if err != nil {
		t.Fatal(err)
	}
	ls := db.Lists()
	if len(ls) != 2 || ls[0] != l1 || ls[1] != l2 {
		t.Errorf("Lists = %v", ls)
	}
	// The returned slice is a copy; mutating it does not affect the db.
	ls[0] = nil
	if db.List(0) != l1 {
		t.Error("Lists leaked internal slice")
	}
}

func TestLocalScores(t *testing.T) {
	db, err := FromColumns([][]float64{{1, 2}, {5, 3}})
	if err != nil {
		t.Fatal(err)
	}
	got := db.LocalScores(0, nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 5 {
		t.Errorf("LocalScores(0) = %v, want [1 5]", got)
	}
	// Reuses the destination slice when it has capacity.
	buf := make([]float64, 0, 2)
	got2 := db.LocalScores(1, buf)
	if got2[0] != 2 || got2[1] != 3 {
		t.Errorf("LocalScores(1) = %v, want [2 3]", got2)
	}
	if &got2[0] != &buf[:1][0] {
		t.Error("LocalScores allocated despite sufficient capacity")
	}
}
