package list

import "fmt"

// Database is a set of m sorted lists over the same n data items
// (paper Section 2: "The set of m sorted lists is called a database").
//
// Each list is any Reader: the memory-resident *List, or a disk-backed
// implementation such as internal/store/stripe's. Algorithms, probes and
// owners see only the Reader surface, so accounting is bit-identical
// whatever medium serves the entries.
type Database struct {
	lists []Reader
}

// NewDatabase assembles m >= 1 memory-resident lists into a database.
// All lists must have the same length (they share the item universe by
// construction of List). See NewReaderDatabase for the storage-agnostic
// form.
func NewDatabase(lists ...*List) (*Database, error) {
	rs := make([]Reader, len(lists))
	for i, l := range lists {
		if l == nil {
			return nil, fmt.Errorf("list: list %d is nil", i)
		}
		rs[i] = l
	}
	return NewReaderDatabase(rs...)
}

// NewReaderDatabase assembles m >= 1 list readers — memory-resident or
// disk-backed, freely mixed — into a database. All readers must have the
// same length.
func NewReaderDatabase(lists ...Reader) (*Database, error) {
	if len(lists) == 0 {
		return nil, fmt.Errorf("list: database needs at least one list")
	}
	n := lists[0].Len()
	for i, l := range lists {
		if l == nil {
			return nil, fmt.Errorf("list: list %d is nil", i)
		}
		if l.Len() != n {
			return nil, fmt.Errorf("list: list %d has %d items, want %d", i, l.Len(), n)
		}
	}
	cp := make([]Reader, len(lists))
	copy(cp, lists)
	return &Database{lists: cp}, nil
}

// FromColumns builds a database from m score columns: columns[i][d] is the
// local score of item d in list i. This is the natural encoding for
// relational data, where each column is one attribute of the scoring
// function.
func FromColumns(columns [][]float64) (*Database, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("list: no columns")
	}
	lists := make([]*List, len(columns))
	for i, col := range columns {
		l, err := FromScores(col)
		if err != nil {
			return nil, fmt.Errorf("list: column %d: %w", i, err)
		}
		lists[i] = l
	}
	return NewDatabase(lists...)
}

// M returns the number of lists.
func (db *Database) M() int { return len(db.lists) }

// N returns the number of data items per list.
func (db *Database) N() int { return db.lists[0].Len() }

// List returns the i-th list (0-based).
func (db *Database) List(i int) Reader { return db.lists[i] }

// Lists returns the underlying list readers in order. The returned slice
// is a copy; the readers themselves are shared (they are immutable after
// construction).
func (db *Database) Lists() []Reader {
	cp := make([]Reader, len(db.lists))
	copy(cp, db.lists)
	return cp
}

// LocalScores fills dst with the local score of item d in every list and
// returns it. If dst is nil or too small a new slice is allocated. This
// bypasses access accounting and exists for oracles, tests and result
// reporting; algorithms must go through access.Probe.
func (db *Database) LocalScores(d ItemID, dst []float64) []float64 {
	if cap(dst) < len(db.lists) {
		dst = make([]float64, len(db.lists))
	}
	dst = dst[:len(db.lists)]
	for i, l := range db.lists {
		dst[i] = l.ScoreOf(d)
	}
	return dst
}

// Validate re-checks every list and the shared-universe invariant.
// Readers that expose their own Validate (like *List) are re-validated
// in depth; other readers are checked for the shared length only —
// disk-backed stores run their structural checks at open time.
func (db *Database) Validate() error {
	if len(db.lists) == 0 {
		return fmt.Errorf("list: database has no lists")
	}
	n := db.lists[0].Len()
	for i, l := range db.lists {
		if l.Len() != n {
			return fmt.Errorf("list: list %d has %d items, want %d", i, l.Len(), n)
		}
		if v, ok := l.(interface{ Validate() error }); ok {
			if err := v.Validate(); err != nil {
				return fmt.Errorf("list: list %d: %w", i, err)
			}
		}
	}
	return nil
}
