package list

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzFromScores decodes arbitrary bytes into a score column and checks
// the constructor's contract: either an error, or a list that validates
// and indexes every item at the position holding it.
func FuzzFromScores(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	seed := make([]byte, 0, 32)
	for _, v := range []float64{3, 1, 2, math.Inf(1)} {
		seed = binary.LittleEndian.AppendUint64(seed, math.Float64bits(v))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 8
		if n > 512 {
			n = 512 // keep individual cases cheap
		}
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[i*8:]))
		}
		l, err := FromScores(scores)
		if err != nil {
			return // rejected (empty or NaN input): fine if it did not panic
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("FromScores accepted an invalid list: %v", err)
		}
		for i, s := range scores {
			d := ItemID(i)
			if got := l.ScoreOf(d); got != s && !(math.IsNaN(got) && math.IsNaN(s)) {
				t.Fatalf("ScoreOf(%d) = %v, want %v", d, got, s)
			}
			pos := l.PositionOf(d)
			if e := l.At(pos); e.Item != d {
				t.Fatalf("At(PositionOf(%d)) = item %d", d, e.Item)
			}
		}
	})
}

// FuzzNewEntries decodes bytes into (item, score) pairs and checks that
// New either rejects them or produces a validating list.
func FuzzNewEntries(f *testing.F) {
	f.Add([]byte{})
	ok := make([]byte, 0, 36)
	for i, v := range []float64{9, 7, 5} {
		ok = binary.LittleEndian.AppendUint32(ok, uint32(i))
		ok = binary.LittleEndian.AppendUint64(ok, math.Float64bits(v))
	}
	f.Add(ok)

	f.Fuzz(func(t *testing.T, data []byte) {
		const rec = 12
		n := len(data) / rec
		if n > 512 {
			n = 512
		}
		entries := make([]Entry, n)
		for i := range entries {
			off := i * rec
			entries[i] = Entry{
				Item:  ItemID(int32(binary.LittleEndian.Uint32(data[off:]))),
				Score: math.Float64frombits(binary.LittleEndian.Uint64(data[off+4:])),
			}
		}
		l, err := New(entries)
		if err != nil {
			return
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("New accepted an invalid list: %v", err)
		}
	})
}
