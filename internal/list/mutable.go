package list

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Update is one (item, delta) score change against a mutable list.
type Update struct {
	Item  ItemID
	Delta float64
}

// Mutable is a sorted-list Reader over an updatable score column — the
// owner-side seam of the live/continuous top-k path. Readers see an
// immutable *List snapshot through an atomic pointer, so every query in
// flight observes one consistent sorted list; Apply rebuilds the list
// from the updated base scores and swaps the snapshot in O(n log n).
//
// Concurrency model: any number of concurrent readers, writers
// serialized by an internal mutex. A query that overlaps an Apply reads
// either the old or the new snapshot per access — individual accesses
// are never torn, but a long query may observe entries from both
// versions across accesses. The live subsystem's correctness contract
// is convergence: once updates quiesce, a fresh evaluation reflects
// exactly the updates applied.
type Mutable struct {
	cur     atomic.Pointer[List]
	version atomic.Uint64

	mu     sync.Mutex // serializes Apply
	scores []float64  // base score of item i; guarded by mu
}

var _ Reader = (*Mutable)(nil)

// NewMutable builds a mutable list where item i starts with local score
// scores[i]. The slice is copied.
func NewMutable(scores []float64) (*Mutable, error) {
	l, err := FromScores(scores)
	if err != nil {
		return nil, err
	}
	m := &Mutable{scores: append([]float64(nil), scores...)}
	m.cur.Store(l)
	return m, nil
}

// MutableFromReader builds a mutable list seeded with the current
// contents of any Reader — the adapter that turns a loaded immutable
// database list into an updatable one.
func MutableFromReader(r Reader) (*Mutable, error) {
	if r == nil {
		return nil, fmt.Errorf("list: nil reader")
	}
	n := r.Len()
	scores := make([]float64, n)
	for p := 1; p <= n; p++ {
		e := r.At(p)
		scores[e.Item] = e.Score
	}
	return NewMutable(scores)
}

// Apply atomically applies a batch of (item, delta) updates: base scores
// are adjusted, the sorted list is rebuilt, and the snapshot readers see
// is swapped in one step — a batch is all-or-nothing, never partially
// visible. Returns the new version. An invalid update (item out of
// range, non-finite delta or resulting score) rejects the whole batch
// and leaves the list untouched.
func (m *Mutable) Apply(updates []Update) (uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := len(m.scores)
	for _, u := range updates {
		if u.Item < 0 || int(u.Item) >= n {
			return m.version.Load(), fmt.Errorf("list: update item %d out of range [0,%d)", u.Item, n)
		}
		if math.IsNaN(u.Delta) || math.IsInf(u.Delta, 0) {
			return m.version.Load(), fmt.Errorf("list: update delta %v for item %d is not finite", u.Delta, u.Item)
		}
		if s := m.scores[u.Item] + u.Delta; math.IsInf(s, 0) {
			return m.version.Load(), fmt.Errorf("list: update overflows score of item %d", u.Item)
		}
	}
	if len(updates) == 0 {
		return m.version.Load(), nil
	}
	next := append([]float64(nil), m.scores...)
	for _, u := range updates {
		next[u.Item] += u.Delta
	}
	l, err := FromScores(next)
	if err != nil {
		return m.version.Load(), err
	}
	m.scores = next
	m.cur.Store(l)
	return m.version.Add(1), nil
}

// Version returns the number of applied batches; it starts at 0 and is
// bumped once per successful non-empty Apply. Owners expose it in /stats
// and piggyback it on update acks.
func (m *Mutable) Version() uint64 { return m.version.Load() }

// Snapshot returns the current immutable sorted list. The returned
// *List never changes; later Applies swap in fresh ones.
func (m *Mutable) Snapshot() *List { return m.cur.Load() }

// Len returns n, the number of entries.
func (m *Mutable) Len() int { return m.cur.Load().Len() }

// At returns the entry at 1-based position p of the current snapshot.
func (m *Mutable) At(p int) Entry { return m.cur.Load().At(p) }

// PositionOf returns the 1-based position of item d in the current
// snapshot.
func (m *Mutable) PositionOf(d ItemID) int { return m.cur.Load().PositionOf(d) }

// ScoreOf returns the local score of item d in the current snapshot.
func (m *Mutable) ScoreOf(d ItemID) float64 { return m.cur.Load().ScoreOf(d) }
