// Package access implements the list access modes and the middleware cost
// model of the paper (Section 2 and Section 6.1).
//
// Three access modes exist:
//
//   - sorted (sequential) access: read the next entry of a list in score
//     order;
//   - random access: look up the score (and, for BPA, the position) of a
//     given item in a list;
//   - direct access (Section 5.1): read the entry at a given position of a
//     list, used by BPA2 to jump to the first unseen position.
//
// The execution cost of a run is as·cs + (ar+ad)·cr where as, ar, ad are
// the numbers of sorted, random, and direct accesses. Following the
// paper's evaluation setup, cs = 1 and cr = log2 n, and each direct access
// is charged like a random access.
package access

import (
	"fmt"
	"math"
)

// Mode labels one of the three access modes.
type Mode uint8

const (
	// SortedAccess reads the next entry of a list in score order.
	SortedAccess Mode = iota
	// RandomAccess looks up a given item in a list.
	RandomAccess
	// DirectAccess reads the entry at a given position (BPA2 only).
	DirectAccess
)

// String returns the access-mode name.
func (m Mode) String() string {
	switch m {
	case SortedAccess:
		return "sorted"
	case RandomAccess:
		return "random"
	case DirectAccess:
		return "direct"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Counts tallies the accesses performed by one algorithm run.
type Counts struct {
	Sorted int64 // sequential accesses
	Random int64 // item lookups
	Direct int64 // positional reads (BPA2)
}

// Total returns the number of accesses of any mode — the paper's
// "number of accesses" metric (Section 6.1, metric 2).
func (c Counts) Total() int64 { return c.Sorted + c.Random + c.Direct }

// Add returns the element-wise sum of two tallies.
func (c Counts) Add(o Counts) Counts {
	return Counts{
		Sorted: c.Sorted + o.Sorted,
		Random: c.Random + o.Random,
		Direct: c.Direct + o.Direct,
	}
}

// String formats the tally for logs and test failures.
func (c Counts) String() string {
	return fmt.Sprintf("sorted=%d random=%d direct=%d total=%d",
		c.Sorted, c.Random, c.Direct, c.Total())
}

// CostModel prices each access mode. The paper's execution cost (the
// "middleware cost" of Fagin et al.) is the weighted access count.
type CostModel struct {
	SortedCost float64 // cs
	RandomCost float64 // cr
	DirectCost float64 // cd; the paper charges direct like random
}

// DefaultCostModel returns the evaluation setup of Section 6.1 for a
// database of n items: cs = 1 and cr = cd = log2 n.
func DefaultCostModel(n int) CostModel {
	if n < 2 {
		return CostModel{SortedCost: 1, RandomCost: 1, DirectCost: 1}
	}
	lg := math.Log2(float64(n))
	return CostModel{SortedCost: 1, RandomCost: lg, DirectCost: lg}
}

// Cost returns the execution cost of a tally under the model.
func (m CostModel) Cost(c Counts) float64 {
	return float64(c.Sorted)*m.SortedCost +
		float64(c.Random)*m.RandomCost +
		float64(c.Direct)*m.DirectCost
}
