package access

import (
	"fmt"

	"topk/internal/list"
)

// Probe is the only gateway through which the algorithms in internal/core
// may touch a database. Every read is charged to a Counts tally, so the
// paper's cost metrics fall directly out of running an algorithm.
//
// The probe reads lists through the list.Reader seam, so the database may
// be memory-resident, disk-backed (internal/store/stripe), or a mix — the
// charge per access is identical whatever medium serves the entry, which
// is what keeps accounting bit-identical between RAM and disk deployments.
//
// A Probe is single-goroutine state (one query execution); create one per
// run.
type Probe struct {
	db     *list.Database
	counts Counts

	// audit[i][p-1] counts accesses of any mode to position p of list i.
	// Enabled only when NewAuditedProbe is used; used by tests to check
	// BPA2's Theorem 5 ("no position is accessed more than once").
	audit [][]int32

	// trace, when enabled, records every access in order.
	trace   []Record
	tracing bool
}

// Record is one logged list access (see Probe.EnableTrace).
type Record struct {
	Mode Mode
	List int
	Pos  int
	Item list.ItemID
}

// NewProbe returns a probe over db with zeroed counters.
func NewProbe(db *list.Database) *Probe {
	return &Probe{db: db}
}

// NewAuditedProbe returns a probe that additionally records a per-position
// access count. The audit costs O(m·n) memory; meant for tests.
func NewAuditedProbe(db *list.Database) *Probe {
	p := NewProbe(db)
	p.audit = make([][]int32, db.M())
	for i := range p.audit {
		p.audit[i] = make([]int32, db.N())
	}
	return p
}

// DB returns the probed database.
func (p *Probe) DB() *list.Database { return p.db }

// Counts returns the tally so far.
func (p *Probe) Counts() Counts { return p.counts }

// EnableTrace makes the probe log every access in order; retrieve the
// log with Trace. Tracing allocates per access — tests and explainers
// only.
func (p *Probe) EnableTrace() { p.tracing = true }

// Trace returns the ordered access log (nil unless EnableTrace was
// called before the run).
func (p *Probe) Trace() []Record {
	cp := make([]Record, len(p.trace))
	copy(cp, p.trace)
	return cp
}

// Sorted performs a sorted access: it reads position pos of list i, where
// pos is the algorithm's current sequential depth in that list.
func (p *Probe) Sorted(i, pos int) list.Entry {
	p.counts.Sorted++
	e := p.db.List(i).At(pos)
	p.note(SortedAccess, i, pos, e.Item)
	return e
}

// Random performs a random access: it looks up item d in list i and
// returns its local score and its 1-based position. TA uses only the
// score; BPA also records the position (Section 4.1 step 1).
func (p *Probe) Random(i int, d list.ItemID) (score float64, pos int) {
	p.counts.Random++
	l := p.db.List(i)
	pos = l.PositionOf(d)
	p.note(RandomAccess, i, pos, d)
	return l.At(pos).Score, pos
}

// Direct performs a direct access: it reads the entry at position pos of
// list i (Section 5.1; BPA2 reads position bp+1).
func (p *Probe) Direct(i, pos int) list.Entry {
	p.counts.Direct++
	e := p.db.List(i).At(pos)
	p.note(DirectAccess, i, pos, e.Item)
	return e
}

func (p *Probe) note(mode Mode, i, pos int, d list.ItemID) {
	if p.audit != nil {
		p.audit[i][pos-1]++
	}
	if p.tracing {
		p.trace = append(p.trace, Record{Mode: mode, List: i, Pos: pos, Item: d})
	}
}

// PositionAccesses returns how many times position pos of list i was
// accessed (any mode). It panics unless the probe was created with
// NewAuditedProbe.
func (p *Probe) PositionAccesses(i, pos int) int {
	if p.audit == nil {
		panic("access: PositionAccesses requires NewAuditedProbe")
	}
	return int(p.audit[i][pos-1])
}

// MaxPositionAccesses returns the largest per-position access count over
// the whole database. For BPA2 this must be <= 1 (Theorem 5).
func (p *Probe) MaxPositionAccesses() int {
	if p.audit == nil {
		panic("access: MaxPositionAccesses requires NewAuditedProbe")
	}
	max := 0
	for i := range p.audit {
		for _, c := range p.audit[i] {
			if int(c) > max {
				max = int(c)
			}
		}
	}
	return max
}

// AssertSingleAccess returns an error naming the first position that was
// accessed more than once, or nil if every position was accessed at most
// once.
func (p *Probe) AssertSingleAccess() error {
	if p.audit == nil {
		panic("access: AssertSingleAccess requires NewAuditedProbe")
	}
	for i := range p.audit {
		for j, c := range p.audit[i] {
			if c > 1 {
				return fmt.Errorf("access: position %d of list %d accessed %d times", j+1, i, c)
			}
		}
	}
	return nil
}
