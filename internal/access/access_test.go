package access

import (
	"math"
	"testing"

	"topk/internal/list"
)

func testDB(t *testing.T) *list.Database {
	t.Helper()
	db, err := list.FromColumns([][]float64{
		{10, 20, 30}, // list 0: item 2 first
		{3, 2, 1},    // list 1: item 0 first
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestModeString(t *testing.T) {
	cases := map[Mode]string{
		SortedAccess: "sorted",
		RandomAccess: "random",
		DirectAccess: "direct",
		Mode(42):     "Mode(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}

func TestCountsTotalAndAdd(t *testing.T) {
	a := Counts{Sorted: 1, Random: 2, Direct: 3}
	b := Counts{Sorted: 10, Random: 20, Direct: 30}
	if got := a.Total(); got != 6 {
		t.Errorf("Total = %d, want 6", got)
	}
	sum := a.Add(b)
	if sum != (Counts{Sorted: 11, Random: 22, Direct: 33}) {
		t.Errorf("Add = %+v", sum)
	}
	if s := a.String(); s == "" {
		t.Error("String is empty")
	}
}

func TestDefaultCostModel(t *testing.T) {
	m := DefaultCostModel(1024)
	if m.SortedCost != 1 {
		t.Errorf("cs = %v, want 1", m.SortedCost)
	}
	if m.RandomCost != 10 || m.DirectCost != 10 {
		t.Errorf("cr = %v, cd = %v, want 10 (log2 1024)", m.RandomCost, m.DirectCost)
	}
	// Degenerate sizes fall back to unit costs.
	small := DefaultCostModel(1)
	if small.RandomCost != 1 {
		t.Errorf("cr for n=1 is %v, want 1", small.RandomCost)
	}
}

func TestCostComputation(t *testing.T) {
	m := CostModel{SortedCost: 1, RandomCost: 17, DirectCost: 5}
	c := Counts{Sorted: 10, Random: 2, Direct: 3}
	want := 10.0 + 2*17 + 3*5
	if got := m.Cost(c); math.Abs(got-want) > 1e-12 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestProbeCharging(t *testing.T) {
	db := testDB(t)
	pr := NewProbe(db)
	if pr.DB() != db {
		t.Fatal("DB() mismatch")
	}

	e := pr.Sorted(0, 1)
	if e.Item != 2 || e.Score != 30 {
		t.Errorf("Sorted(0,1) = %+v, want item 2 score 30", e)
	}
	s, pos := pr.Random(1, 2)
	if s != 1 || pos != 3 {
		t.Errorf("Random(1,2) = (%v,%d), want (1,3)", s, pos)
	}
	e = pr.Direct(1, 1)
	if e.Item != 0 || e.Score != 3 {
		t.Errorf("Direct(1,1) = %+v, want item 0 score 3", e)
	}

	want := Counts{Sorted: 1, Random: 1, Direct: 1}
	if got := pr.Counts(); got != want {
		t.Errorf("Counts = %+v, want %+v", got, want)
	}
}

func TestAuditedProbe(t *testing.T) {
	db := testDB(t)
	pr := NewAuditedProbe(db)
	pr.Sorted(0, 1)
	pr.Direct(0, 1)
	pr.Random(0, 2) // item 2 is at position 1 of list 0
	pr.Sorted(1, 2)

	if got := pr.PositionAccesses(0, 1); got != 3 {
		t.Errorf("position 1 of list 0 accessed %d times, want 3", got)
	}
	if got := pr.PositionAccesses(1, 2); got != 1 {
		t.Errorf("position 2 of list 1 accessed %d times, want 1", got)
	}
	if got := pr.MaxPositionAccesses(); got != 3 {
		t.Errorf("MaxPositionAccesses = %d, want 3", got)
	}
	if err := pr.AssertSingleAccess(); err == nil {
		t.Error("AssertSingleAccess should fail after a triple access")
	}
}

func TestAuditedProbeSingleAccessOK(t *testing.T) {
	db := testDB(t)
	pr := NewAuditedProbe(db)
	pr.Sorted(0, 1)
	pr.Sorted(1, 1)
	if err := pr.AssertSingleAccess(); err != nil {
		t.Errorf("AssertSingleAccess: %v", err)
	}
	if got := pr.MaxPositionAccesses(); got != 1 {
		t.Errorf("MaxPositionAccesses = %d, want 1", got)
	}
}

func TestProbeTrace(t *testing.T) {
	db := testDB(t)
	pr := NewProbe(db)
	if got := pr.Trace(); len(got) != 0 {
		t.Fatalf("trace before enabling = %v", got)
	}
	pr.EnableTrace()
	pr.Sorted(0, 1) // item 2 at position 1 of list 0
	pr.Random(1, 2) // item 2 at position 3 of list 1
	pr.Direct(1, 1) // item 0 at position 1 of list 1
	pr.Sorted(0, 2) // item 1 at position 2 of list 0
	want := []Record{
		{Mode: SortedAccess, List: 0, Pos: 1, Item: 2},
		{Mode: RandomAccess, List: 1, Pos: 3, Item: 2},
		{Mode: DirectAccess, List: 1, Pos: 1, Item: 0},
		{Mode: SortedAccess, List: 0, Pos: 2, Item: 1},
	}
	got := pr.Trace()
	if len(got) != len(want) {
		t.Fatalf("trace = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("trace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Trace returns a copy.
	got[0].Pos = 99
	if pr.Trace()[0].Pos == 99 {
		t.Error("Trace leaked internal storage")
	}
}

func TestUnauditedProbeAuditPanics(t *testing.T) {
	pr := NewProbe(testDB(t))
	for name, fn := range map[string]func(){
		"PositionAccesses":    func() { pr.PositionAccesses(0, 1) },
		"MaxPositionAccesses": func() { pr.MaxPositionAccesses() },
		"AssertSingleAccess":  func() { _ = pr.AssertSingleAccess() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on unaudited probe", name)
				}
			}()
			fn()
		}()
	}
}
