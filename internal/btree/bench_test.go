package btree

import (
	"math/rand"
	"testing"
)

// The paper's Section 5.2.2 analysis: inserting u seen positions and
// advancing the best position costs O(log u) amortized per access with a
// B+tree. These micro-benchmarks back the tracker ablation.

func benchKeys(n int) []int {
	rng := rand.New(rand.NewSource(1))
	return rng.Perm(n)
}

func BenchmarkInsert(b *testing.B) {
	keys := benchKeys(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New(32)
		for _, k := range keys {
			tr.Insert(k)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	keys := benchKeys(4096)
	tr := New(32)
	for _, k := range keys {
		tr.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Contains(keys[i%len(keys)])
	}
}

func BenchmarkSeekGEAndWalk(b *testing.B) {
	keys := benchKeys(4096)
	tr := New(32)
	for _, k := range keys {
		tr.Insert(k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tr.SeekGE(i % len(keys))
		for j := 0; j < 8 && it.Valid(); j++ {
			it.Next()
		}
	}
}

func BenchmarkInsertDelete(b *testing.B) {
	keys := benchKeys(2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := New(32)
		for _, k := range keys {
			tr.Insert(k)
		}
		for _, k := range keys {
			tr.Delete(k)
		}
	}
}
