package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 {
		t.Fatal("zero tree not empty")
	}
	if tr.Contains(1) {
		t.Fatal("zero tree contains a key")
	}
	if !tr.Insert(1) {
		t.Fatal("insert into zero tree failed")
	}
	if !tr.Contains(1) || tr.Len() != 1 {
		t.Fatal("zero tree after insert wrong")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertDuplicates(t *testing.T) {
	tr := New(4)
	if !tr.Insert(7) {
		t.Error("first insert returned false")
	}
	if tr.Insert(7) {
		t.Error("duplicate insert returned true")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

func TestInsertAscendingDescending(t *testing.T) {
	for name, order := range map[string][]int{
		"ascending":  ascending(200),
		"descending": descending(200),
	} {
		t.Run(name, func(t *testing.T) {
			tr := New(4) // tiny order to force deep trees
			for _, k := range order {
				if !tr.Insert(k) {
					t.Fatalf("insert %d failed", k)
				}
				if err := tr.Validate(); err != nil {
					t.Fatalf("after insert %d: %v", k, err)
				}
			}
			if tr.Len() != 200 {
				t.Fatalf("Len = %d, want 200", tr.Len())
			}
			keys := tr.Keys()
			if !sort.IntsAreSorted(keys) || len(keys) != 200 {
				t.Fatal("Keys not sorted or wrong length")
			}
			if min, _ := tr.Min(); min != keys[0] {
				t.Errorf("Min = %d, want %d", min, keys[0])
			}
			if max, _ := tr.Max(); max != keys[len(keys)-1] {
				t.Errorf("Max = %d, want %d", max, keys[len(keys)-1])
			}
			if tr.Height() < 3 {
				t.Errorf("expected a deep tree at order 4, height %d", tr.Height())
			}
		})
	}
}

func ascending(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func descending(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = n - i
	}
	return out
}

func TestEmptyTreeQueries(t *testing.T) {
	tr := New(8)
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty")
	}
	if tr.Delete(3) {
		t.Error("Delete on empty returned true")
	}
	if it := tr.SeekGE(0); it.Valid() {
		t.Error("SeekGE valid on empty")
	}
	if it := tr.SeekFirst(); it.Valid() {
		t.Error("SeekFirst valid on empty")
	}
	if tr.Height() != 0 {
		t.Errorf("Height = %d, want 0", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New(4)
	const n = 300
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, k := range perm {
		tr.Insert(k)
	}
	del := rand.New(rand.NewSource(2)).Perm(n)
	for i, k := range del {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%d) = false", k)
		}
		if tr.Delete(k) {
			t.Fatalf("double Delete(%d) = true", k)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("after %d deletions: %v", i+1, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

func TestSeekGE(t *testing.T) {
	tr := New(4)
	for _, k := range []int{10, 20, 30, 40, 50} {
		tr.Insert(k)
	}
	cases := []struct {
		seek  int
		want  int
		valid bool
	}{
		{5, 10, true},
		{10, 10, true},
		{11, 20, true},
		{50, 50, true},
		{51, 0, false},
	}
	for _, c := range cases {
		it := tr.SeekGE(c.seek)
		if it.Valid() != c.valid {
			t.Errorf("SeekGE(%d).Valid = %v, want %v", c.seek, it.Valid(), c.valid)
			continue
		}
		if c.valid && it.Key() != c.want {
			t.Errorf("SeekGE(%d) = %d, want %d", c.seek, it.Key(), c.want)
		}
	}
}

func TestIteratorTraversal(t *testing.T) {
	tr := New(4)
	want := []int{1, 3, 5, 7, 9, 11}
	for _, k := range want {
		tr.Insert(k)
	}
	var got []int
	for it := tr.SeekFirst(); it.Valid(); it.Next() {
		got = append(got, it.Key())
	}
	if len(got) != len(want) {
		t.Fatalf("traversed %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("traversed %v, want %v", got, want)
		}
	}
}

func TestIteratorKeyPanicsWhenInvalid(t *testing.T) {
	tr := New(4)
	it := tr.SeekFirst()
	defer func() {
		if recover() == nil {
			t.Error("Key on invalid iterator did not panic")
		}
	}()
	it.Key()
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr.Insert(i)
	}
	count := 0
	tr.Ascend(func(k int) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Errorf("Ascend visited %d keys, want 10", count)
	}
}

func TestStringSummary(t *testing.T) {
	tr := New(4)
	tr.Insert(1)
	if tr.String() == "" {
		t.Error("empty String()")
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := New(4)
	for _, k := range []int{-5, -1, -100, 0, 3} {
		tr.Insert(k)
	}
	want := []int{-100, -5, -1, 0, 3}
	got := tr.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", got, want)
		}
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

// TestPropertyAgainstMap drives random insert/delete/contains operations
// against a reference map and validates tree invariants throughout.
func TestPropertyAgainstMap(t *testing.T) {
	prop := func(seed int64, orderRaw uint8, opsRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		order := 3 + int(orderRaw)%14
		ops := 1 + int(opsRaw)%600
		tr := New(order)
		ref := map[int]bool{}
		for i := 0; i < ops; i++ {
			k := rng.Intn(100)
			switch rng.Intn(3) {
			case 0: // insert
				want := !ref[k]
				if got := tr.Insert(k); got != want {
					t.Logf("Insert(%d) = %v, want %v", k, got, want)
					return false
				}
				ref[k] = true
			case 1: // delete
				want := ref[k]
				if got := tr.Delete(k); got != want {
					t.Logf("Delete(%d) = %v, want %v", k, got, want)
					return false
				}
				delete(ref, k)
			default: // contains
				if got := tr.Contains(k); got != ref[k] {
					t.Logf("Contains(%d) = %v, want %v", k, got, ref[k])
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			t.Logf("Len = %d, want %d", tr.Len(), len(ref))
			return false
		}
		if err := tr.Validate(); err != nil {
			t.Logf("Validate: %v", err)
			return false
		}
		keys := tr.Keys()
		if len(keys) != len(ref) {
			return false
		}
		for _, k := range keys {
			if !ref[k] {
				return false
			}
		}
		return sort.IntsAreSorted(keys)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertySeekGEMatchesSortedSlice compares SeekGE against binary
// search over the reference sorted slice.
func TestPropertySeekGEMatchesSortedSlice(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw) % 120
		tr := New(5)
		ref := map[int]bool{}
		for i := 0; i < n; i++ {
			k := rng.Intn(200)
			tr.Insert(k)
			ref[k] = true
		}
		var sorted []int
		for k := range ref {
			sorted = append(sorted, k)
		}
		sort.Ints(sorted)
		for probe := -5; probe <= 205; probe += 1 + rng.Intn(7) {
			it := tr.SeekGE(probe)
			i := sort.SearchInts(sorted, probe)
			if i == len(sorted) {
				if it.Valid() {
					t.Logf("SeekGE(%d) valid, want invalid", probe)
					return false
				}
			} else {
				if !it.Valid() || it.Key() != sorted[i] {
					t.Logf("SeekGE(%d) wrong", probe)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
