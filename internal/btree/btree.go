// Package btree implements an in-memory B+tree over int keys.
//
// The paper (Section 5.2.2) uses a B+tree at every list owner to store the
// seen positions of a list: all keys live in the leaves, the leaves form a
// linked list, and a cursor over that linked list advances the best
// position in amortized constant time per access. This package is the
// general-purpose substrate; package bestpos builds the tracker on top.
//
// Keys are unique; Insert reports whether the key was newly added.
// The zero value of Tree is an empty tree with the default order.
package btree

import (
	"fmt"
	"sort"
)

// DefaultOrder is the fan-out used when New is called with order <= 0 and
// by the zero-value Tree.
const DefaultOrder = 32

// Tree is a B+tree over int keys. Not safe for concurrent mutation.
type Tree struct {
	root  *node
	order int // maximum number of children of an internal node
	size  int
}

type node struct {
	leaf     bool
	keys     []int
	children []*node // internal nodes only; len(children) == len(keys)+1
	next     *node   // leaf nodes only; linked list in key order
}

// New returns an empty tree. order is the maximum fan-out (number of
// children) of internal nodes; values below 3 fall back to DefaultOrder.
func New(order int) *Tree {
	if order < 3 {
		order = DefaultOrder
	}
	return &Tree{order: order}
}

func (t *Tree) init() {
	if t.order < 3 {
		t.order = DefaultOrder
	}
	if t.root == nil {
		t.root = &node{leaf: true}
	}
}

// maxKeys is the largest number of keys any node may hold.
func (t *Tree) maxKeys() int { return t.order - 1 }

// minKeys is the smallest number of keys a non-root node may hold.
func (t *Tree) minKeys() int { return (t.order - 1) / 2 }

// Len returns the number of keys stored.
func (t *Tree) Len() int { return t.size }

// Contains reports whether key is present.
func (t *Tree) Contains(key int) bool {
	if t.root == nil {
		return false
	}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchInts(n.keys, key)
	return i < len(n.keys) && n.keys[i] == key
}

// childIndex returns the index of the child subtree that may contain key.
// Separator keys equal the minimum key of their right subtree, so the
// child index is the number of separators <= key.
func childIndex(keys []int, key int) int {
	return sort.SearchInts(keys, key+1)
}

// Insert adds key and reports whether it was not already present.
func (t *Tree) Insert(key int) bool {
	t.init()
	sep, right, added := t.insert(t.root, key)
	if right != nil {
		t.root = &node{
			keys:     []int{sep},
			children: []*node{t.root, right},
		}
	}
	if added {
		t.size++
	}
	return added
}

// insert adds key under n. If n overflows it splits; the returned sep and
// right describe the new sibling to be linked by the caller.
func (t *Tree) insert(n *node, key int) (sep int, right *node, added bool) {
	if n.leaf {
		i := sort.SearchInts(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			return 0, nil, false
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		if len(n.keys) > t.maxKeys() {
			sep, right = t.splitLeaf(n)
			return sep, right, true
		}
		return 0, nil, true
	}

	ci := childIndex(n.keys, key)
	csep, cright, cadded := t.insert(n.children[ci], key)
	if cright != nil {
		n.keys = append(n.keys, 0)
		copy(n.keys[ci+1:], n.keys[ci:])
		n.keys[ci] = csep
		n.children = append(n.children, nil)
		copy(n.children[ci+2:], n.children[ci+1:])
		n.children[ci+1] = cright
		if len(n.keys) > t.maxKeys() {
			sep, right = t.splitInternal(n)
			return sep, right, cadded
		}
	}
	return 0, nil, cadded
}

// splitLeaf moves the upper half of a leaf into a new sibling and returns
// the separator (the sibling's first key).
func (t *Tree) splitLeaf(n *node) (sep int, right *node) {
	mid := len(n.keys) / 2
	right = &node{leaf: true, next: n.next}
	right.keys = append(right.keys, n.keys[mid:]...)
	n.keys = n.keys[:mid:mid]
	n.next = right
	return right.keys[0], right
}

// splitInternal promotes the middle key of an internal node and moves the
// upper half into a new sibling.
func (t *Tree) splitInternal(n *node) (sep int, right *node) {
	mid := len(n.keys) / 2
	sep = n.keys[mid]
	right = &node{}
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.children = append(right.children, n.children[mid+1:]...)
	n.keys = n.keys[:mid:mid]
	n.children = n.children[: mid+1 : mid+1]
	return sep, right
}

// Delete removes key and reports whether it was present.
func (t *Tree) Delete(key int) bool {
	if t.root == nil || t.size == 0 {
		return false
	}
	deleted := t.delete(t.root, key)
	if deleted {
		t.size--
	}
	// Shrink the tree if the root is an internal node with one child.
	if !t.root.leaf && len(t.root.keys) == 0 {
		t.root = t.root.children[0]
	}
	return deleted
}

// delete removes key from the subtree rooted at n. Underflow of children
// is repaired here (in the parent), where siblings are reachable.
func (t *Tree) delete(n *node, key int) bool {
	if n.leaf {
		i := sort.SearchInts(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return false
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		return true
	}

	ci := childIndex(n.keys, key)
	child := n.children[ci]
	deleted := t.delete(child, key)
	if deleted && len(child.keys) < t.minKeys() {
		t.rebalance(n, ci)
	}
	return deleted
}

// rebalance repairs an underflowing child n.children[ci] by borrowing from
// a sibling when possible and merging otherwise.
func (t *Tree) rebalance(n *node, ci int) {
	child := n.children[ci]

	// Borrow from the left sibling.
	if ci > 0 {
		left := n.children[ci-1]
		if len(left.keys) > t.minKeys() {
			if child.leaf {
				k := left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				child.keys = append([]int{k}, child.keys...)
				n.keys[ci-1] = child.keys[0]
			} else {
				// Rotate through the separator.
				child.keys = append([]int{n.keys[ci-1]}, child.keys...)
				n.keys[ci-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				child.children = append([]*node{left.children[len(left.children)-1]}, child.children...)
				left.children = left.children[:len(left.children)-1]
			}
			return
		}
	}

	// Borrow from the right sibling.
	if ci < len(n.children)-1 {
		right := n.children[ci+1]
		if len(right.keys) > t.minKeys() {
			if child.leaf {
				k := right.keys[0]
				right.keys = right.keys[1:]
				child.keys = append(child.keys, k)
				n.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, n.keys[ci])
				n.keys[ci] = right.keys[0]
				right.keys = right.keys[1:]
				child.children = append(child.children, right.children[0])
				right.children = right.children[1:]
			}
			return
		}
	}

	// Merge with a sibling. Prefer merging child into its left sibling so
	// leaf next-pointers stay simple.
	if ci > 0 {
		t.merge(n, ci-1)
	} else {
		t.merge(n, ci)
	}
}

// merge folds n.children[i+1] into n.children[i] and removes separator i.
func (t *Tree) merge(n *node, i int) {
	left, right := n.children[i], n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.next = right.next
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

// Min returns the smallest key; ok is false for an empty tree.
func (t *Tree) Min() (key int, ok bool) {
	if t.root == nil || t.size == 0 {
		return 0, false
	}
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	return n.keys[0], true
}

// Max returns the largest key; ok is false for an empty tree.
func (t *Tree) Max() (key int, ok bool) {
	if t.root == nil || t.size == 0 {
		return 0, false
	}
	n := t.root
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	return n.keys[len(n.keys)-1], true
}

// Height returns the number of levels (0 for an empty tree, 1 for a
// root-only leaf).
func (t *Tree) Height() int {
	if t.root == nil {
		return 0
	}
	h := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		h++
	}
	return h
}

// Iterator walks leaf keys in ascending order via the leaf links.
type Iterator struct {
	leaf *node
	idx  int
}

// SeekGE returns an iterator positioned at the smallest key >= key.
func (t *Tree) SeekGE(key int) Iterator {
	if t.root == nil || t.size == 0 {
		return Iterator{}
	}
	n := t.root
	for !n.leaf {
		n = n.children[childIndex(n.keys, key)]
	}
	i := sort.SearchInts(n.keys, key)
	it := Iterator{leaf: n, idx: i}
	it.skipExhausted()
	return it
}

// SeekFirst returns an iterator at the smallest key.
func (t *Tree) SeekFirst() Iterator {
	if t.root == nil || t.size == 0 {
		return Iterator{}
	}
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	it := Iterator{leaf: n, idx: 0}
	it.skipExhausted()
	return it
}

// Valid reports whether the iterator points at a key.
func (it *Iterator) Valid() bool {
	return it.leaf != nil && it.idx < len(it.leaf.keys)
}

// Key returns the current key. It panics on an invalid iterator.
func (it *Iterator) Key() int {
	if !it.Valid() {
		panic("btree: Key on invalid iterator")
	}
	return it.leaf.keys[it.idx]
}

// Next advances to the following key.
func (it *Iterator) Next() {
	if it.leaf == nil {
		return
	}
	it.idx++
	it.skipExhausted()
}

func (it *Iterator) skipExhausted() {
	for it.leaf != nil && it.idx >= len(it.leaf.keys) {
		it.leaf = it.leaf.next
		it.idx = 0
	}
}

// Ascend calls fn for every key in ascending order until fn returns false.
func (t *Tree) Ascend(fn func(key int) bool) {
	for it := t.SeekFirst(); it.Valid(); it.Next() {
		if !fn(it.Key()) {
			return
		}
	}
}

// Keys returns every key in ascending order. Intended for tests.
func (t *Tree) Keys() []int {
	out := make([]int, 0, t.size)
	t.Ascend(func(k int) bool { out = append(out, k); return true })
	return out
}

// String summarizes the tree shape for debugging.
func (t *Tree) String() string {
	return fmt.Sprintf("btree(order=%d size=%d height=%d)", t.order, t.size, t.Height())
}
