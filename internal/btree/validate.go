package btree

import (
	"fmt"
	"math"
)

// Validate checks the structural invariants of the tree:
//
//   - keys strictly ascending within every node and across the key space
//   - all leaves at the same depth
//   - node occupancy within [minKeys, maxKeys] (root exempt)
//   - separators bound their subtrees (left < sep <= right-subtree keys)
//   - the leaf linked list enumerates exactly the stored keys in order
//   - the stored size matches the leaf count
//
// It returns the first violation found, or nil.
func (t *Tree) Validate() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("btree: nil root with size %d", t.size)
		}
		return nil
	}
	leafDepth := -1
	var firstLeaf *node
	count := 0

	var walk func(n *node, depth, lo, hi int) error
	walk = func(n *node, depth, lo, hi int) error {
		if len(n.keys) > t.maxKeys() {
			return fmt.Errorf("btree: node with %d keys exceeds max %d", len(n.keys), t.maxKeys())
		}
		if n != t.root && len(n.keys) < t.minKeys() {
			return fmt.Errorf("btree: non-root node with %d keys below min %d", len(n.keys), t.minKeys())
		}
		for i, k := range n.keys {
			if i > 0 && n.keys[i-1] >= k {
				return fmt.Errorf("btree: keys not strictly ascending: %d then %d", n.keys[i-1], k)
			}
			if k < lo || k >= hi {
				return fmt.Errorf("btree: key %d outside range [%d,%d)", k, lo, hi)
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
				firstLeaf = n
			} else if depth != leafDepth {
				return fmt.Errorf("btree: leaf at depth %d, expected %d", depth, leafDepth)
			}
			count += len(n.keys)
			return nil
		}
		if len(n.children) != len(n.keys)+1 {
			return fmt.Errorf("btree: internal node with %d keys but %d children", len(n.keys), len(n.children))
		}
		if n.next != nil {
			return fmt.Errorf("btree: internal node has leaf link")
		}
		for i, c := range n.children {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if err := walk(c, depth+1, clo, chi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, math.MinInt, math.MaxInt); err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("btree: size %d but %d keys in leaves", t.size, count)
	}

	// The leaf chain must enumerate the keys in ascending order and must
	// start at the leftmost leaf.
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	if n != firstLeaf {
		return fmt.Errorf("btree: leftmost leaf is not the first leaf visited")
	}
	chained := 0
	last := math.MinInt
	for leaf := n; leaf != nil; leaf = leaf.next {
		for _, k := range leaf.keys {
			if k <= last {
				return fmt.Errorf("btree: leaf chain not ascending: %d then %d", last, k)
			}
			last = k
			chained++
		}
	}
	if chained != t.size {
		return fmt.Errorf("btree: leaf chain has %d keys, size is %d", chained, t.size)
	}
	return nil
}
