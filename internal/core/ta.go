package core

import (
	"topk/internal/access"
	"topk/internal/rank"
)

// TA is the Threshold Algorithm (Section 3.2):
//
//  1. Sorted access in parallel to all m lists. For every item seen under
//     sorted access, random access to the other lists fetches its missing
//     local scores and its overall score enters the answer set Y.
//  2. After each position, the threshold δ = f(s1, ..., sm) is computed
//     from the last scores seen under sorted access. When Y holds k items
//     with overall score >= δ, sorted access stops.
//
// Accounting is paper-faithful: every sorted access triggers (m-1) random
// accesses, including for items that were already seen (Example 2 counts
// 9 sorted and 9*2 random accesses; Lemma 2 relies on
// #random = #sorted * (m-1)). Options.Memoize disables that redundancy as
// an ablation that is not part of the paper's TA.
func TA(pr *access.Probe, opts Options) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()
	f := opts.Scoring

	theta := opts.theta()
	y := rank.NewSet(opts.K)
	locals := make([]float64, m)
	last := make([]float64, m)
	var seen []bool
	if opts.Memoize {
		seen = make([]bool, n)
	}

	res := &Result{Algorithm: AlgTA}
	for pos := 1; pos <= n; pos++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			e := pr.Sorted(i, pos)
			last[i] = e.Score
			if opts.Memoize && seen[e.Item] {
				continue
			}
			locals[i] = e.Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				locals[j], _ = pr.Random(j, e.Item)
			}
			y.Add(e.Item, f.Combine(locals))
			if opts.Memoize {
				seen[e.Item] = true
			}
		}
		delta := f.Combine(last)
		res.Threshold = delta
		res.StopPosition = pos
		res.Rounds = pos
		stopped := y.AtLeast(delta / theta)
		observe(opts.Observer, pos, pos, delta, y, nil, stopped)
		if stopped {
			break
		}
		// At pos == n every local score is >= its list minimum, so by
		// monotonicity every kept score is >= δ and AtLeast held above;
		// the loop cannot fall through with a partial answer while k <= n.
	}

	res.Items = y.Slice()
	res.Counts = pr.Counts()
	return res, nil
}
