package core

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"topk/internal/access"
	"topk/internal/list"
	"topk/internal/score"
)

func TestAlgorithmStrings(t *testing.T) {
	cases := map[Algorithm]string{
		AlgNaive:      "Naive",
		AlgFA:         "FA",
		AlgTA:         "TA",
		AlgBPA:        "BPA",
		AlgBPA2:       "BPA2",
		Algorithm(42): "Algorithm(42)",
	}
	for alg, want := range cases {
		if got := alg.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", alg, got, want)
		}
	}
	if len(Algorithms()) != 5 {
		t.Errorf("Algorithms() = %v", Algorithms())
	}
}

func TestRunUnknownAlgorithm(t *testing.T) {
	db := figure1DB(t)
	if _, err := Run(Algorithm(99), db, paperOpts()); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestOptionsValidation(t *testing.T) {
	db := figure1DB(t)
	cases := []struct {
		name string
		opts Options
	}{
		{"k too small", Options{K: 0, Scoring: score.Sum{}}},
		{"k too large", Options{K: db.N() + 1, Scoring: score.Sum{}}},
		{"nil scoring", Options{K: 1}},
	}
	for _, alg := range Algorithms() {
		for _, c := range cases {
			if _, err := Run(alg, db, c.opts); err == nil {
				t.Errorf("%v accepted %s", alg, c.name)
			}
		}
		if _, err := Run(alg, nil, paperOpts()); err == nil {
			t.Errorf("%v accepted nil database", alg)
		}
	}
}

func TestOracleValidation(t *testing.T) {
	db := figure1DB(t)
	if _, err := Oracle(nil, 1, score.Sum{}); err == nil {
		t.Error("nil db accepted")
	}
	if _, err := Oracle(db, 1, nil); err == nil {
		t.Error("nil scoring accepted")
	}
	if _, err := Oracle(db, 0, score.Sum{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Oracle(db, db.N()+1, score.Sum{}); err == nil {
		t.Error("k>n accepted")
	}
}

func TestFARejectsTooManyLists(t *testing.T) {
	cols := make([][]float64, faMaxLists+1)
	for i := range cols {
		cols[i] = []float64{1, 0}
	}
	db, err := list.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	_, err = FA(access.NewProbe(db), Options{K: 1, Scoring: score.Sum{}})
	if err == nil || !strings.Contains(err.Error(), "at most") {
		t.Fatalf("FA with %d lists: %v", faMaxLists+1, err)
	}
}

// TestKEqualsN forces the algorithms to return everything; all must
// terminate and agree with the oracle.
func TestKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := randomDB(rng, 12, 3)
	oracle, err := Oracle(db, 12, score.Sum{})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		res, err := Run(alg, db, Options{K: 12, Scoring: score.Sum{}})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		assertSameAnswers(t, alg, res.Items, oracle)
	}
}

// TestSingleList (m=1): sorted access alone is enough; the threshold is
// the last seen score, so TA/BPA stop exactly at position k.
func TestSingleList(t *testing.T) {
	db, err := list.FromColumns([][]float64{{5, 9, 1, 7, 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgTA, AlgBPA} {
		res, err := Run(alg, db, Options{K: 2, Scoring: score.Sum{}})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.StopPosition != 2 {
			t.Errorf("%v stop position = %d, want 2", alg, res.StopPosition)
		}
		if res.Counts.Random != 0 {
			t.Errorf("%v did %d random accesses with m=1", alg, res.Counts.Random)
		}
		if res.Items[0].Item != 1 || res.Items[0].Score != 9 {
			t.Errorf("%v top = %+v", alg, res.Items[0])
		}
	}
}

// TestSingleItem (n=1, k=1): the degenerate smallest instance.
func TestSingleItem(t *testing.T) {
	db, err := list.FromColumns([][]float64{{3}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		res, err := Run(alg, db, Options{K: 1, Scoring: score.Sum{}})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(res.Items) != 1 || res.Items[0].Score != 7 {
			t.Errorf("%v items = %v", alg, res.Items)
		}
	}
}

// TestAllTiedScores: every item identical; any k items are correct and
// all algorithms must stop at the first opportunity without error.
func TestAllTiedScores(t *testing.T) {
	cols := [][]float64{{2, 2, 2, 2}, {5, 5, 5, 5}}
	db, err := list.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range Algorithms() {
		res, err := Run(alg, db, Options{K: 2, Scoring: score.Sum{}})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		for _, it := range res.Items {
			if it.Score != 7 {
				t.Errorf("%v returned score %v, want 7", alg, it.Score)
			}
		}
	}
}

// TestRegressionBPA2Overshoot pins the counterexample to the paper's
// "same best positions" claim found by property testing (DESIGN.md):
// BPA and BPA2 legitimately end with different best positions here, but
// all the paper's provable guarantees must hold.
func TestRegressionBPA2Overshoot(t *testing.T) {
	rng := rand.New(rand.NewSource(9094815724843001616))
	n, m, k := 22, 3, 19
	db := randomDB(rng, n, m)
	f := randomScoring(rng, m)
	opts := Options{K: k, Scoring: f}

	bpa, err := BPA(access.NewProbe(db), opts)
	if err != nil {
		t.Fatal(err)
	}
	pr := access.NewAuditedProbe(db)
	bpa2, err := BPA2(pr, opts)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range bpa.BestPositions {
		if bpa.BestPositions[i] != bpa2.BestPositions[i] {
			same = false
		}
	}
	if same {
		t.Log("instance no longer distinguishes stop states (generator changed?)")
	}
	if bpa2.Counts.Total() > bpa.Counts.Total() {
		t.Errorf("Theorem 7 violated: %d > %d", bpa2.Counts.Total(), bpa.Counts.Total())
	}
	if err := pr.AssertSingleAccess(); err != nil {
		t.Errorf("Theorem 5 violated: %v", err)
	}
	oracle, err := Oracle(db, k, f)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, AlgBPA, bpa.Items, oracle)
	assertSameAnswers(t, AlgBPA2, bpa2.Items, oracle)
}

// TestConcurrentQueries checks that a Database is safe for concurrent
// read-only queries (run with -race).
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db := randomDB(rng, 60, 4)
	oracle, err := Oracle(db, 5, score.Sum{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		alg := Algorithms()[g%len(Algorithms())]
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, err := Run(alg, db, Options{K: 5, Scoring: score.Sum{}})
				if err != nil {
					errs <- err
					return
				}
				for j := range oracle {
					if res.Items[j].Score != oracle[j].Score {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestResultCost sanity-checks the cost computation against a hand
// computation.
func TestResultCost(t *testing.T) {
	res := &Result{Counts: access.Counts{Sorted: 10, Random: 5, Direct: 2}}
	model := access.CostModel{SortedCost: 1, RandomCost: 10, DirectCost: 20}
	if got := res.Cost(model); got != 10+50+40 {
		t.Errorf("Cost = %v, want 100", got)
	}
}
