package core

import (
	"container/heap"
	"fmt"
	"math"

	"topk/internal/access"
	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
)

// NRA is the No-Random-Access algorithm of Fagin, Lotem and Naor — the
// paper's reference [15], Section 5 there. It is implemented here as an
// additional baseline from the framework BPA builds on: NRA marks the
// sorted-access-only end of the design space, while TA/BPA/BPA2 sit at
// the random-access end.
//
// NRA does sorted access in parallel to all m lists and never a random
// access. For every seen item d it maintains two bounds on the overall
// score:
//
//   - the worst case W(d) = f with every unseen local score replaced by
//     the list's floor (its minimum possible score);
//   - the best case B(d) = f with every unseen local score replaced by
//     the last score seen under sorted access in that list.
//
// The answer set Y holds the k items with the highest W. NRA stops when
// no item outside Y can beat the k-th worst case W_k: B(d) <= W_k for
// every seen d not in Y, and f(last scores) <= W_k for the still-unseen
// items. NRA returns a correct top-k *set*, but the scores it knows for
// the returned items are only the W bounds — Result.Inexact reports
// whether any returned score is a bound rather than an exact value.
//
// Options.Floors supplies the per-list score floors; when nil they are
// taken from the list tails via ListFloors (list-owner metadata in the
// middleware model, not a charged access). Options.Approximation θ > 1
// relaxes the stopping test to B(d)/θ <= W_k, mirroring the θ-approximate
// TA. Options.Memoize and Options.Tracker are ignored: there are no
// random accesses to memoize and no best positions to track.
func NRA(pr *access.Probe, opts Options) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	s, err := newBoundsState(db, opts)
	if err != nil {
		return nil, err
	}

	res := &Result{Algorithm: AlgNRA}
	for pos := 1; pos <= s.n; pos++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for i := 0; i < s.m; i++ {
			e := pr.Sorted(i, pos)
			s.last[i] = e.Score
			s.observe(i, e)
		}
		s.primed = true
		res.StopPosition = pos
		res.Rounds = pos
		stopped := s.tryStop()
		if wk, full := s.top.Threshold(); full {
			res.Threshold = wk
		}
		observe(opts.Observer, pos, pos, s.f.Combine(s.last), s.top, nil, stopped)
		if stopped {
			break
		}
	}

	res.Items = s.top.Slice()
	for _, it := range res.Items {
		if !s.resolved(it.Item) {
			res.Inexact = true
			break
		}
	}
	res.Counts = pr.Counts()
	return res, nil
}

// ListFloors returns each list's minimum local score, read from the list
// tails. In the middleware model this is list-owner metadata — an owner
// knows the range of its own grades, just as it knows its length — so
// reading it is not charged as an access. (Fagin et al. assume grades in
// a known interval for the same reason.)
func ListFloors(db *list.Database) []float64 {
	floors := make([]float64, db.M())
	n := db.N()
	for i := range floors {
		floors[i] = db.List(i).At(n).Score
	}
	return floors
}

// boundsState is the shared bookkeeping of NRA and CA: per-item seen
// local scores, worst/best-case bounds, the answer set ordered by worst
// case, and the lazy candidate heap behind the stopping test.
type boundsState struct {
	m, n   int
	f      score.Func
	theta  float64
	floors []float64
	last   []float64 // last score seen under sorted access, per list

	seen   []bool    // seen[item*m + i]: local score of item in list i known
	scores []float64 // scores[item*m + i], valid where seen
	nSeen  []int32   // number of lists in which the item has been seen
	// primed is set once every list has been read under sorted access at
	// least once. Before that, last[] has no meaningful value for the
	// not-yet-read lists of the first round, so best-case bounds are +Inf
	// (the only sound upper bound on an unconstrained score).
	primed bool

	top       *rank.TopTracker // Y: top-k by worst-case bound
	cand      bHeap            // seen, unresolved, non-Y items by stale best-case bound
	seenItems int

	tmp []float64 // scratch for Combine
}

func newBoundsState(db *list.Database, opts Options) (*boundsState, error) {
	m, n := db.M(), db.N()
	floors := opts.Floors
	if floors == nil {
		floors = ListFloors(db)
	} else {
		if len(floors) != m {
			return nil, fmt.Errorf("core: %d floors for %d lists", len(floors), m)
		}
		for i, fl := range floors {
			if math.IsNaN(fl) {
				return nil, fmt.Errorf("core: floor %d is NaN", i)
			}
			if min := db.List(i).At(n).Score; fl > min {
				return nil, fmt.Errorf("core: floor %d is %v but list %d has minimum score %v; unsound floors would break NRA's worst-case bounds", i, fl, i, min)
			}
		}
		floors = append([]float64(nil), floors...)
	}
	return &boundsState{
		m:      m,
		n:      n,
		f:      opts.Scoring,
		theta:  opts.theta(),
		floors: floors,
		last:   make([]float64, m),
		seen:   make([]bool, n*m),
		scores: make([]float64, n*m),
		nSeen:  make([]int32, n),
		top:    rank.NewTopTracker(opts.K),
		tmp:    make([]float64, m),
	}, nil
}

// resolved reports whether every local score of the item is known, which
// makes its worst and best case coincide with the exact overall score.
func (s *boundsState) resolved(d list.ItemID) bool { return int(s.nSeen[d]) == s.m }

// worstCase returns W(d): unseen local scores replaced by the floors.
func (s *boundsState) worstCase(d list.ItemID) float64 {
	base := int(d) * s.m
	for i := 0; i < s.m; i++ {
		if s.seen[base+i] {
			s.tmp[i] = s.scores[base+i]
		} else {
			s.tmp[i] = s.floors[i]
		}
	}
	return s.f.Combine(s.tmp)
}

// bestCase returns B(d): unseen local scores replaced by the last scores
// seen under sorted access. Until every list has been read once (mid
// first round), the bound is +Inf: substituting a zeroed last[] there
// would *under*estimate B — the bug class this guard exists for — and
// computing through f could produce NaN (0 × Inf in a weighted sum).
func (s *boundsState) bestCase(d list.ItemID) float64 {
	if !s.primed {
		return math.Inf(1)
	}
	base := int(d) * s.m
	for i := 0; i < s.m; i++ {
		if s.seen[base+i] {
			s.tmp[i] = s.scores[base+i]
		} else {
			s.tmp[i] = s.last[i]
		}
	}
	return s.f.Combine(s.tmp)
}

// observe records one (list, entry) observation — from sorted access in
// NRA, from sorted or random access in CA — and maintains the answer set
// and the candidate heap. It reports whether this was the item's first
// observation in any list.
//
// Candidate-heap invariant: every seen, unresolved item outside Y has at
// least one heap entry whose key upper-bounds its current best case.
// Keys go stale (they were computed with earlier, higher last scores) but
// stale keys only overestimate, which the lazy pops in tryStop repair.
func (s *boundsState) observe(i int, e list.Entry) (first bool) {
	idx := int(e.Item)*s.m + i
	if s.seen[idx] {
		return false
	}
	first = s.nSeen[e.Item] == 0
	if first {
		s.seenItems++
	}
	s.seen[idx] = true
	s.scores[idx] = e.Score
	s.nSeen[e.Item]++

	evicted, hasEvicted, _ := s.top.OfferEvict(e.Item, s.worstCase(e.Item))
	if hasEvicted && !s.resolved(evicted.Item) {
		heap.Push(&s.cand, bEntry{item: evicted.Item, b: s.bestCase(evicted.Item)})
	}
	if first && !s.top.Contains(e.Item) {
		heap.Push(&s.cand, bEntry{item: e.Item, b: s.bestCase(e.Item)})
	}
	return first
}

// tryStop evaluates the NRA stopping condition: Y is full, the unseen
// items cannot beat W_k (f(last)/θ <= W_k), and no seen candidate outside
// Y can (B(d)/θ <= W_k).
//
// The candidate heap is processed lazily: keys only ever overestimate the
// current best case, so when the largest key is within the bound the
// whole pool is. Popped entries are dropped when the item is resolved
// (then B = W <= W_k holds forever once it is outside Y) or currently in
// Y (it re-enters the heap on eviction), and re-pushed with a refreshed
// key otherwise.
func (s *boundsState) tryStop() bool {
	wk, full := s.top.Threshold()
	if !full {
		return false
	}
	if s.seenItems < s.n && s.f.Combine(s.last)/s.theta > wk {
		return false
	}
	for s.cand.Len() > 0 {
		top := s.cand[0]
		if top.b/s.theta <= wk {
			break
		}
		heap.Pop(&s.cand)
		if s.resolved(top.item) || s.top.Contains(top.item) {
			continue
		}
		cur := s.bestCase(top.item)
		heap.Push(&s.cand, bEntry{item: top.item, b: cur})
		if cur/s.theta > wk {
			return false
		}
	}
	return true
}

// bEntry is one candidate of the lazy best-case heaps: an item and the
// (possibly stale) best-case bound it was filed under.
type bEntry struct {
	item list.ItemID
	b    float64
}

// bHeap is a max-heap of candidates by filed best-case bound.
type bHeap []bEntry

func (h bHeap) Len() int           { return len(h) }
func (h bHeap) Less(i, j int) bool { return h[i].b > h[j].b }
func (h bHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *bHeap) Push(x any)        { *h = append(*h, x.(bEntry)) }
func (h *bHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
