package core

import (
	"testing"

	"topk/internal/list"
	"topk/internal/paperdb"
)

// The paper's example databases (Figure 1 and Figure 2) are provided by
// internal/paperdb, completed from 10 shown positions to n=14 as
// described there. The tests in this file's siblings assert every numeric
// claim the paper makes about them, which also validates the completion.

// d converts the paper's 1-based item names (d1..d14) to ItemIDs.
func d(i int) list.ItemID { return paperdb.Item(i) }

// figure1DB is the database of Figure 1 (Examples 1-3).
func figure1DB(t *testing.T) *list.Database {
	t.Helper()
	db, err := paperdb.Figure1()
	if err != nil {
		t.Fatalf("figure 1 database: %v", err)
	}
	return db
}

// figure2DB is the database of Figure 2 (Section 5.1 example).
func figure2DB(t *testing.T) *list.Database {
	t.Helper()
	db, err := paperdb.Figure2()
	if err != nil {
		t.Fatalf("figure 2 database: %v", err)
	}
	return db
}
