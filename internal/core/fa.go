package core

import (
	"fmt"

	"topk/internal/access"
	"topk/internal/list"
	"topk/internal/rank"
)

// faMaxLists bounds m for FA, which tracks per-item seen-lists bitmasks in
// a single machine word. The paper's experiments use m <= 18.
const faMaxLists = 64

// FA is Fagin's Algorithm (Section 3.1):
//
//  1. Sorted access in parallel to all m lists until at least k items have
//     been seen in every list.
//  2. Random access for each seen item's missing local scores.
//  3. Return the k items with the highest overall scores.
func FA(pr *access.Probe, opts Options) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()
	if m > faMaxLists {
		return nil, fmt.Errorf("core: FA supports at most %d lists, got %d", faMaxLists, m)
	}

	// seenIn[d] has bit i set when item d was seen under sorted access in
	// list i; full items have all m bits set.
	seenIn := make([]uint64, n)
	fullMask := uint64(1)<<uint(m) - 1
	fullCount := 0
	stop := n
scan:
	for pos := 1; pos <= n; pos++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			e := pr.Sorted(i, pos)
			old := seenIn[e.Item]
			seenIn[e.Item] = old | 1<<uint(i)
			if seenIn[e.Item] == fullMask && old != fullMask {
				fullCount++
			}
		}
		if fullCount >= opts.K {
			stop = pos
			break scan
		}
	}

	// Phase 2: complete every partially seen item with random accesses.
	// Scores seen under sorted access were maintained in the set S and
	// need no further charged access; missing ones cost one random access
	// each.
	y := rank.NewSet(opts.K)
	locals := make([]float64, m)
	for d := 0; d < n; d++ {
		mask := seenIn[d]
		if mask == 0 {
			continue
		}
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		item := list.ItemID(d)
		for i := 0; i < m; i++ {
			if mask&(1<<uint(i)) != 0 {
				locals[i] = db.List(i).ScoreOf(item)
			} else {
				locals[i], _ = pr.Random(i, item)
			}
		}
		y.Add(item, opts.Scoring.Combine(locals))
	}

	return &Result{
		Algorithm:    AlgFA,
		Items:        y.Slice(),
		Counts:       pr.Counts(),
		StopPosition: stop,
		Rounds:       stop,
	}, nil
}
