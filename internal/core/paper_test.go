package core

import (
	"testing"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/rank"
	"topk/internal/score"
)

// paperOpts is the query of Examples 1-3: k=3, f = sum of local scores.
func paperOpts() Options {
	return Options{K: 3, Scoring: score.Sum{}}
}

// wantTop3Fig1 is the answer over Figure 1: d8=71, then d3=70 and d5=70
// (tie broken by item ID under the library's deterministic ordering).
var wantTop3Fig1 = []rank.ScoredItem{
	{Item: d(8), Score: 71},
	{Item: d(3), Score: 70},
	{Item: d(5), Score: 70},
}

func assertItems(t *testing.T, got, want []rank.ScoredItem) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d items, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("item %d: got {d%d %v}, want {d%d %v}",
				i, got[i].Item+1, got[i].Score, want[i].Item+1, want[i].Score)
		}
	}
}

// TestExample1FA reproduces Example 1: over Figure 1, FA cannot stop
// before position 7 and stops at position 8, where 5 items (d1, d3, d5,
// d6, d8) have been seen in all lists.
func TestExample1FA(t *testing.T) {
	db := figure1DB(t)
	res, err := FA(access.NewProbe(db), paperOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.StopPosition != 8 {
		t.Errorf("FA stop position = %d, want 8", res.StopPosition)
	}
	assertItems(t, res.Items, wantTop3Fig1)
	if got := res.Counts.Sorted; got != 8*3 {
		t.Errorf("FA sorted accesses = %d, want 24", got)
	}
	// Phase 2 random accesses: d2 misses L1, d4 misses L2, d7 misses L3,
	// d9 misses L3, d13 misses L1 and L2 -> 6 random accesses.
	if got := res.Counts.Random; got != 6 {
		t.Errorf("FA random accesses = %d, want 6", got)
	}
}

// TestExample2TA reproduces Example 2: over Figure 1, TA stops at
// position 6 with threshold 63, having done 18 sorted and 36 random
// accesses (a total of 9 useless sorted accesses versus the position-3
// ideal).
func TestExample2TA(t *testing.T) {
	db := figure1DB(t)
	res, err := TA(access.NewProbe(db), paperOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.StopPosition != 6 {
		t.Errorf("TA stop position = %d, want 6", res.StopPosition)
	}
	if res.Threshold != 63 {
		t.Errorf("TA final threshold = %v, want 63", res.Threshold)
	}
	assertItems(t, res.Items, wantTop3Fig1)
	if got := res.Counts.Sorted; got != 18 {
		t.Errorf("TA sorted accesses = %d, want 18 (6 positions x 3 lists)", got)
	}
	if got := res.Counts.Random; got != 36 {
		t.Errorf("TA random accesses = %d, want 36 (18 x (m-1))", got)
	}
}

// TestExample3BPA reproduces Example 3: over Figure 1, BPA stops at
// position 3 — exactly the first position at which the top-k answers are
// all seen — with best positions bp1=9, bp2=9, bp3=6 and λ = 11+13+19 = 43.
func TestExample3BPA(t *testing.T) {
	db := figure1DB(t)
	for _, kind := range bestpos.Kinds() {
		t.Run(kind.String(), func(t *testing.T) {
			opts := paperOpts()
			opts.Tracker = kind
			res, err := BPA(access.NewProbe(db), opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.StopPosition != 3 {
				t.Errorf("BPA stop position = %d, want 3", res.StopPosition)
			}
			if res.Threshold != 43 {
				t.Errorf("BPA final λ = %v, want 43", res.Threshold)
			}
			wantBP := []int{9, 9, 6}
			for i, bp := range res.BestPositions {
				if bp != wantBP[i] {
					t.Errorf("best position of list %d = %d, want %d", i+1, bp, wantBP[i])
				}
			}
			assertItems(t, res.Items, wantTop3Fig1)
			// Section 4.2: "With BPA, the number of sorted accesses and
			// random accesses is 3*3=9 and 9*2=18, respectively."
			if got := res.Counts.Sorted; got != 9 {
				t.Errorf("BPA sorted accesses = %d, want 9", got)
			}
			if got := res.Counts.Random; got != 18 {
				t.Errorf("BPA random accesses = %d, want 18", got)
			}
		})
	}
}

// TestExample3Lambdas replays BPA over Figure 1 position by position and
// checks the λ sequence the paper walks through: 88 at position 1, 84 at
// position 2, 43 at position 3.
func TestExample3Lambdas(t *testing.T) {
	db := figure1DB(t)
	// Run BPA to each position bound by restricting k so it cannot stop
	// early... instead we re-derive λ from the result of full runs: the
	// final λ is asserted in TestExample3BPA; here we check the earlier
	// thresholds via the tracker-level reasoning: P1={1,4,9} after
	// position 1 gives bp1=1, etc. This is a direct tracker test.
	type roundSpec struct {
		marks  [3][]int // positions marked per list during the round
		wantBP [3]int
	}
	rounds := []roundSpec{
		{marks: [3][]int{{1, 4, 9}, {1, 6, 8}, {1, 5, 8}}, wantBP: [3]int{1, 1, 1}},
		{marks: [3][]int{{2, 7, 8}, {2, 4, 9}, {2, 4, 6}}, wantBP: [3]int{2, 2, 2}},
		{marks: [3][]int{{3, 5, 6}, {3, 5, 7}, {3, 9, 10}}, wantBP: [3]int{9, 9, 6}},
	}
	trackers := [3]bestpos.Tracker{}
	for i := range trackers {
		trackers[i] = bestpos.NewBitArray(db.N())
	}
	wantLambda := []float64{88, 84, 43}
	for r, spec := range rounds {
		for i, ps := range spec.marks {
			for _, p := range ps {
				trackers[i].MarkSeen(p)
			}
		}
		lambda := 0.0
		for i := range trackers {
			if got := trackers[i].Best(); got != spec.wantBP[i] {
				t.Fatalf("round %d: bp%d = %d, want %d", r+1, i+1, got, spec.wantBP[i])
			}
			lambda += db.List(i).At(trackers[i].Best()).Score
		}
		if lambda != wantLambda[r] {
			t.Errorf("round %d: λ = %v, want %v", r+1, lambda, wantLambda[r])
		}
	}
}

// TestFigure2BPAvsBPA2 reproduces the Section 5.1 example: over Figure 2,
// BPA stops at position 7 for a total of 63 accesses, while BPA2 reaches
// the same answer with direct accesses to positions 1, 2, 3 and 7 only —
// 36 accesses, about half.
func TestFigure2BPAvsBPA2(t *testing.T) {
	db := figure2DB(t)
	opts := paperOpts()

	bpa, err := BPA(access.NewProbe(db), opts)
	if err != nil {
		t.Fatal(err)
	}
	if bpa.StopPosition != 7 {
		t.Errorf("BPA stop position = %d, want 7", bpa.StopPosition)
	}
	if got := bpa.Counts.Total(); got != 63 {
		t.Errorf("BPA total accesses = %d, want 63 (21 sorted + 42 random)", got)
	}

	pr := access.NewAuditedProbe(db)
	bpa2, err := BPA2(pr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := bpa2.Counts.Total(); got != 36 {
		t.Errorf("BPA2 total accesses = %d, want 36 (12 direct + 24 random)", got)
	}
	if got := bpa2.Counts.Direct; got != 12 {
		t.Errorf("BPA2 direct accesses = %d, want 12", got)
	}
	if bpa2.Rounds != 4 {
		t.Errorf("BPA2 rounds = %d, want 4 (positions 1, 2, 3, 7)", bpa2.Rounds)
	}
	if err := pr.AssertSingleAccess(); err != nil {
		t.Errorf("BPA2 violated Theorem 5: %v", err)
	}

	// Both find the same top-3 of Figure 2: d3=70, d4=68, d6=66.
	want := []rank.ScoredItem{
		{Item: d(3), Score: 70},
		{Item: d(4), Score: 68},
		{Item: d(6), Score: 66},
	}
	assertItems(t, bpa.Items, want)
	assertItems(t, bpa2.Items, want)
}

// TestFigure2MemoizedBPA pins the memoization analysis of EXPERIMENTS.md
// Finding 1 on the paper's own example: over Figure 2, literal BPA does
// 21 sorted + 42 random accesses (the paper's numbers), while memoized
// BPA — same stop position 7, same answers — does only 24 random
// accesses: rounds 4-6 re-scan items d3/d5/d4, d7/d9/d2, d8/d1/d6 whose
// scores are already maintained, so only rounds 1-3 and 7 pay randoms.
func TestFigure2MemoizedBPA(t *testing.T) {
	db := figure2DB(t)
	opts := paperOpts()
	opts.Memoize = true
	res, err := BPA(access.NewProbe(db), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopPosition != 7 {
		t.Errorf("memoized BPA stop = %d, want 7", res.StopPosition)
	}
	if res.Counts.Sorted != 21 {
		t.Errorf("memoized BPA sorted = %d, want 21", res.Counts.Sorted)
	}
	if res.Counts.Random != 24 {
		t.Errorf("memoized BPA random = %d, want 24 (4 productive rounds x 3 items x 2 lists)", res.Counts.Random)
	}
	// Over Figure 1 the first three rounds see nine distinct items, so
	// memoization changes nothing: 9 sorted, 18 random, stop at 3.
	db1 := figure1DB(t)
	res1, err := BPA(access.NewProbe(db1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Counts.Sorted != 9 || res1.Counts.Random != 18 || res1.StopPosition != 3 {
		t.Errorf("memoized BPA over Figure 1: %v stop=%d, want 9/18 stop 3", res1.Counts, res1.StopPosition)
	}
}

// TestFigure2BPA2DirectPositions pins the paper's narration of the
// Section 5.1 example exactly: "If we apply BPA2, it does direct access
// to positions 1, 2, 3 and 7 in all lists". The probe's access trace
// shows precisely those direct probes, in round order, on every list.
func TestFigure2BPA2DirectPositions(t *testing.T) {
	db := figure2DB(t)
	pr := access.NewProbe(db)
	pr.EnableTrace()
	if _, err := BPA2(pr, paperOpts()); err != nil {
		t.Fatal(err)
	}
	wantPerList := []int{1, 2, 3, 7}
	got := map[int][]int{}
	for _, rec := range pr.Trace() {
		if rec.Mode == access.DirectAccess {
			got[rec.List] = append(got[rec.List], rec.Pos)
		}
	}
	for i := 0; i < db.M(); i++ {
		if len(got[i]) != len(wantPerList) {
			t.Fatalf("list %d direct positions = %v, want %v", i, got[i], wantPerList)
		}
		for j, p := range wantPerList {
			if got[i][j] != p {
				t.Errorf("list %d direct access %d at position %d, want %d", i, j+1, got[i][j], p)
			}
		}
	}
}

// TestFigure1AllAlgorithmsAgree checks that every algorithm returns the
// same answers over the Figure 1 database, and that the stopping-position
// ordering of the paper holds: BPA (3) < TA (6) < FA (8).
func TestFigure1AllAlgorithmsAgree(t *testing.T) {
	db := figure1DB(t)
	want, err := Oracle(db, 3, score.Sum{})
	if err != nil {
		t.Fatal(err)
	}
	assertItems(t, want, wantTop3Fig1)

	stops := map[Algorithm]int{}
	for _, alg := range Algorithms() {
		res, err := Run(alg, db, paperOpts())
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		assertItems(t, res.Items, want)
		stops[alg] = res.StopPosition
	}
	if !(stops[AlgBPA] < stops[AlgTA] && stops[AlgTA] < stops[AlgFA]) {
		t.Errorf("stop positions BPA=%d TA=%d FA=%d, want BPA < TA < FA",
			stops[AlgBPA], stops[AlgTA], stops[AlgFA])
	}
}
