// Package core implements the top-k algorithms of the paper: the naive
// full scan, Fagin's Algorithm (FA, Section 3.1), the Threshold Algorithm
// (TA, Section 3.2), and the paper's contributions BPA (Section 4) and
// BPA2 (Section 5).
//
// All algorithms read the database exclusively through access.Probe, so
// the access tallies (and therefore the paper's execution-cost and
// number-of-accesses metrics) are produced by construction, not by
// after-the-fact estimation.
package core

import (
	"context"
	"fmt"
	"sort"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
)

// Algorithm selects one of the implemented top-k algorithms.
type Algorithm uint8

const (
	// AlgNaive scans all lists completely. O(m*n); correctness baseline.
	AlgNaive Algorithm = iota
	// AlgFA is Fagin's Algorithm (Section 3.1).
	AlgFA
	// AlgTA is the Threshold Algorithm (Section 3.2).
	AlgTA
	// AlgBPA is the Best Position Algorithm (Section 4).
	AlgBPA
	// AlgBPA2 is the optimized Best Position Algorithm (Section 5).
	AlgBPA2
	// AlgNRA is the No-Random-Access algorithm of Fagin et al. (the
	// paper's reference [15], Section 5 there) — a sorted-access-only
	// baseline from the framework the paper builds on.
	AlgNRA
	// AlgCA is the Combined Algorithm of Fagin et al. ([15], Section 6):
	// NRA plus a periodic random-access resolution of the most promising
	// candidate.
	AlgCA
)

// String returns the algorithm name used in experiment tables.
func (a Algorithm) String() string {
	switch a {
	case AlgNaive:
		return "Naive"
	case AlgFA:
		return "FA"
	case AlgTA:
		return "TA"
	case AlgBPA:
		return "BPA"
	case AlgBPA2:
		return "BPA2"
	case AlgNRA:
		return "NRA"
	case AlgCA:
		return "CA"
	default:
		return fmt.Sprintf("Algorithm(%d)", uint8(a))
	}
}

// Algorithms lists the paper's lineup (Sections 3–5) in comparison order.
// All of them return exact overall scores.
func Algorithms() []Algorithm {
	return []Algorithm{AlgNaive, AlgFA, AlgTA, AlgBPA, AlgBPA2}
}

// ExtendedAlgorithms appends the Fagin-framework baselines NRA and CA to
// the paper's lineup. NRA and CA return a correct top-k set but possibly
// inexact scores (Result.Inexact); tests and experiments that assert
// exact scores should use Algorithms.
func ExtendedAlgorithms() []Algorithm {
	return append(Algorithms(), AlgNRA, AlgCA)
}

// Options configures a top-k query execution.
type Options struct {
	// Ctx, when non-nil, bounds the execution: the algorithms check it
	// at access granularity (every sorted/probe round of the threshold
	// algorithms, every position of the scan baselines) and abort with
	// Ctx.Err() once it is canceled or past its deadline. Nil means
	// uncancellable, matching the pre-context API.
	Ctx context.Context
	// K is the number of answers requested; 1 <= K <= n.
	K int
	// Scoring is the monotone overall-score function f.
	Scoring score.Func
	// Tracker selects the best-position structure for BPA/BPA2
	// (Section 5.2). The zero value is the bit array, matching the
	// paper's evaluation ("the best positions are managed using the Bit
	// Array approach").
	Tracker bestpos.Kind
	// Memoize makes TA and BPA skip the (m-1) random accesses for items
	// they have already seen. It never changes the answers or the
	// stopping position — only the access counts.
	//
	// The paper's formal accounting (Lemma 2, and the worked example of
	// Section 5.1) is NON-memoized: #random = #sorted * (m-1) always.
	// Its measured uniform-database gains for BPA, however, match the
	// memoized variant (see EXPERIMENTS.md), and its Section 7 remark
	// that "even if TA were keeping track of all seen data items, it
	// could not stop at a smaller position" explicitly contemplates the
	// memoized TA. Both variants are therefore first-class here.
	Memoize bool
	// Observer, when non-nil, receives a RoundInfo snapshot after every
	// round of TA, BPA and BPA2 — the data behind the paper's worked
	// examples. Naive and FA do not use thresholds and do not report.
	Observer Observer
	// Approximation is the θ >= 1 of the approximate threshold variant
	// (Fagin, Lotem, Naor; the paper's reference [15], Section 4.4
	// there): the run may stop as soon as Y holds k items with overall
	// score >= threshold/θ, and the returned set is a θ-approximation —
	// θ times the score of every returned item is at least the score of
	// every item not returned. The multiplicative guarantee is
	// meaningful for non-negative overall scores (Fagin et al. use
	// grades in [0,1]). Zero (or one) means exact. Naive and FA are
	// always exact and ignore it.
	Approximation float64
	// Floors gives NRA and CA the per-list minimum possible local score,
	// from which their worst-case bounds substitute unseen scores. Nil
	// takes each list's actual minimum via ListFloors (list-owner
	// metadata, not a charged access). Floors above a list's actual
	// minimum are rejected: they would break the bounds. Other
	// algorithms ignore the field.
	Floors []float64
	// CAPeriod is CA's random-access period h: every h rounds CA fully
	// resolves the most promising candidate. Zero takes the Fagin et al.
	// balance h = ⌊cr/cs⌋ = ⌊log2 n⌋ under the evaluation cost model.
	// Other algorithms ignore the field.
	CAPeriod int
}

// theta returns the effective approximation factor.
func (o Options) theta() float64 {
	if o.Approximation == 0 {
		return 1
	}
	return o.Approximation
}

// Interrupted returns Ctx's error once it is canceled or past its
// deadline; a nil Ctx never interrupts. The algorithms call it at their
// access boundaries; exported for executors outside this package
// (internal/parallel).
func (o Options) Interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// Validate checks the options against a database. It is what every
// algorithm entry point runs first; exported for executors outside this
// package (internal/parallel).
func (o Options) Validate(db *list.Database) error { return o.validate(db) }

func (o Options) validate(db *list.Database) error {
	if db == nil {
		return fmt.Errorf("core: nil database")
	}
	if o.Scoring == nil {
		return fmt.Errorf("core: nil scoring function")
	}
	if o.K < 1 || o.K > db.N() {
		return fmt.Errorf("core: k=%d out of range [1,%d]", o.K, db.N())
	}
	if o.Approximation != 0 && o.Approximation < 1 {
		return fmt.Errorf("core: approximation θ=%v must be >= 1", o.Approximation)
	}
	return nil
}

// Result reports the answers and the execution profile of one run.
type Result struct {
	// Algorithm that produced the result.
	Algorithm Algorithm
	// Items are the top-k answers ordered best-first (score desc, then
	// item ID asc).
	Items []rank.ScoredItem
	// Counts tallies every list access of the run.
	Counts access.Counts
	// StopPosition is the sorted-access depth at which the algorithm
	// stopped (FA, TA, BPA). For BPA2 it is 0: BPA2 performs no sorted
	// accesses; see Rounds and BestPositions instead.
	StopPosition int
	// Rounds is the number of parallel access rounds executed.
	Rounds int
	// BestPositions holds the final best position of every list for
	// BPA/BPA2, nil for the other algorithms.
	BestPositions []int
	// Threshold is the final stopping threshold: δ for TA, λ for
	// BPA/BPA2, the k-th worst-case bound W_k for NRA/CA; unset (0) for
	// Naive and FA.
	Threshold float64
	// Inexact reports that the scores in Items are worst-case lower
	// bounds rather than exact overall scores. Only NRA and CA can set
	// it — they guarantee the top-k *set*, not the scores — and it stays
	// false when every returned item happened to be fully resolved.
	Inexact bool
}

// Cost returns the execution cost of the run under the model
// (paper Section 2: as*cs + ar*cr, with direct accesses priced by the
// model's DirectCost as in Section 6.1).
func (r *Result) Cost(m access.CostModel) float64 { return m.Cost(r.Counts) }

// Run executes the selected algorithm over db with a fresh probe.
func Run(alg Algorithm, db *list.Database, opts Options) (*Result, error) {
	return RunProbe(alg, access.NewProbe(db), opts)
}

// RunProbe executes the selected algorithm through a caller-supplied
// probe, which tests use to audit per-position access counts.
func RunProbe(alg Algorithm, pr *access.Probe, opts Options) (*Result, error) {
	switch alg {
	case AlgNaive:
		return Naive(pr, opts)
	case AlgFA:
		return FA(pr, opts)
	case AlgTA:
		return TA(pr, opts)
	case AlgBPA:
		return BPA(pr, opts)
	case AlgBPA2:
		return BPA2(pr, opts)
	case AlgNRA:
		return NRA(pr, opts)
	case AlgCA:
		return CA(pr, opts)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %d", alg)
	}
}

// Oracle computes the exact top-k answers by brute force, bypassing the
// access model. It is the ground truth for tests and has no counterpart in
// the paper's cost accounting.
func Oracle(db *list.Database, k int, f score.Func) ([]rank.ScoredItem, error) {
	if db == nil || f == nil {
		return nil, fmt.Errorf("core: oracle needs database and scoring function")
	}
	if k < 1 || k > db.N() {
		return nil, fmt.Errorf("core: oracle k=%d out of range [1,%d]", k, db.N())
	}
	n, m := db.N(), db.M()
	locals := make([]float64, m)
	all := make([]rank.ScoredItem, n)
	for d := 0; d < n; d++ {
		item := list.ItemID(d)
		all[d] = rank.ScoredItem{
			Item:  item,
			Score: f.Combine(db.LocalScores(item, locals)),
		}
	}
	sort.Slice(all, func(i, j int) bool { return rank.Less(all[i], all[j]) })
	return all[:k:k], nil
}
