package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"topk/internal/access"
	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
)

// actualScores computes the exact overall score of every returned item by
// direct lookup, bypassing the access model. NRA and CA guarantee the
// top-k *set*, not the reported scores, so correctness is: the multiset
// of actual scores of the returned items equals the oracle's top-k score
// multiset.
func actualScores(db *list.Database, f score.Func, items []rank.ScoredItem) []float64 {
	locals := make([]float64, db.M())
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = f.Combine(db.LocalScores(it.Item, locals))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// assertValidTopKSet checks the set-level correctness contract of NRA/CA
// against the oracle.
func assertValidTopKSet(t *testing.T, alg Algorithm, db *list.Database, f score.Func, got, oracle []rank.ScoredItem) bool {
	t.Helper()
	if len(got) != len(oracle) {
		t.Errorf("%v: got %d answers, want %d", alg, len(got), len(oracle))
		return false
	}
	actual := actualScores(db, f, got)
	for i := range oracle {
		if actual[i] != oracle[i].Score {
			t.Errorf("%v: actual score %d = %v, want %v (items %v)", alg, i, actual[i], oracle[i].Score, got)
			return false
		}
	}
	return true
}

func TestNRAHandExampleResolved(t *testing.T) {
	// Two identical lists except for the order of items 0 and 1; the
	// walkthrough in the test comments below is hand-computed.
	//
	// L1: (0,10),(1,5),(2,1)   L2: (1,10),(0,5),(2,1)
	// Overall (Sum): item0 = 15, item1 = 15, item2 = 2.
	l1, err := list.New([]list.Entry{{Item: 0, Score: 10}, {Item: 1, Score: 5}, {Item: 2, Score: 1}})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := list.New([]list.Entry{{Item: 1, Score: 10}, {Item: 0, Score: 5}, {Item: 2, Score: 1}})
	if err != nil {
		t.Fatal(err)
	}
	db, err := list.NewDatabase(l1, l2)
	if err != nil {
		t.Fatal(err)
	}

	res, err := NRA(access.NewProbe(db), Options{K: 1, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: W(0)=11, W(1)=11, δ=20 > wk — no stop. Round 2: both
	// items fully seen with exact score 15, δ=15 <= 15, candidates
	// resolved — stop. Tie at 15 broken by item ID: item 0 wins.
	if res.StopPosition != 2 {
		t.Errorf("StopPosition = %d, want 2", res.StopPosition)
	}
	if len(res.Items) != 1 || res.Items[0].Item != 0 || res.Items[0].Score != 15 {
		t.Errorf("Items = %+v, want item 0 score 15", res.Items)
	}
	if res.Inexact {
		t.Error("Inexact = true for a fully resolved answer")
	}
	if res.Counts.Random != 0 || res.Counts.Direct != 0 {
		t.Errorf("NRA did non-sorted accesses: %v", res.Counts)
	}
	if res.Counts.Sorted != 4 { // 2 rounds x 2 lists
		t.Errorf("Sorted = %d, want 4", res.Counts.Sorted)
	}
}

func TestNRAHandExampleInexact(t *testing.T) {
	// L1: (0,100),(1,1),(2,1)  L2: (1,5),(2,5),(0,5) — all of L2 is 5.
	// After round 1: W(0) = 100 + floor2 = 105, δ = 100 + 5 = 105 <= wk,
	// and the only candidate's best case is 105 <= wk. NRA stops having
	// seen item 0 in list 1 only: the answer is right (actual 105) but
	// the algorithm cannot know the score is exact.
	l1, err := list.New([]list.Entry{{Item: 0, Score: 100}, {Item: 1, Score: 1}, {Item: 2, Score: 1}})
	if err != nil {
		t.Fatal(err)
	}
	l2, err := list.New([]list.Entry{{Item: 1, Score: 5}, {Item: 2, Score: 5}, {Item: 0, Score: 5}})
	if err != nil {
		t.Fatal(err)
	}
	db, err := list.NewDatabase(l1, l2)
	if err != nil {
		t.Fatal(err)
	}

	res, err := NRA(access.NewProbe(db), Options{K: 1, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopPosition != 1 {
		t.Errorf("StopPosition = %d, want 1", res.StopPosition)
	}
	if len(res.Items) != 1 || res.Items[0].Item != 0 {
		t.Fatalf("Items = %+v, want item 0", res.Items)
	}
	if res.Items[0].Score != 105 {
		t.Errorf("reported bound = %v, want 105", res.Items[0].Score)
	}
	if !res.Inexact {
		t.Error("Inexact = false for a partially seen answer")
	}
}

func TestListFloors(t *testing.T) {
	db := mustColumns(t, [][]float64{{3, 1, 2}, {-5, 7, 0}})
	got := ListFloors(db)
	want := []float64{1, -5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("floor %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func mustColumns(t *testing.T, cols [][]float64) *list.Database {
	t.Helper()
	db, err := list.FromColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestNRAFloorsValidation(t *testing.T) {
	db := mustColumns(t, [][]float64{{3, 1, 2}, {5, 7, 6}})
	cases := []struct {
		name   string
		floors []float64
		want   string
	}{
		{"wrong arity", []float64{0}, "floors for"},
		{"too high", []float64{2, 0}, "unsound"},
		{"nan", []float64{nan(), 0}, "NaN"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := NRA(access.NewProbe(db), Options{K: 1, Scoring: score.Sum{}, Floors: c.floors})
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("err = %v, want containing %q", err, c.want)
			}
		})
	}

	// Sound explicit floors (at or below the minima) are accepted.
	res, err := NRA(access.NewProbe(db), Options{K: 1, Scoring: score.Sum{}, Floors: []float64{0, 0}})
	if err != nil {
		t.Fatalf("sound floors rejected: %v", err)
	}
	if len(res.Items) != 1 {
		t.Fatalf("Items = %+v", res.Items)
	}
}

func nan() float64 {
	var z float64
	return z / z
}

func TestCAPeriodValidation(t *testing.T) {
	db := mustColumns(t, [][]float64{{3, 1, 2}, {5, 7, 6}})
	if _, err := CA(access.NewProbe(db), Options{K: 1, Scoring: score.Sum{}, CAPeriod: -1}); err == nil {
		t.Error("negative CA period accepted")
	}
}

func TestDefaultCAPeriod(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 1024: 10, 100_000: 16}
	for n, want := range cases {
		if got := defaultCAPeriod(n); got != want {
			t.Errorf("defaultCAPeriod(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestPropertyNRAMatchesOracleSet: on random databases (including signed
// scores, where the floors come from the list tails), NRA returns a valid
// top-k set using sorted accesses only.
func TestPropertyNRAMatchesOracleSet(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		oracle, err := Oracle(db, k, f)
		if err != nil {
			return false
		}
		res, err := NRA(access.NewProbe(db), Options{K: k, Scoring: f})
		if err != nil {
			t.Logf("NRA: %v", err)
			return false
		}
		if res.Counts.Random != 0 || res.Counts.Direct != 0 {
			t.Logf("NRA did non-sorted accesses: %v", res.Counts)
			return false
		}
		// Reported scores are lower bounds on the actual scores.
		locals := make([]float64, m)
		for _, it := range res.Items {
			actual := f.Combine(db.LocalScores(it.Item, locals))
			if it.Score > actual {
				t.Logf("NRA bound %v above actual %v for item %d", it.Score, actual, it.Item)
				return false
			}
			if !res.Inexact && it.Score != actual {
				t.Logf("Inexact=false but bound %v != actual %v", it.Score, actual)
				return false
			}
		}
		return assertValidTopKSet(t, AlgNRA, db, f, res.Items, oracle)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCAMatchesOracleSet: CA with random resolution periods
// returns a valid top-k set.
func TestPropertyCAMatchesOracleSet(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw, hRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		h := 1 + int(hRaw)%6
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		oracle, err := Oracle(db, k, f)
		if err != nil {
			return false
		}
		res, err := CA(access.NewProbe(db), Options{K: k, Scoring: f, CAPeriod: h})
		if err != nil {
			t.Logf("CA: %v", err)
			return false
		}
		if res.Counts.Direct != 0 {
			t.Logf("CA did direct accesses: %v", res.Counts)
			return false
		}
		return assertValidTopKSet(t, AlgCA, db, f, res.Items, oracle)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyCAWithoutResolutionsIsNRA: a period larger than n never
// fires a resolution, so CA must behave exactly like NRA — same answers,
// same rounds, same access tally.
func TestPropertyCAWithoutResolutionsIsNRA(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)

		nra, err := NRA(access.NewProbe(db), Options{K: k, Scoring: f})
		if err != nil {
			return false
		}
		ca, err := CA(access.NewProbe(db), Options{K: k, Scoring: f, CAPeriod: n + 1})
		if err != nil {
			return false
		}
		if ca.Rounds != nra.Rounds || ca.Counts != nra.Counts {
			t.Logf("CA(h>n) diverged from NRA: rounds %d vs %d, counts %v vs %v",
				ca.Rounds, nra.Rounds, ca.Counts, nra.Counts)
			return false
		}
		if len(ca.Items) != len(nra.Items) {
			return false
		}
		for i := range ca.Items {
			if ca.Items[i] != nra.Items[i] {
				t.Logf("item %d: CA %+v != NRA %+v", i, ca.Items[i], nra.Items[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyNRAApproximation: with θ > 1 on non-negative databases,
// every returned item's actual score times θ is at least the actual score
// of every non-returned item (the θ-approximation contract).
func TestPropertyNRAApproximation(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8, thetaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%39
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%(n-1) // leave at least one non-returned item
		theta := 1 + float64(thetaRaw%30)/10

		cols := make([][]float64, m)
		for i := range cols {
			col := make([]float64, n)
			for d := range col {
				col[d] = float64(rng.Intn(25)) // non-negative
			}
			cols[i] = col
		}
		db, err := list.FromColumns(cols)
		if err != nil {
			return false
		}
		f := score.Sum{}

		for _, alg := range []Algorithm{AlgNRA, AlgCA} {
			res, err := Run(alg, db, Options{K: k, Scoring: f, Approximation: theta})
			if err != nil {
				t.Logf("%v: %v", alg, err)
				return false
			}
			returned := make(map[list.ItemID]bool, len(res.Items))
			locals := make([]float64, m)
			minReturned := 0.0
			for i, it := range res.Items {
				actual := f.Combine(db.LocalScores(it.Item, locals))
				if i == 0 || actual < minReturned {
					minReturned = actual
				}
				returned[it.Item] = true
			}
			for d := 0; d < n; d++ {
				if returned[list.ItemID(d)] {
					continue
				}
				actual := f.Combine(db.LocalScores(list.ItemID(d), locals))
				if theta*minReturned < actual {
					t.Logf("%v θ=%v: returned %v, excluded item %d has %v", alg, theta, minReturned, d, actual)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestNRAStopsEarlierThanFullScan: on a database with a clear separation
// NRA must not scan to the bottom.
func TestNRAStopsEarlierThanFullScan(t *testing.T) {
	const n = 1000
	cols := make([][]float64, 3)
	for i := range cols {
		col := make([]float64, n)
		for d := range col {
			col[d] = float64(n - d) // item d has score n-d in every list
		}
		cols[i] = col
	}
	db := mustColumns(t, cols)
	res, err := NRA(access.NewProbe(db), Options{K: 5, Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.StopPosition >= n/2 {
		t.Errorf("NRA scanned to %d of %d on a perfectly correlated database", res.StopPosition, n)
	}
	oracle, err := Oracle(db, 5, score.Sum{})
	if err != nil {
		t.Fatal(err)
	}
	assertValidTopKSet(t, AlgNRA, db, score.Sum{}, res.Items, oracle)
}

// TestExtendedAlgorithms checks the lineup helpers and the dispatch of
// the new algorithms through Run.
func TestExtendedAlgorithms(t *testing.T) {
	ext := ExtendedAlgorithms()
	if len(ext) != 7 || ext[5] != AlgNRA || ext[6] != AlgCA {
		t.Fatalf("ExtendedAlgorithms() = %v", ext)
	}
	if AlgNRA.String() != "NRA" || AlgCA.String() != "CA" {
		t.Errorf("names: %v %v", AlgNRA.String(), AlgCA.String())
	}
	db := mustColumns(t, [][]float64{{3, 1, 2}, {5, 7, 6}})
	for _, alg := range []Algorithm{AlgNRA, AlgCA} {
		res, err := Run(alg, db, Options{K: 2, Scoring: score.Sum{}})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if res.Algorithm != alg || len(res.Items) != 2 {
			t.Errorf("%v: result %+v", alg, res)
		}
	}
}
