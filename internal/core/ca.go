package core

import (
	"container/heap"
	"fmt"
	"math"

	"topk/internal/access"
	"topk/internal/list"
)

// CA is the Combined Algorithm of Fagin, Lotem and Naor — the paper's
// reference [15], Section 6 there — implemented as a further baseline
// between NRA and TA. CA runs NRA's sorted-access rounds and bound
// bookkeeping, but every h rounds it additionally spends random accesses
// to fully resolve the seen item with the highest best-case bound. The
// period h ("the random access period") balances the two access prices:
// Fagin et al. set h = cr/cs, which under the paper's evaluation cost
// model (cs = 1, cr = log2 n) is h = ⌊log2 n⌋ — the default here, and
// overridable through Options.CAPeriod.
//
// CA uses NRA's stopping condition. Because resolution pins the exact
// score of the most promising candidates, CA typically stops at a much
// shallower sorted depth than NRA while spending far fewer random
// accesses than TA. Like NRA it returns a correct top-k set, and
// Result.Inexact reports whether any returned score is still only a
// worst-case bound.
func CA(pr *access.Probe, opts Options) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	h := opts.CAPeriod
	if h < 0 {
		return nil, fmt.Errorf("core: CA period %d is negative", h)
	}
	if h == 0 {
		h = defaultCAPeriod(db.N())
	}
	s, err := newBoundsState(db, opts)
	if err != nil {
		return nil, err
	}

	// resolveCand tracks every seen, unresolved item by stale best-case
	// bound — unlike s.cand it includes the answer set, because Y's
	// partially-seen members are exactly the most promising resolution
	// targets.
	var resolveCand bHeap

	res := &Result{Algorithm: AlgCA}
	for pos := 1; pos <= s.n; pos++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for i := 0; i < s.m; i++ {
			e := pr.Sorted(i, pos)
			s.last[i] = e.Score
			if s.observe(i, e) {
				heap.Push(&resolveCand, bEntry{item: e.Item, b: s.bestCase(e.Item)})
			}
		}
		s.primed = true
		if pos%h == 0 {
			s.resolveBest(pr, &resolveCand)
		}
		res.StopPosition = pos
		res.Rounds = pos
		stopped := s.tryStop()
		if wk, full := s.top.Threshold(); full {
			res.Threshold = wk
		}
		observe(opts.Observer, pos, pos, s.f.Combine(s.last), s.top, nil, stopped)
		if stopped {
			break
		}
	}

	res.Items = s.top.Slice()
	for _, it := range res.Items {
		if !s.resolved(it.Item) {
			res.Inexact = true
			break
		}
	}
	res.Counts = pr.Counts()
	return res, nil
}

// defaultCAPeriod returns h = ⌊cr/cs⌋ under the paper's evaluation cost
// model, at least 1.
func defaultCAPeriod(n int) int {
	h := int(math.Log2(float64(n)))
	if h < 1 {
		h = 1
	}
	return h
}

// resolveBest finds the unresolved item with the highest current
// best-case bound and spends random accesses on all its missing lists,
// making its bounds exact. The heap keys are stale upper bounds, so the
// true maximum is located by lazy pops: a popped entry whose refreshed
// key still tops the heap is the maximum; otherwise it is re-filed under
// the refreshed key. No-op when everything seen is already resolved.
func (s *boundsState) resolveBest(pr *access.Probe, rh *bHeap) {
	for rh.Len() > 0 {
		top := heap.Pop(rh).(bEntry)
		if s.resolved(top.item) {
			continue
		}
		cur := s.bestCase(top.item)
		if rh.Len() > 0 && cur < (*rh)[0].b {
			heap.Push(rh, bEntry{item: top.item, b: cur})
			continue
		}
		base := int(top.item) * s.m
		for j := 0; j < s.m; j++ {
			if s.seen[base+j] {
				continue
			}
			sc, _ := pr.Random(j, top.item)
			s.observe(j, list.Entry{Item: top.item, Score: sc})
		}
		return
	}
}
