package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
)

// randomDB builds a small random database. Scores are small integers so
// ties occur often, exercising the deterministic tie-breaking. gaussian
// flips roughly a third of the databases to signed scores.
func randomDB(rng *rand.Rand, n, m int) *list.Database {
	cols := make([][]float64, m)
	signed := rng.Intn(3) == 0
	for i := range cols {
		col := make([]float64, n)
		for d := range col {
			col[d] = float64(rng.Intn(25))
			if signed {
				col[d] -= 12
			}
		}
		cols[i] = col
	}
	db, err := list.FromColumns(cols)
	if err != nil {
		panic(err)
	}
	return db
}

// randomScoring picks one of the monotone scoring functions.
func randomScoring(rng *rand.Rand, m int) score.Func {
	switch rng.Intn(4) {
	case 0:
		return score.Sum{}
	case 1:
		return score.Min{}
	case 2:
		return score.Max{}
	default:
		w := make([]float64, m)
		for i := range w {
			w[i] = float64(rng.Intn(4)) // zero weights allowed: still monotone
		}
		ws, err := score.NewWeightedSum(w)
		if err != nil {
			panic(err)
		}
		return ws
	}
}

// assertSameAnswers verifies that got is a correct top-k answer relative
// to the oracle: identical score multiset, and identical items above the
// k-th score (at the k-th score boundary, any tied item is a valid
// answer, so item identity is only enforced above it).
func assertSameAnswers(t *testing.T, alg Algorithm, got, oracle []rank.ScoredItem) bool {
	t.Helper()
	if len(got) != len(oracle) {
		t.Errorf("%v: got %d answers, want %d", alg, len(got), len(oracle))
		return false
	}
	kth := oracle[len(oracle)-1].Score
	for i := range oracle {
		if got[i].Score != oracle[i].Score {
			t.Errorf("%v: answer %d score = %v, want %v", alg, i, got[i].Score, oracle[i].Score)
			return false
		}
		if oracle[i].Score > kth && got[i].Item != oracle[i].Item {
			t.Errorf("%v: answer %d item = %d, want %d (score %v above k-th %v)",
				alg, i, got[i].Item, oracle[i].Item, oracle[i].Score, kth)
			return false
		}
	}
	return true
}

// TestPropertyAllAlgorithmsMatchOracle is the master correctness
// property: on random databases, every algorithm returns the oracle's
// top-k scores (Theorems 1 and 6 for BPA/BPA2; classic results for
// FA/TA).
func TestPropertyAllAlgorithmsMatchOracle(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		oracle, err := Oracle(db, k, f)
		if err != nil {
			t.Logf("oracle: %v", err)
			return false
		}
		ok := true
		for _, alg := range Algorithms() {
			res, err := Run(alg, db, Options{K: k, Scoring: f})
			if err != nil {
				t.Logf("%v: %v", alg, err)
				return false
			}
			ok = assertSameAnswers(t, alg, res.Items, oracle) && ok
		}
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyLemma1And2 checks Lemma 1 (BPA does no more sorted accesses
// than TA), Lemma 2 (same for random accesses), and Theorem 2 (BPA's
// execution cost never exceeds TA's).
func TestPropertyLemma1And2(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		opts := Options{K: k, Scoring: f}

		ta, err := TA(access.NewProbe(db), opts)
		if err != nil {
			return false
		}
		bpa, err := BPA(access.NewProbe(db), opts)
		if err != nil {
			return false
		}
		if bpa.Counts.Sorted > ta.Counts.Sorted {
			t.Logf("Lemma 1 violated: BPA sorted %d > TA sorted %d", bpa.Counts.Sorted, ta.Counts.Sorted)
			return false
		}
		if bpa.Counts.Random > ta.Counts.Random {
			t.Logf("Lemma 2 violated: BPA random %d > TA random %d", bpa.Counts.Random, ta.Counts.Random)
			return false
		}
		model := access.DefaultCostModel(n)
		if bpa.Cost(model) > ta.Cost(model) {
			t.Logf("Theorem 2 violated: BPA cost %v > TA cost %v", bpa.Cost(model), ta.Cost(model))
			return false
		}
		// Lemma 2's internal relation: #random = #sorted * (m-1) for both.
		if ta.Counts.Random != ta.Counts.Sorted*int64(m-1) {
			t.Logf("TA random/sorted relation violated: %v", ta.Counts)
			return false
		}
		if bpa.Counts.Random != bpa.Counts.Sorted*int64(m-1) {
			t.Logf("BPA random/sorted relation violated: %v", bpa.Counts)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTheorem5And7 checks Theorem 5 (BPA2 accesses every position
// at most once) and Theorem 7 (BPA2 does no more accesses than BPA), for
// every best-position tracker implementation.
func TestPropertyTheorem5And7(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8, trRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		kinds := bestpos.Kinds()
		tracker := kinds[int(trRaw)%len(kinds)]
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		opts := Options{K: k, Scoring: f, Tracker: tracker}

		bpa, err := BPA(access.NewProbe(db), opts)
		if err != nil {
			return false
		}
		pr := access.NewAuditedProbe(db)
		bpa2, err := BPA2(pr, opts)
		if err != nil {
			return false
		}
		if err := pr.AssertSingleAccess(); err != nil {
			t.Logf("Theorem 5 violated (tracker %v): %v", tracker, err)
			return false
		}
		if bpa2.Counts.Total() > bpa.Counts.Total() {
			t.Logf("Theorem 7 violated: BPA2 %d > BPA %d accesses",
				bpa2.Counts.Total(), bpa.Counts.Total())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBPA2RoundsBound checks the provable core of the Section 5.1
// comparison: after round r BPA2 has seen every position in [1, r] of
// every list (each round advances every best position by at least one),
// so its seen-position set dominates BPA's at the same round and it must
// stop within BPA's stopping position. Note the paper's stronger informal
// claim — that both stop at exactly the same best positions — holds for
// the Figure 2 example (asserted in TestFigure2BPAvsBPA2) but not for
// every database: BPA2's deeper probes can cascade and overshoot BPA's
// final best positions. See DESIGN.md.
func TestPropertyBPA2RoundsBound(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		opts := Options{K: k, Scoring: f}

		bpa, err := BPA(access.NewProbe(db), opts)
		if err != nil {
			return false
		}
		bpa2, err := BPA2(access.NewProbe(db), opts)
		if err != nil {
			return false
		}
		if bpa2.Rounds > bpa.StopPosition {
			t.Logf("BPA2 took %d rounds, more than BPA's stop position %d (seed=%d n=%d m=%d k=%d)",
				bpa2.Rounds, bpa.StopPosition, seed, n, m, k)
			return false
		}
		// Each BPA2 round advances every list's best position by >= 1.
		for i, bp := range bpa2.BestPositions {
			if bp < bpa2.Rounds {
				t.Logf("list %d best position %d < rounds %d", i, bp, bpa2.Rounds)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMemoization checks the memoized variants of TA and BPA:
// memoization must not change the answers or the stopping position, and
// can only reduce random accesses (sorted accesses are identical).
func TestPropertyMemoization(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8, useBPA bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		run := TA
		if useBPA {
			run = BPA
		}

		plain, err := run(access.NewProbe(db), Options{K: k, Scoring: f})
		if err != nil {
			return false
		}
		memo, err := run(access.NewProbe(db), Options{K: k, Scoring: f, Memoize: true})
		if err != nil {
			return false
		}
		if plain.StopPosition != memo.StopPosition {
			t.Logf("memoized stops at %d, plain at %d (bpa=%v)", memo.StopPosition, plain.StopPosition, useBPA)
			return false
		}
		if memo.Counts.Sorted != plain.Counts.Sorted {
			t.Logf("memoization changed sorted accesses: %v != %v", memo.Counts.Sorted, plain.Counts.Sorted)
			return false
		}
		if memo.Counts.Random > plain.Counts.Random {
			t.Logf("memoized did more random accesses: %v > %v", memo.Counts.Random, plain.Counts.Random)
			return false
		}
		if len(plain.Items) != len(memo.Items) {
			return false
		}
		for i := range plain.Items {
			if plain.Items[i].Score != memo.Items[i].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyThresholdBounds checks the inequality chain behind Lemma 1:
// at stop time the final λ of BPA is no larger than the δ TA stopped
// with... not in general comparable at different positions, but both
// thresholds must lower-bound nothing ABOVE the k-th answer: every
// returned answer has score >= final threshold.
func TestPropertyThresholdBounds(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%39
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		for _, alg := range []Algorithm{AlgTA, AlgBPA, AlgBPA2} {
			res, err := Run(alg, db, Options{K: k, Scoring: f})
			if err != nil {
				return false
			}
			for _, it := range res.Items {
				if it.Score < res.Threshold && !math.IsInf(res.Threshold, 0) {
					t.Logf("%v returned item below final threshold: %v < %v", alg, it.Score, res.Threshold)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
