package core

import (
	"math/rand"
	"testing"
)

// TestRegressionUnprimedBestCase pins a counterexample quick.Check found
// (seed -8632882479188648654 → n=5, m=5, k=1, Min scoring): during the
// first sorted-access round, best-case bounds computed from the partially
// filled last[] *under*estimated — for Min scoring the zeroed slots of
// not-yet-read lists made every bound 0 — so the stopping test waved
// through candidates that could still win, and CA/NRA returned item 2
// (actual score 8) instead of item 1 (actual 12). Best-case bounds are
// +Inf until every list has been read once; see boundsState.primed.
func TestRegressionUnprimedBestCase(t *testing.T) {
	rng := rand.New(rand.NewSource(-8632882479188648654))
	n, m, k := 5, 5, 1
	db := randomDB(rng, n, m)
	f := randomScoring(rng, m)
	if f.Name() != "min" {
		t.Fatalf("fixture drifted: scoring = %s, want min", f.Name())
	}
	oracle, err := Oracle(db, k, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{AlgNRA, AlgCA} {
		res, err := Run(alg, db, Options{K: k, Scoring: f, CAPeriod: 5})
		if err != nil {
			t.Fatal(err)
		}
		assertValidTopKSet(t, alg, db, f, res.Items, oracle)
	}
}
