package core

import (
	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/rank"
)

// BPA2 is the optimized Best Position Algorithm (Section 5.1). It differs
// from BPA in two ways:
//
//   - instead of sorted access it performs DIRECT access to position
//     bpi + 1, the smallest unseen position of each list, so no position
//     is ever accessed twice (Theorem 5);
//   - best positions are managed by the list owners; the query originator
//     keeps only the answer set Y and the m best-position scores, which is
//     what makes the algorithm attractive in distributed settings (the
//     seen-position sets never travel).
//
// BPA2 has the same stopping mechanism as BPA, stops at the same best
// positions, and sees the same set of items, but performs up to about
// (m-1) times fewer accesses (Theorems 7 and 8).
func BPA2(pr *access.Probe, opts Options) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()
	f := opts.Scoring

	theta := opts.theta()
	y := rank.NewSet(opts.K)
	locals := make([]float64, m)
	bpScores := make([]float64, m)
	trackers := make([]bestpos.Tracker, m)
	for i := range trackers {
		trackers[i] = bestpos.New(opts.Tracker, n)
	}

	res := &Result{Algorithm: AlgBPA2}
	for {
		res.Rounds++
		progress := false
		for i := 0; i < m; i++ {
			if err := opts.Interrupted(); err != nil {
				return nil, err
			}
			// bpi may have advanced during this very round through the
			// random accesses of other lists; bpi+1 is always the
			// smallest unseen position of list i right now.
			p := trackers[i].Best() + 1
			if p > n {
				continue // list i fully seen
			}
			e := pr.Direct(i, p)
			trackers[i].MarkSeen(p)
			progress = true
			locals[i] = e.Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				s, q := pr.Random(j, e.Item)
				locals[j] = s
				trackers[j].MarkSeen(q)
			}
			y.Add(e.Item, f.Combine(locals))
		}
		if !progress {
			// Every position of every list has been seen; Y is exact.
			break
		}

		// After the first round every tracker has Best() >= 1, so the
		// best-position scores are well defined.
		for i := 0; i < m; i++ {
			bpScores[i] = db.List(i).At(trackers[i].Best()).Score
		}
		lambda := f.Combine(bpScores)
		res.Threshold = lambda
		stopped := y.AtLeast(lambda / theta)
		if opts.Observer != nil {
			bps := make([]int, m)
			minBP := n
			for i := range trackers {
				bps[i] = trackers[i].Best()
				if bps[i] < minBP {
					minBP = bps[i]
				}
			}
			observe(opts.Observer, res.Rounds, minBP, lambda, y, bps, stopped)
		}
		if stopped {
			break
		}
	}

	res.BestPositions = make([]int, m)
	for i := range trackers {
		res.BestPositions[i] = trackers[i].Best()
	}
	res.Items = y.Slice()
	res.Counts = pr.Counts()
	return res, nil
}
