package core

import (
	"context"
	"fmt"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/rank"
	"topk/internal/score"
)

// Progressive delivers answers one at a time in rank order without a
// fixed k — the "give me the next one" interaction of interactive search.
// It is not in the paper, but it falls out of BPA2's machinery: the best
// positions overall score λ upper-bounds everything unseen, so the best
// seen-but-undelivered item can be emitted as soon as its overall score
// reaches λ.
//
// Ordering contract: scores are delivered in non-increasing order, and
// every delivered item's score is >= every undelivered item's score — the
// top-k set guarantee unrolled per rank. Among equal scores the delivery
// order may differ from the deterministic oracle tie-break (an equal-
// scored, lower-ID item may still be unseen when its peer is certified);
// any such order is a correct ranking, and waiting to fix tie order would
// cost extra accesses for no semantic gain.
//
// Invariants inherited from BPA2: every probe targets an unseen position
// (no position is read twice across the whole enumeration), and every
// seen item is fully resolved the moment it is first seen, because BPA2's
// random accesses resolve the direct-accessed item everywhere.
type Progressive struct {
	ctx      context.Context
	pr       *access.Probe
	f        score.Func
	m, n     int
	trackers []bestpos.Tracker
	locals   []float64
	bpScores []float64

	// pending holds resolved, undelivered items; the best is at the top.
	pending deliveryHeap
	seen    []bool // item resolved (and therefore in pending or delivered)

	lambda    float64
	exhausted bool // every position of every list has been seen
	delivered int
	rounds    int
	err       error // ctx error that ended the enumeration, sticky
}

// ProgressiveOptions configures a progressive enumeration. K is absent by
// design; stop calling Next instead.
type ProgressiveOptions struct {
	// Ctx, when non-nil, bounds the enumeration: Next checks it before
	// every probe round and stops delivering once it is canceled or past
	// its deadline; Err then reports why. Nil means uncancellable.
	Ctx context.Context
	// Scoring is the monotone overall-score function f.
	Scoring score.Func
	// Tracker selects the best-position structure (Section 5.2).
	Tracker bestpos.Kind
}

// NewProgressive starts a progressive enumeration over db.
func NewProgressive(pr *access.Probe, opts ProgressiveOptions) (*Progressive, error) {
	if pr == nil || pr.DB() == nil {
		return nil, fmt.Errorf("core: progressive needs a probe over a database")
	}
	if opts.Scoring == nil {
		return nil, fmt.Errorf("core: progressive needs a scoring function")
	}
	db := pr.DB()
	m, n := db.M(), db.N()
	p := &Progressive{
		ctx:      opts.Ctx,
		pr:       pr,
		f:        opts.Scoring,
		m:        m,
		n:        n,
		trackers: make([]bestpos.Tracker, m),
		locals:   make([]float64, m),
		bpScores: make([]float64, m),
		seen:     make([]bool, n),
	}
	for i := range p.trackers {
		p.trackers[i] = bestpos.New(opts.Tracker, n)
	}
	return p, nil
}

// Next returns the next answer in rank order. ok is false once all n
// items have been delivered — or once the enumeration's context is
// canceled or past its deadline, which Err reports.
func (p *Progressive) Next() (rank.ScoredItem, bool) {
	for {
		if p.err != nil {
			return rank.ScoredItem{}, false
		}
		if p.ctx != nil {
			if err := p.ctx.Err(); err != nil {
				p.err = err
				return rank.ScoredItem{}, false
			}
		}
		if top, ok := p.deliverable(); ok {
			p.delivered++
			return top, true
		}
		if p.exhausted {
			if len(p.pending) == 0 {
				return rank.ScoredItem{}, false
			}
			// Nothing unseen remains; drain the pending heap in order.
			p.delivered++
			return p.pop(), true
		}
		p.round()
	}
}

// deliverable reports whether the best pending item already beats
// everything unseen (score >= λ), and pops it if so. Before the first
// round there is nothing pending and λ is meaningless.
func (p *Progressive) deliverable() (rank.ScoredItem, bool) {
	if p.rounds == 0 || len(p.pending) == 0 {
		return rank.ScoredItem{}, false
	}
	if p.pending[0].Score >= p.lambda {
		return p.pop(), true
	}
	return rank.ScoredItem{}, false
}

func (p *Progressive) pop() rank.ScoredItem {
	top := p.pending[0]
	last := len(p.pending) - 1
	p.pending[0] = p.pending[last]
	p.pending = p.pending[:last]
	p.pending.down(0)
	return top
}

// round advances one BPA2 round: a direct access to the first unseen
// position of every list, each resolved across all lists, then a fresh λ.
func (p *Progressive) round() {
	p.rounds++
	progress := false
	for i := 0; i < p.m; i++ {
		pos := p.trackers[i].Best() + 1
		if pos > p.n {
			continue
		}
		e := p.pr.Direct(i, pos)
		p.trackers[i].MarkSeen(pos)
		progress = true
		p.locals[i] = e.Score
		for j := 0; j < p.m; j++ {
			if j == i {
				continue
			}
			s, q := p.pr.Random(j, e.Item)
			p.locals[j] = s
			p.trackers[j].MarkSeen(q)
		}
		if !p.seen[e.Item] {
			p.seen[e.Item] = true
			p.pending.push(rank.ScoredItem{Item: e.Item, Score: p.f.Combine(p.locals)})
		}
	}
	if !progress {
		p.exhausted = true
		return
	}
	for i := 0; i < p.m; i++ {
		p.bpScores[i] = p.pr.DB().List(i).At(p.trackers[i].Best()).Score
	}
	p.lambda = p.f.Combine(p.bpScores)
}

// Err returns the context error that ended the enumeration, or nil
// while it can still deliver. Once non-nil, Next always returns false.
func (p *Progressive) Err() error { return p.err }

// Delivered returns how many answers have been returned so far.
func (p *Progressive) Delivered() int { return p.delivered }

// Counts returns the access tally spent so far.
func (p *Progressive) Counts() access.Counts { return p.pr.Counts() }

// Rounds returns the number of probe rounds executed so far.
func (p *Progressive) Rounds() int { return p.rounds }

// deliveryHeap is a max-heap of resolved items under the package
// ordering: best item (highest score, ties by lowest ID) at the root.
type deliveryHeap []rank.ScoredItem

func (h *deliveryHeap) push(it rank.ScoredItem) {
	*h = append(*h, it)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !rank.Less((*h)[i], (*h)[parent]) {
			break
		}
		(*h)[i], (*h)[parent] = (*h)[parent], (*h)[i]
		i = parent
	}
}

func (h deliveryHeap) down(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && rank.Less(h[l], h[best]) {
			best = l
		}
		if r < n && rank.Less(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
