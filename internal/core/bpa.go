package core

import (
	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/rank"
)

// BPA is the Best Position Algorithm (Section 4.1):
//
//  1. Sorted access in parallel to all m lists. For every item seen under
//     sorted access, random access to the other lists fetches both the
//     local score AND the position of the item there. All seen positions
//     are recorded per list.
//  2. The best position bpi of list i is the greatest seen position such
//     that every position in [1, bpi] is seen.
//  3. The stopping threshold is the best positions overall score
//     λ = f(s1(bp1), ..., sm(bpm)). When the answer set Y holds k items
//     with overall score >= λ, sorted access stops.
//
// Because bpi >= the current sorted-access depth, λ <= δ at every round,
// which is why BPA never stops later than TA (Lemma 1) while often
// stopping much earlier — up to (m-1) times (Lemma 3).
//
// Accounting follows Lemma 2 and the Section 5.1 worked example exactly:
// every sorted access triggers (m-1) random accesses, even when the item
// was already seen (over Figure 2 the paper counts 21 sorted and 42
// random accesses for BPA). Options.Memoize skips the redundant random
// accesses for already-seen items — the algorithm's step 1 "maintains"
// the seen scores and positions, so nothing needs re-fetching. Memoized
// BPA stops at exactly the same position with the same answers; only the
// random-access count drops. See EXPERIMENTS.md: the paper's measured
// uniform-database gains of (m+6)/8 over TA are only reachable with
// memoization, while its Lemma 2 and Figure 2 example describe the
// non-memoized accounting; we reproduce both.
func BPA(pr *access.Probe, opts Options) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()
	f := opts.Scoring

	theta := opts.theta()
	y := rank.NewSet(opts.K)
	locals := make([]float64, m)
	bpScores := make([]float64, m)
	trackers := make([]bestpos.Tracker, m)
	for i := range trackers {
		trackers[i] = bestpos.New(opts.Tracker, n)
	}
	var seen []bool
	if opts.Memoize {
		seen = make([]bool, n)
	}

	res := &Result{Algorithm: AlgBPA}
	for pos := 1; pos <= n; pos++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			e := pr.Sorted(i, pos)
			trackers[i].MarkSeen(pos)
			if opts.Memoize && seen[e.Item] {
				continue // scores and positions already maintained
			}
			locals[i] = e.Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				s, q := pr.Random(j, e.Item)
				locals[j] = s
				trackers[j].MarkSeen(q)
			}
			y.Add(e.Item, f.Combine(locals))
			if opts.Memoize {
				seen[e.Item] = true
			}
		}

		// λ from the best positions. Every tracker has Best() >= pos >= 1
		// because position pos of each list was just seen under sorted
		// access. The score at a best position was necessarily seen
		// (sorted, random, or direct), so reading it is not a new access.
		for i := 0; i < m; i++ {
			bpScores[i] = db.List(i).At(trackers[i].Best()).Score
		}
		lambda := f.Combine(bpScores)
		res.Threshold = lambda
		res.StopPosition = pos
		res.Rounds = pos
		stopped := y.AtLeast(lambda / theta)
		if opts.Observer != nil {
			bps := make([]int, m)
			for i := range trackers {
				bps[i] = trackers[i].Best()
			}
			observe(opts.Observer, pos, pos, lambda, y, bps, stopped)
		}
		if stopped {
			break
		}
	}

	res.BestPositions = make([]int, m)
	for i := range trackers {
		res.BestPositions[i] = trackers[i].Best()
	}
	res.Items = y.Slice()
	res.Counts = pr.Counts()
	return res, nil
}
