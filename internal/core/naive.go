package core

import (
	"topk/internal/access"
	"topk/internal/list"
	"topk/internal/rank"
)

// Naive answers the query by scanning every list from beginning to end
// under sorted access, maintaining each item's local scores, and returning
// the k items with the highest overall scores. This is the O(m*n)
// strawman of the paper's introduction and the correctness baseline for
// everything else.
func Naive(pr *access.Probe, opts Options) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()

	// locals[d*m+i] is the local score of item d in list i.
	locals := make([]float64, n*m)
	for pos := 1; pos <= n; pos++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			e := pr.Sorted(i, pos)
			locals[int(e.Item)*m+i] = e.Score
		}
	}

	y := rank.NewSet(opts.K)
	for d := 0; d < n; d++ {
		y.Add(list.ItemID(d), opts.Scoring.Combine(locals[d*m:(d+1)*m]))
	}
	return &Result{
		Algorithm:    AlgNaive,
		Items:        y.Slice(),
		Counts:       pr.Counts(),
		StopPosition: n,
		Rounds:       n,
	}, nil
}
