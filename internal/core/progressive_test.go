package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/list"
	"topk/internal/rank"
	"topk/internal/score"
)

func TestProgressiveValidation(t *testing.T) {
	db := mustColumns(t, [][]float64{{1, 2}, {3, 4}})
	if _, err := NewProgressive(nil, ProgressiveOptions{Scoring: score.Sum{}}); err == nil {
		t.Error("nil probe accepted")
	}
	if _, err := NewProgressive(access.NewProbe(db), ProgressiveOptions{}); err == nil {
		t.Error("nil scoring accepted")
	}
}

// assertRankingEquivalent checks the iterator contract against the
// oracle: identical score sequence, and identical item sets within every
// group of equal scores (ties may be delivered in any internal order).
func assertRankingEquivalent(t *testing.T, label string, got, want []rank.ScoredItem) bool {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: %d items, want %d", label, len(got), len(want))
		return false
	}
	for i := range want {
		if got[i].Score != want[i].Score {
			t.Errorf("%s: rank %d score = %v, want %v", label, i+1, got[i].Score, want[i].Score)
			return false
		}
	}
	// Within each tie group the item sets must coincide.
	for lo := 0; lo < len(want); {
		hi := lo + 1
		for hi < len(want) && want[hi].Score == want[lo].Score {
			hi++
		}
		g := map[list.ItemID]bool{}
		for _, it := range got[lo:hi] {
			g[it.Item] = true
		}
		for _, it := range want[lo:hi] {
			if !g[it.Item] {
				t.Errorf("%s: item %d (score %v) missing from its tie group", label, it.Item, it.Score)
				return false
			}
		}
		lo = hi
	}
	return true
}

// TestProgressiveFullEnumeration: draining the iterator yields the
// oracle's full ranking (score-for-score; ties interchangeable) for every
// tracker kind.
func TestProgressiveFullEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := randomDB(rng, 30, 4)
	oracle, err := Oracle(db, 30, score.Sum{})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range bestpos.Kinds() {
		p, err := NewProgressive(access.NewProbe(db), ProgressiveOptions{Scoring: score.Sum{}, Tracker: kind})
		if err != nil {
			t.Fatal(err)
		}
		var got []rank.ScoredItem
		for {
			it, ok := p.Next()
			if !ok {
				break
			}
			got = append(got, it)
		}
		assertRankingEquivalent(t, kind.String(), got, oracle)
		if p.Delivered() != 30 {
			t.Errorf("%v: Delivered = %d", kind, p.Delivered())
		}
	}
}

// TestPropertyProgressiveMatchesOracle: on random databases and scoring
// functions, the delivery sequence is score-equivalent to the oracle
// ranking.
func TestPropertyProgressiveMatchesOracle(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		oracle, err := Oracle(db, n, f)
		if err != nil {
			return false
		}
		p, err := NewProgressive(access.NewProbe(db), ProgressiveOptions{Scoring: f})
		if err != nil {
			return false
		}
		var got []rank.ScoredItem
		for {
			it, ok := p.Next()
			if !ok {
				break
			}
			got = append(got, it)
		}
		return assertRankingEquivalent(t, "progressive", got, oracle)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyProgressivePrefixCost: enumerating k answers progressively
// costs exactly what a BPA2 run with that k costs — the iterator is BPA2
// with the stopping condition unrolled per rank.
func TestPropertyProgressivePrefixCost(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)

		bpa2, err := BPA2(access.NewProbe(db), Options{K: k, Scoring: f})
		if err != nil {
			return false
		}
		p, err := NewProgressive(access.NewProbe(db), ProgressiveOptions{Scoring: f})
		if err != nil {
			return false
		}
		for i := 0; i < k; i++ {
			if _, ok := p.Next(); !ok {
				t.Logf("iterator ended early at %d of %d", i, k)
				return false
			}
		}
		if p.Counts().Total() > bpa2.Counts.Total() {
			t.Logf("progressive to k=%d spent %v, BPA2 spent %v (n=%d m=%d)",
				k, p.Counts(), bpa2.Counts, n, m)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestProgressiveSingleAccess: the whole enumeration never reads a
// position twice (BPA2's Theorem 5 extends to the iterator).
func TestProgressiveSingleAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := randomDB(rng, 120, 5)
	pr := access.NewAuditedProbe(db)
	p, err := NewProgressive(pr, ProgressiveOptions{Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, ok := p.Next(); !ok {
			break
		}
	}
	if err := pr.AssertSingleAccess(); err != nil {
		t.Errorf("progressive enumeration violated single access: %v", err)
	}
	if p.Rounds() == 0 {
		t.Error("no rounds recorded")
	}
}

// TestProgressiveLazyCost: asking for rank 1 of a large correlated
// database must touch only a tiny fraction of the lists.
func TestProgressiveLazyCost(t *testing.T) {
	const n = 2000
	cols := make([][]float64, 3)
	for i := range cols {
		col := make([]float64, n)
		for d := range col {
			col[d] = float64(n - d)
		}
		cols[i] = col
	}
	db := mustColumns(t, cols)
	p, err := NewProgressive(access.NewProbe(db), ProgressiveOptions{Scoring: score.Sum{}})
	if err != nil {
		t.Fatal(err)
	}
	it, ok := p.Next()
	if !ok || it.Item != 0 {
		t.Fatalf("first answer = %+v", it)
	}
	if total := p.Counts().Total(); total > int64(n) {
		t.Errorf("rank 1 of a perfectly correlated database cost %d accesses", total)
	}
}
