package core

import "math"

// RoundInfo is a snapshot of a threshold algorithm's state after one
// parallel access round. It is what the paper's worked examples tabulate:
// the position, the stopping threshold (δ for TA, λ for BPA/BPA2), and
// whether the answer set already satisfies the stopping condition.
type RoundInfo struct {
	// Round is the 1-based round number.
	Round int
	// Position is the sorted-access depth of the round (TA/BPA). For
	// BPA2, which probes each list at its own best position, Position is
	// the smallest best position across lists after the round.
	Position int
	// Threshold is δ (TA) or λ (BPA/BPA2) after the round.
	Threshold float64
	// KthScore is the overall score of the k-th best item seen so far,
	// or -Inf while fewer than k items are known.
	KthScore float64
	// YFull reports whether k items have been seen.
	YFull bool
	// BestPositions is a copy of the per-list best positions (BPA and
	// BPA2 only, nil for TA).
	BestPositions []int
	// Stopped reports whether the stopping condition held after this
	// round (always true on the final RoundInfo of a completed run).
	Stopped bool
}

// Observer receives RoundInfo after every round of TA, BPA and BPA2.
// Implementations must not retain the BestPositions slice across calls.
// A nil observer costs nothing.
type Observer interface {
	Round(info RoundInfo)
}

// observe builds and delivers a RoundInfo if an observer is configured.
func observe(obs Observer, round, position int, threshold float64, y interface {
	Threshold() (float64, bool)
}, trackers []int, stopped bool) {
	if obs == nil {
		return
	}
	kth, full := y.Threshold()
	if !full {
		kth = math.Inf(-1)
	}
	info := RoundInfo{
		Round:     round,
		Position:  position,
		Threshold: threshold,
		KthScore:  kth,
		YFull:     full,
		Stopped:   stopped,
	}
	if trackers != nil {
		info.BestPositions = append([]int(nil), trackers...)
	}
	obs.Round(info)
}
