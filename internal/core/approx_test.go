package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topk/internal/access"
	"topk/internal/list"
	"topk/internal/score"
)

// nonNegativeDB builds a random database whose scores are >= 0, the
// domain of the multiplicative approximation guarantee.
func nonNegativeDB(rng *rand.Rand, n, m int) *list.Database {
	cols := make([][]float64, m)
	for i := range cols {
		col := make([]float64, n)
		for d := range col {
			col[d] = float64(rng.Intn(25))
		}
		cols[i] = col
	}
	db, err := list.FromColumns(cols)
	if err != nil {
		panic(err)
	}
	return db
}

func TestApproximationValidation(t *testing.T) {
	db := figure1DB(t)
	opts := paperOpts()
	opts.Approximation = 0.5
	for _, alg := range []Algorithm{AlgTA, AlgBPA, AlgBPA2} {
		if _, err := Run(alg, db, opts); err == nil {
			t.Errorf("%v accepted θ < 1", alg)
		}
	}
}

func TestApproximationExactWhenThetaOne(t *testing.T) {
	db := figure1DB(t)
	for _, alg := range []Algorithm{AlgTA, AlgBPA, AlgBPA2} {
		exact, err := Run(alg, db, paperOpts())
		if err != nil {
			t.Fatal(err)
		}
		opts := paperOpts()
		opts.Approximation = 1
		one, err := Run(alg, db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if exact.Counts != one.Counts {
			t.Errorf("%v: θ=1 changed counts: %v vs %v", alg, one.Counts, exact.Counts)
		}
		for i := range exact.Items {
			if exact.Items[i] != one.Items[i] {
				t.Errorf("%v: θ=1 changed answers", alg)
			}
		}
	}
}

// TestApproximationStopsEarlier: over Figure 1, TA with θ=1.2 stops
// before the exact TA (δ(5)=72, and 72/1.2 = 60 <= kth=70 already at
// position 5; in fact position 4: 75/1.2 = 62.5 <= 70).
func TestApproximationStopsEarlier(t *testing.T) {
	db := figure1DB(t)
	opts := paperOpts()
	opts.Approximation = 1.2
	res, err := TA(access.NewProbe(db), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.StopPosition >= 6 {
		t.Errorf("θ=1.2 TA stopped at %d, want earlier than the exact 6", res.StopPosition)
	}
}

// TestPropertyApproximationGuarantee enforces the Fagin et al. θ-
// approximation contract on random databases: θ times the score of every
// returned item is at least the score of every item not returned, and
// the approximate run never does more accesses than the exact one.
// Like the original definition (grades in [0,1]), the multiplicative
// guarantee is only meaningful for non-negative scores, so the generator
// here is unsigned.
func TestPropertyApproximationGuarantee(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8, thetaRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%40
		m := 1 + int(mRaw)%5
		k := 1 + int(kRaw)%n
		theta := 1 + float64(thetaRaw%40)/10 // θ in [1, 4.9]
		db := nonNegativeDB(rng, n, m)
		f := score.Sum{}

		// Full ranking for the guarantee check.
		all, err := Oracle(db, n, f)
		if err != nil {
			return false
		}
		for _, alg := range []Algorithm{AlgTA, AlgBPA, AlgBPA2} {
			exact, err := Run(alg, db, Options{K: k, Scoring: f})
			if err != nil {
				return false
			}
			approx, err := Run(alg, db, Options{K: k, Scoring: f, Approximation: theta})
			if err != nil {
				return false
			}
			if approx.Counts.Total() > exact.Counts.Total() {
				t.Logf("%v: approximate run did more accesses (%d > %d)",
					alg, approx.Counts.Total(), exact.Counts.Total())
				return false
			}
			returned := map[int32]bool{}
			minReturned := 0.0
			for i, it := range approx.Items {
				returned[int32(it.Item)] = true
				if i == 0 || it.Score < minReturned {
					minReturned = it.Score
				}
			}
			for _, it := range all {
				if returned[int32(it.Item)] {
					continue
				}
				if theta*minReturned < it.Score-1e-9 {
					t.Logf("%v θ=%v: returned %v but skipped item with %v (seed=%d n=%d m=%d k=%d)",
						alg, theta, minReturned, it.Score, seed, n, m, k)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
