package core

import (
	"fmt"
	"math"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/list"
	"topk/internal/rank"
)

// This file implements the restricted-access variants TAz and BPAz:
// some lists are random-access only — the "web-accessible databases"
// setting of the paper's references [7]/[21] (a web source answers "what
// is the price of X?" but cannot be scanned by price), called TAz in
// Fagin, Lotem, Naor §8.2.
//
// TAz does sorted access only to the sortable lists; every seen item is
// still resolved everywhere by random access. The threshold replaces the
// last-seen score of each random-only list with its *ceiling* (maximum
// possible score — list-owner metadata, like NRA's floors).
//
// BPAz is the best-position analogue, and the reason it is interesting:
// random accesses land on concrete positions, so even a list that can
// never be scanned accumulates seen positions, its best position grows,
// and the threshold tightens from the ceiling to the actual score at the
// best position. BPAz inherits BPA's guarantee against TAz: its
// threshold is never above TAz's at the same depth, so it never stops
// later (checked as a property test, mirroring Lemma 1).

// Restricted configures a restricted-access run.
type Restricted struct {
	// Sortable[i] reports whether list i supports sorted access. At
	// least one list must.
	Sortable []bool
	// Ceilings[i] is the maximum possible local score of list i, used
	// for random-only lists in the thresholds. Nil takes each list's
	// actual maximum via ListCeilings (list-owner metadata, not a
	// charged access). A ceiling below a list's actual maximum is
	// rejected: it would break the threshold's upper-bound property.
	Ceilings []float64
}

// ListCeilings returns each list's maximum local score, read from the
// list heads; the metadata counterpart of ListFloors.
func ListCeilings(db *list.Database) []float64 {
	ceil := make([]float64, db.M())
	for i := range ceil {
		ceil[i] = db.List(i).At(1).Score
	}
	return ceil
}

func (r Restricted) validate(db *list.Database) ([]float64, error) {
	m := db.M()
	if len(r.Sortable) != m {
		return nil, fmt.Errorf("core: %d sortable flags for %d lists", len(r.Sortable), m)
	}
	any := false
	for _, s := range r.Sortable {
		if s {
			any = true
			break
		}
	}
	if !any {
		return nil, fmt.Errorf("core: no sortable lists; at least one list must support sorted access")
	}
	ceil := r.Ceilings
	if ceil == nil {
		ceil = ListCeilings(db)
	} else {
		if len(ceil) != m {
			return nil, fmt.Errorf("core: %d ceilings for %d lists", len(ceil), m)
		}
		for i, c := range ceil {
			if math.IsNaN(c) {
				return nil, fmt.Errorf("core: ceiling %d is NaN", i)
			}
			if max := db.List(i).At(1).Score; c < max {
				return nil, fmt.Errorf("core: ceiling %d is %v but list %d has maximum score %v; unsound ceilings would break the threshold", i, c, i, max)
			}
		}
		ceil = append([]float64(nil), ceil...)
	}
	return ceil, nil
}

// TAz is the Threshold Algorithm over a mix of sortable and random-only
// lists. With every list sortable it coincides with TA access-for-access.
func TAz(pr *access.Probe, opts Options, restr Restricted) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	ceilings, err := restr.validate(db)
	if err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()
	f := opts.Scoring
	theta := opts.theta()

	y := rank.NewSet(opts.K)
	locals := make([]float64, m)
	// Random-only slots of the threshold stay at their ceilings.
	last := append([]float64(nil), ceilings...)
	var seen []bool
	if opts.Memoize {
		seen = make([]bool, n)
	}

	res := &Result{Algorithm: AlgTA}
	for pos := 1; pos <= n; pos++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			if !restr.Sortable[i] {
				continue
			}
			e := pr.Sorted(i, pos)
			last[i] = e.Score
			if opts.Memoize && seen[e.Item] {
				continue
			}
			locals[i] = e.Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				locals[j], _ = pr.Random(j, e.Item)
			}
			y.Add(e.Item, f.Combine(locals))
			if opts.Memoize {
				seen[e.Item] = true
			}
		}
		delta := f.Combine(last)
		res.Threshold = delta
		res.StopPosition = pos
		res.Rounds = pos
		stopped := y.AtLeast(delta / theta)
		observe(opts.Observer, pos, pos, delta, y, nil, stopped)
		if stopped {
			break
		}
	}

	res.Items = y.Slice()
	res.Counts = pr.Counts()
	return res, nil
}

// BPAz is the Best Position Algorithm over a mix of sortable and
// random-only lists. Every access — including random accesses into the
// lists that cannot be scanned — records the position it touched, so the
// best position of a random-only list grows too, and the threshold uses
// the score at that best position instead of the ceiling as soon as the
// list's prefix starts filling in. With every list sortable it coincides
// with BPA access-for-access.
func BPAz(pr *access.Probe, opts Options, restr Restricted) (*Result, error) {
	db := pr.DB()
	if err := opts.validate(db); err != nil {
		return nil, err
	}
	ceilings, err := restr.validate(db)
	if err != nil {
		return nil, err
	}
	m, n := db.M(), db.N()
	f := opts.Scoring
	theta := opts.theta()

	y := rank.NewSet(opts.K)
	locals := make([]float64, m)
	bpScores := make([]float64, m)
	trackers := make([]bestpos.Tracker, m)
	for i := range trackers {
		trackers[i] = bestpos.New(opts.Tracker, n)
	}
	var seen []bool
	if opts.Memoize {
		seen = make([]bool, n)
	}

	res := &Result{Algorithm: AlgBPA}
	for pos := 1; pos <= n; pos++ {
		if err := opts.Interrupted(); err != nil {
			return nil, err
		}
		for i := 0; i < m; i++ {
			if !restr.Sortable[i] {
				continue
			}
			e := pr.Sorted(i, pos)
			trackers[i].MarkSeen(pos)
			if opts.Memoize && seen[e.Item] {
				continue
			}
			locals[i] = e.Score
			for j := 0; j < m; j++ {
				if j == i {
					continue
				}
				s, q := pr.Random(j, e.Item)
				locals[j] = s
				trackers[j].MarkSeen(q)
			}
			y.Add(e.Item, f.Combine(locals))
			if opts.Memoize {
				seen[e.Item] = true
			}
		}

		// λ: the score at each list's best position; a list whose prefix
		// has not started (bp = 0 — only possible for random-only lists)
		// contributes its ceiling.
		for i := 0; i < m; i++ {
			if bp := trackers[i].Best(); bp > 0 {
				bpScores[i] = db.List(i).At(bp).Score
			} else {
				bpScores[i] = ceilings[i]
			}
		}
		lambda := f.Combine(bpScores)
		res.Threshold = lambda
		res.StopPosition = pos
		res.Rounds = pos
		stopped := y.AtLeast(lambda / theta)
		if opts.Observer != nil {
			bps := make([]int, m)
			for i := range trackers {
				bps[i] = trackers[i].Best()
			}
			observe(opts.Observer, pos, pos, lambda, y, bps, stopped)
		}
		if stopped {
			break
		}
	}

	res.BestPositions = make([]int, m)
	for i := range trackers {
		res.BestPositions[i] = trackers[i].Best()
	}
	res.Items = y.Slice()
	res.Counts = pr.Counts()
	return res, nil
}
