package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"topk/internal/access"
	"topk/internal/score"
)

func allSortable(m int) Restricted {
	s := make([]bool, m)
	for i := range s {
		s[i] = true
	}
	return Restricted{Sortable: s}
}

func TestListCeilings(t *testing.T) {
	db := mustColumns(t, [][]float64{{3, 1, 2}, {-5, 7, 0}})
	got := ListCeilings(db)
	want := []float64{3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ceiling %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestRestrictedValidation(t *testing.T) {
	db := mustColumns(t, [][]float64{{3, 1, 2}, {5, 7, 6}})
	opts := Options{K: 1, Scoring: score.Sum{}}
	cases := []struct {
		name  string
		restr Restricted
		want  string
	}{
		{"wrong arity", Restricted{Sortable: []bool{true}}, "sortable flags"},
		{"none sortable", Restricted{Sortable: []bool{false, false}}, "no sortable"},
		{"ceiling arity", Restricted{Sortable: []bool{true, true}, Ceilings: []float64{9}}, "ceilings for"},
		{"ceiling too low", Restricted{Sortable: []bool{true, true}, Ceilings: []float64{2, 9}}, "unsound"},
		{"ceiling nan", Restricted{Sortable: []bool{true, true}, Ceilings: []float64{nan(), 9}}, "NaN"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := TAz(access.NewProbe(db), opts, c.restr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("TAz err = %v, want containing %q", err, c.want)
			}
			_, err = BPAz(access.NewProbe(db), opts, c.restr)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("BPAz err = %v, want containing %q", err, c.want)
			}
		})
	}
}

// TestPropertyAllSortableIsPlain: with every list sortable, TAz ≡ TA and
// BPAz ≡ BPA, access for access.
func TestPropertyAllSortableIsPlain(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8, memo bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		opts := Options{K: k, Scoring: f, Memoize: memo}

		ta, err := TA(access.NewProbe(db), opts)
		if err != nil {
			return false
		}
		taz, err := TAz(access.NewProbe(db), opts, allSortable(m))
		if err != nil {
			return false
		}
		bpa, err := BPA(access.NewProbe(db), opts)
		if err != nil {
			return false
		}
		bpaz, err := BPAz(access.NewProbe(db), opts, allSortable(m))
		if err != nil {
			return false
		}
		for _, pair := range []struct {
			name       string
			plain, res *Result
		}{{"TA", ta, taz}, {"BPA", bpa, bpaz}} {
			if pair.plain.Counts != pair.res.Counts ||
				pair.plain.StopPosition != pair.res.StopPosition ||
				pair.plain.Threshold != pair.res.Threshold {
				t.Logf("%sz diverged: %v/%d/%v vs %v/%d/%v", pair.name,
					pair.res.Counts, pair.res.StopPosition, pair.res.Threshold,
					pair.plain.Counts, pair.plain.StopPosition, pair.plain.Threshold)
				return false
			}
			if len(pair.plain.Items) != len(pair.res.Items) {
				return false
			}
			for i := range pair.plain.Items {
				if pair.plain.Items[i] != pair.res.Items[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomMask returns a sortable mask with at least one sortable list.
func randomMask(rng *rand.Rand, m int) []bool {
	mask := make([]bool, m)
	any := false
	for i := range mask {
		mask[i] = rng.Intn(2) == 0
		any = any || mask[i]
	}
	if !any {
		mask[rng.Intn(m)] = true
	}
	return mask
}

// TestPropertyRestrictedMatchesOracle: with random sortable masks, TAz
// and BPAz return the oracle's top-k scores.
func TestPropertyRestrictedMatchesOracle(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		restr := Restricted{Sortable: randomMask(rng, m)}
		oracle, err := Oracle(db, k, f)
		if err != nil {
			return false
		}
		opts := Options{K: k, Scoring: f}

		taz, err := TAz(access.NewProbe(db), opts, restr)
		if err != nil {
			t.Logf("TAz: %v", err)
			return false
		}
		bpaz, err := BPAz(access.NewProbe(db), opts, restr)
		if err != nil {
			t.Logf("BPAz: %v", err)
			return false
		}
		ok := assertSameAnswers(t, AlgTA, taz.Items, oracle)
		ok = assertSameAnswers(t, AlgBPA, bpaz.Items, oracle) && ok
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBPAzNeverStopsLater mirrors Lemma 1 in the restricted
// setting: BPAz's threshold is at most TAz's at every depth, so it never
// does more sorted accesses.
func TestPropertyBPAzNeverStopsLater(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%40
		m := 1 + int(mRaw)%6
		k := 1 + int(kRaw)%n
		db := randomDB(rng, n, m)
		f := randomScoring(rng, m)
		restr := Restricted{Sortable: randomMask(rng, m)}
		opts := Options{K: k, Scoring: f}

		taz, err := TAz(access.NewProbe(db), opts, restr)
		if err != nil {
			return false
		}
		bpaz, err := BPAz(access.NewProbe(db), opts, restr)
		if err != nil {
			return false
		}
		if bpaz.Counts.Sorted > taz.Counts.Sorted {
			t.Logf("BPAz sorted %d > TAz sorted %d", bpaz.Counts.Sorted, taz.Counts.Sorted)
			return false
		}
		if bpaz.Counts.Total() > taz.Counts.Total() {
			t.Logf("BPAz total %d > TAz total %d", bpaz.Counts.Total(), taz.Counts.Total())
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRestrictedNoSortedAccessToRandomOnlyLists audits the access trace:
// sorted accesses may only touch sortable lists.
func TestRestrictedNoSortedAccessToRandomOnlyLists(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := randomDB(rng, 60, 4)
	restr := Restricted{Sortable: []bool{true, false, true, false}}
	for _, run := range []func(*access.Probe, Options, Restricted) (*Result, error){TAz, BPAz} {
		pr := access.NewProbe(db)
		pr.EnableTrace()
		if _, err := run(pr, Options{K: 5, Scoring: score.Sum{}}, restr); err != nil {
			t.Fatal(err)
		}
		sorted := 0
		for _, rec := range pr.Trace() {
			if rec.Mode == access.SortedAccess {
				sorted++
				if !restr.Sortable[rec.List] {
					t.Fatalf("sorted access to random-only list %d", rec.List)
				}
			}
		}
		if sorted == 0 {
			t.Fatal("no sorted accesses recorded")
		}
	}
}

// TestRestrictedFallThrough: a huge explicit ceiling keeps TAz's
// threshold unreachable forever, forcing its scan to the bottom of the
// sortable lists; the answers are still exact because a full
// sortable-list scan sees every item. BPAz escapes this trap — its
// random accesses fill the random-only list's prefix, replacing the
// ceiling with real scores (asserted in TestBPAzTightensFromCeiling) —
// so only correctness is asserted for it here.
func TestRestrictedFallThrough(t *testing.T) {
	db := mustColumns(t, [][]float64{{3, 1, 2, 0}, {5, 7, 6, 4}})
	restr := Restricted{Sortable: []bool{true, false}, Ceilings: []float64{1e9, 1e9}}
	oracle, err := Oracle(db, 2, score.Sum{})
	if err != nil {
		t.Fatal(err)
	}
	taz, err := TAz(access.NewProbe(db), Options{K: 2, Scoring: score.Sum{}}, restr)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, AlgTA, taz.Items, oracle)
	if taz.StopPosition != db.N() {
		t.Errorf("TAz stopped at %d, want full scan %d", taz.StopPosition, db.N())
	}
	bpaz, err := BPAz(access.NewProbe(db), Options{K: 2, Scoring: score.Sum{}}, restr)
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, AlgBPA, bpaz.Items, oracle)
	if bpaz.StopPosition > taz.StopPosition {
		t.Errorf("BPAz stopped at %d, after TAz's %d", bpaz.StopPosition, taz.StopPosition)
	}
}

// TestBPAzTightensFromCeiling: the single random-only list starts
// contributing its ceiling and, once random accesses fill its prefix,
// contributes the best-position score instead — so BPAz stops earlier
// than TAz, which is stuck with the ceiling forever.
func TestBPAzTightensFromCeiling(t *testing.T) {
	// List 2 is random-only with an inflated explicit ceiling.
	db := mustColumns(t, [][]float64{
		{90, 80, 70, 60, 50, 40, 30, 20, 10, 0},
		{90, 80, 70, 60, 50, 40, 30, 20, 10, 0},
	})
	restr := Restricted{Sortable: []bool{true, false}, Ceilings: []float64{90, 500}}
	opts := Options{K: 2, Scoring: score.Sum{}}

	taz, err := TAz(access.NewProbe(db), opts, restr)
	if err != nil {
		t.Fatal(err)
	}
	bpaz, err := BPAz(access.NewProbe(db), opts, restr)
	if err != nil {
		t.Fatal(err)
	}
	if bpaz.StopPosition >= taz.StopPosition {
		t.Errorf("BPAz stopped at %d, TAz at %d; BPAz should tighten past the ceiling",
			bpaz.StopPosition, taz.StopPosition)
	}
	oracle, err := Oracle(db, 2, score.Sum{})
	if err != nil {
		t.Fatal(err)
	}
	assertSameAnswers(t, AlgBPA, bpaz.Items, oracle)
}
