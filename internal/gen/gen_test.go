package gen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"topk/internal/list"
)

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Kind: Uniform, N: 0, M: 3},
		{Kind: Uniform, N: 10, M: 0},
		{Kind: Correlated, N: 10, M: 2, Alpha: 0},
		{Kind: Correlated, N: 10, M: 2, Alpha: 1.5},
		{Kind: Correlated, N: 10, M: 2, Alpha: 0.1, Theta: -1},
		{Kind: Kind(99), N: 10, M: 2},
	}
	for _, s := range bad {
		if _, err := Generate(s); err == nil {
			t.Errorf("Generate(%+v) should fail", s)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Uniform:    "uniform",
		Gaussian:   "gaussian",
		Correlated: "correlated",
		Kind(9):    "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestUniformShape(t *testing.T) {
	db := MustGenerate(Spec{Kind: Uniform, N: 500, M: 4, Seed: 42})
	if db.M() != 4 || db.N() != 500 {
		t.Fatalf("M=%d N=%d", db.M(), db.N())
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// Uniform scores live in [0, 1).
	for i := 0; i < db.M(); i++ {
		top := db.List(i).At(1).Score
		bottom := db.List(i).At(500).Score
		if top < 0 || top >= 1 || bottom < 0 {
			t.Errorf("list %d scores out of [0,1): top=%v bottom=%v", i, top, bottom)
		}
	}
}

func TestGaussianShape(t *testing.T) {
	db := MustGenerate(Spec{Kind: Gaussian, N: 2000, M: 2, Seed: 1})
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// N(0,1): empirical mean near 0, both signs present.
	var sum float64
	neg := 0
	l := db.List(0)
	for p := 1; p <= db.N(); p++ {
		s := l.At(p).Score
		sum += s
		if s < 0 {
			neg++
		}
	}
	mean := sum / float64(db.N())
	if math.Abs(mean) > 0.1 {
		t.Errorf("gaussian mean = %v, want ~0", mean)
	}
	if neg < db.N()/4 || neg > 3*db.N()/4 {
		t.Errorf("gaussian negatives = %d of %d, want roughly half", neg, db.N())
	}
}

func TestDeterministicBySeed(t *testing.T) {
	specs := []Spec{
		{Kind: Uniform, N: 200, M: 3, Seed: 7},
		{Kind: Gaussian, N: 200, M: 3, Seed: 7},
		{Kind: Correlated, N: 200, M: 3, Alpha: 0.05, Seed: 7},
	}
	for _, spec := range specs {
		a := MustGenerate(spec)
		b := MustGenerate(spec)
		for i := 0; i < a.M(); i++ {
			for p := 1; p <= a.N(); p++ {
				if a.List(i).At(p) != b.List(i).At(p) {
					t.Fatalf("%v: not deterministic at list %d pos %d", spec.Kind, i, p)
				}
			}
		}
		spec2 := spec
		spec2.Seed = 8
		c := MustGenerate(spec2)
		same := true
		for p := 1; p <= a.N() && same; p++ {
			if a.List(0).At(p) != c.List(0).At(p) {
				same = false
			}
		}
		if same {
			t.Errorf("%v: different seeds produced identical list", spec.Kind)
		}
	}
}

func TestZipfScores(t *testing.T) {
	s := ZipfScores(100, 0.7)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	if s[0] != 1 {
		t.Errorf("top score = %v, want 1", s[0])
	}
	for i := 1; i < len(s); i++ {
		if s[i] >= s[i-1] {
			t.Fatalf("not strictly decreasing at %d: %v >= %v", i, s[i], s[i-1])
		}
	}
	// Zipf law: score(j) = j^-theta, so score(2)/score(1) = 2^-0.7.
	want := math.Pow(2, -0.7)
	if math.Abs(s[1]-want) > 1e-12 {
		t.Errorf("score(2) = %v, want %v", s[1], want)
	}
	// theta = 0 degenerates to all-equal scores.
	flat := ZipfScores(5, 0)
	for _, v := range flat {
		if v != 1 {
			t.Errorf("theta=0 score = %v, want 1", v)
		}
	}
}

func TestCorrelatedValidPermutations(t *testing.T) {
	db := MustGenerate(Spec{Kind: Correlated, N: 300, M: 5, Alpha: 0.01, Seed: 3})
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// Scores in every list follow the same Zipf sequence.
	want := ZipfScores(300, DefaultTheta)
	for i := 0; i < db.M(); i++ {
		for p := 1; p <= db.N(); p++ {
			if got := db.List(i).At(p).Score; got != want[p-1] {
				t.Fatalf("list %d pos %d score = %v, want %v", i, p, got, want[p-1])
			}
		}
	}
}

func TestCorrelatedThetaOverride(t *testing.T) {
	db := MustGenerate(Spec{Kind: Correlated, N: 50, M: 2, Alpha: 0.1, Theta: 1.2, Seed: 3})
	want := ZipfScores(50, 1.2)
	if got := db.List(0).At(2).Score; got != want[1] {
		t.Errorf("theta override ignored: %v != %v", got, want[1])
	}
}

// TestCorrelatedPositionsAreClose: with a small alpha the position of an
// item in list i must be near its position in list 1 most of the time
// (collisions push some items away, so we check the typical distance).
func TestCorrelatedPositionsAreClose(t *testing.T) {
	n := 2000
	alpha := 0.01
	db := MustGenerate(Spec{Kind: Correlated, N: n, M: 3, Alpha: alpha, Seed: 11})
	maxR := float64(n) * alpha
	within := 0
	for d := 0; d < n; d++ {
		p1 := db.List(0).PositionOf(list.ItemID(d))
		p2 := db.List(1).PositionOf(list.ItemID(d))
		if math.Abs(float64(p1-p2)) <= 3*maxR {
			within++
		}
	}
	if frac := float64(within) / float64(n); frac < 0.8 {
		t.Errorf("only %.0f%% of items within 3*n*alpha of their list-1 position", frac*100)
	}
}

// TestCorrelatedStrongerCorrelationHelps: top items of a strongly
// correlated database sit near the top of every list, so the best overall
// item should be found very near position 1 in all lists.
func TestCorrelatedStrongerCorrelationHelps(t *testing.T) {
	n := 5000
	strong := MustGenerate(Spec{Kind: Correlated, N: n, M: 4, Alpha: 0.001, Seed: 5})
	top := strong.List(0).At(1).Item
	for i := 1; i < strong.M(); i++ {
		p := strong.List(i).PositionOf(top)
		if p > n/10 {
			t.Errorf("alpha=0.001: top item of list 0 at position %d of list %d", p, i)
		}
	}
}

func TestSlotAllocatorNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := newSlotAllocator(10)
	if got := a.takeNearest(5, rng); got != 5 {
		t.Fatalf("takeNearest(5) = %d on empty allocator, want 5", got)
	}
	// 5 is taken: nearest to 5 is 4 or 6 (random tie).
	got := a.takeNearest(5, rng)
	if got != 4 && got != 6 {
		t.Fatalf("takeNearest(5) = %d, want 4 or 6", got)
	}
	// Fill everything; every position handed out exactly once.
	seen := map[int]bool{5: true, got: true}
	for i := 0; i < 8; i++ {
		p := a.takeNearest(1+rng.Intn(10), rng)
		if p < 1 || p > 10 || seen[p] {
			t.Fatalf("takeNearest returned invalid or duplicate %d", p)
		}
		seen[p] = true
	}
	if a.freeCount() != 0 {
		t.Fatalf("freeCount = %d, want 0", a.freeCount())
	}
}

func TestSlotAllocatorEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := newSlotAllocator(3)
	a.take(1)
	a.take(2)
	if got := a.takeNearest(1, rng); got != 3 {
		t.Fatalf("takeNearest(1) = %d, want 3 (only free slot)", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("takeNearest on full allocator did not panic")
		}
	}()
	a.takeNearest(2, rng)
}

// TestPropertySlotAllocatorIsPermutation: any sequence of takeNearest
// calls hands out each position exactly once and always returns the
// closest free slot.
func TestPropertySlotAllocatorIsPermutation(t *testing.T) {
	prop := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%60
		a := newSlotAllocator(n)
		free := make([]bool, n+1)
		for p := 1; p <= n; p++ {
			free[p] = true
		}
		for i := 0; i < n; i++ {
			target := 1 + rng.Intn(n)
			got := a.takeNearest(target, rng)
			if got < 1 || got > n || !free[got] {
				t.Logf("invalid slot %d", got)
				return false
			}
			// No strictly closer free slot may exist.
			d := abs(got - target)
			for q := 1; q <= n; q++ {
				if free[q] && abs(q-target) < d {
					t.Logf("slot %d returned for target %d, but %d was closer", got, target, q)
					return false
				}
			}
			free[got] = false
		}
		return a.freeCount() == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestPropertyGeneratedDatabasesValidate: every spec family produces
// structurally valid databases for arbitrary sizes and seeds.
func TestPropertyGeneratedDatabasesValidate(t *testing.T) {
	prop := func(seed int64, nRaw, mRaw uint8, kindRaw uint8, alphaRaw uint8) bool {
		n := 1 + int(nRaw)%80
		m := 1 + int(mRaw)%5
		kinds := []Kind{Uniform, Gaussian, Correlated}
		kind := kinds[int(kindRaw)%len(kinds)]
		spec := Spec{Kind: kind, N: n, M: m, Seed: seed}
		if kind == Correlated {
			spec.Alpha = float64(1+int(alphaRaw)%100) / 100
		}
		db, err := Generate(spec)
		if err != nil {
			t.Logf("Generate(%+v): %v", spec, err)
			return false
		}
		return db.Validate() == nil && db.N() == n && db.M() == m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
