package gen

import "math/rand"

// slotAllocator hands out positions 1..n, each at most once, answering
// "nearest free position to p" queries. Two union-find structures skip
// over occupied runs: nextFree[p] is the smallest free position >= p and
// prevFree[p] the largest free position <= p, both with path compression,
// so a take costs near-constant amortized time.
type slotAllocator struct {
	n        int
	taken    []bool
	nextFree []int32 // index 1..n, n+1 = "none to the right"
	prevFree []int32 // index 1..n, 0   = "none to the left"
}

func newSlotAllocator(n int) *slotAllocator {
	a := &slotAllocator{
		n:        n,
		taken:    make([]bool, n+2),
		nextFree: make([]int32, n+2),
		prevFree: make([]int32, n+1),
	}
	for p := 0; p <= n+1; p++ {
		a.nextFree[p] = int32(p)
	}
	for p := 0; p <= n; p++ {
		a.prevFree[p] = int32(p)
	}
	return a
}

// findNext returns the smallest free position >= p, or n+1 if none.
func (a *slotAllocator) findNext(p int) int {
	if p > a.n {
		return a.n + 1
	}
	root := p
	for a.nextFree[root] != int32(root) {
		root = int(a.nextFree[root])
	}
	for p != root {
		p, a.nextFree[p] = int(a.nextFree[p]), int32(root)
	}
	return root
}

// findPrev returns the largest free position <= p, or 0 if none.
func (a *slotAllocator) findPrev(p int) int {
	if p < 1 {
		return 0
	}
	root := p
	for a.prevFree[root] != int32(root) {
		root = int(a.prevFree[root])
	}
	for p != root {
		p, a.prevFree[p] = int(a.prevFree[p]), int32(root)
	}
	return root
}

// takeNearest claims and returns the free position closest to target.
// Distance ties are broken uniformly at random so the correlated generator
// has no directional bias. target must be in [1, n] and at least one
// position must be free.
func (a *slotAllocator) takeNearest(target int, rng *rand.Rand) int {
	up := a.findNext(target)
	down := a.findPrev(target)
	var p int
	switch {
	case up > a.n && down == 0:
		panic("gen: no free positions left")
	case up > a.n:
		p = down
	case down == 0:
		p = up
	default:
		du, dd := up-target, target-down
		switch {
		case du < dd:
			p = up
		case dd < du:
			p = down
		default:
			if rng.Intn(2) == 0 {
				p = up
			} else {
				p = down
			}
		}
	}
	a.take(p)
	return p
}

func (a *slotAllocator) take(p int) {
	if p < 1 || p > a.n || a.taken[p] {
		panic("gen: invalid take")
	}
	a.taken[p] = true
	a.nextFree[p] = int32(p + 1)
	a.prevFree[p] = int32(p - 1)
}

// freeCount returns the number of unclaimed positions; used by tests.
func (a *slotAllocator) freeCount() int {
	c := 0
	for p := 1; p <= a.n; p++ {
		if !a.taken[p] {
			c++
		}
	}
	return c
}
