// Package gen generates the test databases of the paper's performance
// evaluation (Section 6.1):
//
//   - Uniform: each list's scores drawn i.i.d. from U(0,1); the positions
//     of an item in any two lists are independent.
//   - Gaussian: scores drawn from N(0,1) (paper: "mean of 0 and a standard
//     deviation of 1").
//   - Correlated: item positions across lists are correlated through a
//     parameter α in [0,1]; scores follow the Zipf law with θ = 0.7.
//
// Generation is deterministic per (Spec, Seed).
package gen

import (
	"fmt"
	"math/rand"

	"topk/internal/list"
)

// Kind selects a database family.
type Kind uint8

const (
	// Uniform draws local scores from U(0,1) independently per list.
	Uniform Kind = iota
	// Gaussian draws local scores from N(0,1) independently per list.
	Gaussian
	// Correlated correlates item positions across lists with strength
	// controlled by Alpha and assigns Zipf(θ) scores by rank.
	Correlated
)

// String returns the family name used in experiment tables.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Gaussian:
		return "gaussian"
	case Correlated:
		return "correlated"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Spec describes a database to generate.
type Spec struct {
	Kind Kind
	// N is the number of data items per list (paper default 100,000).
	N int
	// M is the number of lists (paper default 8).
	M int
	// Alpha is the correlation parameter for Correlated databases,
	// 0 < Alpha <= 1: positions in list i >= 2 are placed within distance
	// r ~ U[1, N*Alpha] of the item's position in list 1. Smaller Alpha
	// means stronger correlation.
	Alpha float64
	// Theta is the Zipf exponent for Correlated score assignment. Zero
	// means the paper's default θ = 0.7.
	Theta float64
	// Seed makes generation reproducible.
	Seed int64
}

// DefaultTheta is the paper's Zipf parameter (Section 6.1).
const DefaultTheta = 0.7

func (s Spec) validate() error {
	if s.N < 1 {
		return fmt.Errorf("gen: n=%d must be positive", s.N)
	}
	if s.M < 1 {
		return fmt.Errorf("gen: m=%d must be positive", s.M)
	}
	if s.Kind == Correlated {
		if s.Alpha <= 0 || s.Alpha > 1 {
			return fmt.Errorf("gen: alpha=%v out of (0,1]", s.Alpha)
		}
		if s.Theta < 0 {
			return fmt.Errorf("gen: theta=%v must be non-negative", s.Theta)
		}
	}
	return nil
}

// Generate builds the database described by spec.
func Generate(spec Spec) (*list.Database, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	switch spec.Kind {
	case Uniform:
		return independent(spec, rng, func() float64 { return rng.Float64() })
	case Gaussian:
		return independent(spec, rng, rng.NormFloat64)
	case Correlated:
		return correlated(spec, rng)
	default:
		return nil, fmt.Errorf("gen: unknown kind %d", spec.Kind)
	}
}

// MustGenerate is Generate for tests and benchmarks with known-good specs.
func MustGenerate(spec Spec) *list.Database {
	db, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return db
}

// independent builds a database whose lists draw scores independently from
// the given distribution ("the positions of a data item in any two lists
// are independent of each other").
func independent(spec Spec, _ *rand.Rand, draw func() float64) (*list.Database, error) {
	lists := make([]*list.List, spec.M)
	scores := make([]float64, spec.N)
	for i := 0; i < spec.M; i++ {
		for d := range scores {
			scores[d] = draw()
		}
		l, err := list.FromScores(scores)
		if err != nil {
			return nil, err
		}
		lists[i] = l
	}
	return list.NewDatabase(lists...)
}

// ZipfScores returns n scores following the Zipf law with exponent theta:
// the score at rank j (1-based) is proportional to 1/j^theta, normalized
// so the top score is 1. The slice is strictly decreasing for theta > 0.
func ZipfScores(n int, theta float64) []float64 {
	out := make([]float64, n)
	for j := 1; j <= n; j++ {
		out[j-1] = 1 / powf(float64(j), theta)
	}
	return out
}

// powf is math.Pow specialized here to keep the hot loop allocation-free
// and explicit about the only use of non-integer exponentiation.
func powf(x, y float64) float64 {
	if y == 0 {
		return 1
	}
	return pow(x, y)
}
