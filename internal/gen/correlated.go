package gen

import (
	"math"
	"math/rand"

	"topk/internal/list"
)

func pow(x, y float64) float64 { return math.Pow(x, y) }

// correlated implements the Section 6.1 correlated generator:
//
//	"For the first list, we randomly select the position of data items.
//	Let p1 be the position of a data item in the first list, then for each
//	list Li (2 <= i <= m) we generate a random number r in interval
//	[1 .. n*α] ... and we put the data item at a position p whose distance
//	from p1 is r. If p is not free ... we put the data item at the free
//	position closest to p. ... the scores of the data items in each list
//	... follow the Zipf law with the Zipf parameter θ = 0.7."
//
// The paper leaves the direction of the displacement unspecified; we pick
// the sign uniformly at random and clamp to [1, n] (documented in
// DESIGN.md). Nearest-free-position lookup uses a disjoint-set allocator,
// so building a list is O(n α(n)) instead of the naive O(n^2).
func correlated(spec Spec, rng *rand.Rand) (*list.Database, error) {
	n, m := spec.N, spec.M
	theta := spec.Theta
	if theta == 0 {
		theta = DefaultTheta
	}
	scores := ZipfScores(n, theta)

	// Position of each item in list 1: a uniform random permutation.
	// posIn1[d] is the 1-based position of item d.
	perm := rng.Perm(n)
	posIn1 := make([]int, n)
	itemsAt1 := make([]list.ItemID, n) // itemsAt1[p-1] = item at position p
	for d, p0 := range perm {
		posIn1[d] = p0 + 1
		itemsAt1[p0] = list.ItemID(d)
	}

	lists := make([]*list.List, m)
	lists[0] = rankedList(itemsAt1, scores)

	maxR := int(float64(n) * spec.Alpha)
	if maxR < 1 {
		maxR = 1
	}

	entries := make([]list.Entry, n)
	for i := 1; i < m; i++ {
		alloc := newSlotAllocator(n)
		items := make([]list.ItemID, n)
		// Place items in position-of-list-1 order so generation is
		// deterministic and the strongest scores get first pick, matching
		// the paper's intent that correlated top items stay near the top.
		for p0 := 1; p0 <= n; p0++ {
			d := itemsAt1[p0-1]
			r := 1 + rng.Intn(maxR)
			if rng.Intn(2) == 0 {
				r = -r
			}
			target := p0 + r
			if target < 1 {
				target = 1
			} else if target > n {
				target = n
			}
			p := alloc.takeNearest(target, rng)
			items[p-1] = d
		}
		for p := 1; p <= n; p++ {
			entries[p-1] = list.Entry{Item: items[p-1], Score: scores[p-1]}
		}
		l, err := list.New(entries)
		if err != nil {
			return nil, err
		}
		lists[i] = l
	}
	return list.NewDatabase(lists...)
}

// rankedList builds a list where the item at rank p gets scores[p-1].
func rankedList(items []list.ItemID, scores []float64) *list.List {
	entries := make([]list.Entry, len(items))
	for p := range items {
		entries[p] = list.Entry{Item: items[p], Score: scores[p]}
	}
	l, err := list.New(entries)
	if err != nil {
		// items is a permutation and scores are sorted by construction.
		panic(err)
	}
	return l
}
