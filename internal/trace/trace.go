// Package trace records and renders round-by-round executions of the
// threshold algorithms, reproducing the walkthroughs of the paper's
// worked examples (the δ column of Figure 1b, the λ and best-position
// narration of Example 3).
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"

	"topk/internal/core"
)

// Log collects RoundInfo snapshots; it implements core.Observer.
type Log struct {
	Infos []core.RoundInfo
}

// Round implements core.Observer.
func (l *Log) Round(info core.RoundInfo) { l.Infos = append(l.Infos, info) }

// Thresholds returns the per-round threshold sequence (δ or λ).
func (l *Log) Thresholds() []float64 {
	out := make([]float64, len(l.Infos))
	for i, in := range l.Infos {
		out[i] = in.Threshold
	}
	return out
}

// Stopped returns the final round's stop flag (false for an empty log).
func (l *Log) Stopped() bool {
	if len(l.Infos) == 0 {
		return false
	}
	return l.Infos[len(l.Infos)-1].Stopped
}

// Render writes the walkthrough as an aligned table, one row per round:
// the round, the sorted-access position, the best positions (if the
// algorithm tracks them), the threshold, the current k-th score, and
// whether the stopping condition held.
func (l *Log) Render(w io.Writer, title string) error {
	if _, err := fmt.Fprintf(w, "# execution trace — %s\n", title); err != nil {
		return err
	}
	hasBP := false
	for _, in := range l.Infos {
		if in.BestPositions != nil {
			hasBP = true
			break
		}
	}
	header := "round  position  threshold  k-th score  stop"
	if hasBP {
		header = "round  position  best positions  threshold  k-th score  stop"
	}
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, in := range l.Infos {
		kth := "-"
		if in.YFull {
			kth = trimFloat(in.KthScore)
		} else if !math.IsInf(in.KthScore, -1) {
			kth = trimFloat(in.KthScore)
		}
		stop := ""
		if in.Stopped {
			stop = "STOP"
		}
		var line string
		if hasBP {
			bps := make([]string, len(in.BestPositions))
			for i, bp := range in.BestPositions {
				bps[i] = fmt.Sprintf("%d", bp)
			}
			line = fmt.Sprintf("%5d  %8d  %14s  %9s  %10s  %s",
				in.Round, in.Position, strings.Join(bps, ","), trimFloat(in.Threshold), kth, stop)
		} else {
			line = fmt.Sprintf("%5d  %8d  %9s  %10s  %s",
				in.Round, in.Position, trimFloat(in.Threshold), kth, stop)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(line, " ")); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4g", v)
}
