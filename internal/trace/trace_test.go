package trace

import (
	"bytes"
	"strings"
	"testing"

	"topk/internal/access"
	"topk/internal/core"
	"topk/internal/paperdb"
	"topk/internal/score"
)

// TestTATraceFigure1 replays Example 2 through the observer: TA's
// threshold sequence over Figure 1 must be exactly the δ column printed
// in Figure 1b, stopping at position 6.
func TestTATraceFigure1(t *testing.T) {
	db, err := paperdb.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	var log Log
	_, err = core.TA(access.NewProbe(db), core.Options{
		K: 3, Scoring: score.Sum{}, Observer: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{88, 84, 80, 75, 72, 63}
	got := log.Thresholds()
	if len(got) != len(want) {
		t.Fatalf("TA ran %d rounds, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("δ at position %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	if !log.Stopped() {
		t.Error("final round not marked stopped")
	}
	for i, in := range log.Infos {
		if in.Round != i+1 || in.Position != i+1 {
			t.Errorf("round %d has Round=%d Position=%d", i+1, in.Round, in.Position)
		}
		if in.BestPositions != nil {
			t.Error("TA should not report best positions")
		}
	}
}

// TestBPATraceFigure1 replays Example 3: λ = 88, 84, 43 with best
// positions reaching (9, 9, 6) at the stopping round.
func TestBPATraceFigure1(t *testing.T) {
	db, err := paperdb.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	var log Log
	_, err = core.BPA(access.NewProbe(db), core.Options{
		K: 3, Scoring: score.Sum{}, Observer: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{88, 84, 43}
	got := log.Thresholds()
	if len(got) != len(want) {
		t.Fatalf("BPA ran %d rounds, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("λ at position %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	final := log.Infos[len(log.Infos)-1]
	wantBP := []int{9, 9, 6}
	for i, bp := range final.BestPositions {
		if bp != wantBP[i] {
			t.Errorf("final bp%d = %d, want %d", i+1, bp, wantBP[i])
		}
	}
	if !final.Stopped || !final.YFull {
		t.Errorf("final round flags: %+v", final)
	}
}

// TestBPA2TraceFigure2 replays the Section 5.1 example: four rounds with
// λ = 88, 84, 71, 33.
func TestBPA2TraceFigure2(t *testing.T) {
	db, err := paperdb.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	var log Log
	_, err = core.BPA2(access.NewProbe(db), core.Options{
		K: 3, Scoring: score.Sum{}, Observer: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{88, 84, 71, 33}
	got := log.Thresholds()
	if len(got) != len(want) {
		t.Fatalf("BPA2 ran %d rounds, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("λ at round %d = %v, want %v", i+1, got[i], want[i])
		}
	}
	// After the last round every best position is 10 (positions 1-10 all
	// seen, 11+ only partially).
	final := log.Infos[len(log.Infos)-1]
	for i, bp := range final.BestPositions {
		if bp != 10 {
			t.Errorf("final bp%d = %d, want 10", i+1, bp)
		}
	}
}

func TestRenderTA(t *testing.T) {
	db, err := paperdb.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	var log Log
	if _, err := core.TA(access.NewProbe(db), core.Options{K: 3, Scoring: score.Sum{}, Observer: &log}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.Render(&buf, "TA over Figure 1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TA over Figure 1", "threshold", "63", "STOP"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "best positions") {
		t.Error("TA trace should not have a best-positions column")
	}
}

func TestRenderBPAIncludesBestPositions(t *testing.T) {
	db, err := paperdb.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	var log Log
	if _, err := core.BPA(access.NewProbe(db), core.Options{K: 3, Scoring: score.Sum{}, Observer: &log}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := log.Render(&buf, "BPA over Figure 1"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "best positions") {
		t.Errorf("BPA trace missing best positions column:\n%s", out)
	}
	if !strings.Contains(out, "9,9,6") {
		t.Errorf("BPA trace missing final best positions 9,9,6:\n%s", out)
	}
}

// TestTraceBeforeYFills: with k close to n, early rounds report an
// unfilled answer set (KthScore = -Inf, YFull = false) and render with a
// dash in the k-th score column.
func TestTraceBeforeYFills(t *testing.T) {
	db, err := paperdb.Figure1()
	if err != nil {
		t.Fatal(err)
	}
	var log Log
	_, err = core.TA(access.NewProbe(db), core.Options{
		K: 10, Scoring: score.Sum{}, Observer: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	first := log.Infos[0]
	if first.YFull {
		t.Error("round 1 cannot have 10 items (only 3-9 seen)")
	}
	var buf bytes.Buffer
	if err := log.Render(&buf, "TA k=10"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if len(lines) < 3 || !strings.Contains(lines[2], "-") {
		t.Errorf("unfilled round does not render a dash:\n%s", buf.String())
	}
	last := log.Infos[len(log.Infos)-1]
	if !last.YFull || !last.Stopped {
		t.Errorf("final round = %+v", last)
	}
}

func TestEmptyLog(t *testing.T) {
	var log Log
	if log.Stopped() {
		t.Error("empty log reports stopped")
	}
	if len(log.Thresholds()) != 0 {
		t.Error("empty log has thresholds")
	}
	var buf bytes.Buffer
	if err := log.Render(&buf, "empty"); err != nil {
		t.Fatal(err)
	}
}
