package stream

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"topk/internal/core"
)

func mustMonitor(t *testing.T, cfg Config) *Monitor {
	t.Helper()
	mo, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return mo
}

func observe(t *testing.T, mo *Monitor, source int, key string, delta float64) {
	t.Helper()
	if err := mo.Observe(source, key, delta); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{Sources: 0, K: 1},
		{Sources: 1, K: 0},
		{Sources: 1, K: 1, WindowBuckets: -1},
		{Sources: 1, K: 1, Algorithm: core.AlgNRA},
		{Sources: 1, K: 1, Algorithm: core.AlgCA},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
	if _, err := New(Config{Sources: 2, K: 3}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestObserveValidation(t *testing.T) {
	mo := mustMonitor(t, Config{Sources: 2, K: 1})
	if err := mo.Observe(2, "x", 1); err == nil {
		t.Error("out-of-range source accepted")
	}
	if err := mo.Observe(-1, "x", 1); err == nil {
		t.Error("negative source accepted")
	}
	if err := mo.Observe(0, "", 1); err == nil {
		t.Error("empty key accepted")
	}
	if err := mo.Observe(0, "x", math.NaN()); err == nil {
		t.Error("NaN delta accepted")
	}
	if err := mo.Observe(0, "x", math.Inf(1)); err == nil {
		t.Error("Inf delta accepted")
	}
}

func TestEmptyUniverse(t *testing.T) {
	mo := mustMonitor(t, Config{Sources: 2, K: 3})
	snap, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Query != 1 || len(snap.Items) != 0 || snap.Universe != 0 || len(snap.Changes) != 0 {
		t.Errorf("empty snapshot = %+v", snap)
	}
}

func TestTopKHandComputed(t *testing.T) {
	// Two monitors counting URL hits; Sum scoring.
	mo := mustMonitor(t, Config{Sources: 2, K: 2})
	observe(t, mo, 0, "/a", 10) // /a: 10 + 1 = 11
	observe(t, mo, 1, "/a", 1)
	observe(t, mo, 0, "/b", 4) // /b: 4 + 8 = 12
	observe(t, mo, 1, "/b", 8)
	observe(t, mo, 0, "/c", 5) // /c: 5 + 0 = 5

	snap, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	want := []Entry{{Key: "/b", Score: 12}, {Key: "/a", Score: 11}}
	if len(snap.Items) != len(want) {
		t.Fatalf("Items = %+v, want %+v", snap.Items, want)
	}
	for i := range want {
		if snap.Items[i] != want[i] {
			t.Errorf("Items[%d] = %+v, want %+v", i, snap.Items[i], want[i])
		}
	}
	if snap.Universe != 3 {
		t.Errorf("Universe = %d, want 3", snap.Universe)
	}
	// First snapshot: everything Entered, ordered by rank.
	if len(snap.Changes) != 2 || snap.Changes[0].Kind != Entered || snap.Changes[0].Key != "/b" ||
		snap.Changes[1].Key != "/a" {
		t.Errorf("Changes = %+v", snap.Changes)
	}
	if snap.Counts.Total() == 0 {
		t.Error("no accesses recorded")
	}
}

func TestChangeDetection(t *testing.T) {
	mo := mustMonitor(t, Config{Sources: 1, K: 2})
	observe(t, mo, 0, "a", 10)
	observe(t, mo, 0, "b", 5)
	if _, err := mo.TopK(); err != nil { // ranking: a, b
		t.Fatal(err)
	}

	observe(t, mo, 0, "b", 10) // b: 15 now beats a: 10
	observe(t, mo, 0, "c", 12) // c: 12 pushes a out of top-2
	snap, err := mo.TopK()     // ranking: b, c
	if err != nil {
		t.Fatal(err)
	}
	wantItems := []Entry{{Key: "b", Score: 15}, {Key: "c", Score: 12}}
	for i := range wantItems {
		if snap.Items[i] != wantItems[i] {
			t.Fatalf("Items = %+v, want %+v", snap.Items, wantItems)
		}
	}
	wantChanges := []Change{
		{Key: "b", Kind: Moved, Rank: 1, PrevRank: 2},
		{Key: "c", Kind: Entered, Rank: 2},
		{Key: "a", Kind: Left, PrevRank: 1},
	}
	if len(snap.Changes) != len(wantChanges) {
		t.Fatalf("Changes = %+v, want %+v", snap.Changes, wantChanges)
	}
	for i := range wantChanges {
		if snap.Changes[i] != wantChanges[i] {
			t.Errorf("Changes[%d] = %+v, want %+v", i, snap.Changes[i], wantChanges[i])
		}
	}
}

func TestSlidingWindowExpiry(t *testing.T) {
	mo := mustMonitor(t, Config{Sources: 1, K: 1, WindowBuckets: 2})
	observe(t, mo, 0, "old", 100)
	mo.Advance() // bucket 2: "old" still in window
	observe(t, mo, 0, "new", 1)

	snap, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Items[0].Key != "old" {
		t.Fatalf("ranking before expiry = %+v", snap.Items)
	}

	mo.Advance() // "old"'s bucket expires
	snap, err = mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Items) != 1 || snap.Items[0].Key != "new" {
		t.Fatalf("ranking after expiry = %+v", snap.Items)
	}
	if snap.Universe != 1 {
		t.Errorf("Universe = %d, want 1 (old key must drop out)", snap.Universe)
	}
}

func TestUnboundedWindowNeverExpires(t *testing.T) {
	mo := mustMonitor(t, Config{Sources: 1, K: 1})
	observe(t, mo, 0, "x", 7)
	for i := 0; i < 10; i++ {
		mo.Advance()
	}
	snap, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Items) != 1 || snap.Items[0].Score != 7 {
		t.Fatalf("landmark window lost data: %+v", snap.Items)
	}
}

func TestNegativeDeltaRemovesKey(t *testing.T) {
	mo := mustMonitor(t, Config{Sources: 2, K: 5})
	observe(t, mo, 0, "x", 3)
	observe(t, mo, 0, "x", -3) // back to zero: drops out of the universe
	observe(t, mo, 1, "y", 2)
	snap, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Universe != 1 || snap.Items[0].Key != "y" {
		t.Fatalf("snapshot = %+v, want only y", snap)
	}
}

func TestKClampsToUniverse(t *testing.T) {
	mo := mustMonitor(t, Config{Sources: 1, K: 10})
	observe(t, mo, 0, "a", 1)
	observe(t, mo, 0, "b", 2)
	snap, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Items) != 2 {
		t.Fatalf("Items = %+v, want 2 entries", snap.Items)
	}
}

func TestChangeKindString(t *testing.T) {
	cases := map[ChangeKind]string{Entered: "entered", Left: "left", Moved: "moved", ChangeKind(7): "ChangeKind(7)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

// TestPropertyMonitorMatchesDirectAggregation replays a random
// observation/advance schedule into both the monitor and a naive
// reference (full maps, no windows structure) and compares rankings
// after every query, for every supported exact algorithm.
func TestPropertyMonitorMatchesDirectAggregation(t *testing.T) {
	algs := []core.Algorithm{core.AlgBPA2, core.AlgBPA, core.AlgTA, core.AlgFA}
	prop := func(seed int64, mRaw, kRaw, wRaw uint8, algRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + int(mRaw)%4
		k := 1 + int(kRaw)%6
		w := int(wRaw) % 4 // 0 = unbounded
		alg := algs[int(algRaw)%len(algs)]
		mo, err := New(Config{Sources: m, K: k, WindowBuckets: w, Algorithm: alg})
		if err != nil {
			t.Log(err)
			return false
		}

		// Reference: per-source slice of bucket maps; window = last w.
		ref := make([][]map[string]float64, m)
		for i := range ref {
			ref[i] = []map[string]float64{{}}
		}
		refAgg := func(i int, key string) float64 {
			buckets := ref[i]
			lo := 0
			if w > 0 && len(buckets) > w {
				lo = len(buckets) - w
			}
			var v float64
			for _, b := range buckets[lo:] {
				v += b[key]
			}
			return v
		}

		keys := []string{"a", "b", "c", "d", "e", "f", "g"}
		for step := 0; step < 60; step++ {
			switch rng.Intn(10) {
			case 0:
				mo.Advance()
				for i := range ref {
					ref[i] = append(ref[i], map[string]float64{})
				}
			case 1:
				snap, err := mo.TopK()
				if err != nil {
					t.Log(err)
					return false
				}
				if !rankingMatches(t, snap, ref, refAgg, keys, k) {
					return false
				}
			default:
				i := rng.Intn(m)
				key := keys[rng.Intn(len(keys))]
				delta := float64(rng.Intn(9) - 2)
				if err := mo.Observe(i, key, delta); err != nil {
					t.Log(err)
					return false
				}
				cur := ref[i][len(ref[i])-1]
				cur[key] += delta
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// rankingMatches recomputes the expected ranking from the reference
// aggregation and compares the score sequence (identical multiset of the
// top-k overall scores; item identity enforced above the k-th score).
func rankingMatches(t *testing.T, snap *Snapshot, ref [][]map[string]float64,
	refAgg func(int, string) float64, keys []string, k int) bool {
	t.Helper()
	type scored struct {
		key   string
		total float64
	}
	var live []scored
	for _, key := range keys {
		inUniverse := false
		var total float64
		for i := range ref {
			v := refAgg(i, key)
			if v != 0 {
				inUniverse = true
			}
			total += v
		}
		if inUniverse {
			live = append(live, scored{key, total})
		}
	}
	sort.Slice(live, func(a, b int) bool {
		if live[a].total != live[b].total {
			return live[a].total > live[b].total
		}
		return live[a].key < live[b].key
	})
	wantLen := k
	if wantLen > len(live) {
		wantLen = len(live)
	}
	if snap.Universe != len(live) {
		t.Logf("universe = %d, want %d", snap.Universe, len(live))
		return false
	}
	if len(snap.Items) != wantLen {
		t.Logf("items = %+v, want %d entries of %+v", snap.Items, wantLen, live)
		return false
	}
	for i := 0; i < wantLen; i++ {
		if snap.Items[i].Score != live[i].total {
			t.Logf("rank %d score = %v, want %v (%+v vs %+v)", i+1, snap.Items[i].Score, live[i].total, snap.Items, live)
			return false
		}
	}
	return true
}

func ExampleMonitor() {
	mo, _ := New(Config{Sources: 2, K: 2, WindowBuckets: 3})
	_ = mo.Observe(0, "/home", 40)
	_ = mo.Observe(1, "/home", 12)
	_ = mo.Observe(0, "/search", 30)
	_ = mo.Observe(1, "/search", 25)
	snap, _ := mo.TopK()
	for _, e := range snap.Items {
		fmt.Printf("%s %.0f\n", e.Key, e.Score)
	}
	// Output:
	// /search 55
	// /home 52
}

// TestTopKFastPathPinsSnapshot: a TopK call with no Observe/Advance in
// between must answer from the cached ranking — identical Items and
// Universe, empty Changes, zero Counts (no list was rebuilt) — and a
// mutation, even one that does not change any aggregate, must drop back
// to the full evaluation with the same ranking.
func TestTopKFastPathPinsSnapshot(t *testing.T) {
	mo := mustMonitor(t, Config{Sources: 3, K: 5})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		observe(t, mo, rng.Intn(3), fmt.Sprintf("key-%03d", rng.Intn(40)), rng.Float64())
	}
	full, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if full.Counts.Total() == 0 {
		t.Fatal("full evaluation reported zero accesses")
	}

	fast, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fast.Items, full.Items) {
		t.Errorf("fast path changed the ranking:\n got %v\nwant %v", fast.Items, full.Items)
	}
	if fast.Universe != full.Universe {
		t.Errorf("fast path universe %d, want %d", fast.Universe, full.Universe)
	}
	if len(fast.Changes) != 0 {
		t.Errorf("fast path reported changes: %v", fast.Changes)
	}
	if got := fast.Counts.Total(); got != 0 {
		t.Errorf("fast path spent %d accesses, want 0", got)
	}
	if fast.Query != full.Query+1 {
		t.Errorf("fast path query %d, want %d", fast.Query, full.Query+1)
	}

	// The fast path must hand out a copy, not the cached ranking.
	if len(fast.Items) > 0 {
		fast.Items[0] = Entry{Key: "clobbered", Score: -1}
	}
	again, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Items, full.Items) {
		t.Error("mutating a fast-path snapshot leaked into the cache")
	}

	// Advance on an unbounded window expires nothing, but it is a
	// mutation: the next TopK must re-evaluate — and agree with the
	// cached ranking, pinning fast path against full path.
	mo.Advance()
	reeval, err := mo.TopK()
	if err != nil {
		t.Fatal(err)
	}
	if reeval.Counts.Total() == 0 {
		t.Error("TopK after Advance took the fast path")
	}
	if !reflect.DeepEqual(reeval.Items, full.Items) {
		t.Errorf("re-evaluation disagrees with cached ranking:\n got %v\nwant %v", reeval.Items, full.Items)
	}
	if len(reeval.Changes) != 0 {
		t.Errorf("unchanged aggregates reported changes: %v", reeval.Changes)
	}
}

// benchMonitor builds a monitor with a populated universe.
func benchMonitor(b *testing.B, sources, keys int) *Monitor {
	b.Helper()
	mo, err := New(Config{Sources: sources, K: 10})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%05d", i)
		for s := 0; s < sources; s++ {
			if err := mo.Observe(s, key, rng.Float64()); err != nil {
				b.Fatal(err)
			}
		}
	}
	return mo
}

// BenchmarkTopKNoOp measures the repeat-call fast path: no mutation
// between calls, so TopK answers from the cached ranking.
func BenchmarkTopKNoOp(b *testing.B) {
	mo := benchMonitor(b, 5, 2000)
	if _, err := mo.TopK(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mo.TopK(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTopKRebuild measures the full path the fast path skips: one
// touched aggregate forces the list rebuild and algorithm run.
func BenchmarkTopKRebuild(b *testing.B) {
	mo := benchMonitor(b, 5, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := mo.Observe(0, "key-00000", 0.001); err != nil {
			b.Fatal(err)
		}
		if _, err := mo.TopK(); err != nil {
			b.Fatal(err)
		}
	}
}
