// Package stream provides continuous top-k monitoring over sliding
// windows — the data-stream setting the paper cites as a driving
// application ([22], [24] in its related work, and the network-monitoring
// scenario of its conclusion).
//
// A Monitor tracks m score sources (network monitors, sensors, word
// counters, ...). Scores arrive as (source, key, delta) observations that
// accumulate into the current time bucket; a sliding window of the most
// recent B buckets defines each key's current local score per source.
// Every TopK call materializes the m sorted lists from the window
// aggregates and answers with one of the paper's algorithms (BPA2 by
// default), reporting both the ranking and how it changed since the
// previous call.
package stream

import (
	"fmt"
	"math"
	"sort"

	"topk/internal/access"
	"topk/internal/bestpos"
	"topk/internal/core"
	"topk/internal/list"
	"topk/internal/score"
)

// Config sizes a Monitor.
type Config struct {
	// Sources is m, the number of score sources. Required, >= 1.
	Sources int
	// K is the number of top keys to report. Required, >= 1. When fewer
	// than K distinct keys are live, TopK reports all of them.
	K int
	// WindowBuckets is the sliding-window length in buckets; observations
	// older than WindowBuckets Advance calls ago expire. Zero keeps an
	// unbounded (landmark) window.
	WindowBuckets int
	// Algorithm answers the queries; the zero value core.AlgNaive is
	// replaced by core.AlgBPA2. NRA and CA are refused: a monitor reports
	// scores, and theirs are inexact.
	Algorithm core.Algorithm
	// Scoring combines the m local scores (default score.Sum).
	Scoring score.Func
	// Tracker selects the best-position structure for BPA/BPA2.
	Tracker bestpos.Kind
}

// Monitor is a continuous top-k query over sliding-window aggregates.
// Not safe for concurrent use; wrap with a mutex to share.
type Monitor struct {
	cfg     Config
	sources []sourceState
	queries int
	prev    []Entry // previous snapshot ranking, for change detection

	// version counts mutations (Observe, Advance); evalVersion remembers
	// the version the last TopK evaluated at. When they match, TopK skips
	// the O(m·n log n) list rebuild and answers from the cached ranking.
	version      uint64
	evalVersion  uint64
	evaluated    bool
	lastUniverse int
}

// sourceState is one source's window: the live aggregate per key plus the
// per-bucket deltas needed to expire the oldest bucket.
type sourceState struct {
	agg  map[string]float64
	ring []map[string]float64 // ring[head] is the current bucket
	head int
}

// New validates the configuration and returns an empty Monitor.
func New(cfg Config) (*Monitor, error) {
	if cfg.Sources < 1 {
		return nil, fmt.Errorf("stream: %d sources", cfg.Sources)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("stream: k=%d", cfg.K)
	}
	if cfg.WindowBuckets < 0 {
		return nil, fmt.Errorf("stream: negative window %d", cfg.WindowBuckets)
	}
	if cfg.Algorithm == core.AlgNaive {
		cfg.Algorithm = core.AlgBPA2
	}
	if cfg.Algorithm == core.AlgNRA || cfg.Algorithm == core.AlgCA {
		return nil, fmt.Errorf("stream: %v reports inexact scores; a monitor needs exact rankings", cfg.Algorithm)
	}
	if cfg.Scoring == nil {
		cfg.Scoring = score.Sum{}
	}
	mo := &Monitor{cfg: cfg, sources: make([]sourceState, cfg.Sources)}
	for i := range mo.sources {
		mo.sources[i].agg = map[string]float64{}
		if cfg.WindowBuckets > 0 {
			mo.sources[i].ring = make([]map[string]float64, cfg.WindowBuckets)
			mo.sources[i].ring[0] = map[string]float64{}
		}
	}
	return mo, nil
}

// Observe adds delta to key's score at the given source in the current
// bucket. Deltas may be negative (corrections); aggregates that return to
// zero drop out of the universe.
func (mo *Monitor) Observe(source int, key string, delta float64) error {
	if source < 0 || source >= len(mo.sources) {
		return fmt.Errorf("stream: source %d out of range [0,%d)", source, len(mo.sources))
	}
	if key == "" {
		return fmt.Errorf("stream: empty key")
	}
	if math.IsNaN(delta) || math.IsInf(delta, 0) {
		return fmt.Errorf("stream: delta %v for key %q is not finite", delta, key)
	}
	s := &mo.sources[source]
	mo.version++
	addScore(s.agg, key, delta)
	if s.ring != nil {
		addScore(s.ring[s.head], key, delta)
	}
	return nil
}

// addScore accumulates into a score map, deleting exact-zero entries so
// the live universe stays tight.
func addScore(m map[string]float64, key string, delta float64) {
	v := m[key] + delta
	if v == 0 {
		delete(m, key)
		return
	}
	m[key] = v
}

// Advance closes the current time bucket. With a sliding window, the
// bucket that falls off the window is subtracted from the aggregates.
// Without one (WindowBuckets == 0) Advance only marks bucket boundaries
// and never expires anything.
func (mo *Monitor) Advance() {
	mo.version++
	for i := range mo.sources {
		s := &mo.sources[i]
		if s.ring == nil {
			continue
		}
		s.head = (s.head + 1) % len(s.ring)
		if old := s.ring[s.head]; old != nil {
			for key, v := range old {
				addScore(s.agg, key, -v)
			}
		}
		s.ring[s.head] = map[string]float64{}
	}
}

// Entry is one ranked key of a snapshot.
type Entry struct {
	Key   string
	Score float64
}

// ChangeKind classifies a ranking change between consecutive snapshots.
type ChangeKind uint8

const (
	// Entered: the key is in the ranking now but was not before.
	Entered ChangeKind = iota
	// Left: the key was in the ranking before but is not now.
	Left
	// Moved: the key is in both rankings at a different rank.
	Moved
)

// String returns the change-kind name.
func (c ChangeKind) String() string {
	switch c {
	case Entered:
		return "entered"
	case Left:
		return "left"
	case Moved:
		return "moved"
	default:
		return fmt.Sprintf("ChangeKind(%d)", uint8(c))
	}
}

// Change records one difference between consecutive snapshots. Ranks are
// 1-based; a rank of 0 means "not in the ranking" (the previous rank of
// an Entered key, the new rank of a Left key).
type Change struct {
	Key      string
	Kind     ChangeKind
	Rank     int // rank in the new snapshot
	PrevRank int // rank in the previous snapshot
}

// Snapshot is the result of one TopK evaluation.
type Snapshot struct {
	// Query numbers the TopK calls on this monitor, starting at 1.
	Query int
	// Items is the ranking, best first. Its length is min(K, live keys).
	Items []Entry
	// Changes lists the differences against the previous snapshot in
	// deterministic order: Entered and Moved by new rank, then Left by
	// previous rank.
	Changes []Change
	// Universe is the number of live keys at evaluation time.
	Universe int
	// Counts tallies the list accesses the underlying algorithm spent.
	Counts access.Counts
}

// TopK materializes the sorted lists from the current window aggregates,
// runs the configured algorithm, and reports the ranking with changes
// since the previous call. An empty universe yields an empty snapshot.
//
// When no Observe or Advance happened since the previous TopK, the call
// takes a fast path: the aggregates are untouched, so the ranking is the
// previous one by construction and the O(m·n log n) rebuild-and-run is
// skipped. The snapshot is identical to what a full re-evaluation would
// report — same Items, same Universe, empty Changes — except that Counts
// is zero: no list was materialized, so no access was spent, which is the
// point.
func (mo *Monitor) TopK() (*Snapshot, error) {
	mo.queries++
	if mo.evaluated && mo.version == mo.evalVersion {
		snap := &Snapshot{Query: mo.queries, Universe: mo.lastUniverse}
		if mo.prev != nil {
			snap.Items = append([]Entry(nil), mo.prev...)
		}
		return snap, nil
	}
	snap := &Snapshot{Query: mo.queries}

	keys := mo.liveKeys()
	snap.Universe = len(keys)
	if len(keys) == 0 {
		snap.Changes = mo.diff(nil)
		mo.prev = nil
		mo.evaluated, mo.evalVersion, mo.lastUniverse = true, mo.version, 0
		return snap, nil
	}

	cols := make([][]float64, len(mo.sources))
	for i := range mo.sources {
		col := make([]float64, len(keys))
		for d, key := range keys {
			col[d] = mo.sources[i].agg[key]
		}
		cols[i] = col
	}
	db, err := list.FromColumns(cols)
	if err != nil {
		return nil, fmt.Errorf("stream: materialize lists: %w", err)
	}
	k := mo.cfg.K
	if k > len(keys) {
		k = len(keys)
	}
	res, err := core.Run(mo.cfg.Algorithm, db, core.Options{
		K:       k,
		Scoring: mo.cfg.Scoring,
		Tracker: mo.cfg.Tracker,
	})
	if err != nil {
		return nil, fmt.Errorf("stream: %v: %w", mo.cfg.Algorithm, err)
	}

	snap.Items = make([]Entry, len(res.Items))
	for i, it := range res.Items {
		snap.Items[i] = Entry{Key: keys[it.Item], Score: it.Score}
	}
	snap.Counts = res.Counts
	snap.Changes = mo.diff(snap.Items)
	mo.prev = snap.Items
	mo.evaluated, mo.evalVersion, mo.lastUniverse = true, mo.version, snap.Universe
	return snap, nil
}

// liveKeys returns the sorted union of keys with a non-zero aggregate in
// any source. Sorting fixes the dense item-ID assignment, which keeps
// tie-breaking deterministic across calls.
func (mo *Monitor) liveKeys() []string {
	set := map[string]struct{}{}
	for i := range mo.sources {
		for key := range mo.sources[i].agg {
			set[key] = struct{}{}
		}
	}
	keys := make([]string, 0, len(set))
	for key := range set {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// diff compares the new ranking against the previous one.
func (mo *Monitor) diff(items []Entry) []Change {
	prevRank := make(map[string]int, len(mo.prev))
	for i, e := range mo.prev {
		prevRank[e.Key] = i + 1
	}
	var changes []Change
	seen := make(map[string]bool, len(items))
	for i, e := range items {
		seen[e.Key] = true
		rank := i + 1
		prev, ok := prevRank[e.Key]
		switch {
		case !ok:
			changes = append(changes, Change{Key: e.Key, Kind: Entered, Rank: rank})
		case prev != rank:
			changes = append(changes, Change{Key: e.Key, Kind: Moved, Rank: rank, PrevRank: prev})
		}
	}
	for i, e := range mo.prev {
		if !seen[e.Key] {
			changes = append(changes, Change{Key: e.Key, Kind: Left, PrevRank: i + 1})
		}
	}
	return changes
}
