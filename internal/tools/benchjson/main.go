// Command benchjson converts `go test -bench` text output into the
// machine-readable benchmark record the CI pipeline stores as
// BENCH_<pr>.json, so successive PRs leave a comparable perf trajectory
// (queries/sec, wire bytes, allocations) instead of scrollback.
//
// Usage:
//
//	go test -run '^$' -bench 'Codec|ConcurrentSessions' -benchmem . | \
//	    go run ./internal/tools/benchjson -note "PR 4" > BENCH_4.json
//
//	go run ./internal/tools/benchjson -note "PR 4" -baseline pr3.txt current.txt
//
// Every benchmark line becomes {name, iterations, metrics{unit: value}};
// unparseable lines are ignored, so the raw `go test` stream can be
// piped in directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark result line.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Record is the file layout of BENCH_<pr>.json.
type Record struct {
	Note       string  `json:"note,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
	// Baseline holds the previous PR's numbers when provided, so the
	// delta travels with the file.
	Baseline []Bench `json:"baseline,omitempty"`
}

// parse extracts benchmark lines from `go test -bench` output. A line is
//
//	BenchmarkName/sub-8   123   4567 ns/op   89.0 queries/sec   ...
//
// i.e. a name starting with "Benchmark", an iteration count, then
// value/unit pairs.
func parse(r io.Reader) ([]Bench, error) {
	var out []Bench
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if len(b.Metrics) > 0 {
			out = append(out, b)
		}
	}
	return out, sc.Err()
}

func parseFile(path string) ([]Bench, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

func main() {
	note := flag.String("note", "", "free-form label stored in the record")
	baseline := flag.String("baseline", "", "previous PR's bench output to embed for comparison")
	flag.Parse()

	var (
		rec Record
		err error
	)
	rec.Note = *note
	switch flag.NArg() {
	case 0:
		rec.Benchmarks, err = parse(os.Stdin)
	case 1:
		rec.Benchmarks, err = parseFile(flag.Arg(0))
	default:
		fmt.Fprintln(os.Stderr, "benchjson: at most one input file (or stdin)")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *baseline != "" {
		if rec.Baseline, err = parseFile(*baseline); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: baseline: %v\n", err)
			os.Exit(1)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
