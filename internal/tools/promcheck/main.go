// Command promcheck scrapes a /metrics endpoint (or reads an exposition
// from stdin) and fails loudly if the payload is not well-formed
// Prometheus text exposition — the CI guard that keeps the hand-rolled
// exposition writer honest against real scrapers.
//
// Usage:
//
//	go run ./internal/tools/promcheck http://localhost:8080/metrics
//	curl -s localhost:8080/metrics | go run ./internal/tools/promcheck
//
// Exit status 0 means the exposition parsed and every sample line
// belongs to a declared family; anything else prints the first problem
// found and exits 1.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"topk/internal/obs"
)

func main() {
	timeout := flag.Duration("timeout", 10*time.Second, "HTTP scrape timeout")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: promcheck [-timeout d] [URL]\nReads stdin when no URL is given.\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}

	var (
		data []byte
		src  string
		err  error
	)
	if flag.NArg() == 1 {
		src = flag.Arg(0)
		data, err = scrape(src, *timeout)
	} else {
		src = "stdin"
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", src, err)
		os.Exit(1)
	}
	if len(data) == 0 {
		fmt.Fprintf(os.Stderr, "promcheck: %s: empty exposition\n", src)
		os.Exit(1)
	}
	if err := obs.ValidateExposition(data); err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: malformed exposition: %v\n", src, err)
		os.Exit(1)
	}
	families := 0
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families++
		}
	}
	fmt.Printf("promcheck: %s: ok (%d bytes, %d metric families)\n", src, len(data), families)
}

// scrape fetches url and returns the body of a 200 response.
func scrape(url string, timeout time.Duration) ([]byte, error) {
	c := &http.Client{Timeout: timeout}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return body, nil
}
