package rank

import (
	"container/heap"
	"testing"
)

// TestMinHeapInterface exercises the container/heap contract directly:
// the worst item (under the global ordering) must surface at the root,
// and Pop must drain in worst-first order.
func TestMinHeapInterface(t *testing.T) {
	var h minHeap
	heap.Init(&h)
	heap.Push(&h, ScoredItem{Item: 1, Score: 5})
	heap.Push(&h, ScoredItem{Item: 2, Score: 9})
	heap.Push(&h, ScoredItem{Item: 3, Score: 1})
	heap.Push(&h, ScoredItem{Item: 4, Score: 5}) // ties with item 1; larger ID is worse

	if h.Len() != 4 {
		t.Fatalf("Len = %d", h.Len())
	}
	// Worst first: 1 (score), then the score-5 tie with larger ID first.
	wantOrder := []ScoredItem{{3, 1}, {4, 5}, {1, 5}, {2, 9}}
	for i, want := range wantOrder {
		got := heap.Pop(&h).(ScoredItem)
		if got != want {
			t.Errorf("pop %d = %+v, want %+v", i, got, want)
		}
	}
	if h.Len() != 0 {
		t.Fatalf("heap not drained: %d left", h.Len())
	}
}
