package rank

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"topk/internal/list"
)

func TestLessOrdering(t *testing.T) {
	cases := []struct {
		a, b ScoredItem
		want bool
	}{
		{ScoredItem{0, 5}, ScoredItem{1, 3}, true},   // higher score first
		{ScoredItem{0, 3}, ScoredItem{1, 5}, false},  // lower score later
		{ScoredItem{0, 4}, ScoredItem{1, 4}, true},   // tie: smaller ID first
		{ScoredItem{5, 4}, ScoredItem{1, 4}, false},  // tie: larger ID later
		{ScoredItem{2, -1}, ScoredItem{3, -2}, true}, // negatives ordered too
	}
	for _, c := range cases {
		if got := Less(c.a, c.b); got != c.want {
			t.Errorf("Less(%+v,%+v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNewSetPanicsOnBadK(t *testing.T) {
	for _, k := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewSet(%d) did not panic", k)
				}
			}()
			NewSet(k)
		}()
	}
}

func TestSetBasics(t *testing.T) {
	s := NewSet(2)
	if s.K() != 2 || s.Len() != 0 || s.Full() {
		t.Fatal("fresh set state wrong")
	}
	if _, ok := s.Threshold(); ok {
		t.Error("threshold defined before full")
	}
	if !s.Add(3, 10) {
		t.Error("first Add returned false")
	}
	if s.Add(3, 10) {
		t.Error("re-adding an item must be a no-op")
	}
	s.Add(1, 5)
	if !s.Full() {
		t.Error("set should be full")
	}
	th, ok := s.Threshold()
	if !ok || th != 5 {
		t.Errorf("Threshold = %v,%v, want 5,true", th, ok)
	}
	// A better item evicts the worst.
	if !s.Add(2, 7) {
		t.Error("better item rejected")
	}
	if s.Contains(1) {
		t.Error("evicted item still reported")
	}
	if !s.Contains(2) || !s.Contains(3) {
		t.Error("kept items missing")
	}
	// A worse item is rejected.
	if s.Add(9, 1) {
		t.Error("worse item accepted")
	}
	got := s.Slice()
	want := []ScoredItem{{3, 10}, {2, 7}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Slice = %v, want %v", got, want)
	}
}

func TestSetTieBreakAtBoundary(t *testing.T) {
	s := NewSet(1)
	s.Add(5, 4)
	// Equal score, smaller ID: must replace under deterministic ordering.
	if !s.Add(2, 4) {
		t.Error("smaller-ID tie not accepted")
	}
	if got := s.Slice()[0]; got != (ScoredItem{2, 4}) {
		t.Errorf("kept %v, want {2 4}", got)
	}
	// Equal score, larger ID: rejected.
	if s.Add(9, 4) {
		t.Error("larger-ID tie accepted")
	}
}

func TestAtLeast(t *testing.T) {
	s := NewSet(2)
	s.Add(0, 10)
	if s.AtLeast(0) {
		t.Error("AtLeast true before full")
	}
	s.Add(1, 6)
	if !s.AtLeast(6) {
		t.Error("AtLeast(6) false with threshold 6")
	}
	if s.AtLeast(6.5) {
		t.Error("AtLeast(6.5) true with threshold 6")
	}
}

// TestPropertySetMatchesSort: feeding any sequence of (item, score) pairs
// (first score wins per item, as in the algorithms where overall scores
// are fixed), the set keeps exactly the k best under the global ordering.
func TestPropertySetMatchesSort(t *testing.T) {
	prop := func(seed int64, nRaw, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%50
		k := 1 + int(kRaw)%n
		s := NewSet(k)
		first := map[list.ItemID]float64{}
		for i := 0; i < n; i++ {
			item := list.ItemID(rng.Intn(n))
			score := float64(rng.Intn(10))
			if _, seen := first[item]; !seen {
				first[item] = score
			}
			s.Add(item, first[item]) // algorithms always re-add the same score
		}
		var all []ScoredItem
		for item, score := range first {
			all = append(all, ScoredItem{Item: item, Score: score})
		}
		sort.Slice(all, func(i, j int) bool { return Less(all[i], all[j]) })
		if len(all) > k {
			all = all[:k]
		}
		got := s.Slice()
		if len(got) != len(all) {
			return false
		}
		for i := range all {
			if got[i] != all[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
