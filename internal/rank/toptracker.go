package rank

import (
	"fmt"
	"math"
	"sort"

	"topk/internal/list"
)

// TopTracker maintains the k best items under scores that may be raised
// over time. It is the answer-set structure of the NRA and CA baselines
// (Fagin, Lotem, Naor — the paper's reference [15]), whose worst-case
// bounds W(d) grow as more of an item's local scores become known; Set
// cannot serve there because its scores are final once added.
//
// Ordering is the package ordering (Less): higher score first, ties by
// ascending item ID. All operations are O(log k); membership is O(1).
type TopTracker struct {
	k   int
	h   []ScoredItem        // binary heap, worst kept item at h[0]
	pos map[list.ItemID]int // heap index of every kept item
}

// NewTopTracker returns a tracker that keeps the k best items.
func NewTopTracker(k int) *TopTracker {
	if k <= 0 {
		panic(fmt.Sprintf("rank: k must be positive, got %d", k))
	}
	return &TopTracker{k: k, pos: make(map[list.ItemID]int, k+1)}
}

// K returns the capacity of the tracker.
func (t *TopTracker) K() int { return t.k }

// Len returns the number of items currently kept (<= k).
func (t *TopTracker) Len() int { return len(t.h) }

// Full reports whether the tracker holds k items.
func (t *TopTracker) Full() bool { return len(t.h) == t.k }

// Contains reports whether the item is currently one of the kept top-k.
func (t *TopTracker) Contains(d list.ItemID) bool {
	_, ok := t.pos[d]
	return ok
}

// Score returns the current score of a kept item; ok is false when the
// item is not kept.
func (t *TopTracker) Score(d list.ItemID) (float64, bool) {
	i, ok := t.pos[d]
	if !ok {
		return 0, false
	}
	return t.h[i].Score, true
}

// Offer inserts the item or raises its score. If the item is kept, its
// score is raised to score (lowering is refused: bounds only grow). If it
// is new and the tracker is full, it replaces the worst kept item exactly
// when it orders before it. Offer reports whether the tracker changed.
func (t *TopTracker) Offer(d list.ItemID, score float64) bool {
	_, _, changed := t.OfferEvict(d, score)
	return changed
}

// OfferEvict is Offer, but additionally reports the item that was evicted
// to make room, if any. NRA's candidate bookkeeping needs evictions: an
// item leaving the answer set re-enters the pool whose best-case bounds
// gate the stopping condition.
func (t *TopTracker) OfferEvict(d list.ItemID, score float64) (evicted ScoredItem, hasEvicted, changed bool) {
	if i, ok := t.pos[d]; ok {
		if score <= t.h[i].Score {
			return ScoredItem{}, false, false
		}
		t.h[i].Score = score
		t.fix(i)
		return ScoredItem{}, false, true
	}
	it := ScoredItem{Item: d, Score: score}
	if len(t.h) < t.k {
		t.h = append(t.h, it)
		t.pos[d] = len(t.h) - 1
		t.up(len(t.h) - 1)
		return ScoredItem{}, false, true
	}
	if !Less(it, t.h[0]) {
		return ScoredItem{}, false, false
	}
	evicted = t.h[0]
	delete(t.pos, evicted.Item)
	t.h[0] = it
	t.pos[d] = 0
	t.down(0)
	return evicted, true, true
}

// Worst returns the worst kept item (the k-th best); ok is false until at
// least one item was offered.
func (t *TopTracker) Worst() (ScoredItem, bool) {
	if len(t.h) == 0 {
		return ScoredItem{}, false
	}
	return t.h[0], true
}

// Threshold returns the score of the k-th best item, matching the
// signature of Set.Threshold so the two structures are interchangeable in
// stopping conditions and observers. The second result is false until the
// tracker is full.
func (t *TopTracker) Threshold() (float64, bool) {
	if len(t.h) < t.k {
		return math.Inf(-1), false
	}
	return t.h[0].Score, true
}

// Slice returns the kept items ordered best-first.
func (t *TopTracker) Slice() []ScoredItem {
	out := make([]ScoredItem, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// worse orders the heap: the root must be the item that orders last under
// Less, so "i sorts before j" means "i is worse than j".
func (t *TopTracker) worse(i, j int) bool { return Less(t.h[j], t.h[i]) }

func (t *TopTracker) swap(i, j int) {
	t.h[i], t.h[j] = t.h[j], t.h[i]
	t.pos[t.h[i].Item] = i
	t.pos[t.h[j].Item] = j
}

func (t *TopTracker) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.worse(i, parent) {
			break
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopTracker) down(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.worse(l, smallest) {
			smallest = l
		}
		if r < n && t.worse(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}

func (t *TopTracker) fix(i int) {
	t.up(i)
	t.down(i)
}
