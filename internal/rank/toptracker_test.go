package rank

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"topk/internal/list"
)

func TestTopTrackerBasics(t *testing.T) {
	tr := NewTopTracker(2)
	if tr.K() != 2 || tr.Len() != 0 || tr.Full() {
		t.Fatal("fresh tracker state wrong")
	}
	if _, ok := tr.Worst(); ok {
		t.Fatal("Worst on empty tracker reported ok")
	}
	if _, ok := tr.Threshold(); ok {
		t.Fatal("Threshold on empty tracker reported ok")
	}

	if !tr.Offer(1, 10) || !tr.Offer(2, 20) {
		t.Fatal("initial offers did not change the tracker")
	}
	if !tr.Full() {
		t.Fatal("tracker should be full")
	}
	if w, _ := tr.Worst(); w.Item != 1 || w.Score != 10 {
		t.Fatalf("Worst = %+v, want item 1 score 10", w)
	}

	// A worse item is refused.
	if tr.Offer(3, 5) {
		t.Fatal("Offer(3, 5) changed a full tracker with worst 10")
	}
	// A better item evicts the worst.
	if !tr.Offer(3, 15) {
		t.Fatal("Offer(3, 15) did not evict")
	}
	if tr.Contains(1) || !tr.Contains(3) {
		t.Fatal("eviction membership wrong")
	}

	// Raising a kept item reorders the heap.
	if !tr.Offer(3, 30) {
		t.Fatal("raise refused")
	}
	if w, _ := tr.Worst(); w.Item != 2 {
		t.Fatalf("after raise Worst = %+v, want item 2", w)
	}
	// Lowering is refused.
	if tr.Offer(3, 1) {
		t.Fatal("lowering a score was accepted")
	}
	if s, ok := tr.Score(3); !ok || s != 30 {
		t.Fatalf("Score(3) = %v,%v want 30,true", s, ok)
	}
}

func TestTopTrackerTieBreaksByItemID(t *testing.T) {
	tr := NewTopTracker(1)
	tr.Offer(5, 10)
	// Same score, lower ID orders before: item 2 replaces item 5.
	if !tr.Offer(2, 10) {
		t.Fatal("equal-score lower-ID item did not replace")
	}
	// Same score, higher ID does not.
	if tr.Offer(9, 10) {
		t.Fatal("equal-score higher-ID item replaced")
	}
	got := tr.Slice()
	if len(got) != 1 || got[0].Item != 2 {
		t.Fatalf("Slice = %+v, want item 2", got)
	}
}

func TestTopTrackerPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTopTracker(0) did not panic")
		}
	}()
	NewTopTracker(0)
}

// naiveTop mirrors TopTracker with a plain map + sort; the specification
// for the property test.
type naiveTop struct {
	k      int
	scores map[list.ItemID]float64
}

func (n *naiveTop) offer(d list.ItemID, s float64) {
	if old, ok := n.scores[d]; ok {
		if s > old {
			n.scores[d] = s
		}
		return
	}
	n.scores[d] = s
	if len(n.scores) > n.k {
		// Drop the worst.
		worst := ScoredItem{Score: 0}
		first := true
		for item, score := range n.scores {
			it := ScoredItem{Item: item, Score: score}
			if first || Less(worst, it) {
				worst = it
				first = false
			}
		}
		delete(n.scores, worst.Item)
	}
}

func (n *naiveTop) slice() []ScoredItem {
	out := make([]ScoredItem, 0, len(n.scores))
	for item, score := range n.scores {
		out = append(out, ScoredItem{Item: item, Score: score})
	}
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// TestPropertyTopTrackerMatchesNaive drives the tracker and the naive
// specification with identical random offer sequences (inserts and
// raises) and compares the full kept state after every operation.
//
// The naive eviction drops an arbitrary worst item under ties, while
// TopTracker is deterministic, so scores are kept distinct by
// construction (score = op index).
func TestPropertyTopTrackerMatchesNaive(t *testing.T) {
	prop := func(seed int64, kRaw, opsRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%8
		ops := 1 + int(opsRaw)%120
		tr := NewTopTracker(k)
		naive := &naiveTop{k: k, scores: map[list.ItemID]float64{}}
		for op := 0; op < ops; op++ {
			d := list.ItemID(rng.Intn(20))
			s := float64(op) // distinct, increasing: raises are frequent
			tr.Offer(d, s)
			naive.offer(d, s)

			want := naive.slice()
			got := tr.Slice()
			if len(got) != len(want) {
				t.Logf("len mismatch: got %d want %d", len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("op %d: slice[%d] = %+v, want %+v", op, i, got[i], want[i])
					return false
				}
			}
			if len(want) > 0 {
				w, ok := tr.Worst()
				if !ok || w != want[len(want)-1] {
					t.Logf("Worst = %+v, want %+v", w, want[len(want)-1])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestPropertyTopTrackerHeapInvariant checks the internal heap order and
// index map after random operations.
func TestPropertyTopTrackerHeapInvariant(t *testing.T) {
	prop := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + int(kRaw)%10
		tr := NewTopTracker(k)
		for op := 0; op < 200; op++ {
			tr.Offer(list.ItemID(rng.Intn(30)), float64(rng.Intn(50)))
			for i := range tr.h {
				if tr.pos[tr.h[i].Item] != i {
					t.Logf("pos map out of sync at %d", i)
					return false
				}
				if i > 0 {
					parent := (i - 1) / 2
					// Parent must be worse than or equal to child i:
					// child must not order after parent.
					if Less(tr.h[parent], tr.h[i]) {
						t.Logf("heap violation: parent %+v orders before child %+v",
							tr.h[parent], tr.h[i])
						return false
					}
				}
			}
			if len(tr.pos) != len(tr.h) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
