// Package rank maintains the answer set Y of the paper's algorithms: the
// k seen data items whose overall scores are the highest among all items
// seen so far.
//
// Ordering is deterministic: higher overall score first, ties broken by
// ascending item ID. Determinism matters because the paper's stopping
// conditions compare "the k data items in Y" against a threshold, and
// reproducible experiments need a fixed tie-break.
package rank

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"topk/internal/list"
)

// ScoredItem is a data item with its overall score.
type ScoredItem struct {
	Item  list.ItemID
	Score float64
}

// Less orders by descending score, then ascending item ID. It is the
// single ordering used everywhere (answer sets, oracles, result slices).
func Less(a, b ScoredItem) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Item < b.Item
}

// Set is a bounded top-k collector. Add is idempotent per item: overall
// scores are fixed once computed, so re-adding a seen item is a no-op.
type Set struct {
	k    int
	h    minHeap
	seen map[list.ItemID]bool // items currently kept in the heap
}

// NewSet returns a collector that keeps the k best items.
func NewSet(k int) *Set {
	if k <= 0 {
		panic(fmt.Sprintf("rank: k must be positive, got %d", k))
	}
	return &Set{k: k, seen: make(map[list.ItemID]bool, k+1)}
}

// K returns the capacity of the set.
func (s *Set) K() int { return s.k }

// Len returns the number of items currently kept (<= k).
func (s *Set) Len() int { return len(s.h) }

// Full reports whether the set holds k items.
func (s *Set) Full() bool { return len(s.h) == s.k }

// Contains reports whether the item is currently one of the kept top-k.
func (s *Set) Contains(d list.ItemID) bool { return s.seen[d] }

// Add offers an item with its overall score. If the item is already kept,
// or the set is full and the item does not beat the current k-th entry,
// nothing changes. Add reports whether the set changed.
func (s *Set) Add(d list.ItemID, score float64) bool {
	if s.seen[d] {
		return false
	}
	it := ScoredItem{Item: d, Score: score}
	if len(s.h) < s.k {
		heap.Push(&s.h, it)
		s.seen[d] = true
		return true
	}
	// Full: replace the worst entry if the new item orders before it.
	if !Less(it, s.h[0]) {
		return false
	}
	evicted := s.h[0]
	s.h[0] = it
	heap.Fix(&s.h, 0)
	delete(s.seen, evicted.Item)
	s.seen[d] = true
	return true
}

// Threshold returns the overall score of the worst kept item (the k-th
// best seen so far). The second result is false until the set is full.
// The paper's stopping tests are "Y holds k items with score >= δ/λ",
// which is exactly Full() && Threshold() >= δ.
func (s *Set) Threshold() (float64, bool) {
	if len(s.h) < s.k {
		return math.Inf(-1), false
	}
	return s.h[0].Score, true
}

// AtLeast reports whether the set is full and every kept item has an
// overall score >= bound.
func (s *Set) AtLeast(bound float64) bool {
	t, ok := s.Threshold()
	return ok && t >= bound
}

// Slice returns the kept items ordered best-first.
func (s *Set) Slice() []ScoredItem {
	out := make([]ScoredItem, len(s.h))
	copy(out, s.h)
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	return out
}

// minHeap keeps the *worst* kept item at the root so that it can be
// replaced in O(log k). "Worst" means: orders last under Less.
type minHeap []ScoredItem

func (h minHeap) Len() int           { return len(h) }
func (h minHeap) Less(i, j int) bool { return Less(h[j], h[i]) } // reverse: worst at root
func (h minHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *minHeap) Push(x any) { *h = append(*h, x.(ScoredItem)) }

func (h *minHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
