package transport

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topk/internal/bestpos"
	"topk/internal/gen"
	"topk/internal/list"
)

func testDB(t *testing.T) *list.Database {
	t.Helper()
	return gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 60, M: 3, Seed: 5})
}

// open starts a session on a transport or fails the test.
func open(t *testing.T, tr Transport) Session {
	t.Helper()
	s, err := tr.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestUpperJSONRoundTrip: the BPA2 piggyback must survive the JSON codec
// at +Inf, which encoding/json rejects for plain float64s.
func TestUpperJSONRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.25, -3.5, math.Inf(1)} {
		raw, err := json.Marshal(Upper(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Upper
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if float64(back) != v {
			t.Errorf("%v round-tripped to %v via %s", v, back, raw)
		}
	}
	var bad Upper
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err == nil {
		t.Error("garbage accepted as Upper")
	}
}

// TestMessageScalars pins the payload accounting every backend charges:
// it must match the hand-counted scalar tallies of the simulation.
func TestMessageScalars(t *testing.T) {
	entries := []list.Entry{{Item: 1, Score: 0.5}, {Item: 2, Score: 0.25}}
	cases := []struct {
		req   int
		resp  int
		reqV  Request
		respV Response
	}{
		{0, 2, SortedReq{Pos: 1}, SortedResp{Entry: entries[0]}},
		{0, 1, LookupReq{Item: 1}, LookupResp{Score: 0.5}},
		{0, 2, LookupReq{Item: 1, WantPos: true}, LookupResp{Score: 0.5, Pos: 3, HasPos: true}},
		{0, 3, ProbeReq{}, ProbeResp{Entry: entries[0], BestScore: 0.5}},
		{0, 1, ProbeReq{}, ProbeResp{BestScore: 0.5, Exhausted: true, Empty: true}},
		{0, 2, MarkReq{Item: 1}, MarkResp{Score: 0.5, BestScore: 0.5}},
		{0, 4, TopKReq{K: 2}, TopKResp{Entries: entries}},
		{0, 4, AboveReq{T: 0.1}, AboveResp{Entries: entries}},
		{3, 3, FetchReq{Items: []list.ItemID{1, 2, 3}}, FetchResp{Scores: []float64{1, 2, 3}}},
	}
	for _, c := range cases {
		if got := c.reqV.RequestScalars(); got != c.req {
			t.Errorf("%T request scalars = %d, want %d", c.reqV, got, c.req)
		}
		if got := c.respV.ResponseScalars(); got != c.resp {
			t.Errorf("%T response scalars = %d, want %d", c.respV, got, c.resp)
		}
	}
}

// TestNewSessionID: IDs must be unique even when minted concurrently.
func TestNewSessionID(t *testing.T) {
	const n = 1000
	ids := make(chan string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); ids <- NewSessionID() }()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool, n)
	for id := range ids {
		if id == "" || seen[id] {
			t.Fatalf("duplicate or empty session ID %q", id)
		}
		seen[id] = true
	}
}

// TestOwnerHandlers drives the owner-side state machine directly inside
// one session.
func TestOwnerHandlers(t *testing.T) {
	db := testDB(t)
	o, err := NewOwner(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	const sid = "q1"
	if err := o.Open(sid, bestpos.BitArrayKind); err != nil {
		t.Fatal(err)
	}
	l := db.List(1)

	resp, err := o.Handle(sid, SortedReq{Pos: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(SortedResp).Entry; got != l.At(1) {
		t.Errorf("sorted(1) = %+v, want %+v", got, l.At(1))
	}

	item := l.At(5).Item
	resp, err = o.Handle(sid, LookupReq{Item: item, WantPos: true})
	if err != nil {
		t.Fatal(err)
	}
	if lr := resp.(LookupResp); lr.Pos != 5 || lr.Score != l.At(5).Score || !lr.HasPos {
		t.Errorf("lookup = %+v", lr)
	}

	// Probe reads the first unseen position: sorted accesses don't mark —
	// only probe and mark do — so the first probe must read position 1.
	resp, err = o.Handle(sid, ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ProbeResp); pr.Entry != l.At(1) || float64(pr.BestScore) != l.At(1).Score || pr.Empty {
		t.Errorf("probe = %+v", pr)
	}

	// Marking position 3 leaves 2 unseen: best stays 1, next probe is 2.
	resp, err = o.Handle(sid, MarkReq{Item: l.At(3).Item})
	if err != nil {
		t.Fatal(err)
	}
	if mr := resp.(MarkResp); float64(mr.BestScore) != l.At(1).Score || mr.Score != l.At(3).Score {
		t.Errorf("mark = %+v", mr)
	}
	resp, err = o.Handle(sid, ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ProbeResp); pr.Entry != l.At(2) || float64(pr.BestScore) != l.At(3).Score {
		t.Errorf("probe after mark = %+v", pr)
	}

	st, err := o.SessionStats(sid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Index != 1 || st.N != db.N() || st.M != db.M() {
		t.Errorf("stats = %+v", st)
	}
	if st.Accesses.Sorted != 1 || st.Accesses.Random != 2 || st.Accesses.Direct != 2 {
		t.Errorf("access tally = %v", st.Accesses)
	}
	if st.Best != 3 {
		t.Errorf("best = %d, want 3", st.Best)
	}
	if st.MinScore != l.At(db.N()).Score {
		t.Errorf("min score = %v", st.MinScore)
	}

	// Re-opening the same session ID replaces its state (retried opens
	// are idempotent).
	if err := o.Open(sid, bestpos.BitArrayKind); err != nil {
		t.Fatal(err)
	}
	st, err = o.SessionStats(sid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Total() != 0 || st.Best != 0 || st.Depth != 0 {
		t.Errorf("stats after re-open = %+v", st)
	}

	// Malformed requests error instead of panicking.
	for _, req := range []Request{
		SortedReq{Pos: 0}, SortedReq{Pos: db.N() + 1},
		LookupReq{Item: -1}, LookupReq{Item: list.ItemID(db.N())},
		MarkReq{Item: -2}, TopKReq{K: 0},
		FetchReq{Items: []list.ItemID{0, list.ItemID(db.N())}},
	} {
		if _, err := o.Handle(sid, req); err == nil {
			t.Errorf("%#v accepted", req)
		}
	}

	// Unknown and closed sessions are rejected with ErrUnknownSession.
	if _, err := o.Handle("nope", ProbeReq{}); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("unknown session: %v", err)
	}
	o.CloseSession(sid)
	if _, err := o.Handle(sid, ProbeReq{}); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("closed session: %v", err)
	}
	if o.Sessions() != 0 {
		t.Errorf("%d sessions left open", o.Sessions())
	}
	if err := o.Open("", bestpos.BitArrayKind); err == nil {
		t.Error("empty session ID accepted")
	}
}

// TestOwnerSessionIsolation: two sessions on one owner must not share
// protocol state — the redesign's whole point.
func TestOwnerSessionIsolation(t *testing.T) {
	db := testDB(t)
	o, err := NewOwner(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, sid := range []string{"a", "b"} {
		if err := o.Open(sid, bestpos.BitArrayKind); err != nil {
			t.Fatal(err)
		}
	}
	l := db.List(0)
	// Session a probes twice; session b must still see position 1 first.
	for i := 1; i <= 2; i++ {
		resp, err := o.Handle("a", ProbeReq{})
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.(ProbeResp).Entry; got != l.At(i) {
			t.Fatalf("a probe %d = %+v", i, got)
		}
	}
	resp, err := o.Handle("b", ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(ProbeResp).Entry; got != l.At(1) {
		t.Errorf("b's first probe = %+v, want position 1: sessions share state", got)
	}
	sa, _ := o.SessionStats("a")
	sb, _ := o.SessionStats("b")
	if sa.Accesses.Direct != 2 || sb.Accesses.Direct != 1 {
		t.Errorf("access tallies bleed across sessions: a=%v b=%v", sa.Accesses, sb.Accesses)
	}
}

// TestOwnerProbeExhaustion: probing past the end answers Empty with the
// piggyback instead of failing, and TopK/Above maintain the scan depth.
func TestOwnerProbeExhaustion(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 3, M: 2, Seed: 1})
	o, err := NewOwner(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	const sid = "s"
	if err := o.Open(sid, bestpos.BitArrayKind); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, err := o.Handle(sid, ProbeReq{})
		if err != nil {
			t.Fatal(err)
		}
		pr := resp.(ProbeResp)
		if pr.Empty {
			t.Fatalf("probe %d empty", i)
		}
		if i == 2 && !pr.Exhausted {
			t.Error("last probe not exhausted")
		}
	}
	resp, err := o.Handle(sid, ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ProbeResp); !pr.Empty || !pr.Exhausted || pr.ResponseScalars() != 1 {
		t.Errorf("over-probe = %+v", pr)
	}
}

// TestLoopbackBasics: dimensions, call order, owner validation, session
// lifecycle.
func TestLoopbackBasics(t *testing.T) {
	db := testDB(t)
	lb, err := NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	if lb.M() != db.M() || lb.N() != db.N() {
		t.Fatalf("dims %d/%d", lb.M(), lb.N())
	}
	s := open(t, lb)
	ctx := context.Background()
	if _, err := s.Do(ctx, 5, ProbeReq{}); err == nil {
		t.Error("bad owner accepted")
	}
	if _, err := s.Stats(ctx, -1); err == nil {
		t.Error("bad stats owner accepted")
	}
	resps, err := s.DoAll(ctx, []Call{
		{Owner: 0, Req: SortedReq{Pos: 1}},
		{Owner: 0, Req: SortedReq{Pos: 2}},
		{Owner: 2, Req: SortedReq{Pos: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resps[1].(SortedResp).Entry; got != db.List(0).At(2) {
		t.Errorf("call order broken: %+v", got)
	}
	if s.Elapsed() != 0 {
		t.Errorf("loopback elapsed %v", s.Elapsed())
	}
	st, err := s.Stats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Sorted != 2 {
		t.Errorf("owner 0 tally %v", st.Accesses)
	}
	// A canceled ctx aborts before the owner is touched.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := s.Do(canceled, 0, ProbeReq{}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Do: %v", err)
	}
	// Closing the session releases the owner state; its ID stops working.
	sid := s.ID()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := lb.owners[0].Handle(sid, ProbeReq{}); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("closed loopback session still handled: %v", err)
	}
}

// TestConcurrentClockMaxNotSum: the per-session virtual clock is the
// concurrent backend's contract — a batch costs its slowest owner's
// serialized exchanges, a lone exchange costs one round-trip, and
// per-owner order within a batch is submission order.
func TestConcurrentClockMaxNotSum(t *testing.T) {
	db := testDB(t)
	rtt := 10 * time.Millisecond
	cc, err := NewConcurrent(db, ConstantLatency(rtt))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	s := open(t, cc)
	ctx := context.Background()

	// One exchange per owner: one RTT, not three.
	if _, err := s.DoAll(ctx, []Call{
		{Owner: 0, Req: SortedReq{Pos: 1}},
		{Owner: 1, Req: SortedReq{Pos: 1}},
		{Owner: 2, Req: SortedReq{Pos: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Elapsed(); got != rtt {
		t.Errorf("balanced batch cost %v, want %v", got, rtt)
	}

	// Skewed batch: owner 0 serves three exchanges, the others one.
	if _, err := s.DoAll(ctx, []Call{
		{Owner: 0, Req: SortedReq{Pos: 2}},
		{Owner: 0, Req: SortedReq{Pos: 3}},
		{Owner: 0, Req: SortedReq{Pos: 4}},
		{Owner: 1, Req: SortedReq{Pos: 2}},
		{Owner: 2, Req: SortedReq{Pos: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := s.Elapsed(); got != rtt+3*rtt {
		t.Errorf("skewed batch: clock %v, want %v", got, rtt+3*rtt)
	}

	// A lone exchange adds one RTT.
	if _, err := s.Do(ctx, 1, SortedReq{Pos: 3}); err != nil {
		t.Fatal(err)
	}
	if got := s.Elapsed(); got != 5*rtt {
		t.Errorf("after Do: clock %v, want %v", got, 5*rtt)
	}

	// A second session starts its own clock at zero.
	s2 := open(t, cc)
	if got := s2.Elapsed(); got != 0 {
		t.Errorf("fresh session clock %v", got)
	}
}

// TestConcurrentPerOwnerOrder: a batch's calls to one owner must reach
// it in submission order — BPA2's owner-side tracker depends on it.
func TestConcurrentPerOwnerOrder(t *testing.T) {
	db := testDB(t)
	cc, err := NewConcurrent(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	s := open(t, cc)
	// Probes to the same owner must come back in position order 1,2,3...
	calls := make([]Call, 6)
	for i := range calls {
		calls[i] = Call{Owner: 1, Req: ProbeReq{}}
	}
	resps, err := s.DoAll(context.Background(), calls)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if got := resp.(ProbeResp).Entry; got != db.List(1).At(i+1) {
			t.Fatalf("probe %d returned %+v, want position %d", i, got, i+1)
		}
	}
}

// TestConcurrentParallelism: a balanced batch must actually overlap the
// owners — with one goroutine per owner, three slow handlers finish in
// roughly one handler's real time. Guarded generously for CI noise.
func TestConcurrentParallelism(t *testing.T) {
	db := testDB(t)
	cc, err := NewConcurrent(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	var mu sync.Mutex
	inFlight, peak := 0, 0
	slow := func(int, Request, Response) time.Duration {
		mu.Lock()
		inFlight++
		if inFlight > peak {
			peak = inFlight
		}
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
		return 0
	}
	cc.lat = slow
	s := open(t, cc)
	if _, err := s.DoAll(context.Background(), []Call{
		{Owner: 0, Req: SortedReq{Pos: 1}},
		{Owner: 1, Req: SortedReq{Pos: 1}},
		{Owner: 2, Req: SortedReq{Pos: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Errorf("peak concurrency %d: owners did not overlap", peak)
	}
}

// TestConcurrentSessionsIndependent: two sessions sharing the owner
// goroutines must see independent protocol state.
func TestConcurrentSessionsIndependent(t *testing.T) {
	db := testDB(t)
	cc, err := NewConcurrent(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	a, b := open(t, cc), open(t, cc)
	ctx := context.Background()
	if _, err := a.Do(ctx, 0, ProbeReq{}); err != nil {
		t.Fatal(err)
	}
	resp, err := b.Do(ctx, 0, ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(ProbeResp).Entry; got != db.List(0).At(1) {
		t.Errorf("session b's first probe = %+v, want position 1", got)
	}
}

// TestConcurrentCancelNoLeak: canceling mid-batch returns ctx.Err() and
// leaves no goroutine behind — feeders bail out, in-flight replies land
// in buffered channels, and the owner goroutines keep serving other
// sessions.
func TestConcurrentCancelNoLeak(t *testing.T) {
	db := testDB(t)
	cc, err := NewConcurrent(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()
	s := open(t, cc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.DoAll(ctx, []Call{
		{Owner: 0, Req: SortedReq{Pos: 1}},
		{Owner: 1, Req: SortedReq{Pos: 1}},
		{Owner: 2, Req: SortedReq{Pos: 1}},
	}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled DoAll: %v", err)
	}
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 1}); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Do: %v", err)
	}
	// The backend must stay usable for live contexts.
	if _, err := s.Do(context.Background(), 0, SortedReq{Pos: 1}); err != nil {
		t.Errorf("Do after canceled batch: %v", err)
	}
	s.Close()
	waitGoroutines(t, base)
	cc.Close()
}

// waitGoroutines waits for the goroutine count to settle back to at most
// base, tolerating scheduler lag.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d, want <= %d", runtime.NumGoroutine(), base)
}

// TestConcurrentClosed: sessions and exchanges after Close fail cleanly.
func TestConcurrentClosed(t *testing.T) {
	cc, err := NewConcurrent(testDB(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := open(t, cc)
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cc.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	ctx := context.Background()
	if _, err := s.Do(ctx, 0, ProbeReq{}); err == nil {
		t.Error("Do after Close succeeded")
	}
	if _, err := s.DoAll(ctx, []Call{{Owner: 0, Req: ProbeReq{}}}); err == nil {
		t.Error("DoAll after Close succeeded")
	}
	if _, err := cc.Open(ctx, bestpos.BitArrayKind); err == nil {
		t.Error("Open after Close succeeded")
	}
}

// TestLatencyModels exercises the stock models.
func TestLatencyModels(t *testing.T) {
	req, resp := FetchReq{Items: []list.ItemID{1, 2}}, FetchResp{Scores: []float64{1, 2}}
	if got := ConstantLatency(time.Second)(1, req, resp); got != time.Second {
		t.Errorf("constant = %v", got)
	}
	po := PerOwnerLatency([]time.Duration{time.Millisecond, time.Minute})
	if got := po(1, req, resp); got != time.Minute {
		t.Errorf("per-owner = %v", got)
	}
	// 2 request scalars + 2 response scalars at 1ms each over a 10ms link.
	if got := LinkLatency(10*time.Millisecond, time.Millisecond)(0, req, resp); got != 14*time.Millisecond {
		t.Errorf("link = %v", got)
	}
}

// startHTTPOwners serves every list of db over httptest.
func startHTTPOwners(t *testing.T, db *list.Database) ([]string, []*Server) {
	t.Helper()
	urls := make([]string, db.M())
	servers := make([]*Server, db.M())
	for i := range urls {
		srv, err := NewServer(db, i)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		servers[i] = srv
	}
	return urls, servers
}

// TestHTTPRoundTrip: every message kind survives the wire against a real
// handler stack, and the session control plane works.
func TestHTTPRoundTrip(t *testing.T) {
	db := testDB(t)
	urls, servers := startHTTPOwners(t, db)
	hc, err := DialOwners(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	if hc.M() != db.M() || hc.N() != db.N() {
		t.Fatalf("dims %d/%d", hc.M(), hc.N())
	}
	s := open(t, hc)
	ctx := context.Background()

	l := db.List(0)
	resp, err := s.Do(ctx, 0, SortedReq{Pos: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(SortedResp).Entry; got != l.At(2) {
		t.Errorf("sorted over HTTP = %+v, want %+v", got, l.At(2))
	}
	resp, err = s.Do(ctx, 0, LookupReq{Item: l.At(4).Item, WantPos: true})
	if err != nil {
		t.Fatal(err)
	}
	if lr := resp.(LookupResp); lr.Pos != 4 || lr.Score != l.At(4).Score {
		t.Errorf("lookup over HTTP = %+v", lr)
	}
	// Mark before any probe: the piggyback is +Inf and must survive JSON.
	resp, err = s.Do(ctx, 1, MarkReq{Item: db.List(1).At(2).Item})
	if err != nil {
		t.Fatal(err)
	}
	if mr := resp.(MarkResp); !math.IsInf(float64(mr.BestScore), 1) {
		t.Errorf("mark piggyback = %+v, want +Inf", mr)
	}
	resp, err = s.Do(ctx, 1, ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ProbeResp); pr.Entry != db.List(1).At(1) {
		t.Errorf("probe over HTTP = %+v", pr)
	}
	resp, err = s.Do(ctx, 2, TopKReq{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr := resp.(TopKResp); len(tr.Entries) != 3 || tr.Entries[0] != db.List(2).At(1) {
		t.Errorf("topk over HTTP = %+v", tr)
	}
	resp, err = s.Do(ctx, 2, AboveReq{T: db.List(2).At(10).Score})
	if err != nil {
		t.Fatal(err)
	}
	if ar := resp.(AboveResp); len(ar.Entries) == 0 {
		t.Error("above over HTTP returned nothing")
	}
	items := []list.ItemID{l.At(1).Item, l.At(2).Item}
	resp, err = s.Do(ctx, 0, FetchReq{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if fr := resp.(FetchResp); len(fr.Scores) != 2 || fr.Scores[0] != l.At(1).Score {
		t.Errorf("fetch over HTTP = %+v", fr)
	}

	st, err := s.Stats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Total() == 0 {
		t.Error("stats lost the access tally")
	}
	if s.Elapsed() <= 0 {
		t.Error("no elapsed time recorded")
	}

	// Closing the session releases the owner state; its messages 404.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if servers[0].Owner().Sessions() != 0 {
		t.Errorf("owner holds %d sessions after close", servers[0].Owner().Sessions())
	}
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 1}); err == nil || !strings.Contains(err.Error(), "unknown session") {
		t.Errorf("closed session still answered: %v", err)
	}

	// Remote owner errors surface as client errors with the owner index.
	s2 := open(t, hc)
	if _, err := s2.Do(ctx, 0, SortedReq{Pos: 10_000}); err == nil || !strings.Contains(err.Error(), "owner 0") {
		t.Errorf("bad position over HTTP: %v", err)
	}
	if _, err := s2.Do(ctx, 9, ProbeReq{}); err == nil {
		t.Error("bad owner accepted")
	}
}

// TestHTTPConcurrentSessions: N sessions over the same owners, driven
// concurrently, must behave like N private clusters.
func TestHTTPConcurrentSessions(t *testing.T) {
	db := testDB(t)
	urls, _ := startHTTPOwners(t, db)
	hc, err := DialOwners(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			s, err := hc.Open(ctx, bestpos.BitArrayKind)
			if err != nil {
				errs[w] = err
				return
			}
			defer s.Close()
			// Each session probes its own private cursor: every probe i
			// must return position i+1 whatever the other sessions do.
			for i := 0; i < 5; i++ {
				resp, err := s.Do(ctx, 0, ProbeReq{})
				if err != nil {
					errs[w] = err
					return
				}
				if got := resp.(ProbeResp).Entry; got != db.List(0).At(i+1) {
					errs[w] = fmt.Errorf("session state interleaved: probe %d returned %+v", i, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", w, err)
		}
	}
}

// TestHTTPRetryTransient: a single 500 from an owner must be absorbed by
// the client's one retry; a persistent failure must surface the owner
// index.
func TestHTTPRetryTransient(t *testing.T) {
	// A one-list cluster needs a one-list database to agree on M.
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 60, M: 1, Seed: 5})
	srvOne, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fail atomic.Int32
	tsOne := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() > 0 && strings.HasPrefix(r.URL.Path, "/rpc/") {
			fail.Add(-1)
			http.Error(w, `{"error":"synthetic owner crash"}`, http.StatusInternalServerError)
			return
		}
		srvOne.Handler().ServeHTTP(w, r)
	}))
	defer tsOne.Close()
	hc, err := DialOwners([]string{tsOne.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s := open(t, hc)
	ctx := context.Background()

	// One failure: absorbed by the retry.
	fail.Store(1)
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 1}); err != nil {
		t.Errorf("single 500 not retried: %v", err)
	}
	// Two consecutive failures: the single retry is spent, the error
	// surfaces and names the owner.
	fail.Store(2)
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 2}); err == nil || !strings.Contains(err.Error(), "owner 0") {
		t.Errorf("persistent 500: %v", err)
	}
	fail.Store(0)
	// 4xx responses are the caller's fault and must NOT be retried.
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 10_000}); err == nil {
		t.Error("bad position accepted")
	}

	// Cursor-advancing exchanges must NOT be retried: the client cannot
	// know whether the owner executed the lost request, and a replayed
	// probe would silently skip a list entry. One transient failure on a
	// probe therefore surfaces instead of being absorbed.
	fail.Store(1)
	if _, err := s.Do(ctx, 0, ProbeReq{}); err == nil || !strings.Contains(err.Error(), "owner 0") {
		t.Errorf("probe after transient failure: %v (must fail, not retry)", err)
	}
	fail.Store(0)
	// The failed attempt never reached the owner, so the session's
	// cursor is intact: the next probe reads position 1.
	resp, err := s.Do(ctx, 0, ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(ProbeResp).Entry; got != one.List(0).At(1) {
		t.Errorf("probe after failed probe = %+v, want position 1", got)
	}
}

// TestRequestReplayability pins which message kinds the HTTP client may
// retry: everything except the cursor-advancing probe and above.
func TestRequestReplayability(t *testing.T) {
	replayable := map[Kind]bool{
		KindSorted: true, KindLookup: true, KindMark: true,
		KindTopK: true, KindFetch: true,
		KindProbe: false, KindAbove: false,
	}
	for _, req := range []Request{
		SortedReq{}, LookupReq{}, ProbeReq{}, MarkReq{}, TopKReq{}, AboveReq{}, FetchReq{},
	} {
		if got := req.Replayable(); got != replayable[req.Kind()] {
			t.Errorf("%s replayable = %v, want %v", req.Kind(), got, replayable[req.Kind()])
		}
	}
}

// TestHTTPCancel: a canceled context aborts an HTTP exchange promptly
// with ctx.Err() even while the owner hangs.
func TestHTTPCancel(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 60, M: 1, Seed: 5})
	srv, err := NewServer(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/rpc/") {
			<-release
		}
		srv.Handler().ServeHTTP(w, r)
	})
	ts := httptest.NewServer(slow)
	defer ts.Close()
	defer close(release)
	hc, err := DialOwners([]string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s := open(t, hc)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = s.Do(ctx, 0, SortedReq{Pos: 1})
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("hung exchange: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancellation took %v", d)
	}
}

// TestHTTPResetDeprecated: the pre-session /reset endpoint stays a 200
// no-op — it must not disturb any live session.
func TestHTTPResetDeprecated(t *testing.T) {
	db := testDB(t)
	urls, servers := startHTTPOwners(t, db)
	if err := servers[0].Owner().Open("keep", bestpos.BitArrayKind); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(urls[0]+"/reset", "application/json", strings.NewReader(`{"tracker":0}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/reset status %d", resp.StatusCode)
	}
	if servers[0].Owner().Sessions() != 1 {
		t.Errorf("/reset disturbed sessions: %d left", servers[0].Owner().Sessions())
	}
}

// TestDialValidation: misconfigured clusters are rejected at dial time.
func TestDialValidation(t *testing.T) {
	db := testDB(t)
	urls, _ := startHTTPOwners(t, db)

	if _, err := DialOwners(nil, nil); err == nil {
		t.Error("empty cluster accepted")
	}
	// Owners out of order: URL position must match list index.
	if _, err := DialOwners([]string{urls[1], urls[0], urls[2]}, nil); err == nil ||
		!strings.Contains(err.Error(), "order") {
		t.Errorf("shuffled owners accepted: %v", err)
	}
	// Partial cluster: owner reports a 3-list database, cluster has 2.
	if _, err := DialOwners(urls[:2], nil); err == nil {
		t.Error("partial cluster accepted")
	}
	// Unreachable owner (the single retry must not mask it).
	if _, err := DialOwners([]string{"http://127.0.0.1:1"}, nil); err == nil {
		t.Error("unreachable owner accepted")
	}
	// Mismatched list lengths across owners.
	other := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 10, M: 3, Seed: 5})
	srv, err := NewServer(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := DialOwners([]string{urls[0], urls[1], ts.URL}, nil); err == nil {
		t.Error("mismatched list length accepted")
	}
}

// TestNormalizeOwnerURL: bare host:port grows a scheme, URLs pass through.
func TestNormalizeOwnerURL(t *testing.T) {
	cases := map[string]string{
		"localhost:9001":         "http://localhost:9001",
		" localhost:9001/ ":      "http://localhost:9001",
		"http://a.example":       "http://a.example",
		"https://b.example:8443": "https://b.example:8443",
	}
	for in, want := range cases {
		if got := NormalizeOwnerURL(in); got != want {
			t.Errorf("NormalizeOwnerURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestOwnerHandleBatch: a batch executes its inner requests in order,
// atomically, with exactly the owner-side effects of the messages sent
// one by one — and an inner failure aborts with the failing index while
// the prefix's work stays done.
func TestOwnerHandleBatch(t *testing.T) {
	db := testDB(t)
	o, err := NewOwner(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	const sid = "b"
	if err := o.Open(sid, bestpos.BitArrayKind); err != nil {
		t.Fatal(err)
	}
	l := db.List(0)
	resp, err := o.Handle(sid, BatchReq{Reqs: []Request{
		ProbeReq{}, // reads position 1
		ProbeReq{}, // order matters: must read position 2, not 1 again
		LookupReq{Item: l.At(5).Item, WantPos: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	br := resp.(BatchResp)
	if len(br.Resps) != 3 {
		t.Fatalf("batch answered %d of 3", len(br.Resps))
	}
	if got := br.Resps[0].(ProbeResp).Entry; got != l.At(1) {
		t.Errorf("batch probe 1 = %+v", got)
	}
	if got := br.Resps[1].(ProbeResp).Entry; got != l.At(2) {
		t.Errorf("batch probe 2 = %+v, want position 2", got)
	}
	if got := br.Resps[2].(LookupResp); got.Pos != 5 {
		t.Errorf("batch lookup = %+v", got)
	}

	// Inner failure: the error names the index, the prefix's accesses
	// stay charged (the work was done), and the session stays usable.
	_, err = o.Handle(sid, BatchReq{Reqs: []Request{ProbeReq{}, SortedReq{Pos: -1}}})
	if err == nil || !strings.Contains(err.Error(), "batch[1]") {
		t.Errorf("failing batch: %v", err)
	}
	st, err := o.SessionStats(sid)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Direct != 3 {
		t.Errorf("direct accesses after batches = %d, want 3 (2 + aborted batch's prefix)", st.Accesses.Direct)
	}

	// Nested batches are rejected.
	if _, err := o.Handle(sid, BatchReq{Reqs: []Request{BatchReq{Reqs: []Request{ProbeReq{}}}}}); err == nil {
		t.Error("nested batch accepted")
	}
}

// TestBatchMatchesUnbatched: the same request sequence, batched and
// unbatched, must leave two sessions in identical states — coalescing is
// a wire optimization, not a semantic change.
func TestBatchMatchesUnbatched(t *testing.T) {
	db := testDB(t)
	o, err := NewOwner(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		SortedReq{Pos: 1},
		LookupReq{Item: db.List(0).At(7).Item, WantPos: true},
		ProbeReq{},
		MarkReq{Item: db.List(0).At(3).Item},
		TopKReq{K: 4},
		AboveReq{T: db.List(0).At(9).Score},
	}
	for _, sid := range []string{"one", "batched"} {
		if err := o.Open(sid, bestpos.BitArrayKind); err != nil {
			t.Fatal(err)
		}
	}
	var single []Response
	for _, req := range reqs {
		resp, err := o.Handle("one", req)
		if err != nil {
			t.Fatal(err)
		}
		single = append(single, resp)
	}
	resp, err := o.Handle("batched", BatchReq{Reqs: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(BatchResp).Resps; !reflect.DeepEqual(got, single) {
		t.Errorf("batched responses differ:\n%v\nvs unbatched\n%v", got, single)
	}
	a, _ := o.SessionStats("one")
	b, _ := o.SessionStats("batched")
	if a.Accesses != b.Accesses || a.Best != b.Best || a.Depth != b.Depth {
		t.Errorf("session state diverged: unbatched %+v vs batched %+v", a, b)
	}
}

// TestSessionTTLEviction: sessions idle past the TTL are reclaimed, the
// eviction count is exposed, and live sessions survive the sweep.
func TestSessionTTLEviction(t *testing.T) {
	db := testDB(t)
	o, err := NewOwner(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Generous TTL-to-touch ratio: the live session is touched every
	// ~10ms against a 200ms idle bound, so only a 200ms scheduler stall
	// could falsely evict it — headroom for loaded CI runners and -race.
	o.SetSessionTTL(200 * time.Millisecond)
	for _, sid := range []string{"idle", "live"} {
		if err := o.Open(sid, bestpos.BitArrayKind); err != nil {
			t.Fatal(err)
		}
	}
	// Keep "live" warm past the idle bound of "idle".
	deadline := time.Now().Add(600 * time.Millisecond)
	for time.Now().Before(deadline) {
		if _, err := o.Handle("live", SortedReq{Pos: 1}); err != nil {
			t.Fatalf("live session evicted: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := o.Handle("idle", ProbeReq{}); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("idle session survived the TTL: %v", err)
	}
	if n := o.Evictions(); n != 1 {
		t.Errorf("evictions = %d, want 1", n)
	}
	if n := o.Sessions(); n != 1 {
		t.Errorf("%d sessions left, want 1", n)
	}
	if st := o.Info(); st.Evictions != 1 || st.OpenSessions != 1 {
		t.Errorf("Info() = evictions %d, open %d", st.Evictions, st.OpenSessions)
	}
	// TTL 0 disables eviction entirely.
	o.SetSessionTTL(0)
	time.Sleep(50 * time.Millisecond)
	if _, err := o.Handle("live", SortedReq{Pos: 1}); err != nil {
		t.Errorf("eviction ran with TTL disabled: %v", err)
	}
}

// TestHTTPStatsExposesEvictions: the /stats handshake carries the
// eviction tally and codec advertisement over the wire.
func TestHTTPStatsExposesEvictions(t *testing.T) {
	db := testDB(t)
	urls, servers := startHTTPOwners(t, db)
	servers[0].Owner().SetSessionTTL(10 * time.Millisecond)
	if err := servers[0].Owner().Open("gone", bestpos.BitArrayKind); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)
	// Any open sweeps; the idle session must be reclaimed.
	if err := servers[0].Owner().Open("fresh", bestpos.BitArrayKind); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(urls[0] + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st OwnerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Evictions != 1 {
		t.Errorf("/stats evictions = %d, want 1", st.Evictions)
	}
	if st.OpenSessions != 1 {
		t.Errorf("/stats openSessions = %d, want 1", st.OpenSessions)
	}
	found := false
	for _, c := range st.Codecs {
		found = found || c == CodecBinary
	}
	if !found {
		t.Errorf("/stats codecs = %v: binary not advertised", st.Codecs)
	}
}

// TestWireNegotiation: a dial against advertising owners lands on the
// binary codec; SetWireFormat forces either codec; a non-advertising
// (old) owner downgrades the whole cluster to JSON. Answers are
// identical in all cases.
func TestWireNegotiation(t *testing.T) {
	db := testDB(t)
	urls, _ := startHTTPOwners(t, db)

	hc, err := DialOwners(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	if !hc.binaryWire() {
		t.Error("advertising cluster did not negotiate binary")
	}

	run := func(t *testing.T, hc *HTTPClient) SortedResp {
		t.Helper()
		s := open(t, hc)
		resp, err := s.Do(context.Background(), 0, SortedReq{Pos: 1})
		if err != nil {
			t.Fatal(err)
		}
		// A coalesced round over the same wire.
		batch, err := s.Do(context.Background(), 0, BatchReq{Reqs: []Request{
			SortedReq{Pos: 2}, SortedReq{Pos: 3},
		}})
		if err != nil {
			t.Fatal(err)
		}
		if got := batch.(BatchResp).Resps[1].(SortedResp).Entry; got != db.List(0).At(3) {
			t.Errorf("batched sorted over wire = %+v", got)
		}
		return resp.(SortedResp)
	}

	want := run(t, hc) // binary
	hc.SetWireFormat(WireJSON)
	if hc.binaryWire() {
		t.Error("WireJSON did not force JSON")
	}
	if got := run(t, hc); got != want {
		t.Errorf("JSON wire answered %+v, binary %+v", got, want)
	}
	hc.SetWireFormat(WireBinary)
	if got := run(t, hc); got != want {
		t.Errorf("forced binary answered %+v, want %+v", got, want)
	}

	// An owner that strips the codec advertisement (an old server)
	// downgrades negotiation to JSON, and queries still work.
	stripped := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/stats" && r.URL.Query().Get("sid") == "" {
			srv, err := NewServer(db, 0)
			if err != nil {
				http.Error(w, err.Error(), 500)
				return
			}
			st := srv.Owner().Info()
			st.Codecs = nil
			writeJSON(w, http.StatusOK, st)
			return
		}
		http.NotFound(w, r)
	}))
	defer stripped.Close()
	hc2, err := DialOwners([]string{stripped.URL, urls[1], urls[2]}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc2.Close()
	if hc2.binaryWire() {
		t.Error("cluster with a non-advertising owner negotiated binary")
	}
}

// TestBatchWithProbeNotRetried: a batch containing a cursor-advancing
// request must not be replayed after a transient failure — same contract
// as the bare message.
func TestBatchWithProbeNotRetried(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 60, M: 1, Seed: 5})
	srvOne, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fail atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() > 0 && strings.HasPrefix(r.URL.Path, "/rpc/") {
			fail.Add(-1)
			http.Error(w, `{"error":"synthetic owner crash"}`, http.StatusInternalServerError)
			return
		}
		srvOne.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	hc, err := DialOwners([]string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s := open(t, hc)
	ctx := context.Background()

	// All-replayable batch: absorbed by the retry.
	fail.Store(1)
	if _, err := s.Do(ctx, 0, BatchReq{Reqs: []Request{SortedReq{Pos: 1}, SortedReq{Pos: 2}}}); err != nil {
		t.Errorf("replayable batch not retried: %v", err)
	}
	// Batch with a probe: fails fast instead of replaying.
	fail.Store(1)
	if _, err := s.Do(ctx, 0, BatchReq{Reqs: []Request{SortedReq{Pos: 1}, ProbeReq{}}}); err == nil {
		t.Error("probe-carrying batch was retried")
	}
	fail.Store(0)
	// The failed attempt never reached the owner: the next probe still
	// reads position 1.
	resp, err := s.Do(ctx, 0, ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(ProbeResp).Entry; got != one.List(0).At(1) {
		t.Errorf("probe after failed batch = %+v, want position 1", got)
	}
}

// TestServerRejectsBadRequests: the handler maps malformed input to 4xx.
func TestServerRejectsBadRequests(t *testing.T) {
	db := testDB(t)
	srv, err := NewServer(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Owner().Open("s", bestpos.BitArrayKind); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, c := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/rpc/zzz?sid=s", "{}", http.StatusBadRequest},
		{http.MethodPost, "/rpc/sorted?sid=s", "not json", http.StatusBadRequest},
		{http.MethodPost, "/rpc/sorted?sid=s", `{"pos":0}`, http.StatusBadRequest},
		{http.MethodPost, "/rpc/sorted", `{"pos":1}`, http.StatusBadRequest},      // no sid
		{http.MethodPost, "/rpc/sorted?sid=zz", `{"pos":1}`, http.StatusNotFound}, // unknown sid
		{http.MethodGet, "/rpc/sorted?sid=s", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/session/open", `{"sid":"x","tracker":99}`, http.StatusBadRequest},
		{http.MethodPost, "/session/open", `{"tracker":0}`, http.StatusBadRequest}, // empty sid
		{http.MethodGet, "/session/open", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/session/close", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/reset", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/reset", `{"tracker":99}`, http.StatusOK}, // deprecated no-op
		{http.MethodPost, "/stats", "{}", http.StatusMethodNotAllowed},
		{http.MethodGet, "/stats?sid=zz", "", http.StatusNotFound},
	} {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}

	// NewServer validates the list index.
	if _, err := NewServer(db, 7); err == nil {
		t.Error("bad list index accepted")
	}
	if _, err := NewServer(nil, 0); err == nil {
		t.Error("nil database accepted")
	}
}
