package transport

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"topk/internal/bestpos"
	"topk/internal/gen"
	"topk/internal/list"
)

func testDB(t *testing.T) *list.Database {
	t.Helper()
	return gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 60, M: 3, Seed: 5})
}

// TestUpperJSONRoundTrip: the BPA2 piggyback must survive the JSON codec
// at +Inf, which encoding/json rejects for plain float64s.
func TestUpperJSONRoundTrip(t *testing.T) {
	for _, v := range []float64{0, 1.25, -3.5, math.Inf(1)} {
		raw, err := json.Marshal(Upper(v))
		if err != nil {
			t.Fatalf("marshal %v: %v", v, err)
		}
		var back Upper
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
		if float64(back) != v {
			t.Errorf("%v round-tripped to %v via %s", v, back, raw)
		}
	}
	var bad Upper
	if err := json.Unmarshal([]byte(`"nope"`), &bad); err == nil {
		t.Error("garbage accepted as Upper")
	}
}

// TestMessageScalars pins the payload accounting every backend charges:
// it must match the hand-counted scalar tallies of the simulation.
func TestMessageScalars(t *testing.T) {
	entries := []list.Entry{{Item: 1, Score: 0.5}, {Item: 2, Score: 0.25}}
	cases := []struct {
		req   int
		resp  int
		reqV  Request
		respV Response
	}{
		{0, 2, SortedReq{Pos: 1}, SortedResp{Entry: entries[0]}},
		{0, 1, LookupReq{Item: 1}, LookupResp{Score: 0.5}},
		{0, 2, LookupReq{Item: 1, WantPos: true}, LookupResp{Score: 0.5, Pos: 3, HasPos: true}},
		{0, 3, ProbeReq{}, ProbeResp{Entry: entries[0], BestScore: 0.5}},
		{0, 1, ProbeReq{}, ProbeResp{BestScore: 0.5, Exhausted: true, Empty: true}},
		{0, 2, MarkReq{Item: 1}, MarkResp{Score: 0.5, BestScore: 0.5}},
		{0, 4, TopKReq{K: 2}, TopKResp{Entries: entries}},
		{0, 4, AboveReq{T: 0.1}, AboveResp{Entries: entries}},
		{3, 3, FetchReq{Items: []list.ItemID{1, 2, 3}}, FetchResp{Scores: []float64{1, 2, 3}}},
	}
	for _, c := range cases {
		if got := c.reqV.RequestScalars(); got != c.req {
			t.Errorf("%T request scalars = %d, want %d", c.reqV, got, c.req)
		}
		if got := c.respV.ResponseScalars(); got != c.resp {
			t.Errorf("%T response scalars = %d, want %d", c.respV, got, c.resp)
		}
	}
}

// TestOwnerHandlers drives the owner-side state machine directly.
func TestOwnerHandlers(t *testing.T) {
	db := testDB(t)
	o, err := NewOwner(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := db.List(1)

	resp, err := o.Handle(SortedReq{Pos: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(SortedResp).Entry; got != l.At(1) {
		t.Errorf("sorted(1) = %+v, want %+v", got, l.At(1))
	}

	item := l.At(5).Item
	resp, err = o.Handle(LookupReq{Item: item, WantPos: true})
	if err != nil {
		t.Fatal(err)
	}
	if lr := resp.(LookupResp); lr.Pos != 5 || lr.Score != l.At(5).Score || !lr.HasPos {
		t.Errorf("lookup = %+v", lr)
	}

	// Probe reads the first unseen position: 2 and 3 are next (1 was
	// read under sorted access... but sorted accesses don't mark — only
	// probe and mark do). First probe must read position 1.
	resp, err = o.Handle(ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ProbeResp); pr.Entry != l.At(1) || float64(pr.BestScore) != l.At(1).Score || pr.Empty {
		t.Errorf("probe = %+v", pr)
	}

	// Marking position 3 leaves 2 unseen: best stays 1, next probe is 2.
	resp, err = o.Handle(MarkReq{Item: l.At(3).Item})
	if err != nil {
		t.Fatal(err)
	}
	if mr := resp.(MarkResp); float64(mr.BestScore) != l.At(1).Score || mr.Score != l.At(3).Score {
		t.Errorf("mark = %+v", mr)
	}
	resp, err = o.Handle(ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ProbeResp); pr.Entry != l.At(2) || float64(pr.BestScore) != l.At(3).Score {
		t.Errorf("probe after mark = %+v", pr)
	}

	st := o.Stats()
	if st.Index != 1 || st.N != db.N() || st.M != db.M() {
		t.Errorf("stats = %+v", st)
	}
	if st.Accesses.Sorted != 1 || st.Accesses.Random != 2 || st.Accesses.Direct != 2 {
		t.Errorf("access tally = %v", st.Accesses)
	}
	if st.Best != 3 {
		t.Errorf("best = %d, want 3", st.Best)
	}
	if st.MinScore != l.At(db.N()).Score {
		t.Errorf("min score = %v", st.MinScore)
	}

	// Reset wipes the session.
	o.Reset(bestpos.BitArrayKind)
	st = o.Stats()
	if st.Accesses.Total() != 0 || st.Best != 0 || st.Depth != 0 {
		t.Errorf("stats after reset = %+v", st)
	}

	// Malformed requests error instead of panicking.
	for _, req := range []Request{
		SortedReq{Pos: 0}, SortedReq{Pos: db.N() + 1},
		LookupReq{Item: -1}, LookupReq{Item: list.ItemID(db.N())},
		MarkReq{Item: -2}, TopKReq{K: 0},
		FetchReq{Items: []list.ItemID{0, list.ItemID(db.N())}},
	} {
		if _, err := o.Handle(req); err == nil {
			t.Errorf("%#v accepted", req)
		}
	}
}

// TestOwnerProbeExhaustion: probing past the end answers Empty with the
// piggyback instead of failing, and TopK/Above maintain the scan depth.
func TestOwnerProbeExhaustion(t *testing.T) {
	db := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 3, M: 2, Seed: 1})
	o, err := NewOwner(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, err := o.Handle(ProbeReq{})
		if err != nil {
			t.Fatal(err)
		}
		pr := resp.(ProbeResp)
		if pr.Empty {
			t.Fatalf("probe %d empty", i)
		}
		if i == 2 && !pr.Exhausted {
			t.Error("last probe not exhausted")
		}
	}
	resp, err := o.Handle(ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ProbeResp); !pr.Empty || !pr.Exhausted || pr.ResponseScalars() != 1 {
		t.Errorf("over-probe = %+v", pr)
	}
}

// TestLoopbackBasics: dimensions, call order, owner validation.
func TestLoopbackBasics(t *testing.T) {
	db := testDB(t)
	lb, err := NewLoopback(db)
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Close()
	if lb.M() != db.M() || lb.N() != db.N() {
		t.Fatalf("dims %d/%d", lb.M(), lb.N())
	}
	if _, err := lb.Do(5, ProbeReq{}); err == nil {
		t.Error("bad owner accepted")
	}
	if _, err := lb.Stats(-1); err == nil {
		t.Error("bad stats owner accepted")
	}
	resps, err := lb.DoAll([]Call{
		{Owner: 0, Req: SortedReq{Pos: 1}},
		{Owner: 0, Req: SortedReq{Pos: 2}},
		{Owner: 2, Req: SortedReq{Pos: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := resps[1].(SortedResp).Entry; got != db.List(0).At(2) {
		t.Errorf("call order broken: %+v", got)
	}
	if lb.Elapsed() != 0 {
		t.Errorf("loopback elapsed %v", lb.Elapsed())
	}
	st, err := lb.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Sorted != 2 {
		t.Errorf("owner 0 tally %v", st.Accesses)
	}
}

// TestConcurrentClockMaxNotSum: the virtual clock is the concurrent
// backend's contract — a batch costs its slowest owner's serialized
// exchanges, a lone exchange costs one round-trip, and per-owner order
// within a batch is submission order.
func TestConcurrentClockMaxNotSum(t *testing.T) {
	db := testDB(t)
	rtt := 10 * time.Millisecond
	cc, err := NewConcurrent(db, ConstantLatency(rtt))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// One exchange per owner: one RTT, not three.
	if _, err := cc.DoAll([]Call{
		{Owner: 0, Req: SortedReq{Pos: 1}},
		{Owner: 1, Req: SortedReq{Pos: 1}},
		{Owner: 2, Req: SortedReq{Pos: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := cc.Elapsed(); got != rtt {
		t.Errorf("balanced batch cost %v, want %v", got, rtt)
	}

	// Skewed batch: owner 0 serves three exchanges, the others one.
	if _, err := cc.DoAll([]Call{
		{Owner: 0, Req: SortedReq{Pos: 2}},
		{Owner: 0, Req: SortedReq{Pos: 3}},
		{Owner: 0, Req: SortedReq{Pos: 4}},
		{Owner: 1, Req: SortedReq{Pos: 2}},
		{Owner: 2, Req: SortedReq{Pos: 2}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := cc.Elapsed(); got != rtt+3*rtt {
		t.Errorf("skewed batch: clock %v, want %v", got, rtt+3*rtt)
	}

	// A lone exchange adds one RTT.
	if _, err := cc.Do(1, SortedReq{Pos: 3}); err != nil {
		t.Fatal(err)
	}
	if got := cc.Elapsed(); got != 5*rtt {
		t.Errorf("after Do: clock %v, want %v", got, 5*rtt)
	}
}

// TestConcurrentPerOwnerOrder: a batch's calls to one owner must reach
// it in submission order — BPA2's owner-side tracker depends on it.
func TestConcurrentPerOwnerOrder(t *testing.T) {
	db := testDB(t)
	cc, err := NewConcurrent(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	// Probes to the same owner must come back in position order 1,2,3...
	calls := make([]Call, 6)
	for i := range calls {
		calls[i] = Call{Owner: 1, Req: ProbeReq{}}
	}
	resps, err := cc.DoAll(calls)
	if err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if got := resp.(ProbeResp).Entry; got != db.List(1).At(i+1) {
			t.Fatalf("probe %d returned %+v, want position %d", i, got, i+1)
		}
	}
}

// TestConcurrentParallelism: a balanced batch must actually overlap the
// owners — with one goroutine per owner, three slow handlers finish in
// roughly one handler's real time. Guarded generously for CI noise.
func TestConcurrentParallelism(t *testing.T) {
	db := testDB(t)
	cc, err := NewConcurrent(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	var mu sync.Mutex
	inFlight, peak := 0, 0
	slow := func(int, Request, Response) time.Duration {
		mu.Lock()
		inFlight++
		if inFlight > peak {
			peak = inFlight
		}
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
		return 0
	}
	cc.lat = slow
	if _, err := cc.DoAll([]Call{
		{Owner: 0, Req: SortedReq{Pos: 1}},
		{Owner: 1, Req: SortedReq{Pos: 1}},
		{Owner: 2, Req: SortedReq{Pos: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	if peak < 2 {
		t.Errorf("peak concurrency %d: owners did not overlap", peak)
	}
}

// TestConcurrentClosed: exchanges after Close fail cleanly.
func TestConcurrentClosed(t *testing.T) {
	cc, err := NewConcurrent(testDB(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cc.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := cc.Do(0, ProbeReq{}); err == nil {
		t.Error("Do after Close succeeded")
	}
	if _, err := cc.DoAll([]Call{{Owner: 0, Req: ProbeReq{}}}); err == nil {
		t.Error("DoAll after Close succeeded")
	}
}

// TestLatencyModels exercises the stock models.
func TestLatencyModels(t *testing.T) {
	req, resp := FetchReq{Items: []list.ItemID{1, 2}}, FetchResp{Scores: []float64{1, 2}}
	if got := ConstantLatency(time.Second)(1, req, resp); got != time.Second {
		t.Errorf("constant = %v", got)
	}
	po := PerOwnerLatency([]time.Duration{time.Millisecond, time.Minute})
	if got := po(1, req, resp); got != time.Minute {
		t.Errorf("per-owner = %v", got)
	}
	// 2 request scalars + 2 response scalars at 1ms each over a 10ms link.
	if got := LinkLatency(10*time.Millisecond, time.Millisecond)(0, req, resp); got != 14*time.Millisecond {
		t.Errorf("link = %v", got)
	}
}

// startHTTPOwners serves every list of db over httptest.
func startHTTPOwners(t *testing.T, db *list.Database) []string {
	t.Helper()
	urls := make([]string, db.M())
	for i := range urls {
		srv, err := NewServer(db, i)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	return urls
}

// TestHTTPRoundTrip: every message kind survives the wire against a real
// handler stack, and the control plane (reset, stats) works.
func TestHTTPRoundTrip(t *testing.T) {
	db := testDB(t)
	urls := startHTTPOwners(t, db)
	hc, err := Dial(urls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	if hc.M() != db.M() || hc.N() != db.N() {
		t.Fatalf("dims %d/%d", hc.M(), hc.N())
	}

	l := db.List(0)
	resp, err := hc.Do(0, SortedReq{Pos: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.(SortedResp).Entry; got != l.At(2) {
		t.Errorf("sorted over HTTP = %+v, want %+v", got, l.At(2))
	}
	resp, err = hc.Do(0, LookupReq{Item: l.At(4).Item, WantPos: true})
	if err != nil {
		t.Fatal(err)
	}
	if lr := resp.(LookupResp); lr.Pos != 4 || lr.Score != l.At(4).Score {
		t.Errorf("lookup over HTTP = %+v", lr)
	}
	// Mark before any probe: the piggyback is +Inf and must survive JSON.
	resp, err = hc.Do(1, MarkReq{Item: db.List(1).At(2).Item})
	if err != nil {
		t.Fatal(err)
	}
	if mr := resp.(MarkResp); !math.IsInf(float64(mr.BestScore), 1) {
		t.Errorf("mark piggyback = %+v, want +Inf", mr)
	}
	resp, err = hc.Do(1, ProbeReq{})
	if err != nil {
		t.Fatal(err)
	}
	if pr := resp.(ProbeResp); pr.Entry != db.List(1).At(1) {
		t.Errorf("probe over HTTP = %+v", pr)
	}
	resp, err = hc.Do(2, TopKReq{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr := resp.(TopKResp); len(tr.Entries) != 3 || tr.Entries[0] != db.List(2).At(1) {
		t.Errorf("topk over HTTP = %+v", tr)
	}
	resp, err = hc.Do(2, AboveReq{T: db.List(2).At(10).Score})
	if err != nil {
		t.Fatal(err)
	}
	if ar := resp.(AboveResp); len(ar.Entries) == 0 {
		t.Error("above over HTTP returned nothing")
	}
	items := []list.ItemID{l.At(1).Item, l.At(2).Item}
	resp, err = hc.Do(0, FetchReq{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	if fr := resp.(FetchResp); len(fr.Scores) != 2 || fr.Scores[0] != l.At(1).Score {
		t.Errorf("fetch over HTTP = %+v", fr)
	}

	st, err := hc.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Total() == 0 {
		t.Error("stats lost the access tally")
	}
	if err := hc.Reset(bestpos.BPlusTreeKind); err != nil {
		t.Fatal(err)
	}
	st, err = hc.Stats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Total() != 0 {
		t.Error("reset did not clear the tally")
	}
	if hc.Elapsed() <= 0 {
		t.Error("no elapsed time recorded")
	}

	// Remote owner errors surface as client errors.
	if _, err := hc.Do(0, SortedReq{Pos: 10_000}); err == nil {
		t.Error("bad position accepted over HTTP")
	}
	if _, err := hc.Do(9, ProbeReq{}); err == nil {
		t.Error("bad owner accepted")
	}
}

// TestDialValidation: misconfigured clusters are rejected at dial time.
func TestDialValidation(t *testing.T) {
	db := testDB(t)
	urls := startHTTPOwners(t, db)

	if _, err := Dial(nil, nil); err == nil {
		t.Error("empty cluster accepted")
	}
	// Owners out of order: URL position must match list index.
	if _, err := Dial([]string{urls[1], urls[0], urls[2]}, nil); err == nil ||
		!strings.Contains(err.Error(), "order") {
		t.Errorf("shuffled owners accepted: %v", err)
	}
	// Partial cluster: owner reports a 3-list database, cluster has 2.
	if _, err := Dial(urls[:2], nil); err == nil {
		t.Error("partial cluster accepted")
	}
	// Unreachable owner.
	if _, err := Dial([]string{"http://127.0.0.1:1"}, nil); err == nil {
		t.Error("unreachable owner accepted")
	}
	// Mismatched list lengths across owners.
	other := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 10, M: 3, Seed: 5})
	srv, err := NewServer(other, 2)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if _, err := Dial([]string{urls[0], urls[1], ts.URL}, nil); err == nil {
		t.Error("mismatched list length accepted")
	}
}

// TestNormalizeOwnerURL: bare host:port grows a scheme, URLs pass through.
func TestNormalizeOwnerURL(t *testing.T) {
	cases := map[string]string{
		"localhost:9001":         "http://localhost:9001",
		" localhost:9001/ ":      "http://localhost:9001",
		"http://a.example":       "http://a.example",
		"https://b.example:8443": "https://b.example:8443",
	}
	for in, want := range cases {
		if got := NormalizeOwnerURL(in); got != want {
			t.Errorf("NormalizeOwnerURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestServerRejectsBadRequests: the handler maps malformed input to 4xx.
func TestServerRejectsBadRequests(t *testing.T) {
	db := testDB(t)
	srv, err := NewServer(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, c := range []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/rpc/zzz", "{}", http.StatusBadRequest},
		{http.MethodPost, "/rpc/sorted", "not json", http.StatusBadRequest},
		{http.MethodPost, "/rpc/sorted", `{"pos":0}`, http.StatusBadRequest},
		{http.MethodGet, "/rpc/sorted", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/reset", `{"tracker":99}`, http.StatusBadRequest},
		{http.MethodGet, "/reset", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/stats", "{}", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}

	// NewServer validates the list index.
	if _, err := NewServer(db, 7); err == nil {
		t.Error("bad list index accepted")
	}
	if _, err := NewServer(nil, 0); err == nil {
		t.Error("nil database accepted")
	}
}
