package transport

import (
	"encoding/json"
	"fmt"
	"math"

	"topk/internal/list"
)

// Kind names a request type. It doubles as the wire tag of the HTTP
// backend: a request of kind k travels as a POST to /rpc/k.
type Kind string

const (
	KindSorted Kind = "sorted"
	KindLookup Kind = "lookup"
	KindProbe  Kind = "probe"
	KindMark   Kind = "mark"
	KindTopK   Kind = "topk"
	KindAbove  Kind = "above"
	KindFetch  Kind = "fetch"
)

// Request is one originator-to-owner message. RequestScalars is the
// number of variable-length scalar values the request carries beyond its
// fixed-size header fields — only batched requests (fetch item lists)
// carry any; single positions, item IDs and thresholds are header-sized.
//
// Replayable reports whether re-sending the request after a lost
// response returns the same answer. A replay may re-perform (and
// re-charge) the owner-side access — honest accounting for work the
// owner really did twice — but it must not change what any future
// exchange of the session observes. Probe and above are NOT replayable:
// each execution advances an owner-side cursor (the seen-position
// tracker, the scan depth), so replaying one would silently skip list
// entries and corrupt the answer. The HTTP client's transient-failure
// retry is gated on this.
type Request interface {
	Kind() Kind
	RequestScalars() int
	Replayable() bool
}

// Response is one owner-to-originator message. ResponseScalars is the
// number of scalar values (items, scores, positions) it carries; the
// protocols charge it to their payload accounting, so it must be a pure
// function of the response content — identical across backends.
type Response interface {
	ResponseScalars() int
}

// Upper is a float64 that survives JSON round-trips even at +Inf, which
// encoding/json rejects. BPA2's best-position piggyback is +Inf while an
// owner has not yet seen position 1 of its list ("no information" — the
// neutral upper bound under any monotone scoring function), so it is
// encoded as the JSON string "inf".
type Upper float64

// MarshalJSON encodes +Inf as "inf" and finite values as plain numbers.
func (u Upper) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(u), 1) {
		return []byte(`"inf"`), nil
	}
	return json.Marshal(float64(u))
}

// UnmarshalJSON accepts the "inf" string or a plain number.
func (u *Upper) UnmarshalJSON(b []byte) error {
	if string(b) == `"inf"` {
		*u = Upper(math.Inf(1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("transport: bad upper bound %s: %w", b, err)
	}
	*u = Upper(f)
	return nil
}

// SortedReq asks an owner for the entry at sorted position Pos (TA, BPA).
type SortedReq struct {
	Pos int `json:"pos"`
}

func (SortedReq) Kind() Kind          { return KindSorted }
func (SortedReq) RequestScalars() int { return 0 }

// Replayable: reading a fixed position twice returns the same entry.
func (SortedReq) Replayable() bool { return true }

// SortedResp returns the entry; the position is implied by the request.
type SortedResp struct {
	Entry list.Entry `json:"entry"`
}

// ResponseScalars: item and score.
func (SortedResp) ResponseScalars() int { return 2 }

// LookupReq asks an owner for a random-access lookup of Item. WantPos
// requests the item's position too (BPA ships positions, TA does not).
type LookupReq struct {
	Item    list.ItemID `json:"item"`
	WantPos bool        `json:"wantPos,omitempty"`
}

func (LookupReq) Kind() Kind          { return KindLookup }
func (LookupReq) RequestScalars() int { return 0 }

// Replayable: a lookup mutates nothing.
func (LookupReq) Replayable() bool { return true }

// LookupResp returns the local score, plus the position iff requested
// (HasPos mirrors the request's WantPos, so the charged payload is a
// function of the response alone).
type LookupResp struct {
	Score  float64 `json:"score"`
	Pos    int     `json:"pos,omitempty"`
	HasPos bool    `json:"hasPos,omitempty"`
}

// ResponseScalars: the score, plus the position when shipped.
func (r LookupResp) ResponseScalars() int {
	if r.HasPos {
		return 2
	}
	return 1
}

// ProbeReq asks a BPA2 owner to read its first unseen position.
type ProbeReq struct{}

func (ProbeReq) Kind() Kind          { return KindProbe }
func (ProbeReq) RequestScalars() int { return 0 }

// Replayable: NO — every probe advances the owner's seen-position
// cursor, so a replay would skip the entry the lost response carried.
func (ProbeReq) Replayable() bool { return false }

// ProbeResp returns the probed entry plus the owner's piggybacked
// best-position state.
type ProbeResp struct {
	Entry list.Entry `json:"entry"`
	// BestScore is the score at the owner's current best position
	// (+Inf before the owner has seen position 1).
	BestScore Upper `json:"bestScore"`
	// Exhausted reports that every position of the list has been seen;
	// the originator stops probing this owner.
	Exhausted bool `json:"exhausted,omitempty"`
	// Empty reports that the owner had nothing left to probe and the
	// response carries the piggyback only (defensive: the originator
	// tracks exhaustion and normally never probes an exhausted owner).
	Empty bool `json:"empty,omitempty"`
}

// ResponseScalars: item, score and best-position score — or only the
// piggyback when there was nothing to probe.
func (r ProbeResp) ResponseScalars() int {
	if r.Empty {
		return 1
	}
	return 3
}

// MarkReq asks a BPA2 owner to resolve Item and record its position in
// the owner-side tracker.
type MarkReq struct {
	Item list.ItemID `json:"item"`
}

func (MarkReq) Kind() Kind          { return KindMark }
func (MarkReq) RequestScalars() int { return 0 }

// Replayable: marking the same position twice is a tracker no-op and
// the score/piggyback answer is unchanged.
func (MarkReq) Replayable() bool { return true }

// MarkResp returns the local score plus the piggybacked best-position
// state. The item's position stays at the owner.
type MarkResp struct {
	Score     float64 `json:"score"`
	BestScore Upper   `json:"bestScore"`
	Exhausted bool    `json:"exhausted,omitempty"`
}

// ResponseScalars: score and best-position score.
func (MarkResp) ResponseScalars() int { return 2 }

// TopKReq asks an owner for its K highest entries (TPUT phase 1).
type TopKReq struct {
	K int `json:"k"`
}

func (TopKReq) Kind() Kind          { return KindTopK }
func (TopKReq) RequestScalars() int { return 0 }

// Replayable: the prefix read is position-fixed and the scan depth is
// set, not advanced (depth = K both times).
func (TopKReq) Replayable() bool { return true }

// TopKResp returns the owner's top-K entries in list order.
type TopKResp struct {
	Entries []list.Entry `json:"entries"`
}

// ResponseScalars: item and score per entry.
func (r TopKResp) ResponseScalars() int { return 2 * len(r.Entries) }

// AboveReq asks an owner for every entry below its already-sent prefix
// with score at least T (TPUT phase 2).
type AboveReq struct {
	T float64 `json:"t"`
}

func (AboveReq) Kind() Kind          { return KindAbove }
func (AboveReq) RequestScalars() int { return 0 }

// Replayable: NO — the scan continues from the depth cursor the first
// execution advanced, so a replay would return a truncated tail.
func (AboveReq) Replayable() bool { return false }

// AboveResp returns the matching entries in list order.
type AboveResp struct {
	Entries []list.Entry `json:"entries"`
}

// ResponseScalars: item and score per entry.
func (r AboveResp) ResponseScalars() int { return 2 * len(r.Entries) }

// FetchReq asks an owner for the exact local scores of Items (TPUT
// phase 3). The item batch is variable-length, so it is charged as
// request payload.
type FetchReq struct {
	Items []list.ItemID `json:"items"`
}

func (FetchReq) Kind() Kind            { return KindFetch }
func (r FetchReq) RequestScalars() int { return len(r.Items) }

// Replayable: a batch of lookups mutates nothing.
func (FetchReq) Replayable() bool { return true }

// FetchResp returns the scores in request order.
type FetchResp struct {
	Scores []float64 `json:"scores"`
}

// ResponseScalars: one score per requested item.
func (r FetchResp) ResponseScalars() int { return len(r.Scores) }
