package transport

import (
	"encoding/json"
	"fmt"
	"math"

	"topk/internal/list"
)

// Kind names a request type. It doubles as the wire tag of the HTTP
// backend: a request of kind k travels as a POST to /rpc/k.
type Kind string

const (
	KindSorted Kind = "sorted"
	KindLookup Kind = "lookup"
	KindProbe  Kind = "probe"
	KindMark   Kind = "mark"
	KindTopK   Kind = "topk"
	KindAbove  Kind = "above"
	KindFetch  Kind = "fetch"
	KindBatch  Kind = "batch"
	KindUpdate Kind = "update"
)

// Request is one originator-to-owner message. RequestScalars is the
// number of variable-length scalar values the request carries beyond its
// fixed-size header fields — only batched requests (fetch item lists)
// carry any; single positions, item IDs and thresholds are header-sized.
//
// Replayable reports whether re-sending the request after a lost
// response returns the same answer. A replay may re-perform (and
// re-charge) the owner-side access — honest accounting for work the
// owner really did twice — but it must not change what any future
// exchange of the session observes. Probe and above are NOT replayable:
// each execution advances an owner-side cursor (the seen-position
// tracker, the scan depth), so replaying one would silently skip list
// entries and corrupt the answer. The HTTP client's transient-failure
// retry is gated on this.
//
// Sessionful reports whether serving the request reads or writes
// per-session owner-side protocol state beyond the access tally: the
// seen-position tracker (probe, mark) or the scan-depth cursor (topk,
// above). Replicas of a list serve the same data but do NOT share
// session state, so sessionful traffic must stick to one replica per
// list — the replica-aware HTTP client pins it, and only stateless
// requests (sorted, lookup, fetch) may fail over between replicas
// mid-query. Note the two axes differ: mark and topk are replayable yet
// sessionful — safe to retry against the SAME replica, not safe to move.
type Request interface {
	Kind() Kind
	RequestScalars() int
	Replayable() bool
	Sessionful() bool
}

// Response is one owner-to-originator message. ResponseScalars is the
// number of scalar values (items, scores, positions) it carries; the
// protocols charge it to their payload accounting, so it must be a pure
// function of the response content — identical across backends.
type Response interface {
	ResponseScalars() int
}

// Upper is a float64 that survives JSON round-trips even at +Inf, which
// encoding/json rejects. BPA2's best-position piggyback is +Inf while an
// owner has not yet seen position 1 of its list ("no information" — the
// neutral upper bound under any monotone scoring function), so it is
// encoded as the JSON string "inf".
type Upper float64

// MarshalJSON encodes +Inf as "inf" and finite values as plain numbers.
func (u Upper) MarshalJSON() ([]byte, error) {
	if math.IsInf(float64(u), 1) {
		return []byte(`"inf"`), nil
	}
	return json.Marshal(float64(u))
}

// UnmarshalJSON accepts the "inf" string or a plain number.
func (u *Upper) UnmarshalJSON(b []byte) error {
	if string(b) == `"inf"` {
		*u = Upper(math.Inf(1))
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("transport: bad upper bound %s: %w", b, err)
	}
	*u = Upper(f)
	return nil
}

// SortedReq asks an owner for the entry at sorted position Pos (TA, BPA).
type SortedReq struct {
	Pos int `json:"pos"`
}

func (SortedReq) Kind() Kind          { return KindSorted }
func (SortedReq) RequestScalars() int { return 0 }

// Replayable: reading a fixed position twice returns the same entry.
func (SortedReq) Replayable() bool { return true }

// Sessionful: NO — a positional read touches no session cursor.
func (SortedReq) Sessionful() bool { return false }

// SortedResp returns the entry; the position is implied by the request.
type SortedResp struct {
	Entry list.Entry `json:"entry"`
}

// ResponseScalars: item and score.
func (SortedResp) ResponseScalars() int { return 2 }

// LookupReq asks an owner for a random-access lookup of Item. WantPos
// requests the item's position too (BPA ships positions, TA does not).
type LookupReq struct {
	Item    list.ItemID `json:"item"`
	WantPos bool        `json:"wantPos,omitempty"`
}

func (LookupReq) Kind() Kind          { return KindLookup }
func (LookupReq) RequestScalars() int { return 0 }

// Replayable: a lookup mutates nothing.
func (LookupReq) Replayable() bool { return true }

// Sessionful: NO — a lookup touches no session cursor.
func (LookupReq) Sessionful() bool { return false }

// LookupResp returns the local score, plus the position iff requested
// (HasPos mirrors the request's WantPos, so the charged payload is a
// function of the response alone).
type LookupResp struct {
	Score  float64 `json:"score"`
	Pos    int     `json:"pos,omitempty"`
	HasPos bool    `json:"hasPos,omitempty"`
}

// ResponseScalars: the score, plus the position when shipped.
func (r LookupResp) ResponseScalars() int {
	if r.HasPos {
		return 2
	}
	return 1
}

// ProbeReq asks a BPA2 owner to read its first unseen position.
type ProbeReq struct{}

func (ProbeReq) Kind() Kind          { return KindProbe }
func (ProbeReq) RequestScalars() int { return 0 }

// Replayable: NO — every probe advances the owner's seen-position
// cursor, so a replay would skip the entry the lost response carried.
func (ProbeReq) Replayable() bool { return false }

// Sessionful: YES — the probe cursor lives on one replica.
func (ProbeReq) Sessionful() bool { return true }

// ProbeResp returns the probed entry plus the owner's piggybacked
// best-position state.
type ProbeResp struct {
	Entry list.Entry `json:"entry"`
	// BestScore is the score at the owner's current best position
	// (+Inf before the owner has seen position 1).
	BestScore Upper `json:"bestScore"`
	// Exhausted reports that every position of the list has been seen;
	// the originator stops probing this owner.
	Exhausted bool `json:"exhausted,omitempty"`
	// Empty reports that the owner had nothing left to probe and the
	// response carries the piggyback only (defensive: the originator
	// tracks exhaustion and normally never probes an exhausted owner).
	Empty bool `json:"empty,omitempty"`
	// Pos is the position this probe marked seen (0 when Empty) — the
	// session-state delta the replicated client mirrors to a sibling
	// replica so the session survives the pinned replica's death.
	// Recovery vocabulary, not protocol payload: it is excluded from
	// ResponseScalars, so accounting stays identical across backends.
	Pos int `json:"pos,omitempty"`
}

// ResponseScalars: item, score and best-position score — or only the
// piggyback when there was nothing to probe.
func (r ProbeResp) ResponseScalars() int {
	if r.Empty {
		return 1
	}
	return 3
}

// MarkReq asks a BPA2 owner to resolve Item and record its position in
// the owner-side tracker.
type MarkReq struct {
	Item list.ItemID `json:"item"`
}

func (MarkReq) Kind() Kind          { return KindMark }
func (MarkReq) RequestScalars() int { return 0 }

// Replayable: marking the same position twice is a tracker no-op and
// the score/piggyback answer is unchanged.
func (MarkReq) Replayable() bool { return true }

// Sessionful: YES — the mark lands in one replica's tracker, which the
// session's future probes depend on.
func (MarkReq) Sessionful() bool { return true }

// MarkResp returns the local score plus the piggybacked best-position
// state. The item's position stays at the owner.
type MarkResp struct {
	Score     float64 `json:"score"`
	BestScore Upper   `json:"bestScore"`
	Exhausted bool    `json:"exhausted,omitempty"`
	// Pos is the position this mark recorded — the session-state delta
	// the replicated client mirrors to a sibling replica (see
	// ProbeResp.Pos). Excluded from ResponseScalars: the position itself
	// stays at the owner in the paper's protocol, and the mirror delta
	// must not perturb the payload accounting.
	Pos int `json:"pos,omitempty"`
}

// ResponseScalars: score and best-position score.
func (MarkResp) ResponseScalars() int { return 2 }

// TopKReq asks an owner for its K highest entries (TPUT phase 1).
type TopKReq struct {
	K int `json:"k"`
}

func (TopKReq) Kind() Kind          { return KindTopK }
func (TopKReq) RequestScalars() int { return 0 }

// Replayable: the prefix read is position-fixed and the scan depth is
// set, not advanced (depth = K both times).
func (TopKReq) Replayable() bool { return true }

// Sessionful: YES — it sets the scan depth the session's above-scan
// continues from, on one replica.
func (TopKReq) Sessionful() bool { return true }

// TopKResp returns the owner's top-K entries in list order.
type TopKResp struct {
	Entries []list.Entry `json:"entries"`
}

// ResponseScalars: item and score per entry.
func (r TopKResp) ResponseScalars() int { return 2 * len(r.Entries) }

// AboveReq asks an owner for every entry below its already-sent prefix
// with score at least T (TPUT phase 2).
type AboveReq struct {
	T float64 `json:"t"`
}

func (AboveReq) Kind() Kind          { return KindAbove }
func (AboveReq) RequestScalars() int { return 0 }

// Replayable: NO — the scan continues from the depth cursor the first
// execution advanced, so a replay would return a truncated tail.
func (AboveReq) Replayable() bool { return false }

// Sessionful: YES — the depth cursor lives on one replica.
func (AboveReq) Sessionful() bool { return true }

// AboveResp returns the matching entries in list order.
type AboveResp struct {
	Entries []list.Entry `json:"entries"`
}

// ResponseScalars: item and score per entry.
func (r AboveResp) ResponseScalars() int { return 2 * len(r.Entries) }

// FetchReq asks an owner for the exact local scores of Items (TPUT
// phase 3). The item batch is variable-length, so it is charged as
// request payload.
type FetchReq struct {
	Items []list.ItemID `json:"items"`
}

func (FetchReq) Kind() Kind            { return KindFetch }
func (r FetchReq) RequestScalars() int { return len(r.Items) }

// Replayable: a batch of lookups mutates nothing.
func (FetchReq) Replayable() bool { return true }

// Sessionful: NO — exact-score lookups touch no session cursor.
func (FetchReq) Sessionful() bool { return false }

// FetchResp returns the scores in request order.
type FetchResp struct {
	Scores []float64 `json:"scores"`
}

// ResponseScalars: one score per requested item.
func (r FetchResp) ResponseScalars() int { return len(r.Scores) }

// ScoreUpdate is one (item, delta) local-score change carried by an
// update message.
type ScoreUpdate struct {
	Item  list.ItemID `json:"item"`
	Delta float64     `json:"delta"`
}

// UpdateReq applies a batch of score updates to the owner's list — the
// live subsystem's ingestion message. Feed names the update stream and
// Seq is the feed's monotone sequence number: an owner remembers the
// highest Seq it applied per feed and acknowledges (without reapplying)
// anything at or below it, so retries and backpressure re-sends are
// idempotent by construction. The update batch is variable-length and is
// charged as request payload.
type UpdateReq struct {
	Feed    string        `json:"feed"`
	Seq     uint64        `json:"seq"`
	Updates []ScoreUpdate `json:"updates"`
}

func (UpdateReq) Kind() Kind { return KindUpdate }

// RequestScalars: item and delta per update.
func (r UpdateReq) RequestScalars() int { return 2 * len(r.Updates) }

// Replayable: the per-feed sequence number makes a re-send a no-op ack,
// never a double application.
func (UpdateReq) Replayable() bool { return true }

// Sessionful: NO — updates target the owner's list (feed-plane state
// shared by every query), not any query session's cursor. They fan out
// to every replica of a list rather than pinning to one.
func (UpdateReq) Sessionful() bool { return false }

// UpdateResp acknowledges an update batch. Version is the owner's
// per-list version after the batch (piggybacked so coordinators can
// detect staleness without a second exchange); Applied is false when the
// batch was a duplicate the sequence number suppressed. Crossings names
// the standing queries whose installed filter thresholds the batch
// crossed — the Mäcker-style notification signal: an empty Crossings
// means the owner certifies the batch cannot have changed those queries'
// global top-k.
type UpdateResp struct {
	Applied   bool     `json:"applied,omitempty"`
	Version   uint64   `json:"version"`
	Crossings []string `json:"crossings,omitempty"`
}

// ResponseScalars: the version scalar plus one crossing flag per
// notified query.
func (r UpdateResp) ResponseScalars() int { return 1 + len(r.Crossings) }

// BatchReq coalesces several independent logical requests for one owner
// into a single wire exchange — the round-coalescing that collapses a
// protocol round's per-owner fan-out (TA/BPA's m-1 lookups per owner)
// into one POST per owner on the HTTP backend, and into one priced
// exchange under the Concurrent backend's latency model. The owner
// executes the inner requests in order, atomically against one session
// (the session mutex is held across the whole batch), and answers with a
// BatchResp whose responses are in request order.
//
// A batch is a wire vehicle, not a protocol message: traffic accounting
// (Net.Messages, Net.Payload, Net.PerOwner) is charged from the logical
// inner messages by the originator, so coalescing cannot perturb the
// paper's cost metrics. Batches must not nest.
type BatchReq struct {
	Reqs []Request
}

func (BatchReq) Kind() Kind { return KindBatch }

// RequestScalars: the sum over the inner requests — a latency model that
// prices payload sees exactly the scalars that travel.
func (b BatchReq) RequestScalars() int {
	n := 0
	for _, r := range b.Reqs {
		n += r.RequestScalars()
	}
	return n
}

// Replayable: only when every inner request is — one cursor-advancing
// member poisons the whole exchange, because a lost response leaves the
// originator unable to tell how far the owner got.
func (b BatchReq) Replayable() bool {
	for _, r := range b.Reqs {
		if !r.Replayable() {
			return false
		}
	}
	return true
}

// Sessionful: when any inner request is — a batch carrying one
// cursor-touching member must travel to the session's pinned replica.
func (b BatchReq) Sessionful() bool {
	for _, r := range b.Reqs {
		if r.Sessionful() {
			return true
		}
	}
	return false
}

// BatchResp carries the inner responses in request order.
type BatchResp struct {
	Resps []Response
}

// ResponseScalars: the sum over the inner responses.
func (b BatchResp) ResponseScalars() int {
	n := 0
	for _, r := range b.Resps {
		n += r.ResponseScalars()
	}
	return n
}

// wireEnvelope is the kind-tagged JSON frame of one batched inner
// message; the binary codec carries the same tag as its frame byte.
type wireEnvelope struct {
	Kind Kind            `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// batchWire is the JSON form of BatchReq and BatchResp.
type batchWire struct {
	Msgs []wireEnvelope `json:"msgs"`
}

// MarshalJSON encodes the inner requests as kind-tagged envelopes.
func (b BatchReq) MarshalJSON() ([]byte, error) {
	w := batchWire{Msgs: make([]wireEnvelope, len(b.Reqs))}
	for i, r := range b.Reqs {
		if r.Kind() == KindBatch {
			return nil, fmt.Errorf("transport: batches must not nest")
		}
		raw, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		w.Msgs[i] = wireEnvelope{Kind: r.Kind(), Body: raw}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes kind-tagged envelopes back into typed requests.
func (b *BatchReq) UnmarshalJSON(data []byte) error {
	var w batchWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	// An empty batch decodes to nil, like the binary codec, so the two
	// wires round-trip to DeepEqual-identical messages.
	b.Reqs = nil
	for i, env := range w.Msgs {
		req, err := UnmarshalRequestJSON(env.Kind, env.Body)
		if err != nil {
			return fmt.Errorf("transport: batch[%d]: %w", i, err)
		}
		b.Reqs = append(b.Reqs, req)
	}
	return nil
}

// MarshalJSON encodes the inner responses as kind-tagged envelopes. The
// response kind mirrors the request kind, so the decoder can pick the
// concrete type.
func (b BatchResp) MarshalJSON() ([]byte, error) {
	w := batchWire{Msgs: make([]wireEnvelope, len(b.Resps))}
	for i, r := range b.Resps {
		kind, err := responseKind(r)
		if err != nil {
			return nil, err
		}
		raw, err := json.Marshal(r)
		if err != nil {
			return nil, err
		}
		w.Msgs[i] = wireEnvelope{Kind: kind, Body: raw}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes kind-tagged envelopes back into typed responses.
func (b *BatchResp) UnmarshalJSON(data []byte) error {
	var w batchWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	b.Resps = nil
	for i, env := range w.Msgs {
		resp, err := UnmarshalResponseJSON(env.Kind, env.Body)
		if err != nil {
			return fmt.Errorf("transport: batch[%d]: %w", i, err)
		}
		b.Resps = append(b.Resps, resp)
	}
	return nil
}

// responseKind maps a response to the kind of the request it answers —
// the tag batches and the binary codec frame it under.
func responseKind(resp Response) (Kind, error) {
	switch resp.(type) {
	case SortedResp:
		return KindSorted, nil
	case LookupResp:
		return KindLookup, nil
	case ProbeResp:
		return KindProbe, nil
	case MarkResp:
		return KindMark, nil
	case TopKResp:
		return KindTopK, nil
	case AboveResp:
		return KindAbove, nil
	case FetchResp:
		return KindFetch, nil
	case UpdateResp:
		return KindUpdate, nil
	case BatchResp:
		return KindBatch, nil
	default:
		return "", fmt.Errorf("transport: unknown response type %T", resp)
	}
}

// UnmarshalRequestJSON decodes one request of the given kind from its
// JSON body — the shared decode table of the HTTP server and the batch
// envelope. Batches must not nest, so KindBatch is rejected here; the
// top-level HTTP path decodes batches itself.
func UnmarshalRequestJSON(kind Kind, data []byte) (Request, error) {
	switch kind {
	case KindSorted:
		var r SortedReq
		return r, unmarshalStrict(data, &r)
	case KindLookup:
		var r LookupReq
		return r, unmarshalStrict(data, &r)
	case KindProbe:
		var r ProbeReq
		return r, unmarshalStrict(data, &r)
	case KindMark:
		var r MarkReq
		return r, unmarshalStrict(data, &r)
	case KindTopK:
		var r TopKReq
		return r, unmarshalStrict(data, &r)
	case KindAbove:
		var r AboveReq
		return r, unmarshalStrict(data, &r)
	case KindFetch:
		var r FetchReq
		return r, unmarshalStrict(data, &r)
	case KindUpdate:
		var r UpdateReq
		return r, unmarshalStrict(data, &r)
	case KindBatch:
		return nil, fmt.Errorf("transport: batches must not nest")
	default:
		return nil, fmt.Errorf("transport: unknown request kind %q", kind)
	}
}

// UnmarshalResponseJSON decodes one response of the given kind from its
// JSON body — the client-side mirror of UnmarshalRequestJSON.
func UnmarshalResponseJSON(kind Kind, data []byte) (Response, error) {
	switch kind {
	case KindSorted:
		var r SortedResp
		return r, unmarshalStrict(data, &r)
	case KindLookup:
		var r LookupResp
		return r, unmarshalStrict(data, &r)
	case KindProbe:
		var r ProbeResp
		return r, unmarshalStrict(data, &r)
	case KindMark:
		var r MarkResp
		return r, unmarshalStrict(data, &r)
	case KindTopK:
		var r TopKResp
		return r, unmarshalStrict(data, &r)
	case KindAbove:
		var r AboveResp
		return r, unmarshalStrict(data, &r)
	case KindFetch:
		var r FetchResp
		return r, unmarshalStrict(data, &r)
	case KindUpdate:
		var r UpdateResp
		return r, unmarshalStrict(data, &r)
	case KindBatch:
		return nil, fmt.Errorf("transport: batches must not nest")
	default:
		return nil, fmt.Errorf("transport: unknown response kind %q", kind)
	}
}

func unmarshalStrict(data []byte, v any) error {
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("transport: bad message body: %w", err)
	}
	return nil
}
