package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"topk/internal/bestpos"
	"topk/internal/gen"
)

// TestBackoffDelayBounds is the backoff property test: however many
// attempts have failed, the jittered sleep is never zero when armed and
// never exceeds min(cap, base<<(a-1)); absurd attempt counts must not
// overflow the window.
func TestBackoffDelayBounds(t *testing.T) {
	cases := []struct{ base, cap time.Duration }{
		{DefaultBackoffBase, DefaultBackoffCap},
		{time.Millisecond, 8 * time.Millisecond},
		{time.Nanosecond, time.Microsecond},
		{50 * time.Millisecond, 50 * time.Millisecond},
	}
	for _, c := range cases {
		bk := defaultBackoff(c.base, c.cap)
		for a := 1; a <= 200; a++ {
			window := c.cap
			if shift := a - 1; shift < 62 {
				if w := c.base << shift; w > 0 && w < window {
					window = w
				}
			}
			for trial := 0; trial < 50; trial++ {
				d := bk.delay(a)
				if d <= 0 {
					t.Fatalf("base=%v cap=%v attempt=%d: armed backoff slept %v (two identical attempts back-to-back)", c.base, c.cap, a, d)
				}
				if d > window {
					t.Fatalf("base=%v cap=%v attempt=%d: slept %v beyond window %v", c.base, c.cap, a, d, window)
				}
			}
		}
	}
}

// TestBackoffDisabledAndDefaults pins the knob resolution: zero means
// defaults, negative base disables, cap is floored at base.
func TestBackoffDisabledAndDefaults(t *testing.T) {
	if bk := defaultBackoff(-1, 0); bk.delay(1) != 0 || bk.delay(50) != 0 {
		t.Fatal("negative base did not disable backoff")
	}
	if bk := defaultBackoff(0, 0); bk.base != DefaultBackoffBase || bk.cap != DefaultBackoffCap {
		t.Fatalf("zero knobs resolved to %+v", bk)
	}
	if bk := defaultBackoff(10*time.Millisecond, time.Millisecond); bk.cap != 10*time.Millisecond {
		t.Fatalf("cap below base resolved to %v", bk.cap)
	}
	var zero backoff
	if zero.delay(3) != 0 {
		t.Fatal("zero-value backoff slept")
	}
}

// TestBreakerUnit walks the breaker state machine: trip at K, blocked
// through the cooldown, half-open after it, doubled cooldown on a
// failed probe, closed (with the ladder reset) on success.
func TestBreakerUnit(t *testing.T) {
	var b breaker
	b.arm(3, 100*time.Millisecond)
	t0 := time.Now()
	if b.failure(t0) || b.failure(t0) {
		t.Fatal("breaker opened before the threshold")
	}
	if !b.failure(t0) {
		t.Fatal("third consecutive failure did not open the breaker")
	}
	if !b.blocked(t0.Add(50*time.Millisecond)) || b.state(t0.Add(50*time.Millisecond)) != breakerOpen {
		t.Fatal("open breaker not blocking inside the cooldown")
	}
	half := t0.Add(150 * time.Millisecond)
	if b.blocked(half) || b.state(half) != breakerHalfOpen {
		t.Fatal("breaker still blocking after the cooldown")
	}
	// A failed half-open probe doubles the cooldown: blocked again for
	// ~200ms from the failure.
	b.failure(half)
	if !b.blocked(half.Add(150*time.Millisecond)) || b.blocked(half.Add(250*time.Millisecond)) {
		t.Fatal("failed half-open probe did not double the cooldown")
	}
	if !b.success() {
		t.Fatal("success on an open breaker did not report the transition")
	}
	if b.state(half) != breakerClosed || b.cooldown.Load() != int64(100*time.Millisecond) {
		t.Fatal("success did not close and reset the ladder")
	}
	if b.success() {
		t.Fatal("success on a closed breaker reported a transition")
	}
	// Disabled breaker never opens.
	var off breaker
	for i := 0; i < 100; i++ {
		if off.failure(t0) {
			t.Fatal("unarmed breaker opened")
		}
	}
	if off.blocked(t0) || off.state(t0) != breakerClosed {
		t.Fatal("unarmed breaker not permanently closed")
	}
}

// countingGate fronts a replica, counting data-plane requests and
// optionally aborting every connection (a dead process).
type countingGate struct {
	inner http.Handler
	dead  atomic.Bool
	rpc   atomic.Int64
}

func (g *countingGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/rpc/") {
		g.rpc.Add(1)
	}
	if g.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	g.inner.ServeHTTP(w, r)
}

// TestBreakerFencesAndReadmits is the acceptance pin for the circuit
// breaker over a live 2-replica cluster: after K consecutive failures
// the breaker opens and replica A stops receiving traffic even once the
// prober re-validates it as healthy; when the cooldown lapses, a
// half-open data-plane exchange readmits it and the breaker closes.
func TestBreakerFencesAndReadmits(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	srvA, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	gateA := &countingGate{inner: srvA.Handler()}
	tsA := httptest.NewServer(gateA)
	defer tsA.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	hc, err := Dial(context.Background(), DialConfig{
		Topology:         Topology{{tsA.URL, tsB.URL}},
		HealthInterval:   30 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// Healthy cluster: primary policy serves from A.
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 1}); err != nil {
		t.Fatal(err)
	}
	if gateA.rpc.Load() == 0 {
		t.Fatal("primary replica served nothing while healthy")
	}

	// Kill A. The failed exchange plus prober failures accumulate the K
	// consecutive failures that open the breaker.
	gateA.dead.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for hc.Health()[0].Breaker != breakerOpen {
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened; health %+v", hc.Health())
		}
		if _, err := s.Do(ctx, 0, SortedReq{Pos: 2}); err != nil {
			t.Fatalf("exchange failed despite sibling: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Revive A and wait for the prober to re-validate it. The breaker's
	// cooldown is far longer than the probe backoff, so there is a
	// window where A is healthy again yet still fenced.
	gateA.dead.Store(false)
	for {
		h := hc.Health()[0]
		if h.Healthy && h.Breaker == breakerOpen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached healthy+open; health %+v", hc.Health())
		}
		time.Sleep(10 * time.Millisecond)
	}
	before := gateA.rpc.Load()
	for i := 0; i < 8; i++ {
		if _, err := s.Do(ctx, 0, SortedReq{Pos: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if got := gateA.rpc.Load(); got != before {
		t.Fatalf("open breaker let %d exchanges through to the fenced replica", got-before)
	}

	// Once the cooldown lapses the next exchange is the half-open probe:
	// it lands on A, succeeds, and closes the breaker.
	readmit := time.Now().Add(15 * time.Second)
	for gateA.rpc.Load() == before {
		if time.Now().After(readmit) {
			t.Fatalf("fenced replica never readmitted; health %+v", hc.Health())
		}
		if _, err := s.Do(ctx, 0, SortedReq{Pos: 4}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for hc.Health()[0].Breaker != breakerClosed {
		if time.Now().After(readmit) {
			t.Fatalf("breaker never closed after readmission; health %+v", hc.Health())
		}
		if _, err := s.Do(ctx, 0, SortedReq{Pos: 5}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAdmissionShedAndBackpressure drives an exchange into an owner at
// its in-flight bound: the owner sheds it with the typed retry-after
// answer, the client absorbs the shed as backpressure (no health or
// breaker penalty) and completes once a slot frees up.
func TestAdmissionShedAndBackpressure(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	srv, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{ts.URL}},
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Saturate the owner: one slot, held by a phantom exchange.
	srv.Owner().SetMaxInflight(1)
	if !srv.Owner().TryAcquire() {
		t.Fatal("empty owner refused an acquire")
	}
	release := time.AfterFunc(120*time.Millisecond, srv.Owner().Release)
	defer release.Stop()

	start := time.Now()
	resp, err := s.Do(context.Background(), 0, SortedReq{Pos: 1})
	if err != nil {
		t.Fatalf("shed exchange never completed: %v", err)
	}
	if got := resp.(SortedResp).Entry; got != one.List(0).At(1) {
		t.Errorf("backpressured exchange answered %+v", got)
	}
	if time.Since(start) < 100*time.Millisecond {
		t.Error("exchange completed before the slot freed — shed path not exercised")
	}
	if srv.Owner().Shed() == 0 {
		t.Error("owner tallied no shed exchanges")
	}
	rec := s.(interface{ Recovery() SessionRecovery }).Recovery()
	if rec.Backpressure == 0 {
		t.Error("session tallied no backpressure waits")
	}
	h := hc.Health()[0]
	if h.Failures != 0 {
		t.Errorf("shed exchanges penalized replica health: %d failures", h.Failures)
	}
	if h.Breaker != breakerClosed {
		t.Errorf("shed exchanges moved the breaker to %s", h.Breaker)
	}
}

// tryDecodeResponses pushes bytes through every response decode path:
// none may panic, whatever the damage.
func tryDecodeResponses(b []byte) {
	DecodeResponseBinary(b)
	for _, kind := range []Kind{KindSorted, KindLookup, KindProbe, KindMark, KindTopK, KindAbove, KindFetch, KindBatch} {
		decodeResponseJSON(kind, b)
	}
}

// FuzzDecodeResponseCorrupted is the chaos-codec fuzz target: valid
// encoded response frames, torn at an arbitrary byte and with an
// arbitrary bit flipped — the exact damage the fault injector deals —
// must be rejected or decoded, never panic.
func FuzzDecodeResponseCorrupted(f *testing.F) {
	for _, resp := range codecResponses() {
		if enc, err := AppendResponseBinary(nil, resp); err == nil {
			f.Add(enc, uint16(len(enc)/2), uint32(7))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, cut uint16, flip uint32) {
		if n := int(cut); n < len(data) {
			tryDecodeResponses(data[:n])
		}
		if len(data) > 0 {
			b := append([]byte(nil), data...)
			pos := int(flip) % (len(b) * 8)
			b[pos/8] ^= 1 << (pos % 8)
			tryDecodeResponses(b)
		}
	})
}

// corruptingGate fronts a replica and flips one byte in the next `bad`
// data-plane response bodies AFTER the owner stamped the frame CRC —
// exactly what wire corruption looks like to the client.
type corruptingGate struct {
	inner http.Handler
	bad   atomic.Int64
}

func (g *corruptingGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !strings.HasPrefix(r.URL.Path, "/rpc/") || g.bad.Load() <= 0 {
		g.inner.ServeHTTP(w, r)
		return
	}
	g.bad.Add(-1)
	rec := httptest.NewRecorder()
	g.inner.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if len(body) > 0 {
		body[0] ^= 0x40
	}
	h := w.Header()
	for k, vs := range rec.Result().Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Del("Content-Length")
	w.WriteHeader(rec.Code)
	_, _ = w.Write(body)
}

// TestCorruptFrameRetried pins the end-to-end frame checksum: a
// response mangled in transit fails CRC verification, is classified
// transient, and the re-sent exchange returns the clean answer. When
// every attempt is mangled, the failure is the typed errCorruptFrame,
// never a silently wrong payload.
func TestCorruptFrameRetried(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	srv, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	gate := &corruptingGate{inner: srv.Handler()}
	ts := httptest.NewServer(gate)
	defer ts.Close()

	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{ts.URL}},
		HealthInterval: -1,
		Retries:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	gate.bad.Store(1)
	resp, err := s.Do(context.Background(), 0, SortedReq{Pos: 3})
	if err != nil {
		t.Fatalf("exchange after one corrupt frame: %v", err)
	}
	if got, want := resp.(SortedResp).Entry, one.List(0).At(3); got != want {
		t.Errorf("retried exchange answered %+v, want %+v", got, want)
	}
	if gate.bad.Load() != 0 {
		t.Error("corrupt frame was never served")
	}

	// Corruption on every attempt: typed error, not a wrong answer.
	gate.bad.Store(1 << 20)
	if _, err := s.Do(context.Background(), 0, SortedReq{Pos: 4}); !errors.Is(err, errCorruptFrame) {
		t.Fatalf("persistent corruption surfaced as %v, want errCorruptFrame", err)
	}
	gate.bad.Store(0)

	// The link healed: the same session keeps working.
	if _, err := s.Do(context.Background(), 0, SortedReq{Pos: 5}); err != nil {
		t.Fatalf("exchange after corruption cleared: %v", err)
	}
}
