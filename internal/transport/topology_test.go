package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"topk/internal/bestpos"
	"topk/internal/gen"
	"topk/internal/list"
)

// TestTopologyValidate: the shapes Dial must reject.
func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		nil,
		{},
		{{"a"}, {}},
		{{"a"}, {" "}},
	}
	for _, tp := range bad {
		if err := tp.Validate(); err == nil {
			t.Errorf("topology %v accepted", tp)
		}
	}
	ok := Topology{{"a", "b"}, {"c"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid topology rejected: %v", err)
	}
	if !ok.Replicated() {
		t.Error("two-replica list not reported as replicated")
	}
	if SingleTopology([]string{"a", "b"}).Replicated() {
		t.Error("flat topology reported as replicated")
	}
}

// TestParseRoutingPolicy: every policy's String round-trips, plus the
// accepted aliases and case forms.
func TestParseRoutingPolicy(t *testing.T) {
	for _, p := range []RoutingPolicy{RoutePrimary, RouteRoundRobin, RouteFastest} {
		got, err := ParseRoutingPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseRoutingPolicy(%q) = %v, %v", p.String(), got, err)
		}
		got, err = ParseRoutingPolicy("  " + strings.ToUpper(p.String()) + " ")
		if err != nil || got != p {
			t.Errorf("ParseRoutingPolicy(noisy %q) = %v, %v", p.String(), got, err)
		}
	}
	if p, err := ParseRoutingPolicy("rr"); err != nil || p != RouteRoundRobin {
		t.Errorf("rr alias = %v, %v", p, err)
	}
	if p, err := ParseRoutingPolicy(""); err != nil || p != RoutePrimary {
		t.Errorf("empty policy = %v, %v", p, err)
	}
	if _, err := ParseRoutingPolicy("zzz"); err == nil {
		t.Error("unknown policy accepted")
	}
}

// routeClient builds an un-dialed client with synthetic replicas, for
// driving route directly.
func routeClient(policy RoutingPolicy, healthy []bool, ewma []time.Duration) *HTTPClient {
	t := &HTTPClient{policy: policy, rr: make([]atomic.Uint32, 1)}
	reps := make([]*replica, len(healthy))
	for i := range reps {
		reps[i] = &replica{list: 0, index: i, url: "u"}
		reps[i].validated.Store(true)
		reps[i].healthy.Store(healthy[i])
		if ewma != nil {
			reps[i].ewma.Store(int64(ewma[i]))
		}
	}
	t.lists = [][]*replica{reps}
	return t
}

// TestRoutePolicies pins each policy's selection behaviour, including
// the healthy-first preference and the all-unhealthy fallback.
func TestRoutePolicies(t *testing.T) {
	// Primary skips unhealthy replica 0.
	c := routeClient(RoutePrimary, []bool{false, true, true}, nil)
	if r := c.route(0, nil, nil); r.index != 1 {
		t.Errorf("primary routed to %d, want 1", r.index)
	}
	// All unhealthy: the policy still picks someone (verdicts go stale).
	c = routeClient(RoutePrimary, []bool{false, false}, nil)
	if r := c.route(0, nil, nil); r == nil {
		t.Error("all-unhealthy list routed to nobody")
	}
	// Round-robin rotates over the healthy subset.
	c = routeClient(RouteRoundRobin, []bool{true, false, true}, nil)
	seen := map[int]int{}
	for i := 0; i < 4; i++ {
		seen[c.route(0, nil, nil).index]++
	}
	if seen[0] != 2 || seen[2] != 2 || seen[1] != 0 {
		t.Errorf("round-robin distribution %v, want 0 and 2 twice each", seen)
	}
	// Fastest picks the lowest EWMA; an unmeasured replica is explored.
	c = routeClient(RouteFastest, []bool{true, true}, []time.Duration{5 * time.Millisecond, time.Millisecond})
	if r := c.route(0, nil, nil); r.index != 1 {
		t.Errorf("fastest routed to %d, want 1", r.index)
	}
	c = routeClient(RouteFastest, []bool{true, true}, []time.Duration{5 * time.Millisecond, 0})
	if r := c.route(0, nil, nil); r.index != 1 {
		t.Errorf("fastest did not explore the unmeasured replica (got %d)", r.index)
	}
	// tried excludes, allowed filters.
	c = routeClient(RoutePrimary, []bool{true, true}, nil)
	if r := c.route(0, nil, []bool{true, false}); r.index != 1 {
		t.Errorf("tried filter routed to %d, want 1", r.index)
	}
	if r := c.route(0, []bool{true, false}, []bool{true, false}); r != nil {
		t.Errorf("exhausted filters routed to %d, want nobody", r.index)
	}
}

// replicatedDB is the shared 2-list database of the replica tests.
func replicatedDB(t *testing.T) *list.Database {
	t.Helper()
	return gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 2, Seed: 9})
}

// startReplicas serves each list of db from `reps` independent owner
// processes and returns topology plus the servers, indexed [list][replica].
func startReplicas(t *testing.T, db *list.Database, reps int) (Topology, [][]*Server) {
	t.Helper()
	topo := make(Topology, db.M())
	servers := make([][]*Server, db.M())
	for li := 0; li < db.M(); li++ {
		for ri := 0; ri < reps; ri++ {
			srv, err := NewServer(db, li)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			topo[li] = append(topo[li], ts.URL)
			servers[li] = append(servers[li], srv)
		}
	}
	return topo, servers
}

// TestReplicatedOpenFansOut: a session must exist at EVERY replica of
// every list — the invariant that makes failover lossless — and close
// must release all of them.
func TestReplicatedOpenFansOut(t *testing.T) {
	db := replicatedDB(t)
	topo, servers := startReplicas(t, db, 2)
	hc, err := Dial(context.Background(), DialConfig{Topology: topo, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	for li := range servers {
		for ri, srv := range servers[li] {
			if n := srv.Owner().Sessions(); n != 1 {
				t.Errorf("list %d replica %d holds %d sessions, want 1", li, ri, n)
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for li := range servers {
		for ri, srv := range servers[li] {
			if n := srv.Owner().Sessions(); n != 0 {
				t.Errorf("list %d replica %d holds %d sessions after close", li, ri, n)
			}
		}
	}
}

// flakyGate wraps a replica's handler so the test can abort its
// connections (a crash) or fail a fixed number of /rpc calls.
type flakyGate struct {
	inner http.Handler
	dead  atomic.Bool
}

func (g *flakyGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.dead.Load() {
		panic(http.ErrAbortHandler)
	}
	g.inner.ServeHTTP(w, r)
}

// TestStatelessFailover: killing the replica serving a session's
// stateless traffic mid-query must fail the exchange over to the
// sibling — same answers, session state intact — and tally the
// failover.
func TestStatelessFailover(t *testing.T) {
	// One-list database so the single-list topology agrees on M.
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	srvA, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	gateA := &flakyGate{inner: srvA.Handler()}
	tsA := httptest.NewServer(gateA)
	defer tsA.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{tsA.URL, tsB.URL}},
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// Primary policy: replica A serves first.
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 1}); err != nil {
		t.Fatal(err)
	}
	// Kill A; the next stateless exchange must fail over to B.
	gateA.dead.Store(true)
	resp, err := s.Do(ctx, 0, SortedReq{Pos: 2})
	if err != nil {
		t.Fatalf("stateless exchange did not fail over: %v", err)
	}
	if got := resp.(SortedResp).Entry; got != one.List(0).At(2) {
		t.Errorf("failover answered %+v", got)
	}
	h := hc.Health()
	if h[0].Healthy {
		t.Error("dead replica still marked healthy")
	}
	if h[1].Failovers != 1 {
		t.Errorf("replica B failovers = %d, want 1", h[1].Failovers)
	}
	if h[0].Failures == 0 {
		t.Error("replica A failure not tallied")
	}
	// The ledger keeps the access tally coherent across the failover.
	st, err := s.Stats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Sorted != 2 {
		t.Errorf("sorted accesses after failover = %d, want 2", st.Accesses.Sorted)
	}
}

// TestSessionfulPinAndOwnerFailedError: with handoff disabled,
// cursor-bearing traffic sticks to one replica; when that replica dies
// the session fails fast with the typed error naming list and replica —
// it must NOT resume on the sibling whose cursors never advanced. (With
// handoff on — the default — the sibling mirrors the session state and
// the death is absorbed; see TestSessionfulHandoff.)
func TestSessionfulPinAndOwnerFailedError(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	srvA, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	gateA := &flakyGate{inner: srvA.Handler()}
	tsA := httptest.NewServer(gateA)
	defer tsA.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{tsA.URL, tsB.URL}},
		HealthInterval: -1,
		DisableHandoff: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// Two probes pin the session to replica A and advance its cursor.
	for i := 1; i <= 2; i++ {
		resp, err := s.Do(ctx, 0, ProbeReq{})
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.(ProbeResp).Entry; got != one.List(0).At(i) {
			t.Fatalf("probe %d = %+v", i, got)
		}
	}
	if a := srvA.Owner(); a == nil {
		t.Fatal("no owner")
	}
	// The cursor must live on A alone: B has seen nothing.
	stB, err := srvB.Owner().SessionStats(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	if stB.Best != 0 || stB.Accesses.Total() != 0 {
		t.Errorf("sessionful traffic leaked to the unpinned replica: %+v", stB)
	}

	// Kill the pinned replica: the next probe is a typed failure.
	gateA.dead.Store(true)
	_, err = s.Do(ctx, 0, ProbeReq{})
	var ofe *OwnerFailedError
	if !errors.As(err, &ofe) {
		t.Fatalf("pinned-replica death surfaced as %v, want *OwnerFailedError", err)
	}
	if ofe.List != 0 || ofe.Replica != 0 || ofe.URL != tsA.URL {
		t.Errorf("OwnerFailedError = %+v, want list 0 replica 0 %s", ofe, tsA.URL)
	}
	if !strings.Contains(ofe.Error(), "owner 0") || !strings.Contains(ofe.Error(), "replica 0") {
		t.Errorf("error text does not name list+replica: %s", ofe.Error())
	}
	// A replayable sessionful exchange dies on the pinned replica too —
	// it must not carry the tracker to the sibling.
	_, err = s.Do(ctx, 0, MarkReq{Item: one.List(0).At(5).Item})
	if !errors.As(err, &ofe) {
		t.Fatalf("mark on dead pinned replica: %v, want *OwnerFailedError", err)
	}
	// B's cursor is still untouched.
	stB, err = srvB.Owner().SessionStats(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	if stB.Best != 0 {
		t.Errorf("failed sessionful traffic moved to the sibling: best=%d", stB.Best)
	}
}

// TestHealthProber: the background prober demotes a replica whose
// /healthz stops answering and revives it when it returns.
func TestHealthProber(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 40, M: 1, Seed: 3})
	srvA, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, `{"error":"down"}`, http.StatusInternalServerError)
			return
		}
		srvA.Handler().ServeHTTP(w, r)
	}))
	defer ts.Close()
	srvB, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()

	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{ts.URL, tsB.URL}},
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()

	waitVerdict := func(want bool) bool {
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if hc.Health()[0].Healthy == want {
				return true
			}
			time.Sleep(5 * time.Millisecond)
		}
		return false
	}
	if !hc.Health()[0].Healthy {
		t.Fatal("replica unhealthy after dial")
	}
	down.Store(true)
	if !waitVerdict(false) {
		t.Fatal("prober never demoted the failing replica")
	}
	down.Store(false)
	if !waitVerdict(true) {
		t.Fatal("prober never revived the recovered replica")
	}
	if hc.Health()[0].Latency <= 0 {
		t.Error("no EWMA latency measured")
	}
}

// TestDialToleratesDeadReplica: a replica that is down at dial time is
// tolerated (marked unhealthy) as long as its list has a live sibling; a
// list with no live replica fails the dial.
func TestDialToleratesDeadReplica(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 40, M: 1, Seed: 3})
	srv, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{"http://127.0.0.1:1", ts.URL}},
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatalf("dial with one dead replica: %v", err)
	}
	defer hc.Close()
	h := hc.Health()
	if h[0].Healthy || !h[1].Healthy {
		t.Errorf("health after dial = %+v", h)
	}
	// Queries route around the dead replica from the start.
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Do(context.Background(), 0, SortedReq{Pos: 1}); err != nil {
		t.Errorf("query against degraded list: %v", err)
	}

	// Every replica down: dial must fail.
	if _, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{"http://127.0.0.1:1"}},
		HealthInterval: -1,
	}); err == nil {
		t.Error("list with no live replica dialed")
	}
}

// TestReplicaIdentityInStats: topk-owner's -replica label travels the
// /stats handshake.
func TestReplicaIdentityInStats(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 40, M: 1, Seed: 3})
	srv, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.Owner().SetReplicaID("b")
	if st := srv.Owner().Info(); st.Replica != "b" {
		t.Errorf("Info().Replica = %q, want b", st.Replica)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hc, err := Dial(context.Background(), DialConfig{Topology: Topology{{ts.URL}}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	st, err := hc.replicaInfo(context.Background(), hc.lists[0][0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Replica != "b" {
		t.Errorf("handshake Replica = %q, want b", st.Replica)
	}
}

// TestLedgerAboveAccounting pins the one subtle ledger rule: an
// above-scan charges the below-threshold read that stopped it, except
// when it ran off the end of the list.
func TestLedgerAboveAccounting(t *testing.T) {
	n := 10
	var l ledger
	// TopK sets the depth and charges K sorted reads.
	l.record(TopKReq{K: 3}, TopKResp{}, n)
	if l.sorted != 3 || l.depth != 3 {
		t.Fatalf("after topk: %+v", l)
	}
	// Above returning 4 entries stopped on a 5th below-threshold read.
	l.record(AboveReq{T: 0.5}, AboveResp{Entries: make([]list.Entry, 4)}, n)
	if l.sorted != 3+5 || l.depth != 8 {
		t.Fatalf("after above: %+v", l)
	}
	// Above returning the remaining 2 entries ran off the end: no
	// stopping read to charge.
	l.record(AboveReq{T: 0.1}, AboveResp{Entries: make([]list.Entry, 2)}, n)
	if l.sorted != 8+2 || l.depth != 10 {
		t.Fatalf("after tail above: %+v", l)
	}
	// At the end, a further above charges nothing.
	l.record(AboveReq{T: 0}, AboveResp{}, n)
	if l.sorted != 10 || l.depth != 10 {
		t.Fatalf("after exhausted above: %+v", l)
	}
	// Batches recurse into their members.
	var b ledger
	b.record(BatchReq{Reqs: []Request{SortedReq{Pos: 1}, LookupReq{Item: 1}, MarkReq{Item: 2}}},
		BatchResp{Resps: []Response{SortedResp{}, LookupResp{}, MarkResp{}}}, n)
	if b.sorted != 1 || b.random != 2 {
		t.Fatalf("batch ledger: %+v", b)
	}
	// An empty probe charges nothing; a real one charges a direct read.
	var p ledger
	p.record(ProbeReq{}, ProbeResp{Empty: true}, n)
	p.record(ProbeReq{}, ProbeResp{}, n)
	if p.direct != 1 {
		t.Fatalf("probe ledger: %+v", p)
	}
}

// TestSessionfulClassification pins which kinds pin their session —
// the routing contract of the replica layer.
func TestSessionfulClassification(t *testing.T) {
	sessionful := map[Kind]bool{
		KindSorted: false, KindLookup: false, KindFetch: false,
		KindProbe: true, KindMark: true, KindTopK: true, KindAbove: true,
	}
	for _, req := range []Request{
		SortedReq{}, LookupReq{}, ProbeReq{}, MarkReq{}, TopKReq{}, AboveReq{}, FetchReq{},
	} {
		if got := req.Sessionful(); got != sessionful[req.Kind()] {
			t.Errorf("%s sessionful = %v, want %v", req.Kind(), got, sessionful[req.Kind()])
		}
	}
	if (BatchReq{Reqs: []Request{SortedReq{}, LookupReq{}}}).Sessionful() {
		t.Error("stateless batch reported sessionful")
	}
	if !(BatchReq{Reqs: []Request{SortedReq{}, ProbeReq{}}}).Sessionful() {
		t.Error("probe-carrying batch reported stateless")
	}
}

// lateGate answers 503 until opened — a replica process that is down
// while the cluster dials and comes up afterwards.
type lateGate struct {
	inner http.Handler
	up    atomic.Bool
}

func (g *lateGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !g.up.Load() {
		http.Error(w, `{"error":"starting"}`, http.StatusServiceUnavailable)
		return
	}
	g.inner.ServeHTTP(w, r)
}

// TestProberValidatesLateReplica: a replica that was down at dial time
// must pass the full shape handshake before the prober ever routes to
// it — a correct late-comer joins, a misconfigured one (serving the
// wrong list) stays unroutable forever.
func TestProberValidatesLateReplica(t *testing.T) {
	db := replicatedDB(t) // m=2
	good0, err := NewServer(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts0 := httptest.NewServer(good0.Handler())
	defer ts0.Close()
	good1, err := NewServer(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(good1.Handler())
	defer ts1.Close()

	// Late replica of list 0, correctly configured.
	late, err := NewServer(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	lateG := &lateGate{inner: late.Handler()}
	tsLate := httptest.NewServer(lateG)
	defer tsLate.Close()
	// Late replica slot of list 1 that actually serves list 0 — the
	// misconfiguration the shape check must catch.
	wrong, err := NewServer(db, 0)
	if err != nil {
		t.Fatal(err)
	}
	wrongG := &lateGate{inner: wrong.Handler()}
	tsWrong := httptest.NewServer(wrongG)
	defer tsWrong.Close()

	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{ts0.URL, tsLate.URL}, {ts1.URL, tsWrong.URL}},
		HealthInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	if h := hc.Health(); h[1].Healthy || h[3].Healthy {
		t.Fatalf("down-at-dial replicas healthy: %+v", h)
	}

	lateG.up.Store(true)
	wrongG.up.Store(true)
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && !hc.Health()[1].Healthy {
		time.Sleep(5 * time.Millisecond)
	}
	h := hc.Health()
	if !h[1].Healthy {
		t.Fatal("correct late replica never validated")
	}
	if !hc.lists[0][1].validated.Load() {
		t.Error("late replica healthy but not validated")
	}
	// The misconfigured one must NEVER become routable, however long the
	// prober runs.
	time.Sleep(100 * time.Millisecond)
	if hc.Health()[3].Healthy || hc.lists[1][1].validated.Load() {
		t.Error("wrong-list replica was validated — it would serve wrong data")
	}
	// Traffic can use the validated late replica and keeps avoiding the
	// invalid one.
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		if _, err := s.Do(context.Background(), 1, SortedReq{Pos: 1}); err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
	}
}

// TestStatelessFailoverTriesEveryReplica: with three replicas and two
// dead, a stateless exchange must walk past the flat retry budget and
// reach the last live sibling.
func TestStatelessFailoverTriesEveryReplica(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	var gates []*flakyGate
	topo := Topology{nil}
	for i := 0; i < 3; i++ {
		srv, err := NewServer(one, 0)
		if err != nil {
			t.Fatal(err)
		}
		g := &flakyGate{inner: srv.Handler()}
		ts := httptest.NewServer(g)
		t.Cleanup(ts.Close)
		gates = append(gates, g)
		topo[0] = append(topo[0], ts.URL)
	}
	hc, err := Dial(context.Background(), DialConfig{Topology: topo, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Replicas 0 and 1 crash; replica 2 must still carry the read even
	// though the default budget alone (1+1 attempts) would stop short.
	gates[0].dead.Store(true)
	gates[1].dead.Store(true)
	resp, err := s.Do(context.Background(), 0, SortedReq{Pos: 1})
	if err != nil {
		t.Fatalf("exchange with one live replica of three: %v", err)
	}
	if got := resp.(SortedResp).Entry; got != one.List(0).At(1) {
		t.Errorf("answered %+v", got)
	}
}

// TestExhaustedStatelessIsNotOwnerFailedError: when stateless traffic
// runs out of replicas entirely, the failure must NOT be the typed
// OwnerFailedError — that type's contract is "rerun the query, a fresh
// session pins to a live replica", which cannot help when every replica
// is dead (including the flat single-owner case).
func TestExhaustedStatelessIsNotOwnerFailedError(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	srv, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := &flakyGate{inner: srv.Handler()}
	ts := httptest.NewServer(g)
	defer ts.Close()
	hc, err := Dial(context.Background(), DialConfig{Topology: Topology{{ts.URL}}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	g.dead.Store(true)
	_, err = s.Do(context.Background(), 0, SortedReq{Pos: 1})
	if err == nil {
		t.Fatal("dead cluster answered")
	}
	var ofe *OwnerFailedError
	if errors.As(err, &ofe) {
		t.Errorf("exhausted stateless failure is typed OwnerFailedError: %v", err)
	}
	if !strings.Contains(err.Error(), "owner 0") {
		t.Errorf("error does not name the owner: %v", err)
	}
}

// TestFlatDialSpawnsNoProber: the pre-replica dial spawned no background
// goroutines; a flat topology must keep that, while a replicated one
// runs the prober until Close.
func TestFlatDialSpawnsNoProber(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 40, M: 1, Seed: 3})
	srv, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	flat, err := DialOwners([]string{ts.URL}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer flat.Close()
	if flat.proberDone != nil {
		t.Error("flat dial started the health prober")
	}
	srv2, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	repl, err := Dial(context.Background(), DialConfig{Topology: Topology{{ts.URL, ts2.URL}}})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	if repl.proberDone == nil {
		t.Error("replicated dial did not start the health prober")
	}
}

// TestOpenExcludesStalledReplica: a replica that hangs on /session/open
// must not stall query start past the open cap — the session proceeds
// on its sibling, with the stalled replica excluded from routing.
func TestOpenExcludesStalledReplica(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 40, M: 1, Seed: 3})
	srvA, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(srvA.Handler())
	defer tsA.Close()
	srvB, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The stall is bounded (not gated on a channel) so the deferred
	// httptest Close, which waits for in-flight handlers, terminates.
	const stall = 1500 * time.Millisecond
	tsB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/session/open" {
			time.Sleep(stall) // far beyond the 200ms open cap below
		}
		srvB.Handler().ServeHTTP(w, r)
	}))
	defer tsB.Close()
	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{tsA.URL, tsB.URL}},
		RequestTimeout: 200 * time.Millisecond, // open cap = min(this, openTimeout)
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	start := time.Now()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatalf("open with one stalled replica: %v", err)
	}
	defer s.Close()
	// Must beat the stall by a wide margin: waiting the handler out
	// (~1.5s) would mean the cap never applied.
	if d := time.Since(start); d > time.Second {
		t.Errorf("open stalled %v behind the hung replica", d)
	}
	// The session runs on the replica that acknowledged.
	if _, err := s.Do(context.Background(), 0, SortedReq{Pos: 1}); err != nil {
		t.Errorf("query after degraded open: %v", err)
	}
}

// swapGate lets the test replace a replica's handler mid-query — a
// process that crashed and restarted empty (same address, no sessions).
type swapGate struct {
	h atomic.Pointer[http.Handler]
}

func (g *swapGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	(*g.h.Load()).ServeHTTP(w, r)
}

// TestRestartedReplicaFailsOver: a replica that restarts mid-query
// answers "unknown session" (404) with a healthy /healthz — stateless
// traffic must treat that as this-replica-lost-the-session and fail
// over to the sibling that still holds it, not abort the query;
// sessionful traffic on a restarted pinned replica fails typed.
func TestRestartedReplicaFailsOver(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	mkHandler := func() http.Handler {
		srv, err := NewServer(one, 0)
		if err != nil {
			t.Fatal(err)
		}
		return srv.Handler()
	}
	gateA := &swapGate{}
	h := mkHandler()
	gateA.h.Store(&h)
	tsA := httptest.NewServer(gateA)
	defer tsA.Close()
	tsB := httptest.NewServer(mkHandler())
	defer tsB.Close()
	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{tsA.URL, tsB.URL}},
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	ctx := context.Background()

	s, err := hc.Open(ctx, bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Do(ctx, 0, SortedReq{Pos: 1}); err != nil {
		t.Fatal(err)
	}
	// Replica A "restarts": fresh owner, same address, the old session
	// gone but every new request answered (healthy by every probe).
	fresh := mkHandler()
	gateA.h.Store(&fresh)
	resp, err := s.Do(ctx, 0, SortedReq{Pos: 2})
	if err != nil {
		t.Fatalf("stateless exchange did not survive the replica restart: %v", err)
	}
	if got := resp.(SortedResp).Entry; got != one.List(0).At(2) {
		t.Errorf("failover answered %+v", got)
	}
	// The restarted replica is out of this session's routing for good:
	// further reads keep working without touching it.
	for p := 3; p <= 5; p++ {
		if _, err := s.Do(ctx, 0, SortedReq{Pos: p}); err != nil {
			t.Fatalf("read %d after restart: %v", p, err)
		}
	}
	if st, err := s.Stats(ctx, 0); err != nil || st.Accesses.Sorted != 5 {
		t.Errorf("ledger after restart failover: %+v, %v", st.Accesses, err)
	}

	// Sessionful traffic pinned to a replica that restarts (session
	// gone, 404 on every exchange) hands off to the mirroring sibling
	// and resumes exactly where the dead pin left it.
	s2, err := hc.Open(ctx, bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Do(ctx, 0, ProbeReq{}); err != nil {
		t.Fatal(err) // pins to replica 0 (primary), mirrors to replica 1
	}
	fresh2 := mkHandler()
	gateA.h.Store(&fresh2)
	resp, err = s2.Do(ctx, 0, ProbeReq{})
	if err != nil {
		t.Fatalf("probe on restarted pinned replica did not hand off: %v", err)
	}
	if got := resp.(ProbeResp).Entry; got != one.List(0).At(2) {
		t.Errorf("handoff probe = %+v, want position 2", got)
	}
	rec := s2.(*httpSession).Recovery()
	if rec.Handoffs != 1 {
		t.Errorf("handoffs = %d, want 1", rec.Handoffs)
	}
}

// TestSessionfulHandoff: with handoff on (the default), killing the
// replica a session's cursor-bearing traffic is pinned to re-pins the
// session to the sibling that mirrors its state — the query resumes
// exactly where the dead pin left it, no cursor advances twice, and the
// ledger accounting is identical to an undisturbed run.
func TestSessionfulHandoff(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	srvA, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	srvB, err := NewServer(one, 0)
	if err != nil {
		t.Fatal(err)
	}
	gateA := &flakyGate{inner: srvA.Handler()}
	tsA := httptest.NewServer(gateA)
	defer tsA.Close()
	tsB := httptest.NewServer(srvB.Handler())
	defer tsB.Close()
	hc, err := Dial(context.Background(), DialConfig{
		Topology:       Topology{{tsA.URL, tsB.URL}},
		HealthInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	s, err := hc.Open(context.Background(), bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	// Two probes pin to A; each synchronously mirrors its position to B.
	for i := 1; i <= 2; i++ {
		resp, err := s.Do(ctx, 0, ProbeReq{})
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.(ProbeResp).Entry; got != one.List(0).At(i) {
			t.Fatalf("probe %d = %+v", i, got)
		}
	}
	// The mirror holds the state delta without being charged for it.
	stB, err := srvB.Owner().SessionStats(s.ID())
	if err != nil {
		t.Fatal(err)
	}
	if stB.Best != 2 {
		t.Errorf("mirror best = %d, want 2 (positions 1,2 mirrored)", stB.Best)
	}
	if stB.Accesses.Total() != 0 {
		t.Errorf("mirroring charged the sibling: %+v", stB.Accesses)
	}

	// Kill the pin: the next probe hands off to B and resumes at 3.
	gateA.dead.Store(true)
	for i := 3; i <= 4; i++ {
		resp, err := s.Do(ctx, 0, ProbeReq{})
		if err != nil {
			t.Fatalf("probe %d after pin death did not hand off: %v", i, err)
		}
		if got := resp.(ProbeResp).Entry; got != one.List(0).At(i) {
			t.Errorf("probe %d after handoff = %+v", i, got)
		}
	}
	// A replayable sessionful exchange works on the new pin too.
	if _, err := s.Do(ctx, 0, MarkReq{Item: one.List(0).At(9).Item}); err != nil {
		t.Fatalf("mark after handoff: %v", err)
	}
	// The ledger reports what an undisturbed run would: 4 probes + 1 mark.
	st, err := s.Stats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses.Direct != 4 || st.Accesses.Random != 1 {
		t.Errorf("accesses after handoff = %+v, want direct=4 random=1", st.Accesses)
	}
	rec := s.(*httpSession).Recovery()
	if rec.Handoffs != 1 || rec.FailedReplicas != 1 {
		t.Errorf("recovery = %+v, want 1 handoff, 1 failed replica", rec)
	}

	// Kill the promoted pin too: nothing left to hand off to — the typed
	// error names the replica that exhausted the session.
	gateB := &flakyGate{inner: srvB.Handler()}
	_ = gateB // tsB has no gate; close the server instead.
	tsB.Close()
	_, err = s.Do(ctx, 0, ProbeReq{})
	var ofe *OwnerFailedError
	if !errors.As(err, &ofe) {
		t.Fatalf("death of the last replica surfaced as %v, want *OwnerFailedError", err)
	}
	if ofe.List != 0 || ofe.Replica != 1 {
		t.Errorf("OwnerFailedError = list %d replica %d, want list 0 replica 1", ofe.List, ofe.Replica)
	}
}

// TestHandoffDepthSync: the mirrored state includes the scan depth, so
// a TPUT-style topk-then-above sequence split across a handoff answers
// and accounts exactly like an undisturbed run against one owner.
func TestHandoffDepthSync(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	mkServer := func() *Server {
		srv, err := NewServer(one, 0)
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	gateA := &flakyGate{inner: mkServer().Handler()}
	tsA := httptest.NewServer(gateA)
	defer tsA.Close()
	tsB := httptest.NewServer(mkServer().Handler())
	defer tsB.Close()
	// Control: the same sequence against a single always-alive owner.
	tsC := httptest.NewServer(mkServer().Handler())
	defer tsC.Close()
	ctx := context.Background()

	hc, err := Dial(ctx, DialConfig{Topology: Topology{{tsA.URL, tsB.URL}}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	cc, err := Dial(ctx, DialConfig{Topology: Topology{{tsC.URL}}, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	s, err := hc.Open(ctx, bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctl, err := cc.Open(ctx, bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer ctl.Close()

	k1, err := s.Do(ctx, 0, TopKReq{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	ck1, err := ctl.Do(ctx, 0, TopKReq{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(k1, ck1) {
		t.Fatalf("topk diverged before the kill: %+v vs %+v", k1, ck1)
	}
	// Kill the pin between phases: the above must resume at depth 3 on
	// the mirror, not rescan from the top.
	gateA.dead.Store(true)
	theta := one.List(0).At(10).Score
	a1, err := s.Do(ctx, 0, AboveReq{T: theta})
	if err != nil {
		t.Fatalf("above after pin death did not hand off: %v", err)
	}
	ca1, err := ctl.Do(ctx, 0, AboveReq{T: theta})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, ca1) {
		t.Errorf("above after handoff diverged: %+v vs %+v", a1, ca1)
	}
	st, err := s.Stats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	cst, err := ctl.Stats(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Accesses != cst.Accesses || st.Depth != cst.Depth {
		t.Errorf("accounting diverged across handoff: %+v/%d vs %+v/%d",
			st.Accesses, st.Depth, cst.Accesses, cst.Depth)
	}
}

// TestMirrorPromotionAfterMirrorDeath: when the MIRROR dies, the pin
// promotes a fresh sibling by copying the full session state to it — so
// a later pin death still hands off losslessly.
func TestMirrorPromotionAfterMirrorDeath(t *testing.T) {
	one := gen.MustGenerate(gen.Spec{Kind: gen.Uniform, N: 80, M: 1, Seed: 9})
	mkGate := func() *flakyGate {
		srv, err := NewServer(one, 0)
		if err != nil {
			t.Fatal(err)
		}
		return &flakyGate{inner: srv.Handler()}
	}
	gates := []*flakyGate{mkGate(), mkGate(), mkGate()}
	var topo Topology
	var urls []string
	for _, g := range gates {
		ts := httptest.NewServer(g)
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	topo = Topology{urls}
	hc, err := Dial(context.Background(), DialConfig{Topology: topo, HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	ctx := context.Background()
	s, err := hc.Open(ctx, bestpos.BitArrayKind)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Pin to replica 0, mirror on replica 1.
	for i := 1; i <= 2; i++ {
		if _, err := s.Do(ctx, 0, ProbeReq{}); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the mirror. The next exchange succeeds on the pin, notices the
	// failed sync, and promotes replica 2 with a full state copy.
	gates[1].dead.Store(true)
	if _, err := s.Do(ctx, 0, ProbeReq{}); err != nil {
		t.Fatalf("probe with dead mirror: %v", err)
	}
	// Now kill the pin: the handoff lands on the promoted replica 2 and
	// resumes at position 4 — proof the full-state copy carried 1..3.
	gates[0].dead.Store(true)
	resp, err := s.Do(ctx, 0, ProbeReq{})
	if err != nil {
		t.Fatalf("probe after pin death did not hand off to the promoted mirror: %v", err)
	}
	if got := resp.(ProbeResp).Entry; got != one.List(0).At(4) {
		t.Errorf("probe after promotion+handoff = %+v, want position 4", got)
	}
	rec := s.(*httpSession).Recovery()
	if rec.Handoffs != 1 || rec.FailedReplicas != 2 {
		t.Errorf("recovery = %+v, want 1 handoff, 2 failed replicas", rec)
	}
}
