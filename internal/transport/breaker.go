package transport

import (
	"sync/atomic"
	"time"
)

// Per-replica circuit breaker. Health probing answers "is the process
// alive?"; the breaker answers the sharper question "is the data plane
// succeeding against it?" — a replica can pass /healthz while failing
// every exchange (wedged disk, half-configured restart, a partition
// that only bites established connections). After K consecutive
// data-plane or probe failures the breaker opens and routing stops
// offering the replica traffic; after a cooldown one probe exchange is
// let through (half-open), and only its success readmits the replica.
// Each failed half-open probe doubles the cooldown up to a cap, so a
// persistently broken replica costs one exchange per cooldown instead
// of a retry storm.

// DefaultBreakerThreshold is K: consecutive failures before the
// breaker opens. High enough that a lone blip never trips it (the
// retry/failover budget absorbs those), low enough that a dead replica
// stops attracting traffic within one query.
const DefaultBreakerThreshold = 5

// DefaultBreakerCooldown is the first open interval; each failed
// half-open probe doubles it up to breakerMaxCooldown.
const DefaultBreakerCooldown = 1 * time.Second

// breakerMaxCooldown caps the doubling so a recovered replica is
// readmitted within a bounded wait however long it was down.
const breakerMaxCooldown = 30 * time.Second

// Breaker states, reported by state() and surfaced in ReplicaHealth.
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// breaker is the lock-free breaker state of one replica. All fields
// are atomics: the data plane, the prober and Health snapshots touch
// it concurrently. threshold and base are written once at dial.
type breaker struct {
	threshold int64 // consecutive failures to open; <= 0 disables
	base      int64 // first cooldown, nanoseconds

	consec   atomic.Int64 // consecutive failures since last success
	open     atomic.Bool
	reopenAt atomic.Int64 // unix nanos when a half-open probe may pass
	cooldown atomic.Int64 // current cooldown, nanoseconds
}

// arm configures the breaker; threshold <= 0 leaves it disabled.
func (b *breaker) arm(threshold int, cooldown time.Duration) {
	if threshold <= 0 {
		return
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	b.threshold = int64(threshold)
	b.base = int64(cooldown)
	b.cooldown.Store(int64(cooldown))
}

// blocked reports whether routing should keep traffic off this replica
// right now: the breaker is open and the cooldown has not elapsed.
// Once the cooldown expires the breaker stays open but stops blocking —
// the next routed exchange is the half-open probe.
func (b *breaker) blocked(now time.Time) bool {
	return b.threshold > 0 && b.open.Load() && now.UnixNano() < b.reopenAt.Load()
}

// state names the breaker's current phase for Health snapshots.
func (b *breaker) state(now time.Time) string {
	if b.threshold <= 0 || !b.open.Load() {
		return breakerClosed
	}
	if now.UnixNano() < b.reopenAt.Load() {
		return breakerOpen
	}
	return breakerHalfOpen
}

// success records a successful exchange (or probe), closing the
// breaker and resetting the cooldown ladder. Returns true on an actual
// open->closed transition — the caller logs and counts only those.
func (b *breaker) success() bool {
	b.consec.Store(0)
	if b.threshold <= 0 || !b.open.Swap(false) {
		return false
	}
	b.cooldown.Store(b.base)
	return true
}

// failure records one more consecutive failure at time now. It opens
// the breaker when the threshold is crossed, and re-opens it with a
// doubled (capped) cooldown when a half-open probe fails. Returns true
// when this call opened (or re-opened) the breaker.
func (b *breaker) failure(now time.Time) bool {
	if b.threshold <= 0 {
		return false
	}
	n := b.consec.Add(1)
	switch {
	case !b.open.Load():
		if n < b.threshold {
			return false
		}
		// Trip: first open at the base cooldown (success() reset it).
	case now.UnixNano() >= b.reopenAt.Load():
		// A half-open probe failed: back off harder.
		cd := b.cooldown.Load() * 2
		if cd > int64(breakerMaxCooldown) {
			cd = int64(breakerMaxCooldown)
		}
		b.cooldown.Store(cd)
	default:
		// Already open and still cooling (e.g. a single-replica list that
		// had nowhere else to route): no new transition, no extension —
		// the scheduled probe time stands.
		return false
	}
	b.open.Store(true)
	b.reopenAt.Store(now.Add(time.Duration(b.cooldown.Load())).UnixNano())
	return true
}
