// Package transport carries the distributed top-k protocols' messages
// between the query originator and the list owner nodes. It factors the
// paper's Section 5 setting into two halves:
//
//   - the message vocabulary (sorted, lookup, probe, mark, topk, above,
//     fetch — one response type per request type) and the owner-side
//     handlers serving it (Owner), shared by every backend;
//   - the Transport interface, the originator's view of the network,
//     with three interchangeable backends.
//
// The backends:
//
//   - Loopback: deterministic in-process delivery, requests served
//     inline in call order. The simulation backend — zero latency, zero
//     concurrency, bit-exact reference behaviour.
//   - Concurrent: one goroutine per owner with an injectable latency
//     model and a virtual clock. A DoAll batch reaches the owners in
//     parallel, so a protocol round's simulated wall-clock is the max,
//     not the sum, of its owner round-trips — the effect that makes
//     fewer-rounds designs (BPA2, TPUT) measurable.
//   - HTTP: a real owner server (one list per process, JSON codec) and
//     an originator client, the backing of cmd/topk-owner and
//     topk-query's --owners cluster mode.
//
// Protocol answers, traffic accounting and access counts are identical
// across backends by construction: the owner handlers are the same code,
// and the payload charged per message is a pure function of the message
// content (Request.RequestScalars, Response.ResponseScalars). Only
// Elapsed — the wall-clock measure — is backend-specific.
package transport

import (
	"time"

	"topk/internal/bestpos"
)

// Call addresses one request to one owner, for batched delivery.
type Call struct {
	Owner int
	Req   Request
}

// Transport is the originator's view of the owner nodes. Implementations
// must serve calls addressed to the same owner in submission order (the
// owner-side protocol state of BPA2 and TPUT depends on it); calls to
// distinct owners are independent and may proceed in parallel.
//
// A Transport is driven by one query execution at a time.
type Transport interface {
	// M returns the number of owners (lists).
	M() int
	// N returns the shared list length.
	N() int
	// Do performs one request/response exchange with an owner.
	Do(owner int, req Request) (Response, error)
	// DoAll performs the calls — concurrently where the backend supports
	// it — and returns the responses in call order. It fails on the
	// first error, after all in-flight calls have drained.
	DoAll(calls []Call) ([]Response, error)
	// Reset prepares every owner for a new query: zeroed access tallies
	// and scan depths, fresh seen-position trackers of the given kind.
	// Control-plane: not charged to traffic accounting.
	Reset(tracker bestpos.Kind) error
	// Stats reports an owner's bookkeeping (accesses, tracker best
	// position, scan depth, list metadata). Control-plane: not charged.
	Stats(owner int) (OwnerStats, error)
	// Elapsed returns the transport's cumulative wall-clock measure:
	// zero for Loopback, virtual simulated time for Concurrent, real
	// time spent in exchanges for HTTP. Callers measuring one run take
	// the difference around it.
	Elapsed() time.Duration
	// Close releases backend resources. The transport is unusable after.
	Close() error
}
