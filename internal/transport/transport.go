// Package transport carries the distributed top-k protocols' messages
// between the query originator and the list owner nodes. It factors the
// paper's Section 5 setting into two halves:
//
//   - the message vocabulary (sorted, lookup, probe, mark, topk, above,
//     fetch — one response type per request type) and the owner-side
//     handlers serving it (Owner), shared by every backend;
//   - the Transport interface, the originator's view of the network,
//     with three interchangeable backends.
//
// # Sessions
//
// Every query execution runs inside a Session: Transport.Open generates
// a unique query/session ID, installs fresh owner-side protocol state
// (seen-position tracker, access tally, scan cursor) keyed by that ID at
// every owner, and returns the originator's handle. The ID travels with
// every message, so one owner — and one shared Transport — serves any
// number of concurrent originators without their state interleaving;
// sessions only serialize against themselves. Session.Close releases the
// owner-side state.
//
// Every exchange takes a context.Context: cancellation and deadlines are
// honored between (and, on the HTTP backend, during) exchanges, so an
// originator can abandon an in-flight query at per-access granularity.
//
// # Backends
//
//   - Loopback: deterministic in-process delivery, requests served
//     inline in call order. The simulation backend — zero latency, zero
//     concurrency, bit-exact reference behaviour.
//   - Concurrent: one goroutine per owner with an injectable latency
//     model and a per-session virtual clock. A DoAll batch reaches the
//     owners in parallel, so a protocol round's simulated wall-clock is
//     the max, not the sum, of its owner round-trips — the effect that
//     makes fewer-rounds designs (BPA2, TPUT) measurable.
//   - HTTP: a real owner server (one list per process, JSON codec) and
//     an originator client, the backing of cmd/topk-owner and
//     topk-query's --owners cluster mode, with per-request timeouts and
//     a single retry on transient owner failures.
//
// Protocol answers, traffic accounting and access counts are identical
// across backends by construction: the owner handlers are the same code,
// and the payload charged per message is a pure function of the message
// content (Request.RequestScalars, Response.ResponseScalars). Only
// Elapsed — the wall-clock measure — is backend-specific.
package transport

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync/atomic"
	"time"

	"topk/internal/bestpos"
)

// Call addresses one request to one owner, for batched delivery.
type Call struct {
	Owner int
	Req   Request
}

// Transport is the originator's view of the owner nodes. A Transport is
// shared infrastructure: any number of query sessions may be open on it
// concurrently, each with independent owner-side state.
type Transport interface {
	// M returns the number of owners (lists).
	M() int
	// N returns the shared list length.
	N() int
	// Open starts a new query session at every owner: a fresh
	// seen-position tracker of the given kind, a zeroed access tally and
	// scan cursor, all keyed by a new unique session ID. Control-plane:
	// not charged to traffic accounting.
	Open(ctx context.Context, tracker bestpos.Kind) (Session, error)
	// Close releases backend resources. Open sessions become unusable.
	Close() error
}

// Session is one query execution's private channel to the owners.
// Implementations must serve calls addressed to the same owner in
// submission order (the owner-side protocol state of BPA2 and TPUT
// depends on it); calls to distinct owners are independent and may
// proceed in parallel. A Session is driven by one query execution at a
// time; distinct sessions of the same Transport are fully independent.
type Session interface {
	// ID returns the session's unique identifier — the key of the
	// owner-side state, carried in every message.
	ID() string
	// Do performs one request/response exchange with an owner. A
	// canceled or expired ctx aborts with ctx.Err().
	Do(ctx context.Context, owner int, req Request) (Response, error)
	// DoAll performs the calls — concurrently where the backend supports
	// it — and returns the responses in call order. It fails on the
	// first error (including ctx cancellation), after all in-flight
	// dispatch has drained; no goroutines are leaked.
	DoAll(ctx context.Context, calls []Call) ([]Response, error)
	// Stats reports an owner's bookkeeping for this session (accesses,
	// tracker best position, scan depth, list metadata). Control-plane:
	// not charged.
	Stats(ctx context.Context, owner int) (OwnerStats, error)
	// Elapsed returns the session's cumulative wall-clock measure: zero
	// for Loopback, virtual simulated time for Concurrent, real time
	// spent in exchanges for HTTP.
	Elapsed() time.Duration
	// Close releases the session's owner-side state. Idempotent,
	// best-effort: owners evict the state even if the originator never
	// calls it only when the process ends.
	Close() error
}

// sessionCounter disambiguates session IDs generated in the same
// process (the random prefix already makes cross-process collisions
// negligible).
var sessionCounter atomic.Uint64

// NewSessionID returns a unique query/session ID: 8 random bytes plus a
// process-local counter, so concurrent originators — in one process or
// many — never collide.
func NewSessionID() string {
	var b [8]byte
	_, _ = rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return hex.EncodeToString(b[:]) + "-" + strconv.FormatUint(sessionCounter.Add(1), 16)
}
