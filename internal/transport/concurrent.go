package transport

import (
	"fmt"
	"sync"
	"time"

	"topk/internal/bestpos"
	"topk/internal/list"
)

// Latency models one request/response round-trip with an owner. It sees
// the response too, so models can price payload size. It must be
// deterministic: the simulated wall-clock is part of reproducible
// experiment output.
type Latency func(owner int, req Request, resp Response) time.Duration

// ConstantLatency charges every exchange the same round-trip time.
func ConstantLatency(rtt time.Duration) Latency {
	return func(int, Request, Response) time.Duration { return rtt }
}

// PerOwnerLatency charges each owner its own round-trip time —
// heterogeneous links (e.g. one remote datacenter among local owners).
func PerOwnerLatency(rtt []time.Duration) Latency {
	return func(owner int, _ Request, _ Response) time.Duration { return rtt[owner] }
}

// LinkLatency charges a fixed round-trip time plus a per-scalar transfer
// cost, so batched responses (TPUT's entry lists) pay for their size.
func LinkLatency(rtt, perScalar time.Duration) Latency {
	return func(_ int, req Request, resp Response) time.Duration {
		return rtt + time.Duration(req.RequestScalars()+resp.ResponseScalars())*perScalar
	}
}

// job is one exchange in flight to an owner goroutine.
type job struct {
	req   Request
	reply chan result
}

// result is the owner goroutine's answer: the response plus the modeled
// round-trip cost.
type result struct {
	resp Response
	cost time.Duration
	err  error
}

// Concurrent is the parallel in-process backend: one long-lived goroutine
// per owner consumes a FIFO request channel, so a DoAll batch is in
// flight at every addressed owner at once. Latency is virtual — the
// injectable model prices each exchange and a batch advances the clock
// by the maximum over owners of their serialized costs, never by the
// sum — so sweeping 1ms..50ms links costs no real sleeping.
type Concurrent struct {
	owners []*Owner
	in     []chan job
	wg     sync.WaitGroup
	lat    Latency
	n      int

	mu      sync.Mutex
	closed  bool
	elapsed time.Duration
}

// NewConcurrent builds one owner goroutine per list of db. A nil latency
// model means zero-cost exchanges (wall-clock stays 0).
func NewConcurrent(db *list.Database, lat Latency) (*Concurrent, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	if lat == nil {
		lat = ConstantLatency(0)
	}
	t := &Concurrent{
		owners: make([]*Owner, db.M()),
		in:     make([]chan job, db.M()),
		lat:    lat,
		n:      db.N(),
	}
	for i := range t.owners {
		o, err := NewOwner(db, i)
		if err != nil {
			return nil, err
		}
		t.owners[i] = o
		t.in[i] = make(chan job)
		t.wg.Add(1)
		go t.serve(i)
	}
	return t, nil
}

// serve is owner i's goroutine: handle requests in arrival order, price
// each exchange, reply.
func (t *Concurrent) serve(i int) {
	defer t.wg.Done()
	for j := range t.in[i] {
		resp, err := t.owners[i].Handle(j.req)
		var cost time.Duration
		if err == nil {
			cost = t.lat(i, j.req, resp)
		}
		j.reply <- result{resp: resp, cost: cost, err: err}
	}
}

// M returns the number of owners.
func (t *Concurrent) M() int { return len(t.owners) }

// N returns the shared list length.
func (t *Concurrent) N() int { return t.n }

// checkSend validates an exchange before it is dispatched.
func (t *Concurrent) checkSend(owner int) error {
	if owner < 0 || owner >= len(t.owners) {
		return fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(t.owners))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return fmt.Errorf("transport: concurrent backend is closed")
	}
	return nil
}

// addElapsed advances the virtual clock.
func (t *Concurrent) addElapsed(d time.Duration) {
	t.mu.Lock()
	t.elapsed += d
	t.mu.Unlock()
}

// Do performs one exchange; the clock advances by its modeled cost.
func (t *Concurrent) Do(owner int, req Request) (Response, error) {
	if err := t.checkSend(owner); err != nil {
		return nil, err
	}
	reply := make(chan result, 1)
	t.in[owner] <- job{req: req, reply: reply}
	r := <-reply
	if r.err != nil {
		return nil, r.err
	}
	t.addElapsed(r.cost)
	return r.resp, nil
}

// DoAll performs the calls with every addressed owner working in
// parallel. Calls to the same owner keep their submission order (its
// channel is FIFO and a single feeder sends them in order); the clock
// advances by the maximum over owners of their summed exchange costs —
// the batch is as slow as its slowest owner, not as the sum of all
// owners.
func (t *Concurrent) DoAll(calls []Call) ([]Response, error) {
	for _, c := range calls {
		if err := t.checkSend(c.Owner); err != nil {
			return nil, err
		}
	}
	// Group call indices by owner, preserving order within each owner.
	byOwner := make(map[int][]int)
	for idx, c := range calls {
		byOwner[c.Owner] = append(byOwner[c.Owner], idx)
	}
	replies := make([]chan result, len(calls))
	for i := range replies {
		replies[i] = make(chan result, 1)
	}
	// One feeder per owner keeps that owner's queue in submission order
	// without the dispatch of a busy owner blocking the others.
	var feed sync.WaitGroup
	for owner, idxs := range byOwner {
		feed.Add(1)
		go func(owner int, idxs []int) {
			defer feed.Done()
			for _, idx := range idxs {
				t.in[owner] <- job{req: calls[idx].Req, reply: replies[idx]}
			}
		}(owner, idxs)
	}
	// Collect every reply before failing so no goroutine is left stuck.
	out := make([]Response, len(calls))
	perOwner := make(map[int]time.Duration, len(byOwner))
	var firstErr error
	for idx := range calls {
		r := <-replies[idx]
		if r.err != nil {
			if firstErr == nil {
				firstErr = r.err
			}
			continue
		}
		out[idx] = r.resp
		perOwner[calls[idx].Owner] += r.cost
	}
	feed.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	var slowest time.Duration
	for _, d := range perOwner {
		if d > slowest {
			slowest = d
		}
	}
	t.addElapsed(slowest)
	return out, nil
}

// Reset prepares every owner for a new query. The virtual clock keeps
// running: callers measuring one query take Elapsed differences.
func (t *Concurrent) Reset(kind bestpos.Kind) error {
	for _, o := range t.owners {
		o.Reset(kind)
	}
	return nil
}

// Stats reports an owner's bookkeeping.
func (t *Concurrent) Stats(owner int) (OwnerStats, error) {
	if owner < 0 || owner >= len(t.owners) {
		return OwnerStats{}, fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(t.owners))
	}
	return t.owners[owner].Stats(), nil
}

// Elapsed returns the virtual wall-clock accumulated so far.
func (t *Concurrent) Elapsed() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.elapsed
}

// Close stops the owner goroutines and waits for them to drain.
func (t *Concurrent) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	for _, ch := range t.in {
		close(ch)
	}
	t.wg.Wait()
	return nil
}
