package transport

import (
	"context"
	"fmt"
	"sync"
	"time"

	"topk/internal/bestpos"
	"topk/internal/list"
)

// Latency models one request/response round-trip with an owner. It sees
// the response too, so models can price payload size. It must be
// deterministic: the simulated wall-clock is part of reproducible
// experiment output.
type Latency func(owner int, req Request, resp Response) time.Duration

// ConstantLatency charges every exchange the same round-trip time.
func ConstantLatency(rtt time.Duration) Latency {
	return func(int, Request, Response) time.Duration { return rtt }
}

// PerOwnerLatency charges each owner its own round-trip time —
// heterogeneous links (e.g. one remote datacenter among local owners).
func PerOwnerLatency(rtt []time.Duration) Latency {
	return func(owner int, _ Request, _ Response) time.Duration { return rtt[owner] }
}

// LinkLatency charges a fixed round-trip time plus a per-scalar transfer
// cost, so batched responses (TPUT's entry lists) pay for their size.
func LinkLatency(rtt, perScalar time.Duration) Latency {
	return func(_ int, req Request, resp Response) time.Duration {
		return rtt + time.Duration(req.RequestScalars()+resp.ResponseScalars())*perScalar
	}
}

// job is one exchange in flight to an owner goroutine.
type job struct {
	ctx   context.Context
	sid   string
	req   Request
	reply chan result
}

// result is the owner goroutine's answer: the response plus the modeled
// round-trip cost.
type result struct {
	resp Response
	cost time.Duration
	err  error
}

// Concurrent is the parallel in-process backend: one long-lived goroutine
// per owner consumes a FIFO request channel, so a DoAll batch is in
// flight at every addressed owner at once. Latency is virtual — the
// injectable model prices each exchange and a batch advances the
// session's clock by the maximum over owners of their serialized costs,
// never by the sum — so sweeping 1ms..50ms links costs no real sleeping.
//
// Sessions share the owner goroutines (one simulated server per list),
// but carry independent protocol state and independent virtual clocks.
// Every job carries its originating context: a canceled exchange is
// answered with ctx.Err() instead of being served, replies go to
// buffered channels, and batch feeders bail out on cancellation — no
// goroutine outlives its query.
type Concurrent struct {
	owners []*Owner
	in     []chan job
	done   chan struct{} // closed by Close; owner goroutines and senders select on it
	wg     sync.WaitGroup
	lat    Latency
	n      int

	mu     sync.Mutex
	closed bool
}

// errClosed is the uniform after-Close failure. No channel except done
// is ever closed, so a Close racing in-flight exchanges yields this
// error instead of a send-on-closed-channel panic.
var errClosed = fmt.Errorf("transport: concurrent backend is closed")

// NewConcurrent builds one owner goroutine per list of db. A nil latency
// model means zero-cost exchanges (wall-clock stays 0).
func NewConcurrent(db *list.Database, lat Latency) (*Concurrent, error) {
	if db == nil {
		return nil, fmt.Errorf("transport: nil database")
	}
	if lat == nil {
		lat = ConstantLatency(0)
	}
	t := &Concurrent{
		owners: make([]*Owner, db.M()),
		in:     make([]chan job, db.M()),
		done:   make(chan struct{}),
		lat:    lat,
		n:      db.N(),
	}
	for i := range t.owners {
		o, err := NewOwner(db, i)
		if err != nil {
			return nil, err
		}
		t.owners[i] = o
		t.in[i] = make(chan job)
		t.wg.Add(1)
		go t.serve(i)
	}
	return t, nil
}

// serve is owner i's goroutine: handle requests in arrival order, price
// each exchange, reply. A request whose context is already canceled is
// answered with the context error without touching the owner — the
// cancellation propagation the round-based protocols rely on to stop
// promptly mid-batch.
func (t *Concurrent) serve(i int) {
	defer t.wg.Done()
	for {
		var j job
		select {
		case <-t.done:
			return
		case j = <-t.in[i]:
		}
		if err := j.ctx.Err(); err != nil {
			j.reply <- result{err: err}
			continue
		}
		resp, err := t.owners[i].HandleContext(j.ctx, j.sid, j.req)
		var cost time.Duration
		if err == nil {
			cost = t.lat(i, j.req, resp)
		}
		j.reply <- result{resp: resp, cost: cost, err: err}
	}
}

// M returns the number of owners.
func (t *Concurrent) M() int { return len(t.owners) }

// N returns the shared list length.
func (t *Concurrent) N() int { return t.n }

// checkSend validates an exchange before it is dispatched.
func (t *Concurrent) checkSend(owner int) error {
	if owner < 0 || owner >= len(t.owners) {
		return fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(t.owners))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return errClosed
	}
	return nil
}

// Open starts a query session at every owner.
func (t *Concurrent) Open(ctx context.Context, tracker bestpos.Kind) (Session, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return nil, errClosed
	}
	sid := NewSessionID()
	if err := openAll(t.owners, sid, tracker); err != nil {
		return nil, err
	}
	return &concurrentSession{t: t, sid: sid}, nil
}

// Close stops the owner goroutines and waits for them to drain. The
// job channels are never closed — shutdown is signaled through done —
// so exchanges racing Close fail with errClosed instead of panicking.
func (t *Concurrent) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.done)
	t.wg.Wait()
	return nil
}

// concurrentSession is one query over the shared owner goroutines, with
// its own virtual clock.
type concurrentSession struct {
	t   *Concurrent
	sid string

	mu      sync.Mutex
	elapsed time.Duration

	// rec collects per-exchange trace spans when armed (SpanRecording).
	// Span durations are the latency model's virtual costs — the same
	// clock Elapsed runs on.
	rec *SpanRecorder
}

// ID returns the session ID.
func (s *concurrentSession) ID() string { return s.sid }

// SetSpanRecorder arms (or, with nil, disarms) per-exchange tracing.
func (s *concurrentSession) SetSpanRecorder(r *SpanRecorder) { s.rec = r }

// record traces one served exchange under the virtual clock.
func (s *concurrentSession) record(owner int, req Request, cost time.Duration, err error) {
	if s.rec == nil {
		return
	}
	s.rec.Record(Span{Owner: owner, Replica: -1, URL: "concurrent", Kind: req.Kind(),
		Msgs: logicalMessages(req), Duration: cost, Attempts: 1, Err: errString(err)})
}

// addElapsed advances the session's virtual clock.
func (s *concurrentSession) addElapsed(d time.Duration) {
	s.mu.Lock()
	s.elapsed += d
	s.mu.Unlock()
}

// Do performs one exchange; the session clock advances by its modeled
// cost. Cancellation aborts the wait — the reply channel is buffered,
// so an abandoned exchange never blocks the owner goroutine.
func (s *concurrentSession) Do(ctx context.Context, owner int, req Request) (Response, error) {
	if err := s.t.checkSend(owner); err != nil {
		return nil, err
	}
	reply := make(chan result, 1)
	select {
	case s.t.in[owner] <- job{ctx: ctx, sid: s.sid, req: req, reply: reply}:
	case <-s.t.done:
		return nil, errClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-reply:
		if r.err != nil {
			s.record(owner, req, 0, r.err)
			return nil, r.err
		}
		s.addElapsed(r.cost)
		s.record(owner, req, r.cost, nil)
		return r.resp, nil
	case <-s.t.done:
		return nil, errClosed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// DoAll performs the calls with every addressed owner working in
// parallel. Calls to the same owner keep their submission order (its
// channel is FIFO and a single feeder sends them in order); the session
// clock advances by the maximum over owners of their summed exchange
// costs — the batch is as slow as its slowest owner, not as the sum of
// all owners. On cancellation the feeders stop dispatching, the
// collector returns ctx.Err(), and every in-flight reply lands in a
// buffered channel: no goroutine leaks, whatever the batch shape.
func (s *concurrentSession) DoAll(ctx context.Context, calls []Call) ([]Response, error) {
	for _, c := range calls {
		if err := s.t.checkSend(c.Owner); err != nil {
			return nil, err
		}
	}
	// Group call indices by owner, preserving order within each owner.
	byOwner := make(map[int][]int)
	for idx, c := range calls {
		byOwner[c.Owner] = append(byOwner[c.Owner], idx)
	}
	replies := make([]chan result, len(calls))
	for i := range replies {
		replies[i] = make(chan result, 1)
	}
	// One feeder per owner keeps that owner's queue in submission order
	// without the dispatch of a busy owner blocking the others.
	var feed sync.WaitGroup
	for owner, idxs := range byOwner {
		feed.Add(1)
		go func(owner int, idxs []int) {
			defer feed.Done()
			for _, idx := range idxs {
				select {
				case s.t.in[owner] <- job{ctx: ctx, sid: s.sid, req: calls[idx].Req, reply: replies[idx]}:
				case <-s.t.done:
					return
				case <-ctx.Done():
					return
				}
			}
		}(owner, idxs)
	}
	// Collect every reply before failing so no goroutine is left stuck;
	// on cancellation the un-fed replies would never arrive, so stop
	// collecting and let the feeders drain via their own ctx select.
	out := make([]Response, len(calls))
	perOwner := make(map[int]time.Duration, len(byOwner))
	var firstErr error
collect:
	for idx := range calls {
		select {
		case r := <-replies[idx]:
			if r.err != nil {
				s.record(calls[idx].Owner, calls[idx].Req, 0, r.err)
				if firstErr == nil {
					firstErr = r.err
				}
				continue
			}
			out[idx] = r.resp
			s.record(calls[idx].Owner, calls[idx].Req, r.cost, nil)
			perOwner[calls[idx].Owner] += r.cost
		case <-s.t.done:
			if firstErr == nil {
				firstErr = errClosed
			}
			break collect
		case <-ctx.Done():
			if firstErr == nil {
				firstErr = ctx.Err()
			}
			break collect
		}
	}
	feed.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	var slowest time.Duration
	for _, d := range perOwner {
		if d > slowest {
			slowest = d
		}
	}
	s.addElapsed(slowest)
	return out, nil
}

// Stats reports an owner's bookkeeping for this session.
func (s *concurrentSession) Stats(ctx context.Context, owner int) (OwnerStats, error) {
	if err := ctx.Err(); err != nil {
		return OwnerStats{}, err
	}
	if owner < 0 || owner >= len(s.t.owners) {
		return OwnerStats{}, fmt.Errorf("transport: owner %d out of range [0,%d)", owner, len(s.t.owners))
	}
	return s.t.owners[owner].SessionStats(s.sid)
}

// Elapsed returns the session's virtual wall-clock.
func (s *concurrentSession) Elapsed() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.elapsed
}

// Close releases the session's owner-side state.
func (s *concurrentSession) Close() error {
	closeAll(s.t.owners, s.sid)
	return nil
}
